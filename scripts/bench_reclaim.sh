#!/usr/bin/env bash
# Regenerates BENCH_reclaim.json — the committed pwf::mem reclamation
# baseline (per-policy op latency tails and peak retired memory with and
# without an injected thread stall, over epoch / hazard-era / wait-free
# pool). Run it on the reference machine after touching src/mem or the
# reclamation paths of src/lockfree, eyeball the stalled peak-retired
# column (epoch grows with ops, the era policies stay flat), and commit
# the result so later PRs can regress against it.
#
# Usage: scripts/bench_reclaim.sh [--quick] [extra pwf_bench args...]
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build --target pwf_bench -j"$(nproc)"

build/bench/pwf_bench --filter reclaim_tail \
  --json BENCH_reclaim.json "$@"
echo "wrote BENCH_reclaim.json"
