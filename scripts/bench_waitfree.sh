#!/usr/bin/env bash
# Regenerates BENCH_waitfree.json — the committed wait-free universal
# construction baseline (helping rate vs scheduler skew for the wrapped
# counter, wrapped-vs-raw overhead in the sim and on real threads, the
# starvation rescue, and the lin-point-stamped hardware checks). Run it
# on the reference machine after touching src/waitfree, eyeball the
# slow/Mop column (uniform tiny, starver loud) and the wrapped-over-raw
# ratio, and commit the result so later PRs can regress against it.
#
# Usage: scripts/bench_waitfree.sh [--quick] [extra pwf_bench args...]
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build --target pwf_bench -j"$(nproc)"

build/bench/pwf_bench --filter waitfree_overhead \
  --json BENCH_waitfree.json "$@"
echo "wrote BENCH_waitfree.json"
