#!/usr/bin/env bash
# Regenerates BENCH_open_system.json — the committed open-system
# baseline (queue-length and completion-latency curves under stationary
# arrival/departure/crash/restart churn at n up to 10^6, plus the
# engine's steps/sec per cell). Run it on the reference machine after
# touching src/core/{open_system,process_table,arrival,alias} or
# src/sched/dynamic, eyeball the shape lines (scu exponent ~ 0.5,
# parallel flat, fairness ~ 1), and commit the result so later PRs can
# regress against it.
#
# Usage: scripts/bench_open_system.sh [--quick] [extra pwf_bench args...]
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build --target pwf_bench -j"$(nproc)"

build/bench/pwf_bench --filter open_system \
  --json BENCH_open_system.json "$@"
echo "wrote BENCH_open_system.json"
