#!/usr/bin/env bash
# Regenerates BENCH_struct_matrix.json — the committed strategy-matrix
# baseline (coarse vs optimistic vs lockfree skip-list throughput and
# latency quantiles across workload mixes and thread counts, plus the
# per-reclaim-policy linearizability cells). Run it on the reference
# machine after touching src/lockfree/skiplist_* or the catalog, check
# the read-heavy spread and quantile ordering gates, and commit the
# result so later PRs can regress against it.
#
# Usage: scripts/bench_struct_matrix.sh [--quick] [--strategy S] [args...]
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build --target pwf_bench -j"$(nproc)"

build/bench/pwf_bench --filter struct_matrix \
  --json BENCH_struct_matrix.json "$@"
echo "wrote BENCH_struct_matrix.json"
