#!/usr/bin/env bash
# Regenerates BENCH_capture.json — the committed hardware-capture
# stamping-overhead baseline (global-ticket vs calibrated-TSC clocks
# over structures x thread counts, tsc verdict parity across the stock
# zoo x reclamation policies, and the mutant catches under tsc). Run it
# on the reference machine after touching src/util/tsc, src/check or the
# stamping paths of src/lockfree, eyeball the geomean ticket/tsc
# overhead ratio at the max thread count (>= 4x with >= 4 cpus; parity
# band on a serial host — the table records the host cpu count that
# selected the gate), and commit the result so later PRs can regress
# against it.
#
# Builds with -DPWF_HW_MUTANTS=ON so the mutant gate (untagged-ABA
# stack and novalidate skip list caught NOT-LINEARIZABLE under tsc,
# witnesses minimized) is exercised; a stock build skips that cell.
#
# Usage: scripts/bench_capture.sh [--quick] [extra pwf_bench args...]
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build-mut -S . -DPWF_HW_MUTANTS=ON
cmake --build build-mut --target pwf_bench -j"$(nproc)"

build-mut/bench/pwf_bench --filter capture_overhead \
  --json BENCH_capture.json "$@"
echo "wrote BENCH_capture.json"
