#!/usr/bin/env bash
# Regenerates BENCH_engine.json — the committed engine-throughput
# baseline (steps/sec for Simulation::run across scheduler x n x
# machine, alias-vs-linear and segmented-vs-legacy speedups). Run it on
# the reference machine after touching src/core/{simulation,scheduler}
# or src/util/rng, eyeball the speedup columns, and commit the result so
# later PRs can regress against it.
#
# Usage: scripts/bench_engine.sh [--quick] [extra pwf_bench args...]
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build --target pwf_bench -j"$(nproc)"

build/bench/pwf_bench --filter engine_throughput \
  --json BENCH_engine.json "$@"
echo "wrote BENCH_engine.json"
