#!/usr/bin/env bash
# One-command reproduction: build, run the full test suite, regenerate
# every experiment through the unified pwf_bench driver, and (optionally)
# validate the concurrent code under the sanitizers. Outputs land in
# test_output.txt / bench_output.txt / BENCH_results.json at the
# repository root.
#
# Usage: scripts/reproduce.sh [--with-sanitizers] [--quick]
set -euo pipefail
cd "$(dirname "$0")/.."

with_sanitizers=0
quick_flags=()
for arg in "$@"; do
  case "$arg" in
    --with-sanitizers) with_sanitizers=1 ;;
    --quick) quick_flags=(--quick) ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

echo "== configure + build =="
cmake -B build -G Ninja
cmake --build build

echo "== tests =="
ctest --test-dir build 2>&1 | tee test_output.txt

echo "== experiments (each self-checks; non-zero exit = regression) =="
# Run experiments one at a time so a single regression is named in the
# log but every remaining experiment still gets regenerated; the final
# combined run emits the machine-readable BENCH_results.json.
status=0
: > bench_output.txt
while read -r name; do
  echo "### $name" | tee -a bench_output.txt
  if ! build/bench/pwf_bench --filter "$name" "${quick_flags[@]+"${quick_flags[@]}"}" \
      2>&1 | tee -a bench_output.txt; then
    echo "REGRESSION in $name" | tee -a bench_output.txt
    status=1
  fi
done < <(build/bench/pwf_bench --list | awk '/^[a-z]/{print $1}')

echo "== combined JSON results =="
build/bench/pwf_bench "${quick_flags[@]+"${quick_flags[@]}"}" \
  --json BENCH_results.json >/dev/null || status=1
echo "wrote BENCH_results.json"

echo "== linearizability checks (pwf_check) =="
if ! build/bench/pwf_check --smoke --out CHECK_report.json \
    2>&1 | tee -a bench_output.txt; then
  echo "REGRESSION in pwf_check" | tee -a bench_output.txt
  status=1
fi
echo "wrote CHECK_report.json"

echo "== hardware capture, lin-point stamping (pwf_check --hw) =="
if ! build/bench/pwf_check --hw --stamp-mode lin-point --jitter 1 \
    2>&1 | tee -a bench_output.txt; then
  echo "REGRESSION in pwf_check --hw" | tee -a bench_output.txt
  status=1
fi

if [ "$with_sanitizers" = 1 ]; then
  echo "== ThreadSanitizer (concurrent suites) =="
  cmake -B build-tsan -G Ninja -DPWF_SANITIZE=thread
  cmake --build build-tsan
  ctest --test-dir build-tsan -R "lockfree|statistical|sched"

  echo "== AddressSanitizer (concurrent suites) =="
  cmake -B build-asan -G Ninja -DPWF_SANITIZE=address
  cmake --build build-asan
  ctest --test-dir build-asan -R "lockfree|statistical|sched"
fi

exit $status
