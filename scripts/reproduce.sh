#!/usr/bin/env bash
# One-command reproduction: build, run the full test suite, regenerate
# every experiment, and (optionally) validate the concurrent code under
# the sanitizers. Outputs land in test_output.txt / bench_output.txt at
# the repository root.
#
# Usage: scripts/reproduce.sh [--with-sanitizers]
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== configure + build =="
cmake -B build -G Ninja
cmake --build build

echo "== tests =="
ctest --test-dir build 2>&1 | tee test_output.txt

echo "== experiments (each bench self-checks; non-zero exit = regression) =="
status=0
: > bench_output.txt
for b in build/bench/*; do
  [ -x "$b" ] || continue
  echo "### $b" | tee -a bench_output.txt
  if ! "$b" 2>&1 | tee -a bench_output.txt; then
    echo "REGRESSION in $b" | tee -a bench_output.txt
    status=1
  fi
done

if [ "${1:-}" = "--with-sanitizers" ]; then
  echo "== ThreadSanitizer (concurrent suites) =="
  cmake -B build-tsan -G Ninja -DPWF_SANITIZE=thread
  cmake --build build-tsan
  ctest --test-dir build-tsan -R "lockfree|statistical|sched"

  echo "== AddressSanitizer (concurrent suites) =="
  cmake -B build-asan -G Ninja -DPWF_SANITIZE=address
  cmake --build build-asan
  ctest --test-dir build-asan -R "lockfree|statistical|sched"
fi

exit $status
