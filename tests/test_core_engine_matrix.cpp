// Cross-product property tests: every (algorithm x scheduler) combination
// must satisfy the engine's invariants — exact step accounting, seed
// determinism, liveness under stochastic scheduling, and fairness of
// step shares for symmetric schedulers.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/algorithms.hpp"
#include "core/helping.hpp"
#include "core/sim_queue.hpp"
#include "core/sim_stack.hpp"
#include "core/simulation.hpp"

namespace pwf::core {
namespace {

struct AlgoCase {
  std::string name;
  std::function<Simulation(std::unique_ptr<Scheduler>, std::uint64_t seed)>
      make;
};

struct SchedCase {
  std::string name;
  std::function<std::unique_ptr<Scheduler>()> make;
  bool symmetric;  // every process statistically identical?
};

constexpr std::size_t kN = 5;

std::vector<AlgoCase> algorithms() {
  std::vector<AlgoCase> out;
  auto add = [&out](std::string name, StepMachineFactory factory,
                    std::size_t regs,
                    std::vector<std::pair<std::size_t, Value>> init = {}) {
    out.push_back(
        {std::move(name),
         [factory = std::move(factory), regs, init = std::move(init)](
             std::unique_ptr<Scheduler> sched, std::uint64_t seed) {
           Simulation::Options opts;
           opts.num_registers = regs;
           opts.seed = seed;
           opts.initial_values = init;
           return Simulation(kN, factory, std::move(sched), opts);
         }});
  };
  add("scan-validate", scan_validate_factory(),
      ScuAlgorithm::registers_required(kN, 1));
  add("SCU(3,2)", ScuAlgorithm::factory(3, 2),
      ScuAlgorithm::registers_required(kN, 2));
  add("parallel(4)", ParallelCode::factory(4),
      ParallelCode::registers_required());
  add("fetch-and-inc", FetchAndIncrement::factory(),
      FetchAndIncrement::registers_required());
  add("helped-universal", HelpedUniversal::factory(100'000),
      HelpedUniversal::registers_required(kN, 100'000));
  add("sim-stack", SimStack::factory(6),
      SimStack::registers_required(kN, 6));
  add("sim-queue", SimQueue::factory(6),
      SimQueue::registers_required(kN, 6), SimQueue::initial_values());
  return out;
}

std::vector<SchedCase> schedulers() {
  return {
      {"uniform", [] { return std::make_unique<UniformScheduler>(); }, true},
      {"sticky(0.7)", [] { return std::make_unique<StickyScheduler>(0.7); },
       true},
      {"zipf(0.8)",
       [] {
         return std::make_unique<WeightedScheduler>(
             make_zipf_scheduler(kN, 0.8));
       },
       false},
      {"round-robin", [] { return std::make_unique<RoundRobinScheduler>(); },
       true},
  };
}

TEST(EngineMatrix, AccountingLivenessAndDeterminism) {
  constexpr std::uint64_t kSteps = 120'000;
  for (const AlgoCase& algo : algorithms()) {
    for (const SchedCase& sched : schedulers()) {
      SCOPED_TRACE(algo.name + " / " + sched.name);

      Simulation a = algo.make(sched.make(), 424242);
      a.run(kSteps);

      // Accounting: steps add up exactly.
      EXPECT_EQ(a.report().steps, kSteps);
      EXPECT_EQ(a.memory().ops(), kSteps);
      std::uint64_t per_proc = 0, completions = 0;
      for (std::size_t p = 0; p < kN; ++p) {
        per_proc += a.report().steps_per_process[p];
        completions += a.report().completions_per_process[p];
      }
      EXPECT_EQ(per_proc, kSteps);
      EXPECT_EQ(completions, a.report().completions);

      // Liveness: the system keeps completing under every scheduler here
      // (all are either stochastic or round-robin-fair).
      EXPECT_GT(a.report().completions, kSteps / 100);

      // Determinism: a second run with the same seed is bit-identical in
      // its observable statistics.
      Simulation b = algo.make(sched.make(), 424242);
      b.run(kSteps);
      EXPECT_EQ(b.report().completions, a.report().completions);
      for (std::size_t p = 0; p < kN; ++p) {
        EXPECT_EQ(b.report().steps_per_process[p],
                  a.report().steps_per_process[p]);
      }
    }
  }
}

TEST(EngineMatrix, SymmetricSchedulersGiveFairStepShares) {
  constexpr std::uint64_t kSteps = 500'000;
  for (const AlgoCase& algo : algorithms()) {
    for (const SchedCase& sched : schedulers()) {
      if (!sched.symmetric) continue;
      SCOPED_TRACE(algo.name + " / " + sched.name);
      Simulation sim = algo.make(sched.make(), 7);
      sim.run(kSteps);
      const double expect = static_cast<double>(kSteps) / kN;
      for (std::size_t p = 0; p < kN; ++p) {
        EXPECT_NEAR(static_cast<double>(sim.report().steps_per_process[p]),
                    expect, 0.05 * expect)
            << "process " << p;
      }
    }
  }
}

TEST(EngineMatrix, StochasticSchedulersCompleteForEveryProcess) {
  constexpr std::uint64_t kSteps = 600'000;
  for (const AlgoCase& algo : algorithms()) {
    for (const SchedCase& sched : schedulers()) {
      if (sched.name == "round-robin") continue;  // theta = 0: no guarantee
      SCOPED_TRACE(algo.name + " / " + sched.name);
      Simulation sim = algo.make(sched.make(), 99);
      sim.run(kSteps);
      EXPECT_GT(sim.report().min_completions(), 0u)
          << "Theorem 3 violated: some process never completed";
    }
  }
}

}  // namespace
}  // namespace pwf::core
