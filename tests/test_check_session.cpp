// Session API tests: the golden engine-agreement guarantee (the pruned,
// partitioned, sharded default must agree verdict-for-verdict with the
// legacy whole-history WGL search on every workload), shard-count
// determinism (shards are a pure performance knob — verdicts, node
// counts, and minimized witnesses are bit-identical for any pool width),
// and the Session façade's own contract.
#include <gtest/gtest.h>

#include <stdexcept>

#include "check/explore.hpp"
#include "check/session.hpp"
#include "check/workloads.hpp"

namespace {

using namespace pwf::check;

CheckOptions legacy_whole() {
  CheckOptions o;
  o.pruning = false;
  o.partition = PartitionMode::kWhole;
  return o;
}

CheckOptions sharded(std::size_t shards) {
  CheckOptions o;
  o.partition = PartitionMode::kAuto;
  o.shards = shards;
  return o;
}

// --- golden agreement: every workload, both engines, many schedules --------

// The legacy engine is the original WGL search kept verbatim; the pruned
// partitioned sharded engine must reach the same verdict on every
// recorded schedule of every stock structure and every mutant.
TEST(SessionGolden, ShardedAgreesWithLegacyOnAllWorkloads) {
  constexpr std::size_t kSchedules = 24;
  for (const Workload& workload : workloads()) {
    const Session modern(workload, sharded(4));
    const Session golden(workload, legacy_whole());
    for (std::size_t i = 0; i < kSchedules; ++i) {
      const std::uint64_t seed = derive_check_seed(2024, i);
      const RunOutcome run =
          modern.record(workload.default_n, seed, workload.default_steps,
                        i, {});
      const LinResult reference = golden.check(run.history);
      EXPECT_EQ(run.lin.verdict, reference.verdict)
          << workload.name << " schedule " << i
          << ": sharded=" << verdict_name(run.lin.verdict)
          << " legacy=" << verdict_name(reference.verdict);
    }
  }
}

// Partitioning must not manufacture or mask violations on a multi-object
// mutant-style history: force the whole-history engines over the
// sharded-counter workload too.
TEST(SessionGolden, MultiObjectWholeAndPartitionedAgree) {
  const Workload& workload = find_workload("sharded-counter");
  CheckOptions whole_pruned;
  whole_pruned.partition = PartitionMode::kWhole;
  const Session partitioned(workload, sharded(3));
  const Session whole(workload, whole_pruned);
  const Session golden(workload, legacy_whole());
  for (std::size_t i = 0; i < 10; ++i) {
    const std::uint64_t seed = derive_check_seed(77, i);
    const RunOutcome run = partitioned.record(4, seed, 300, i, {});
    EXPECT_GT(run.lin.parts, 1u);
    EXPECT_EQ(run.lin.verdict, whole.check(run.history).verdict);
    EXPECT_EQ(run.lin.verdict, golden.check(run.history).verdict);
  }
}

// --- shard-count determinism ----------------------------------------------

TEST(SessionDeterminism, ShardCountNeverChangesTheMergedResult) {
  const Workload& workload = find_workload("sharded-counter");
  const Session one(workload, sharded(1));
  for (std::size_t i = 0; i < 6; ++i) {
    const std::uint64_t seed = derive_check_seed(5150, i);
    const RunOutcome base = one.record(4, seed, 400, i, {});
    for (const std::size_t shards : {2u, 4u, 0u}) {
      const LinResult again =
          Session(workload, sharded(shards)).check(base.history);
      EXPECT_EQ(again.verdict, base.lin.verdict) << "shards=" << shards;
      EXPECT_EQ(again.nodes, base.lin.nodes) << "shards=" << shards;
      EXPECT_EQ(again.parts, base.lin.parts) << "shards=" << shards;
      EXPECT_EQ(again.timed_out, base.lin.timed_out) << "shards=" << shards;
    }
  }
}

TEST(SessionDeterminism, ShardCountNeverChangesTheMinimizedWitness) {
  const Workload& workload = find_workload("mut-racy-counter");
  ExploreOptions opts;
  opts.schedules = 12;
  opts.base_seed = 42;

  std::uint64_t trace_fp = 0;
  std::uint64_t history_fp = 0;
  for (const std::size_t shards : {1u, 4u}) {
    const Session session(workload, sharded(shards));
    const ExploreResult result = session.explore(opts);
    ASSERT_TRUE(result.witness.has_value()) << "shards=" << shards;
    if (shards == 1) {
      trace_fp = result.witness->trace_fingerprint;
      history_fp = result.witness->history_fingerprint;
    } else {
      EXPECT_EQ(result.witness->trace_fingerprint, trace_fp);
      EXPECT_EQ(result.witness->history_fingerprint, history_fp);
    }
  }
}

// --- the façade's own contract ---------------------------------------------

TEST(Session, SpecOnlySessionChecksButCannotRun) {
  const Session session(make_spec("multi-counter"), sharded(2));
  EXPECT_EQ(session.workload(), nullptr);
  EXPECT_EQ(session.check(History{}).verdict, LinVerdict::kLinearizable);
  EXPECT_THROW(session.record(2, 1, 10, 0, {}), std::logic_error);
  EXPECT_THROW(session.replay(ScheduleTrace{}), std::logic_error);
  EXPECT_THROW(session.explore(), std::logic_error);
}

TEST(Session, NullSpecIsRejected) {
  EXPECT_THROW(Session(nullptr, CheckOptions{}), std::invalid_argument);
}

TEST(Session, AutoModePartitionsOnlyMultiObjectSpecs) {
  const Workload& counter = find_workload("fai-counter");
  const Session single(counter, sharded(4));
  const RunOutcome run = single.record(3, 9, 120, 0, {});
  EXPECT_EQ(run.lin.parts, 1u);

  const Workload& multi = find_workload("sharded-counter");
  const Session partitioned(multi, sharded(4));
  const RunOutcome multi_run = partitioned.record(4, 9, 300, 0, {});
  EXPECT_GT(multi_run.lin.parts, 1u);
  // Partitioned results carry no single witness linearization.
  EXPECT_TRUE(multi_run.lin.linearization.empty());
}

TEST(Session, WholeModeForcesOnePart) {
  const Workload& multi = find_workload("sharded-counter");
  CheckOptions whole;
  whole.partition = PartitionMode::kWhole;
  const Session session(multi, whole);
  const RunOutcome run = session.record(4, 3, 200, 0, {});
  EXPECT_EQ(run.lin.parts, 1u);
  EXPECT_EQ(run.lin.verdict, LinVerdict::kLinearizable);
  // Whole-history checks keep the witness linearization (every completed
  // op appears; pending ops may legally never take effect).
  EXPECT_GE(run.lin.linearization.size(), run.history.num_completed());
  EXPECT_LE(run.lin.linearization.size(), run.history.size());
}

TEST(Session, MemoBudgetDoesNotChangeVerdicts) {
  const Workload& workload = find_workload("sharded-counter");
  CheckOptions starved = sharded(2);
  starved.memo_budget = 8;  // nearly no cache: slower, never unsound
  const Session rich(workload, sharded(2));
  const Session poor(workload, starved);
  const RunOutcome run = rich.record(4, 11, 300, 1, {});
  EXPECT_EQ(poor.check(run.history).verdict, run.lin.verdict);
}

TEST(Session, TimeBudgetReportsTimedOutUnknown) {
  const Workload& workload = find_workload("sharded-counter");
  // The checker polls the wall clock every 1024 nodes, so the history
  // must be large enough for the whole-history search to pass a poll.
  CheckOptions instant;
  instant.partition = PartitionMode::kWhole;
  instant.time_budget_ms = 1e-6;
  const Session patient(workload, sharded(2));
  const RunOutcome run = patient.record(4, 13, 4'000, 0, {});
  const LinResult rushed = Session(workload, instant).check(run.history);
  EXPECT_EQ(rushed.verdict, LinVerdict::kUnknown);
  EXPECT_TRUE(rushed.timed_out);
}

// The deprecated free functions must keep behaving like the Session
// methods they wrap.
TEST(Session, FreeFunctionWrappersMatchSessionMethods) {
  const Workload& workload = find_workload("mut-aba-stack");
  const CheckOptions opts = sharded(1);
  const Session session(workload, opts);
  const RunOutcome via_session = session.record(3, 21, 240, 0, {});
  const RunOutcome via_free = record_run(workload, 3, 21, 240, 0, {}, opts);
  EXPECT_EQ(via_session.lin.verdict, via_free.lin.verdict);
  EXPECT_EQ(via_session.history.fingerprint(), via_free.history.fingerprint());
  EXPECT_EQ(via_session.trace.fingerprint(), via_free.trace.fingerprint());
}

}  // namespace
