// Tests for the lock-free hash set (HarrisList buckets).
#include "lockfree/hash_set.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "util/rng.hpp"

namespace pwf::lockfree {
namespace {

TEST(HashSet, RejectsZeroBuckets) {
  EbrDomain domain;
  EXPECT_THROW(HashSet<int>(domain, 0), std::invalid_argument);
}

TEST(HashSet, BasicOperations) {
  EbrDomain domain;
  EbrThreadHandle handle(domain);
  HashSet<int> set(domain, 16);
  EXPECT_TRUE(set.insert(handle, 1));
  EXPECT_TRUE(set.insert(handle, 17));  // same bucket as 1 (mod 16)
  EXPECT_FALSE(set.insert(handle, 1));
  EXPECT_TRUE(set.contains(handle, 1));
  EXPECT_TRUE(set.contains(handle, 17));
  EXPECT_FALSE(set.contains(handle, 33));
  EXPECT_TRUE(set.erase(handle, 1));
  EXPECT_FALSE(set.contains(handle, 1));
  EXPECT_TRUE(set.contains(handle, 17));
  EXPECT_EQ(set.bucket_count(), 16u);
}

TEST(HashSet, StringKeys) {
  EbrDomain domain;
  EbrThreadHandle handle(domain);
  HashSet<std::string> set(domain, 8);
  EXPECT_TRUE(set.insert(handle, "alpha"));
  EXPECT_TRUE(set.insert(handle, "beta"));
  EXPECT_TRUE(set.contains(handle, "alpha"));
  EXPECT_FALSE(set.contains(handle, "gamma"));
  EXPECT_TRUE(set.erase(handle, "alpha"));
  EXPECT_EQ(set.size_slow(handle), 1u);
}

TEST(HashSet, SingleBucketDegeneratesToList) {
  EbrDomain domain;
  EbrThreadHandle handle(domain);
  HashSet<int> set(domain, 1);
  for (int k = 0; k < 100; ++k) EXPECT_TRUE(set.insert(handle, k));
  EXPECT_EQ(set.size_slow(handle), 100u);
  for (int k = 0; k < 100; ++k) EXPECT_TRUE(set.contains(handle, k));
}

TEST(HashSet, MatchesReferenceSetUnderRandomOps) {
  EbrDomain domain;
  EbrThreadHandle handle(domain);
  HashSet<int> set(domain, 32);
  std::set<int> reference;
  Xoshiro256pp rng(7);
  for (int i = 0; i < 30'000; ++i) {
    const int key = static_cast<int>(rng.uniform(500));
    switch (rng.uniform(3)) {
      case 0:
        EXPECT_EQ(set.insert(handle, key), reference.insert(key).second);
        break;
      case 1:
        EXPECT_EQ(set.erase(handle, key), reference.erase(key) > 0);
        break;
      default:
        EXPECT_EQ(set.contains(handle, key), reference.contains(key));
    }
  }
  EXPECT_EQ(set.size_slow(handle), reference.size());
  std::set<int> drained;
  set.for_each(handle, [&](const int& k) { drained.insert(k); });
  EXPECT_EQ(drained, reference);
}

TEST(HashSet, ConcurrentInsertsAreExactlyOnce) {
  EbrDomain domain;
  HashSet<int> set(domain, 64);
  constexpr int kThreads = 4;
  constexpr int kKeys = 4'000;
  std::atomic<int> successes{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      EbrThreadHandle handle(domain);
      for (int k = 0; k < kKeys; ++k) {
        if (set.insert(handle, k)) successes.fetch_add(1);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(successes.load(), kKeys);
  EbrThreadHandle handle(domain);
  EXPECT_EQ(set.size_slow(handle), static_cast<std::size_t>(kKeys));
}

TEST(HashSet, ConcurrentMixedWorkloadStaysConsistent) {
  EbrDomain domain;
  HashSet<int> set(domain, 16);
  constexpr int kKeySpace = 128;
  std::vector<std::atomic<int>> net(kKeySpace);
  for (auto& a : net) a.store(0);
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&, t] {
      EbrThreadHandle handle(domain);
      Xoshiro256pp rng(55 + t);
      for (int i = 0; i < 25'000; ++i) {
        const int key = static_cast<int>(rng.uniform(kKeySpace));
        if (rng.bernoulli(0.5)) {
          if (set.insert(handle, key)) net[key].fetch_add(1);
        } else {
          if (set.erase(handle, key)) net[key].fetch_sub(1);
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  EbrThreadHandle handle(domain);
  for (int k = 0; k < kKeySpace; ++k) {
    const int n = net[k].load();
    ASSERT_TRUE(n == 0 || n == 1);
    EXPECT_EQ(set.contains(handle, k), n == 1) << "key " << k;
  }
}

}  // namespace
}  // namespace pwf::lockfree
