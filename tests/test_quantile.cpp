// Tests for the log-linear quantile sketch: exactness below the linear
// range, the 2^-sub_bits relative-error bound, order-independent merge,
// and the fingerprint the determinism tests rely on.
#include "util/quantile.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "util/rng.hpp"

namespace pwf {
namespace {

TEST(QuantileSketch, EmptyIsAllZero) {
  QuantileSketch s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.min(), 0u);
  EXPECT_EQ(s.max(), 0u);
  EXPECT_EQ(s.quantile(0.0), 0u);
  EXPECT_EQ(s.quantile(0.5), 0u);
  EXPECT_EQ(s.quantile(1.0), 0u);
}

TEST(QuantileSketch, RejectsBadSubBits) {
  EXPECT_THROW(QuantileSketch(0), std::invalid_argument);
  EXPECT_THROW(QuantileSketch(9), std::invalid_argument);
}

TEST(QuantileSketch, SmallValuesAreExact) {
  // Below 2^sub_bits every value has its own bucket: quantiles of a
  // small-range stream are exact order statistics (by upper edge).
  QuantileSketch s(5);
  for (std::uint64_t v = 0; v < 32; ++v) s.add(v);
  EXPECT_EQ(s.count(), 32u);
  EXPECT_EQ(s.min(), 0u);
  EXPECT_EQ(s.max(), 31u);
  EXPECT_EQ(s.quantile(0.0), 0u);
  EXPECT_EQ(s.quantile(1.0), 31u);
  // Nearest-rank: the q-th sample of 0..31.
  EXPECT_EQ(s.quantile(0.5), 15u);
}

TEST(QuantileSketch, RelativeErrorBound) {
  // Deterministic heavy-tailed stream; every reported quantile must be
  // within 2^-sub_bits of the exact order statistic.
  const unsigned sub_bits = 5;
  const double tol = 1.0 / 32.0;
  Xoshiro256pp rng(12345);
  QuantileSketch s(sub_bits);
  std::vector<std::uint64_t> exact;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.uniform_double();
    const auto v = static_cast<std::uint64_t>(std::exp(14.0 * u));
    s.add(v);
    exact.push_back(v);
  }
  std::sort(exact.begin(), exact.end());
  for (double q : {0.5, 0.9, 0.99, 0.999}) {
    const auto rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(exact.size())));
    const std::uint64_t truth = exact[std::min(rank, exact.size() - 1)];
    const std::uint64_t got = s.quantile(q);
    const double rel =
        std::abs(static_cast<double>(got) - static_cast<double>(truth)) /
        std::max(1.0, static_cast<double>(truth));
    EXPECT_LE(rel, tol) << "q=" << q << " got=" << got << " truth=" << truth;
  }
}

TEST(QuantileSketch, MergeIsOrderIndependent) {
  Xoshiro256pp rng(7);
  QuantileSketch a(4), b(4), whole(4);
  for (int i = 0; i < 5000; ++i) {
    const auto v = static_cast<std::uint64_t>(rng.uniform(1u << 20));
    (i % 2 ? a : b).add(v);
    whole.add(v);
  }
  QuantileSketch ab(4), ba(4);
  ab.merge(a);
  ab.merge(b);
  ba.merge(b);
  ba.merge(a);
  EXPECT_EQ(ab.fingerprint(), ba.fingerprint());
  EXPECT_EQ(ab.fingerprint(), whole.fingerprint());
  EXPECT_EQ(ab.count(), whole.count());
  EXPECT_EQ(ab.quantile(0.99), whole.quantile(0.99));
}

TEST(QuantileSketch, MergeRejectsMismatchedSubBits) {
  QuantileSketch a(4), b(5);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(QuantileSketch, FingerprintSeparatesStreams) {
  // 70000 and 140000 are in different octaves, hence different buckets.
  QuantileSketch a, b, c;
  for (std::uint64_t v : {3u, 900u, 70000u}) a.add(v);
  for (std::uint64_t v : {3u, 900u, 140000u}) b.add(v);
  for (std::uint64_t v : {3u, 900u, 70000u, 70000u}) c.add(v);
  EXPECT_NE(a.fingerprint(), b.fingerprint());
  EXPECT_NE(a.fingerprint(), c.fingerprint());  // counts matter too
}

TEST(QuantileSketch, HandlesExtremes) {
  QuantileSketch s;
  s.add(0);
  s.add(~std::uint64_t{0});
  EXPECT_EQ(s.count(), 2u);
  EXPECT_EQ(s.min(), 0u);
  EXPECT_EQ(s.max(), ~std::uint64_t{0});
  // p100 clamps to the observed max even in the giant top bucket.
  EXPECT_EQ(s.quantile(1.0), ~std::uint64_t{0});
}

}  // namespace
}  // namespace pwf
