// Tests for the per-operation latency distribution observer, including the
// "practically wait-free" tail property the paper's thesis rests on: under
// the uniform stochastic scheduler, individual-operation latencies have an
// exponentially decaying tail rather than the unbounded worst case.
#include "core/latency.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "core/algorithms.hpp"
#include "core/simulation.hpp"

namespace pwf::core {
namespace {

TEST(LatencyDistribution, RecordsEveryCompletion) {
  constexpr std::size_t kN = 3;
  Simulation::Options opts;
  opts.num_registers = ParallelCode::registers_required();
  opts.seed = 4;
  Simulation sim(kN, ParallelCode::factory(2),
                 std::make_unique<UniformScheduler>(), opts);
  LatencyDistributionObserver observer(kN, 200.0, 100);
  sim.set_observer(&observer);
  sim.run(60'000);
  EXPECT_EQ(observer.stats().count(), sim.report().completions);
  EXPECT_EQ(observer.histogram().total(), sim.report().completions);
}

TEST(LatencyDistribution, SoloDeterministicLatency) {
  Simulation::Options opts;
  opts.num_registers = ParallelCode::registers_required();
  Simulation sim(1, ParallelCode::factory(5),
                 std::make_unique<UniformScheduler>(), opts);
  LatencyDistributionObserver observer(1, 20.0, 20);
  sim.set_observer(&observer);
  sim.run(5'000);
  EXPECT_DOUBLE_EQ(observer.stats().mean(), 5.0);
  EXPECT_DOUBLE_EQ(observer.stats().variance(), 0.0);
  EXPECT_EQ(observer.max_latency(), 5u);
  EXPECT_DOUBLE_EQ(observer.tail_fraction(5.0), 0.0);
  EXPECT_DOUBLE_EQ(observer.tail_fraction(4.0), 1.0);
}

TEST(LatencyDistribution, MeanMatchesReportIndividualLatency) {
  constexpr std::size_t kN = 4;
  Simulation::Options opts;
  opts.num_registers = ScuAlgorithm::registers_required(kN, 1);
  opts.seed = 17;
  Simulation sim(kN, scan_validate_factory(),
                 std::make_unique<UniformScheduler>(), opts);
  LatencyDistributionObserver observer(kN, 2000.0, 200);
  sim.set_observer(&observer);
  sim.run(400'000);
  // The observer's overall mean is the completion-weighted average of the
  // per-process individual latencies; under symmetry all are ~equal.
  double weighted = 0.0;
  for (std::size_t p = 0; p < kN; ++p) {
    weighted += sim.report().individual_latency(p) *
                static_cast<double>(sim.report().completions_per_process[p]);
  }
  weighted /= static_cast<double>(sim.report().completions);
  EXPECT_NEAR(observer.stats().mean(), weighted, 1e-6);
}

TEST(LatencyDistribution, ScanValidateTailDecaysExponentially) {
  // "Practically wait-free": P[latency > k * mean] should decay roughly
  // geometrically in k. Check the tail at 2x, 4x and 8x the mean.
  constexpr std::size_t kN = 8;
  Simulation::Options opts;
  opts.num_registers = ScuAlgorithm::registers_required(kN, 1);
  opts.seed = 23;
  Simulation sim(kN, scan_validate_factory(),
                 std::make_unique<UniformScheduler>(), opts);
  LatencyDistributionObserver observer(kN, 5000.0, 500);
  sim.set_observer(&observer);
  sim.run(2'000'000);
  const double mean = observer.stats().mean();
  const double t2 = observer.tail_fraction(2.0 * mean);
  const double t4 = observer.tail_fraction(4.0 * mean);
  const double t8 = observer.tail_fraction(8.0 * mean);
  EXPECT_LT(t2, 0.25);
  EXPECT_LT(t4, t2 / 2.0);
  EXPECT_LT(t8, 0.002);
  // The empirical max is a small multiple of the mean, not astronomical.
  EXPECT_LT(static_cast<double>(observer.max_latency()), 40.0 * mean);
}

TEST(LatencyDistribution, HistogramQuantilesAreOrdered) {
  constexpr std::size_t kN = 4;
  Simulation::Options opts;
  opts.num_registers = ScuAlgorithm::registers_required(kN, 1);
  opts.seed = 29;
  Simulation sim(kN, scan_validate_factory(),
                 std::make_unique<UniformScheduler>(), opts);
  LatencyDistributionObserver observer(kN, 1000.0, 200);
  sim.set_observer(&observer);
  sim.run(300'000);
  const auto& h = observer.histogram();
  EXPECT_LE(h.quantile(0.5), h.quantile(0.9));
  EXPECT_LE(h.quantile(0.9), h.quantile(0.99));
  EXPECT_GT(h.quantile(0.5), 0.0);
}

}  // namespace
}  // namespace pwf::core
