// Schedule record/replay: serialization roundtrips, bit-identical strict
// replay, lenient-mode candidate handling, and the crash-under-replay
// regression net (Scheduler::on_crash must fire identically on replay —
// the class of bug the sticky-scheduler crash fix addressed).
#include "check/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "check/explore.hpp"
#include "check/workloads.hpp"

namespace pwf::check {
namespace {

ScheduleTrace sample_trace() {
  ScheduleTrace t;
  t.workload = "sim-queue";
  t.n = 3;
  t.seed = 77;
  t.steps = {0, 0, 0, 1, 2, 1, 1, 1, 1, 0, 2, 2};
  t.crashes = {{5, 2}, {9, 0}};
  return t;
}

TEST(ScheduleTrace, SerializeParseRoundtrip) {
  const ScheduleTrace t = sample_trace();
  const ScheduleTrace back = ScheduleTrace::parse(t.serialize());
  EXPECT_EQ(back, t);
  EXPECT_EQ(back.fingerprint(), t.fingerprint());
}

TEST(ScheduleTrace, RunLengthTokensAreCompact) {
  ScheduleTrace t;
  t.workload = "w";
  t.n = 2;
  t.steps.assign(1000, 1);
  const std::string text = t.serialize();
  // 1000 identical decisions collapse to a single "1*1000" token.
  EXPECT_NE(text.find("1*1000"), std::string::npos);
  EXPECT_EQ(ScheduleTrace::parse(text), t);
}

TEST(ScheduleTrace, ParseRejectsGarbage) {
  EXPECT_THROW(ScheduleTrace::parse("not-a-trace/9\n"), std::invalid_argument);
  EXPECT_THROW(ScheduleTrace::parse("pwf-trace/1\nn 2\nsched 5\n"),
               std::invalid_argument);  // pid out of range
  EXPECT_THROW(ScheduleTrace::parse("pwf-trace/1\nn 2\nbogus line\n"),
               std::invalid_argument);
}

TEST(ScheduleTrace, FingerprintCoversCrashPlan) {
  const ScheduleTrace a = sample_trace();
  ScheduleTrace b = a;
  b.crashes[0].tau += 1;
  EXPECT_NE(a.fingerprint(), b.fingerprint());
}

TEST(Replay, StrictReplayIsBitIdentical) {
  const Workload& w = find_workload("sim-queue");
  const auto recorded = record_run(w, 3, 42, 160, /*variant=*/1,
                                   {{40, 1}}, CheckOptions{});
  const auto once = replay_trace(w, recorded.trace, /*strict=*/true, {});
  const auto twice = replay_trace(w, recorded.trace, /*strict=*/true, {});
  EXPECT_EQ(once.history.fingerprint(), recorded.history.fingerprint());
  EXPECT_EQ(once.history.fingerprint(), twice.history.fingerprint());
  EXPECT_EQ(once.trace.fingerprint(), recorded.trace.fingerprint());
}

TEST(Replay, SurvivesSerializationRoundtrip) {
  const Workload& w = find_workload("sim-stack");
  const auto recorded =
      record_run(w, 3, 7, 120, /*variant=*/0, {}, CheckOptions{});
  const ScheduleTrace parsed = ScheduleTrace::parse(recorded.trace.serialize());
  const auto replayed = replay_trace(w, parsed, /*strict=*/true, {});
  EXPECT_EQ(replayed.history.fingerprint(), recorded.history.fingerprint());
}

TEST(Replay, CrashHandlingUnderReplayMatchesRecording) {
  // The regression net over crash notification: when a recorded run
  // crashed processes, the strict replay must observe the *same* crash
  // victims in the same order through Scheduler::on_crash, and produce
  // the same history. A scheduler that mishandles on_crash (e.g. keeps
  // per-process state keyed by a stale active set) diverges here.
  const Workload& w = find_workload("sim-queue");
  const std::vector<CrashEvent> plan{{30, 2}, {70, 0}};
  const auto recorded =
      record_run(w, 3, 1234, 200, /*variant=*/1, plan, CheckOptions{});
  ASSERT_EQ(recorded.crash_log, (std::vector<std::size_t>{2, 0}));
  ASSERT_EQ(recorded.trace.crashes, plan);

  const auto replayed = replay_trace(w, recorded.trace, /*strict=*/true, {});
  EXPECT_EQ(replayed.crash_log, recorded.crash_log);
  EXPECT_EQ(replayed.history.fingerprint(), recorded.history.fingerprint());
  EXPECT_EQ(replayed.trace.steps, recorded.trace.steps);
}

TEST(Replay, StrictModeThrowsOnDivergence) {
  const Workload& w = find_workload("sim-queue");
  const auto recorded =
      record_run(w, 3, 99, 100, /*variant=*/0, {}, CheckOptions{});
  // Crash pid 1 at tau 10 but keep the schedule that still *uses* pid 1
  // afterwards: the script becomes unplayable in strict mode.
  ScheduleTrace broken = recorded.trace;
  broken.crashes = {{10, 1}};
  EXPECT_THROW(replay_trace(w, broken, /*strict=*/true, {}),
               std::runtime_error);
  // Lenient mode skips the now-inactive entries instead of throwing.
  EXPECT_NO_THROW(replay_trace(w, broken, /*strict=*/false, {}));
}

TEST(Replay, LenientModeFallsBackWhenScriptExhausted) {
  std::vector<std::uint32_t> script{1, 1};
  ReplayScheduler lenient(script, /*strict=*/false);
  Xoshiro256pp rng(1);
  const std::vector<std::size_t> active{0, 1, 2};
  EXPECT_EQ(lenient.next(0, active, rng), 1u);
  EXPECT_EQ(lenient.next(1, active, rng), 1u);
  // Script exhausted: lowest active pid.
  EXPECT_EQ(lenient.next(2, active, rng), 0u);

  ReplayScheduler strict(script, /*strict=*/true);
  (void)strict.next(0, active, rng);
  (void)strict.next(1, active, rng);
  EXPECT_THROW(strict.next(2, active, rng), std::runtime_error);
}

}  // namespace
}  // namespace pwf::check
