// Policy-generic leak-accounting tests for the pwf::mem reclaimers
// (mem/reclaimer.hpp): the same typed suite runs over mem::Epoch,
// mem::HazardEra, and mem::WaitFreePool, certifying the shared contract
// — every retirement is eventually freed exactly once, teardown flushes
// orphans, protected loads return current values — plus the one place
// the policies are *supposed* to differ: what a stalled pinned reader
// does to retired-memory growth. Pool-specific failure modes
// (PoolExhausted, block-size validation, orphan stealing) get their own
// non-typed tests. Run under ASan/TSan these are also the
// use-after-free and data-race gate for the reclaimers themselves.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "mem/epoch.hpp"
#include "mem/hazard_era.hpp"
#include "mem/pool.hpp"

namespace {

using namespace pwf;

// Destructor-counting payload: proves deleters run exactly once.
struct Tracked {
  explicit Tracked(std::atomic<int>* counter) : counter_(counter) {}
  ~Tracked() { counter_->fetch_add(1, std::memory_order_relaxed); }
  std::atomic<int>* counter_;
  std::uint64_t pad_[3]{};
};

template <typename Mem>
std::unique_ptr<typename Mem::Domain> make_domain(
    std::size_t pool_capacity = 1 << 14, std::size_t max_threads = 8) {
  if constexpr (std::is_same_v<Mem, mem::WaitFreePool>) {
    return std::make_unique<mem::WaitFreePoolDomain>(
        sizeof(Tracked), pool_capacity, max_threads);
  } else if constexpr (std::is_same_v<Mem, mem::HazardEra>) {
    return std::make_unique<mem::HazardEraDomain>(max_threads);
  } else {
    return std::make_unique<lockfree::EbrDomain>(max_threads);
  }
}

template <typename Mem>
class MemReclaimTest : public ::testing::Test {};

using AllPolicies =
    ::testing::Types<mem::Epoch, mem::HazardEra, mem::WaitFreePool>;
TYPED_TEST_SUITE(MemReclaimTest, AllPolicies);

TYPED_TEST(MemReclaimTest, SatisfiesReclaimerConcept) {
  static_assert(mem::Reclaimer<TypeParam>);
  EXPECT_STREQ(mem::reclaim_policy_name(TypeParam::kPolicy),
               TypeParam::kName);
}

// Every retirement is freed exactly once, and the domain's accounting
// reaches retired == 0 / freed == N once collection has caught up.
TYPED_TEST(MemReclaimTest, RetireCollectFreesEverythingExactlyOnce) {
  using Mem = TypeParam;
  constexpr int kNodes = 300;
  std::atomic<int> destroyed{0};
  auto domain = make_domain<Mem>();
  {
    typename Mem::ThreadHandle handle(*domain);
    for (int i = 0; i < kNodes; ++i) {
      Tracked* p = Mem::template create<Tracked>(handle, &destroyed);
      Mem::retire(handle, p);
    }
    // No reader is pinned: a few collect rounds must drain the lot
    // (EBR needs one round per epoch bucket, the era policies one).
    for (int round = 0; round < 4; ++round) handle.collect();
    EXPECT_EQ(handle.pending(), 0u);
  }
  EXPECT_EQ(destroyed.load(), kNodes);
  EXPECT_EQ(domain->retired_count(), 0u);
  EXPECT_EQ(domain->freed_count(), static_cast<std::size_t>(kNodes));
  EXPECT_EQ(domain->retired_bytes(), 0u);
  EXPECT_GE(domain->peak_retired_bytes(), sizeof(Tracked));
}

// destroy() is the never-published fast path: immediate, not counted as
// a retirement.
TYPED_TEST(MemReclaimTest, DestroyIsImmediateAndUncounted) {
  using Mem = TypeParam;
  std::atomic<int> destroyed{0};
  auto domain = make_domain<Mem>();
  typename Mem::ThreadHandle handle(*domain);
  for (int i = 0; i < 100; ++i) {
    Tracked* p = Mem::template create<Tracked>(handle, &destroyed);
    Mem::destroy(handle, p);
  }
  EXPECT_EQ(destroyed.load(), 100);
  EXPECT_EQ(domain->retired_count(), 0u);
}

// A handle destroyed with retirements still pending hands them to the
// domain, whose destructor runs the deleters: nothing leaks, nothing
// double-frees, even when no surviving handle ever collects.
TYPED_TEST(MemReclaimTest, TeardownFlushesOrphanedRetirements) {
  using Mem = TypeParam;
  constexpr int kNodes = 50;
  std::atomic<int> destroyed{0};
  {
    auto domain = make_domain<Mem>();
    {
      typename Mem::ThreadHandle pinned(*domain);
      const auto guard = pinned.pin();  // keeps the retirements blocked
      typename Mem::ThreadHandle handle(*domain);
      for (int i = 0; i < kNodes; ++i) {
        Mem::retire(handle,
                    Mem::template create<Tracked>(handle, &destroyed));
      }
    }
    // Both handles are gone; the pending blocks are domain orphans now.
    EXPECT_EQ(destroyed.load() + static_cast<int>(domain->retired_count()),
              kNodes);
  }
  EXPECT_EQ(destroyed.load(), kNodes);
}

// Protected loads return the currently published pointer (freshly
// swapped values included), and the creating thread may dereference a
// node it just published even if a competitor retires it immediately.
TYPED_TEST(MemReclaimTest, ProtectedLoadTracksPublishedPointer) {
  using Mem = TypeParam;
  std::atomic<int> destroyed{0};
  auto domain = make_domain<Mem>();
  typename Mem::ThreadHandle handle(*domain);
  std::atomic<Tracked*> shared{nullptr};

  Tracked* first = Mem::template create<Tracked>(handle, &destroyed);
  shared.store(first, std::memory_order_release);
  {
    const auto guard = handle.pin();
    EXPECT_EQ(Mem::load(handle, shared), first);
    Tracked* second = Mem::template create<Tracked>(handle, &destroyed);
    shared.store(second, std::memory_order_release);
    EXPECT_EQ(Mem::load(handle, shared), second);
    // `first` is unreachable; retiring it under our own pin must not
    // free it before the guard drops.
    Mem::retire(handle, first);
    EXPECT_EQ(destroyed.load(), 0);
    Mem::retire(handle, second);
  }
  for (int round = 0; round < 4; ++round) handle.collect();
  EXPECT_EQ(destroyed.load(), 2);
}

// The reclamation spectrum's separating behaviour: with one reader
// pinned for the whole run, epoch reclamation can free *nothing* retired
// after the pin, while the era policies keep the unreclaimed backlog
// bounded by the scan cadence, not the operation count.
TYPED_TEST(MemReclaimTest, StalledReaderMemoryGrowth) {
  using Mem = TypeParam;
  constexpr int kNodes = 8192;
  std::atomic<int> destroyed{0};
  auto domain = make_domain<Mem>();
  typename Mem::ThreadHandle staller(*domain);
  typename Mem::ThreadHandle churner(*domain);
  std::atomic<Tracked*> src{
      Mem::template create<Tracked>(staller, &destroyed)};
  {
    const auto guard = staller.pin();  // the injected stall
    (void)Mem::load(staller, src);

    for (int i = 0; i < kNodes; ++i) {
      Mem::retire(churner,
                  Mem::template create<Tracked>(churner, &destroyed));
    }
    if constexpr (Mem::kPolicy == mem::ReclaimPolicy::kEpoch) {
      // The frozen epoch blocks every one of the churner's retirements.
      EXPECT_EQ(domain->retired_count(), static_cast<std::size_t>(kNodes));
      EXPECT_EQ(destroyed.load(), 0);
    } else {
      // Only blocks whose lifetime intersects the staller's frozen
      // reservation stay pending; the backlog must not scale with
      // kNodes (scan threshold 64 plus the handful pinned at stall).
      EXPECT_LT(domain->retired_count(), 1024u);
      EXPECT_GT(destroyed.load(), kNodes / 2);
    }
  }
  // Stall over: everything drains.
  Mem::retire(churner, src.load(std::memory_order_relaxed));
  for (int round = 0; round < 4; ++round) {
    staller.collect();
    churner.collect();
  }
  EXPECT_EQ(domain->retired_count(), 0u);
  EXPECT_EQ(destroyed.load(), kNodes + 1);
}

// Concurrent create/retire churn with all threads sharing one atomic
// cell: the ASan/TSan gate for the reclaimers' own synchronization. The
// dereference of a protected load races against competitors' retires —
// a reclamation bug here is a use-after-free the sanitizers catch.
TYPED_TEST(MemReclaimTest, ConcurrentChurnNoUseAfterFree) {
  using Mem = TypeParam;
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 4000;
  std::atomic<int> destroyed{0};
  auto domain = make_domain<Mem>();
  std::atomic<Tracked*> shared{nullptr};
  {
    typename Mem::ThreadHandle boot(*domain);
    shared.store(Mem::template create<Tracked>(boot, &destroyed),
                 std::memory_order_release);
  }

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      typename Mem::ThreadHandle handle(*domain);
      for (int i = 0; i < kOpsPerThread; ++i) {
        const auto guard = handle.pin();
        Tracked* fresh = Mem::template create<Tracked>(handle, &destroyed);
        for (;;) {
          Tracked* cur = Mem::load(handle, shared);
          // The racing dereference the policies must keep safe:
          ASSERT_NE(cur->counter_, nullptr);
          if (shared.compare_exchange_weak(cur, fresh,
                                           std::memory_order_acq_rel,
                                           std::memory_order_acquire)) {
            Mem::retire(handle, cur);
            break;
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  // Worker handles may have departed with pending (then-blocked)
  // retirements, which sit in the domain's orphan list until its
  // destructor; the accounting identity still holds exactly.
  const std::size_t total =
      static_cast<std::size_t>(kThreads) * kOpsPerThread + 1;
  {
    typename Mem::ThreadHandle sweeper(*domain);
    Mem::retire(sweeper, shared.load(std::memory_order_relaxed));
    for (int round = 0; round < 4; ++round) sweeper.collect();
  }
  EXPECT_EQ(static_cast<std::size_t>(destroyed.load()) +
                domain->retired_count(),
            total);
  domain.reset();  // final flush frees the orphans
  EXPECT_EQ(static_cast<std::size_t>(destroyed.load()), total);
}

// --------------------------------------------------------------------
// Pool-specific failure modes.

TEST(WaitFreePoolTest, ExhaustionThrowsPoolExhausted) {
  mem::WaitFreePoolDomain domain(sizeof(std::uint64_t), 4, 2);
  mem::WaitFreePoolThreadHandle handle(domain);
  std::vector<std::uint64_t*> live;
  for (int i = 0; i < 4; ++i) {
    live.push_back(handle.create<std::uint64_t>(7));
  }
  EXPECT_EQ(domain.live_blocks(), 4u);
  EXPECT_THROW(handle.create<std::uint64_t>(8), mem::PoolExhausted);
  // PoolExhausted is a bad_alloc, so generic handlers also catch it.
  EXPECT_THROW(handle.create<std::uint64_t>(8), std::bad_alloc);
  for (std::uint64_t* p : live) handle.destroy(p);
  // Recycled capacity is allocatable again.
  std::uint64_t* again = handle.create<std::uint64_t>(9);
  EXPECT_EQ(*again, 9u);
  handle.destroy(again);
}

TEST(WaitFreePoolTest, OversizedPayloadIsRejected) {
  struct Big {
    std::uint64_t a[8];
  };
  mem::WaitFreePoolDomain domain(sizeof(std::uint64_t), 4, 2);
  mem::WaitFreePoolThreadHandle handle(domain);
  EXPECT_THROW(handle.create<Big>(), std::invalid_argument);
}

TEST(WaitFreePoolTest, ZeroSizedDomainIsRejected) {
  EXPECT_THROW(mem::WaitFreePoolDomain(0, 4), std::invalid_argument);
  EXPECT_THROW(mem::WaitFreePoolDomain(8, 0), std::invalid_argument);
}

// A tiny arena survives indefinitely under create/destroy cycling —
// the constant-footprint property the fixed pool exists for.
TEST(WaitFreePoolTest, TinyArenaRecyclesForever) {
  mem::WaitFreePoolDomain domain(sizeof(std::uint64_t), 2, 2);
  mem::WaitFreePoolThreadHandle handle(domain);
  for (int i = 0; i < 1000; ++i) {
    std::uint64_t* p = handle.create<std::uint64_t>(i);
    EXPECT_EQ(*p, static_cast<std::uint64_t>(i));
    handle.destroy(p);
  }
  EXPECT_EQ(domain.live_blocks(), 0u);
}

// Blocks freed or retired by a departed handle are stolen by whichever
// handle hits the allocation slow path next.
TEST(WaitFreePoolTest, DepartedHandleBlocksAreStolen) {
  mem::WaitFreePoolDomain domain(sizeof(std::uint64_t), 8, 2);
  {
    mem::WaitFreePoolThreadHandle first(domain);
    std::vector<std::uint64_t*> blocks;
    for (int i = 0; i < 8; ++i) blocks.push_back(first.create<std::uint64_t>(i));
    for (std::uint64_t* p : blocks) first.retire(p);
  }  // first departs; its retired blocks become domain orphans
  mem::WaitFreePoolThreadHandle second(domain);
  std::vector<std::uint64_t*> claimed;
  for (int i = 0; i < 8; ++i) {
    claimed.push_back(second.create<std::uint64_t>(100 + i));
  }
  for (std::size_t i = 0; i < claimed.size(); ++i) {
    EXPECT_EQ(*claimed[i], 100 + i);
    second.destroy(claimed[i]);
  }
}

// --------------------------------------------------------------------
// Policy name/parse round trip (the CLI surface of mem/reclaimer.hpp).

TEST(ReclaimPolicyTest, NameParseRoundTrip) {
  for (const mem::ReclaimPolicy policy : mem::kAllReclaimPolicies) {
    const auto parsed =
        mem::parse_reclaim_policy(mem::reclaim_policy_name(policy));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, policy);
  }
  EXPECT_EQ(mem::parse_reclaim_policy("ebr"), mem::ReclaimPolicy::kEpoch);
  EXPECT_EQ(mem::parse_reclaim_policy("hazard-era"),
            mem::ReclaimPolicy::kHazardEra);
  EXPECT_EQ(mem::parse_reclaim_policy("wf-pool"), mem::ReclaimPolicy::kPool);
  EXPECT_EQ(mem::parse_reclaim_policy("bogus"), std::nullopt);
}

}  // namespace
