// Tests for the paper's algorithms as step machines: exact step sequences,
// completion points, and contention behaviour.
#include "core/algorithms.hpp"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "util/rng.hpp"

namespace pwf::core {
namespace {

TEST(ScuAlgorithm, RejectsBadParameters) {
  EXPECT_THROW(ScuAlgorithm(0, 2, 0, 0), std::invalid_argument);  // s < 1
  EXPECT_THROW(ScuAlgorithm(2, 2, 0, 1), std::invalid_argument);  // pid >= n
}

TEST(ScuAlgorithm, SoloProcessCompletesEveryQPlusSPlusOneSteps) {
  // Alone, SCU(q, s) never fails its CAS: one op = q + s + 1 steps.
  for (std::size_t q : {0, 1, 3}) {
    for (std::size_t s : {1, 2, 4}) {
      SharedMemory mem(ScuAlgorithm::registers_required(1, s));
      ScuAlgorithm alg(0, 1, q, s);
      for (int op = 0; op < 5; ++op) {
        for (std::size_t i = 0; i + 1 < q + s + 1; ++i) {
          EXPECT_FALSE(alg.step(mem)) << "q=" << q << " s=" << s;
        }
        EXPECT_TRUE(alg.step(mem)) << "q=" << q << " s=" << s;
      }
    }
  }
}

TEST(ScuAlgorithm, FailedValidationRestartsScanNotPreamble) {
  // Two interleaved processes: the loser re-enters the scan (s + 1 steps to
  // retry), not the preamble.
  constexpr std::size_t kQ = 5, kS = 1;
  SharedMemory mem(ScuAlgorithm::registers_required(2, kS));
  ScuAlgorithm a(0, 2, kQ, kS);
  ScuAlgorithm b(1, 2, kQ, kS);
  // Drive both through the preamble (q steps each) and the scan (1 step).
  for (std::size_t i = 0; i < kQ + 1; ++i) {
    EXPECT_FALSE(a.step(mem));
    EXPECT_FALSE(b.step(mem));
  }
  // Both now validate; a wins, b fails.
  EXPECT_TRUE(a.step(mem));
  EXPECT_FALSE(b.step(mem));
  // b needs exactly scan (1) + CAS (1) more steps, NOT q more.
  EXPECT_FALSE(b.step(mem));  // rescan
  EXPECT_TRUE(b.step(mem));   // revalidate, now unopposed
}

TEST(ScuAlgorithm, ProposedValuesAreUnique) {
  // After any completed operation, R holds a value distinct from all prior
  // ones (attempt counter * n + pid + 1 is strictly increasing per process
  // and disjoint across processes).
  SharedMemory mem(ScuAlgorithm::registers_required(2, 1));
  ScuAlgorithm a(0, 2, 0, 1);
  std::set<Value> seen{mem.peek(0)};
  for (int op = 0; op < 10; ++op) {
    while (!a.step(mem)) {
    }
    const Value v = mem.peek(0);
    EXPECT_FALSE(seen.contains(v));
    seen.insert(v);
  }
}

TEST(ScuAlgorithm, RegistersRequired) {
  EXPECT_EQ(ScuAlgorithm::registers_required(4, 3), 7u);
  EXPECT_EQ(ScuAlgorithm::registers_required(1, 1), 2u);
}

TEST(ScuAlgorithm, FactoryBuildsPerProcessMachines) {
  const auto factory = ScuAlgorithm::factory(2, 3);
  const auto machine = factory(1, 4);
  EXPECT_EQ(machine->name(), "SCU(2,3)");
}

TEST(ParallelCode, CompletesEveryQSteps) {
  SharedMemory mem(1);
  ParallelCode alg(0, 4);
  for (int op = 0; op < 3; ++op) {
    EXPECT_FALSE(alg.step(mem));
    EXPECT_FALSE(alg.step(mem));
    EXPECT_FALSE(alg.step(mem));
    EXPECT_TRUE(alg.step(mem));
  }
}

TEST(ParallelCode, QOneCompletesEveryStep) {
  SharedMemory mem(1);
  ParallelCode alg(0, 1);
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(alg.step(mem));
}

TEST(ParallelCode, RejectsZeroQ) {
  EXPECT_THROW(ParallelCode(0, 0), std::invalid_argument);
}

TEST(FetchAndIncrement, SoloAlwaysSucceeds) {
  SharedMemory mem(1);
  FetchAndIncrement alg(0);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(alg.step(mem));
    EXPECT_EQ(mem.peek(0), static_cast<Value>(i + 1));
    EXPECT_EQ(alg.local_value(), static_cast<Value>(i + 1));
  }
}

TEST(FetchAndIncrement, LoserAdoptsCurrentValueThenWins) {
  SharedMemory mem(1);
  FetchAndIncrement a(0);
  FetchAndIncrement b(1);
  EXPECT_TRUE(a.step(mem));   // R: 0 -> 1; a holds 1
  EXPECT_FALSE(b.step(mem));  // b's CAS(0 -> 1) fails, adopts current 1
  EXPECT_EQ(b.local_value(), 1u);
  EXPECT_TRUE(b.step(mem));  // CAS(1 -> 2) succeeds
  EXPECT_EQ(mem.peek(0), 2u);
  // Now a is stale: it fails once, then wins.
  EXPECT_FALSE(a.step(mem));
  EXPECT_TRUE(a.step(mem));
  EXPECT_EQ(mem.peek(0), 3u);
}

TEST(FetchAndIncrement, EveryIncrementIsExactlyOnce) {
  // Interleave arbitrarily; total completions == final register value.
  SharedMemory mem(1);
  FetchAndIncrement a(0);
  FetchAndIncrement b(1);
  FetchAndIncrement c(2);
  int completions = 0;
  Xoshiro256pp rng(9);
  FetchAndIncrement* machines[3] = {&a, &b, &c};
  for (int i = 0; i < 3000; ++i) {
    if (machines[rng.uniform(3)]->step(mem)) ++completions;
  }
  EXPECT_EQ(mem.peek(0), static_cast<Value>(completions));
}

TEST(UnboundedLockFree, WinnerPaysNoPenalty) {
  SharedMemory mem(2);
  UnboundedLockFree alg(0, 4);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(alg.step(mem));
    EXPECT_EQ(alg.pending_penalty_reads(), 0u);
  }
  EXPECT_EQ(mem.peek(0), 5u);
}

TEST(UnboundedLockFree, LoserPenaltyGrowsWithValue) {
  constexpr std::size_t kN = 3;
  SharedMemory mem(2);
  UnboundedLockFree winner(0, kN);
  UnboundedLockFree loser(1, kN);
  EXPECT_TRUE(winner.step(mem));  // C: 0 -> 1
  EXPECT_FALSE(loser.step(mem));  // loser fails at v=0, observes 1
  // Penalty = n^2 * v = 9 * 1 = 9 reads before the next CAS attempt.
  EXPECT_EQ(loser.pending_penalty_reads(), 9u);
  for (int i = 0; i < 9; ++i) EXPECT_FALSE(loser.step(mem));
  EXPECT_EQ(loser.pending_penalty_reads(), 0u);
  // Winner advances twice more; loser fails again with larger penalty.
  EXPECT_TRUE(winner.step(mem));
  EXPECT_TRUE(winner.step(mem));  // C = 3
  EXPECT_FALSE(loser.step(mem));  // fails at v=1, observes 3
  EXPECT_EQ(loser.pending_penalty_reads(), 27u);
}

TEST(UnboundedLockFree, IsLockFreeSomeProcessAlwaysProgresses) {
  // Under any interleaving without penalties pending for everyone, a CAS
  // attempt on C either succeeds or means someone else succeeded; total
  // completions equals the final value of C.
  SharedMemory mem(2);
  UnboundedLockFree a(0, 2);
  UnboundedLockFree b(1, 2);
  Xoshiro256pp rng(4);
  int completions = 0;
  for (int i = 0; i < 5000; ++i) {
    UnboundedLockFree& m = rng.bernoulli(0.5) ? a : b;
    if (m.step(mem)) ++completions;
  }
  EXPECT_EQ(mem.peek(0), static_cast<Value>(completions));
  EXPECT_GT(completions, 0);
}

}  // namespace
}  // namespace pwf::core
