// Tests for epoch-based reclamation: epoch advancement, deferred freeing,
// pin semantics, orphan handover, and multithreaded churn without leaks.
#include "lockfree/ebr.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

namespace pwf::lockfree {
namespace {

// Counts live instances so tests can assert exact reclamation.
struct Tracked {
  explicit Tracked(std::atomic<int>& live) : live_(&live) { ++*live_; }
  ~Tracked() { --*live_; }
  std::atomic<int>* live_;
};

TEST(Ebr, RetiredNodeIsNotFreedWhileEpochPinned) {
  std::atomic<int> live{0};
  EbrDomain domain;
  EbrThreadHandle handle(domain);
  auto* node = new Tracked(live);
  {
    const EbrGuard guard = handle.pin();
    handle.retire(node);
    EXPECT_EQ(live.load(), 1);
    // Even forced collection cannot advance the epoch past a pinned reader
    // twice, so the node survives.
    handle.collect();
    handle.collect();
    EXPECT_EQ(live.load(), 1);
  }
  // Unpinned: a couple of collections advance the epoch twice and free it.
  handle.collect();
  handle.collect();
  handle.collect();
  EXPECT_EQ(live.load(), 0);
  EXPECT_EQ(domain.freed_count(), 1u);
}

TEST(Ebr, UnpinnedRetireIsFreedAfterCollects) {
  std::atomic<int> live{0};
  EbrDomain domain;
  EbrThreadHandle handle(domain);
  handle.retire(new Tracked(live));
  for (int i = 0; i < 4; ++i) handle.collect();
  EXPECT_EQ(live.load(), 0);
}

TEST(Ebr, AutomaticCollectionOnThreshold) {
  std::atomic<int> live{0};
  EbrDomain domain;
  EbrThreadHandle handle(domain);
  // Retire far past the scan threshold without explicit collect() calls;
  // the handle must bound its pending list by collecting automatically.
  for (int i = 0; i < 1000; ++i) handle.retire(new Tracked(live));
  EXPECT_LT(handle.pending(), 200u);
  EXPECT_LT(live.load(), 200);
}

TEST(Ebr, HandleDestructorHandsOrphansToDomain) {
  std::atomic<int> live{0};
  {
    EbrDomain domain;
    {
      EbrThreadHandle pinner_handle(domain);
      // A second thread's handle retires nodes while the first handle's
      // guard keeps the epoch pinned, so they cannot be freed yet.
      const EbrGuard guard = pinner_handle.pin();
      {
        EbrThreadHandle retirer(domain);
        for (int i = 0; i < 10; ++i) retirer.retire(new Tracked(live));
        // retirer is destroyed here with nodes still unreclaimable.
      }
      EXPECT_GT(live.load(), 0);
    }
    // Domain destructor frees all orphans.
  }
  EXPECT_EQ(live.load(), 0);
}

TEST(Ebr, GlobalEpochAdvancesWhenAllCurrent) {
  EbrDomain domain;
  EbrThreadHandle handle(domain);
  const std::uint64_t before = domain.global_epoch();
  handle.collect();  // try_advance with no pinned threads succeeds
  EXPECT_GT(domain.global_epoch(), before);
}

TEST(Ebr, EpochDoesNotAdvancePastStalePinnedThread) {
  EbrDomain domain;
  EbrThreadHandle a(domain);
  EbrThreadHandle b(domain);
  const EbrGuard guard_a = a.pin();  // a pins the current epoch
  const std::uint64_t pinned_at = domain.global_epoch();
  b.collect();  // advances at most once (a observed the pre-advance epoch)
  b.collect();
  b.collect();
  EXPECT_LE(domain.global_epoch(), pinned_at + 1);
}

TEST(Ebr, SlotExhaustionThrows) {
  // Capacity is a constructor parameter now; exhaustion past it is a
  // loud failure, and releasing a handle frees its slot for reuse.
  EbrDomain domain(3);
  EXPECT_EQ(domain.max_threads(), 3u);
  std::vector<std::unique_ptr<EbrThreadHandle>> handles;
  for (std::size_t i = 0; i < domain.max_threads(); ++i) {
    handles.push_back(std::make_unique<EbrThreadHandle>(domain));
  }
  EXPECT_THROW(EbrThreadHandle extra(domain), std::runtime_error);
  handles.pop_back();
  EXPECT_NO_THROW(EbrThreadHandle reuse(domain));
}

TEST(Ebr, DefaultCapacityIsHistoricalCap) {
  EbrDomain domain;
  EXPECT_EQ(domain.max_threads(), EbrDomain::kMaxThreads);
}

TEST(Ebr, ZeroCapacityIsRejected) {
  EXPECT_THROW(EbrDomain bad(0), std::invalid_argument);
}

TEST(Ebr, ExhaustionMessageNamesTheCapacity) {
  EbrDomain domain(1);
  EbrThreadHandle only(domain);
  try {
    EbrThreadHandle extra(domain);
    FAIL() << "expected slot exhaustion to throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("capacity 1"), std::string::npos)
        << e.what();
  }
}

TEST(Ebr, MultithreadedChurnReclaimsEverything) {
  std::atomic<int> live{0};
  {
    EbrDomain domain;
    constexpr int kThreads = 4;
    constexpr int kOpsPerThread = 20'000;
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&] {
        EbrThreadHandle handle(domain);
        for (int i = 0; i < kOpsPerThread; ++i) {
          const EbrGuard guard = handle.pin();
          handle.retire(new Tracked(live));
        }
      });
    }
    for (auto& w : workers) w.join();
    // Everything was retired; most is already freed, and whatever the
    // departing handles handed over stays counted as retired until the
    // domain destructor frees it — so retired always equals still-live.
    EXPECT_EQ(static_cast<int>(domain.retired_count()), live.load());
  }
  EXPECT_EQ(live.load(), 0) << "leak: some retired nodes were never freed";
}

TEST(Ebr, AccountingIsConsistent) {
  std::atomic<int> live{0};
  EbrDomain domain;
  EbrThreadHandle handle(domain);
  for (int i = 0; i < 100; ++i) handle.retire(new Tracked(live));
  for (int i = 0; i < 4; ++i) handle.collect();
  EXPECT_EQ(domain.freed_count() + domain.retired_count(), 100u);
  EXPECT_EQ(static_cast<int>(domain.retired_count()), live.load());
}

TEST(Ebr, ByteTelemetryTracksRetiredPayloads) {
  std::atomic<int> live{0};
  EbrDomain domain;
  EbrThreadHandle handle(domain);
  {
    // Pin so nothing can be freed: retired bytes must climb to exactly
    // 10 nodes' worth and the peak must record it.
    const EbrGuard guard = handle.pin();
    for (int i = 0; i < 10; ++i) handle.retire(new Tracked(live));
    EXPECT_EQ(domain.retired_bytes(), 10 * sizeof(Tracked));
  }
  for (int i = 0; i < 4; ++i) handle.collect();
  EXPECT_EQ(domain.retired_bytes(), 0u);
  EXPECT_EQ(domain.peak_retired_bytes(), 10 * sizeof(Tracked));
}

}  // namespace
}  // namespace pwf::lockfree
