// Tests for epoch-based reclamation: epoch advancement, deferred freeing,
// pin semantics, orphan handover, and multithreaded churn without leaks.
#include "lockfree/ebr.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace pwf::lockfree {
namespace {

// Counts live instances so tests can assert exact reclamation.
struct Tracked {
  explicit Tracked(std::atomic<int>& live) : live_(&live) { ++*live_; }
  ~Tracked() { --*live_; }
  std::atomic<int>* live_;
};

TEST(Ebr, RetiredNodeIsNotFreedWhileEpochPinned) {
  std::atomic<int> live{0};
  EbrDomain domain;
  EbrThreadHandle handle(domain);
  auto* node = new Tracked(live);
  {
    const EbrGuard guard = handle.pin();
    handle.retire(node);
    EXPECT_EQ(live.load(), 1);
    // Even forced collection cannot advance the epoch past a pinned reader
    // twice, so the node survives.
    handle.collect();
    handle.collect();
    EXPECT_EQ(live.load(), 1);
  }
  // Unpinned: a couple of collections advance the epoch twice and free it.
  handle.collect();
  handle.collect();
  handle.collect();
  EXPECT_EQ(live.load(), 0);
  EXPECT_EQ(domain.freed_count(), 1u);
}

TEST(Ebr, UnpinnedRetireIsFreedAfterCollects) {
  std::atomic<int> live{0};
  EbrDomain domain;
  EbrThreadHandle handle(domain);
  handle.retire(new Tracked(live));
  for (int i = 0; i < 4; ++i) handle.collect();
  EXPECT_EQ(live.load(), 0);
}

TEST(Ebr, AutomaticCollectionOnThreshold) {
  std::atomic<int> live{0};
  EbrDomain domain;
  EbrThreadHandle handle(domain);
  // Retire far past the scan threshold without explicit collect() calls;
  // the handle must bound its pending list by collecting automatically.
  for (int i = 0; i < 1000; ++i) handle.retire(new Tracked(live));
  EXPECT_LT(handle.pending(), 200u);
  EXPECT_LT(live.load(), 200);
}

TEST(Ebr, HandleDestructorHandsOrphansToDomain) {
  std::atomic<int> live{0};
  {
    EbrDomain domain;
    {
      EbrThreadHandle pinner_handle(domain);
      // A second thread's handle retires nodes while the first handle's
      // guard keeps the epoch pinned, so they cannot be freed yet.
      const EbrGuard guard = pinner_handle.pin();
      {
        EbrThreadHandle retirer(domain);
        for (int i = 0; i < 10; ++i) retirer.retire(new Tracked(live));
        // retirer is destroyed here with nodes still unreclaimable.
      }
      EXPECT_GT(live.load(), 0);
    }
    // Domain destructor frees all orphans.
  }
  EXPECT_EQ(live.load(), 0);
}

TEST(Ebr, GlobalEpochAdvancesWhenAllCurrent) {
  EbrDomain domain;
  EbrThreadHandle handle(domain);
  const std::uint64_t before = domain.global_epoch();
  handle.collect();  // try_advance with no pinned threads succeeds
  EXPECT_GT(domain.global_epoch(), before);
}

TEST(Ebr, EpochDoesNotAdvancePastStalePinnedThread) {
  EbrDomain domain;
  EbrThreadHandle a(domain);
  EbrThreadHandle b(domain);
  const EbrGuard guard_a = a.pin();  // a pins the current epoch
  const std::uint64_t pinned_at = domain.global_epoch();
  b.collect();  // advances at most once (a observed the pre-advance epoch)
  b.collect();
  b.collect();
  EXPECT_LE(domain.global_epoch(), pinned_at + 1);
}

TEST(Ebr, SlotExhaustionThrows) {
  EbrDomain domain;
  std::vector<std::unique_ptr<EbrThreadHandle>> handles;
  for (std::size_t i = 0; i < EbrDomain::kMaxThreads; ++i) {
    handles.push_back(std::make_unique<EbrThreadHandle>(domain));
  }
  EXPECT_THROW(EbrThreadHandle extra(domain), std::runtime_error);
  handles.pop_back();
  EXPECT_NO_THROW(EbrThreadHandle reuse(domain));
}

TEST(Ebr, MultithreadedChurnReclaimsEverything) {
  std::atomic<int> live{0};
  {
    EbrDomain domain;
    constexpr int kThreads = 4;
    constexpr int kOpsPerThread = 20'000;
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&] {
        EbrThreadHandle handle(domain);
        for (int i = 0; i < kOpsPerThread; ++i) {
          const EbrGuard guard = handle.pin();
          handle.retire(new Tracked(live));
        }
      });
    }
    for (auto& w : workers) w.join();
    // Everything was retired; most is already freed, the rest are orphans.
    EXPECT_EQ(domain.retired_count(), 0u);
  }
  EXPECT_EQ(live.load(), 0) << "leak: some retired nodes were never freed";
}

TEST(Ebr, AccountingIsConsistent) {
  std::atomic<int> live{0};
  EbrDomain domain;
  EbrThreadHandle handle(domain);
  for (int i = 0; i < 100; ++i) handle.retire(new Tracked(live));
  for (int i = 0; i < 4; ++i) handle.collect();
  EXPECT_EQ(domain.freed_count() + domain.retired_count(), 100u);
  EXPECT_EQ(static_cast<int>(domain.retired_count()), live.load());
}

}  // namespace
}  // namespace pwf::lockfree
