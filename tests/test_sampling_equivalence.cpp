// Statistical equivalence of WeightedScheduler's two sampling modes.
// The Walker/Vose alias sampler (SamplingMode::alias, the default) must
// realize *exactly* the distribution of the linear prefix-sum scan
// (SamplingMode::linear, the golden reference): first analytically — the
// per-process probabilities reconstructed from the built alias table
// equal weights[p] / total over the active set to double precision — and
// then empirically, with a chi-squared goodness-of-fit test over 10^6
// draws at fixed seeds for both modes.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <span>
#include <vector>

#include "core/scheduler.hpp"

namespace pwf::core {
namespace {

std::vector<std::size_t> iota_active(std::size_t n) {
  std::vector<std::size_t> v(n);
  std::iota(v.begin(), v.end(), std::size_t{0});
  return v;
}

std::vector<double> exact_renormalized(const std::vector<double>& weights,
                                       std::span<const std::size_t> active) {
  double total = 0.0;
  for (std::size_t p : active) total += weights[p];
  std::vector<double> probs;
  probs.reserve(active.size());
  for (std::size_t p : active) probs.push_back(weights[p] / total);
  return probs;
}

std::vector<std::vector<double>> weight_fixtures() {
  std::vector<std::vector<double>> out;
  out.push_back({1.0, 3.0});
  out.push_back({1.0, 1.0, 2.0, 5.0, 0.25});
  {  // Zipf over 256 processes — the alias table's target workload.
    std::vector<double> zipf(256);
    for (std::size_t i = 0; i < zipf.size(); ++i) {
      zipf[i] = 1.0 / static_cast<double>(i + 1);
    }
    out.push_back(std::move(zipf));
  }
  {  // Lottery holdings, wildly skewed.
    std::vector<double> lottery{1, 1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 1000};
    out.push_back(std::move(lottery));
  }
  return out;
}

TEST(AliasSampler, ExactProbabilitiesMatchTheLinearReference) {
  for (const std::vector<double>& weights : weight_fixtures()) {
    WeightedScheduler alias(weights, SamplingMode::alias);
    WeightedScheduler linear(weights, SamplingMode::linear);
    const auto active = iota_active(weights.size());
    const auto expect = exact_renormalized(weights, active);
    const auto from_table = alias.sampling_probabilities(active);
    const auto from_scan = linear.sampling_probabilities(active);
    ASSERT_EQ(from_table.size(), expect.size());
    for (std::size_t i = 0; i < expect.size(); ++i) {
      EXPECT_NEAR(from_table[i], expect[i], 1e-12)
          << "n=" << weights.size() << " process " << active[i];
      EXPECT_NEAR(from_scan[i], expect[i], 1e-12);
    }
  }
}

TEST(AliasSampler, ExactProbabilitiesAfterCrashesRenormalize) {
  // Crashing processes renormalizes the remaining weights; the rebuilt
  // alias table must carry exactly the renormalized distribution.
  for (const std::vector<double>& weights : weight_fixtures()) {
    if (weights.size() < 3) continue;
    WeightedScheduler alias(weights, SamplingMode::alias);
    Xoshiro256pp rng(17);
    auto active = iota_active(weights.size());
    (void)alias.next(0, active, rng);  // build the full-set table first
    // Crash every third process.
    std::vector<std::size_t> survivors;
    for (std::size_t p : active) {
      if (p % 3 == 1) {
        alias.on_crash(p);
      } else {
        survivors.push_back(p);
      }
    }
    const auto expect = exact_renormalized(weights, survivors);
    const auto got = alias.sampling_probabilities(survivors);
    for (std::size_t i = 0; i < expect.size(); ++i) {
      EXPECT_NEAR(got[i], expect[i], 1e-12) << "survivor " << survivors[i];
    }
  }
}

// Chi-squared statistic of observed counts against exact probabilities.
double chi_squared(const std::vector<std::uint64_t>& counts,
                   const std::vector<double>& probs, std::uint64_t draws) {
  double stat = 0.0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const double expect = probs[i] * static_cast<double>(draws);
    const double diff = static_cast<double>(counts[i]) - expect;
    stat += diff * diff / expect;
  }
  return stat;
}

TEST(AliasSampler, ChiSquaredOverAMillionDrawsBothModes) {
  // n = 256 Zipf(1.0): the heaviest-tailed fixture. At 10^6 draws the
  // smallest expected cell is ~640 counts, comfortably in chi-squared
  // territory. 255 degrees of freedom: P(chi2 > 350) < 1e-4, and the
  // seeds are fixed, so the test is deterministic.
  constexpr std::uint64_t kDraws = 1'000'000;
  constexpr std::size_t kN = 256;
  constexpr double kCritical = 350.0;
  std::vector<double> weights(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    weights[i] = 1.0 / static_cast<double>(i + 1);
  }
  const auto active = iota_active(kN);
  const auto probs = exact_renormalized(weights, active);

  for (const SamplingMode mode : {SamplingMode::alias, SamplingMode::linear}) {
    WeightedScheduler sched(weights, mode);
    Xoshiro256pp rng(20140806);
    std::vector<std::uint64_t> counts(kN, 0);
    for (std::uint64_t i = 0; i < kDraws; ++i) {
      ++counts.at(sched.next(i, active, rng));
    }
    const double stat = chi_squared(counts, probs, kDraws);
    EXPECT_LT(stat, kCritical)
        << (mode == SamplingMode::alias ? "alias" : "linear");
  }
}

TEST(AliasSampler, ChiSquaredSurvivesACrashMidStream) {
  // Half the processes crash after 10^6 draws; the next 10^6 draws must
  // fit the renormalized distribution (fresh table, no stale mass).
  constexpr std::uint64_t kDraws = 1'000'000;
  constexpr std::size_t kN = 64;
  std::vector<double> weights(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    weights[i] = 1.0 / std::sqrt(static_cast<double>(i + 1));
  }
  WeightedScheduler sched(weights, SamplingMode::alias);
  Xoshiro256pp rng(424242);
  auto active = iota_active(kN);
  for (std::uint64_t i = 0; i < kDraws; ++i) {
    (void)sched.next(i, active, rng);
  }
  std::vector<std::size_t> survivors;
  for (std::size_t p = 0; p < kN; ++p) {
    if (p % 2 == 0) {
      survivors.push_back(p);
    } else {
      sched.on_crash(p);
    }
  }
  std::vector<std::uint64_t> counts(survivors.size(), 0);
  for (std::uint64_t i = 0; i < kDraws; ++i) {
    const std::size_t p = sched.next(i, survivors, rng);
    const auto it = std::lower_bound(survivors.begin(), survivors.end(), p);
    ASSERT_TRUE(it != survivors.end() && *it == p) << "inactive process " << p;
    ++counts[static_cast<std::size_t>(it - survivors.begin())];
  }
  const auto probs = exact_renormalized(weights, survivors);
  // 31 degrees of freedom: P(chi2 > 62) < 1e-3, seed fixed.
  EXPECT_LT(chi_squared(counts, probs, kDraws), 62.0);
}

TEST(IncrementalAlias, ChiSquaredUnderChurnWithoutRebuild) {
  // The open-system claim: dead-marked positions (departures) and a
  // fresh list (arrivals) sample *exactly* the live distribution with no
  // rebuild. Churn a 64-entry table below the rebuild thresholds, verify
  // analytically via probabilities(), then empirically over 10^6 draws.
  constexpr std::size_t kN = 64;
  constexpr std::uint64_t kDraws = 1'000'000;
  std::vector<double> weights(kN);
  std::vector<std::size_t> ids(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    ids[i] = i;
    weights[i] = 1.0 / std::sqrt(static_cast<double>(i + 1));
  }
  AliasTable table;
  table.build(ids, weights);

  // Churn: remove 8 members (dead marks, 8*4 <= 64 — no rebuild), then
  // admit 4 newcomers (fresh list, 4*4 <= 64 — no rebuild).
  std::vector<std::size_t> live;
  std::vector<double> live_w;
  for (std::size_t i = 0; i < kN; ++i) {
    if (i % 8 == 3) {
      table.remove(i);
    } else {
      live.push_back(i);
      live_w.push_back(weights[i]);
    }
  }
  for (std::size_t j = 0; j < 4; ++j) {
    table.add(kN + j, 0.5 + static_cast<double>(j));
    live.push_back(kN + j);
    live_w.push_back(0.5 + static_cast<double>(j));
  }
  ASSERT_FALSE(table.needs_rebuild());
  ASSERT_EQ(table.live_count(), live.size());

  double total = 0.0;
  for (double w : live_w) total += w;
  const auto analytic = table.probabilities(live);
  for (std::size_t i = 0; i < live.size(); ++i) {
    EXPECT_NEAR(analytic[i], live_w[i] / total, 1e-12) << "id " << live[i];
  }

  Xoshiro256pp rng(987654321);
  std::vector<std::uint64_t> counts(live.size(), 0);
  for (std::uint64_t d = 0; d < kDraws; ++d) {
    const std::size_t id = table.draw(rng);
    const auto it = std::find(live.begin(), live.end(), id);
    ASSERT_TRUE(it != live.end()) << "drew non-member " << id;
    ++counts[static_cast<std::size_t>(it - live.begin())];
  }
  std::vector<double> probs(live.size());
  for (std::size_t i = 0; i < live.size(); ++i) probs[i] = live_w[i] / total;
  // 59 degrees of freedom: P(chi2 > 100) < 1e-3, seed fixed.
  EXPECT_LT(chi_squared(counts, probs, kDraws), 100.0);
}

TEST(IncrementalAlias, ReviveRestoresTheExactDistribution) {
  // The restart path: remove + add of the same id with the same weight
  // must leave the table exactly where it started (dead mark cleared in
  // place, no fresh entry, no rebuild pressure).
  std::vector<std::size_t> ids{0, 1, 2, 3, 4};
  std::vector<double> weights{1.0, 2.0, 3.0, 4.0, 5.0};
  AliasTable table;
  table.build(ids, weights);
  const auto before = table.probabilities(ids);
  table.remove(2);
  EXPECT_FALSE(table.contains(2));
  table.add(2, 3.0);
  EXPECT_TRUE(table.contains(2));
  EXPECT_EQ(table.fresh_count(), 0u);
  EXPECT_EQ(table.dead_count(), 0u);
  const auto after = table.probabilities(ids);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_DOUBLE_EQ(after[i], before[i]);
  }
}

TEST(AliasSampler, DeterministicForFixedSeed) {
  const auto weights = weight_fixtures()[2];  // zipf 256
  WeightedScheduler a(weights), b(weights);
  const auto active = iota_active(weights.size());
  Xoshiro256pp rng_a(5), rng_b(5);
  for (int i = 0; i < 10'000; ++i) {
    ASSERT_EQ(a.next(i, active, rng_a), b.next(i, active, rng_b));
  }
}

TEST(AliasSampler, ThetaIsModeIndependent) {
  const std::vector<double> weights{1.0, 3.0, 6.0};
  WeightedScheduler alias(weights, SamplingMode::alias);
  WeightedScheduler linear(weights, SamplingMode::linear);
  EXPECT_DOUBLE_EQ(alias.theta(3), linear.theta(3));
  EXPECT_DOUBLE_EQ(alias.theta(3), 0.1);
  EXPECT_EQ(alias.mode(), SamplingMode::alias);
  EXPECT_EQ(linear.mode(), SamplingMode::linear);
}

}  // namespace
}  // namespace pwf::core
