// Tests for the Treiber stack: sequential LIFO semantics plus concurrent
// conservation (no lost or duplicated elements) under churn.
#include "lockfree/treiber_stack.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

namespace pwf::lockfree {
namespace {

TEST(TreiberStack, LifoOrderSingleThread) {
  EbrDomain domain;
  EbrThreadHandle handle(domain);
  TreiberStack<int> stack(domain);
  for (int i = 0; i < 10; ++i) stack.push(handle, i);
  for (int i = 9; i >= 0; --i) {
    const auto popped = stack.pop(handle);
    ASSERT_TRUE(popped.has_value());
    EXPECT_EQ(*popped, i);
  }
  EXPECT_TRUE(stack.empty());
}

TEST(TreiberStack, PopOnEmptyReturnsNullopt) {
  EbrDomain domain;
  EbrThreadHandle handle(domain);
  TreiberStack<int> stack(domain);
  EXPECT_FALSE(stack.pop(handle).has_value());
  stack.push(handle, 1);
  EXPECT_TRUE(stack.pop(handle).has_value());
  EXPECT_FALSE(stack.pop(handle).has_value());
}

TEST(TreiberStack, UncontendedOpsTakeOneAttempt) {
  EbrDomain domain;
  EbrThreadHandle handle(domain);
  TreiberStack<int> stack(domain);
  EXPECT_EQ(stack.push(handle, 7), 1u);
  const auto [value, attempts] = stack.pop_counted(handle);
  EXPECT_EQ(*value, 7);
  EXPECT_EQ(attempts, 1u);
  // Observed-empty pop costs zero CAS attempts.
  EXPECT_EQ(stack.pop_counted(handle).second, 0u);
}

TEST(TreiberStack, MovesNonCopyableValues) {
  EbrDomain domain;
  EbrThreadHandle handle(domain);
  TreiberStack<std::unique_ptr<int>> stack(domain);
  stack.push(handle, std::make_unique<int>(99));
  auto popped = stack.pop(handle);
  ASSERT_TRUE(popped.has_value());
  EXPECT_EQ(**popped, 99);
}

TEST(TreiberStack, DestructorFreesRemainingNodes) {
  EbrDomain domain;
  {
    EbrThreadHandle handle(domain);
    TreiberStack<int> stack(domain);
    for (int i = 0; i < 100; ++i) stack.push(handle, i);
    // Stack destroyed non-empty: must not leak (verified under ASan runs;
    // structurally verified here by it simply not crashing).
  }
  SUCCEED();
}

TEST(TreiberStack, ConcurrentPushesPreserveAllElements) {
  EbrDomain domain;
  TreiberStack<int> stack(domain);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10'000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      EbrThreadHandle handle(domain);
      for (int i = 0; i < kPerThread; ++i) {
        stack.push(handle, t * kPerThread + i);
      }
    });
  }
  for (auto& w : workers) w.join();

  EbrThreadHandle handle(domain);
  std::vector<bool> seen(kThreads * kPerThread, false);
  std::size_t count = 0;
  while (auto popped = stack.pop(handle)) {
    ASSERT_GE(*popped, 0);
    ASSERT_LT(*popped, kThreads * kPerThread);
    ASSERT_FALSE(seen[*popped]) << "duplicate element " << *popped;
    seen[*popped] = true;
    ++count;
  }
  EXPECT_EQ(count, static_cast<std::size_t>(kThreads) * kPerThread);
}

TEST(TreiberStack, ConcurrentMixedChurnConservesElements) {
  // Producers push tagged values; consumers pop everything. Total popped
  // must equal total pushed with no duplicates (ABA safety via EBR).
  EbrDomain domain;
  TreiberStack<int> stack(domain);
  constexpr int kProducers = 2;
  constexpr int kConsumers = 2;
  constexpr int kPerProducer = 20'000;
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> popped_count{0};
  std::vector<std::atomic<int>> pop_seen(kProducers * kPerProducer);
  for (auto& flag : pop_seen) flag.store(0);

  std::vector<std::thread> workers;
  for (int t = 0; t < kProducers; ++t) {
    workers.emplace_back([&, t] {
      EbrThreadHandle handle(domain);
      for (int i = 0; i < kPerProducer; ++i) {
        stack.push(handle, t * kPerProducer + i);
      }
    });
  }
  for (int t = 0; t < kConsumers; ++t) {
    workers.emplace_back([&] {
      EbrThreadHandle handle(domain);
      auto record = [&](int value) {
        ASSERT_EQ(pop_seen[value].fetch_add(1), 0)
            << "element popped twice: " << value;
        popped_count.fetch_add(1);
      };
      while (true) {
        if (const auto popped = stack.pop(handle)) {
          record(*popped);
        } else if (done.load()) {
          // All pushes happened before `done` was set; one more pop after
          // observing it distinguishes "drained" from a stale empty.
          const auto last = stack.pop(handle);
          if (!last) break;
          record(*last);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (int t = 0; t < kProducers; ++t) workers[t].join();
  done.store(true);
  for (int t = kProducers; t < kProducers + kConsumers; ++t) workers[t].join();

  EXPECT_EQ(popped_count.load(),
            static_cast<std::uint64_t>(kProducers) * kPerProducer);
}

}  // namespace
}  // namespace pwf::lockfree
