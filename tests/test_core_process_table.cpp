// Tests for the struct-of-arrays ProcessTable: slot lifecycle, free-list
// discipline, live-order policies, the attempts-survival rule that keeps
// SCU proposals unique under slot reuse, and the digest.
#include "core/process_table.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace pwf::core {
namespace {

TEST(ProcessTable, RejectsZeroCapacity) {
  EXPECT_THROW(ProcessTable(0, LiveOrder::dense), std::invalid_argument);
}

TEST(ProcessTable, FreshTableAdmitsAscendingSlots) {
  ProcessTable t(4, LiveOrder::dense);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(t.admit(1.0, 0), i);
  }
  EXPECT_TRUE(t.full());
  EXPECT_EQ(t.admit(1.0, 0), ProcessTable::kNone);
}

TEST(ProcessTable, RetiredSlotsReuseLifo) {
  ProcessTable t(4, LiveOrder::dense);
  for (std::size_t i = 0; i < 4; ++i) t.admit(1.0, 0);
  t.retire(1);
  t.retire(3);
  // LIFO: the most recently retired slot is handed out first.
  EXPECT_EQ(t.admit(1.0, 10), 3u);
  EXPECT_EQ(t.admit(1.0, 10), 1u);
}

TEST(ProcessTable, SortedOrderKeepsLiveAscending) {
  ProcessTable t(8, LiveOrder::sorted);
  for (std::size_t i = 0; i < 8; ++i) t.admit(1.0, 0);
  t.retire(3);
  t.retire(6);
  const auto live = t.live();
  std::vector<std::size_t> got(live.begin(), live.end());
  EXPECT_EQ(got, (std::vector<std::size_t>{0, 1, 2, 4, 5, 7}));
  // Readmission (reuses slot 6, then 3) stays sorted.
  t.admit(1.0, 5);
  t.admit(1.0, 5);
  const auto live2 = t.live();
  EXPECT_TRUE(std::is_sorted(live2.begin(), live2.end()));
}

TEST(ProcessTable, DenseOrderKeepsLiveAsASet) {
  ProcessTable t(8, LiveOrder::dense);
  for (std::size_t i = 0; i < 8; ++i) t.admit(1.0, 0);
  t.retire(0);
  t.retire(4);
  const auto live = t.live();
  std::vector<std::size_t> got(live.begin(), live.end());
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, (std::vector<std::size_t>{1, 2, 3, 5, 6, 7}));
  EXPECT_EQ(t.live_count(), 6u);
}

TEST(ProcessTable, LifecycleGuards) {
  ProcessTable t(2, LiveOrder::dense);
  EXPECT_THROW(t.retire(0), std::logic_error);   // never admitted
  EXPECT_THROW(t.suspend(0), std::logic_error);
  const std::size_t s = t.admit(1.0, 0);
  EXPECT_THROW(t.revive(s, 1), std::logic_error);  // still alive
  t.retire(s);
  EXPECT_THROW(t.retire(s), std::logic_error);     // double retire
}

TEST(ProcessTable, SuspendReservesSlotForRevive) {
  ProcessTable t(2, LiveOrder::dense);
  const std::size_t a = t.admit(1.0, 0);
  t.suspend(a);
  EXPECT_FALSE(t.alive(a));
  EXPECT_EQ(t.live_count(), 0u);
  // The suspended slot is withheld from the free list: a new admit gets
  // the other slot, and a full table sheds rather than stealing it.
  const std::size_t b = t.admit(1.0, 0);
  EXPECT_NE(b, a);
  EXPECT_EQ(t.admit(1.0, 0), ProcessTable::kNone);
  t.revive(a, 7);
  EXPECT_TRUE(t.alive(a));
  EXPECT_EQ(t.op_start[a], 7u);
}

TEST(ProcessTable, AttemptsSurviveEveryReset) {
  // SCU proposal uniqueness: attempts is monotone per slot across
  // retire/readmit and suspend/revive; everything else resets.
  ProcessTable t(2, LiveOrder::dense);
  const std::size_t s = t.admit(1.0, 0);
  t.attempts[s] = 41;
  t.phase[s] = 2;
  t.view[s] = 99;
  t.steps[s] = 10;
  t.retire(s);
  ASSERT_EQ(t.admit(1.0, 3), s);  // LIFO reuse of the same slot
  EXPECT_EQ(t.attempts[s], 41u);
  EXPECT_EQ(t.phase[s], 0u);
  EXPECT_EQ(t.view[s], 0u);
  EXPECT_EQ(t.steps[s], 0u);

  t.attempts[s] = 57;
  t.suspend(s);
  t.revive(s, 9);
  EXPECT_EQ(t.attempts[s], 57u);
  EXPECT_EQ(t.op_start[s], 9u);
}

TEST(ProcessTable, GenerationCountsAdmissions) {
  ProcessTable t(1, LiveOrder::dense);
  const std::size_t s = t.admit(1.0, 0);
  EXPECT_EQ(t.generation[s], 1u);
  t.retire(s);
  t.admit(1.0, 0);
  EXPECT_EQ(t.generation[s], 2u);
  t.suspend(s);
  t.revive(s, 0);
  EXPECT_EQ(t.generation[s], 3u);
}

TEST(ProcessTable, DigestSeparatesStates) {
  ProcessTable a(4, LiveOrder::dense);
  ProcessTable b(4, LiveOrder::dense);
  a.admit(1.0, 0);
  b.admit(1.0, 0);
  EXPECT_EQ(a.digest(), b.digest());
  b.steps[0] = 1;
  EXPECT_NE(a.digest(), b.digest());
  b.steps[0] = 0;
  EXPECT_EQ(a.digest(), b.digest());
  // Live-order policy is part of the digest.
  ProcessTable c(4, LiveOrder::sorted);
  c.admit(1.0, 0);
  EXPECT_NE(a.digest(), c.digest());
}

}  // namespace
}  // namespace pwf::core
