// Unit tests for streaming statistics, histograms and scaling-law fits.
#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "util/rng.hpp"

namespace pwf {
namespace {

TEST(StreamingStats, EmptyIsZero) {
  StreamingStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.stderr_mean(), 0.0);
}

TEST(StreamingStats, KnownSample) {
  StreamingStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample (unbiased) variance of this classic data set is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(StreamingStats, SingleValue) {
  StreamingStats s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(StreamingStats, MergeMatchesCombined) {
  Xoshiro256pp rng(42);
  StreamingStats all, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform_double() * 10.0 - 3.0;
    all.add(x);
    (i % 2 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-8);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(StreamingStats, MergeWithEmpty) {
  StreamingStats a, b;
  a.add(1.0);
  a.add(2.0);
  a.merge(b);  // no-op
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);  // copy
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

TEST(StreamingStats, CiHalfwidthShrinks) {
  StreamingStats small, large;
  Xoshiro256pp rng(1);
  for (int i = 0; i < 100; ++i) small.add(rng.uniform_double());
  for (int i = 0; i < 10'000; ++i) large.add(rng.uniform_double());
  EXPECT_GT(small.ci_halfwidth(), large.ci_halfwidth());
}

TEST(Histogram, RejectsBadArguments) {
  EXPECT_THROW(Histogram(1.0, 1.0, 10), std::invalid_argument);
  EXPECT_THROW(Histogram(2.0, 1.0, 10), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Histogram, BucketsAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);    // bucket 0
  h.add(9.5);    // bucket 9
  h.add(-1.0);   // underflow -> bucket 0
  h.add(100.0);  // overflow -> bucket 9
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(9), 2u);
  EXPECT_DOUBLE_EQ(h.bucket_lo(3), 3.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(3), 4.0);
}

TEST(Histogram, QuantileOnUniformData) {
  Histogram h(0.0, 1.0, 100);
  Xoshiro256pp rng(9);
  for (int i = 0; i < 100'000; ++i) h.add(rng.uniform_double());
  EXPECT_NEAR(h.quantile(0.5), 0.5, 0.02);
  EXPECT_NEAR(h.quantile(0.9), 0.9, 0.02);
  EXPECT_NEAR(h.quantile(0.1), 0.1, 0.02);
}

TEST(Histogram, QuantileEmptyThrows) {
  Histogram h(0.0, 1.0, 4);
  EXPECT_THROW(h.quantile(0.5), std::logic_error);
}

TEST(Percentile, ExactValues) {
  const std::vector<double> xs{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.25), 2.0);
}

TEST(Percentile, EmptyThrows) {
  EXPECT_THROW(percentile({}, 0.5), std::invalid_argument);
}

TEST(FitLinear, RecoversExactLine) {
  std::vector<double> xs, ys;
  for (int i = 0; i < 20; ++i) {
    xs.push_back(i);
    ys.push_back(3.0 * i - 7.0);
  }
  const LinearFit fit = fit_linear(xs, ys);
  EXPECT_NEAR(fit.slope, 3.0, 1e-12);
  EXPECT_NEAR(fit.intercept, -7.0, 1e-10);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(FitLinear, RejectsTooFewPoints) {
  EXPECT_THROW(fit_linear(std::vector<double>{1.0}, std::vector<double>{2.0}),
               std::invalid_argument);
}

TEST(FitPowerLaw, RecoversSqrtLaw) {
  std::vector<double> xs, ys;
  for (double x : {2.0, 4.0, 8.0, 16.0, 32.0, 64.0}) {
    xs.push_back(x);
    ys.push_back(2.5 * std::sqrt(x));
  }
  const LinearFit fit = fit_power_law(xs, ys);
  EXPECT_NEAR(fit.slope, 0.5, 1e-10);
  EXPECT_NEAR(std::exp(fit.intercept), 2.5, 1e-8);
}

TEST(FitPowerLaw, RejectsNonPositive) {
  EXPECT_THROW(fit_power_law(std::vector<double>{1.0, -1.0},
                             std::vector<double>{1.0, 1.0}),
               std::invalid_argument);
}

TEST(Distances, L1AndLinf) {
  const std::vector<double> p{0.5, 0.5};
  const std::vector<double> q{0.25, 0.75};
  EXPECT_DOUBLE_EQ(l1_distance(p, q), 0.5);
  EXPECT_DOUBLE_EQ(linf_distance(p, q), 0.25);
  EXPECT_DOUBLE_EQ(l1_distance(p, p), 0.0);
}

}  // namespace
}  // namespace pwf
