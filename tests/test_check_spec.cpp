// Unit tests for the sequential specifications behind the linearizability
// checker: legal/illegal transitions, pending-operation semantics, and
// exactness of the memoization digests.
#include "check/spec.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/op_trace.hpp"

namespace pwf::check {
namespace {

Operation completed(OpCode op, bool has_arg, Value arg, bool has_ret,
                    Value ret) {
  Operation o;
  o.op = op;
  o.has_arg = has_arg;
  o.arg = arg;
  o.has_ret = has_ret;
  o.ret = ret;
  o.invoke = 0;
  o.response = 1;
  return o;
}

Operation pending(OpCode op, bool has_arg = false, Value arg = 0) {
  Operation o;
  o.op = op;
  o.has_arg = has_arg;
  o.arg = arg;
  o.invoke = 0;
  o.response = Operation::kPending;
  return o;
}

std::string digest_of(const SpecState& s) {
  std::string out;
  s.digest(out);
  return out;
}

TEST(StackSpec, LifoOrder) {
  const auto spec = make_stack_spec();
  auto state = spec->initial();
  EXPECT_TRUE(spec->apply(*state, completed(OpCode::kPush, true, 1, false, 0)));
  EXPECT_TRUE(spec->apply(*state, completed(OpCode::kPush, true, 2, false, 0)));
  // LIFO: the next pop must return 2, not 1.
  auto wrong = state->clone();
  EXPECT_FALSE(spec->apply(*wrong, completed(OpCode::kPop, false, 0, true, 1)));
  EXPECT_TRUE(spec->apply(*state, completed(OpCode::kPop, false, 0, true, 2)));
  EXPECT_TRUE(spec->apply(*state, completed(OpCode::kPop, false, 0, true, 1)));
  // Now empty: a value-returning pop is illegal, an empty pop is legal.
  auto nonempty = state->clone();
  EXPECT_FALSE(
      spec->apply(*nonempty, completed(OpCode::kPop, false, 0, true, 1)));
  EXPECT_TRUE(spec->apply(*state, completed(OpCode::kPop, false, 0, false, 0)));
}

TEST(StackSpec, PendingPopMatchesAnyResult) {
  const auto spec = make_stack_spec();
  auto state = spec->initial();
  // A pending pop on an empty stack is fine (it may have returned empty).
  EXPECT_TRUE(spec->apply(*state, pending(OpCode::kPop)));
  // And on a non-empty stack it is fine too — and takes the top.
  ASSERT_TRUE(spec->apply(*state, completed(OpCode::kPush, true, 7, false, 0)));
  EXPECT_TRUE(spec->apply(*state, pending(OpCode::kPop)));
  // The pending pop consumed 7: a completed pop now sees empty.
  EXPECT_TRUE(spec->apply(*state, completed(OpCode::kPop, false, 0, false, 0)));
}

TEST(QueueSpec, FifoOrder) {
  const auto spec = make_queue_spec();
  auto state = spec->initial();
  EXPECT_TRUE(
      spec->apply(*state, completed(OpCode::kEnqueue, true, 1, false, 0)));
  EXPECT_TRUE(
      spec->apply(*state, completed(OpCode::kEnqueue, true, 2, false, 0)));
  auto wrong = state->clone();
  EXPECT_FALSE(
      spec->apply(*wrong, completed(OpCode::kDequeue, false, 0, true, 2)));
  EXPECT_TRUE(
      spec->apply(*state, completed(OpCode::kDequeue, false, 0, true, 1)));
  EXPECT_TRUE(
      spec->apply(*state, completed(OpCode::kDequeue, false, 0, true, 2)));
  EXPECT_TRUE(
      spec->apply(*state, completed(OpCode::kDequeue, false, 0, false, 0)));
}

TEST(QueueSpec, RejectsWrongOpcode) {
  const auto spec = make_queue_spec();
  auto state = spec->initial();
  EXPECT_FALSE(spec->apply(*state, completed(OpCode::kPush, true, 1, false, 0)));
}

TEST(SetSpec, InsertEraseContains) {
  const auto spec = make_set_spec();
  auto state = spec->initial();
  EXPECT_TRUE(spec->apply(*state, completed(OpCode::kInsert, true, 5, true, 1)));
  // Second insert of the same key must report 0.
  auto dup = state->clone();
  EXPECT_FALSE(spec->apply(*dup, completed(OpCode::kInsert, true, 5, true, 1)));
  EXPECT_TRUE(spec->apply(*state, completed(OpCode::kInsert, true, 5, true, 0)));
  EXPECT_TRUE(
      spec->apply(*state, completed(OpCode::kContains, true, 5, true, 1)));
  EXPECT_TRUE(spec->apply(*state, completed(OpCode::kErase, true, 5, true, 1)));
  EXPECT_TRUE(
      spec->apply(*state, completed(OpCode::kContains, true, 5, true, 0)));
}

TEST(CounterSpec, ReturnsPreIncrementValue) {
  const auto spec = make_counter_spec();
  auto state = spec->initial();
  EXPECT_TRUE(
      spec->apply(*state, completed(OpCode::kFetchInc, false, 0, true, 0)));
  // A duplicate return of 0 is exactly the racy-increment symptom.
  auto dup = state->clone();
  EXPECT_FALSE(
      spec->apply(*dup, completed(OpCode::kFetchInc, false, 0, true, 0)));
  EXPECT_TRUE(
      spec->apply(*state, completed(OpCode::kFetchInc, false, 0, true, 1)));
}

TEST(RcuSpec, TornReadNeverLinearizes) {
  const auto spec = make_rcu_spec();
  auto state = spec->initial();
  EXPECT_TRUE(
      spec->apply(*state, completed(OpCode::kRcuUpdate, false, 0, true, 1)));
  EXPECT_TRUE(
      spec->apply(*state, completed(OpCode::kRcuRead, false, 0, true, 1)));
  // The torn sentinel is all-ones and versions are 32-bit: no state matches.
  EXPECT_FALSE(spec->apply(
      *state, completed(OpCode::kRcuRead, false, 0, true, core::kTornRead)));
  // But a *pending* read (crashed mid-snapshot) is always allowed.
  EXPECT_TRUE(spec->apply(*state, pending(OpCode::kRcuRead)));
}

TEST(SpecStates, DigestIsExact) {
  const auto spec = make_stack_spec();
  auto a = spec->initial();
  auto b = spec->initial();
  EXPECT_EQ(digest_of(*a), digest_of(*b));
  ASSERT_TRUE(spec->apply(*a, completed(OpCode::kPush, true, 1, false, 0)));
  EXPECT_NE(digest_of(*a), digest_of(*b));
  ASSERT_TRUE(spec->apply(*b, completed(OpCode::kPush, true, 1, false, 0)));
  EXPECT_EQ(digest_of(*a), digest_of(*b));
  // Same multiset, different order: stack states must digest differently.
  auto ab = spec->initial();
  auto ba = spec->initial();
  ASSERT_TRUE(spec->apply(*ab, completed(OpCode::kPush, true, 1, false, 0)));
  ASSERT_TRUE(spec->apply(*ab, completed(OpCode::kPush, true, 2, false, 0)));
  ASSERT_TRUE(spec->apply(*ba, completed(OpCode::kPush, true, 2, false, 0)));
  ASSERT_TRUE(spec->apply(*ba, completed(OpCode::kPush, true, 1, false, 0)));
  EXPECT_NE(digest_of(*ab), digest_of(*ba));
}

TEST(MakeSpec, KnownKindsAndUnknownKind) {
  EXPECT_EQ(make_spec("stack")->name(), "stack");
  EXPECT_EQ(make_spec("queue")->name(), "queue");
  EXPECT_EQ(make_spec("set")->name(), "set");
  EXPECT_EQ(make_spec("counter")->name(), "counter");
  EXPECT_EQ(make_spec("rcu")->name(), "rcu");
  EXPECT_THROW(make_spec("deque"), std::invalid_argument);
}

}  // namespace
}  // namespace pwf::check
