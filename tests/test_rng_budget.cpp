// RNG-draw-budget regression tests: every scheduler's per-step raw-draw
// consumption is pinned at fixed seeds. Downstream trajectories (and
// therefore every experiment's exact numbers at a given seed) are a
// function of *how many* raw 64-bit draws each next() consumes, so a
// refactor that silently adds or removes a draw shifts every seeded
// result in the repo. The counts are measured by advancing a shadow
// generator until its state re-aligns (Xoshiro256pp::operator==).
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <numeric>
#include <span>
#include <vector>

#include "core/scheduler.hpp"
#include "sched/dynamic.hpp"

namespace pwf::core {
namespace {

constexpr std::size_t kN = 8;
constexpr int kSteps = 10'000;
constexpr std::uint64_t kSeed = 20140806;

std::vector<std::size_t> iota_active(std::size_t n) {
  std::vector<std::size_t> v(n);
  std::iota(v.begin(), v.end(), std::size_t{0});
  return v;
}

/// Raw draws consumed between two generator states; fails the test if
/// they do not re-align within `limit` draws.
std::size_t draws_between(const Xoshiro256pp& before,
                          const Xoshiro256pp& after, std::size_t limit = 16) {
  Xoshiro256pp probe = before;
  for (std::size_t d = 0; d <= limit; ++d) {
    if (probe == after) return d;
    (void)probe();
  }
  ADD_FAILURE() << "states did not re-align within " << limit << " draws";
  return limit + 1;
}

struct Budget {
  std::uint64_t total = 0;
  std::size_t per_step_min = ~std::size_t{0};
  std::size_t per_step_max = 0;
};

Budget measure(Scheduler& sched, std::span<const std::size_t> active,
               int steps = kSteps, std::uint64_t seed = kSeed) {
  Xoshiro256pp rng(seed);
  Budget budget;
  for (int i = 0; i < steps; ++i) {
    const Xoshiro256pp before = rng;
    (void)sched.next(static_cast<std::uint64_t>(i), active, rng);
    const std::size_t d = draws_between(before, rng);
    budget.total += d;
    budget.per_step_min = std::min(budget.per_step_min, d);
    budget.per_step_max = std::max(budget.per_step_max, d);
  }
  return budget;
}

std::vector<double> zipf_weights(std::size_t n) {
  std::vector<double> w(n);
  for (std::size_t i = 0; i < n; ++i) {
    w[i] = 1.0 / static_cast<double>(i + 1);
  }
  return w;
}

TEST(RngBudget, UniformIsOneDrawPerStep) {
  // Lemire's bounded draw rejects with probability < n / 2^64 — never at
  // these seeds — so the budget is exactly one raw draw per step.
  UniformScheduler sched;
  const auto active = iota_active(kN);
  const Budget b = measure(sched, active);
  EXPECT_EQ(b.per_step_min, 1u);
  EXPECT_EQ(b.per_step_max, 1u);
  EXPECT_EQ(b.total, static_cast<std::uint64_t>(kSteps));
}

TEST(RngBudget, WeightedAliasIsExactlyTwoDrawsPerStep) {
  // The alias sampler's contract: one bounded bucket draw plus one
  // uniform double, independent of n — including the first draw after a
  // crash (the table rebuild itself consumes no randomness).
  for (const std::size_t n : {kN, std::size_t{256}}) {
    WeightedScheduler sched(zipf_weights(n), SamplingMode::alias);
    const auto active = iota_active(n);
    const Budget b = measure(sched, active);
    EXPECT_EQ(b.per_step_min, 2u) << "n=" << n;
    EXPECT_EQ(b.per_step_max, 2u) << "n=" << n;
    EXPECT_EQ(b.total, 2u * static_cast<std::uint64_t>(kSteps)) << "n=" << n;

    // Crash a process: the rebuilt table still draws exactly twice.
    sched.on_crash(active.back());
    const auto survivors = iota_active(n - 1);
    const Budget after = measure(sched, survivors, 100);
    EXPECT_EQ(after.per_step_min, 2u) << "n=" << n;
    EXPECT_EQ(after.per_step_max, 2u) << "n=" << n;
  }
}

TEST(RngBudget, WeightedLinearIsOneDrawPerStep) {
  WeightedScheduler sched(zipf_weights(kN), SamplingMode::linear);
  const auto active = iota_active(kN);
  const Budget b = measure(sched, active);
  EXPECT_EQ(b.per_step_min, 1u);
  EXPECT_EQ(b.per_step_max, 1u);
  EXPECT_EQ(b.total, static_cast<std::uint64_t>(kSteps));
}

TEST(RngBudget, StickyIsOneOrTwoDrawsGoldenTotal) {
  // First step: no favourite yet, one uniform draw. Later steps: one
  // bernoulli draw, plus one uniform redraw when stickiness loses.
  // The exact mix at this seed is pinned: rho = 0.8 gives ~0.2 redraw
  // rate, and any change to the draw order shifts the golden total.
  StickyScheduler sched(0.8);
  const auto active = iota_active(kN);
  const Budget b = measure(sched, active);
  EXPECT_EQ(b.per_step_min, 1u);
  EXPECT_EQ(b.per_step_max, 2u);
  EXPECT_EQ(b.total, 12011u);  // golden: 10000 steps at seed 20140806
}

TEST(RngBudget, ThetaMixOverUniformIsTwoDrawsPerStep) {
  // bernoulli(n*theta) then either the uniform arm or the (uniform)
  // inner scheduler — two raw draws either way.
  ThetaMixScheduler sched(0.05, std::make_unique<UniformScheduler>());
  const auto active = iota_active(kN);
  const Budget b = measure(sched, active);
  EXPECT_EQ(b.per_step_min, 2u);
  EXPECT_EQ(b.per_step_max, 2u);
}

TEST(RngBudget, ThetaMixOverAdversaryGoldenTotal) {
  // The adversarial inner arm consumes no randomness, so steps cost one
  // draw (bernoulli fails) or two (bernoulli hits, uniform redraw).
  ThetaMixScheduler sched(
      0.05, std::make_unique<AdversarialScheduler>(
                [](std::uint64_t, std::span<const std::size_t> active) {
                  return active.back();
                }));
  const auto active = iota_active(kN);
  const Budget b = measure(sched, active);
  EXPECT_EQ(b.per_step_min, 1u);
  EXPECT_EQ(b.per_step_max, 2u);
  EXPECT_EQ(b.total, 13957u);  // golden: 10000 steps at seed 20140806
}

TEST(RngBudget, NextBatchConsumesExactlyThePerStepBudget) {
  // The batched hot path must be stream-identical to per-step next():
  // same draws consumed AND same processes chosen. Pinned for the two
  // overriding schedulers (uniform, weighted-alias) plus the virtual
  // default.
  const auto active = iota_active(kN);
  const auto check = [&](Scheduler& batched, Scheduler& stepped,
                         std::size_t draws_per_step) {
    Xoshiro256pp brng(kSeed), srng(kSeed);
    std::vector<std::size_t> batch(257);  // deliberately not a power of two
    const Xoshiro256pp before = brng;
    batched.next_batch(0, active, brng, batch);
    EXPECT_EQ(draws_between(before, brng, batch.size() * 4 + 16),
              draws_per_step * batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      EXPECT_EQ(batch[i], stepped.next(i, active, srng)) << "i=" << i;
    }
    EXPECT_TRUE(brng == srng);
  };
  {
    UniformScheduler a, b;
    check(a, b, 1);
  }
  {
    WeightedScheduler a(zipf_weights(kN), SamplingMode::alias);
    WeightedScheduler b(zipf_weights(kN), SamplingMode::alias);
    check(a, b, 2);
  }
  {
    StickyScheduler a(0.8), b(0.8);  // exercises the default loop
    Xoshiro256pp brng(kSeed), srng(kSeed);
    std::vector<std::size_t> batch(100);
    a.next_batch(0, active, brng, batch);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      EXPECT_EQ(batch[i], b.next(i, active, srng));
    }
    EXPECT_TRUE(brng == srng);
  }
}

TEST(RngBudget, DynamicWeightedCompactIsTwoDrawsPerStep) {
  // Stable membership: same two-draw budget as the closed alias sampler.
  pwf::sched::DynamicWeightedScheduler sched;
  const auto active = iota_active(kN);
  const Budget b = measure(sched, active);
  EXPECT_EQ(b.per_step_min, 2u);
  EXPECT_EQ(b.per_step_max, 2u);
  EXPECT_EQ(b.total, 2u * static_cast<std::uint64_t>(kSteps));
}

TEST(RngBudget, DynamicWeightedChurnBudgetRegimes) {
  // Start with a large table so incremental deltas do not trip the
  // rebuild thresholds (dead*4 > size, fresh*4 > size).
  constexpr std::size_t n = 64;
  pwf::sched::DynamicWeightedScheduler sched;
  auto active = iota_active(n);
  for (std::size_t i = 0; i < n; ++i) {
    sched.on_membership_change(MembershipEvent::kArrive, i, 1.0);
  }
  (void)measure(sched, active, 1);  // materialize the table

  // One departure: dead-mark redraws cost 2 draws normally, 2 more per
  // rejection — bounded but not fixed. Pin the floor and a sane ceiling.
  sched.on_membership_change(MembershipEvent::kDepart, n - 1, 1.0);
  active.pop_back();
  const Budget dead = measure(sched, active, 2'000);
  EXPECT_EQ(dead.per_step_min, 2u);
  EXPECT_LE(dead.per_step_max, 8u);  // geometric tail, P(>3 rejects) ~ 1e-6

  // One arrival: the fresh-list arm adds one pre-draw before each table
  // draw (3 total), but a fresh-arm hit resolves on the pre-draw alone
  // (1 total — the arm draw doubles as the scan coordinate).
  sched.on_membership_change(MembershipEvent::kArrive, n, 1.0);
  active.push_back(n);
  const Budget fresh = measure(sched, active, 2'000);
  EXPECT_EQ(fresh.per_step_min, 1u);
  EXPECT_GE(fresh.per_step_max, 3u);
  EXPECT_LE(fresh.per_step_max, 9u);

  // compact() folds everything back into one table: exactly 2 again.
  sched.compact();
  const Budget compacted = measure(sched, active, 2'000);
  EXPECT_EQ(compacted.per_step_min, 2u);
  EXPECT_EQ(compacted.per_step_max, 2u);
}

TEST(RngBudget, DeterministicSchedulersConsumeNoRandomness) {
  const auto active = iota_active(kN);
  RoundRobinScheduler rr;
  const Budget rr_budget = measure(rr, active, 1'000);
  EXPECT_EQ(rr_budget.total, 0u);

  AdversarialScheduler adv(
      [](std::uint64_t, std::span<const std::size_t> a) { return a.front(); });
  const Budget adv_budget = measure(adv, active, 1'000);
  EXPECT_EQ(adv_budget.total, 0u);
}

}  // namespace
}  // namespace pwf::core
