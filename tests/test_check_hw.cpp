// Smoke tests for hardware history capture: every real lock-free
// structure in src/lockfree runs a small multi-threaded burst whose
// ticket-recovered history must check out linearizable.
#include "check/hw_capture.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace pwf::check {
namespace {

TEST(HwCapture, KnownStructureList) {
  const auto& names = hw_structures();
  ASSERT_EQ(names.size(), 6u);
  EXPECT_THROW(hw_capture_run("no-such-structure", {}),
               std::invalid_argument);
}

class HwCaptureSmoke : public ::testing::TestWithParam<const char*> {};

TEST_P(HwCaptureSmoke, BurstHistoryIsLinearizable) {
  HwCaptureOptions o;
  o.threads = 3;
  o.ops_per_thread = 60;
  o.seed = 2014;
  const HwCaptureResult r = hw_capture_run(GetParam(), o);
  EXPECT_EQ(r.lin.verdict, LinVerdict::kLinearizable) << GetParam();
  EXPECT_GT(r.history.size(), 0u);
  // Stamps are taken outside the call, so every operation completes.
  EXPECT_EQ(r.history.num_pending(), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllStructures, HwCaptureSmoke,
                         ::testing::Values("treiber-stack", "ms-queue",
                                           "harris-list", "hash-set",
                                           "cas-counter", "faa-counter"));

TEST(HwCapture, DeterministicOpMixPerSeed) {
  // The op mix is seed-derived; the interleaving is not. Two runs agree
  // on the number of operations even though their histories differ.
  HwCaptureOptions o;
  o.threads = 2;
  o.ops_per_thread = 40;
  const auto a = hw_capture_run("treiber-stack", o);
  const auto b = hw_capture_run("treiber-stack", o);
  EXPECT_EQ(a.history.size(), b.history.size());
}

}  // namespace
}  // namespace pwf::check
