// Tests for hardware history capture (HwSession): every real lock-free
// structure in src/lockfree runs a small multi-threaded burst whose
// ticket-recovered history must check out linearizable — in both stamp
// modes — and the lin-point brackets must be tighter than the call
// boundaries they are nested in. The calibrated-TSC clock (--clock tsc)
// must reproduce the golden ticket clock's verdicts on every structure
// while preserving the bracket-nesting invariant through epsilon
// widening and rank compression. With PWF_HW_MUTANTS, the deliberately
// ABA-broken Treiber stack must be flagged NOT-LINEARIZABLE under both
// clocks.
#include "check/hw_capture.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <utility>

namespace pwf::check {
namespace {

HwOptions small_options(StampMode mode) {
  HwOptions o;
  o.threads = 3;
  o.ops_per_thread = 60;
  o.seed = 2014;
  o.stamp = mode;
  return o;
}

TEST(HwSession, RegistryListsStockStructures) {
  const auto& registry = HwSession::registry();
  EXPECT_GE(registry.size(), 7u);
  for (const char* name :
       {"treiber-stack", "ms-queue", "harris-list", "hash-set", "cas-counter",
        "faa-counter", "scu-counter"}) {
    const HwStructure& s = HwSession::find(name);
    EXPECT_EQ(s.name, name);
    EXPECT_TRUE(s.expect_linearizable) << name;
  }
  EXPECT_THROW(HwSession::find("no-such-structure"), std::invalid_argument);
  EXPECT_THROW(HwSession("no-such-structure"), std::invalid_argument);
}

TEST(HwSession, StampModeNamesRoundTrip) {
  EXPECT_EQ(parse_stamp_mode(stamp_mode_name(StampMode::kCallBoundary)),
            StampMode::kCallBoundary);
  EXPECT_EQ(parse_stamp_mode(stamp_mode_name(StampMode::kLinPoint)),
            StampMode::kLinPoint);
  EXPECT_EQ(parse_stamp_mode("lin_point"), StampMode::kLinPoint);
  EXPECT_EQ(parse_stamp_mode("bogus"), std::nullopt);
}

TEST(HwSession, ResultThrowsBeforeRunAndCachesAfter) {
  HwSession session("cas-counter", small_options(StampMode::kCallBoundary));
  EXPECT_THROW(session.result(), std::logic_error);
  const HwResult& first = session.run();
  const HwResult& again = session.run();
  EXPECT_EQ(&first, &again);  // cached, not re-captured
  EXPECT_EQ(&first, &session.result());
}

class HwCaptureSmoke
    : public ::testing::TestWithParam<std::pair<const char*, StampMode>> {};

TEST_P(HwCaptureSmoke, BurstHistoryIsLinearizable) {
  const auto& [name, mode] = GetParam();
  HwSession session(name, small_options(mode));
  const HwResult& r = session.run();
  EXPECT_EQ(r.lin.verdict, LinVerdict::kLinearizable) << name;
  EXPECT_TRUE(r.as_expected()) << name;
  EXPECT_GT(r.history.size(), 0u);
  // Stamps are taken inside the capture loop, so every operation
  // completes before the threads join.
  EXPECT_EQ(r.history.num_pending(), 0u);
  if (mode == StampMode::kLinPoint) {
    // Every stock structure is fully instrumented: each operation must
    // have produced a complete [pre, post] bracket.
    EXPECT_EQ(r.stamped_ops, r.total_ops) << name;
  } else {
    EXPECT_EQ(r.stamped_ops, 0u) << name;
  }
}

std::vector<std::pair<const char*, StampMode>> smoke_grid() {
  std::vector<std::pair<const char*, StampMode>> grid;
  for (const char* name :
       {"treiber-stack", "ms-queue", "harris-list", "hash-set", "cas-counter",
        "faa-counter", "scu-counter"}) {
    grid.emplace_back(name, StampMode::kCallBoundary);
    grid.emplace_back(name, StampMode::kLinPoint);
  }
  return grid;
}

INSTANTIATE_TEST_SUITE_P(AllStructures, HwCaptureSmoke,
                         ::testing::ValuesIn(smoke_grid()));

TEST(HwSession, LinPointBracketsNestInsideBoundaries) {
  // Structural guarantee, checked per operation within one run: the lin
  // bracket is stamped strictly between the boundary tickets, so its
  // slack can never exceed the boundary slack.
  HwOptions o = small_options(StampMode::kLinPoint);
  o.ops_per_thread = 200;
  o.jitter_period = 1;  // widen the boundaries; the brackets stay tight
  HwSession session("treiber-stack", o);
  const HwResult& r = session.run();
  ASSERT_EQ(r.interval_slack.size(), r.boundary_slack.size());
  for (std::size_t i = 0; i < r.interval_slack.size(); ++i) {
    EXPECT_LE(r.interval_slack[i], r.boundary_slack[i]) << "op " << i;
  }
  EXPECT_LE(r.median_slack, r.boundary_median_slack);
}

TEST(HwSession, JitterTightensLinPointMedianBelowBoundary) {
  // The hw_slack experiment's acceptance shape in miniature: under
  // forced jitter the lin-point median is strictly below the
  // call-boundary median on the same structure and seed.
  HwOptions boundary = small_options(StampMode::kCallBoundary);
  // With fewer threads the capture can serialize on a single-core host
  // and both medians collapse to zero; four threads under jitter keep
  // the run queue populated so boundary intervals absorb preemptions.
  boundary.threads = 4;
  boundary.ops_per_thread = 300;
  boundary.jitter_period = 1;
  HwOptions lin = boundary;
  lin.stamp = StampMode::kLinPoint;
  const HwResult& rb = HwSession("cas-counter", boundary).run();
  const HwResult& rl = HwSession("cas-counter", lin).run();
  EXPECT_EQ(rb.lin.verdict, LinVerdict::kLinearizable);
  EXPECT_EQ(rl.lin.verdict, LinVerdict::kLinearizable);
  EXPECT_LT(rl.median_slack, rb.median_slack);
}

TEST(HwSession, StampModeDoesNotChangeVerdicts) {
  for (const char* name : {"treiber-stack", "ms-queue", "harris-list"}) {
    const HwResult& boundary =
        HwSession(name, small_options(StampMode::kCallBoundary)).run();
    const HwResult& lin =
        HwSession(name, small_options(StampMode::kLinPoint)).run();
    EXPECT_EQ(boundary.lin.verdict, lin.lin.verdict) << name;
  }
}

TEST(HwSession, ClockModeNamesRoundTrip) {
  EXPECT_EQ(parse_clock_mode(clock_mode_name(ClockMode::kTicket)),
            ClockMode::kTicket);
  EXPECT_EQ(parse_clock_mode(clock_mode_name(ClockMode::kTsc)),
            ClockMode::kTsc);
  EXPECT_EQ(parse_clock_mode("bogus"), std::nullopt);
}

TEST(HwSession, TscCaptureIsLinearizableOnEveryStockStructure) {
  for (const char* name :
       {"treiber-stack", "ms-queue", "harris-list", "hash-set", "cas-counter",
        "faa-counter", "scu-counter"}) {
    for (const StampMode mode :
         {StampMode::kCallBoundary, StampMode::kLinPoint}) {
      HwOptions o = small_options(mode);
      o.clock = ClockMode::kTsc;
      const HwResult& r = HwSession(name, o).run();
      EXPECT_EQ(r.clock, ClockMode::kTsc);
      EXPECT_EQ(r.lin.verdict, LinVerdict::kLinearizable)
          << name << " " << stamp_mode_name(mode);
      EXPECT_TRUE(r.as_expected()) << name;
      EXPECT_EQ(r.history.num_pending(), 0u);
      // Calibration ran once for the session and produced a usable
      // widening bound.
      EXPECT_GE(r.calibration.epsilon, 1u) << name;
      if (mode == StampMode::kLinPoint) {
        EXPECT_EQ(r.stamped_ops, r.total_ops) << name;
      }
    }
  }
}

TEST(HwSession, TscMatchesTicketVerdictsOnSameSeed) {
  // Satellite acceptance: the tsc clock is a drop-in for the golden
  // ticket clock — same seed, same structure, same verdict.
  for (const char* name :
       {"treiber-stack", "ms-queue", "harris-list", "hash-set", "cas-counter",
        "faa-counter", "scu-counter"}) {
    HwOptions ticket = small_options(StampMode::kLinPoint);
    HwOptions tsc = ticket;
    tsc.clock = ClockMode::kTsc;
    const HwResult& rt = HwSession(name, ticket).run();
    const HwResult& rc = HwSession(name, tsc).run();
    EXPECT_EQ(rt.lin.verdict, rc.lin.verdict) << name;
    EXPECT_EQ(rt.total_ops, rc.total_ops) << name;  // same seeded op mix
  }
}

TEST(HwSession, TscLinPointBracketsNestInsideBoundaries) {
  // Epsilon widening is applied to both the effective interval and the
  // call boundary, and the rank compression breaks ties so that the
  // bracket stays nested: per-op effective slack can never exceed
  // boundary slack, even after widening.
  HwOptions o = small_options(StampMode::kLinPoint);
  o.ops_per_thread = 200;
  o.jitter_period = 1;
  o.clock = ClockMode::kTsc;
  const HwResult& r = HwSession("treiber-stack", o).run();
  ASSERT_EQ(r.interval_slack.size(), r.boundary_slack.size());
  for (std::size_t i = 0; i < r.interval_slack.size(); ++i) {
    EXPECT_LE(r.interval_slack[i], r.boundary_slack[i]) << "op " << i;
  }
  EXPECT_LE(r.median_slack, r.boundary_median_slack);
}

TEST(HwSession, TscCaptureWithPinnedThreads) {
  // Pinning is best-effort; on hosts where it works the capture must
  // still produce a complete, linearizable history.
  HwOptions o = small_options(StampMode::kLinPoint);
  o.clock = ClockMode::kTsc;
  o.pin_threads = true;
  const HwResult& r = HwSession("cas-counter", o).run();
  EXPECT_EQ(r.lin.verdict, LinVerdict::kLinearizable);
  EXPECT_EQ(r.stamped_ops, r.total_ops);
}

TEST(HwSession, UncheckedCaptureSkipsTheChecker) {
  // check_history = false is the timing-only mode the capture_overhead
  // experiment uses: records are captured but the verdict stays unknown.
  HwOptions o = small_options(StampMode::kLinPoint);
  o.clock = ClockMode::kTsc;
  o.check_history = false;
  const HwResult& r = HwSession("treiber-stack", o).run();
  EXPECT_EQ(r.lin.verdict, LinVerdict::kUnknown);
  EXPECT_GT(r.total_ops, 0u);
  EXPECT_GT(r.capture_ms, 0.0);
}

TEST(HwSession, UninstrumentedBaselineMeasuresSomething) {
  const HwOptions o = small_options(StampMode::kLinPoint);
  const double ms = hw_uninstrumented_burst_ms("cas-counter", o, 7);
  EXPECT_GT(ms, 0.0);
}

TEST(HwSession, BurstsAggregateAcrossRounds) {
  HwOptions o = small_options(StampMode::kCallBoundary);
  o.bursts = 3;
  const HwResult& r = HwSession("faa-counter", o).run();
  EXPECT_EQ(r.total_ops, 3u * 3u * 60u);  // bursts * threads * ops
  EXPECT_EQ(r.interval_slack.size(), r.total_ops);
  // The checked history is one round, not the concatenation.
  EXPECT_EQ(r.history.size(), 3u * 60u);
  EXPECT_EQ(r.lin.verdict, LinVerdict::kLinearizable);
}

TEST(HwSession, ReportsTimeBreakdown) {
  const HwResult& r =
      HwSession("treiber-stack", small_options(StampMode::kCallBoundary))
          .run();
  EXPECT_GT(r.capture_ms, 0.0);
  EXPECT_GT(r.check_ms, 0.0);
}

#ifdef PWF_HW_MUTANTS

TEST(HwMutant, UntaggedTreiberIsInRegistry) {
  const HwStructure& s = HwSession::find("treiber-stack-untagged");
  EXPECT_FALSE(s.expect_linearizable);
  EXPECT_EQ(s.spec_kind, "stack");
}

TEST(HwMutant, UntaggedTreiberCaughtUnderLinPoint) {
  HwOptions o;
  o.threads = 4;
  o.ops_per_thread = 2000;
  o.seed = 1;
  o.stamp = StampMode::kLinPoint;
  HwSession session("treiber-stack-untagged", o);
  const HwResult& r = session.run();
  ASSERT_EQ(r.lin.verdict, LinVerdict::kNotLinearizable)
      << "ABA mutant slipped past the checker";
  EXPECT_TRUE(r.as_expected());
  // The violating history is minimized to a small witness that is still
  // checker-verified NOT-LINEARIZABLE.
  EXPECT_GT(r.witness.size(), 0u);
  EXPECT_LE(r.witness.size(), r.history.size());
}

TEST(HwMutant, UntaggedTreiberCaughtUnderTscClock) {
  // Epsilon widening must not mask a real violation: the ABA window is
  // architectural, not a timestamping artifact.
  HwOptions o;
  o.threads = 4;
  o.ops_per_thread = 2000;
  o.seed = 1;
  o.stamp = StampMode::kLinPoint;
  o.clock = ClockMode::kTsc;
  HwSession session("treiber-stack-untagged", o);
  const HwResult& r = session.run();
  ASSERT_EQ(r.lin.verdict, LinVerdict::kNotLinearizable)
      << "ABA mutant slipped past the checker under the tsc clock";
  EXPECT_TRUE(r.as_expected());
  EXPECT_GT(r.witness.size(), 0u);
  EXPECT_LE(r.witness.size(), r.history.size());
}

#else

TEST(HwMutant, UntaggedTreiberAbsentFromStockBuilds) {
  EXPECT_THROW(HwSession::find("treiber-stack-untagged"),
               std::invalid_argument);
}

#endif  // PWF_HW_MUTANTS

// The deprecated free-function surface stays a faithful thin wrapper.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

TEST(HwCaptureCompat, KnownStructureList) {
  const auto& names = hw_structures();
  EXPECT_GE(names.size(), 7u);
  EXPECT_THROW(hw_capture_run("no-such-structure", {}),
               std::invalid_argument);
}

TEST(HwCaptureCompat, DeterministicOpMixPerSeed) {
  // The op mix is seed-derived; the interleaving is not. Two runs agree
  // on the number of operations even though their histories differ.
  HwCaptureOptions o;
  o.threads = 2;
  o.ops_per_thread = 40;
  const auto a = hw_capture_run("treiber-stack", o);
  const auto b = hw_capture_run("treiber-stack", o);
  EXPECT_EQ(a.history.size(), b.history.size());
  EXPECT_EQ(a.lin.verdict, LinVerdict::kLinearizable);
}

#pragma GCC diagnostic pop

}  // namespace
}  // namespace pwf::check
