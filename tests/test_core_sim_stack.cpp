// Tests for the simulated Treiber stack: LIFO/conservation invariants
// under the model scheduler, tag-based ABA safety, and the SCU-class
// latency behaviour the paper predicts for stacks (reference [21]).
#include "core/sim_stack.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "core/simulation.hpp"
#include "markov/builders.hpp"
#include "util/stats.hpp"

namespace pwf::core {
namespace {

struct StackSim {
  std::vector<const SimStack*> machines;
  Simulation sim;
};

StackSim make_stack_sim(std::size_t n, std::size_t slots,
                        std::uint64_t seed = 1) {
  auto machines = std::make_shared<std::vector<const SimStack*>>();
  Simulation::Options opts;
  opts.num_registers = SimStack::registers_required(n, slots);
  opts.seed = seed;
  auto factory = [machines, slots](std::size_t pid, std::size_t nn) {
    auto machine = std::make_unique<SimStack>(pid, nn, slots);
    machines->push_back(machine.get());
    return machine;
  };
  StackSim out{*machines, Simulation(n, factory,
                                     std::make_unique<UniformScheduler>(),
                                     opts)};
  out.machines = *machines;
  return out;
}

TEST(SimStack, RejectsBadConstruction) {
  EXPECT_THROW(SimStack(1, 1, 4), std::invalid_argument);
  EXPECT_THROW(SimStack(0, 1, 0), std::invalid_argument);
}

TEST(SimStack, SoloAlternatesPushPop) {
  auto s = make_stack_sim(1, 4);
  s.sim.run(10'000);
  const SimStack& m = *s.machines[0];
  // Solo: push (4 steps), pop (4 steps), strictly alternating, no empties
  // after the first push.
  EXPECT_GT(m.pushes(), 1000u);
  EXPECT_NEAR(static_cast<double>(m.pushes()),
              static_cast<double>(m.pops()), 1.0);
  EXPECT_EQ(m.empty_pops(), 0u);
  // Solo pops return exactly the value just pushed (LIFO).
  const auto& popped = m.popped_values();
  for (std::size_t i = 0; i < popped.size(); ++i) {
    EXPECT_EQ(popped[i], (Value{1} << 32) | i);
  }
}

TEST(SimStack, ConservationNoValueLostOrDuplicated) {
  constexpr std::size_t kN = 6;
  auto s = make_stack_sim(kN, 8, 77);
  s.sim.run(500'000);
  std::uint64_t pushes = 0, pops = 0, empties = 0;
  std::set<Value> popped;
  for (const SimStack* m : s.machines) {
    pushes += m->pushes();
    pops += m->pops();
    empties += m->empty_pops();
    for (Value v : m->popped_values()) {
      ASSERT_TRUE(popped.insert(v).second) << "value popped twice: " << v;
    }
  }
  EXPECT_EQ(popped.size(), pops);
  EXPECT_LE(pops, pushes);  // cannot pop more than was pushed
  // Whatever was not popped is still on the stack: walk it.
  std::uint64_t depth = 0;
  SharedMemory& mem = s.sim.memory();
  std::uint64_t ref = mem.peek(0) & 0xffffffffULL;
  while (ref != 0) {
    ++depth;
    ASSERT_LT(depth, 1'000'000u) << "cycle in stack: ABA corruption";
    ref = mem.peek(1 + 2 * (ref - 1));
  }
  EXPECT_EQ(depth, pushes - pops);
}

TEST(SimStack, PoppedValuesWereActuallyPushed) {
  constexpr std::size_t kN = 4;
  auto s = make_stack_sim(kN, 6, 13);
  s.sim.run(200'000);
  for (const SimStack* m : s.machines) {
    for (Value v : m->popped_values()) {
      const auto owner = static_cast<std::size_t>(v >> 32);
      const Value seq = v & 0xffffffffULL;
      ASSERT_GE(owner, 1u);
      ASSERT_LE(owner, kN);
      // The pushing process performed at least seq+1 pushes.
      EXPECT_LT(seq, s.machines[owner - 1]->pushes());
    }
  }
}

TEST(SimStack, CompletionsMatchOperationCounts) {
  constexpr std::size_t kN = 3;
  auto s = make_stack_sim(kN, 4, 5);
  s.sim.run(100'000);
  std::uint64_t ops = 0;
  for (const SimStack* m : s.machines) {
    ops += m->pushes() + m->pops() + m->empty_pops();
  }
  EXPECT_EQ(ops, s.sim.report().completions);
}

TEST(SimStack, LatencyScalesLikeScuPrediction) {
  // The stack is in SCU(~1, ~2); its system latency under the uniform
  // scheduler should grow like sqrt(n), staying within a constant factor
  // of the exact SCU(0,1) chain value.
  std::vector<double> ns, ws;
  for (std::size_t n : {4, 8, 16, 32}) {
    auto s = make_stack_sim(n, 8, 100 + n);
    s.sim.run(100'000);
    s.sim.reset_stats();
    s.sim.run(800'000);
    ns.push_back(static_cast<double>(n));
    ws.push_back(s.sim.report().system_latency());
    const double sv =
        markov::system_latency(markov::build_scan_validate_system_chain(n));
    EXPECT_GT(ws.back(), sv * 0.8);
    EXPECT_LT(ws.back(), sv * 4.0);
  }
  const LinearFit fit = fit_power_law(ns, ws);
  EXPECT_GT(fit.slope, 0.30);
  EXPECT_LT(fit.slope, 0.75);
}

TEST(SimStack, FairnessIndividualLatencyIsNTimesSystem) {
  constexpr std::size_t kN = 8;
  auto s = make_stack_sim(kN, 8, 21);
  s.sim.run(100'000);
  s.sim.reset_stats();
  s.sim.run(1'000'000);
  const double w = s.sim.report().system_latency();
  for (std::size_t p = 0; p < kN; ++p) {
    EXPECT_NEAR(s.sim.report().individual_latency(p), kN * w,
                0.15 * kN * w);
  }
}

}  // namespace
}  // namespace pwf::core
