// Tests for the scheduler implementations against Definition 1's
// requirements (well-formedness, weak fairness, crash handling).
#include "core/scheduler.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <vector>

namespace pwf::core {
namespace {

std::vector<std::size_t> iota_active(std::size_t n) {
  std::vector<std::size_t> v(n);
  std::iota(v.begin(), v.end(), std::size_t{0});
  return v;
}

std::vector<double> empirical_distribution(Scheduler& sched,
                                           std::span<const std::size_t> active,
                                           std::size_t n, int draws,
                                           std::uint64_t seed = 1) {
  Xoshiro256pp rng(seed);
  std::vector<double> freq(n, 0.0);
  for (int i = 0; i < draws; ++i) {
    ++freq.at(sched.next(static_cast<std::uint64_t>(i), active, rng));
  }
  for (double& f : freq) f /= draws;
  return freq;
}

TEST(UniformScheduler, IsApproximatelyUniform) {
  UniformScheduler sched;
  const auto active = iota_active(8);
  const auto freq = empirical_distribution(sched, active, 8, 200'000);
  for (double f : freq) EXPECT_NEAR(f, 1.0 / 8.0, 0.005);
}

TEST(UniformScheduler, RespectsActiveSet) {
  UniformScheduler sched;
  const std::vector<std::size_t> active{1, 4, 6};
  Xoshiro256pp rng(3);
  for (int i = 0; i < 1000; ++i) {
    const std::size_t p = sched.next(i, active, rng);
    EXPECT_TRUE(p == 1 || p == 4 || p == 6);
  }
}

TEST(UniformScheduler, ThetaIsOneOverN) {
  UniformScheduler sched;
  EXPECT_DOUBLE_EQ(sched.theta(4), 0.25);
  EXPECT_DOUBLE_EQ(sched.theta(1), 1.0);
  EXPECT_DOUBLE_EQ(sched.theta(0), 0.0);
}

TEST(WeightedScheduler, MatchesWeights) {
  WeightedScheduler sched({1.0, 3.0});
  const auto active = iota_active(2);
  const auto freq = empirical_distribution(sched, active, 2, 200'000);
  EXPECT_NEAR(freq[0], 0.25, 0.01);
  EXPECT_NEAR(freq[1], 0.75, 0.01);
}

TEST(WeightedScheduler, RenormalizesAfterCrash) {
  WeightedScheduler sched({1.0, 1.0, 2.0});
  const std::vector<std::size_t> active{0, 2};  // process 1 crashed
  const auto freq = empirical_distribution(sched, active, 3, 100'000);
  EXPECT_NEAR(freq[0], 1.0 / 3.0, 0.01);
  EXPECT_DOUBLE_EQ(freq[1], 0.0);
  EXPECT_NEAR(freq[2], 2.0 / 3.0, 0.01);
}

TEST(WeightedScheduler, RejectsBadWeights) {
  EXPECT_THROW(WeightedScheduler({}), std::invalid_argument);
  EXPECT_THROW(WeightedScheduler({1.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(WeightedScheduler({1.0, -2.0}), std::invalid_argument);
}

TEST(WeightedScheduler, ThetaIsMinWeightOverTotal) {
  WeightedScheduler sched({1.0, 3.0, 6.0});
  EXPECT_DOUBLE_EQ(sched.theta(3), 0.1);
}

TEST(ZipfScheduler, HeaviestFirst) {
  WeightedScheduler sched = make_zipf_scheduler(4, 1.0);
  const auto active = iota_active(4);
  const auto freq = empirical_distribution(sched, active, 4, 200'000);
  // Weights 1, 1/2, 1/3, 1/4 over total 25/12.
  EXPECT_NEAR(freq[0], 12.0 / 25.0, 0.01);
  EXPECT_NEAR(freq[3], 3.0 / 25.0, 0.01);
  EXPECT_GT(freq[0], freq[1]);
  EXPECT_GT(freq[1], freq[2]);
  EXPECT_GT(freq[2], freq[3]);
}

TEST(LotteryScheduler, MatchesTicketHoldings) {
  // Reference [19]'s lottery scheduling: probabilities proportional to
  // integer ticket counts.
  WeightedScheduler sched = make_lottery_scheduler({10, 30, 60});
  const auto active = iota_active(3);
  const auto freq = empirical_distribution(sched, active, 3, 200'000);
  EXPECT_NEAR(freq[0], 0.10, 0.01);
  EXPECT_NEAR(freq[1], 0.30, 0.01);
  EXPECT_NEAR(freq[2], 0.60, 0.01);
  EXPECT_DOUBLE_EQ(sched.theta(3), 0.1);
}

TEST(LotteryScheduler, RejectsZeroTickets) {
  EXPECT_THROW(make_lottery_scheduler({5, 0}), std::invalid_argument);
  EXPECT_THROW(make_lottery_scheduler({}), std::invalid_argument);
}

TEST(StickyScheduler, LongRunSharesStayUniform) {
  StickyScheduler sched(0.8);
  const auto active = iota_active(4);
  const auto freq = empirical_distribution(sched, active, 4, 400'000);
  for (double f : freq) EXPECT_NEAR(f, 0.25, 0.02);
}

TEST(StickyScheduler, RepeatsMoreThanUniform) {
  StickyScheduler sched(0.9);
  const auto active = iota_active(4);
  Xoshiro256pp rng(5);
  std::size_t prev = sched.next(0, active, rng);
  int repeats = 0;
  constexpr int kDraws = 50'000;
  for (int i = 1; i < kDraws; ++i) {
    const std::size_t cur = sched.next(i, active, rng);
    if (cur == prev) ++repeats;
    prev = cur;
  }
  // Expected repeat rate = rho + (1-rho)/n = 0.9 + 0.025 = 0.925.
  EXPECT_NEAR(static_cast<double>(repeats) / kDraws, 0.925, 0.01);
}

TEST(StickyScheduler, ThetaAccountsForStickiness) {
  StickyScheduler sched(0.5);
  EXPECT_DOUBLE_EQ(sched.theta(4), 0.125);
  EXPECT_THROW(StickyScheduler(1.0), std::invalid_argument);
  EXPECT_THROW(StickyScheduler(-0.1), std::invalid_argument);
}

TEST(RoundRobinScheduler, CyclesInOrder) {
  RoundRobinScheduler sched;
  const auto active = iota_active(3);
  Xoshiro256pp rng(1);
  EXPECT_EQ(sched.next(0, active, rng), 0u);
  EXPECT_EQ(sched.next(1, active, rng), 1u);
  EXPECT_EQ(sched.next(2, active, rng), 2u);
  EXPECT_EQ(sched.next(3, active, rng), 0u);
  EXPECT_DOUBLE_EQ(sched.theta(3), 0.0);
}

TEST(AdversarialScheduler, FollowsStrategy) {
  AdversarialScheduler sched(
      [](std::uint64_t tau, std::span<const std::size_t> active) {
        return active[tau % 2 == 0 ? 0 : active.size() - 1];
      });
  const auto active = iota_active(5);
  Xoshiro256pp rng(1);
  EXPECT_EQ(sched.next(0, active, rng), 0u);
  EXPECT_EQ(sched.next(1, active, rng), 4u);
  EXPECT_DOUBLE_EQ(sched.theta(5), 0.0);
}

TEST(AdversarialScheduler, RejectsInactiveChoice) {
  AdversarialScheduler sched(
      [](std::uint64_t, std::span<const std::size_t>) { return 9; });
  const auto active = iota_active(3);
  Xoshiro256pp rng(1);
  EXPECT_THROW(sched.next(0, active, rng), std::logic_error);
}

TEST(AdversarialScheduler, RejectsNullStrategy) {
  EXPECT_THROW(AdversarialScheduler(nullptr), std::invalid_argument);
}

TEST(ThetaMixScheduler, EveryProcessGetsAtLeastTheta) {
  // Inner adversary starves process 0; the theta mixture must still
  // schedule it with probability >= theta.
  auto adversary = std::make_unique<AdversarialScheduler>(
      [](std::uint64_t, std::span<const std::size_t> active) {
        return active.back();
      });
  const double theta = 0.05;
  ThetaMixScheduler sched(theta, std::move(adversary));
  const auto active = iota_active(4);
  const auto freq = empirical_distribution(sched, active, 4, 200'000);
  EXPECT_GE(freq[0], theta * 0.8);
  EXPECT_GE(freq[1], theta * 0.8);
  EXPECT_GE(freq[2], theta * 0.8);
  EXPECT_GT(freq[3], 0.8);  // the adversary's favourite
  EXPECT_DOUBLE_EQ(sched.theta(4), theta);
}

TEST(ThetaMixScheduler, RejectsOversizedTheta) {
  auto inner = std::make_unique<UniformScheduler>();
  ThetaMixScheduler sched(0.5, std::move(inner));
  const auto active = iota_active(4);  // 4 * 0.5 > 1
  Xoshiro256pp rng(1);
  EXPECT_THROW(sched.next(0, active, rng), std::logic_error);
  EXPECT_THROW(ThetaMixScheduler(0.0, std::make_unique<UniformScheduler>()),
               std::invalid_argument);
  EXPECT_THROW(ThetaMixScheduler(0.1, nullptr), std::invalid_argument);
}

}  // namespace
}  // namespace pwf::core
