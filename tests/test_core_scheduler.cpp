// Tests for the scheduler implementations against Definition 1's
// requirements (well-formedness, weak fairness, crash handling).
#include "core/scheduler.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <numeric>
#include <vector>

#include "core/algorithms.hpp"
#include "core/simulation.hpp"

namespace pwf::core {
namespace {

std::vector<std::size_t> iota_active(std::size_t n) {
  std::vector<std::size_t> v(n);
  std::iota(v.begin(), v.end(), std::size_t{0});
  return v;
}

std::vector<double> empirical_distribution(Scheduler& sched,
                                           std::span<const std::size_t> active,
                                           std::size_t n, int draws,
                                           std::uint64_t seed = 1) {
  Xoshiro256pp rng(seed);
  std::vector<double> freq(n, 0.0);
  for (int i = 0; i < draws; ++i) {
    ++freq.at(sched.next(static_cast<std::uint64_t>(i), active, rng));
  }
  for (double& f : freq) f /= draws;
  return freq;
}

TEST(UniformScheduler, IsApproximatelyUniform) {
  UniformScheduler sched;
  const auto active = iota_active(8);
  const auto freq = empirical_distribution(sched, active, 8, 200'000);
  for (double f : freq) EXPECT_NEAR(f, 1.0 / 8.0, 0.005);
}

TEST(UniformScheduler, RespectsActiveSet) {
  UniformScheduler sched;
  const std::vector<std::size_t> active{1, 4, 6};
  Xoshiro256pp rng(3);
  for (int i = 0; i < 1000; ++i) {
    const std::size_t p = sched.next(i, active, rng);
    EXPECT_TRUE(p == 1 || p == 4 || p == 6);
  }
}

TEST(UniformScheduler, ThetaIsOneOverN) {
  UniformScheduler sched;
  EXPECT_DOUBLE_EQ(sched.theta(4), 0.25);
  EXPECT_DOUBLE_EQ(sched.theta(1), 1.0);
  EXPECT_DOUBLE_EQ(sched.theta(0), 0.0);
}

TEST(WeightedScheduler, MatchesWeights) {
  WeightedScheduler sched({1.0, 3.0});
  const auto active = iota_active(2);
  const auto freq = empirical_distribution(sched, active, 2, 200'000);
  EXPECT_NEAR(freq[0], 0.25, 0.01);
  EXPECT_NEAR(freq[1], 0.75, 0.01);
}

TEST(WeightedScheduler, RenormalizesAfterCrash) {
  WeightedScheduler sched({1.0, 1.0, 2.0});
  const std::vector<std::size_t> active{0, 2};  // process 1 crashed
  const auto freq = empirical_distribution(sched, active, 3, 100'000);
  EXPECT_NEAR(freq[0], 1.0 / 3.0, 0.01);
  EXPECT_DOUBLE_EQ(freq[1], 0.0);
  EXPECT_NEAR(freq[2], 2.0 / 3.0, 0.01);
}

TEST(WeightedScheduler, RejectsBadWeights) {
  EXPECT_THROW(WeightedScheduler({}), std::invalid_argument);
  EXPECT_THROW(WeightedScheduler({1.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(WeightedScheduler({1.0, -2.0}), std::invalid_argument);
}

TEST(WeightedScheduler, ThetaIsMinWeightOverTotal) {
  WeightedScheduler sched({1.0, 3.0, 6.0});
  EXPECT_DOUBLE_EQ(sched.theta(3), 0.1);
}

TEST(ZipfScheduler, HeaviestFirst) {
  WeightedScheduler sched = make_zipf_scheduler(4, 1.0);
  const auto active = iota_active(4);
  const auto freq = empirical_distribution(sched, active, 4, 200'000);
  // Weights 1, 1/2, 1/3, 1/4 over total 25/12.
  EXPECT_NEAR(freq[0], 12.0 / 25.0, 0.01);
  EXPECT_NEAR(freq[3], 3.0 / 25.0, 0.01);
  EXPECT_GT(freq[0], freq[1]);
  EXPECT_GT(freq[1], freq[2]);
  EXPECT_GT(freq[2], freq[3]);
}

TEST(LotteryScheduler, MatchesTicketHoldings) {
  // Reference [19]'s lottery scheduling: probabilities proportional to
  // integer ticket counts.
  WeightedScheduler sched = make_lottery_scheduler({10, 30, 60});
  const auto active = iota_active(3);
  const auto freq = empirical_distribution(sched, active, 3, 200'000);
  EXPECT_NEAR(freq[0], 0.10, 0.01);
  EXPECT_NEAR(freq[1], 0.30, 0.01);
  EXPECT_NEAR(freq[2], 0.60, 0.01);
  EXPECT_DOUBLE_EQ(sched.theta(3), 0.1);
}

TEST(LotteryScheduler, RejectsZeroTickets) {
  EXPECT_THROW(make_lottery_scheduler({5, 0}), std::invalid_argument);
  EXPECT_THROW(make_lottery_scheduler({}), std::invalid_argument);
}

TEST(StickyScheduler, LongRunSharesStayUniform) {
  StickyScheduler sched(0.8);
  const auto active = iota_active(4);
  const auto freq = empirical_distribution(sched, active, 4, 400'000);
  for (double f : freq) EXPECT_NEAR(f, 0.25, 0.02);
}

TEST(StickyScheduler, RepeatsMoreThanUniform) {
  StickyScheduler sched(0.9);
  const auto active = iota_active(4);
  Xoshiro256pp rng(5);
  std::size_t prev = sched.next(0, active, rng);
  int repeats = 0;
  constexpr int kDraws = 50'000;
  for (int i = 1; i < kDraws; ++i) {
    const std::size_t cur = sched.next(i, active, rng);
    if (cur == prev) ++repeats;
    prev = cur;
  }
  // Expected repeat rate = rho + (1-rho)/n = 0.9 + 0.025 = 0.925.
  EXPECT_NEAR(static_cast<double>(repeats) / kDraws, 0.925, 0.01);
}

TEST(StickyScheduler, NeverSchedulesACrashedFavourite) {
  // Regression: the scheduler keeps its previous pick as the sticky
  // favourite. If that process crashes (leaves the active set) the
  // favourite must not be scheduled again, even before on_crash() is
  // delivered — membership in A_tau wins over stickiness.
  StickyScheduler sched(0.95);
  auto active = iota_active(4);
  Xoshiro256pp rng(11);
  // Establish some favourite, then crash it.
  const std::size_t favourite = sched.next(0, active, rng);
  active.erase(std::find(active.begin(), active.end(), favourite));
  for (int i = 0; i < 20'000; ++i) {
    EXPECT_NE(sched.next(i + 1, active, rng), favourite);
  }
}

TEST(StickyScheduler, UniformFallbackAfterFavouriteCrashes) {
  // After the favourite crashes, the survivors must share steps
  // uniformly in the long run — a stale favourite would skew the very
  // first redraw, a sticky-but-reset one does not.
  StickyScheduler sched(0.9);
  auto active = iota_active(4);
  Xoshiro256pp rng(23);
  const std::size_t favourite = sched.next(0, active, rng);
  active.erase(std::find(active.begin(), active.end(), favourite));
  sched.on_crash(favourite);
  std::vector<double> freq(4, 0.0);
  constexpr int kDraws = 300'000;
  for (int i = 0; i < kDraws; ++i) {
    ++freq.at(sched.next(i + 1, active, rng));
  }
  EXPECT_DOUBLE_EQ(freq[favourite], 0.0);
  for (std::size_t p : active) {
    EXPECT_NEAR(freq[p] / kDraws, 1.0 / 3.0, 0.02);
  }
}

TEST(StickyScheduler, OnCrashOfBystanderKeepsFavourite) {
  // on_crash for a process that is not the favourite must not disturb
  // stickiness: with rho = 1 - epsilon the favourite keeps running.
  StickyScheduler sched(0.999);
  auto active = iota_active(4);
  Xoshiro256pp rng(7);
  const std::size_t favourite = sched.next(0, active, rng);
  const std::size_t bystander = (favourite + 1) % 4;
  active.erase(std::find(active.begin(), active.end(), bystander));
  sched.on_crash(bystander);
  int kept = 0;
  for (int i = 0; i < 1'000; ++i) {
    if (sched.next(i + 1, active, rng) == favourite) ++kept;
  }
  EXPECT_GT(kept, 980);
}

TEST(StickyScheduler, CrashPlanInSimulationKeepsSurvivorsProgressing) {
  // End-to-end regression for the crash-notification path: drive
  // scan-validate under a very sticky scheduler, crash the top half of
  // the processes mid-run (each crash likely hits the current
  // favourite), and require every survivor to keep completing with
  // near-uniform step shares afterwards.
  constexpr std::size_t kN = 4;
  Simulation::Options opts;
  opts.num_registers = ScuAlgorithm::registers_required(kN, 1);
  opts.seed = 99;
  Simulation sim(kN, scan_validate_factory(),
                 std::make_unique<StickyScheduler>(0.95), opts);
  sim.schedule_crash(50'000, 3);
  sim.schedule_crash(100'000, 2);
  sim.run(150'000);
  sim.reset_stats();
  sim.run(300'000);
  ASSERT_EQ(sim.active().size(), 2u);
  const auto& report = sim.report();
  for (std::size_t p = 0; p < 2; ++p) {
    EXPECT_GT(report.completions_per_process[p], 0u);
    EXPECT_NEAR(static_cast<double>(report.steps_per_process[p]) /
                    static_cast<double>(report.steps),
                0.5, 0.05);
  }
  EXPECT_EQ(report.steps_per_process[2], 0u);
  EXPECT_EQ(report.steps_per_process[3], 0u);
}

TEST(StickyScheduler, ThetaAccountsForStickiness) {
  StickyScheduler sched(0.5);
  EXPECT_DOUBLE_EQ(sched.theta(4), 0.125);
  EXPECT_THROW(StickyScheduler(1.0), std::invalid_argument);
  EXPECT_THROW(StickyScheduler(-0.1), std::invalid_argument);
}

TEST(RoundRobinScheduler, CyclesInOrder) {
  RoundRobinScheduler sched;
  const auto active = iota_active(3);
  Xoshiro256pp rng(1);
  EXPECT_EQ(sched.next(0, active, rng), 0u);
  EXPECT_EQ(sched.next(1, active, rng), 1u);
  EXPECT_EQ(sched.next(2, active, rng), 2u);
  EXPECT_EQ(sched.next(3, active, rng), 0u);
  EXPECT_DOUBLE_EQ(sched.theta(3), 0.0);
}

TEST(AdversarialScheduler, FollowsStrategy) {
  AdversarialScheduler sched(
      [](std::uint64_t tau, std::span<const std::size_t> active) {
        return active[tau % 2 == 0 ? 0 : active.size() - 1];
      });
  const auto active = iota_active(5);
  Xoshiro256pp rng(1);
  EXPECT_EQ(sched.next(0, active, rng), 0u);
  EXPECT_EQ(sched.next(1, active, rng), 4u);
  EXPECT_DOUBLE_EQ(sched.theta(5), 0.0);
}

TEST(AdversarialScheduler, RejectsInactiveChoice) {
  AdversarialScheduler sched(
      [](std::uint64_t, std::span<const std::size_t>) { return 9; });
  const auto active = iota_active(3);
  Xoshiro256pp rng(1);
  EXPECT_THROW(sched.next(0, active, rng), std::logic_error);
}

TEST(AdversarialScheduler, RejectsNullStrategy) {
  EXPECT_THROW(AdversarialScheduler(nullptr), std::invalid_argument);
}

TEST(ThetaMixScheduler, EveryProcessGetsAtLeastTheta) {
  // Inner adversary starves process 0; the theta mixture must still
  // schedule it with probability >= theta.
  auto adversary = std::make_unique<AdversarialScheduler>(
      [](std::uint64_t, std::span<const std::size_t> active) {
        return active.back();
      });
  const double theta = 0.05;
  ThetaMixScheduler sched(theta, std::move(adversary));
  const auto active = iota_active(4);
  const auto freq = empirical_distribution(sched, active, 4, 200'000);
  EXPECT_GE(freq[0], theta * 0.8);
  EXPECT_GE(freq[1], theta * 0.8);
  EXPECT_GE(freq[2], theta * 0.8);
  EXPECT_GT(freq[3], 0.8);  // the adversary's favourite
  EXPECT_DOUBLE_EQ(sched.theta(4), theta);
}

TEST(ThetaMixScheduler, RejectsOversizedTheta) {
  auto inner = std::make_unique<UniformScheduler>();
  ThetaMixScheduler sched(0.5, std::move(inner));
  const auto active = iota_active(4);  // 4 * 0.5 > 1
  Xoshiro256pp rng(1);
  EXPECT_THROW(sched.next(0, active, rng), std::logic_error);
  EXPECT_THROW(ThetaMixScheduler(0.0, std::make_unique<UniformScheduler>()),
               std::invalid_argument);
  EXPECT_THROW(ThetaMixScheduler(0.1, nullptr), std::invalid_argument);
}

}  // namespace
}  // namespace pwf::core
