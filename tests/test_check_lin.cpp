// The WGL checker on hand-built histories: known-linearizable and
// known-broken interleavings, pending-operation semantics, budget
// exhaustion, and per-object partitioning.
#include "check/lin_check.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "check/history.hpp"
#include "check/spec.hpp"

namespace pwf::check {
namespace {

Operation op(std::uint32_t thread, OpCode code, std::uint64_t invoke,
             std::uint64_t response, bool has_arg = false, Value arg = 0,
             bool has_ret = false, Value ret = 0) {
  Operation o;
  o.thread = thread;
  o.op = code;
  o.has_arg = has_arg;
  o.arg = arg;
  o.has_ret = has_ret;
  o.ret = ret;
  o.invoke = invoke;
  o.response = response;
  return o;
}

TEST(LinCheck, EmptyHistoryIsLinearizable) {
  const History h;
  const auto result = check_linearizability(h, *make_queue_spec());
  EXPECT_EQ(result.verdict, LinVerdict::kLinearizable);
  EXPECT_TRUE(result.linearization.empty());
}

TEST(LinCheck, OverlappingEnqDeqLinearizes) {
  // t1's deq overlaps t0's enq and returns its value: legal — the enq
  // linearizes first inside the overlap.
  const History h({
      op(0, OpCode::kEnqueue, 0, 3, true, 42),
      op(1, OpCode::kDequeue, 1, 2, false, 0, true, 42),
  });
  const auto result = check_linearizability(h, *make_queue_spec());
  ASSERT_EQ(result.verdict, LinVerdict::kLinearizable);
  // The witness linearization must put the enqueue (index 0) first.
  ASSERT_EQ(result.linearization.size(), 2u);
  EXPECT_EQ(result.linearization[0], 0u);
}

TEST(LinCheck, EmptyDequeueAfterCompletedEnqueueIsNot) {
  // enq(1) completed strictly before a deq that claims empty: in every
  // linearization the queue holds 1 — the lost-element symptom.
  const History h({
      op(0, OpCode::kEnqueue, 0, 1, true, 1),
      op(1, OpCode::kDequeue, 2, 3, false, 0, false, 0),
  });
  EXPECT_EQ(check_linearizability(h, *make_queue_spec()).verdict,
            LinVerdict::kNotLinearizable);
}

TEST(LinCheck, DuplicateFetchIncIsNot) {
  // Two overlapping fetch_inc both returning 0: no sequential counter
  // produces the same pre-increment value twice.
  const History h({
      op(0, OpCode::kFetchInc, 0, 3, false, 0, true, 0),
      op(1, OpCode::kFetchInc, 1, 2, false, 0, true, 0),
  });
  EXPECT_EQ(check_linearizability(h, *make_counter_spec()).verdict,
            LinVerdict::kNotLinearizable);
}

TEST(LinCheck, RealTimeOrderIsRespected) {
  // Non-overlapping pops in the wrong LIFO order must be rejected even
  // though a reordering would satisfy the spec.
  const History h({
      op(0, OpCode::kPush, 0, 1, true, 1),
      op(0, OpCode::kPush, 2, 3, true, 2),
      op(1, OpCode::kPop, 4, 5, false, 0, true, 1),
  });
  EXPECT_EQ(check_linearizability(h, *make_stack_spec()).verdict,
            LinVerdict::kNotLinearizable);
}

TEST(LinCheck, PendingOpMayTakeEffect) {
  // A crashed enqueue with no response may still have landed: a later
  // deq of its value is legal.
  const History h({
      op(0, OpCode::kEnqueue, 0, Operation::kPending, true, 9),
      op(1, OpCode::kDequeue, 1, 2, false, 0, true, 9),
  });
  EXPECT_EQ(check_linearizability(h, *make_queue_spec()).verdict,
            LinVerdict::kLinearizable);
}

TEST(LinCheck, PendingOpMayNeverTakeEffect) {
  // ... and it is equally legal for the crashed enqueue to have never
  // happened: a later empty deq is fine too.
  const History h({
      op(0, OpCode::kEnqueue, 0, Operation::kPending, true, 9),
      op(1, OpCode::kDequeue, 1, 2, false, 0, false, 0),
  });
  EXPECT_EQ(check_linearizability(h, *make_queue_spec()).verdict,
            LinVerdict::kLinearizable);
}

TEST(LinCheck, BudgetExhaustionReportsUnknown) {
  CheckOptions tiny;
  tiny.max_nodes = 1;
  const History h({
      op(0, OpCode::kEnqueue, 0, 3, true, 1),
      op(1, OpCode::kEnqueue, 1, 2, true, 2),
      op(2, OpCode::kDequeue, 4, 5, false, 0, true, 2),
  });
  const auto result = check_linearizability(h, *make_queue_spec(), tiny);
  EXPECT_EQ(result.verdict, LinVerdict::kUnknown);
}

TEST(LinCheck, MemoizationPrunesExponentialBlowup) {
  // n concurrent enq of distinct values followed by n deqs: the naive
  // search is factorial; memoized it is well under a few thousand nodes.
  std::vector<Operation> ops;
  constexpr int kN = 8;
  for (int i = 0; i < kN; ++i) {
    ops.push_back(op(static_cast<std::uint32_t>(i), OpCode::kEnqueue, 0,
                     kN + 1, true, 100 + i));
  }
  for (int i = 0; i < kN; ++i) {
    ops.push_back(op(0, OpCode::kDequeue, kN + 2 + 2 * i, kN + 3 + 2 * i,
                     false, 0, true, 100 + i));
  }
  const auto result = check_linearizability(History(ops), *make_queue_spec());
  EXPECT_EQ(result.verdict, LinVerdict::kLinearizable);
  EXPECT_LT(result.nodes, 10'000u);
}

TEST(Partition, SplitsByObjectAndChecksIndependently) {
  // Set operations on two keys: key 1 is consistent, key 2 is broken
  // (contains sees a key that was never inserted).
  const History h({
      op(0, OpCode::kInsert, 0, 1, true, 1, true, 1),
      op(1, OpCode::kContains, 2, 3, true, 2, true, 1),
      op(0, OpCode::kContains, 4, 5, true, 1, true, 1),
  });
  const auto object_of = [](const Operation& o) { return o.arg; };
  const auto parts = partition_history(h, object_of);
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0].size() + parts[1].size(), 3u);

  const auto merged = check_partitioned(h, *make_set_spec(), object_of);
  EXPECT_EQ(merged.verdict, LinVerdict::kNotLinearizable);

  // Drop the bad op and the partitioned check goes green.
  const History good({
      op(0, OpCode::kInsert, 0, 1, true, 1, true, 1),
      op(0, OpCode::kContains, 4, 5, true, 1, true, 1),
  });
  EXPECT_EQ(check_partitioned(good, *make_set_spec(), object_of).verdict,
            LinVerdict::kLinearizable);
}

TEST(HistoryFromEvents, PairsInvokesWithResponses) {
  std::vector<OpEvent> events;
  events.push_back({0, 0, true, OpCode::kPush, true, 5});
  events.push_back({1, 1, true, OpCode::kPop, false, 0});
  events.push_back({2, 0, false, OpCode::kPush, false, 0});
  // t1's pop never responds -> pending.
  const History h = History::from_events(events);
  ASSERT_EQ(h.size(), 2u);
  EXPECT_EQ(h.num_completed(), 1u);
  EXPECT_EQ(h.num_pending(), 1u);
  EXPECT_EQ(h.num_events(), 3u);
}

TEST(HistoryFromEvents, RejectsMalformedStreams) {
  // Response with no matching invoke.
  std::vector<OpEvent> orphan;
  orphan.push_back({0, 0, false, OpCode::kPop, true, 1});
  EXPECT_THROW(History::from_events(orphan), std::invalid_argument);
  // Two pending invokes on one thread.
  std::vector<OpEvent> doubled;
  doubled.push_back({0, 0, true, OpCode::kPush, true, 1});
  doubled.push_back({1, 0, true, OpCode::kPush, true, 2});
  EXPECT_THROW(History::from_events(doubled), std::invalid_argument);
}

TEST(HistoryFingerprint, SensitiveToAnyFieldChange) {
  const History a({op(0, OpCode::kPush, 0, 1, true, 5)});
  const History b({op(0, OpCode::kPush, 0, 1, true, 6)});
  const History c({op(1, OpCode::kPush, 0, 1, true, 5)});
  EXPECT_NE(a.fingerprint(), b.fingerprint());
  EXPECT_NE(a.fingerprint(), c.fingerprint());
  EXPECT_EQ(a.fingerprint(), History(a.operations()).fingerprint());
}

}  // namespace
}  // namespace pwf::check
