// Tests for the wait-free helped universal construction: correctness of
// the threaded history (unique dense tickets), wait-freedom under a pure
// adversary (the property plain lock-free algorithms lack), and the
// helping overhead the paper's introduction describes.
#include "core/helping.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "core/algorithms.hpp"
#include "core/progress.hpp"
#include "core/simulation.hpp"

namespace pwf::core {
namespace {

Simulation make_sim(std::size_t n, std::unique_ptr<Scheduler> sched,
                    std::size_t max_cells, std::uint64_t seed = 1) {
  Simulation::Options opts;
  opts.num_registers = HelpedUniversal::registers_required(n, max_cells);
  opts.seed = seed;
  return Simulation(n, HelpedUniversal::factory(max_cells), std::move(sched),
                    opts);
}

TEST(HelpedUniversal, RejectsBadConstruction) {
  EXPECT_THROW(HelpedUniversal(3, 3, 10), std::invalid_argument);
  EXPECT_THROW(HelpedUniversal(0, 1, 0), std::invalid_argument);
}

TEST(HelpedUniversal, SoloProcessCompletesRepeatedly) {
  auto sim = make_sim(1, std::make_unique<UniformScheduler>(), 2'000);
  sim.run(10'000);
  EXPECT_GT(sim.report().completions, 900u);
  // Solo: announce, check, head, turn(self? announce read), ... bounded
  // steps per op.
  const double w = sim.report().system_latency();
  EXPECT_LT(w, 12.0);
  EXPECT_GT(w, 4.0);
}

// Observer that collects every completing process's ticket.
class TicketCollector final : public SimObserver {
 public:
  explicit TicketCollector(std::vector<const HelpedUniversal*> machines)
      : machines_(std::move(machines)) {}
  void on_step(std::uint64_t, std::size_t process, bool completed) override {
    if (completed) tickets_.push_back(machines_[process]->last_ticket());
  }
  const std::vector<std::uint64_t>& tickets() const { return tickets_; }

 private:
  std::vector<const HelpedUniversal*> machines_;
  std::vector<std::uint64_t> tickets_;
};

TEST(HelpedUniversal, TicketsAreUniqueAndDense) {
  constexpr std::size_t kN = 5;
  constexpr std::size_t kCells = 40'000;
  // Build machines by hand so the test can observe their tickets.
  Simulation::Options opts;
  opts.num_registers = HelpedUniversal::registers_required(kN, kCells);
  opts.seed = 11;
  std::vector<const HelpedUniversal*> raw;
  auto factory = [&raw, kCells](std::size_t pid, std::size_t n) {
    auto machine = std::make_unique<HelpedUniversal>(pid, n, kCells);
    raw.push_back(machine.get());
    return machine;
  };
  Simulation sim(kN, factory, std::make_unique<UniformScheduler>(), opts);
  TicketCollector collector(raw);
  sim.set_observer(&collector);
  sim.run(300'000);

  const auto& tickets = collector.tickets();
  ASSERT_GT(tickets.size(), 1000u);
  std::set<std::uint64_t> unique(tickets.begin(), tickets.end());
  EXPECT_EQ(unique.size(), tickets.size()) << "duplicate history positions";
  // Dense: the set of tickets is exactly {1..max}.
  EXPECT_EQ(*unique.begin(), 1u);
  EXPECT_EQ(*unique.rbegin(), tickets.size());
}

// An adversary that gives every non-favourite exactly one isolated step
// per kStarveGap steps and hands every other step to the favourite
// (active.back()). Under scan-validate the isolated steps are useless —
// the favourite invalidates every scan before the victim's CAS — but a
// wait-free algorithm must let the victims complete anyway.
AdversarialScheduler::Strategy starving_strategy() {
  constexpr std::uint64_t kStarveGap = 1000;
  return [](std::uint64_t tau, std::span<const std::size_t> active) {
    if (active.size() > 1 && tau % kStarveGap == 0) {
      return active[(tau / kStarveGap) % (active.size() - 1)];
    }
    return active.back();
  };
}

TEST(HelpedUniversal, WaitFreeUnderStarvingAdversary) {
  // The decisive contrast with Lemma 2 / plain lock-free: the favourite
  // helps every announced victim along, so even one isolated step per
  // thousand is enough for the victims to keep completing.
  constexpr std::size_t kN = 4;
  auto sim = make_sim(
      kN, std::make_unique<AdversarialScheduler>(starving_strategy()),
      100'000, 3);
  ProgressTracker tracker(kN);
  sim.set_observer(&tracker);
  sim.run(600'000);
  EXPECT_TRUE(tracker.every_process_completed());
  for (std::size_t p = 0; p + 1 < kN; ++p) {
    // Each victim gets ~200 steps; an op costs it ~2-3 of its own steps
    // (announce + check-done) because the favourite does the threading.
    EXPECT_GT(tracker.completions(p), 40u) << "process " << p;
  }
  EXPECT_GT(tracker.completions(kN - 1), 10'000u);
}

TEST(HelpedUniversal, ScanValidateStarvesWhereHelpedDoesNot) {
  // Control for the previous test: the same adversary starves every
  // victim under plain scan-validate.
  constexpr std::size_t kN = 4;
  Simulation::Options opts;
  opts.num_registers = ScuAlgorithm::registers_required(kN, 1);
  Simulation sim(kN, scan_validate_factory(),
                 std::make_unique<AdversarialScheduler>(starving_strategy()),
                 opts);
  ProgressTracker tracker(kN);
  sim.set_observer(&tracker);
  sim.run(600'000);
  EXPECT_FALSE(tracker.every_process_completed());
  EXPECT_GT(tracker.completions(kN - 1), 10'000u);  // the favourite thrives
}

TEST(HelpedUniversal, RoundRobinGivesEveryProcessBoundedLatency) {
  // Under the deterministic round-robin schedule, where scan-validate
  // hands every success to one process (see test_core_sim_vs_chain), the
  // helped construction spreads completions evenly with a hard latency
  // bound.
  constexpr std::size_t kN = 6;
  auto sim = make_sim(kN, std::make_unique<RoundRobinScheduler>(), 40'000, 5);
  ProgressTracker tracker(kN);
  sim.set_observer(&tracker);
  sim.run(300'000);
  EXPECT_TRUE(tracker.every_process_completed());
  // Wait-freedom: the worst gap between consecutive completions of the
  // same process is bounded by O(n) rounds of O(n) system steps.
  EXPECT_LT(tracker.max_individual_gap(), 40ull * kN * kN);
}

TEST(HelpedUniversal, HelpingCostsMoreThanLockFreeUnderUniform) {
  // The paper's practical thesis, quantified: under the uniform stochastic
  // scheduler (where helping is unnecessary) the wait-free construction
  // pays a higher per-operation cost than plain scan-validate.
  constexpr std::size_t kN = 8;
  auto helped = make_sim(kN, std::make_unique<UniformScheduler>(), 150'000, 9);
  helped.run(100'000);
  helped.reset_stats();
  helped.run(700'000);

  Simulation::Options opts;
  opts.num_registers = ScuAlgorithm::registers_required(kN, 1);
  opts.seed = 9;
  Simulation plain(kN, scan_validate_factory(),
                   std::make_unique<UniformScheduler>(), opts);
  plain.run(100'000);
  plain.reset_stats();
  plain.run(700'000);

  EXPECT_GT(helped.report().system_latency(),
            plain.report().system_latency());
}

TEST(HelpedUniversal, SurvivesCrashesOfHelpersAndAnnouncers) {
  // Crash two processes (possibly mid-announce, mid-help); the survivors
  // must keep completing and the history must stay consistent. A crashed
  // process's announced cell is simply threaded by the others — its
  // operation takes effect even though it died.
  constexpr std::size_t kN = 5;
  auto sim = make_sim(kN, std::make_unique<UniformScheduler>(), 120'000, 21);
  sim.schedule_crash(5'000, 4);
  sim.schedule_crash(10'000, 3);
  ProgressTracker tracker(kN);
  sim.set_observer(&tracker);
  sim.run(500'000);
  for (std::size_t p = 0; p < 3; ++p) {
    EXPECT_GT(tracker.completions(p), 5'000u) << "survivor " << p;
  }
  EXPECT_EQ(sim.active().size(), 3u);
}

TEST(HelpedUniversal, ArenaExhaustionThrows) {
  auto sim = make_sim(1, std::make_unique<UniformScheduler>(), 3);
  EXPECT_THROW(sim.run(10'000), std::runtime_error);
}

}  // namespace
}  // namespace pwf::core
