// Backoff cap semantics (src/lockfree/backoff.hpp): the spin budget
// doubles up to a configurable cap and then *holds* there — the
// pre-fix behaviour escalated past the cap once and then never spun
// again (yield-only forever), which made late retries in a long CAS
// loop behave differently from early ones and skewed helping-rate
// measurements built on top of the loop.
#include "lockfree/backoff.hpp"

#include <gtest/gtest.h>

namespace pwf::lockfree {
namespace {

TEST(Backoff, DoublesUpToDefaultCapAndHolds) {
  Backoff b;
  EXPECT_EQ(b.max_spins(), Backoff::kDefaultMaxSpins);
  std::uint32_t expected = 1;
  // 1, 2, 4, 8, 16, 32, 64.
  for (int i = 0; i < 7; ++i) {
    EXPECT_EQ(b.spins(), expected);
    b.pause();
    expected = expected * 2 <= Backoff::kDefaultMaxSpins
                   ? expected * 2
                   : Backoff::kDefaultMaxSpins;
  }
  // Saturated: many more pauses never move the budget off the cap (the
  // regression the fix addresses: it used to leave the spin range
  // entirely).
  for (int i = 0; i < 100; ++i) {
    b.pause();
    EXPECT_EQ(b.spins(), Backoff::kDefaultMaxSpins);
  }
}

TEST(Backoff, CapIsConfigurable) {
  Backoff b(8);
  EXPECT_EQ(b.max_spins(), 8u);
  const std::uint32_t expect[] = {1, 2, 4, 8, 8, 8};
  for (std::uint32_t e : expect) {
    EXPECT_EQ(b.spins(), e);
    b.pause();
  }
}

TEST(Backoff, NonPowerOfTwoCapClamps) {
  Backoff b(6);
  const std::uint32_t expect[] = {1, 2, 4, 6, 6};
  for (std::uint32_t e : expect) {
    EXPECT_EQ(b.spins(), e);
    b.pause();
  }
}

TEST(Backoff, ZeroCapMeansYieldOnly) {
  Backoff b(0);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(b.spins(), 0u);
    b.pause();
  }
}

TEST(Backoff, ResetReturnsToOne) {
  Backoff b(16);
  for (int i = 0; i < 10; ++i) b.pause();
  EXPECT_EQ(b.spins(), 16u);
  b.reset();
  EXPECT_EQ(b.spins(), 1u);
  b.pause();
  EXPECT_EQ(b.spins(), 2u);
}

}  // namespace
}  // namespace pwf::lockfree
