// Tests for the closed-form predictors.
#include "core/theory.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/special.hpp"

namespace pwf::core::theory {
namespace {

TEST(Theory, Theorem3Bound) {
  EXPECT_DOUBLE_EQ(theorem3_expected_bound(0.25, 1), 4.0);
  EXPECT_DOUBLE_EQ(theorem3_expected_bound(0.5, 3), 8.0);
  EXPECT_THROW(theorem3_expected_bound(-1.0, 1), std::invalid_argument);
  EXPECT_THROW(theorem3_expected_bound(1.5, 1), std::invalid_argument);
}

TEST(Theory, ScuLatencyShape) {
  EXPECT_DOUBLE_EQ(scu_system_latency(0, 1, 16), 4.0);
  EXPECT_DOUBLE_EQ(scu_system_latency(10, 2, 25, 2.0), 10.0 + 2.0 * 2 * 5);
  EXPECT_DOUBLE_EQ(scu_individual_latency(0, 1, 16),
                   16.0 * scu_system_latency(0, 1, 16));
}

TEST(Theory, ParallelLatencies) {
  EXPECT_DOUBLE_EQ(parallel_system_latency(7), 7.0);
  EXPECT_DOUBLE_EQ(parallel_individual_latency(4, 7), 28.0);
}

TEST(Theory, FaiExactMatchesRecurrence) {
  for (std::size_t n : {1, 2, 3, 10, 100}) {
    EXPECT_DOUBLE_EQ(fai_system_latency_exact(n),
                     fai_hitting_time(n - 1, n));
  }
  EXPECT_THROW(fai_system_latency_exact(0), std::invalid_argument);
}

TEST(Theory, FaiAsymptoticConvergesToExact) {
  const double ratio = fai_system_latency_exact(100'000) /
                       fai_system_latency_asymptotic(100'000);
  EXPECT_NEAR(ratio, 1.0, 0.002);
}

TEST(Theory, FaiIndividualIsNTimesSystem) {
  for (std::size_t n : {2, 8, 64}) {
    EXPECT_DOUBLE_EQ(fai_individual_latency_exact(n),
                     static_cast<double>(n) * fai_system_latency_exact(n));
  }
}

TEST(Theory, CompletionRates) {
  EXPECT_DOUBLE_EQ(fai_completion_rate_predicted(1), 1.0);
  EXPECT_NEAR(fai_completion_rate_predicted(100),
              1.0 / fai_system_latency_exact(100), 1e-15);
  EXPECT_DOUBLE_EQ(fai_completion_rate_worst_case(20), 0.05);
  // Predicted rate must dominate the worst case for all n > 1.
  for (std::size_t n : {2, 4, 16, 256}) {
    EXPECT_GT(fai_completion_rate_predicted(n),
              fai_completion_rate_worst_case(n));
  }
}

TEST(Theory, WorstCaseIsLinearInN) {
  EXPECT_DOUBLE_EQ(scu_worst_case_system_latency(3, 2, 10), 23.0);
}

TEST(Theory, PhaseLengthBound) {
  // Balanced start (a = n, b = 0): only the sqrt branch applies.
  EXPECT_DOUBLE_EQ(phase_length_bound(16, 16, 0), 2.0 * 4.0 * 16.0 / 4.0);
  // Empty-heavy start: the cube-root branch can win.
  const double b_branch = 3.0 * 4.0 * 1000.0 / std::cbrt(999.0);
  EXPECT_NEAR(phase_length_bound(1000, 1, 999), b_branch, 1e-9);
  // Degenerate zero/zero start.
  EXPECT_TRUE(std::isinf(phase_length_bound(4, 0, 0)));
}

}  // namespace
}  // namespace pwf::core::theory
