// Tests for the Michael-Scott queue: FIFO semantics, per-producer order
// preservation under concurrency, and conservation of elements.
#include "lockfree/ms_queue.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <thread>
#include <vector>

namespace pwf::lockfree {
namespace {

TEST(MsQueue, FifoOrderSingleThread) {
  EbrDomain domain;
  EbrThreadHandle handle(domain);
  MsQueue<int> queue(domain);
  for (int i = 0; i < 10; ++i) queue.enqueue(handle, i);
  for (int i = 0; i < 10; ++i) {
    const auto out = queue.dequeue(handle);
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(*out, i);
  }
  EXPECT_TRUE(queue.empty());
}

TEST(MsQueue, DequeueOnEmptyReturnsNullopt) {
  EbrDomain domain;
  EbrThreadHandle handle(domain);
  MsQueue<int> queue(domain);
  EXPECT_FALSE(queue.dequeue(handle).has_value());
  queue.enqueue(handle, 5);
  EXPECT_EQ(*queue.dequeue(handle), 5);
  EXPECT_FALSE(queue.dequeue(handle).has_value());
}

TEST(MsQueue, EmptyReflectsState) {
  EbrDomain domain;
  EbrThreadHandle handle(domain);
  MsQueue<int> queue(domain);
  EXPECT_TRUE(queue.empty());
  queue.enqueue(handle, 1);
  EXPECT_FALSE(queue.empty());
  queue.dequeue(handle);
  EXPECT_TRUE(queue.empty());
}

TEST(MsQueue, InterleavedEnqueueDequeue) {
  EbrDomain domain;
  EbrThreadHandle handle(domain);
  MsQueue<int> queue(domain);
  queue.enqueue(handle, 1);
  queue.enqueue(handle, 2);
  EXPECT_EQ(*queue.dequeue(handle), 1);
  queue.enqueue(handle, 3);
  EXPECT_EQ(*queue.dequeue(handle), 2);
  EXPECT_EQ(*queue.dequeue(handle), 3);
}

TEST(MsQueue, CountedOpsReportAttempts) {
  EbrDomain domain;
  EbrThreadHandle handle(domain);
  MsQueue<int> queue(domain);
  EXPECT_EQ(queue.enqueue(handle, 1), 1u);
  const auto [value, attempts] = queue.dequeue_counted(handle);
  EXPECT_EQ(*value, 1);
  EXPECT_EQ(attempts, 1u);
  EXPECT_EQ(queue.dequeue_counted(handle).second, 0u);  // observed empty
}

TEST(MsQueue, DestructorFreesRemainingNodes) {
  EbrDomain domain;
  {
    EbrThreadHandle handle(domain);
    MsQueue<int> queue(domain);
    for (int i = 0; i < 100; ++i) queue.enqueue(handle, i);
  }
  SUCCEED();
}

TEST(MsQueue, ConcurrentProducersPreservePerProducerOrder) {
  // FIFO linearizability implies: for a fixed producer, its elements are
  // dequeued in the order it enqueued them.
  EbrDomain domain;
  MsQueue<std::pair<int, int>> queue(domain);  // (producer, seq)
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 10'000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kProducers; ++t) {
    workers.emplace_back([&, t] {
      EbrThreadHandle handle(domain);
      for (int i = 0; i < kPerProducer; ++i) {
        queue.enqueue(handle, {t, i});
      }
    });
  }
  for (auto& w : workers) w.join();

  EbrThreadHandle handle(domain);
  std::map<int, int> next_expected;
  std::size_t total = 0;
  while (auto out = queue.dequeue(handle)) {
    const auto [producer, seq] = *out;
    EXPECT_EQ(seq, next_expected[producer]) << "producer " << producer;
    next_expected[producer] = seq + 1;
    ++total;
  }
  EXPECT_EQ(total, static_cast<std::size_t>(kProducers) * kPerProducer);
}

TEST(MsQueue, ConcurrentProducersAndConsumersConserveElements) {
  EbrDomain domain;
  MsQueue<int> queue(domain);
  constexpr int kProducers = 2;
  constexpr int kConsumers = 2;
  constexpr int kPerProducer = 20'000;
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> dequeued{0};
  std::vector<std::atomic<int>> seen(kProducers * kPerProducer);
  for (auto& flag : seen) flag.store(0);

  std::vector<std::thread> workers;
  for (int t = 0; t < kProducers; ++t) {
    workers.emplace_back([&, t] {
      EbrThreadHandle handle(domain);
      for (int i = 0; i < kPerProducer; ++i) {
        queue.enqueue(handle, t * kPerProducer + i);
      }
    });
  }
  for (int t = 0; t < kConsumers; ++t) {
    workers.emplace_back([&] {
      EbrThreadHandle handle(domain);
      auto record = [&](int value) {
        ASSERT_EQ(seen[value].fetch_add(1), 0) << "duplicate " << value;
        dequeued.fetch_add(1);
      };
      while (true) {
        if (const auto out = queue.dequeue(handle)) {
          record(*out);
        } else if (done.load()) {
          // All enqueues happened before `done` was set; one more pop
          // after observing it distinguishes "drained" from a stale empty.
          const auto last = queue.dequeue(handle);
          if (!last) break;
          record(*last);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (int t = 0; t < kProducers; ++t) workers[t].join();
  done.store(true);
  for (int t = kProducers; t < kProducers + kConsumers; ++t) workers[t].join();

  EXPECT_EQ(dequeued.load(),
            static_cast<std::uint64_t>(kProducers) * kPerProducer);
}

}  // namespace
}  // namespace pwf::lockfree
