// Tests for the simulated three-strategy skip list: construction guards,
// sequential semantics against a reference set (per strategy, including
// the novalidate mutant — its bug needs a race), structural invariants
// under the model scheduler (sorted bottom level, index ⊆ bottom, no
// cycles), and progress for every strategy.
#include "core/sim_skiplist.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "core/simulation.hpp"

namespace pwf::core {
namespace {

using lockfree::SyncStrategy;

struct Event {
  OpCode op;
  Value arg;
  Value ret;
};

// Records completed operations; with n = 1 every invoke is immediately
// followed by its response, so the pair stream is the sequential history.
class SoloSink final : public OpTraceSink {
 public:
  void on_invoke(std::size_t, OpCode op, bool, Value arg) override {
    pending_op_ = op;
    pending_arg_ = arg;
    ++invokes_;
  }
  void on_response(std::size_t, OpCode op, bool, Value ret) override {
    EXPECT_EQ(op, pending_op_);
    events_.push_back({op, pending_arg_, ret});
  }
  const std::vector<Event>& events() const { return events_; }
  std::uint64_t invokes() const { return invokes_; }

 private:
  OpCode pending_op_ = OpCode::kContains;
  Value pending_arg_ = 0;
  std::uint64_t invokes_ = 0;
  std::vector<Event> events_;
};

struct SkipSim {
  std::vector<const SimSkipList*> machines;
  Simulation sim;
};

SkipSim make_sim(std::size_t n, SimSkipListConfig config,
                 OpTraceSink* sink = nullptr, std::uint64_t seed = 1) {
  auto machines = std::make_shared<std::vector<const SimSkipList*>>();
  Simulation::Options opts;
  opts.num_registers = SimSkipList::registers_required(n, config);
  opts.seed = seed;
  auto factory = [machines, config, sink](std::size_t pid, std::size_t nn) {
    auto machine = std::make_unique<SimSkipList>(pid, nn, config);
    if (sink) machine->set_trace(sink);
    machines->push_back(machine.get());
    return machine;
  };
  SkipSim out{{}, Simulation(n, factory,
                             std::make_unique<UniformScheduler>(), opts)};
  out.machines = *machines;
  return out;
}

TEST(SimSkipList, RejectsBadConstruction) {
  EXPECT_THROW(SimSkipList(1, 1, {}), std::invalid_argument);  // pid >= n
  SimSkipListConfig tiny;
  tiny.key_space = 1;
  EXPECT_THROW(SimSkipList(0, 1, tiny), std::invalid_argument);
  SimSkipListConfig bad;
  bad.strategy = SyncStrategy::kLockFree;
  bad.novalidate = true;  // mutant flag only makes sense for optimistic
  EXPECT_THROW(SimSkipList(0, 1, bad), std::invalid_argument);
}

TEST(SimSkipList, RegisterLayout) {
  SimSkipListConfig config;
  config.key_space = 4;
  // coarse lock + 3 head registers + 3 per key.
  EXPECT_EQ(SimSkipList::registers_required(3, config), 4u + 3u * 4u);
}

// Solo run per strategy: every response must match a reference std::set.
class SimSkipListSolo : public ::testing::TestWithParam<SimSkipListConfig> {};

TEST_P(SimSkipListSolo, MatchesReferenceSet) {
  SoloSink sink;
  auto s = make_sim(1, GetParam(), &sink);
  s.sim.run(40'000);
  const auto& events = sink.events();
  ASSERT_GT(events.size(), 1'000u);
  std::set<Value> reference;
  for (const Event& e : events) {
    switch (e.op) {
      case OpCode::kInsert:
        EXPECT_EQ(e.ret, reference.insert(e.arg).second ? 1u : 0u);
        break;
      case OpCode::kErase:
        EXPECT_EQ(e.ret, reference.erase(e.arg));
        break;
      case OpCode::kContains:
        EXPECT_EQ(e.ret, reference.count(e.arg));
        break;
      default:
        FAIL() << "unexpected op";
    }
  }
  // Each op kind shows up (the op mix is a hash of (pid, op index)).
  const SimSkipList& m = *s.machines[0];
  EXPECT_GT(m.inserts_ok(), 0u);
  EXPECT_GT(m.erases_ok(), 0u);
  EXPECT_GT(m.contains_hits(), 0u);
  EXPECT_EQ(m.ops_completed(), events.size());
}

SimSkipListConfig solo_config(SyncStrategy s, bool novalidate = false) {
  SimSkipListConfig c;
  c.strategy = s;
  c.key_space = 6;
  c.novalidate = novalidate;
  return c;
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, SimSkipListSolo,
    ::testing::Values(solo_config(SyncStrategy::kCoarse),
                      solo_config(SyncStrategy::kOptimistic),
                      solo_config(SyncStrategy::kLockFree),
                      // The mutant's bug is a race: sequentially it must
                      // be indistinguishable from the real optimistic map.
                      solo_config(SyncStrategy::kOptimistic, true)),
    [](const auto& info) {
      std::string n = SimSkipList(0, 1, info.param).name();
      for (char& c : n) {
        if (c == '-') c = '_';
      }
      return n;
    });

// Structural invariants hold at *every* instant (links are always spliced
// list-first), so they can be asserted on the mid-flight final state.
void check_structure(SharedMemory& mem, const SimSkipListConfig& config) {
  constexpr Value kRefMask = 0xffffULL;
  auto next_ref = [&](std::uint64_t ref, int level) {
    const std::size_t reg =
        ref == 0 ? 1 + static_cast<std::size_t>(level)
                 : 4 + 3 * (ref - 1) + static_cast<std::size_t>(level);
    return mem.peek(reg) & kRefMask;
  };
  // Bottom level: strictly increasing keys, bounded length.
  std::set<std::uint64_t> level0;
  std::uint64_t prev = 0;
  std::uint64_t curr = next_ref(0, 0);
  std::size_t hops = 0;
  while (curr != 0) {
    ASSERT_LE(++hops, config.key_space) << "cycle or stray node at level 0";
    ASSERT_GT(curr, prev) << "level 0 out of order";
    ASSERT_LE(curr, config.key_space);
    level0.insert(curr);
    prev = curr;
    curr = next_ref(curr, 0);
  }
  // Index level: only tall keys, strictly increasing. Coarse and
  // optimistic link bottom-first and unlink index-first under locks, so
  // their index is always a subset of the bottom level; the lock-free
  // strategy's index is only eventually consistent (a helper snip can
  // transiently resurrect a stale index link), so there the bottom level
  // alone is authoritative — as in Fraser-style lists.
  const bool index_subset =
      config.strategy != SyncStrategy::kLockFree;
  prev = 0;
  curr = next_ref(0, 1);
  hops = 0;
  while (curr != 0) {
    ASSERT_LE(++hops, config.key_space) << "cycle or stray node at level 1";
    ASSERT_GT(curr, prev) << "level 1 out of order";
    EXPECT_EQ(curr % 2, 0u) << "short key in the index";
    if (index_subset) {
      EXPECT_TRUE(level0.count(curr)) << "index points past the bottom level";
    }
    prev = curr;
    curr = next_ref(curr, 1);
  }
}

class SimSkipListConcurrent
    : public ::testing::TestWithParam<SimSkipListConfig> {};

TEST_P(SimSkipListConcurrent, StructureStaysConsistent) {
  for (std::uint64_t seed : {1u, 7u, 42u}) {
    auto s = make_sim(4, GetParam(), nullptr, seed);
    s.sim.run(200'000);
    check_structure(s.sim.memory(), GetParam());
    std::uint64_t total_ops = 0;
    for (const SimSkipList* m : s.machines) total_ops += m->ops_completed();
    EXPECT_GT(total_ops, 2'000u) << "strategy starved under uniform schedule";
  }
}

SimSkipListConfig churn_config(SyncStrategy s) {
  SimSkipListConfig c;
  c.strategy = s;
  c.key_space = 4;  // high collision pressure
  return c;
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, SimSkipListConcurrent,
    ::testing::Values(churn_config(SyncStrategy::kCoarse),
                      churn_config(SyncStrategy::kOptimistic),
                      churn_config(SyncStrategy::kLockFree)),
    [](const auto& info) {
      std::string n = SimSkipList(0, 1, info.param).name();
      for (char& c : n) {
        if (c == '-') c = '_';
      }
      return n;
    });

// Trace hygiene under concurrency: at most one op in flight per process
// (invokes == responses + in-flight <= responses + n).
TEST(SimSkipList, TraceInvokeResponseBalance) {
  class CountSink final : public OpTraceSink {
   public:
    void on_invoke(std::size_t, OpCode, bool, Value) override { ++invokes_; }
    void on_response(std::size_t, OpCode, bool, Value) override {
      ++responses_;
    }
    std::uint64_t invokes_ = 0, responses_ = 0;
  };
  CountSink sink;
  SimSkipListConfig config;
  config.strategy = SyncStrategy::kLockFree;
  auto s = make_sim(3, config, &sink);
  s.sim.run(30'000);
  EXPECT_GE(sink.invokes_, sink.responses_);
  EXPECT_LE(sink.invokes_, sink.responses_ + 3);
}

}  // namespace
}  // namespace pwf::core
