// Integration tests: the simulation engine and the exact Markov-chain
// analysis must agree. For every algorithm the paper analyzes, the
// simulated stationary latencies are compared against the chain-exact
// values (small n) and the closed forms.
#include <gtest/gtest.h>

#include <memory>

#include "core/algorithms.hpp"
#include "core/simulation.hpp"
#include "core/theory.hpp"
#include "markov/builders.hpp"

namespace pwf::core {
namespace {

constexpr std::uint64_t kWarmup = 50'000;
constexpr std::uint64_t kMeasure = 600'000;

double simulated_system_latency(Simulation& sim) {
  sim.run(kWarmup);
  sim.reset_stats();
  sim.run(kMeasure);
  return sim.report().system_latency();
}

class ScanValidateSimVsChain : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ScanValidateSimVsChain, SystemLatencyMatchesExactChain) {
  const std::size_t n = GetParam();
  Simulation::Options opts;
  opts.num_registers = ScuAlgorithm::registers_required(n, 1);
  opts.seed = 42 + n;
  Simulation sim(n, scan_validate_factory(),
                 std::make_unique<UniformScheduler>(), opts);
  const double simulated = simulated_system_latency(sim);
  const double exact =
      markov::system_latency(markov::build_scan_validate_system_chain(n));
  EXPECT_NEAR(simulated, exact, 0.03 * exact)
      << "n = " << n << ": sim " << simulated << " vs chain " << exact;
}

TEST_P(ScanValidateSimVsChain, IndividualLatencyIsNTimesSystem) {
  // Lemma 7 observed in simulation: every process's latency ~= n * W.
  const std::size_t n = GetParam();
  Simulation::Options opts;
  opts.num_registers = ScuAlgorithm::registers_required(n, 1);
  opts.seed = 1000 + n;
  Simulation sim(n, scan_validate_factory(),
                 std::make_unique<UniformScheduler>(), opts);
  sim.run(kWarmup);
  sim.reset_stats();
  sim.run(kMeasure);
  const double w = sim.report().system_latency();
  for (std::size_t p = 0; p < n; ++p) {
    EXPECT_NEAR(sim.report().individual_latency(p),
                static_cast<double>(n) * w,
                0.10 * static_cast<double>(n) * w)
        << "process " << p;
  }
}

INSTANTIATE_TEST_SUITE_P(SmallN, ScanValidateSimVsChain,
                         ::testing::Values(1, 2, 3, 5, 7));

class FaiSimVsChain : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FaiSimVsChain, SystemLatencyMatchesZRecurrence) {
  const std::size_t n = GetParam();
  Simulation::Options opts;
  opts.num_registers = FetchAndIncrement::registers_required();
  opts.seed = 7 + n;
  Simulation sim(n, FetchAndIncrement::factory(),
                 std::make_unique<UniformScheduler>(), opts);
  const double simulated = simulated_system_latency(sim);
  const double exact = theory::fai_system_latency_exact(n);
  EXPECT_NEAR(simulated, exact, 0.03 * exact)
      << "n = " << n << ": sim " << simulated << " vs Z(n-1) " << exact;
}

TEST_P(FaiSimVsChain, CompletionsEqualFinalCounterValue) {
  // The counter is exact: completed operations == register value.
  const std::size_t n = GetParam();
  Simulation::Options opts;
  opts.num_registers = FetchAndIncrement::registers_required();
  opts.seed = 17 + n;
  Simulation sim(n, FetchAndIncrement::factory(),
                 std::make_unique<UniformScheduler>(), opts);
  sim.run(100'000);
  EXPECT_EQ(sim.memory().peek(0),
            static_cast<Value>(sim.report().completions));
}

INSTANTIATE_TEST_SUITE_P(SmallN, FaiSimVsChain,
                         ::testing::Values(1, 2, 4, 8, 16, 32));

class ParallelSimVsChain : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ParallelSimVsChain, SystemLatencyIsQ) {
  const std::size_t q = GetParam();
  constexpr std::size_t kN = 6;
  Simulation::Options opts;
  opts.num_registers = ParallelCode::registers_required();
  opts.seed = 5 + q;
  Simulation sim(kN, ParallelCode::factory(q),
                 std::make_unique<UniformScheduler>(), opts);
  const double simulated = simulated_system_latency(sim);
  EXPECT_NEAR(simulated, static_cast<double>(q), 0.02 * q + 0.05);
}

INSTANTIATE_TEST_SUITE_P(Q, ParallelSimVsChain, ::testing::Values(1, 2, 5, 9));

TEST(ScuSimVsTheory, PreambleRespectsAdditiveUpperBound) {
  // Theorem 4 gives the upper bound W(q, s, n) = O(q + s sqrt n) via
  // sequential composition: W(q) <= q + W(0). Measured W(q) is strictly
  // below that (the preamble drains the loop, reducing contention), but
  // must grow with q and never beat the preamble's own cost entirely.
  constexpr std::size_t kN = 8;
  constexpr std::size_t kS = 2;
  auto measure = [&](std::size_t q) {
    Simulation::Options opts;
    opts.num_registers = ScuAlgorithm::registers_required(kN, kS);
    opts.seed = 99 + q;
    Simulation sim(kN, ScuAlgorithm::factory(q, kS),
                   std::make_unique<UniformScheduler>(), opts);
    return simulated_system_latency(sim);
  };
  const double w0 = measure(0);
  const double w5 = measure(5);
  const double w10 = measure(10);
  const double w20 = measure(20);
  // Upper bound of the sequential-composition argument.
  EXPECT_LE(w10, 10.0 + w0 * 1.02);
  EXPECT_LE(w20, 20.0 + w0 * 1.02);
  // Preamble steps are real work: latency strictly increases with q and
  // each extra preamble step costs at least ~half a system step here.
  EXPECT_GT(w5, w0);
  EXPECT_GT(w10, w5);
  EXPECT_GT(w20, w10);
  EXPECT_GT(w20 - w0, 0.4 * 20.0);
}

TEST(ScuSimVsTheory, Corollary1ScanStepsScaleTheLatency) {
  // Corollary 1: with s scan steps the system latency is O(s sqrt n); at
  // fixed n, going from s = 1 to s = 2 roughly doubles W (measured ratio
  // slightly above 2 at finite n, see DESIGN.md finding #4's counterpart).
  constexpr std::size_t kN = 8;
  auto measure = [&](std::size_t s) {
    Simulation::Options opts;
    opts.num_registers = ScuAlgorithm::registers_required(kN, s);
    opts.seed = 5 + s;
    Simulation sim(kN, ScuAlgorithm::factory(0, s),
                   std::make_unique<UniformScheduler>(), opts);
    return simulated_system_latency(sim);
  };
  const double w1 = measure(1);
  const double w2 = measure(2);
  const double w4 = measure(4);
  EXPECT_GT(w2 / w1, 1.5);
  EXPECT_LT(w2 / w1, 3.0);
  EXPECT_GT(w4 / w2, 1.5);
  EXPECT_LT(w4 / w2, 3.0);
}

TEST(ScuSimVsTheory, GeneralizedScanChainMatchesSimulation) {
  // The exact SCU(0, s) chain (markov::build_scu_scan_individual_chain)
  // is the ground truth for the step machine with s scan steps.
  struct Case {
    std::size_t n, s;
  };
  for (const Case c : {Case{2, 2}, Case{3, 2}, Case{4, 2}, Case{3, 3}}) {
    Simulation::Options opts;
    opts.num_registers = ScuAlgorithm::registers_required(c.n, c.s);
    opts.seed = 70 + c.n + 10 * c.s;
    Simulation sim(c.n, ScuAlgorithm::factory(0, c.s),
                   std::make_unique<UniformScheduler>(), opts);
    const double simulated = simulated_system_latency(sim);
    const double exact = markov::system_latency(
        markov::build_scu_scan_individual_chain(c.n, c.s));
    EXPECT_NEAR(simulated, exact, 0.03 * exact)
        << "n = " << c.n << ", s = " << c.s;
  }
}

TEST(ScuSimVsTheory, Corollary2CrashedRunsBehaveLikeKProcesses) {
  // Corollary 2: with only k <= n correct processes, the stationary
  // latency matches the k-process system exactly (crashed processes stop
  // influencing the chain).
  constexpr std::size_t kN = 8;
  constexpr std::size_t kCrashes = 4;
  Simulation::Options opts;
  opts.num_registers = ScuAlgorithm::registers_required(kN, 1);
  opts.seed = 40;
  Simulation sim(kN, scan_validate_factory(),
                 std::make_unique<UniformScheduler>(), opts);
  for (std::size_t c = 0; c < kCrashes; ++c) {
    sim.schedule_crash(1'000 + c, kN - 1 - c);
  }
  sim.run(kWarmup);  // crashes land, then the survivors re-equilibrate
  sim.reset_stats();
  sim.run(kMeasure);
  const double exact_k = markov::system_latency(
      markov::build_scan_validate_system_chain(kN - kCrashes));
  EXPECT_NEAR(sim.report().system_latency(), exact_k, 0.03 * exact_k);
}

TEST(ScuSimVsTheory, WorstCaseAdversaryReachesThetaQPlusSN) {
  // The adversarial scheduler that round-robins CAS attempts achieves the
  // Theta(q + s n) worst case: every process fails until all have tried.
  // Round-robin over scan-validate gives exactly one success per process
  // per "round" at a cost of ~ (s+1) steps per process... the key
  // qualitative claim: adversarial latency grows LINEARLY in n, not sqrt.
  auto worst_case = [](std::size_t n) {
    Simulation::Options opts;
    opts.num_registers = ScuAlgorithm::registers_required(n, 1);
    Simulation sim(n, scan_validate_factory(),
                   std::make_unique<RoundRobinScheduler>(), opts);
    sim.run(10'000);
    sim.reset_stats();
    sim.run(100'000);
    return sim.report().system_latency();
  };
  // Under round-robin, after everyone reads, only one CAS succeeds per
  // sweep of n CAS attempts: latency ~ n, linear growth.
  const double w8 = worst_case(8);
  const double w32 = worst_case(32);
  EXPECT_GT(w32 / w8, 2.5);  // near-linear: sqrt growth would give 2.0
  const double uniform8 =
      markov::system_latency(markov::build_scan_validate_system_chain(8));
  EXPECT_GT(w8, uniform8);  // adversary is worse than the uniform scheduler
}

}  // namespace
}  // namespace pwf::core
