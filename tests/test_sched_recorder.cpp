// Tests for schedule recording and the Figure 3 / Figure 4 statistics,
// on synthetic schedules, simulated schedules, and real hardware threads.
#include "sched/recorder.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <thread>

#include "core/algorithms.hpp"

namespace pwf::sched {
namespace {

TEST(ScheduleStats, RejectsZeroThreads) {
  EXPECT_THROW(ScheduleStats(0), std::invalid_argument);
}

TEST(ScheduleStats, CountsSyntheticSchedule) {
  ScheduleStats stats(3);
  const std::vector<std::uint32_t> order{0, 1, 2, 0, 1, 2};
  stats.add_schedule(order);
  EXPECT_EQ(stats.total_steps(), 6u);
  const auto shares = stats.shares();
  EXPECT_DOUBLE_EQ(shares[0], 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(shares[1], 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(shares[2], 1.0 / 3.0);
  EXPECT_NEAR(stats.max_share_deviation(), 0.0, 1e-12);
}

TEST(ScheduleStats, ConditionalDistributionOfRoundRobin) {
  ScheduleStats stats(3);
  std::vector<std::uint32_t> order;
  for (int i = 0; i < 300; ++i) order.push_back(i % 3);
  stats.add_schedule(order);
  // Round robin: after thread t, always thread (t+1) % 3.
  const auto after0 = stats.next_distribution(0);
  EXPECT_DOUBLE_EQ(after0[1], 1.0);
  EXPECT_DOUBLE_EQ(after0[0], 0.0);
  // Deviation from uniform is maximal: |1 - 1/3| = 2/3.
  EXPECT_NEAR(stats.max_conditional_deviation(), 2.0 / 3.0, 1e-12);
}

TEST(ScheduleStats, MultipleSchedulesAccumulate) {
  ScheduleStats stats(2);
  stats.add_schedule(std::vector<std::uint32_t>{0, 0, 0});
  stats.add_schedule(std::vector<std::uint32_t>{1, 1, 1});
  EXPECT_EQ(stats.total_steps(), 6u);
  EXPECT_DOUBLE_EQ(stats.shares()[0], 0.5);
  // The boundary between schedules contributes no transition: row 0 has
  // only 0 -> 0 transitions.
  EXPECT_DOUBLE_EQ(stats.next_distribution(0)[0], 1.0);
}

TEST(ScheduleStats, ChiSquareZeroForPerfectBalanceAndEmptiness) {
  ScheduleStats stats(4);
  EXPECT_DOUBLE_EQ(stats.chi_square_uniform(), 0.0);  // no data
  stats.add_schedule(std::vector<std::uint32_t>{0, 1, 2, 3, 0, 1, 2, 3});
  EXPECT_DOUBLE_EQ(stats.chi_square_uniform(), 0.0);  // perfectly balanced
}

TEST(ScheduleStats, ChiSquareDetectsSkew) {
  ScheduleStats uniform_stats(2);
  ScheduleStats skewed_stats(2);
  std::vector<std::uint32_t> balanced, skewed;
  for (int i = 0; i < 10'000; ++i) {
    balanced.push_back(i % 2);
    skewed.push_back(i % 10 == 0 ? 1 : 0);  // 90/10 split
  }
  uniform_stats.add_schedule(balanced);
  skewed_stats.add_schedule(skewed);
  EXPECT_LT(uniform_stats.chi_square_uniform(), 1.0);
  // 90/10 on 10k steps: chi2 = 2 * (4000^2)/5000 = 6400.
  EXPECT_NEAR(skewed_stats.chi_square_uniform(), 6400.0, 1.0);
}

TEST(ScheduleStats, ChiSquareOfSimulatedUniformIsChi2Scale) {
  // For a genuinely uniform random schedule the statistic is ~chi2(n-1):
  // mean n-1, rarely above ~5n.
  constexpr std::size_t kN = 8;
  core::Simulation::Options opts;
  opts.num_registers = 1;
  opts.seed = 123;
  core::Simulation sim(kN, core::ParallelCode::factory(1),
                       std::make_unique<core::UniformScheduler>(), opts);
  SimScheduleRecorder recorder(300'000);
  sim.set_observer(&recorder);
  sim.run(300'000);
  ScheduleStats stats(kN);
  stats.add_schedule(recorder.order());
  EXPECT_LT(stats.chi_square_uniform(), 5.0 * kN);
}

TEST(ScheduleStats, EmptyNextRowIsZeros) {
  ScheduleStats stats(2);
  stats.add_schedule(std::vector<std::uint32_t>{0});
  const auto row = stats.next_distribution(1);
  EXPECT_DOUBLE_EQ(row[0], 0.0);
  EXPECT_DOUBLE_EQ(row[1], 0.0);
}

TEST(SimScheduleRecorder, MatchesSimulatedUniformScheduler) {
  // Close the loop: recording a simulated uniform schedule must show the
  // Figure 3 / Figure 4 uniformity almost exactly.
  constexpr std::size_t kN = 4;
  constexpr std::size_t kSteps = 200'000;
  core::Simulation::Options opts;
  opts.num_registers = core::ParallelCode::registers_required();
  opts.seed = 99;
  core::Simulation sim(kN, core::ParallelCode::factory(2),
                       std::make_unique<core::UniformScheduler>(), opts);
  SimScheduleRecorder recorder(kSteps);
  sim.set_observer(&recorder);
  sim.run(kSteps);
  ASSERT_EQ(recorder.order().size(), kSteps);

  ScheduleStats stats(kN);
  stats.add_schedule(recorder.order());
  EXPECT_LT(stats.max_share_deviation(), 0.01);
  EXPECT_LT(stats.max_conditional_deviation(), 0.02);
}

TEST(SimScheduleRecorder, TruncatesAtCapacity) {
  core::Simulation::Options opts;
  opts.num_registers = 1;
  core::Simulation sim(2, core::ParallelCode::factory(1),
                       std::make_unique<core::UniformScheduler>(), opts);
  SimScheduleRecorder recorder(100);
  sim.set_observer(&recorder);
  sim.run(500);
  EXPECT_EQ(recorder.order().size(), 100u);
}

TEST(TicketRecorder, ProducesExactlyTotalSteps) {
  const auto order = record_schedule_tickets(2, 20'000);
  EXPECT_EQ(order.size(), 20'000u);
  for (std::uint32_t tid : order) EXPECT_LT(tid, 2u);
  ScheduleStats stats(2);
  stats.add_schedule(order);
  EXPECT_GT(stats.shares()[0] + stats.shares()[1], 0.99);
  if (std::thread::hardware_concurrency() > 1) {
    // With real parallelism both threads race on the counter; on a
    // single-core box one thread can legitimately drain all tickets
    // within one scheduling quantum, so only assert this when parallel.
    EXPECT_GT(stats.shares()[0], 0.0);
    EXPECT_GT(stats.shares()[1], 0.0);
  }
}

TEST(TicketRecorder, SingleThreadDegenerate) {
  const auto order = record_schedule_tickets(1, 1000);
  EXPECT_EQ(order.size(), 1000u);
  for (std::uint32_t tid : order) EXPECT_EQ(tid, 0u);
}

TEST(TimestampRecorder, ProducesAllSteps) {
  const auto order = record_schedule_timestamps(2, 5'000);
  EXPECT_EQ(order.size(), 10'000u);
  std::size_t count0 = 0;
  for (std::uint32_t tid : order) {
    ASSERT_LT(tid, 2u);
    if (tid == 0) ++count0;
  }
  EXPECT_EQ(count0, 5'000u);
}

TEST(Recorders, RejectZeroThreads) {
  EXPECT_THROW(record_schedule_tickets(0, 10), std::invalid_argument);
  EXPECT_THROW(record_schedule_timestamps(0, 10), std::invalid_argument);
}

}  // namespace
}  // namespace pwf::sched
