// Unit tests for the deterministic RNG layer.
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <set>
#include <vector>

namespace pwf {
namespace {

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(SplitMix64, DifferentSeedsDiffer) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Xoshiro, IsDeterministic) {
  Xoshiro256pp a(7);
  Xoshiro256pp b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro, UniformRespectsBound) {
  Xoshiro256pp rng(123);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.uniform(bound), bound);
    }
  }
}

TEST(Xoshiro, UniformBoundOneIsAlwaysZero) {
  Xoshiro256pp rng(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform(1), 0u);
}

TEST(Xoshiro, UniformCoversAllResidues) {
  Xoshiro256pp rng(99);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Xoshiro, UniformIsApproximatelyUnbiased) {
  Xoshiro256pp rng(2024);
  constexpr std::uint64_t kBound = 10;
  constexpr int kDraws = 200'000;
  std::array<int, kBound> counts{};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.uniform(kBound)];
  const double expect = static_cast<double>(kDraws) / kBound;
  for (int c : counts) {
    // ~5 sigma band for a binomial with p = 1/10.
    EXPECT_NEAR(static_cast<double>(c), expect, 5.0 * std::sqrt(expect));
  }
}

TEST(Xoshiro, UniformDoubleInUnitInterval) {
  Xoshiro256pp rng(3);
  double sum = 0.0;
  for (int i = 0; i < 100'000; ++i) {
    const double x = rng.uniform_double();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 100'000, 0.5, 0.01);
}

TEST(Xoshiro, BernoulliEdgeCases) {
  Xoshiro256pp rng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-0.5));
    EXPECT_TRUE(rng.bernoulli(1.5));
  }
}

TEST(Xoshiro, BernoulliMatchesProbability) {
  Xoshiro256pp rng(12);
  int hits = 0;
  constexpr int kDraws = 100'000;
  for (int i = 0; i < kDraws; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.01);
}

TEST(Xoshiro, SplitProducesDistinctStream) {
  Xoshiro256pp parent(77);
  Xoshiro256pp child = parent.split();
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (parent() == child()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Xoshiro, JumpChangesState) {
  Xoshiro256pp a(5);
  Xoshiro256pp b(5);
  b.jump();
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Xoshiro, StateEqualityTracksTheStream) {
  Xoshiro256pp a(31), b(31);
  EXPECT_TRUE(a == b);
  (void)a();
  EXPECT_FALSE(a == b);
  (void)b();
  EXPECT_TRUE(a == b);
}

TEST(BoundedDraw, MatchesUniformExactly) {
  // The cached-threshold draw must produce the same values *and consume
  // the same raw draws* as Xoshiro256pp::uniform — schedulers caching a
  // BoundedDraw therefore cannot perturb any existing trajectory.
  for (const std::uint64_t bound :
       {1ULL, 2ULL, 3ULL, 7ULL, 256ULL, 1'000'003ULL,
        (1ULL << 63) + 12345ULL}) {
    Xoshiro256pp plain(91), cached_rng(91);
    const BoundedDraw draw(bound);
    for (int i = 0; i < 20'000; ++i) {
      ASSERT_EQ(plain.uniform(bound), draw(cached_rng)) << "bound " << bound;
      ASSERT_TRUE(plain == cached_rng) << "draw budget diverged, bound "
                                       << bound;
    }
  }
}

TEST(BoundedDraw, StaysInRangeAndCoversIt) {
  const BoundedDraw draw(5);
  EXPECT_EQ(draw.bound(), 5u);
  Xoshiro256pp rng(7);
  std::array<int, 5> seen{};
  for (int i = 0; i < 10'000; ++i) {
    const std::uint64_t v = draw(rng);
    ASSERT_LT(v, 5u);
    ++seen[v];
  }
  for (int count : seen) EXPECT_GT(count, 1'500);
}

TEST(BoundedDraw, DefaultConstructedIsAnEmptySentinel) {
  constexpr BoundedDraw none;
  EXPECT_EQ(none.bound(), 0u);
}

}  // namespace
}  // namespace pwf
