// Tests for the simulated shared-memory register array.
#include "core/memory.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace pwf::core {
namespace {

TEST(SharedMemory, RejectsZeroRegisters) {
  EXPECT_THROW(SharedMemory(0), std::invalid_argument);
}

TEST(SharedMemory, InitialValueAppliesToAll) {
  SharedMemory mem(3, 42);
  EXPECT_EQ(mem.read(0), 42u);
  EXPECT_EQ(mem.read(1), 42u);
  EXPECT_EQ(mem.read(2), 42u);
}

TEST(SharedMemory, ReadWriteRoundTrip) {
  SharedMemory mem(2);
  mem.write(0, 7);
  mem.write(1, 9);
  EXPECT_EQ(mem.read(0), 7u);
  EXPECT_EQ(mem.read(1), 9u);
}

TEST(SharedMemory, CasSucceedsOnMatch) {
  SharedMemory mem(1);
  EXPECT_TRUE(mem.cas(0, 0, 5));
  EXPECT_EQ(mem.peek(0), 5u);
}

TEST(SharedMemory, CasFailsOnMismatchAndLeavesValue) {
  SharedMemory mem(1, 3);
  EXPECT_FALSE(mem.cas(0, 0, 5));
  EXPECT_EQ(mem.peek(0), 3u);
}

TEST(SharedMemory, CasFetchReturnsPriorValue) {
  SharedMemory mem(1, 10);
  EXPECT_EQ(mem.cas_fetch(0, 10, 11), 10u);  // success: returns expected
  EXPECT_EQ(mem.peek(0), 11u);
  EXPECT_EQ(mem.cas_fetch(0, 10, 12), 11u);  // failure: returns current
  EXPECT_EQ(mem.peek(0), 11u);
}

TEST(SharedMemory, EveryOperationCountsOneStep) {
  SharedMemory mem(2);
  EXPECT_EQ(mem.ops(), 0u);
  mem.read(0);
  EXPECT_EQ(mem.ops(), 1u);
  mem.write(1, 1);
  EXPECT_EQ(mem.ops(), 2u);
  mem.cas(0, 0, 1);
  EXPECT_EQ(mem.ops(), 3u);
  mem.cas_fetch(0, 9, 9);  // failed CAS still costs one step
  EXPECT_EQ(mem.ops(), 4u);
}

TEST(SharedMemory, PeekDoesNotCountSteps) {
  SharedMemory mem(1, 5);
  EXPECT_EQ(mem.peek(0), 5u);
  EXPECT_EQ(mem.ops(), 0u);
}

TEST(SharedMemory, OutOfRangeThrows) {
  SharedMemory mem(1);
  EXPECT_THROW(mem.read(1), std::out_of_range);
  EXPECT_THROW(mem.write(2, 0), std::out_of_range);
  EXPECT_THROW(mem.cas(3, 0, 1), std::out_of_range);
}

}  // namespace
}  // namespace pwf::core
