// Structure-catalog tests: the catalog is the single source of truth for
// both checking registries, so these tests pin (a) the legacy projection
// orders — workloads() and HwSession::registry() are order-ABI, because
// experiments derive per-structure seeds from registry indices — (b) the
// name-unification lookup (canonical / sim-twin / hw-twin all resolve to
// the same row), (c) the strategy-column filter behind --strategy, and
// (d) the deprecated pre-catalog shims, which must keep compiling and
// agreeing with the catalog until their removal window closes.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "check/catalog.hpp"
#include "check/explore.hpp"
#include "check/hw_capture.hpp"
#include "check/session.hpp"
#include "check/workloads.hpp"
#include "lockfree/strategy.hpp"

namespace {

using namespace pwf::check;
using pwf::lockfree::SyncStrategy;

// --- projection orders (ABI) -----------------------------------------------

TEST(Catalog, WorkloadProjectionPreservesLegacyOrder) {
  // The pre-catalog workload list, verbatim, plus the appended skip-list
  // family. Any reordering silently reseeds downstream experiments.
  const std::vector<std::string> expected = {
      "sim-stack",          "sim-queue",
      "sim-rcu",            "fai-counter",
      "sharded-counter",    "mut-racy-counter",
      "mut-aba-stack",      "mut-nohelp-queue",
      "mut-torn-rcu",       "wf-counter",
      "wf-stack",           "sim-skiplist-coarse",
      "sim-skiplist-optimistic", "sim-skiplist-lockfree",
      "mut-novalidate-skiplist"};
  const std::vector<Workload>& all = workloads();
  ASSERT_EQ(all.size(), expected.size());
  for (std::size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i].name, expected[i]) << "workload index " << i;
  }
}

TEST(Catalog, HwRegistryProjectionPreservesLegacyOrder) {
  const std::vector<std::string> expected = {
      "treiber-stack", "ms-queue",   "harris-list", "hash-set",
      "cas-counter",   "faa-counter", "scu-counter", "wf-counter",
      "wf-stack",
#ifdef PWF_HW_MUTANTS
      "treiber-stack-untagged",
#endif
      "skiplist-coarse", "skiplist-optimistic", "skiplist-lockfree",
#ifdef PWF_HW_MUTANTS
      "skiplist-novalidate",
#endif
  };
  const std::vector<HwStructure>& all = HwSession::registry();
  ASSERT_EQ(all.size(), expected.size());
  for (std::size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i].name, expected[i]) << "hw registry index " << i;
  }
}

TEST(Catalog, EveryProjectedNameIsUniqueAndResolvable) {
  std::vector<std::string> seen;
  for (const CatalogEntry& entry : structure_catalog()) {
    seen.push_back(entry.name);
    EXPECT_EQ(&find_catalog_entry(entry.name), &entry) << entry.name;
    if (entry.sim) {
      EXPECT_EQ(&find_catalog_entry(entry.sim->workload), &entry)
          << entry.sim->workload;
    }
    if (entry.hw) {
      EXPECT_EQ(&find_catalog_entry(entry.hw->structure), &entry)
          << entry.hw->structure;
    }
  }
  std::vector<std::string> unique = seen;
  std::sort(unique.begin(), unique.end());
  unique.erase(std::unique(unique.begin(), unique.end()), unique.end());
  EXPECT_EQ(unique.size(), seen.size()) << "duplicate canonical names";
}

// --- name unification ------------------------------------------------------

TEST(Catalog, SimAndHwTwinNamesResolveToTheSameRow) {
  // The Treiber stack is one structure with two incarnations; both legacy
  // names find the same catalog row.
  const CatalogEntry& by_hw = find_catalog_entry("treiber-stack");
  const CatalogEntry& by_sim = find_catalog_entry("sim-stack");
  EXPECT_EQ(&by_hw, &by_sim);
  EXPECT_EQ(by_hw.spec_kind, "stack");
  ASSERT_TRUE(by_hw.sim.has_value());
  ASSERT_TRUE(by_hw.hw.has_value());
  EXPECT_EQ(by_hw.sim->workload, "sim-stack");
  EXPECT_EQ(by_hw.hw->structure, "treiber-stack");

  EXPECT_THROW(find_catalog_entry("no-such-structure"),
               std::invalid_argument);
}

TEST(Catalog, SkipListRowsCarryStrategyTagsAndTwins) {
  const struct {
    const char* name;
    SyncStrategy strategy;
  } rows[] = {
      {"skiplist-coarse", SyncStrategy::kCoarse},
      {"skiplist-optimistic", SyncStrategy::kOptimistic},
      {"skiplist-lockfree", SyncStrategy::kLockFree},
  };
  for (const auto& row : rows) {
    const CatalogEntry& entry = find_catalog_entry(row.name);
    EXPECT_EQ(entry.spec_kind, "set") << row.name;
    EXPECT_TRUE(entry.expect_linearizable) << row.name;
    EXPECT_FALSE(entry.mutant) << row.name;
    ASSERT_TRUE(entry.strategy.has_value()) << row.name;
    EXPECT_EQ(*entry.strategy, row.strategy) << row.name;
    ASSERT_TRUE(entry.sim.has_value()) << row.name;
    ASSERT_TRUE(entry.hw.has_value()) << row.name;
  }

  const CatalogEntry& mutant = find_catalog_entry("skiplist-novalidate");
  EXPECT_TRUE(mutant.mutant);
  EXPECT_FALSE(mutant.expect_linearizable);
  ASSERT_TRUE(mutant.strategy.has_value());
  EXPECT_EQ(*mutant.strategy, SyncStrategy::kOptimistic);
  ASSERT_TRUE(mutant.hw.has_value());
  EXPECT_TRUE(mutant.hw->mutants_only);
}

// --- strategy columns ------------------------------------------------------

TEST(Catalog, StrategyColumnsPartitionTheMatrix) {
  EXPECT_EQ(catalog_column(std::nullopt).size(), structure_catalog().size());

  const auto names = [](std::optional<SyncStrategy> s) {
    std::vector<std::string> out;
    for (const CatalogEntry* e : catalog_column(s)) out.push_back(e->name);
    return out;
  };
  EXPECT_EQ(names(SyncStrategy::kCoarse),
            std::vector<std::string>{"skiplist-coarse"});
  EXPECT_EQ(names(SyncStrategy::kOptimistic),
            (std::vector<std::string>{"skiplist-optimistic",
                                      "skiplist-novalidate"}));
  EXPECT_EQ(names(SyncStrategy::kLockFree),
            std::vector<std::string>{"skiplist-lockfree"});
}

// --- deprecated shims ------------------------------------------------------

// The pre-catalog free functions stay as thin projections until their
// removal window closes; they must agree with the catalog they wrap.
#ifdef __GNUC__
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#endif
TEST(Catalog, DeprecatedHwShimsAgreeWithCatalog) {
  const std::vector<std::string>& stock = hw_structures();
  ASSERT_FALSE(stock.empty());
  for (const std::string& name : stock) {
    const CatalogEntry& entry = find_catalog_entry(name);
    EXPECT_FALSE(entry.mutant) << name;
  }

  HwCaptureOptions options;
  options.threads = 2;
  options.ops_per_thread = 40;
  options.seed = 7;
  const HwCaptureResult result = hw_capture_run("cas-counter", options);
  EXPECT_EQ(result.structure, "cas-counter");
  EXPECT_TRUE(result.lin.ok());
  EXPECT_GT(result.history.size(), 0u);
}
#ifdef __GNUC__
#pragma GCC diagnostic pop
#endif

// --- end-to-end smoke: catalog rows drive Session exploration --------------

TEST(Catalog, SkipListSimTwinsExploreCleanAndMutantIsCaught) {
  const auto violations = [](const std::string& workload_name,
                             std::size_t schedules) {
    const Workload& workload = find_workload(workload_name);
    const Session session(workload, {});
    std::size_t caught = 0;
    for (std::size_t i = 0; i < schedules; ++i) {
      const RunOutcome run =
          session.record(workload.default_n, derive_check_seed(20260809, i),
                         workload.default_steps, i, {});
      if (!run.lin.ok()) ++caught;
    }
    return caught;
  };
  EXPECT_EQ(violations("sim-skiplist-coarse", 12), 0u);
  EXPECT_EQ(violations("sim-skiplist-optimistic", 12), 0u);
  EXPECT_EQ(violations("sim-skiplist-lockfree", 12), 0u);
  EXPECT_GT(violations("mut-novalidate-skiplist", 30), 0u);
}

}  // namespace
