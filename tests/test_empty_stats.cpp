// Degenerate-input hardening for the statistics types: a freshly
// constructed HarnessResult, ScheduleStats, or LatencyReport must report
// zeros — not NaN, not 1/n, not a fold identity like UINT64_MAX.
#include <gtest/gtest.h>

#include <cmath>

#include "core/simulation.hpp"
#include "lockfree/harness.hpp"
#include "sched/recorder.hpp"

namespace pwf {
namespace {

TEST(EmptyStats, DefaultHarnessResultIsAllZero) {
  const lockfree::HarnessResult r{};
  EXPECT_EQ(r.total_ops(), 0u);
  EXPECT_EQ(r.total_steps(), 0u);
  EXPECT_EQ(r.completion_rate(), 0.0);
  EXPECT_FALSE(std::isnan(r.completion_rate()));
  EXPECT_EQ(r.ops_per_second(), 0.0);
  EXPECT_FALSE(std::isnan(r.ops_per_second()));
}

TEST(EmptyStats, HarnessResultWithZeroStepThreadsIsFinite) {
  lockfree::HarnessResult r{};
  r.per_thread.resize(4);  // threads that never ran an op
  EXPECT_EQ(r.completion_rate(), 0.0);
  EXPECT_EQ(r.ops_per_second(), 0.0);
}

TEST(EmptyStats, EmptyScheduleStatsDeviationsAreZero) {
  const sched::ScheduleStats stats(3);
  EXPECT_EQ(stats.total_steps(), 0u);
  // No recorded steps: there is no empirical distribution, so the
  // deviation from uniform is 0, not |0 - 1/n| = 1/n.
  EXPECT_EQ(stats.max_share_deviation(), 0.0);
  EXPECT_EQ(stats.max_conditional_deviation(), 0.0);
  EXPECT_EQ(stats.chi_square_uniform(), 0.0);
  for (double s : stats.shares()) EXPECT_EQ(s, 0.0);
}

TEST(EmptyStats, SingleStepScheduleHasNoConditionalEvidence) {
  sched::ScheduleStats stats(4);
  stats.add_schedule(std::vector<std::uint32_t>{2});
  // One step, no transitions: share deviation is real (all mass on one
  // thread) but conditional deviation has no evidence and must be 0.
  EXPECT_NEAR(stats.max_share_deviation(), 0.75, 1e-12);
  EXPECT_EQ(stats.max_conditional_deviation(), 0.0);
}

TEST(EmptyStats, UnobservedConditioningRowsDoNotPollute) {
  sched::ScheduleStats stats(3);
  // Only 0 -> 1 transitions exist; rows 1 and 2 are unobserved. The
  // conditional deviation must come from row 0 alone (|1 - 1/3| = 2/3),
  // not be diluted or inflated by the empty rows.
  stats.add_schedule(std::vector<std::uint32_t>{0, 1});
  stats.add_schedule(std::vector<std::uint32_t>{0, 1});
  EXPECT_NEAR(stats.max_conditional_deviation(), 2.0 / 3.0, 1e-12);
}

TEST(EmptyStats, DefaultLatencyReportIsAllZero) {
  const core::LatencyReport r{};
  EXPECT_EQ(r.completion_rate(), 0.0);
  EXPECT_FALSE(std::isnan(r.completion_rate()));
  EXPECT_EQ(r.system_latency(), 0.0);
  EXPECT_FALSE(std::isnan(r.system_latency()));
  EXPECT_EQ(r.max_individual_latency(), 0.0);
  // No tracked processes: "min completions over processes" must not be
  // the empty-fold identity UINT64_MAX.
  EXPECT_EQ(r.min_completions(), 0u);
}

}  // namespace
}  // namespace pwf
