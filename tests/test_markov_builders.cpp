// Exact verification of the paper's chain constructions and lemmas:
//   * state counts (3^n - 1 for scan-validate, 2^n - 1 for F&I),
//   * irreducibility (Lemma 3 / Lemma 13),
//   * the lifting homomorphism (Definition 2, Lemmas 5, 10, 13),
//   * pi_k = sum of preimage pi'_x (Lemmas 1 and 4),
//   * symmetry of preimage states (Lemma 6),
//   * W_i = n * W (Lemmas 7 and 14),
//   * W = q for parallel code (Lemma 11),
//   * W = Z(n-1) for fetch-and-increment (Lemma 12),
//   * the Theta(sqrt n) growth of the scan-validate system latency
//     (Theorem 5).
#include "markov/builders.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <map>
#include <vector>

#include "markov/graph.hpp"
#include "markov/lifting.hpp"
#include "util/special.hpp"
#include "util/stats.hpp"

namespace pwf::markov {
namespace {

double pow_int(double base, std::size_t e) {
  double out = 1.0;
  for (std::size_t i = 0; i < e; ++i) out *= base;
  return out;
}

// ---------- scan-validate SCU(0,1) ----------

class ScanValidateChains : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ScanValidateChains, IndividualChainHasThreeToTheNMinusOneStates) {
  const std::size_t n = GetParam();
  const BuiltChain ind = build_scan_validate_individual_chain(n);
  EXPECT_EQ(ind.chain.num_states(),
            static_cast<std::size_t>(pow_int(3.0, n)) - 1);
  ind.chain.validate();
}

TEST_P(ScanValidateChains, BothChainsAreIrreducibleWithPeriodTwo) {
  // Reproduction finding: Lemma 3 states the chains are ergodic, but they
  // are in fact 2-periodic at every n (every cycle alternates "arming" and
  // "firing" CAS steps). Irreducibility — which is what the unique
  // stationary distribution and all latency results actually require —
  // does hold.
  const std::size_t n = GetParam();
  const auto ind = analyze_ergodicity(build_scan_validate_individual_chain(n).chain);
  const auto sys = analyze_ergodicity(build_scan_validate_system_chain(n).chain);
  EXPECT_TRUE(ind.irreducible);
  EXPECT_TRUE(sys.irreducible);
  EXPECT_EQ(ind.period, 2u);
  EXPECT_EQ(sys.period, 2u);
}

TEST_P(ScanValidateChains, SystemChainIsALiftingOfIndividual) {
  const std::size_t n = GetParam();
  const BuiltChain ind = build_scan_validate_individual_chain(n);
  const BuiltChain sys = build_scan_validate_system_chain(n);
  const auto f = scan_validate_lifting_map(ind, sys, n);
  const auto check = verify_lifting(ind.chain, sys.chain, f, 1e-8);
  EXPECT_TRUE(check.is_lifting)
      << "flow err " << check.max_flow_error << ", stationary err "
      << check.max_stationary_error;
}

TEST_P(ScanValidateChains, CollapseOfIndividualEqualsSystemChain) {
  const std::size_t n = GetParam();
  const BuiltChain ind = build_scan_validate_individual_chain(n);
  const BuiltChain sys = build_scan_validate_system_chain(n);
  const auto f = scan_validate_lifting_map(ind, sys, n);
  const MarkovChain collapsed = collapse(ind.chain, f, sys.chain.num_states());
  for (std::size_t k = 0; k < sys.chain.num_states(); ++k) {
    for (const auto& t : sys.chain.transitions_from(k)) {
      EXPECT_NEAR(collapsed.transition_prob(k, t.to), t.prob, 1e-8)
          << "edge " << k << " -> " << t.to;
    }
  }
}

TEST_P(ScanValidateChains, PreimageStatesAreEquallyLikely) {
  // Lemma 6: states mapping to the same (a, b) have equal stationary mass.
  const std::size_t n = GetParam();
  const BuiltChain ind = build_scan_validate_individual_chain(n);
  const BuiltChain sys = build_scan_validate_system_chain(n);
  const auto f = scan_validate_lifting_map(ind, sys, n);
  const auto pi = ind.chain.stationary();
  std::map<std::size_t, double> representative;
  for (std::size_t x = 0; x < pi.size(); ++x) {
    auto [it, inserted] = representative.emplace(f[x], pi[x]);
    if (!inserted) {
      EXPECT_NEAR(pi[x], it->second, 1e-9)
          << "asymmetric mass within cluster " << f[x];
    }
  }
}

TEST_P(ScanValidateChains, IndividualLatencyIsNTimesSystemLatency) {
  // Lemma 7, on both representations.
  const std::size_t n = GetParam();
  const BuiltChain ind = build_scan_validate_individual_chain(n);
  const BuiltChain sys = build_scan_validate_system_chain(n);
  const double w_ind = system_latency(ind);
  const double w_sys = system_latency(sys);
  EXPECT_NEAR(w_ind, w_sys, 1e-6 * w_sys);
  const double wi = individual_latency_p0(ind);
  EXPECT_NEAR(wi, static_cast<double>(n) * w_sys, 1e-5 * wi);
}

INSTANTIATE_TEST_SUITE_P(SmallN, ScanValidateChains,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7));

TEST(ScanValidateScaling, SystemLatencyGrowsLikeSqrtN) {
  // Theorem 5: W = Theta(sqrt n). Fit the power-law exponent over the
  // exactly-solved system chain.
  std::vector<double> ns, ws;
  for (std::size_t n : {8, 16, 32, 64, 128}) {
    const BuiltChain sys = build_scan_validate_system_chain(n);
    ns.push_back(static_cast<double>(n));
    ws.push_back(system_latency(sys));
  }
  const LinearFit fit = fit_power_law(ns, ws);
  EXPECT_NEAR(fit.slope, 0.5, 0.08) << "W(n) should scale like sqrt(n)";
  EXPECT_GT(fit.r_squared, 0.99);
}

TEST(ScanValidateChains2, MatchesHandComputedStateCountForTwo) {
  // For n = 2 the reachable system states are exactly
  // (2,0), (1,0), (0,0), (1,1), (0,1).
  const BuiltChain sys = build_scan_validate_system_chain(2);
  EXPECT_EQ(sys.chain.num_states(), 5u);
}

TEST(ScanValidateChains2, SuccessProbMatchesCCasCount) {
  const std::size_t n = 3;
  const BuiltChain sys = build_scan_validate_system_chain(n);
  for (std::size_t s = 0; s < sys.chain.num_states(); ++s) {
    const std::uint64_t key = sys.state_keys[s];
    const std::size_t a = key / (n + 1);
    const std::size_t b = key % (n + 1);
    const double expected =
        static_cast<double>(n - a - b) / static_cast<double>(n);
    EXPECT_NEAR(sys.success_prob[s], expected, 1e-12);
  }
}

// ---------- generalized scan chain SCU(0, s) ----------

TEST(ScuScanChain, ReducesToScanValidateAtSOne) {
  for (std::size_t n : {1, 2, 3, 4}) {
    const double w_general =
        system_latency(build_scu_scan_individual_chain(n, 1));
    const double w_classic =
        system_latency(build_scan_validate_individual_chain(n));
    EXPECT_NEAR(w_general, w_classic, 1e-6 * w_classic) << "n = " << n;
  }
}

TEST(ScuScanChain, StateCountIsReachableSubsetOfBaseToTheN) {
  // (2s+1)^n = 125 raw codes for n = 3, s = 2, of which 117 are reachable
  // (configurations where every in-flight view is stale cannot arise —
  // the generalization of the "no all-OldCAS state" fact behind 3^n - 1).
  const BuiltChain c = build_scu_scan_individual_chain(3, 2);
  EXPECT_EQ(c.chain.num_states(), 117u);
  c.chain.validate();
  EXPECT_TRUE(analyze_ergodicity(c.chain).irreducible);
}

TEST(ScuScanChain, SoloLatencyIsSPlusOne) {
  for (std::size_t s : {1, 2, 3, 5}) {
    const double w = system_latency(build_scu_scan_individual_chain(1, s));
    EXPECT_NEAR(w, static_cast<double>(s) + 1.0, 1e-9) << "s = " << s;
  }
}

TEST(ScuScanChain, FairnessHoldsForSGreaterThanOne) {
  // Lemma 7's W_i = n * W extends to any s (the lifting argument only
  // needs symmetry).
  for (std::size_t s : {2, 3}) {
    const BuiltChain c = build_scu_scan_individual_chain(3, s);
    const double w = system_latency(c);
    EXPECT_NEAR(individual_latency_p0(c), 3.0 * w, 1e-5 * w) << "s = " << s;
  }
}

TEST(ScuScanChain, LatencyScalesRoughlyLinearlyInS) {
  // Corollary 1's shape exactly: W(s) tracks s * W(1) within ~10% at
  // small n. (The direction of the deviation flips with n: exactly
  // 1.881x at n = 4 here, while simulation shows 2.09x at n = 8 —
  // the finite-size effect of DESIGN.md finding #4.)
  constexpr std::size_t kN = 4;
  const double w1 = system_latency(build_scu_scan_individual_chain(kN, 1));
  const double w2 = system_latency(build_scu_scan_individual_chain(kN, 2));
  const double w3 = system_latency(build_scu_scan_individual_chain(kN, 3));
  EXPECT_NEAR(w2, 2.0 * w1, 0.12 * 2.0 * w1);
  EXPECT_NEAR(w3, 3.0 * w1, 0.15 * 3.0 * w1);
  EXPECT_NEAR(w2 / w1, 1.881, 0.01);  // exact value, pinned
}

TEST(ScuScanChain, CollapseThroughCodeCountsIsALifting) {
  // The paper only constructs the (a, b) system chain for s = 1; for
  // s > 1 the analogous collapsed chain exists too, and collapse() builds
  // it: map each state to the multiset of per-process codes. The result
  // verifies as a lifting, extending Lemma 5 beyond s = 1.
  constexpr std::size_t kN = 3;
  constexpr std::size_t kS = 2;
  const BuiltChain ind = build_scu_scan_individual_chain(kN, kS);
  const std::uint64_t base = 2 * kS + 1;

  // Canonical key: sorted per-process codes, re-encoded.
  auto counts_key = [&](std::uint64_t key) {
    std::array<std::size_t, 5> counts{};
    for (std::size_t i = 0; i < kN; ++i) {
      std::uint64_t k = key;
      for (std::size_t j = 0; j < i; ++j) k /= base;
      ++counts[k % base];
    }
    std::uint64_t out = 0;
    for (std::size_t c : counts) out = out * (kN + 1) + c;
    return out;
  };
  std::map<std::uint64_t, std::size_t> classes;
  std::vector<std::size_t> f(ind.chain.num_states());
  for (std::size_t x = 0; x < ind.chain.num_states(); ++x) {
    const std::uint64_t key = counts_key(ind.state_keys[x]);
    auto [it, inserted] = classes.emplace(key, classes.size());
    f[x] = it->second;
  }
  const MarkovChain system = collapse(ind.chain, f, classes.size());
  system.validate(1e-9);
  const auto check = verify_lifting(ind.chain, system, f, 1e-8);
  EXPECT_TRUE(check.is_lifting)
      << "flow err " << check.max_flow_error << ", stationary err "
      << check.max_stationary_error;
  EXPECT_LT(classes.size(), ind.chain.num_states());
}

TEST(ScuScanChain, MatchesSimulationExactly) {
  // The generalized chain is the ground truth for the SCU(0, s) step
  // machine: exact W vs a long simulation at n = 3, s = 2.
  const double exact = system_latency(build_scu_scan_individual_chain(3, 2));
  // (Simulated value measured by test_core_sim_vs_chain's machinery; here
  // we recompute cheaply via the step machines.)
  // Simulation is exercised in test_core_sim_vs_chain; keep this test
  // chain-only and assert the value is in the physically required range:
  // between the zero-contention cost (s+1) and the worst case (s*n + 1).
  EXPECT_GT(exact, 3.0);
  EXPECT_LT(exact, 7.0);
}

// ---------- parallel code SCU(q,0) ----------

struct ParallelParam {
  std::size_t n;
  std::size_t q;
};

class ParallelChains : public ::testing::TestWithParam<ParallelParam> {};

TEST_P(ParallelChains, SystemLatencyIsExactlyQ) {
  // Lemma 11: W = q.
  const auto [n, q] = GetParam();
  const BuiltChain sys = build_parallel_system_chain(n, q);
  sys.chain.validate();
  EXPECT_NEAR(system_latency(sys), static_cast<double>(q), 1e-7);
}

TEST_P(ParallelChains, IndividualLatencyIsExactlyNQ) {
  // Lemma 11: W_i = n * q, read off the individual chain.
  const auto [n, q] = GetParam();
  const BuiltChain ind = build_parallel_individual_chain(n, q);
  ind.chain.validate();
  EXPECT_NEAR(individual_latency_p0(ind),
              static_cast<double>(n) * static_cast<double>(q), 1e-6);
}

TEST_P(ParallelChains, IndividualStationaryIsUniform) {
  // The proof of Lemma 11: M_I is doubly stochastic, so pi' is uniform.
  const auto [n, q] = GetParam();
  const BuiltChain ind = build_parallel_individual_chain(n, q);
  const auto pi = ind.chain.stationary();
  const double uniform = 1.0 / static_cast<double>(pi.size());
  for (double mass : pi) EXPECT_NEAR(mass, uniform, 1e-9);
}

TEST_P(ParallelChains, SystemChainIsALifting) {
  // Lemma 10.
  const auto [n, q] = GetParam();
  const BuiltChain ind = build_parallel_individual_chain(n, q);
  const BuiltChain sys = build_parallel_system_chain(n, q);
  const auto f = parallel_lifting_map(ind, sys, n, q);
  const auto check = verify_lifting(ind.chain, sys.chain, f, 1e-8);
  EXPECT_TRUE(check.is_lifting)
      << "flow err " << check.max_flow_error << ", stationary err "
      << check.max_stationary_error;
}

TEST_P(ParallelChains, IndividualChainHasQToTheNStates) {
  const auto [n, q] = GetParam();
  const BuiltChain ind = build_parallel_individual_chain(n, q);
  EXPECT_EQ(ind.chain.num_states(),
            static_cast<std::size_t>(pow_int(static_cast<double>(q), n)));
}

INSTANTIATE_TEST_SUITE_P(
    SmallNQ, ParallelChains,
    ::testing::Values(ParallelParam{1, 1}, ParallelParam{1, 4},
                      ParallelParam{2, 2}, ParallelParam{2, 5},
                      ParallelParam{3, 2}, ParallelParam{3, 3},
                      ParallelParam{4, 2}, ParallelParam{5, 3},
                      ParallelParam{6, 2}));

// ---------- fetch-and-increment ----------

class FaiChains : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FaiChains, IndividualChainHasTwoToTheNMinusOneStates) {
  const std::size_t n = GetParam();
  const BuiltChain ind = build_fai_individual_chain(n);
  EXPECT_EQ(ind.chain.num_states(),
            (static_cast<std::size_t>(1) << n) - 1);
  ind.chain.validate();
}

TEST_P(FaiChains, BothChainsAreErgodic) {
  // Unlike scan-validate, the F&I chains genuinely are ergodic (the win
  // states carry self-loops), exactly as Lemma 13 states.
  const std::size_t n = GetParam();
  EXPECT_TRUE(analyze_ergodicity(build_fai_individual_chain(n).chain).ergodic);
  EXPECT_TRUE(analyze_ergodicity(build_fai_global_chain(n).chain).ergodic);
}

TEST(ParallelChainPeriod, IsExactlyQ) {
  // Companion finding to the scan-validate periodicity: the parallel-code
  // chains have period q (counters only move forward mod q).
  for (std::size_t q : {1, 2, 3, 4}) {
    EXPECT_EQ(analyze_ergodicity(build_parallel_individual_chain(3, q).chain)
                  .period,
              q);
    EXPECT_EQ(
        analyze_ergodicity(build_parallel_system_chain(3, q).chain).period,
        q);
  }
}

TEST_P(FaiChains, GlobalChainIsALifting) {
  // Lemma 13.
  const std::size_t n = GetParam();
  const BuiltChain ind = build_fai_individual_chain(n);
  const BuiltChain glob = build_fai_global_chain(n);
  const auto f = fai_lifting_map(ind, glob);
  const auto check = verify_lifting(ind.chain, glob.chain, f, 1e-8);
  EXPECT_TRUE(check.is_lifting)
      << "flow err " << check.max_flow_error << ", stationary err "
      << check.max_stationary_error;
}

TEST_P(FaiChains, SystemLatencyEqualsZRecurrence) {
  // Lemma 12: W = expected return time of v1 = Z(n-1).
  const std::size_t n = GetParam();
  const BuiltChain glob = build_fai_global_chain(n);
  const double w = system_latency(glob);
  EXPECT_NEAR(w, fai_hitting_time(n - 1, n), 1e-7 * w);
}

TEST_P(FaiChains, ReturnTimeOfWinStateMatchesW) {
  // W is also the return time of state v1 in the global chain.
  const std::size_t n = GetParam();
  const BuiltChain glob = build_fai_global_chain(n);
  const std::size_t v1 = glob.index_of_key(1);
  EXPECT_NEAR(glob.chain.return_time(v1), system_latency(glob), 1e-6);
}

TEST_P(FaiChains, IndividualLatencyIsNTimesW) {
  // Lemma 14.
  const std::size_t n = GetParam();
  const BuiltChain ind = build_fai_individual_chain(n);
  const double w_ind = system_latency(ind);
  const double wi = individual_latency_p0(ind);
  EXPECT_NEAR(wi, static_cast<double>(n) * w_ind, 1e-5 * wi);
}

TEST_P(FaiChains, WinStatesAreEquallyLikely) {
  // Lemma 14: pi'_{s_{p_i}} = pi_{v_1} / n for all i.
  const std::size_t n = GetParam();
  const BuiltChain ind = build_fai_individual_chain(n);
  const BuiltChain glob = build_fai_global_chain(n);
  const auto pi_ind = ind.chain.stationary();
  const auto pi_glob = glob.chain.stationary();
  const std::size_t v1 = glob.index_of_key(1);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t win = ind.index_of_key(std::uint64_t{1} << i);
    EXPECT_NEAR(pi_ind[win], pi_glob[v1] / static_cast<double>(n), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(SmallN, FaiChains,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 8, 10));

TEST(FaiScaling, LatencyGrowsLikeSqrtN) {
  // Corollary 3 via the exact global chain, which is tiny for any n.
  std::vector<double> ns, ws;
  for (std::size_t n : {16, 64, 256, 1024, 4096}) {
    ns.push_back(static_cast<double>(n));
    ws.push_back(system_latency(build_fai_global_chain(n)));
  }
  const LinearFit fit = fit_power_law(ns, ws);
  EXPECT_NEAR(fit.slope, 0.5, 0.03);
}

TEST(BuiltChain, IndexOfKeyThrowsOnMissing) {
  const BuiltChain glob = build_fai_global_chain(3);
  EXPECT_THROW(glob.index_of_key(99), std::out_of_range);
}

}  // namespace
}  // namespace pwf::markov
