// Tests for the experiment framework: registry lookup/filtering, the
// parallel trial runner's determinism and repetition averaging, and the
// JSON writer's output shape.
#include <gtest/gtest.h>

#include <limits>
#include <memory>
#include <sstream>
#include <stdexcept>

#include "exp/json.hpp"
#include "exp/registry.hpp"
#include "exp/runner.hpp"
#include "exp/sink.hpp"

namespace pwf::exp {
namespace {

/// A tiny deterministic experiment: metric = seed-dependent pseudo-random
/// value so that thread-count invariance is a real check, not a tautology.
class ToyExperiment final : public Experiment {
 public:
  explicit ToyExperiment(std::string name = "toy", bool throws = false)
      : name_(std::move(name)), throws_(throws) {}

  std::string name() const override { return name_; }
  std::string artifact() const override { return "toy artifact"; }
  std::string claim() const override { return "toy claim"; }
  std::uint64_t default_seed() const override { return 17; }

  std::vector<Trial> trials(const RunOptions& options) const override {
    const std::uint64_t base = options.base_seed(default_seed());
    std::vector<Trial> grid;
    for (int i = 0; i < 6; ++i) {
      Trial t;
      t.id = "i=" + std::to_string(i);
      t.params = {{"i", static_cast<double>(i)}};
      t.seed = derive_seed(base, static_cast<std::uint64_t>(i));
      grid.push_back(std::move(t));
    }
    return grid;
  }

  Metrics run_trial(const Trial& trial,
                    const RunOptions& /*options*/) const override {
    if (throws_) throw std::runtime_error("toy trial failure");
    // A few SplitMix64 steps: distinct per seed, identical per rerun.
    const double value =
        static_cast<double>(derive_seed(trial.seed, 1) % 1000) / 1000.0;
    return {{"value", value}, {"i_echo", trial.params.at("i")}};
  }

  Verdict analyze(const std::vector<TrialResult>& results,
                  const RunOptions& /*options*/,
                  std::ostream& os) const override {
    os << "toy body\n";
    Verdict v;
    v.reproduced = results.size() == 6;
    v.detail = "toy detail";
    v.summary = {{"n_results", static_cast<double>(results.size())}};
    return v;
  }

 private:
  std::string name_;
  bool throws_;
};

TEST(Registry, HasAllBenchExperiments) {
  auto& reg = Registry::instance();
  EXPECT_GE(reg.size(), 18u);
  for (const char* name :
       {"thm4_scu_latency", "ballsbins_phases", "fig1_chain_lifting",
        "fig5_completion_rate", "sched_robustness", "progress_hierarchy"}) {
    EXPECT_NE(reg.find(name), nullptr) << name;
  }
  EXPECT_EQ(reg.find("no_such_experiment"), nullptr);
}

TEST(Registry, AllIsNameSorted) {
  const auto all = Registry::instance().all();
  for (std::size_t i = 1; i < all.size(); ++i) {
    EXPECT_LT(all[i - 1]->name(), all[i]->name());
  }
}

TEST(Registry, MatchFiltersBySubstringList) {
  auto& reg = Registry::instance();
  const auto figs = reg.match("fig");
  EXPECT_GE(figs.size(), 4u);
  for (const Experiment* e : figs) {
    EXPECT_NE(e->name().find("fig"), std::string::npos);
  }
  const auto two = reg.match("thm4,ballsbins");
  EXPECT_EQ(two.size(), 2u);
  EXPECT_EQ(reg.match("").size(), reg.size());
  EXPECT_TRUE(reg.match("zzz_nothing").empty());
}

TEST(Registry, RejectsDuplicateNames) {
  auto& reg = Registry::instance();
  ASSERT_NE(reg.find("thm4_scu_latency"), nullptr);
  EXPECT_THROW(reg.add(std::make_unique<ToyExperiment>("thm4_scu_latency")),
               std::invalid_argument);
}

TEST(TrialRunner, MetricsAreThreadCountInvariant) {
  ToyExperiment toy;
  RunOptions one;
  one.threads = 1;
  RunOptions eight;
  eight.threads = 8;
  const ExperimentRun a = TrialRunner(one).run(toy);
  const ExperimentRun b = TrialRunner(eight).run(toy);
  ASSERT_EQ(a.results.size(), b.results.size());
  for (std::size_t i = 0; i < a.results.size(); ++i) {
    EXPECT_EQ(a.results[i].trial.id, b.results[i].trial.id);
    EXPECT_EQ(a.results[i].trial.seed, b.results[i].trial.seed);
    EXPECT_EQ(a.results[i].metrics, b.results[i].metrics);
  }
  EXPECT_EQ(a.text, b.text);
  EXPECT_EQ(a.verdict.reproduced, b.verdict.reproduced);
}

TEST(TrialRunner, SeedOverrideChangesEveryTrialSeed) {
  ToyExperiment toy;
  RunOptions dflt;
  RunOptions forced;
  forced.seed_override = 123;
  const ExperimentRun a = TrialRunner(dflt).run(toy);
  const ExperimentRun b = TrialRunner(forced).run(toy);
  EXPECT_EQ(a.base_seed, 17u);
  EXPECT_EQ(b.base_seed, 123u);
  for (std::size_t i = 0; i < a.results.size(); ++i) {
    EXPECT_NE(a.results[i].trial.seed, b.results[i].trial.seed);
    EXPECT_NE(a.results[i].metrics.at("value"),
              b.results[i].metrics.at("value"));
  }
}

TEST(TrialRunner, RepetitionsAverageKeyWise) {
  ToyExperiment toy;
  RunOptions reps;
  reps.trials = 3;
  const ExperimentRun run = TrialRunner(reps).run(toy);
  for (const TrialResult& r : run.results) {
    EXPECT_EQ(r.reps, 3u);
    // Reproduce the runner's folding by hand: rep 0 = trial.seed, rep
    // r > 0 = derive_seed(trial.seed, r).
    double sum = 0.0;
    for (std::uint64_t rep = 0; rep < 3; ++rep) {
      const std::uint64_t seed =
          rep == 0 ? r.trial.seed : derive_seed(r.trial.seed, rep);
      sum += static_cast<double>(derive_seed(seed, 1) % 1000) / 1000.0;
    }
    EXPECT_DOUBLE_EQ(r.metrics.at("value"), sum / 3.0);
    // Constant-per-trial metrics survive averaging exactly.
    EXPECT_DOUBLE_EQ(r.metrics.at("i_echo"), r.trial.params.at("i"));
  }
}

TEST(TrialRunner, TrialExceptionsPropagate) {
  ToyExperiment bad("toy_bad", /*throws=*/true);
  RunOptions opts;
  opts.threads = 4;
  EXPECT_THROW(TrialRunner(opts).run(bad), std::runtime_error);
}

TEST(DeriveSeed, IsDeterministicAndSpreads) {
  EXPECT_EQ(derive_seed(1, 0), derive_seed(1, 0));
  EXPECT_NE(derive_seed(1, 0), derive_seed(1, 1));
  EXPECT_NE(derive_seed(1, 0), derive_seed(2, 0));
}

TEST(Json, EscapesAndFormatsNumbers) {
  EXPECT_EQ(json_escape("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
  EXPECT_EQ(json_number(0.5), "0.5");
  EXPECT_EQ(json_number(1e300), "1e+300");
  EXPECT_EQ(json_number(std::numeric_limits<double>::quiet_NaN()), "null");
  // Shortest round-trip form: parsing json_number(x) must recover x.
  const double x = 0.1 + 0.2;
  EXPECT_EQ(std::stod(json_number(x)), x);
}

TEST(ResultSink, JsonHasSchemaAndExperimentRecords) {
  ToyExperiment toy;
  RunOptions opts;
  opts.quick = true;
  ResultSink sink;
  sink.add(TrialRunner(opts).run(toy));
  EXPECT_TRUE(sink.all_reproduced());
  EXPECT_EQ(sink.num_reproduced(), 1u);

  std::ostringstream os;
  sink.write_json(os, opts);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"schema\":\"pwf-bench-results/1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"name\":\"toy\""), std::string::npos);
  EXPECT_NE(json.find("\"quick\":true"), std::string::npos);
  EXPECT_NE(json.find("\"trials\""), std::string::npos);
  EXPECT_NE(json.find("\"value\""), std::string::npos);
  EXPECT_NE(json.find("\"reproduced\":true"), std::string::npos);
}

TEST(ResultSink, FingerprintIgnoresWallTime) {
  ToyExperiment toy;
  RunOptions opts;
  ResultSink a, b;
  ExperimentRun ra = TrialRunner(opts).run(toy);
  ExperimentRun rb = TrialRunner(opts).run(toy);
  ra.wall_ms = 1.0;
  rb.wall_ms = 99999.0;
  for (auto& r : rb.results) r.wall_ms = 1234.5;
  a.add(std::move(ra));
  b.add(std::move(rb));
  EXPECT_EQ(a.metrics_fingerprint(), b.metrics_fingerprint());
}

TEST(RunOptions, HorizonQuickScaling) {
  RunOptions full;
  EXPECT_EQ(full.horizon(1'000'000), 1'000'000u);
  RunOptions quick;
  quick.quick = true;
  EXPECT_EQ(quick.horizon(1'000'000), 100'000u);
  EXPECT_EQ(quick.horizon(200'000, 50'000), 50'000u);   // floor clamps
  EXPECT_EQ(quick.horizon(30'000, 50'000), 30'000u);    // full below floor
}

}  // namespace
}  // namespace pwf::exp
