// The tentpole guarantee of the experiment runner: for a fixed seed the
// metric output is bit-identical regardless of the worker-pool width.
// Exercised end-to-end on two real experiments (quick mode) by diffing
// ResultSink::metrics_fingerprint across --threads 1 and --threads 8.
#include <gtest/gtest.h>

#include <string>

#include "exp/registry.hpp"
#include "exp/runner.hpp"
#include "exp/sink.hpp"

namespace pwf::exp {
namespace {

std::string fingerprint(const Experiment& e, std::size_t threads) {
  RunOptions options;
  options.quick = true;
  options.threads = threads;
  ResultSink sink;
  sink.add(TrialRunner(options).run(e));
  return sink.metrics_fingerprint();
}

class ExpDeterminism : public ::testing::TestWithParam<const char*> {};

TEST_P(ExpDeterminism, FingerprintIsThreadCountInvariant) {
  const Experiment* e = Registry::instance().find(GetParam());
  ASSERT_NE(e, nullptr);
  const std::string serial = fingerprint(*e, 1);
  const std::string parallel = fingerprint(*e, 8);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, parallel);
}

TEST_P(ExpDeterminism, FingerprintIsRerunStable) {
  const Experiment* e = Registry::instance().find(GetParam());
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(fingerprint(*e, 4), fingerprint(*e, 4));
}

TEST_P(ExpDeterminism, SeedOverrideChangesFingerprint) {
  const Experiment* e = Registry::instance().find(GetParam());
  ASSERT_NE(e, nullptr);
  RunOptions forced;
  forced.quick = true;
  forced.seed_override = 987654321;
  ResultSink sink;
  sink.add(TrialRunner(forced).run(*e));
  EXPECT_NE(sink.metrics_fingerprint(), fingerprint(*e, 1));
}

INSTANTIATE_TEST_SUITE_P(QuickSuite, ExpDeterminism,
                         ::testing::Values("thm4_scu_latency",
                                           "ballsbins_phases"));

}  // namespace
}  // namespace pwf::exp
