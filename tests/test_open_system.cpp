// Open-system engine tests: the SoA engine is bit-identical to the boxed
// Simulation in the closed configuration (the golden reference), open
// trajectories are a pure function of the seed, replica farming over the
// exp pool is thread-count invariant, and the membership machinery
// (arrivals, departures, crash/restart, shedding) accounts correctly.
#include "core/open_system.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <tuple>
#include <utility>
#include <vector>

#include "core/algorithms.hpp"
#include "core/arrival.hpp"
#include "core/simulation.hpp"
#include "exp/experiment.hpp"
#include "exp/pool.hpp"
#include "sched/dynamic.hpp"

namespace pwf::core {
namespace {

// Records every (tau, process, completed) step for trajectory equality.
struct StepLog final : SimObserver {
  std::vector<std::tuple<std::uint64_t, std::size_t, bool>> events;
  void on_step(std::uint64_t tau, std::size_t process,
               bool completed) override {
    events.emplace_back(tau, process, completed);
  }
};

struct ClosedCase {
  CompactKind kind;
  std::size_t q;
  std::size_t s;
  StepMachineFactory factory;
  std::size_t regs(std::size_t n) const {
    switch (kind) {
      case CompactKind::kScu:
        return ScuAlgorithm::registers_required(n, s);
      default:
        return 1;
    }
  }
};

std::vector<ClosedCase> closed_cases() {
  return {
      {CompactKind::kParallel, 4, 0, ParallelCode::factory(4)},
      {CompactKind::kScu, 3, 2, ScuAlgorithm::factory(3, 2)},
      {CompactKind::kScu, 0, 1, scan_validate_factory()},
      {CompactKind::kFetchInc, 0, 0, FetchAndIncrement::factory()},
  };
}

// The golden-reference theorem: with no arrivals, no leave rates,
// sorted live order, and capacity == n, OpenSimulation must replay the
// boxed Simulation bit for bit — same observer stream, same shared
// memory, same accounting — including under a crash plan.
TEST(OpenSimulation, ClosedConfigurationMatchesBoxedEngine) {
  constexpr std::size_t kN = 6;
  constexpr std::uint64_t kSteps = 50'000;
  constexpr std::uint64_t kSeed = 20140806;
  for (const ClosedCase& c : closed_cases()) {
    Simulation::Options bopts;
    bopts.num_registers = c.regs(kN);
    bopts.seed = kSeed;
    Simulation boxed(kN, c.factory, std::make_unique<UniformScheduler>(),
                     bopts);

    OpenSimulation::Options oopts;
    oopts.kind = c.kind;
    oopts.q = c.q;
    oopts.s = c.s;
    oopts.capacity = kN;
    oopts.initial_n = kN;
    oopts.seed = kSeed;
    oopts.order = LiveOrder::sorted;
    OpenSimulation compact(std::make_unique<UniformScheduler>(),
                           std::move(oopts));
    ASSERT_EQ(compact.memory().num_registers(),
              boxed.memory().num_registers());

    boxed.schedule_crash(1'000, 2);
    boxed.schedule_crash(30'000, 5);
    compact.schedule_crash(1'000, 2);
    compact.schedule_crash(30'000, 5);

    StepLog blog, clog;
    boxed.set_observer(&blog);
    compact.set_observer(&clog);
    boxed.run(kSteps);
    compact.run(kSteps);

    EXPECT_EQ(blog.events, clog.events) << "kind " << static_cast<int>(c.kind);
    EXPECT_EQ(boxed.memory().ops(), compact.memory().ops());
    for (std::size_t r = 0; r < boxed.memory().num_registers(); ++r) {
      ASSERT_EQ(boxed.memory().peek(r), compact.memory().peek(r))
          << "register " << r;
    }
    EXPECT_EQ(boxed.report().steps, compact.report().steps);
    EXPECT_EQ(boxed.report().completions, compact.report().completions);
    EXPECT_EQ(boxed.report().system_gaps.count(),
              compact.report().system_gaps.count());
    EXPECT_DOUBLE_EQ(boxed.report().system_gaps.mean(),
                     compact.report().system_gaps.mean());
    EXPECT_EQ(boxed.now(), compact.now());
  }
}

// The dynamic scheduler bootstraps its alias table with the same Vose
// construction the closed WeightedScheduler uses, so with equal weights
// and stable membership the two produce identical draw streams. (After
// a membership change they intentionally diverge: WeightedScheduler
// rebuilds eagerly, the dynamic table dead-marks and redraws.)
TEST(OpenSimulation, DynamicSchedulerMatchesWeightedInClosedRun) {
  constexpr std::size_t kN = 5;
  constexpr std::uint64_t kSteps = 20'000;
  auto make = [&](std::unique_ptr<Scheduler> sched) {
    Simulation::Options opts;
    opts.num_registers = ScuAlgorithm::registers_required(kN, 1);
    opts.seed = 99;
    return Simulation(kN, scan_validate_factory(), std::move(sched), opts);
  };
  Simulation a = make(std::make_unique<WeightedScheduler>(
      std::vector<double>(kN, 1.0)));
  Simulation b = make(std::make_unique<pwf::sched::DynamicWeightedScheduler>());
  StepLog alog, blog;
  a.set_observer(&alog);
  b.set_observer(&blog);
  a.run(kSteps);
  b.run(kSteps);
  EXPECT_EQ(alog.events, blog.events);
}

OpenSimulation::Options churn_options(std::uint64_t seed) {
  OpenSimulation::Options o;
  o.kind = CompactKind::kScu;
  o.q = 2;
  o.s = 2;
  o.capacity = 256;
  o.initial_n = 64;
  o.seed = seed;
  o.order = LiveOrder::dense;
  o.arrivals = std::make_unique<PoissonArrivals>(0.02);
  o.depart_rate = 1e-4;
  o.crash_rate = 5e-5;
  o.restart_prob = 0.5;
  o.restart_delay_rate = 1e-3;
  o.queue_sample_every = 10'000;
  return o;
}

TEST(OpenSimulation, OpenTrajectoryIsSeedDeterministic) {
  auto run_once = [](std::uint64_t seed) {
    OpenSimulation sim(std::make_unique<pwf::sched::DynamicWeightedScheduler>(),
                       churn_options(seed));
    sim.run(200'000);
    return std::pair{sim.report().fingerprint(), sim.table().digest()};
  };
  const auto a = run_once(42);
  const auto b = run_once(42);
  const auto c = run_once(43);
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
  EXPECT_NE(a.first, c.first);
  EXPECT_NE(a.second, c.second);
}

TEST(OpenSimulation, ChurnCountersAllFire) {
  OpenSimulation sim(std::make_unique<pwf::sched::DynamicWeightedScheduler>(),
                     churn_options(7));
  sim.run(400'000);
  const OpenLatencyReport& rep = sim.report();
  EXPECT_GT(rep.completions, 0u);
  EXPECT_GT(rep.arrivals, 0u);
  EXPECT_GT(rep.departures, 0u);
  EXPECT_GT(rep.crashes, 0u);
  EXPECT_GT(rep.restarts, 0u);
  EXPECT_GT(rep.queue_peak, 0u);
  EXPECT_EQ(rep.queue_time, 400'000u);
  EXPECT_FALSE(rep.queue_curve.empty());
  EXPECT_GT(rep.mean_queue_length(), 0.0);
  // Conservation: everyone who left either departed or crashed for good
  // or is still live/suspended; restarts never exceed crashes.
  EXPECT_LE(rep.restarts, rep.crashes);
  // Steps happen only while someone is live; idle time still counts in
  // queue_time.
  EXPECT_LE(rep.steps, rep.queue_time);
}

// Replicas farmed across the exp pool and merged in replica order must
// be bit-identical for every thread count (parallel_for only reorders
// *when* jobs run, and merge() is a deterministic fold).
TEST(OpenSimulation, ReplicaMergeIsThreadCountInvariant) {
  constexpr std::size_t kReplicas = 6;
  auto farm = [](std::size_t threads) {
    std::vector<OpenLatencyReport> reps(kReplicas);
    pwf::exp::parallel_for(kReplicas, threads, [&](std::size_t i) {
      OpenSimulation sim(
          std::make_unique<pwf::sched::DynamicWeightedScheduler>(),
          churn_options(pwf::exp::derive_seed(1234, i)));
      sim.run(100'000);
      reps[i] = sim.report();
    });
    OpenLatencyReport merged;
    for (const auto& r : reps) merged.merge(r);
    return merged;
  };
  const OpenLatencyReport seq = farm(1);
  const OpenLatencyReport par = farm(4);
  EXPECT_EQ(seq.fingerprint(), par.fingerprint());
  EXPECT_EQ(seq.completions, par.completions);
  EXPECT_EQ(seq.op_latency.quantile(0.99), par.op_latency.quantile(0.99));
}

TEST(OpenSimulation, FullTableShedsArrivals) {
  OpenSimulation::Options o;
  o.kind = CompactKind::kParallel;
  o.q = 4;
  o.capacity = 4;
  o.initial_n = 4;
  o.seed = 5;
  o.arrivals = std::make_unique<PoissonArrivals>(0.5);
  // No departures or crashes: the table never frees a slot.
  OpenSimulation sim(std::make_unique<UniformScheduler>(), std::move(o));
  sim.run(10'000);
  EXPECT_GT(sim.report().shed, 0u);
  EXPECT_EQ(sim.report().departures, 0u);
  EXPECT_EQ(sim.table().live_count(), 4u);
}

TEST(OpenSimulation, CrashMidOperationCountsAbandoned) {
  OpenSimulation::Options o;
  o.kind = CompactKind::kParallel;
  o.q = 1'000'000;  // operations essentially never complete
  o.capacity = 8;
  o.initial_n = 8;
  o.seed = 11;
  o.crash_rate = 1e-3;
  OpenSimulation sim(std::make_unique<UniformScheduler>(), std::move(o));
  sim.run(50'000);
  EXPECT_GT(sim.report().crashes, 0u);
  EXPECT_EQ(sim.report().abandoned, sim.report().crashes);
  EXPECT_EQ(sim.report().completions, 0u);
}

TEST(OpenSimulation, IdleSystemFastForwardsTime) {
  OpenSimulation::Options o;
  o.kind = CompactKind::kFetchInc;
  o.capacity = 4;
  o.initial_n = 0;  // nobody home, no arrivals
  OpenSimulation sim(std::make_unique<UniformScheduler>(), std::move(o));
  sim.run(12'345);
  EXPECT_EQ(sim.now(), 12'345u);
  EXPECT_EQ(sim.report().steps, 0u);
  EXPECT_EQ(sim.report().queue_time, 12'345u);
  EXPECT_EQ(sim.report().mean_queue_length(), 0.0);
}

TEST(OpenSimulation, ReplayArrivalsLandExactlyOnSchedule) {
  OpenSimulation::Options o;
  o.kind = CompactKind::kFetchInc;
  o.capacity = 8;
  o.initial_n = 0;
  o.seed = 3;
  o.arrivals = std::make_unique<ReplayArrivals>(
      std::vector<std::uint64_t>{100, 250, 251});
  OpenSimulation sim(std::make_unique<UniformScheduler>(), std::move(o));
  // Boundary convention matches the closed engine's crash plan: an event
  // at exactly the end time is applied at the start of the next run.
  sim.run(100);
  EXPECT_EQ(sim.report().arrivals, 0u);
  EXPECT_EQ(sim.report().steps, 0u);  // idle until the first arrival
  sim.run(1);
  EXPECT_EQ(sim.report().arrivals, 1u);
  sim.run(400);
  EXPECT_EQ(sim.report().arrivals, 3u);
  EXPECT_EQ(sim.table().live_count(), 3u);
}

TEST(OpenSimulation, RestartReusesTheSameSlot) {
  OpenSimulation::Options o;
  o.kind = CompactKind::kScu;
  o.q = 0;
  o.s = 1;
  o.capacity = 4;
  o.initial_n = 4;
  o.seed = 17;
  o.crash_rate = 1e-3;
  o.restart_prob = 1.0;  // every crash restarts
  OpenSimulation sim(std::make_unique<pwf::sched::DynamicWeightedScheduler>(),
                     std::move(o));
  sim.run(100'000);
  const OpenLatencyReport& rep = sim.report();
  EXPECT_GT(rep.crashes, 0u);
  // All crashes restart (restarts can lag crashes by in-flight delays).
  EXPECT_GE(rep.restarts + 4, rep.crashes);
  EXPECT_EQ(rep.departures, 0u);
  // Nobody ever leaves for good, so the population never grows past the
  // initial four slots and sheds nothing.
  EXPECT_EQ(rep.shed, 0u);
  EXPECT_LE(sim.table().live_count(), 4u);
  // Generations advanced in place: slots were reused, not leaked.
  std::uint64_t generations = 0;
  for (std::size_t s = 0; s < 4; ++s) generations += sim.table().generation[s];
  EXPECT_EQ(generations, 4u + rep.restarts);
}

TEST(OpenSimulation, RejectsBadOptions) {
  OpenSimulation::Options o;
  o.kind = CompactKind::kScu;
  o.s = 0;
  EXPECT_THROW(OpenSimulation(std::make_unique<UniformScheduler>(),
                              std::move(o)),
               std::invalid_argument);
  OpenSimulation::Options o2;
  o2.capacity = 4;
  o2.initial_n = 5;
  EXPECT_THROW(OpenSimulation(std::make_unique<UniformScheduler>(),
                              std::move(o2)),
               std::invalid_argument);
  OpenSimulation::Options o3;
  EXPECT_THROW(OpenSimulation(nullptr, std::move(o3)), std::invalid_argument);
}

// --- Arrival-process unit tests ---------------------------------------------

TEST(ArrivalProcess, GeometricStepsEdgeCases) {
  Xoshiro256pp rng(1);
  const Xoshiro256pp before = rng;
  EXPECT_EQ(geometric_steps(0.0, rng), kNeverStep);
  EXPECT_EQ(geometric_steps(-1.0, rng), kNeverStep);
  EXPECT_TRUE(rng == before);  // p <= 0 consumes nothing
  EXPECT_EQ(geometric_steps(1.0, rng), 1u);
  EXPECT_FALSE(rng == before);  // p >= 1 still burns its one draw
}

TEST(ArrivalProcess, GeometricStepsMeanIsOneOverP) {
  Xoshiro256pp rng(99);
  const double p = 0.25;
  double sum = 0;
  const int kSamples = 40'000;
  for (int i = 0; i < kSamples; ++i) {
    sum += static_cast<double>(geometric_steps(p, rng));
  }
  EXPECT_NEAR(sum / kSamples, 1.0 / p, 0.1);
}

TEST(ArrivalProcess, BurstySquareWaveAndValidation) {
  BurstyArrivals b(0.01, 0.2, 100, 0.25);
  EXPECT_DOUBLE_EQ(b.rate_at(0), 0.2);
  EXPECT_DOUBLE_EQ(b.rate_at(24), 0.2);
  EXPECT_DOUBLE_EQ(b.rate_at(25), 0.01);
  EXPECT_DOUBLE_EQ(b.rate_at(99), 0.01);
  EXPECT_DOUBLE_EQ(b.rate_at(100), 0.2);
  EXPECT_THROW(BurstyArrivals(0.0, 0.2, 100, 0.25), std::invalid_argument);
  EXPECT_THROW(BurstyArrivals(0.1, 0.2, 0, 0.25), std::invalid_argument);
  EXPECT_THROW(BurstyArrivals(0.1, 0.2, 100, 1.0), std::invalid_argument);
  // More arrivals land in bursts than in troughs over many periods.
  Xoshiro256pp rng(5);
  std::uint64_t t = 0, in_burst = 0, total = 0;
  while (t < 500'000) {
    const std::uint64_t gap = b.next_interarrival(t, rng);
    if (gap == kNeverStep) break;
    t += gap;
    ++total;
    if (t % 100 < 25) ++in_burst;
  }
  ASSERT_GT(total, 100u);
  EXPECT_GT(static_cast<double>(in_burst) / static_cast<double>(total), 0.5);
}

TEST(ArrivalProcess, ReplayValidatesAndConsumesNoRandomness) {
  EXPECT_THROW(ReplayArrivals({5, 5}), std::invalid_argument);
  EXPECT_THROW(ReplayArrivals({5, 3}), std::invalid_argument);
  ReplayArrivals r({10, 20, 40});
  Xoshiro256pp rng(1);
  const Xoshiro256pp before = rng;
  EXPECT_EQ(r.next_interarrival(0, rng), 10u);
  EXPECT_EQ(r.next_interarrival(10, rng), 10u);
  EXPECT_EQ(r.next_interarrival(20, rng), 20u);
  EXPECT_EQ(r.next_interarrival(40, rng), kNeverStep);
  EXPECT_TRUE(rng == before);
}

}  // namespace
}  // namespace pwf::core
