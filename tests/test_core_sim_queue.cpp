// Tests for the simulated Michael-Scott queue: FIFO semantics under the
// model scheduler, conservation, per-producer order, tag/generation ABA
// safety under heavy slot reuse, and SCU-class latency shape.
#include "core/sim_queue.hpp"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <vector>

#include "core/simulation.hpp"
#include "util/stats.hpp"

namespace pwf::core {
namespace {

struct QueueSim {
  std::vector<const SimQueue*> machines;
  Simulation sim;
};

QueueSim make_queue_sim(std::size_t n, std::size_t slots,
                        std::uint64_t seed = 1) {
  auto machines = std::make_shared<std::vector<const SimQueue*>>();
  Simulation::Options opts;
  opts.num_registers = SimQueue::registers_required(n, slots);
  opts.initial_values = SimQueue::initial_values();
  opts.seed = seed;
  auto factory = [machines, slots](std::size_t pid, std::size_t nn) {
    auto machine = std::make_unique<SimQueue>(pid, nn, slots);
    machines->push_back(machine.get());
    return machine;
  };
  QueueSim out{{}, Simulation(n, factory,
                              std::make_unique<UniformScheduler>(), opts)};
  out.machines = *machines;
  return out;
}

TEST(SimQueue, RejectsBadConstruction) {
  EXPECT_THROW(SimQueue(1, 1, 4), std::invalid_argument);
  EXPECT_THROW(SimQueue(0, 1, 0), std::invalid_argument);
}

TEST(SimQueue, SoloAlternatesAndIsFifo) {
  auto q = make_queue_sim(1, 4);
  q.sim.run(20'000);
  const SimQueue& m = *q.machines[0];
  EXPECT_GT(m.enqueues(), 500u);
  EXPECT_NEAR(static_cast<double>(m.enqueues()),
              static_cast<double>(m.dequeues()), 1.0);
  EXPECT_EQ(m.empty_dequeues(), 0u);
  // Solo FIFO: dequeued values come back in enqueue order.
  const auto& out = m.dequeued_values();
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], (Value{1} << 32) | i);
  }
}

TEST(SimQueue, ConservationAndNoDuplicates) {
  constexpr std::size_t kN = 6;
  auto q = make_queue_sim(kN, 8, 99);
  q.sim.run(600'000);
  std::uint64_t enq = 0, deq = 0;
  std::set<Value> seen;
  for (const SimQueue* m : q.machines) {
    enq += m->enqueues();
    deq += m->dequeues();
    for (Value v : m->dequeued_values()) {
      ASSERT_TRUE(seen.insert(v).second) << "value dequeued twice: " << v;
    }
  }
  EXPECT_LE(deq, enq);
  // Walk the remaining queue: dummy's successors.
  SharedMemory& mem = q.sim.memory();
  std::uint64_t ref = mem.peek(0) & 0xffffffffULL;   // current dummy
  std::uint64_t depth = 0;
  std::uint64_t next = mem.peek(2 * ref) & 0xffffffffULL;
  while (next != 0) {
    ++depth;
    ASSERT_LT(depth, 1'000'000u) << "cycle in queue: ABA corruption";
    ref = next;
    next = mem.peek(2 * ref) & 0xffffffffULL;
  }
  EXPECT_EQ(depth, enq - deq);
}

TEST(SimQueue, PerProducerFifoOrder) {
  // Global FIFO implies each producer's values are dequeued in the order
  // that producer enqueued them, across all consumers.
  constexpr std::size_t kN = 5;
  auto q = make_queue_sim(kN, 6, 42);
  q.sim.run(400'000);
  // Merge all consumers' dequeue logs... order across consumers is not
  // directly observable, but each value encodes (producer, seq); a
  // *single* consumer's log must see each producer's seqs increasing.
  for (const SimQueue* consumer : q.machines) {
    std::map<std::uint64_t, std::uint64_t> last_seq;
    for (Value v : consumer->dequeued_values()) {
      const std::uint64_t producer = v >> 32;
      const std::uint64_t seq = v & 0xffffffffULL;
      auto it = last_seq.find(producer);
      if (it != last_seq.end()) {
        EXPECT_GT(seq, it->second)
            << "producer " << producer << "'s values reordered";
      }
      last_seq[producer] = seq;
    }
  }
}

TEST(SimQueue, DequeuedValuesWereEnqueued) {
  constexpr std::size_t kN = 4;
  auto q = make_queue_sim(kN, 5, 7);
  q.sim.run(200'000);
  for (const SimQueue* m : q.machines) {
    for (Value v : m->dequeued_values()) {
      const auto producer = static_cast<std::size_t>(v >> 32);
      const Value seq = v & 0xffffffffULL;
      ASSERT_GE(producer, 1u);
      ASSERT_LE(producer, kN);
      EXPECT_LT(seq, q.machines[producer - 1]->enqueues());
    }
  }
}

TEST(SimQueue, CompletionsMatchOperationCounts) {
  auto q = make_queue_sim(3, 4, 5);
  q.sim.run(150'000);
  std::uint64_t ops = 0;
  for (const SimQueue* m : q.machines) {
    ops += m->enqueues() + m->dequeues() + m->empty_dequeues();
  }
  EXPECT_EQ(ops, q.sim.report().completions);
}

TEST(SimQueue, HeavySlotReuseStaysCorrect) {
  // Tiny pools maximize reuse pressure on the generation stamps.
  constexpr std::size_t kN = 8;
  auto q = make_queue_sim(kN, 1, 1234);
  q.sim.run(800'000);
  std::uint64_t enq = 0, deq = 0;
  std::set<Value> seen;
  for (const SimQueue* m : q.machines) {
    enq += m->enqueues();
    deq += m->dequeues();
    for (Value v : m->dequeued_values()) {
      ASSERT_TRUE(seen.insert(v).second);
    }
  }
  EXPECT_GT(enq, 10'000u);
  EXPECT_LE(enq - deq, kN + 1);  // at most one in-flight node per process
}

TEST(SimQueue, ConservationHoldsUnderNonUniformSchedulers) {
  // Structure invariants are schedule-independent: re-run the
  // conservation check under sticky, Zipf and round-robin schedulers.
  constexpr std::size_t kN = 5;
  auto check = [&](std::unique_ptr<Scheduler> sched) {
    auto machines = std::make_shared<std::vector<const SimQueue*>>();
    Simulation::Options opts;
    opts.num_registers = SimQueue::registers_required(kN, 4);
    opts.initial_values = SimQueue::initial_values();
    opts.seed = 31;
    auto factory = [machines](std::size_t pid, std::size_t nn) {
      auto machine = std::make_unique<SimQueue>(pid, nn, 4);
      machines->push_back(machine.get());
      return machine;
    };
    Simulation sim(kN, factory, std::move(sched), opts);
    sim.run(300'000);
    std::uint64_t enq = 0, deq = 0;
    std::set<Value> seen;
    for (const SimQueue* m : *machines) {
      enq += m->enqueues();
      deq += m->dequeues();
      for (Value v : m->dequeued_values()) {
        ASSERT_TRUE(seen.insert(v).second) << "duplicate dequeue";
      }
    }
    EXPECT_LE(deq, enq);
    EXPECT_GT(enq, 10'000u);
  };
  check(std::make_unique<StickyScheduler>(0.8));
  check(std::make_unique<WeightedScheduler>(make_zipf_scheduler(kN, 1.0)));
  check(std::make_unique<RoundRobinScheduler>());
}

TEST(SimQueue, LatencyIsSqrtNishAndFair) {
  std::vector<double> ns, ws;
  for (std::size_t n : {4, 8, 16, 32}) {
    auto q = make_queue_sim(n, 8, 100 + n);
    q.sim.run(100'000);
    q.sim.reset_stats();
    q.sim.run(800'000);
    ns.push_back(static_cast<double>(n));
    ws.push_back(q.sim.report().system_latency());
  }
  const LinearFit fit = fit_power_law(ns, ws);
  EXPECT_GT(fit.slope, 0.15);
  EXPECT_LT(fit.slope, 0.75);
  // Fairness at n = 8.
  auto q = make_queue_sim(8, 8, 21);
  q.sim.run(100'000);
  q.sim.reset_stats();
  q.sim.run(1'000'000);
  const double w = q.sim.report().system_latency();
  for (std::size_t p = 0; p < 8; ++p) {
    EXPECT_NEAR(q.sim.report().individual_latency(p), 8 * w, 0.15 * 8 * w);
  }
}

}  // namespace
}  // namespace pwf::core
