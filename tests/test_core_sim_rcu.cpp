// Tests for the RCU step machine: wait-free readers, SCU-writer behaviour,
// version consistency, and the torn-read/grace-period trade-off.
#include "core/sim_rcu.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/simulation.hpp"

namespace pwf::core {
namespace {

struct RcuSim {
  std::vector<const SimRcu*> machines;
  Simulation sim;
};

RcuSim make_rcu_sim(std::size_t n, const RcuConfig& config,
                    std::uint64_t seed = 1) {
  auto machines = std::make_shared<std::vector<const SimRcu*>>();
  Simulation::Options opts;
  opts.num_registers = SimRcu::registers_required(config);
  opts.seed = seed;
  auto factory = [machines, config](std::size_t pid, std::size_t nn) {
    auto machine = std::make_unique<SimRcu>(pid, nn, config);
    machines->push_back(machine.get());
    return machine;
  };
  RcuSim out{{}, Simulation(n, factory,
                            std::make_unique<UniformScheduler>(), opts)};
  out.machines = *machines;
  return out;
}

TEST(SimRcu, RejectsBadConfiguration) {
  EXPECT_THROW(SimRcu(3, 3, RcuConfig{}), std::invalid_argument);
  EXPECT_THROW(SimRcu(0, 2, RcuConfig{0, 3, 4}), std::invalid_argument);
  EXPECT_THROW(SimRcu(0, 2, RcuConfig{3, 3, 4}), std::invalid_argument);
  EXPECT_THROW(SimRcu(0, 2, RcuConfig{1, 0, 4}), std::invalid_argument);
  EXPECT_THROW(SimRcu(0, 2, RcuConfig{1, 3, 0}), std::invalid_argument);
}

TEST(SimRcu, SoloWriterPublishesEveryTwoPlusLSteps) {
  RcuConfig config{1, 3, 4};
  auto r = make_rcu_sim(1, config);
  r.sim.run(6'000);
  // Solo: read P (1) + copy L (3) + CAS (1) = 5 steps per update.
  EXPECT_NEAR(r.sim.report().system_latency(), 5.0, 0.01);
  EXPECT_EQ(r.machines[0]->updates(), r.sim.report().completions);
  // Final version equals the number of updates.
  EXPECT_EQ(r.sim.memory().peek(0) >> 32, r.machines[0]->updates());
}

TEST(SimRcu, ReadersAreWaitFreeAndNeverTornWithDeepPools) {
  RcuConfig config{2, 3, 64};  // deep pools ~ long grace period
  constexpr std::size_t kN = 8;
  auto r = make_rcu_sim(kN, config, 5);
  r.sim.run(400'000);
  for (std::size_t p = config.writers; p < kN; ++p) {
    const SimRcu& reader = *r.machines[p];
    EXPECT_GT(reader.reads(), 5'000u);
    EXPECT_EQ(reader.torn_reads(), 0u)
        << "reader " << p << " saw a recycled block despite deep pools";
    // Wait-free: every read costs exactly 1 + L of its own steps (the few
    // trivial pre-publication reads cost 1), so completions ~= steps / 4.
    EXPECT_NEAR(static_cast<double>(reader.reads()),
                static_cast<double>(
                    r.sim.report().steps_per_process[p]) / 4.0,
                8.0);
  }
}

TEST(SimRcu, ShallowPoolsProduceTornReads) {
  // With a single slot per writer, a reader that holds a pointer across
  // one full writer turnaround sees recycled payload — the reason real
  // RCU needs grace periods before reuse.
  RcuConfig config{4, 3, 1};
  constexpr std::size_t kN = 16;
  auto r = make_rcu_sim(kN, config, 7);
  r.sim.run(400'000);
  std::uint64_t torn = 0, reads = 0;
  for (std::size_t p = config.writers; p < kN; ++p) {
    torn += r.machines[p]->torn_reads();
    reads += r.machines[p]->reads();
  }
  EXPECT_GT(reads, 60'000u);
  EXPECT_GT(torn, 0u) << "expected some torn reads with slots_per_writer=1";
}

TEST(SimRcu, TornRateDecreasesWithPoolDepth) {
  auto torn_rate = [](std::size_t slots, std::uint64_t seed) {
    RcuConfig config{4, 3, slots};
    auto r = make_rcu_sim(12, config, seed);
    r.sim.run(600'000);
    std::uint64_t torn = 0, reads = 0;
    for (std::size_t p = 4; p < 12; ++p) {
      torn += r.machines[p]->torn_reads();
      reads += r.machines[p]->reads();
    }
    return static_cast<double>(torn) / static_cast<double>(reads);
  };
  const double r1 = torn_rate(1, 11);
  const double r4 = torn_rate(4, 11);
  const double r16 = torn_rate(16, 11);
  EXPECT_GT(r1, r4);
  EXPECT_GE(r4, r16);
  EXPECT_LT(r16, 1e-3);
}

TEST(SimRcu, WriterContentionScalesWithWriterCountOnly) {
  // Readers do not contend with writers: writer latency at fixed writer
  // count is unchanged when readers are added (in *their own* steps).
  auto writer_own_cost = [](std::size_t writers, std::size_t readers,
                            std::uint64_t seed) {
    RcuConfig config{writers, 3, 8};
    auto r = make_rcu_sim(writers + readers, config, seed);
    r.sim.run(100'000);
    r.sim.reset_stats();
    r.sim.run(800'000);
    double own_steps = 0.0, updates = 0.0;
    for (std::size_t p = 0; p < writers; ++p) {
      own_steps +=
          static_cast<double>(r.sim.report().steps_per_process[p]);
      updates += static_cast<double>(r.machines[p]->updates());
    }
    return own_steps / updates;  // writer steps per completed update
  };
  const double lonely = writer_own_cost(4, 0, 3);
  const double crowded = writer_own_cost(4, 12, 3);
  EXPECT_NEAR(crowded, lonely, 0.15 * lonely);
  // And writer cost grows with writer count (the SCU contention factor).
  const double more_writers = writer_own_cost(16, 0, 3);
  EXPECT_GT(more_writers, lonely * 1.1);
}

TEST(SimRcu, VersionCountsUpdatesExactly) {
  RcuConfig config{3, 2, 8};
  auto r = make_rcu_sim(6, config, 13);
  r.sim.run(300'000);
  std::uint64_t updates = 0;
  for (std::size_t p = 0; p < 3; ++p) updates += r.machines[p]->updates();
  EXPECT_EQ(r.sim.memory().peek(0) >> 32, updates);
}

}  // namespace
}  // namespace pwf::core
