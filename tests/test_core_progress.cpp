// Tests for progress trackers plus the paper's Section 4 results:
// Theorem 3 (bounded minimal progress + stochastic scheduler => maximal
// progress) and Lemma 2 (the unbounded algorithm starves processes).
#include "core/progress.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "core/algorithms.hpp"
#include "core/simulation.hpp"
#include "core/theory.hpp"

namespace pwf::core {
namespace {

TEST(ProgressTracker, TracksGapsAndCompletions) {
  ProgressTracker tracker(2);
  tracker.on_step(1, 0, false);
  tracker.on_step(2, 0, true);   // p0 completes at 2
  tracker.on_step(3, 1, false);
  tracker.on_step(4, 1, true);   // p1 completes at 4
  tracker.on_step(5, 0, true);   // p0 completes at 5
  EXPECT_EQ(tracker.completions(0), 2u);
  EXPECT_EQ(tracker.completions(1), 1u);
  EXPECT_EQ(tracker.max_system_gap(), 2u);       // 0->2, 2->4, 4->5
  EXPECT_EQ(tracker.max_individual_gap(0), 3u);  // 2 -> 5
  EXPECT_TRUE(tracker.every_process_completed());
}

TEST(ProgressTracker, OpenGapCountsAsCensoredMaximum) {
  ProgressTracker tracker(1);
  tracker.on_step(1, 0, true);
  for (std::uint64_t t = 2; t <= 100; ++t) tracker.on_step(t, 0, false);
  EXPECT_EQ(tracker.max_individual_gap(0), 99u);
}

TEST(ProgressTracker, StarvingDetection) {
  ProgressTracker tracker(3);
  tracker.on_step(1, 0, true);
  for (std::uint64_t t = 2; t <= 1000; ++t) {
    tracker.on_step(t, t % 2, true);  // p0 and p1 keep completing
  }
  // p2 never even steps; it is starving past any small threshold.
  const auto starving = tracker.starving(500);
  ASSERT_EQ(starving.size(), 1u);
  EXPECT_EQ(starving[0], 2u);
}

// --- Theorem 3: minimal progress becomes maximal progress -------------------

TEST(Theorem3, BoundedAlgorithmUnderAdversaryWithThetaCompletesEveryone) {
  // Scan-validate has bounded minimal progress. Wrap a starving adversary
  // (always schedules the highest-id active process) in a theta-mixture;
  // Theorem 3 says every process still completes with probability 1, with
  // expected bound at most (1/theta)^T.
  constexpr std::size_t kN = 4;
  const double theta = 0.02;
  auto adversary = std::make_unique<AdversarialScheduler>(
      [](std::uint64_t, std::span<const std::size_t> active) {
        return active.back();
      });
  Simulation::Options opts;
  opts.num_registers = ScuAlgorithm::registers_required(kN, 1);
  opts.seed = 31337;
  Simulation sim(kN, scan_validate_factory(),
                 std::make_unique<ThetaMixScheduler>(theta, std::move(adversary)),
                 opts);
  ProgressTracker tracker(kN);
  sim.set_observer(&tracker);
  sim.run(2'000'000);
  EXPECT_TRUE(tracker.every_process_completed());
  for (std::size_t p = 0; p < kN; ++p) {
    EXPECT_GT(tracker.completions(p), 100u) << "process " << p;
  }
}

TEST(Theorem3, PureAdversaryStarvesWithoutTheta) {
  // The same adversary with theta = 0 starves everyone but its favourite:
  // the favourite CAS-es successfully forever; nobody else is scheduled.
  constexpr std::size_t kN = 4;
  Simulation::Options opts;
  opts.num_registers = ScuAlgorithm::registers_required(kN, 1);
  Simulation sim(kN, scan_validate_factory(),
                 std::make_unique<AdversarialScheduler>(
                     [](std::uint64_t, std::span<const std::size_t> active) {
                       return active.back();
                     }),
                 opts);
  ProgressTracker tracker(kN);
  sim.set_observer(&tracker);
  sim.run(100'000);
  EXPECT_FALSE(tracker.every_process_completed());
  EXPECT_GT(tracker.completions(kN - 1), 0u);
  EXPECT_EQ(tracker.completions(0), 0u);
}

TEST(Theorem3, ExpectedBoundFormula) {
  EXPECT_DOUBLE_EQ(theory::theorem3_expected_bound(0.5, 2), 4.0);
  EXPECT_DOUBLE_EQ(theory::theorem3_expected_bound(1.0, 10), 1.0);
  EXPECT_THROW(theory::theorem3_expected_bound(0.0, 1), std::invalid_argument);
}

TEST(Theorem3, SoloBoundObservedUnderThetaMix) {
  // For scan-validate, T = 2 (a solo process finishes in a read + CAS).
  // Under ANY stochastic scheduler with threshold theta, a process
  // completes within (1/theta)^2 expected steps. Check the empirical mean
  // individual gap against the bound (it should be far below it).
  constexpr std::size_t kN = 3;
  const double theta = 0.1;
  auto adversary = std::make_unique<AdversarialScheduler>(
      [](std::uint64_t, std::span<const std::size_t> active) {
        return active.front();
      });
  Simulation::Options opts;
  opts.num_registers = ScuAlgorithm::registers_required(kN, 1);
  opts.seed = 11;
  Simulation sim(kN, scan_validate_factory(),
                 std::make_unique<ThetaMixScheduler>(theta, std::move(adversary)),
                 opts);
  sim.run(500'000);
  // The paper's bound is loose in its constant (the proof counts length-T
  // solo windows, each hit with probability theta^T); allow a factor of
  // T * 2 on top of (1/theta)^T. The point is the *order*: completion time
  // is governed by theta, not by the adversary.
  const double bound = 4.0 * theory::theorem3_expected_bound(theta, 2);
  for (std::size_t p = 0; p < kN; ++p) {
    ASSERT_GT(sim.report().completions_per_process[p], 0u);
    EXPECT_LT(sim.report().individual_latency(p), bound);
  }
}

// --- Lemma 2: the unbounded algorithm is not practically wait-free ----------

TEST(Lemma2, UnboundedAlgorithmStarvesLosersUnderUniformScheduler) {
  constexpr std::size_t kN = 8;
  Simulation::Options opts;
  opts.num_registers = UnboundedLockFree::registers_required();
  opts.seed = 321;
  Simulation sim(kN, UnboundedLockFree::factory(),
                 std::make_unique<UniformScheduler>(), opts);
  ProgressTracker tracker(kN);
  sim.set_observer(&tracker);
  sim.run(2'000'000);

  // Minimal progress holds: the system as a whole keeps completing.
  std::uint64_t total = 0;
  std::size_t winners = 0;
  for (std::size_t p = 0; p < kN; ++p) {
    total += tracker.completions(p);
    if (tracker.completions(p) > 0) ++winners;
  }
  EXPECT_GT(total, 1000u);

  // But maximal progress fails in practice: one process dominates utterly
  // and most processes are starving (their penalty loops grow without
  // bound). With n = 8 the w.h.p. statement is overwhelming.
  std::uint64_t best = 0;
  for (std::size_t p = 0; p < kN; ++p) {
    best = std::max(best, tracker.completions(p));
  }
  EXPECT_GT(static_cast<double>(best) / static_cast<double>(total), 0.95);
  EXPECT_FALSE(tracker.starving(1'000'000).empty());
}

struct CapOutcome {
  bool everyone = false;
  double winner_share = 0.0;
  std::size_t starving = 0;
};

CapOutcome run_capped(std::uint64_t cap) {
  constexpr std::size_t kN = 8;
  Simulation::Options opts;
  opts.num_registers = UnboundedLockFree::registers_required();
  opts.seed = 321;  // same seed as the starvation test above
  Simulation sim(kN, UnboundedLockFree::capped_factory(cap),
                 std::make_unique<UniformScheduler>(), opts);
  ProgressTracker tracker(kN);
  sim.set_observer(&tracker);
  sim.run(2'000'000);
  CapOutcome out;
  out.everyone = tracker.every_process_completed();
  std::uint64_t total = 0, best = 0;
  for (std::size_t p = 0; p < kN; ++p) {
    total += tracker.completions(p);
    best = std::max(best, tracker.completions(p));
  }
  out.winner_share = static_cast<double>(best) / static_cast<double>(total);
  out.starving = tracker.starving(500'000).size();
  return out;
}

TEST(Lemma2, SmallBackoffCapRestoresPracticalWaitFreedom) {
  // The constructive reading of Lemma 2: truncating the penalty at a
  // SMALL bound restores not only the Theorem-3 guarantee but practical
  // fairness — every process completes tens of thousands of ops.
  const CapOutcome capped = run_capped(4);
  EXPECT_TRUE(capped.everyone);
  EXPECT_LT(capped.winner_share, 0.25);
  EXPECT_EQ(capped.starving, 0u);
}

TEST(Lemma2, LargeCapIsTheoreticallyWaitFreeButPracticallyStarving) {
  // Reproduction finding: Theorem 3's bound is (1/theta)^T, exponential
  // in the progress bound T. A cap of 64 makes the algorithm boundedly
  // lock-free — Theorem 3 technically applies — yet within any realistic
  // horizon the losers' win probability per attempt is ~e^-cap and they
  // starve just like the unbounded version. Empirically the fairness
  // phase transition at n = 8 sits between cap 8 and cap 16.
  const CapOutcome small = run_capped(8);
  EXPECT_EQ(small.starving, 0u);
  EXPECT_LT(small.winner_share, 0.35);
  const CapOutcome large = run_capped(64);
  EXPECT_GE(large.starving, 6u);
  EXPECT_GT(large.winner_share, 0.9);
}

TEST(Lemma2, BoundedCounterpartDoesNotStarveAnyone) {
  // Control experiment: scan-validate (bounded) under the same scheduler
  // and horizon shares completions roughly evenly.
  constexpr std::size_t kN = 8;
  Simulation::Options opts;
  opts.num_registers = ScuAlgorithm::registers_required(kN, 1);
  opts.seed = 321;
  Simulation sim(kN, scan_validate_factory(),
                 std::make_unique<UniformScheduler>(), opts);
  ProgressTracker tracker(kN);
  sim.set_observer(&tracker);
  sim.run(2'000'000);
  std::uint64_t total = 0, best = 0;
  for (std::size_t p = 0; p < kN; ++p) {
    total += tracker.completions(p);
    best = std::max(best, tracker.completions(p));
  }
  EXPECT_LT(static_cast<double>(best) / static_cast<double>(total), 0.2);
  EXPECT_TRUE(tracker.starving(100'000).empty());
}

}  // namespace
}  // namespace pwf::core
