// Seed-robustness: the headline statistics must be properties of the
// model, not of a lucky seed. Each test repeats a key measurement across
// disjoint seeds and checks the spread.
#include <gtest/gtest.h>

#include <memory>

#include "ballsbins/game.hpp"
#include "core/algorithms.hpp"
#include "core/simulation.hpp"
#include "markov/builders.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace pwf {
namespace {

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweep, ScanValidateLatencyIsSeedStable) {
  constexpr std::size_t kN = 6;
  core::Simulation::Options opts;
  opts.num_registers = core::ScuAlgorithm::registers_required(kN, 1);
  opts.seed = GetParam();
  core::Simulation sim(kN, core::scan_validate_factory(),
                       std::make_unique<core::UniformScheduler>(), opts);
  sim.run(50'000);
  sim.reset_stats();
  sim.run(500'000);
  const double exact =
      markov::system_latency(markov::build_scan_validate_system_chain(kN));
  EXPECT_NEAR(sim.report().system_latency(), exact, 0.04 * exact)
      << "seed " << GetParam();
}

TEST_P(SeedSweep, FaiLatencyIsSeedStable) {
  constexpr std::size_t kN = 12;
  core::Simulation::Options opts;
  opts.num_registers = core::FetchAndIncrement::registers_required();
  opts.seed = GetParam();
  core::Simulation sim(kN, core::FetchAndIncrement::factory(),
                       std::make_unique<core::UniformScheduler>(), opts);
  sim.run(50'000);
  sim.reset_stats();
  sim.run(500'000);
  const double exact =
      markov::system_latency(markov::build_fai_global_chain(kN));
  EXPECT_NEAR(sim.report().system_latency(), exact, 0.04 * exact)
      << "seed " << GetParam();
}

TEST_P(SeedSweep, BallsBinsPhaseMeanIsSeedStable) {
  constexpr std::size_t kN = 16;
  ballsbins::IteratedBallsBins game(kN, Xoshiro256pp(GetParam()));
  const auto records = game.run_phases(25'000);
  StreamingStats lengths;
  for (const auto& rec : records) {
    lengths.add(static_cast<double>(rec.length));
  }
  const double exact =
      markov::system_latency(markov::build_scan_validate_system_chain(kN));
  EXPECT_NEAR(lengths.mean(), exact, 0.04 * exact) << "seed " << GetParam();
}

TEST_P(SeedSweep, Lemma2StarvationIsSeedRobust) {
  // The w.h.p. statement of Lemma 2: the dominant-winner outcome happens
  // at EVERY seed, not just the one the dedicated test uses.
  constexpr std::size_t kN = 8;
  core::Simulation::Options opts;
  opts.num_registers = core::UnboundedLockFree::registers_required();
  opts.seed = GetParam();
  core::Simulation sim(kN, core::UnboundedLockFree::factory(),
                       std::make_unique<core::UniformScheduler>(), opts);
  sim.run(1'000'000);
  std::uint64_t best = 0, total = 0;
  for (std::size_t p = 0; p < kN; ++p) {
    total += sim.report().completions_per_process[p];
    best = std::max(best, sim.report().completions_per_process[p]);
  }
  EXPECT_GT(static_cast<double>(best) / static_cast<double>(total), 0.9)
      << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(101, 202, 303, 404, 505, 606));

}  // namespace
}  // namespace pwf
