// Tests for the native-atomics counters (Appendix B workload).
#include "lockfree/counter.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "lockfree/harness.hpp"

namespace pwf::lockfree {
namespace {

TEST(CasCounter, SingleThreadSequence) {
  CasCounter counter;
  for (std::uint64_t i = 0; i < 100; ++i) {
    const OpCost cost = counter.fetch_inc();
    EXPECT_EQ(cost.value, i);
    // Uncontended: one load + one successful CAS.
    EXPECT_EQ(cost.steps, 2u);
  }
  EXPECT_EQ(counter.load(), 100u);
}

TEST(CasCounter, InitialValueRespected) {
  CasCounter counter(41);
  EXPECT_EQ(counter.fetch_inc().value, 41u);
  EXPECT_EQ(counter.load(), 42u);
}

TEST(CasCounter, ConcurrentIncrementsAreExact) {
  CasCounter counter;
  constexpr std::size_t kThreads = 4;
  constexpr std::uint64_t kOps = 20'000;
  const HarnessResult result = run_fixed_ops(
      kThreads, kOps, [&](std::size_t) { return counter.fetch_inc().steps; });
  EXPECT_EQ(counter.load(), kThreads * kOps);
  EXPECT_EQ(result.total_ops(), kThreads * kOps);
  // Steps >= 2 per op; contention adds more.
  EXPECT_GE(result.total_steps(), 2 * kThreads * kOps);
}

TEST(CasCounter, ConcurrentValuesAreUniqueAndDense) {
  // Every fetched value in [0, total) appears exactly once.
  CasCounter counter;
  constexpr std::size_t kThreads = 4;
  constexpr std::uint64_t kOps = 5'000;
  std::vector<std::vector<std::uint64_t>> fetched(kThreads);
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      fetched[t].reserve(kOps);
      for (std::uint64_t i = 0; i < kOps; ++i) {
        fetched[t].push_back(counter.fetch_inc().value);
      }
    });
  }
  for (auto& w : workers) w.join();
  std::vector<bool> seen(kThreads * kOps, false);
  for (const auto& values : fetched) {
    for (std::uint64_t v : values) {
      ASSERT_LT(v, seen.size());
      ASSERT_FALSE(seen[v]) << "duplicate ticket " << v;
      seen[v] = true;
    }
  }
}

TEST(FetchAddCounter, SingleThreadSequence) {
  FetchAddCounter counter;
  for (std::uint64_t i = 0; i < 50; ++i) {
    const OpCost cost = counter.fetch_inc();
    EXPECT_EQ(cost.value, i);
    EXPECT_EQ(cost.steps, 1u);  // wait-free: always exactly one step
  }
}

TEST(FetchAddCounter, ConcurrentIncrementsAreExact) {
  FetchAddCounter counter;
  constexpr std::size_t kThreads = 4;
  constexpr std::uint64_t kOps = 20'000;
  const HarnessResult result = run_fixed_ops(
      kThreads, kOps, [&](std::size_t) { return counter.fetch_inc().steps; });
  EXPECT_EQ(counter.load(), kThreads * kOps);
  // Wait-free: exactly one step per operation, no retries ever.
  EXPECT_EQ(result.total_steps(), kThreads * kOps);
  EXPECT_DOUBLE_EQ(result.completion_rate(), 1.0);
}

TEST(Harness, TimedRunProducesWork) {
  CasCounter counter;
  const HarnessResult result =
      run_throughput(2, std::chrono::milliseconds(50),
                     [&](std::size_t) { return counter.fetch_inc().steps; });
  EXPECT_GT(result.total_ops(), 100u);
  EXPECT_GT(result.seconds, 0.0);
  EXPECT_GT(result.ops_per_second(), 0.0);
  EXPECT_EQ(result.per_thread.size(), 2u);
  EXPECT_EQ(counter.load(), result.total_ops());
  // Completion rate is in (0, 1/2]: at least 2 steps per op.
  EXPECT_LE(result.completion_rate(), 0.5);
  EXPECT_GT(result.completion_rate(), 0.0);
}

TEST(Harness, RejectsBadArguments) {
  EXPECT_THROW(
      run_throughput(0, std::chrono::milliseconds(1), [](std::size_t) {
        return std::uint64_t{1};
      }),
      std::invalid_argument);
  EXPECT_THROW(run_fixed_ops(1, 0, [](std::size_t) { return std::uint64_t{1}; }),
               std::invalid_argument);
  EXPECT_THROW(run_fixed_ops(1, 10, nullptr), std::invalid_argument);
}

}  // namespace
}  // namespace pwf::lockfree
