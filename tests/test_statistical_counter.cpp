// Tests for both statistical counters (simulated step machine and native):
// exactness of increments, read consistency in quiescence, wait-free O(1)
// increment cost, and the escape from the sqrt(n) law that answers the
// paper's Section 8 question.
#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "core/simulation.hpp"
#include "core/statistical_counter.hpp"
#include "core/theory.hpp"
#include "lockfree/statistical_counter.hpp"

namespace pwf {
namespace {

// ---- simulated ----

core::Simulation make_sim(std::size_t n, double read_fraction,
                          std::uint64_t seed,
                          std::vector<const core::StatisticalCounter*>* out =
                              nullptr) {
  core::Simulation::Options opts;
  opts.num_registers = core::StatisticalCounter::registers_required(n);
  opts.seed = seed;
  auto factory = [read_fraction, seed, out](std::size_t pid, std::size_t nn) {
    auto machine = std::make_unique<core::StatisticalCounter>(
        pid, nn, read_fraction, seed);
    if (out) out->push_back(machine.get());
    return machine;
  };
  return core::Simulation(n, factory,
                          std::make_unique<core::UniformScheduler>(), opts);
}

TEST(SimStatisticalCounter, RejectsBadArguments) {
  EXPECT_THROW(core::StatisticalCounter(2, 2, 0.5, 1), std::invalid_argument);
  EXPECT_THROW(core::StatisticalCounter(0, 2, 1.5, 1), std::invalid_argument);
  EXPECT_THROW(core::StatisticalCounter(0, 2, -0.1, 1), std::invalid_argument);
}

TEST(SimStatisticalCounter, PureIncrementsCompleteEveryStep) {
  auto sim = make_sim(4, /*read_fraction=*/0.0, 3);
  sim.run(50'000);
  // Every step is a completed increment: W = 1, no contention at all.
  EXPECT_EQ(sim.report().completions, 50'000u);
  EXPECT_DOUBLE_EQ(sim.report().system_latency(), 1.0);
}

TEST(SimStatisticalCounter, SubcountersSumToIncrements) {
  std::vector<const core::StatisticalCounter*> machines;
  auto sim = make_sim(5, 0.3, 7, &machines);
  sim.run(100'000);
  std::uint64_t total_inc = 0;
  for (const auto* m : machines) total_inc += m->increments();
  core::Value register_sum = 0;
  for (std::size_t p = 0; p < 5; ++p) register_sum += sim.memory().peek(p);
  EXPECT_EQ(register_sum, total_inc);
}

TEST(SimStatisticalCounter, ReadsAreBoundedByTrueCount) {
  // Any read's value is between 0 and the number of increments completed
  // by the end of the run (monotonicity of each subcounter).
  std::vector<const core::StatisticalCounter*> machines;
  auto sim = make_sim(6, 0.5, 11, &machines);
  sim.run(200'000);
  std::uint64_t total_inc = 0;
  for (const auto* m : machines) total_inc += m->increments();
  for (const auto* m : machines) {
    EXPECT_LE(m->last_read_value(), total_inc);
  }
}

TEST(SimStatisticalCounter, PureReadsCostExactlyN) {
  auto sim = make_sim(8, 1.0, 13);
  sim.run(80'000);
  // Every operation costs exactly 8 of its process's steps; the measured
  // system-gap mean carries only a window-boundary wobble.
  EXPECT_NEAR(sim.report().system_latency(), 8.0, 0.01);
}

TEST(SimStatisticalCounter, EscapesTheSqrtNLaw) {
  // The Section 8 answer: for an increment-dominated workload the latency
  // is O(1) in n, beating the CAS counter's Z(n-1) ~ sqrt(pi n / 2).
  for (std::size_t n : {8, 32, 128}) {
    auto sim = make_sim(n, /*read_fraction=*/0.05, 17 + n);
    sim.run(100'000);
    sim.reset_stats();
    sim.run(400'000);
    const double w = sim.report().system_latency();
    // Expected cost: 0.95 * 1 + 0.05 * n.
    EXPECT_NEAR(w, 0.95 + 0.05 * static_cast<double>(n), 0.1 * (1 + 0.05 * n))
        << "n = " << n;
    if (n >= 32) continue;  // reads start dominating past the crossover
    EXPECT_LT(w, core::theory::fai_system_latency_exact(n));
  }
}

// ---- native ----

TEST(NativeStatisticalCounter, RejectsZeroSlots) {
  EXPECT_THROW(lockfree::StatisticalCounter(0), std::invalid_argument);
}

TEST(NativeStatisticalCounter, SingleThreadExact) {
  lockfree::StatisticalCounter counter(4);
  for (int i = 0; i < 100; ++i) counter.add(0);
  counter.add(1, 5);
  EXPECT_EQ(counter.read(), 105u);
}

TEST(NativeStatisticalCounter, ConcurrentIncrementsAreExactInQuiescence) {
  constexpr std::size_t kThreads = 4;
  constexpr std::uint64_t kOps = 100'000;
  lockfree::StatisticalCounter counter(kThreads);
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < kOps; ++i) counter.add(t);
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(counter.read(), kThreads * kOps);
}

TEST(NativeStatisticalCounter, ConcurrentReadsAreMonotoneSnapshots) {
  constexpr std::uint64_t kOps = 200'000;
  lockfree::StatisticalCounter counter(2);
  std::thread incrementer([&] {
    for (std::uint64_t i = 0; i < kOps; ++i) counter.add(0);
  });
  std::uint64_t prev = 0;
  bool monotone = true;
  // A single-writer counter read by one reader is monotone.
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t now = counter.read();
    if (now < prev) monotone = false;
    prev = now;
  }
  incrementer.join();
  EXPECT_TRUE(monotone);
  EXPECT_EQ(counter.read(), kOps);
}

}  // namespace
}  // namespace pwf
