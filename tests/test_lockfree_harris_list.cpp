// Tests for the Harris lock-free ordered-list set: sequential semantics,
// ordering, logical-delete visibility, and concurrent linearizability
// smoke checks (conservation, no duplicates).
#include "lockfree/harris_list.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "util/rng.hpp"

namespace pwf::lockfree {
namespace {

TEST(HarrisList, InsertContainsErase) {
  EbrDomain domain;
  EbrThreadHandle handle(domain);
  HarrisList<int> list(domain);
  EXPECT_FALSE(list.contains(handle, 5));
  EXPECT_TRUE(list.insert(handle, 5));
  EXPECT_TRUE(list.contains(handle, 5));
  EXPECT_FALSE(list.insert(handle, 5));  // duplicate
  EXPECT_TRUE(list.erase(handle, 5));
  EXPECT_FALSE(list.contains(handle, 5));
  EXPECT_FALSE(list.erase(handle, 5));  // already gone
}

TEST(HarrisList, KeepsKeysSorted) {
  EbrDomain domain;
  EbrThreadHandle handle(domain);
  HarrisList<int> list(domain);
  for (int k : {5, 1, 9, 3, 7, 2, 8}) EXPECT_TRUE(list.insert(handle, k));
  std::vector<int> seen;
  list.for_each(handle, [&](const int& k) { seen.push_back(k); });
  const std::vector<int> expected{1, 2, 3, 5, 7, 8, 9};
  EXPECT_EQ(seen, expected);
}

TEST(HarrisList, EraseMiddleKeepsNeighbours) {
  EbrDomain domain;
  EbrThreadHandle handle(domain);
  HarrisList<int> list(domain);
  for (int k : {1, 2, 3}) list.insert(handle, k);
  EXPECT_TRUE(list.erase(handle, 2));
  EXPECT_TRUE(list.contains(handle, 1));
  EXPECT_FALSE(list.contains(handle, 2));
  EXPECT_TRUE(list.contains(handle, 3));
  EXPECT_EQ(list.size_slow(handle), 2u);
}

TEST(HarrisList, EraseHeadAndTail) {
  EbrDomain domain;
  EbrThreadHandle handle(domain);
  HarrisList<int> list(domain);
  for (int k : {1, 2, 3}) list.insert(handle, k);
  EXPECT_TRUE(list.erase(handle, 1));
  EXPECT_TRUE(list.erase(handle, 3));
  EXPECT_EQ(list.size_slow(handle), 1u);
  EXPECT_TRUE(list.contains(handle, 2));
}

TEST(HarrisList, ReinsertAfterErase) {
  EbrDomain domain;
  EbrThreadHandle handle(domain);
  HarrisList<int> list(domain);
  for (int round = 0; round < 50; ++round) {
    EXPECT_TRUE(list.insert(handle, 42));
    EXPECT_TRUE(list.erase(handle, 42));
  }
  EXPECT_EQ(list.size_slow(handle), 0u);
}

TEST(HarrisList, ManySequentialOperations) {
  EbrDomain domain;
  EbrThreadHandle handle(domain);
  HarrisList<int> list(domain);
  std::set<int> reference;
  Xoshiro256pp rng(3);
  for (int i = 0; i < 20'000; ++i) {
    const int key = static_cast<int>(rng.uniform(200));
    switch (rng.uniform(3)) {
      case 0:
        EXPECT_EQ(list.insert(handle, key), reference.insert(key).second);
        break;
      case 1:
        EXPECT_EQ(list.erase(handle, key), reference.erase(key) > 0);
        break;
      default:
        EXPECT_EQ(list.contains(handle, key), reference.contains(key));
    }
  }
  EXPECT_EQ(list.size_slow(handle), reference.size());
}

TEST(HarrisList, ConcurrentDisjointInserts) {
  EbrDomain domain;
  HarrisList<int> list(domain);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5'000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      EbrThreadHandle handle(domain);
      for (int i = 0; i < kPerThread; ++i) {
        EXPECT_TRUE(list.insert(handle, t * kPerThread + i));
      }
    });
  }
  for (auto& w : workers) w.join();
  EbrThreadHandle handle(domain);
  EXPECT_EQ(list.size_slow(handle),
            static_cast<std::size_t>(kThreads) * kPerThread);
  // Order is still globally sorted.
  int prev = -1;
  bool sorted = true;
  list.for_each(handle, [&](const int& k) {
    if (k <= prev) sorted = false;
    prev = k;
  });
  EXPECT_TRUE(sorted);
}

TEST(HarrisList, ConcurrentInsertsOfSameKeysExactlyOneWins) {
  EbrDomain domain;
  HarrisList<int> list(domain);
  constexpr int kThreads = 4;
  constexpr int kKeys = 2'000;
  std::atomic<int> successes{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      EbrThreadHandle handle(domain);
      for (int k = 0; k < kKeys; ++k) {
        if (list.insert(handle, k)) successes.fetch_add(1);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(successes.load(), kKeys);  // each key inserted exactly once
  EbrThreadHandle handle(domain);
  EXPECT_EQ(list.size_slow(handle), static_cast<std::size_t>(kKeys));
}

TEST(HarrisList, ConcurrentEraseExactlyOneWins) {
  EbrDomain domain;
  constexpr int kKeys = 2'000;
  HarrisList<int> list(domain);
  {
    EbrThreadHandle handle(domain);
    for (int k = 0; k < kKeys; ++k) list.insert(handle, k);
  }
  std::atomic<int> successes{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&] {
      EbrThreadHandle handle(domain);
      for (int k = 0; k < kKeys; ++k) {
        if (list.erase(handle, k)) successes.fetch_add(1);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(successes.load(), kKeys);
  EbrThreadHandle handle(domain);
  EXPECT_EQ(list.size_slow(handle), 0u);
}

TEST(HarrisList, ConcurrentMixedChurnMatchesPerKeyCounts) {
  // Each thread alternates insert/erase on a shared small key space; at
  // the end, every key's membership must equal (inserts - erases) % 2
  // bookkept per successful op via atomics.
  EbrDomain domain;
  HarrisList<int> list(domain);
  constexpr int kKeySpace = 64;
  std::vector<std::atomic<int>> net(kKeySpace);
  for (auto& a : net) a.store(0);
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&, t] {
      EbrThreadHandle handle(domain);
      Xoshiro256pp rng(100 + t);
      for (int i = 0; i < 30'000; ++i) {
        const int key = static_cast<int>(rng.uniform(kKeySpace));
        if (rng.bernoulli(0.5)) {
          if (list.insert(handle, key)) net[key].fetch_add(1);
        } else {
          if (list.erase(handle, key)) net[key].fetch_sub(1);
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  EbrThreadHandle handle(domain);
  for (int k = 0; k < kKeySpace; ++k) {
    const int n = net[k].load();
    ASSERT_TRUE(n == 0 || n == 1) << "key " << k << " net " << n;
    EXPECT_EQ(list.contains(handle, k), n == 1) << "key " << k;
  }
}

}  // namespace
}  // namespace pwf::lockfree
