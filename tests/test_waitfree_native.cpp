// Native wait-free universal construction (src/waitfree/object.hpp):
// exactly-once semantics under real threads, helping via stall
// injection, HelpStats telemetry, EBR reclamation, and — under
// PWF_HW_MUTANTS — the nohelp mutant observably violating the wait-free
// helping guarantee.
#include "waitfree/object.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "lockfree/ebr.hpp"

namespace pwf::waitfree {
namespace {

using lockfree::EbrDomain;
using lockfree::EbrThreadHandle;

using WfCounter = WaitFreeObject<CounterState>;
using WfStack = WaitFreeObject<StackState>;

TEST(WaitFreeNative, SingleThreadCounterSequential) {
  EbrDomain domain;
  WfCounter object(domain, CounterState{});
  EbrThreadHandle ebr(domain);
  WfCounter::Thread t(object, ebr);
  for (std::uint64_t i = 0; i < 1000; ++i) {
    EXPECT_EQ(object.apply(t, counter_fetch_inc, 0), i);
  }
  EXPECT_EQ(t.stats().ops, 1000u);
  EXPECT_EQ(t.stats().fast_ops, 1000u);
  EXPECT_EQ(t.stats().slow_entries, 0u);
  EXPECT_EQ(object.read(t, [](const CounterState& s) { return s.value; }),
            1000u);
}

// Aggressive knobs (announce after 2 losses, scan every other op) force
// real slow-path traffic; fetch-inc returning each value exactly once is
// the exactly-once invariant end to end. This is also the TSan target:
// it exercises install, helping, commit, and EBR retirement races.
TEST(WaitFreeNative, ConcurrentCounterExactlyOnce) {
  constexpr std::size_t kThreads = 4;
  constexpr std::uint64_t kOps = 5000;
  EbrDomain domain;
  WfConfig config;
  config.max_failures = 2;
  config.help_delay = 2;
  WfCounter object(domain, CounterState{}, config);

  std::vector<std::vector<std::uint64_t>> results(kThreads);
  HelpStats totals;
  {
    std::vector<std::thread> threads;
    std::vector<std::unique_ptr<HelpStats>> stats(kThreads);
    for (std::size_t i = 0; i < kThreads; ++i) {
      stats[i] = std::make_unique<HelpStats>();
      threads.emplace_back([&, i] {
        EbrThreadHandle ebr(domain);
        WfCounter::Thread t(object, ebr);
        results[i].reserve(kOps);
        for (std::uint64_t k = 0; k < kOps; ++k) {
          results[i].push_back(object.apply(t, counter_fetch_inc, 0));
        }
        *stats[i] = t.stats();
      });
    }
    for (auto& th : threads) th.join();
    for (const auto& s : stats) totals += *s;
  }

  std::set<std::uint64_t> seen;
  for (const auto& r : results) {
    for (std::uint64_t v : r) {
      EXPECT_TRUE(seen.insert(v).second) << "duplicate fetch-inc value " << v;
    }
  }
  EXPECT_EQ(seen.size(), kThreads * kOps);
  EXPECT_EQ(*seen.rbegin(), kThreads * kOps - 1);
  EXPECT_EQ(totals.ops, kThreads * kOps);
  EXPECT_EQ(totals.fast_ops + totals.slow_entries, totals.ops);

  EbrThreadHandle ebr(domain);
  WfCounter::Thread t(object, ebr);
  EXPECT_EQ(object.read(t, [](const CounterState& s) { return s.value; }),
            kThreads * kOps);
  // Nodes churned at every install; reclamation must actually run.
  EXPECT_GT(domain.freed_count(), 0u);
}

TEST(WaitFreeNative, ConcurrentStackPopsEachValueAtMostOnce) {
  constexpr std::size_t kThreads = 4;
  constexpr std::uint64_t kOps = 3000;
  EbrDomain domain;
  WfConfig config;
  config.max_failures = 2;
  config.help_delay = 2;
  WfStack object(domain, StackState{}, config);

  std::vector<std::vector<std::uint64_t>> popped(kThreads);
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      EbrThreadHandle ebr(domain);
      WfStack::Thread t(object, ebr);
      for (std::uint64_t k = 0; k < kOps; ++k) {
        if (k % 2 == 0) {
          object.apply(t, stack_push, ((i + 1ull) << 32) | k);
        } else {
          const std::uint64_t v = object.apply(t, stack_pop, 0);
          if (v != kEmptyResult) popped[i].push_back(v);
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  std::set<std::uint64_t> seen;
  for (const auto& r : popped) {
    for (std::uint64_t v : r) {
      EXPECT_TRUE(seen.insert(v).second) << "value popped twice: " << v;
      EXPECT_GE(v >> 32, 1u);
      EXPECT_LE(v >> 32, kThreads);  // provenance: some thread pushed it
    }
  }
  EXPECT_GE(seen.size(), 100u);
}

// Stall injection, fully deterministic on one OS thread: thread A
// announces and goes silent; thread B's routine operations (scanning
// every op) must complete A's operation on its behalf — the helping
// guarantee the slow path exists to provide.
TEST(WaitFreeNative, StalledAnnouncerIsHelpedByRoutineTraffic) {
  EbrDomain domain;
  WfConfig config;
  config.help_delay = 1;  // B scans before every operation
  WfCounter object(domain, CounterState{}, config);
  EbrThreadHandle ebr_a(domain);
  EbrThreadHandle ebr_b(domain);
  WfCounter::Thread a(object, ebr_a);
  WfCounter::Thread b(object, ebr_b);

  WfCounter::OpDesc* d = object.announce_only(a, counter_fetch_inc, 0);
  EXPECT_EQ(object.announced_stage(d), DescStage::kPrepared);

  // One ordinary operation by B: its pre-op scan finds and commits A's
  // descriptor before B's own op runs, so A's fetch-inc gets value 0 and
  // B's own gets 1.
  EXPECT_EQ(object.apply(b, counter_fetch_inc, 0), 1u);
  EXPECT_EQ(object.announced_stage(d), DescStage::kCommitted);
  EXPECT_EQ(b.stats().helps_given, 1u);

  EXPECT_EQ(object.finish_announced(a, d), 0u);
  EXPECT_EQ(a.stats().helped_by_other, 1u);
  EXPECT_EQ(object.read(a, [](const CounterState& s) { return s.value; }), 2u);
}

// The nohelp mutant (Helping = false): identical object, announcement
// array never scanned. The same stall scenario now starves the announcer
// without bound — B completes thousands of operations while A's announced
// operation sits prepared forever, which is precisely the wait-free step
// bound being violated (and what the sim-side starvation test and the
// PWF_HW_MUTANTS CI job catch).
TEST(WaitFreeNative, NohelpMutantNeverCompletesStalledAnnouncement) {
#ifndef PWF_HW_MUTANTS
  GTEST_SKIP() << "mutant builds disabled (configure with -DPWF_HW_MUTANTS=ON)";
#else
  using NohelpCounter = WaitFreeObject<CounterState, lockfree::NoStamp, false>;
  constexpr std::uint64_t kOps = 10000;
  EbrDomain domain;
  WfConfig config;
  config.help_delay = 1;  // would scan every op — compiled out by the mutant
  NohelpCounter object(domain, CounterState{}, config);
  EbrThreadHandle ebr_a(domain);
  EbrThreadHandle ebr_b(domain);
  NohelpCounter::Thread a(object, ebr_a);
  NohelpCounter::Thread b(object, ebr_b);

  NohelpCounter::OpDesc* d = object.announce_only(a, counter_fetch_inc, 0);
  for (std::uint64_t k = 0; k < kOps; ++k) {
    object.apply(b, counter_fetch_inc, 0);
  }
  // kOps completions elapsed; a wait-free construction bounds the wait by
  // a constant, so "still prepared after 10000 ops" is a caught violation.
  EXPECT_EQ(object.announced_stage(d), DescStage::kPrepared);
  EXPECT_EQ(b.stats().helps_given, 0u);

  // The stalled owner can still rescue itself (the mutant is lock-free):
  // its own drive applies the operation after B's kOps.
  EXPECT_EQ(object.finish_announced(a, d), kOps);
  EXPECT_EQ(a.stats().helped_by_other, 0u);
#endif
}

TEST(WaitFreeNative, HelpStatsMergeAndMetrics) {
  HelpStats a;
  a.ops = 1000000;
  a.fast_ops = 999000;
  a.slow_entries = 1000;
  a.fast_retries = 5000;
  a.helps_given = 400;
  a.helped_by_other = 600;
  a.help_scans = 250000;
  HelpStats b = a;
  b += a;
  EXPECT_EQ(b.ops, 2000000u);
  EXPECT_EQ(b.slow_entries, 2000u);
  EXPECT_DOUBLE_EQ(a.slow_per_mop(), 1000.0);

  const auto m = a.metrics("wf");
  EXPECT_DOUBLE_EQ(m.at("wf_ops"), 1000000.0);
  EXPECT_DOUBLE_EQ(m.at("wf_slow_entries"), 1000.0);
  EXPECT_DOUBLE_EQ(m.at("wf_slow_per_mop"), 1000.0);
  EXPECT_DOUBLE_EQ(m.at("wf_helped_by_other"), 600.0);
}

}  // namespace
}  // namespace pwf::waitfree
