// Tests for the special functions backing the Section 7 analysis.
#include "util/special.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace pwf {
namespace {

TEST(FaiHittingTime, BaseCase) {
  // Z(0) = 1 for every n.
  for (std::uint64_t n : {1, 2, 5, 100}) {
    EXPECT_DOUBLE_EQ(fai_hitting_time(0, n), 1.0);
  }
}

TEST(FaiHittingTime, SmallValuesByHand) {
  // n = 2: Z(1) = 1*Z(0)/2 + 1 = 1.5.
  EXPECT_DOUBLE_EQ(fai_hitting_time(1, 2), 1.5);
  // n = 3: Z(1) = 1/3 + 1 = 4/3; Z(2) = 2*(4/3)/3 + 1 = 17/9.
  EXPECT_NEAR(fai_hitting_time(1, 3), 4.0 / 3.0, 1e-12);
  EXPECT_NEAR(fai_hitting_time(2, 3), 17.0 / 9.0, 1e-12);
}

TEST(FaiHittingTime, RejectsBadArguments) {
  EXPECT_THROW(fai_hitting_time(0, 0), std::invalid_argument);
  EXPECT_THROW(fai_hitting_time(3, 3), std::invalid_argument);
  EXPECT_THROW(fai_hitting_time(10, 5), std::invalid_argument);
}

TEST(RamanujanQ, MatchesDirectSumSmall) {
  // Q(1) = 1. Q(2) = 1 + 2!/(0! * 4) = 1.5. Q(3) = 1 + 2/3 + 2/9 = 17/9.
  EXPECT_DOUBLE_EQ(ramanujan_q(1), 1.0);
  EXPECT_DOUBLE_EQ(ramanujan_q(2), 1.5);
  EXPECT_NEAR(ramanujan_q(3), 17.0 / 9.0, 1e-12);
}

TEST(RamanujanQ, EqualsHittingTimeRecurrence) {
  // The paper's remark after Lemma 12: Z(n-1) is the Ramanujan Q-function.
  for (std::uint64_t n : {1, 2, 3, 5, 10, 50, 200, 1000}) {
    EXPECT_NEAR(ramanujan_q(n), fai_hitting_time(n - 1, n),
                1e-9 * ramanujan_q(n))
        << "n = " << n;
  }
}

TEST(RamanujanQ, AsymptoticRatioApproachesOne) {
  // Q(n) = sqrt(pi n / 2)(1 + o(1)); the correction is -1/3 + O(1/sqrt n).
  double prev_err = 1e9;
  for (std::uint64_t n : {100, 1000, 10'000, 100'000}) {
    const double err =
        std::abs(ramanujan_q(n) / ramanujan_q_asymptotic(n) - 1.0);
    EXPECT_LT(err, prev_err);
    prev_err = err;
  }
  EXPECT_LT(prev_err, 0.002);
}

TEST(RamanujanQ, RejectsZero) {
  EXPECT_THROW(ramanujan_q(0), std::invalid_argument);
}

TEST(Birthday, MatchesKnown365) {
  // Expected throws until a birthday collision with 365 days is ~ 24.617.
  EXPECT_NEAR(birthday_expected_throws(365), 24.617, 0.01);
}

TEST(Birthday, TwoBins) {
  // With 2 bins: collision after 2 throws w.p. 1/2, after 3 w.p. 1/2:
  // expectation 2.5 = Q(2) + 1.
  EXPECT_DOUBLE_EQ(birthday_expected_throws(2), 2.5);
}

TEST(LogFactorial, SmallValues) {
  EXPECT_NEAR(log_factorial(0), 0.0, 1e-12);
  EXPECT_NEAR(log_factorial(1), 0.0, 1e-12);
  EXPECT_NEAR(log_factorial(5), std::log(120.0), 1e-10);
  EXPECT_NEAR(log_factorial(10), std::log(3628800.0), 1e-9);
}

TEST(LogBinomial, Identities) {
  EXPECT_NEAR(log_binomial(10, 0), 0.0, 1e-12);
  EXPECT_NEAR(log_binomial(10, 10), 0.0, 1e-12);
  EXPECT_NEAR(log_binomial(10, 3), std::log(120.0), 1e-9);
  EXPECT_NEAR(log_binomial(52, 5), std::log(2598960.0), 1e-8);
  EXPECT_THROW(log_binomial(3, 4), std::invalid_argument);
}

}  // namespace
}  // namespace pwf
