// Tests for the Markov chain substrate against chains with closed-form
// stationary distributions and hitting times.
#include "markov/chain.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace pwf::markov {
namespace {

MarkovChain two_state(double p, double q) {
  // 0 -> 1 with prob p, 1 -> 0 with prob q.
  MarkovChain chain(2);
  if (p > 0) chain.add_transition(0, 1, p);
  if (p < 1) chain.add_transition(0, 0, 1 - p);
  if (q > 0) chain.add_transition(1, 0, q);
  if (q < 1) chain.add_transition(1, 1, 1 - q);
  return chain;
}

TEST(MarkovChain, RejectsZeroStates) {
  EXPECT_THROW(MarkovChain(0), std::invalid_argument);
}

TEST(MarkovChain, AddTransitionValidation) {
  MarkovChain chain(2);
  EXPECT_THROW(chain.add_transition(2, 0, 0.5), std::out_of_range);
  EXPECT_THROW(chain.add_transition(0, 2, 0.5), std::out_of_range);
  EXPECT_THROW(chain.add_transition(0, 1, 0.0), std::invalid_argument);
  EXPECT_THROW(chain.add_transition(0, 1, -0.1), std::invalid_argument);
}

TEST(MarkovChain, AddTransitionAccumulates) {
  MarkovChain chain(2);
  chain.add_transition(0, 1, 0.3);
  chain.add_transition(0, 1, 0.7);
  EXPECT_DOUBLE_EQ(chain.transition_prob(0, 1), 1.0);
  EXPECT_EQ(chain.transitions_from(0).size(), 1u);
}

TEST(MarkovChain, ValidateCatchesBadRows) {
  MarkovChain chain(2);
  chain.add_transition(0, 1, 0.5);
  chain.add_transition(1, 0, 1.0);
  EXPECT_THROW(chain.validate(), std::logic_error);  // row 0 sums to 0.5
  chain.add_transition(0, 0, 0.5);
  EXPECT_NO_THROW(chain.validate());
}

TEST(MarkovChain, TwoStateStationary) {
  // Stationary of the (p, q) two-state chain is (q, p)/(p+q).
  const MarkovChain chain = two_state(0.3, 0.1);
  chain.validate();
  const auto pi = chain.stationary();
  EXPECT_NEAR(pi[0], 0.1 / 0.4, 1e-10);
  EXPECT_NEAR(pi[1], 0.3 / 0.4, 1e-10);
}

TEST(MarkovChain, PeriodicChainStationaryStillConverges) {
  // Pure 2-cycle has period 2; the lazy power iteration must still find
  // pi = (1/2, 1/2).
  MarkovChain chain(2);
  chain.add_transition(0, 1, 1.0);
  chain.add_transition(1, 0, 1.0);
  const auto pi = chain.stationary();
  EXPECT_NEAR(pi[0], 0.5, 1e-10);
  EXPECT_NEAR(pi[1], 0.5, 1e-10);
}

TEST(MarkovChain, RingStationaryIsUniform) {
  constexpr std::size_t kN = 7;
  MarkovChain chain(kN);
  for (std::size_t s = 0; s < kN; ++s) {
    chain.add_transition(s, (s + 1) % kN, 0.5);
    chain.add_transition(s, (s + kN - 1) % kN, 0.5);
  }
  const auto pi = chain.stationary();
  for (double mass : pi) EXPECT_NEAR(mass, 1.0 / kN, 1e-10);
}

TEST(MarkovChain, HittingTimesSimpleChain) {
  // 0 -> 1 with prob 1/3 (else self-loop); h(0 -> 1) = 3.
  MarkovChain chain(2);
  chain.add_transition(0, 1, 1.0 / 3.0);
  chain.add_transition(0, 0, 2.0 / 3.0);
  chain.add_transition(1, 1, 1.0);
  const auto h = chain.hitting_times(1);
  EXPECT_DOUBLE_EQ(h[1], 0.0);
  EXPECT_NEAR(h[0], 3.0, 1e-9);
}

TEST(MarkovChain, HittingTimesRandomWalkOnPath) {
  // Symmetric walk on {0..4} with reflecting ends; expected hitting time of
  // state 4 from 0 is 16 (= L^2 for L = 4).
  constexpr std::size_t kL = 4;
  MarkovChain chain(kL + 1);
  chain.add_transition(0, 1, 1.0);
  chain.add_transition(kL, kL - 1, 1.0);
  for (std::size_t s = 1; s < kL; ++s) {
    chain.add_transition(s, s - 1, 0.5);
    chain.add_transition(s, s + 1, 0.5);
  }
  const auto h = chain.hitting_times(kL);
  EXPECT_NEAR(h[0], 16.0, 1e-8);
  EXPECT_NEAR(h[1], 15.0, 1e-8);
}

TEST(MarkovChain, UnreachableTargetIsInfinity) {
  MarkovChain chain(3);
  chain.add_transition(0, 1, 1.0);
  chain.add_transition(1, 0, 1.0);
  chain.add_transition(2, 2, 1.0);
  const auto h = chain.hitting_times(2);
  EXPECT_TRUE(std::isinf(h[0]));
  EXPECT_TRUE(std::isinf(h[1]));
  EXPECT_EQ(h[2], 0.0);
}

TEST(MarkovChain, ReturnTimeMatchesOneOverPi) {
  // Theorem 1: h_jj = 1 / pi_j, checked on an asymmetric ergodic chain.
  MarkovChain chain(3);
  chain.add_transition(0, 0, 0.5);
  chain.add_transition(0, 1, 0.5);
  chain.add_transition(1, 2, 1.0);
  chain.add_transition(2, 0, 0.75);
  chain.add_transition(2, 1, 0.25);
  chain.validate();
  const auto pi = chain.stationary();
  for (std::size_t s = 0; s < 3; ++s) {
    EXPECT_NEAR(chain.return_time(s), 1.0 / pi[s], 1e-6) << "state " << s;
  }
}

TEST(MarkovChain, ErgodicFlowSumsToStationary) {
  // pi_j = sum_i Q_ij (Section 3).
  MarkovChain chain(3);
  chain.add_transition(0, 1, 0.9);
  chain.add_transition(0, 0, 0.1);
  chain.add_transition(1, 2, 0.6);
  chain.add_transition(1, 0, 0.4);
  chain.add_transition(2, 0, 1.0);
  const auto pi = chain.stationary();
  for (std::size_t j = 0; j < 3; ++j) {
    double inflow = 0.0;
    for (std::size_t i = 0; i < 3; ++i) {
      inflow += chain.ergodic_flow(i, j, pi);
    }
    EXPECT_NEAR(inflow, pi[j], 1e-10);
  }
}

TEST(MarkovChain, StepDistribution) {
  const MarkovChain chain = two_state(1.0, 1.0);
  std::vector<double> in{1.0, 0.0};
  std::vector<double> out(2);
  chain.step_distribution(in, out);
  EXPECT_DOUBLE_EQ(out[0], 0.0);
  EXPECT_DOUBLE_EQ(out[1], 1.0);
  chain.step_distribution(out, in);
  EXPECT_DOUBLE_EQ(in[0], 1.0);
}

TEST(MarkovChain, ExactSolverMatchesKnownStationary) {
  const MarkovChain chain = two_state(0.3, 0.1);
  const auto pi = chain.stationary_exact();
  EXPECT_NEAR(pi[0], 0.25, 1e-12);
  EXPECT_NEAR(pi[1], 0.75, 1e-12);
}

TEST(MarkovChain, ExactSolverAgreesWithPowerIteration) {
  // Cross-validate the two solvers on an asymmetric ergodic chain and on
  // a periodic one (where only the unique stationary vector, not
  // pointwise convergence, is defined).
  MarkovChain chain(4);
  chain.add_transition(0, 1, 0.6);
  chain.add_transition(0, 0, 0.4);
  chain.add_transition(1, 2, 0.9);
  chain.add_transition(1, 3, 0.1);
  chain.add_transition(2, 0, 1.0);
  chain.add_transition(3, 0, 0.5);
  chain.add_transition(3, 2, 0.5);
  const auto iterative = chain.stationary();
  const auto exact = chain.stationary_exact();
  for (std::size_t s = 0; s < 4; ++s) {
    EXPECT_NEAR(iterative[s], exact[s], 1e-9) << "state " << s;
  }

  MarkovChain cycle(3);
  cycle.add_transition(0, 1, 1.0);
  cycle.add_transition(1, 2, 1.0);
  cycle.add_transition(2, 0, 1.0);
  const auto cyc_exact = cycle.stationary_exact();
  for (double mass : cyc_exact) EXPECT_NEAR(mass, 1.0 / 3.0, 1e-12);
}

TEST(MarkovChain, ExactSolverRejectsReducibleChains) {
  MarkovChain chain(2);
  chain.add_transition(0, 0, 1.0);
  chain.add_transition(1, 1, 1.0);  // two closed classes: pi not unique
  EXPECT_THROW(chain.stationary_exact(), std::logic_error);
}

TEST(MarkovChain, StationaryIsFixedPoint) {
  const MarkovChain chain = two_state(0.25, 0.6);
  const auto pi = chain.stationary();
  std::vector<double> next(2);
  chain.step_distribution(pi, next);
  EXPECT_NEAR(next[0], pi[0], 1e-10);
  EXPECT_NEAR(next[1], pi[1], 1e-10);
}

}  // namespace
}  // namespace pwf::markov
