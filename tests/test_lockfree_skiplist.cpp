// The three-strategy skip-list map family (lockfree/skiplist.hpp): the
// same semantic suite runs over coarse, optimistic, and lock-free
// variants — the strategies must be observationally identical, they only
// differ in how they synchronize. Sequential semantics, ordering,
// cross-strategy agreement, and concurrent churn invariants (conservation
// under per-thread key partitions, quiescent consistency under
// overlapping churn).
#include "lockfree/skiplist.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#if defined(__SANITIZE_ADDRESS__)
#define PWF_LSAN_AVAILABLE 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define PWF_LSAN_AVAILABLE 1
#endif
#endif
#ifdef PWF_LSAN_AVAILABLE
#include <sanitizer/lsan_interface.h>
#endif

namespace pwf::lockfree {
namespace {

template <typename Map>
class SkipListMapTest : public ::testing::Test {};

using Strategies =
    ::testing::Types<CoarseSkipListMap<std::uint64_t, std::uint64_t>,
                     OptimisticSkipListMap<std::uint64_t, std::uint64_t>,
                     LockFreeSkipListMap<std::uint64_t, std::uint64_t>>;
TYPED_TEST_SUITE(SkipListMapTest, Strategies);

TYPED_TEST(SkipListMapTest, InsertContainsEraseGet) {
  EbrDomain domain;
  EbrThreadHandle handle(domain);
  TypeParam map(domain);
  EXPECT_FALSE(map.contains(handle, 5));
  EXPECT_TRUE(map.insert(handle, 5, 50));
  EXPECT_TRUE(map.contains(handle, 5));
  EXPECT_EQ(map.get(handle, 5), std::optional<std::uint64_t>(50));
  EXPECT_FALSE(map.insert(handle, 5, 99));  // duplicate: no overwrite
  EXPECT_EQ(map.get(handle, 5), std::optional<std::uint64_t>(50));
  EXPECT_TRUE(map.erase(handle, 5));
  EXPECT_FALSE(map.contains(handle, 5));
  EXPECT_FALSE(map.get(handle, 5).has_value());
  EXPECT_FALSE(map.erase(handle, 5));  // already gone
}

TYPED_TEST(SkipListMapTest, KeepsKeysSorted) {
  EbrDomain domain;
  EbrThreadHandle handle(domain);
  TypeParam map(domain);
  for (std::uint64_t k : {5u, 1u, 9u, 3u, 7u, 2u, 8u}) {
    EXPECT_TRUE(map.insert(handle, k, k * 10));
  }
  std::vector<std::uint64_t> keys;
  map.for_each(handle, [&](const std::uint64_t& k, const std::uint64_t& v) {
    EXPECT_EQ(v, k * 10);
    keys.push_back(k);
  });
  const std::vector<std::uint64_t> expected{1, 2, 3, 5, 7, 8, 9};
  EXPECT_EQ(keys, expected);
  EXPECT_EQ(map.size_slow(handle), expected.size());
}

TYPED_TEST(SkipListMapTest, EraseMiddleKeepsNeighbours) {
  EbrDomain domain;
  EbrThreadHandle handle(domain);
  TypeParam map(domain);
  for (std::uint64_t k : {1u, 2u, 3u}) map.insert(handle, k, k);
  EXPECT_TRUE(map.erase(handle, 2));
  EXPECT_TRUE(map.contains(handle, 1));
  EXPECT_FALSE(map.contains(handle, 2));
  EXPECT_TRUE(map.contains(handle, 3));
  EXPECT_EQ(map.size_slow(handle), 2u);
}

TYPED_TEST(SkipListMapTest, ManyKeysSurviveTallTowers) {
  // Enough keys that every tower height in the geometric distribution
  // shows up; exercises multi-level search and unlink paths.
  EbrDomain domain;
  EbrThreadHandle handle(domain);
  TypeParam map(domain);
  constexpr std::uint64_t kKeys = 2048;
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    EXPECT_TRUE(map.insert(handle, k * 7919 % kKeys * 2 + 1, k));
  }
  EXPECT_EQ(map.size_slow(handle), kKeys);
  // Erase every other key (by rank), keep the rest findable.
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    if (k % 2 == 0) {
      EXPECT_TRUE(map.erase(handle, k * 2 + 1));
    }
  }
  EXPECT_EQ(map.size_slow(handle), kKeys / 2);
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    EXPECT_EQ(map.contains(handle, k * 2 + 1), k % 2 != 0);
  }
}

// Concurrent churn on disjoint per-thread key ranges: every thread's
// inserts and erases land exactly as a single-threaded run would.
TYPED_TEST(SkipListMapTest, ConcurrentDisjointKeyRanges) {
  EbrDomain domain;
  TypeParam map(domain);
  constexpr std::size_t kThreads = 4;
  constexpr std::uint64_t kPerThread = 512;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      EbrThreadHandle handle(domain);
      const std::uint64_t base = t * kPerThread;
      for (std::uint64_t k = 0; k < kPerThread; ++k) {
        ASSERT_TRUE(map.insert(handle, base + k, t));
      }
      for (std::uint64_t k = 0; k < kPerThread; k += 2) {
        ASSERT_TRUE(map.erase(handle, base + k));
      }
    });
  }
  for (auto& th : threads) th.join();

  EbrThreadHandle handle(domain);
  EXPECT_EQ(map.size_slow(handle), kThreads * kPerThread / 2);
  for (std::size_t t = 0; t < kThreads; ++t) {
    for (std::uint64_t k = 0; k < kPerThread; ++k) {
      EXPECT_EQ(map.contains(handle, t * kPerThread + k), k % 2 != 0);
    }
  }
}

// Concurrent overlapping churn: no invariant on individual outcomes, but
// the quiescent state must be internally consistent (size agrees with
// per-key membership, traversal sees a sorted live set).
TYPED_TEST(SkipListMapTest, ConcurrentOverlappingChurn) {
  EbrDomain domain;
  TypeParam map(domain);
  constexpr std::size_t kThreads = 4;
  constexpr std::uint64_t kOps = 2000;
  constexpr std::uint64_t kKeySpace = 64;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      EbrThreadHandle handle(domain);
      std::uint64_t state = 0x9e3779b97f4a7c15ull * (t + 1);
      auto next = [&state] {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        return state;
      };
      for (std::uint64_t k = 0; k < kOps; ++k) {
        const std::uint64_t key = next() % kKeySpace;
        switch (next() % 3) {
          case 0: map.insert(handle, key, t); break;
          case 1: map.erase(handle, key); break;
          default: map.contains(handle, key); break;
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  EbrThreadHandle handle(domain);
  std::size_t present = 0;
  for (std::uint64_t key = 0; key < kKeySpace; ++key) {
    present += map.contains(handle, key) ? 1 : 0;
  }
  EXPECT_EQ(map.size_slow(handle), present);
  std::vector<std::uint64_t> keys;
  map.for_each(handle,
               [&](const std::uint64_t& k, const std::uint64_t&) {
                 keys.push_back(k);
               });
  for (std::size_t i = 1; i < keys.size(); ++i) EXPECT_LT(keys[i - 1], keys[i]);
  for (std::uint64_t key = 0; key < kKeySpace; ++key) map.erase(handle, key);
  EXPECT_EQ(map.size_slow(handle), 0u);
}

// The strategy selector maps tags to the right concrete types, and the
// default export is the lock-free variant.
TEST(SkipListStrategy, SelectorAndNames) {
  static_assert(
      std::is_same_v<SkipListMapFor<SyncStrategy::kCoarse, int, int>,
                     CoarseSkipListMap<int, int>>);
  static_assert(
      std::is_same_v<SkipListMapFor<SyncStrategy::kOptimistic, int, int>,
                     OptimisticSkipListMap<int, int>>);
  static_assert(
      std::is_same_v<SkipListMapFor<SyncStrategy::kLockFree, int, int>,
                     LockFreeSkipListMap<int, int>>);
  static_assert(std::is_same_v<SkipListMap<int, int>,
                               LockFreeSkipListMap<int, int>>);

  EXPECT_STREQ(sync_strategy_name(SyncStrategy::kCoarse), "coarse");
  EXPECT_STREQ(sync_strategy_name(SyncStrategy::kOptimistic), "optimistic");
  EXPECT_STREQ(sync_strategy_name(SyncStrategy::kLockFree), "lockfree");
  EXPECT_EQ(parse_sync_strategy("coarse"), SyncStrategy::kCoarse);
  EXPECT_EQ(parse_sync_strategy("lazy"), SyncStrategy::kOptimistic);
  EXPECT_EQ(parse_sync_strategy("lock-free"), SyncStrategy::kLockFree);
  EXPECT_EQ(parse_sync_strategy("bogus"), std::nullopt);
  for (const SyncStrategy s : kAllSyncStrategies) {
    EXPECT_EQ(parse_sync_strategy(sync_strategy_name(s)), s);
  }
}

// The novalidate mutant still has the right *sequential* semantics — its
// bug is a race (missing revalidation), so single-threaded use must be
// indistinguishable from the real optimistic map.
TEST(SkipListNovalidateMutant, SequentialSemanticsIntact) {
  using Mutant =
      OptimisticSkipListMap<std::uint64_t, std::uint64_t, NoStamp, mem::Epoch,
                            /*Validate=*/false>;
  // The mutant's erase leaks its victim by design (retiring it could
  // double-free when a stale writer re-links it — see the note in
  // skiplist_optimistic.hpp), so LSan must not count allocations made
  // by this test.
#ifdef PWF_LSAN_AVAILABLE
  __lsan_disable();
#endif
  EbrDomain domain;
  EbrThreadHandle handle(domain);
  Mutant map(domain);
  EXPECT_TRUE(map.insert(handle, 3, 30));
  EXPECT_TRUE(map.insert(handle, 1, 10));
  EXPECT_FALSE(map.insert(handle, 3, 99));
  EXPECT_TRUE(map.erase(handle, 3));
  EXPECT_FALSE(map.contains(handle, 3));
  EXPECT_TRUE(map.contains(handle, 1));
  EXPECT_EQ(map.size_slow(handle), 1u);
#ifdef PWF_LSAN_AVAILABLE
  __lsan_enable();
#endif
}

}  // namespace
}  // namespace pwf::lockfree
