// Property tests on randomly generated ergodic chains: the Markov-chain
// substrate must satisfy the textbook identities (Theorem 1, ergodic-flow
// balance, Lemma 1 collapse consistency) on arbitrary inputs, not just the
// paper's hand-built chains.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "markov/chain.hpp"
#include "markov/graph.hpp"
#include "markov/lifting.hpp"
#include "markov/mixing.hpp"
#include "util/rng.hpp"

namespace pwf::markov {
namespace {

/// Random ergodic chain: a ring backbone guarantees irreducibility, a
/// self-loop guarantees aperiodicity, plus random extra edges.
MarkovChain random_ergodic_chain(std::size_t states, Xoshiro256pp& rng) {
  MarkovChain chain(states);
  for (std::size_t s = 0; s < states; ++s) {
    // Raw weights: ring successor, self-loop, and up to 3 random targets.
    std::vector<std::pair<std::size_t, double>> edges;
    edges.emplace_back((s + 1) % states, 0.2 + rng.uniform_double());
    edges.emplace_back(s, 0.1 + rng.uniform_double());
    const std::size_t extras = 1 + rng.uniform(3);
    for (std::size_t e = 0; e < extras; ++e) {
      edges.emplace_back(rng.uniform(states), rng.uniform_double());
    }
    double total = 0.0;
    for (const auto& [to, w] : edges) total += w;
    for (const auto& [to, w] : edges) {
      chain.add_transition(s, to, w / total);
    }
  }
  return chain;
}

class RandomChains : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomChains, IsErgodicByConstruction) {
  Xoshiro256pp rng(GetParam());
  const MarkovChain chain = random_ergodic_chain(12, rng);
  chain.validate(1e-9);
  const auto report = analyze_ergodicity(chain);
  EXPECT_TRUE(report.ergodic);
}

TEST_P(RandomChains, StationaryIsNormalizedFixedPoint) {
  Xoshiro256pp rng(GetParam());
  const MarkovChain chain = random_ergodic_chain(15, rng);
  const auto pi = chain.stationary();
  EXPECT_NEAR(std::accumulate(pi.begin(), pi.end(), 0.0), 1.0, 1e-9);
  std::vector<double> next(pi.size());
  chain.step_distribution(pi, next);
  EXPECT_LT(total_variation(pi, next), 1e-9);
  for (double mass : pi) EXPECT_GT(mass, 0.0);
}

TEST_P(RandomChains, ExactAndIterativeSolversAgree) {
  Xoshiro256pp rng(GetParam());
  const MarkovChain chain = random_ergodic_chain(20, rng);
  const auto iterative = chain.stationary();
  const auto exact = chain.stationary_exact();
  for (std::size_t s = 0; s < chain.num_states(); ++s) {
    EXPECT_NEAR(iterative[s], exact[s], 1e-9) << "state " << s;
  }
}

TEST_P(RandomChains, ReturnTimeIsOneOverPi) {
  // Theorem 1 on arbitrary ergodic chains.
  Xoshiro256pp rng(GetParam());
  const MarkovChain chain = random_ergodic_chain(10, rng);
  const auto pi = chain.stationary();
  for (std::size_t s = 0; s < chain.num_states(); s += 3) {
    EXPECT_NEAR(chain.return_time(s), 1.0 / pi[s], 1e-5 / pi[s])
        << "state " << s;
  }
}

TEST_P(RandomChains, ErgodicFlowBalances) {
  // sum_i Q_ij == pi_j == sum_k Q_jk.
  Xoshiro256pp rng(GetParam());
  const MarkovChain chain = random_ergodic_chain(12, rng);
  const auto pi = chain.stationary();
  for (std::size_t j = 0; j < chain.num_states(); ++j) {
    double inflow = 0.0;
    for (std::size_t i = 0; i < chain.num_states(); ++i) {
      inflow += chain.ergodic_flow(i, j, pi);
    }
    EXPECT_NEAR(inflow, pi[j], 1e-10);
  }
}

TEST_P(RandomChains, CollapseAlwaysYieldsAVerifiedLifting) {
  // For ANY mapping f, collapsing through f produces the unique base chain
  // whose flows aggregate the lifted flows — so verify_lifting must accept
  // the (lifted, collapsed, f) triple... *when the collapsed chain is
  // Markov-consistent, which collapse() guarantees by construction on the
  // flow level (the stationary projection always matches; Lemma 1).
  Xoshiro256pp rng(GetParam());
  const MarkovChain chain = random_ergodic_chain(12, rng);
  std::vector<std::size_t> f(12);
  for (auto& v : f) v = rng.uniform(4);
  // Ensure surjectivity onto {0..3} so the base chain has no dead states.
  for (std::size_t k = 0; k < 4; ++k) f[k] = k;
  const MarkovChain base = collapse(chain, f, 4);
  base.validate(1e-9);
  const auto check = verify_lifting(chain, base, f, 1e-8);
  EXPECT_LT(check.max_flow_error, 1e-8);
  EXPECT_LT(check.max_stationary_error, 1e-8);
}

TEST_P(RandomChains, HittingTimesSatisfyOneStepEquations) {
  Xoshiro256pp rng(GetParam());
  const MarkovChain chain = random_ergodic_chain(10, rng);
  const std::size_t target = rng.uniform(10);
  const auto h = chain.hitting_times(target);
  for (std::size_t s = 0; s < chain.num_states(); ++s) {
    if (s == target) {
      EXPECT_EQ(h[s], 0.0);
      continue;
    }
    double expect = 1.0;
    for (const auto& t : chain.transitions_from(s)) {
      if (t.to != target) expect += t.prob * h[t.to];
    }
    EXPECT_NEAR(h[s], expect, 1e-7) << "state " << s;
  }
}

TEST_P(RandomChains, EmpiricalOccupationMatchesStationary) {
  Xoshiro256pp rng(GetParam());
  const MarkovChain chain = random_ergodic_chain(8, rng);
  const auto pi = chain.stationary();
  Xoshiro256pp walk_rng(GetParam() ^ 0xabcdef);
  const auto traj = sample_trajectory(chain, 0, 300'000, walk_rng);
  std::vector<double> freq(8, 0.0);
  for (std::size_t s : traj) ++freq[s];
  for (double& f : freq) f /= static_cast<double>(traj.size());
  EXPECT_LT(total_variation(freq, pi), 0.01);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomChains,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55));

}  // namespace
}  // namespace pwf::markov
