// Invariant-TSC timestamping (src/util/tsc): source selection, the
// per-thread monotonic repair, the cross-thread offset calibration that
// produces the capture layer's skew bound epsilon, and the steady_clock
// fallback path. These properties back the soundness argument in
// DESIGN.md §6a — if any of them break, epsilon-widened capture
// intervals can stop containing their linearization points.
#include "util/tsc.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "util/latch.hpp"

namespace pwf::util {
namespace {

// Restores auto-detection even when a test body throws.
struct SourceOverrideGuard {
  explicit SourceOverrideGuard(TscSource source) {
    set_tsc_source_for_testing(source);
  }
  ~SourceOverrideGuard() { set_tsc_source_for_testing(std::nullopt); }
};

TEST(TscSourceTest, NamesAreDistinctAndNonEmpty) {
  const char* rdtsc = tsc_source_name(TscSource::kRdtsc);
  const char* cntvct = tsc_source_name(TscSource::kCntvct);
  const char* steady = tsc_source_name(TscSource::kSteadyClock);
  ASSERT_NE(rdtsc, nullptr);
  ASSERT_NE(cntvct, nullptr);
  ASSERT_NE(steady, nullptr);
  EXPECT_STRNE(rdtsc, cntvct);
  EXPECT_STRNE(rdtsc, steady);
  EXPECT_STRNE(cntvct, steady);
}

TEST(TscSourceTest, OverrideRoundTrips) {
  {
    SourceOverrideGuard guard(TscSource::kSteadyClock);
    EXPECT_EQ(tsc_source(), TscSource::kSteadyClock);
    // The fallback is globally monotonic but not an invariant hardware
    // counter.
    EXPECT_FALSE(invariant_tsc());
  }
  // Auto-detection is restored; whatever it picks, reads must advance.
  const std::uint64_t a = tsc_monotonic();
  const std::uint64_t b = tsc_monotonic();
  EXPECT_LT(a, b);
}

TEST(TscMonotonicTest, StrictlyIncreasingOnOneThread) {
  std::uint64_t prev = tsc_monotonic();
  for (int i = 0; i < 100'000; ++i) {
    const std::uint64_t now = tsc_monotonic();
    ASSERT_LT(prev, now) << "iteration " << i;
    prev = now;
  }
}

TEST(TscMonotonicTest, StrictlyIncreasingOnEveryThread) {
  constexpr std::size_t kThreads = 4;
  constexpr int kReads = 20'000;
  StartLatch latch(kThreads);
  std::vector<int> failures(kThreads, 0);
  std::vector<std::thread> pool;
  for (std::size_t t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      latch.arrive_and_wait();
      std::uint64_t prev = tsc_monotonic();
      for (int i = 0; i < kReads; ++i) {
        const std::uint64_t now = tsc_monotonic();
        if (now <= prev) ++failures[t];
        prev = now;
      }
    });
  }
  for (std::thread& th : pool) th.join();
  for (std::size_t t = 0; t < kThreads; ++t) {
    EXPECT_EQ(failures[t], 0) << "thread " << t;
  }
}

TEST(TscMonotonicTest, StrictUnderSteadyClockFallback) {
  // steady_clock can return the same ns twice back-to-back; the repair
  // must still produce strictly increasing stamps.
  SourceOverrideGuard guard(TscSource::kSteadyClock);
  std::uint64_t prev = tsc_monotonic();
  for (int i = 0; i < 50'000; ++i) {
    const std::uint64_t now = tsc_monotonic();
    ASSERT_LT(prev, now) << "iteration " << i;
    prev = now;
  }
}

TEST(TscCalibrationTest, BoundsAreConsistent) {
  const TscCalibration cal = calibrate_tsc(3);
  EXPECT_EQ(cal.threads, 3u);
  EXPECT_GT(cal.rounds, 0u);
  ASSERT_EQ(cal.offset_lo.size(), 3u);
  ASSERT_EQ(cal.offset_hi.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    // Intersection (or the drift-envelope fallback) always yields a
    // non-empty interval containing the probe's offset.
    EXPECT_LE(cal.offset_lo[i], cal.offset_hi[i]) << "probe " << i;
  }
  // Epsilon is the widening bound the capture layer applies per side:
  // never zero, never below the clock's own read granularity.
  EXPECT_GE(cal.epsilon, 1u);
  EXPECT_GE(cal.epsilon, cal.read_granularity);
  if (!cal.serial_host) {
    // Through the master frame, any two probes differ by at most
    // 2 * max_abs_offset; epsilon must cover that plus granularity.
    EXPECT_GE(cal.epsilon, 2 * cal.max_abs_offset);
  }
  EXPECT_GT(cal.ticks_per_us, 0.0);
  EXPECT_GT(cal.min_round_trip, 0u);
  EXPECT_EQ(cal.serial_host, available_cpus() == 1);
}

TEST(TscCalibrationTest, FallbackSourceIsReportedAndStillCalibrates) {
  SourceOverrideGuard guard(TscSource::kSteadyClock);
  const TscCalibration cal = calibrate_tsc(2, 16);
  EXPECT_EQ(cal.source, TscSource::kSteadyClock);
  EXPECT_TRUE(cal.fallback);
  EXPECT_GE(cal.epsilon, 1u);
  EXPECT_GT(cal.ticks_per_us, 0.0);
}

TEST(TscHostTest, AvailableCpusIsNeverZero) {
  EXPECT_GE(available_cpus(), 1u);
}

TEST(TscHostTest, PinningIsBestEffort) {
  // Must not crash whatever the host supports; on Linux with an
  // affinity mask, pinning to allowed CPU 0 should succeed.
  const bool pinned = pin_this_thread(0);
#ifdef __linux__
  EXPECT_TRUE(pinned);
#else
  (void)pinned;
#endif
  // Indices wrap modulo the affinity set instead of failing.
  (void)pin_this_thread(available_cpus() + 3);
}

TEST(StartLatchTest, ReleasesAllWaitersTogether) {
  constexpr std::size_t kThreads = 8;
  StartLatch latch(kThreads);
  std::atomic<std::size_t> seen_open_at_release{0};
  std::vector<std::thread> pool;
  for (std::size_t t = 0; t < kThreads; ++t) {
    pool.emplace_back([&] {
      latch.arrive_and_wait();
      // Every waiter observes the latch open once released.
      if (latch.open()) seen_open_at_release.fetch_add(1);
    });
  }
  for (std::thread& th : pool) th.join();
  EXPECT_EQ(seen_open_at_release.load(), kThreads);
  EXPECT_TRUE(latch.open());
}

}  // namespace
}  // namespace pwf::util
