// Tests for the exact per-operation latency law: its mean must equal the
// renewal-theoretic W_0 = n*W (Lemma 7), its shape must match simulation,
// and degenerate cases must be exact.
#include "markov/op_latency.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <numeric>

#include "core/algorithms.hpp"
#include "core/latency.hpp"
#include "core/simulation.hpp"
#include "markov/builders.hpp"

namespace pwf::markov {
namespace {

TEST(OpLatencyLaw, SoloScanValidateIsDeterministicTwo) {
  // n = 1: read, CAS, repeat — every operation takes exactly 2 steps.
  const BuiltChain ind = build_scan_validate_individual_chain(1);
  const OpLatencyLaw law = op_latency_distribution(ind, 16);
  EXPECT_NEAR(law.pmf[2], 1.0, 1e-12);
  EXPECT_NEAR(law.mean, 2.0, 1e-12);
  EXPECT_NEAR(law.truncated, 0.0, 1e-12);
}

TEST(OpLatencyLaw, SoloFaiIsDeterministicOne) {
  const BuiltChain ind = build_fai_individual_chain(1);
  const OpLatencyLaw law = op_latency_distribution(ind, 8);
  EXPECT_NEAR(law.pmf[1], 1.0, 1e-12);
  EXPECT_NEAR(law.mean, 1.0, 1e-12);
}

TEST(OpLatencyLaw, MeanEqualsIndividualLatency) {
  // Renewal theory: E[latency] == W_0 == n * W (Lemma 7), for each of the
  // paper's algorithm classes.
  struct Case {
    BuiltChain built;
    std::size_t horizon;
  };
  for (std::size_t n : {2, 3, 4}) {
    {
      const BuiltChain ind = build_scan_validate_individual_chain(n);
      const double wi = individual_latency_p0(ind);
      const OpLatencyLaw law =
          op_latency_distribution(ind, static_cast<std::size_t>(200 * wi));
      EXPECT_NEAR(law.mean, wi, 0.01 * wi) << "scan-validate n=" << n;
      EXPECT_LT(law.truncated, 1e-6);
    }
    {
      const BuiltChain ind = build_fai_individual_chain(n);
      const double wi = individual_latency_p0(ind);
      const OpLatencyLaw law =
          op_latency_distribution(ind, static_cast<std::size_t>(200 * wi));
      EXPECT_NEAR(law.mean, wi, 0.01 * wi) << "fai n=" << n;
    }
  }
}

TEST(OpLatencyLaw, PmfSumsToOne) {
  const BuiltChain ind = build_scan_validate_individual_chain(3);
  const OpLatencyLaw law = op_latency_distribution(ind, 3'000);
  const double total =
      std::accumulate(law.pmf.begin(), law.pmf.end(), law.truncated);
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(law.pmf[0], 0.0);
}

TEST(OpLatencyLaw, TailIsMonotone) {
  const BuiltChain ind = build_fai_individual_chain(4);
  const OpLatencyLaw law = op_latency_distribution(ind, 2'000);
  for (std::size_t t = 1; t < 100; ++t) {
    EXPECT_LE(law.tail(t), law.tail(t - 1) + 1e-12);
  }
  EXPECT_LT(law.tail(500), 1e-9);
}

TEST(OpLatencyLaw, MatchesSimulatedDistribution) {
  // The exact law and the simulated per-op latency histogram agree.
  constexpr std::size_t kN = 4;
  const BuiltChain ind = build_scan_validate_individual_chain(kN);
  const OpLatencyLaw law = op_latency_distribution(ind, 2'000);

  core::Simulation::Options opts;
  opts.num_registers = core::ScuAlgorithm::registers_required(kN, 1);
  opts.seed = 12345;
  core::Simulation sim(kN, core::scan_validate_factory(),
                       std::make_unique<core::UniformScheduler>(), opts);
  core::LatencyDistributionObserver observer(kN, 2'000.0, 2'000);
  sim.set_observer(&observer);
  sim.run(50'000);  // warmup within observer is negligible vs 2M samples
  sim.set_observer(&observer);
  sim.run(2'000'000);

  // Compare P[latency == t] for the head of the distribution.
  const double total = static_cast<double>(observer.histogram().total());
  for (std::size_t t = 1; t <= 60; ++t) {
    const double simulated =
        static_cast<double>(observer.histogram().bucket_count(t)) / total;
    EXPECT_NEAR(simulated, law.pmf[t], 0.004) << "t = " << t;
  }
  EXPECT_NEAR(observer.stats().mean(), law.mean, 0.02 * law.mean);
}

TEST(OpLatencyLaw, SystemChainIsRejected) {
  const BuiltChain sys = build_scan_validate_system_chain(3);
  EXPECT_THROW(op_latency_distribution(sys, 100), std::invalid_argument);
}

}  // namespace
}  // namespace pwf::markov
