// The wait-free universal construction's step-machine twin
// (src/waitfree/sim_object.*): descriptor state-machine unit tests under
// forced interleavings, linearizability of wrapped-counter / wrapped-stack
// histories via Session::check, schedule record/replay determinism, and
// the starvation experiment that separates helping from the nohelp
// mutant.
//
// The forced-interleaving tests drive WaitFreeSim instances by hand, one
// process at a time, against a shared register file — the tightest
// possible schedule control. The script-based tests force interleavings
// through the checker's own ReplayScheduler, the same mechanism witness
// replay uses.
#include "waitfree/sim_object.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <set>
#include <vector>

#include "check/history.hpp"
#include "check/session.hpp"
#include "check/trace.hpp"
#include "check/workloads.hpp"
#include "core/memory.hpp"
#include "waitfree/object.hpp"  // kEmptyResult

namespace pwf::waitfree {
namespace {

using check::LinVerdict;
using core::SharedMemory;
using core::Value;

SharedMemory make_memory(std::size_t n, const SimWfConfig& cfg) {
  SharedMemory mem(WaitFreeSim::registers_required(n, cfg));
  for (const auto& [r, v] : WaitFreeSim::initial_values(n, cfg)) {
    mem.poke(r, v);
  }
  return mem;
}

/// Steps `p` until `pred()` holds, at most `budget` steps; returns the
/// number of steps taken, or -1 if the budget ran out first.
template <typename Pred>
int step_until(WaitFreeSim& p, SharedMemory& mem, Pred pred, int budget) {
  for (int i = 0; i <= budget; ++i) {
    if (pred()) return i;
    if (i == budget) break;
    p.step(mem);
  }
  return -1;
}

TEST(WaitFreeSim, FastPathSoloNeverAnnounces) {
  SimWfConfig cfg;
  cfg.kind = SimWfKind::kCounter;
  cfg.max_failures = 4;
  cfg.help_delay = 4;
  SharedMemory mem = make_memory(1, cfg);
  WaitFreeSim p(0, 1, cfg);
  for (int i = 0; i < 300; ++i) p.step(mem);
  EXPECT_GE(p.stats().ops, 40u);
  EXPECT_EQ(p.stats().fast_ops, p.stats().ops);
  EXPECT_EQ(p.stats().slow_entries, 0u);
  EXPECT_EQ(p.stats().fast_retries, 0u);
  EXPECT_FALSE(p.in_slow_path());
  // Uncontended counter op: [scan +] read OBJ, read payload, write
  // candidate, CAS — the wait-free bound is tiny here.
  EXPECT_LE(p.max_own_steps(), 6u);
}

// The descriptor lifecycle under a fully scripted interleaving: P0 loses
// its only allowed fast-path CAS to P1, prepares and announces a
// descriptor, P1's announcement scan commits it while P0 takes no steps,
// and P0's resumed cleanup observes prepared -> committed -> cleaned with
// the helper correctly attributed.
TEST(WaitFreeSim, ForcedLossDescriptorLifecycle) {
  SimWfConfig layout;  // layout-affecting fields shared by both processes
  layout.kind = SimWfKind::kCounter;

  SimWfConfig p0cfg = layout;
  p0cfg.max_failures = 1;   // announce after a single CAS loss
  p0cfg.help_delay = 100;   // and never scan within this test
  SimWfConfig p1cfg = layout;
  p1cfg.max_failures = 100;  // P1 stays on the fast path
  p1cfg.help_delay = 1;      // and scans before every operation

  const std::size_t n = 2;
  SharedMemory mem = make_memory(n, layout);
  WaitFreeSim p0(0, n, p0cfg);
  WaitFreeSim p1(1, n, p1cfg);

  // Register-layout landmarks (documented in sim_object.hpp): announce
  // slots at 1+pid, P0's first descriptor at the desc-arena base.
  const std::size_t kAnnounceP0 = 1;
  const std::size_t kDescP0 = 1 + n;

  // P0 walks its fast path up to (not including) the install CAS:
  // read OBJ, read payload, write candidate.
  for (int i = 0; i < 3; ++i) p0.step(mem);
  EXPECT_FALSE(p0.in_slow_path());

  // P1 completes one full fast-path operation, invalidating P0's snapshot.
  ASSERT_GE(step_until(p1, mem, [&] { return p1.stats().ops == 1; }, 10), 0);

  // P0's CAS now loses; max_failures = 1 sends it to the slow path.
  p0.step(mem);
  EXPECT_TRUE(p0.in_slow_path());
  EXPECT_EQ(p0.own_desc_stage(mem), DescStage::kFree);  // nothing written yet
  EXPECT_EQ(p0.stats().fast_retries, 1u);

  // Prepare: op, arg, phase writes — still not prepared, still unpublished.
  for (int i = 0; i < 3; ++i) p0.step(mem);
  EXPECT_EQ(p0.own_desc_stage(mem), DescStage::kFree);
  EXPECT_EQ(mem.peek(kAnnounceP0), 0u);

  // The stage write flips the descriptor to prepared...
  p0.step(mem);
  EXPECT_EQ(p0.own_desc_stage(mem), DescStage::kPrepared);
  EXPECT_EQ(mem.peek(kAnnounceP0), 0u);  // ...but it is not yet announced.

  // The announce write publishes it.
  p0.step(mem);
  EXPECT_EQ(mem.peek(kAnnounceP0), static_cast<Value>(kDescP0));
  EXPECT_EQ(p0.stats().slow_entries, 1u);

  // P1 alone — P0 frozen — finds the announcement in its pre-op scan and
  // drives the descriptor to committed.
  ASSERT_GE(step_until(
                p1, mem,
                [&] { return p0.own_desc_stage(mem) == DescStage::kCommitted; },
                60),
            0);
  EXPECT_GE(p1.stats().helps_given, 1u);
  // The single commit CAS attributed the committer: P1 is pid 1.
  EXPECT_EQ(committer_plus_1_of(mem.peek(kDescP0)), 2u);

  // P0 resumes: it observes the commit, reads its result, withdraws the
  // announcement, and marks the descriptor cleaned.
  ASSERT_GE(step_until(p0, mem, [&] { return p0.stats().ops == 1; }, 40), 0);
  EXPECT_EQ(stage_of(mem.peek(kDescP0)), DescStage::kCleaned);
  EXPECT_EQ(committer_plus_1_of(mem.peek(kDescP0)), 2u);  // attribution kept
  EXPECT_EQ(mem.peek(kAnnounceP0), 0u);                   // withdrawn
  EXPECT_EQ(p0.stats().helped_by_other, 1u);
  EXPECT_EQ(p0.stats().fast_ops, 0u);
  EXPECT_FALSE(p0.in_slow_path());

  // Exactly-once through the abstract state: three installs happened (two
  // P1 fast ops, then P0's helped op — P1's third own op is still
  // pending), so the counter payload behind the current block reads 3.
  const Value obj = mem.peek(0);
  EXPECT_EQ(obj >> 33, 3u);                            // seq
  EXPECT_EQ(mem.peek(((obj >> 1) & 0xffffffffu) + 2), 3u);  // payload
}

// With no helper taking steps, the announcer drives its own descriptor:
// install, commit (self-attributed), cleanup.
TEST(WaitFreeSim, OwnerDrivesOwnDescriptorWithoutHelpers) {
  SimWfConfig layout;
  layout.kind = SimWfKind::kCounter;
  SimWfConfig p0cfg = layout;
  p0cfg.max_failures = 1;
  p0cfg.help_delay = 100;
  SimWfConfig p1cfg = layout;
  p1cfg.max_failures = 100;
  p1cfg.help_delay = 100;

  const std::size_t n = 2;
  SharedMemory mem = make_memory(n, layout);
  WaitFreeSim p0(0, n, p0cfg);
  WaitFreeSim p1(1, n, p1cfg);
  const std::size_t kDescP0 = 1 + n;

  for (int i = 0; i < 3; ++i) p0.step(mem);                  // up to the CAS
  ASSERT_GE(step_until(p1, mem, [&] { return p1.stats().ops == 1; }, 10), 0);
  ASSERT_GE(step_until(p0, mem, [&] { return p0.stats().ops == 1; }, 60), 0);

  // Committed and cleaned by the owner itself: committer is pid 0.
  EXPECT_EQ(stage_of(mem.peek(kDescP0)), DescStage::kCleaned);
  EXPECT_EQ(committer_plus_1_of(mem.peek(kDescP0)), 1u);
  EXPECT_EQ(p0.stats().slow_entries, 1u);
  EXPECT_EQ(p0.stats().helped_by_other, 0u);
  EXPECT_EQ(p0.stats().helps_given, 0u);  // own descriptor is not a "help"
}

// The experiment the subsystem exists for, in miniature: an adversarial
// schedule starves P0 (one step in fifty). With helping, the other
// processes' announcement scans complete P0's operations and its own-step
// cost per op stays bounded; with helping compiled out (the nohelp
// mutant) P0 announces and then starves forever — its in-flight step
// count grows without bound while system-wide throughput stays high
// (lock-free, not wait-free). This is the behavioural signature the
// mutant is "caught" by: linearizability alone cannot see it.
TEST(WaitFreeSim, HelpingRescuesStarvedVictimButNohelpDoesNot) {
  const std::size_t n = 3;
  const std::uint64_t kSteps = 20000;
  auto starving_schedule = [](std::uint64_t tau) -> std::size_t {
    return tau % 50 == 0 ? 0 : 1 + (tau % 2);
  };

  auto run = [&](bool helping) {
    SimWfConfig cfg;
    cfg.kind = SimWfKind::kCounter;
    cfg.max_failures = 2;
    cfg.help_delay = 2;
    cfg.helping = helping;
    cfg.max_descs_per_process = 2048;  // contention makes slow entries common
    SharedMemory mem = make_memory(n, cfg);
    std::vector<std::unique_ptr<WaitFreeSim>> procs;
    for (std::size_t p = 0; p < n; ++p) {
      procs.push_back(std::make_unique<WaitFreeSim>(p, n, cfg));
    }
    for (std::uint64_t tau = 0; tau < kSteps; ++tau) {
      procs[starving_schedule(tau)]->step(mem);
    }
    return std::make_pair(std::move(procs), std::move(mem));
  };

  auto [helped, helped_mem] = run(true);
  auto [nohelp, nohelp_mem] = run(false);

  // Both runs keep the *system* busy: the non-starved processes complete
  // hundreds of operations either way.
  EXPECT_GE(helped[1]->stats().ops + helped[2]->stats().ops, 200u);
  EXPECT_GE(nohelp[1]->stats().ops + nohelp[2]->stats().ops, 200u);

  // With helping the victim makes real progress through the slow path...
  EXPECT_GE(helped[0]->stats().ops, 4u);
  EXPECT_GE(helped[0]->stats().slow_entries, 1u);
  EXPECT_GE(helped[0]->stats().helped_by_other, 1u);
  EXPECT_GE(helped[1]->stats().helps_given + helped[2]->stats().helps_given,
            1u);
  // ...within a bounded number of its own steps per operation.
  EXPECT_LE(helped[0]->max_own_steps(), 150u);

  // The nohelp mutant: the victim announces and then never completes —
  // its descriptor stays prepared and its in-flight own-step count blows
  // through any bound the helped run respects.
  EXPECT_LE(nohelp[0]->stats().ops, 1u);
  EXPECT_TRUE(nohelp[0]->in_slow_path());
  EXPECT_EQ(nohelp[0]->own_desc_stage(nohelp_mem), DescStage::kPrepared);
  EXPECT_GE(nohelp[0]->steps_in_flight(), 200u);
  EXPECT_GT(nohelp[0]->steps_in_flight(), helped[0]->max_own_steps());
}

// Forced interleavings through the checker's own replay machinery: a
// hand-written pid script (long solo runs, tight alternation, bursts)
// drives the registry workload via ReplayScheduler, and the captured
// history must check linearizable.
check::RunOutcome replay_script(const std::string& workload_name,
                                std::size_t n,
                                const std::vector<std::uint32_t>& script) {
  check::ScheduleTrace trace;
  trace.workload = workload_name;
  trace.n = static_cast<std::uint32_t>(n);
  trace.seed = 42;
  trace.steps = script;
  check::Session session(check::find_workload(workload_name));
  return session.replay(trace, /*strict=*/true);
}

std::vector<std::uint32_t> handcrafted_script(std::size_t n) {
  std::vector<std::uint32_t> script;
  // Solo prefix: P0 builds a lead.
  for (int i = 0; i < 40; ++i) script.push_back(0);
  // Tight alternation over everyone: maximal CAS contention.
  for (int i = 0; i < 300; ++i) {
    script.push_back(static_cast<std::uint32_t>(i % n));
  }
  // Bursts: each process gets a long solo run (descriptor self-drive).
  for (std::uint32_t p = 0; p < n; ++p) {
    for (int i = 0; i < 60; ++i) script.push_back(p);
  }
  // Starve P0 at the tail (others must help it across the line).
  for (int i = 0; i < 200; ++i) {
    script.push_back(i % 25 == 0 ? 0u
                                 : 1u + static_cast<std::uint32_t>(i) %
                                            static_cast<std::uint32_t>(n - 1));
  }
  return script;
}

TEST(WaitFreeSim, ReplayScriptWrappedCounterLinearizable) {
  const auto out = replay_script("wf-counter", 3, handcrafted_script(3));
  EXPECT_EQ(out.lin.verdict, LinVerdict::kLinearizable);
  EXPECT_GE(out.history.num_completed(), 20u);
}

TEST(WaitFreeSim, ReplayScriptWrappedStackLinearizable) {
  const auto out = replay_script("wf-stack", 3, handcrafted_script(3));
  EXPECT_EQ(out.lin.verdict, LinVerdict::kLinearizable);
  EXPECT_GE(out.history.num_completed(), 20u);
}

// Session record/replay across every scheduler variant: recorded
// wrapped-structure histories are linearizable and the trace replays
// bit-identically (fingerprint-certified) — the satellite's
// "Session::check over wrapped-counter and wrapped-stack histories".
TEST(WaitFreeSim, SessionRecordReplayAllVariants) {
  for (const char* name : {"wf-counter", "wf-stack"}) {
    check::Session session(check::find_workload(name));
    for (std::size_t variant = 0; variant < 4; ++variant) {
      const auto recorded =
          session.record(3, 90 + variant, 400, variant, /*crashes=*/{});
      EXPECT_EQ(recorded.lin.verdict, LinVerdict::kLinearizable)
          << name << " variant " << variant;
      const auto replayed = session.replay(recorded.trace, /*strict=*/true);
      EXPECT_EQ(replayed.trace.fingerprint(), recorded.trace.fingerprint());
      EXPECT_EQ(replayed.history.fingerprint(), recorded.history.fingerprint())
          << name << " variant " << variant;
    }
  }
}

// Crashing a process mid-announcement must leave the history checkable:
// the crashed owner's operation stays pending (possibly completed on its
// behalf by a helper), which the checker models soundly.
TEST(WaitFreeSim, SessionRecordWithCrashStillLinearizable) {
  check::Session session(check::find_workload("wf-counter"));
  const std::vector<check::CrashEvent> crashes = {{120, 1}};
  const auto recorded = session.record(3, 17, 400, /*variant=*/3, crashes);
  EXPECT_EQ(recorded.lin.verdict, LinVerdict::kLinearizable);
  const auto replayed = session.replay(recorded.trace, /*strict=*/true);
  EXPECT_EQ(replayed.history.fingerprint(), recorded.history.fingerprint());
  EXPECT_EQ(replayed.crash_log, recorded.crash_log);
}

// Exactly-once through the values: every popped value was pushed by a
// real process and no value is popped twice, even under a schedule that
// forces heavy helping (duplicate descriptor application would surface
// here as a repeated pop).
TEST(WaitFreeSim, StackValuesPoppedAtMostOnceUnderStarvation) {
  const std::size_t n = 3;
  SimWfConfig cfg;
  cfg.kind = SimWfKind::kStack;
  cfg.max_failures = 2;
  cfg.help_delay = 2;
  cfg.max_descs_per_process = 2048;
  SharedMemory mem = make_memory(n, cfg);
  std::vector<std::unique_ptr<WaitFreeSim>> procs;
  for (std::size_t p = 0; p < n; ++p) {
    procs.push_back(std::make_unique<WaitFreeSim>(p, n, cfg));
  }
  for (std::uint64_t tau = 0; tau < 12000; ++tau) {
    procs[tau % 40 == 0 ? 0 : 1 + (tau % 2)]->step(mem);
  }
  std::set<Value> seen;
  std::uint64_t pops = 0;
  for (const auto& p : procs) {
    pops += p->pops();
    for (Value v : p->popped_values()) {
      EXPECT_TRUE(seen.insert(v).second) << "value popped twice: " << v;
      const std::size_t pusher = static_cast<std::size_t>(v >> 32) - 1;
      EXPECT_LT(pusher, n);  // encoded by a real process's push
    }
  }
  EXPECT_GE(pops, 50u);
}

}  // namespace
}  // namespace pwf::waitfree
