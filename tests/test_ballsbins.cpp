// Tests for the iterated balls-into-bins game, including the structural
// equivalence with the scan-validate system chain (Section 6.1.3) and the
// Lemma 8 / Lemma 9 phase statistics.
#include "ballsbins/game.hpp"

#include <gtest/gtest.h>

#include <map>

#include "core/theory.hpp"
#include "markov/builders.hpp"
#include "util/rng.hpp"

namespace pwf::ballsbins {
namespace {

TEST(Game, StartsAllBinsWithOneBall) {
  IteratedBallsBins game(5, Xoshiro256pp(1));
  EXPECT_EQ(game.bins_with(1), 5u);
  EXPECT_EQ(game.bins_with(0), 0u);
  EXPECT_EQ(game.bins_with(2), 0u);
  EXPECT_EQ(game.phase_start_a(), 5u);
  EXPECT_EQ(game.phase_start_b(), 0u);
}

TEST(Game, RejectsZeroBins) {
  EXPECT_THROW(IteratedBallsBins(0, Xoshiro256pp(1)), std::invalid_argument);
}

TEST(Game, BinCountsAlwaysSumToN) {
  IteratedBallsBins game(7, Xoshiro256pp(2));
  for (int i = 0; i < 10'000; ++i) {
    game.step();
    EXPECT_EQ(game.bins_with(0) + game.bins_with(1) + game.bins_with(2), 7u);
  }
}

TEST(Game, PhaseStartHasNoTwoBallBins) {
  IteratedBallsBins game(6, Xoshiro256pp(3));
  std::size_t checked = 0;
  for (int i = 0; i < 50'000 && checked < 100; ++i) {
    if (game.step()) {
      // Immediately after a reset: a + b = n.
      EXPECT_EQ(game.bins_with(2), 0u);
      EXPECT_EQ(game.phase_start_a() + game.phase_start_b(), 6u);
      ++checked;
    }
  }
  EXPECT_GE(checked, 100u);
}

TEST(Game, SingleBinPhaseIsAlwaysTwoThrows) {
  // n = 1: the single bin goes 1 -> 2 -> reset; every phase has length 2.
  IteratedBallsBins game(1, Xoshiro256pp(4));
  const auto records = game.run_phases(50);
  for (const auto& rec : records) {
    EXPECT_EQ(rec.length, 2u);
    EXPECT_EQ(rec.start_a, 1u);
    EXPECT_EQ(rec.start_b, 0u);
  }
}

TEST(Game, RunPhasesCountsMatchStepCounting) {
  IteratedBallsBins game(8, Xoshiro256pp(5));
  const auto records = game.run_phases(200);
  EXPECT_EQ(records.size(), 200u);
  EXPECT_EQ(game.phases_completed(), 200u);
  std::uint64_t total_len = 0;
  for (const auto& rec : records) total_len += rec.length;
  EXPECT_EQ(total_len, game.steps());
}

TEST(Game, MeanPhaseLengthMatchesSystemChainLatency) {
  // The game IS the system chain: its mean phase length must equal the
  // exact system latency W of SCU(0,1).
  for (std::size_t n : {2, 4, 8, 16}) {
    IteratedBallsBins game(n, Xoshiro256pp(100 + n));
    const auto records = game.run_phases(40'000);
    double mean = 0.0;
    for (const auto& rec : records) mean += static_cast<double>(rec.length);
    mean /= static_cast<double>(records.size());
    const double exact =
        markov::system_latency(markov::build_scan_validate_system_chain(n));
    EXPECT_NEAR(mean, exact, 0.03 * exact) << "n = " << n;
  }
}

TEST(Game, TransitionLawMatchesSystemChain) {
  // Stronger: empirical per-state transition frequencies of the game match
  // the system chain's transition probabilities.
  constexpr std::size_t kN = 4;
  const auto sys = markov::build_scan_validate_system_chain(kN);
  IteratedBallsBins game(kN, Xoshiro256pp(42));

  std::map<std::pair<std::uint64_t, std::uint64_t>, std::uint64_t> edge_counts;
  std::map<std::uint64_t, std::uint64_t> state_counts;
  auto key = [&] {
    // (a, b) key in the builder's encoding: a*(n+1) + b, where
    // a = one-ball bins + two-ball bins mapped... NO: a = #Read = one-ball
    // bins, b = #OldCAS = zero-ball bins.
    return static_cast<std::uint64_t>(game.bins_with(1)) * (kN + 1) +
           game.bins_with(0);
  };
  std::uint64_t prev = key();
  for (int i = 0; i < 400'000; ++i) {
    game.step();
    const std::uint64_t cur = key();
    ++edge_counts[{prev, cur}];
    ++state_counts[prev];
    prev = cur;
  }
  for (const auto& [edge, count] : edge_counts) {
    const auto [from, to] = edge;
    const double freq = static_cast<double>(count) /
                        static_cast<double>(state_counts.at(from));
    const double exact = sys.chain.transition_prob(sys.index_of_key(from),
                                                   sys.index_of_key(to));
    EXPECT_GT(exact, 0.0) << "game took edge the chain forbids: " << from
                          << " -> " << to;
    EXPECT_NEAR(freq, exact, 0.05) << "edge " << from << " -> " << to;
  }
}

TEST(Game, PhaseLengthsRespectLemma8Bound) {
  // E[phase length | a_i, b_i] <= min(2 alpha n / sqrt(a), 3 alpha n / b^(1/3))
  // with alpha = 4. Group observed phases by start state and compare means.
  constexpr std::size_t kN = 32;
  IteratedBallsBins game(kN, Xoshiro256pp(7));
  std::map<std::pair<std::size_t, std::size_t>, StreamingStats> by_start;
  for (const auto& rec : game.run_phases(30'000)) {
    by_start[{rec.start_a, rec.start_b}].add(static_cast<double>(rec.length));
  }
  for (const auto& [start, stats] : by_start) {
    if (stats.count() < 50) continue;  // skip rare states (noisy means)
    const double bound =
        core::theory::phase_length_bound(kN, start.first, start.second, 4.0);
    EXPECT_LT(stats.mean(), bound)
        << "start a=" << start.first << " b=" << start.second;
  }
}

TEST(Game, RangeThreeIsRare) {
  // Lemma 9: phases starting in range three (a < n/c) are a vanishing
  // fraction in steady state.
  constexpr std::size_t kN = 64;
  IteratedBallsBins game(kN, Xoshiro256pp(8));
  RangeStats ranges;
  for (const auto& rec : game.run_phases(20'000)) {
    ranges.add(rec, kN);
  }
  const double total = static_cast<double>(
      ranges.phases_first + ranges.phases_second + ranges.phases_third);
  EXPECT_LT(static_cast<double>(ranges.phases_third) / total, 0.01);
}

TEST(ClassifyRange, Boundaries) {
  EXPECT_EQ(classify_range(100, 100), Range::kFirst);
  EXPECT_EQ(classify_range(34, 100), Range::kFirst);   // >= n/3
  EXPECT_EQ(classify_range(33, 100), Range::kSecond);  // in [n/c, n/3)
  EXPECT_EQ(classify_range(10, 100), Range::kSecond);  // = n/c exactly
  EXPECT_EQ(classify_range(9, 100), Range::kThird);
  EXPECT_EQ(classify_range(0, 100), Range::kThird);
}

TEST(RangeStats, BucketsByRange) {
  RangeStats stats;
  stats.add({50, 14, 10}, 64);  // a = 50 >= 64/3: first range
  stats.add({10, 54, 20}, 64);  // 64/10 <= 10 < 64/3: second range
  stats.add({2, 62, 30}, 64);   // a < 6.4: third range
  EXPECT_EQ(stats.phases_first, 1u);
  EXPECT_EQ(stats.phases_second, 1u);
  EXPECT_EQ(stats.phases_third, 1u);
  EXPECT_DOUBLE_EQ(stats.length_first.mean(), 10.0);
  EXPECT_DOUBLE_EQ(stats.length_second.mean(), 20.0);
  EXPECT_DOUBLE_EQ(stats.length_third.mean(), 30.0);
}

}  // namespace
}  // namespace pwf::ballsbins
