// The lock-free zoo under the non-default reclamation policies. Every
// structure's own test suite (test_lockfree_*) exercises the default
// mem::Epoch; this typed suite re-runs concurrent correctness checks
// over mem::HazardEra and mem::WaitFreePool, where the protected-load
// discipline actually bites — a missing Mem::load or a stale CAS reload
// is a use-after-free these workloads surface under ASan/TSan. Each
// churn also closes with the leak-accounting teardown invariant.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <set>
#include <thread>
#include <vector>

#include "lockfree/harris_list.hpp"
#include "lockfree/hash_set.hpp"
#include "lockfree/ms_queue.hpp"
#include "lockfree/skiplist.hpp"
#include "lockfree/scu_object.hpp"
#include "lockfree/treiber_stack.hpp"
#include "mem/hazard_era.hpp"
#include "mem/pool.hpp"
#include "waitfree/object.hpp"

namespace {

using namespace pwf;
using lockfree::NoStamp;

constexpr std::size_t kThreads = 4;
constexpr std::uint64_t kOpsPerThread = 2000;

template <typename Mem>
std::unique_ptr<typename Mem::Domain> make_domain(std::size_t block_bytes) {
  // Deliberately smaller than the total allocation count: passing
  // proves blocks recycle through the era scan, not just that the
  // arena out-sizes the workload.
  const std::size_t capacity = 4096;
  if constexpr (std::is_same_v<Mem, mem::WaitFreePool>) {
    return std::make_unique<mem::WaitFreePoolDomain>(block_bytes, capacity,
                                                     kThreads + 2);
  } else {
    return std::make_unique<mem::HazardEraDomain>(kThreads + 2);
  }
}

/// Post-churn collection rounds; the teardown leak invariant itself is
/// the domain destructor's assert (retired == 0 after the final orphan
/// flush), which every test exercises by scoping the domain.
template <typename Mem>
void drain(typename Mem::ThreadHandle& handle) {
  for (int round = 0; round < 4; ++round) handle.collect();
}

template <typename Mem>
class MemStructuresTest : public ::testing::Test {};

using EraPolicies = ::testing::Types<mem::HazardEra, mem::WaitFreePool>;
TYPED_TEST_SUITE(MemStructuresTest, EraPolicies);

// MPMC stack churn: everything pushed is popped exactly once.
TYPED_TEST(MemStructuresTest, TreiberStackMpmcChurn) {
  using Mem = TypeParam;
  using Stack = lockfree::TreiberStack<std::uint64_t, NoStamp, Mem>;
  auto domain = make_domain<Mem>(Stack::kNodeBytes);
  Stack stack(*domain);

  std::atomic<std::uint64_t> popped_sum{0};
  std::atomic<std::uint64_t> popped_count{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      typename Mem::ThreadHandle handle(*domain);
      std::uint64_t sum = 0, count = 0;
      for (std::uint64_t k = 0; k < kOpsPerThread; ++k) {
        stack.push(handle, t * kOpsPerThread + k);
        if (const auto v = stack.pop(handle)) {
          sum += *v;
          ++count;
        }
      }
      // Residue drain: pop until empty (another thread's push may
      // still land, but each value is popped at most once).
      while (const auto v = stack.pop(handle)) {
        sum += *v;
        ++count;
      }
      popped_sum.fetch_add(sum, std::memory_order_relaxed);
      popped_count.fetch_add(count, std::memory_order_relaxed);
    });
  }
  for (auto& th : threads) th.join();

  const std::uint64_t total = kThreads * kOpsPerThread;
  EXPECT_EQ(popped_count.load(), total);
  EXPECT_EQ(popped_sum.load(), total * (total - 1) / 2);
  EXPECT_TRUE(stack.empty());

  typename Mem::ThreadHandle sweeper(*domain);
  while (const auto v = stack.pop(sweeper)) (void)v;
  drain<Mem>(sweeper);
}

// MPMC queue churn: per-producer FIFO order survives on the consumer
// side, and nothing is lost or duplicated.
TYPED_TEST(MemStructuresTest, MsQueuePerProducerFifo) {
  using Mem = TypeParam;
  using Queue = lockfree::MsQueue<std::uint64_t, NoStamp, Mem>;
  auto domain = make_domain<Mem>(Queue::kNodeBytes);
  Queue queue(*domain);

  constexpr std::size_t kProducers = 2;
  constexpr std::size_t kConsumers = 2;
  std::atomic<std::uint64_t> consumed{0};
  std::vector<std::vector<std::uint64_t>> seen(kConsumers);
  std::vector<std::thread> threads;
  for (std::size_t p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      typename Mem::ThreadHandle handle(*domain);
      for (std::uint64_t k = 0; k < kOpsPerThread; ++k) {
        queue.enqueue(handle, (p << 32) | k);
      }
    });
  }
  const std::uint64_t target = kProducers * kOpsPerThread;
  for (std::size_t c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&, c] {
      typename Mem::ThreadHandle handle(*domain);
      while (consumed.load(std::memory_order_acquire) < target) {
        if (const auto v = queue.dequeue(handle)) {
          seen[c].push_back(*v);
          consumed.fetch_add(1, std::memory_order_acq_rel);
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  // Per-producer sequence numbers must be increasing within each
  // consumer's log (FIFO), and the union must be exactly the set sent.
  std::set<std::uint64_t> all;
  for (const auto& log : seen) {
    std::uint64_t last[kProducers];
    bool first[kProducers] = {true, true};
    for (const std::uint64_t v : log) {
      const std::size_t p = v >> 32;
      const std::uint64_t k = v & 0xffffffffu;
      ASSERT_LT(p, kProducers);
      if (!first[p]) {
        EXPECT_GT(k, last[p]);
      }
      first[p] = false;
      last[p] = k;
      EXPECT_TRUE(all.insert(v).second) << "duplicate delivery";
    }
  }
  EXPECT_EQ(all.size(), target);

  typename Mem::ThreadHandle sweeper(*domain);
  drain<Mem>(sweeper);
}

// Concurrent set churn on overlapping keys; a quiescent reference count
// must match, and lookups during churn must never touch freed nodes.
TYPED_TEST(MemStructuresTest, HarrisListInsertEraseContains) {
  using Mem = TypeParam;
  using List = lockfree::HarrisList<int, NoStamp, Mem>;
  auto domain = make_domain<Mem>(List::kNodeBytes);
  List list(*domain);

  constexpr int kKeySpace = 64;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      typename Mem::ThreadHandle handle(*domain);
      std::uint64_t state = 0x9e3779b97f4a7c15ull * (t + 1);
      auto next = [&state] {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        return state;
      };
      for (std::uint64_t k = 0; k < kOpsPerThread; ++k) {
        const int key = static_cast<int>(next() % kKeySpace);
        switch (next() % 3) {
          case 0: list.insert(handle, key); break;
          case 1: list.erase(handle, key); break;
          default: list.contains(handle, key); break;
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  typename Mem::ThreadHandle handle(*domain);
  // Quiescent consistency: size_slow agrees with per-key contains.
  std::size_t present = 0;
  for (int key = 0; key < kKeySpace; ++key) {
    present += list.contains(handle, key) ? 1 : 0;
  }
  EXPECT_EQ(list.size_slow(handle), present);
  for (int key = 0; key < kKeySpace; ++key) list.erase(handle, key);
  EXPECT_EQ(list.size_slow(handle), 0u);
  drain<Mem>(handle);
}

// Same churn through the hash set (bucketed Harris lists sharing the
// one domain).
TYPED_TEST(MemStructuresTest, HashSetConcurrentChurn) {
  using Mem = TypeParam;
  using Set = lockfree::HashSet<int, std::hash<int>, NoStamp, Mem>;
  auto domain = make_domain<Mem>(Set::kNodeBytes);
  Set set(*domain, 8);

  constexpr int kKeySpace = 128;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      typename Mem::ThreadHandle handle(*domain);
      for (std::uint64_t k = 0; k < kOpsPerThread; ++k) {
        const int key = static_cast<int>((t * kOpsPerThread + k) % kKeySpace);
        if (k % 2 == 0) {
          set.insert(handle, key);
        } else {
          set.erase(handle, key);
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  typename Mem::ThreadHandle handle(*domain);
  std::size_t present = 0;
  for (int key = 0; key < kKeySpace; ++key) {
    present += set.contains(handle, key) ? 1 : 0;
  }
  EXPECT_EQ(set.size_slow(handle), present);
  drain<Mem>(handle);
}

// The skip-list strategy matrix under the era policies: the same
// overlapping-key churn runs over all three synchronization strategies,
// with the arena again smaller than the total allocation count —
// coarse recycles through immediate destroy, optimistic and lock-free
// through retire + era scan.
template <typename Map, typename Mem>
void skiplist_churn_all_strategies() {
  auto domain = make_domain<Mem>(Map::kNodeBytes);
  Map map(*domain);

  constexpr std::uint64_t kKeySpace = 64;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      typename Mem::ThreadHandle handle(*domain);
      std::uint64_t state = 0x9e3779b97f4a7c15ull * (t + 1);
      auto next = [&state] {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        return state;
      };
      for (std::uint64_t k = 0; k < kOpsPerThread; ++k) {
        const std::uint64_t key = next() % kKeySpace;
        switch (next() % 3) {
          case 0: map.insert(handle, key, t); break;
          case 1: map.erase(handle, key); break;
          default: map.contains(handle, key); break;
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  typename Mem::ThreadHandle handle(*domain);
  std::size_t present = 0;
  for (std::uint64_t key = 0; key < kKeySpace; ++key) {
    present += map.contains(handle, key) ? 1 : 0;
  }
  EXPECT_EQ(map.size_slow(handle), present);
  for (std::uint64_t key = 0; key < kKeySpace; ++key) map.erase(handle, key);
  EXPECT_EQ(map.size_slow(handle), 0u);
  drain<Mem>(handle);
}

TYPED_TEST(MemStructuresTest, SkipListCoarseChurn) {
  using Mem = TypeParam;
  skiplist_churn_all_strategies<
      lockfree::CoarseSkipListMap<std::uint64_t, std::uint64_t, NoStamp, Mem>,
      Mem>();
}

TYPED_TEST(MemStructuresTest, SkipListOptimisticChurn) {
  using Mem = TypeParam;
  skiplist_churn_all_strategies<
      lockfree::OptimisticSkipListMap<std::uint64_t, std::uint64_t, NoStamp,
                                      Mem>,
      Mem>();
}

TYPED_TEST(MemStructuresTest, SkipListLockFreeChurn) {
  using Mem = TypeParam;
  skiplist_churn_all_strategies<
      lockfree::LockFreeSkipListMap<std::uint64_t, std::uint64_t, NoStamp,
                                    Mem>,
      Mem>();
}

// SCU object: concurrent read-copy-update increments lose nothing.
TYPED_TEST(MemStructuresTest, ScuObjectCountsEveryIncrement) {
  using Mem = TypeParam;
  using Object = lockfree::ScuObject<std::uint64_t, NoStamp, Mem>;
  auto domain = make_domain<Mem>(Object::kNodeBytes);
  Object object(*domain, 0);

  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      typename Mem::ThreadHandle handle(*domain);
      for (std::uint64_t k = 0; k < kOpsPerThread; ++k) {
        object.apply(handle, [](std::uint64_t& s) { return ++s; });
      }
    });
  }
  for (auto& th : threads) th.join();

  typename Mem::ThreadHandle handle(*domain);
  const std::uint64_t final_value =
      object.read(handle, [](const std::uint64_t& s) { return s; });
  EXPECT_EQ(final_value, kThreads * kOpsPerThread);
  drain<Mem>(handle);
}

// The wait-free universal construction: fetch-inc results are unique
// (each value handed out exactly once) and the total is exact — the
// helping machinery's descriptors flow through the policy too.
TYPED_TEST(MemStructuresTest, WaitFreeObjectFetchIncExact) {
  using Mem = TypeParam;
  using Object =
      waitfree::WaitFreeObject<waitfree::CounterState, NoStamp, true, Mem>;
  auto domain = make_domain<Mem>(Object::kNodeBytes);
  Object object(*domain, waitfree::CounterState{});

  std::vector<std::vector<std::uint64_t>> results(kThreads);
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      typename Mem::ThreadHandle handle(*domain);
      typename Object::Thread wf(object, handle);
      for (std::uint64_t k = 0; k < kOpsPerThread; ++k) {
        results[t].push_back(
            object.apply(wf, waitfree::counter_fetch_inc, 0));
      }
    });
  }
  for (auto& th : threads) th.join();

  std::set<std::uint64_t> unique;
  for (const auto& r : results) unique.insert(r.begin(), r.end());
  EXPECT_EQ(unique.size(), kThreads * kOpsPerThread);
  EXPECT_EQ(*unique.rbegin(), kThreads * kOpsPerThread - 1);

  typename Mem::ThreadHandle handle(*domain);
  drain<Mem>(handle);
}

}  // namespace
