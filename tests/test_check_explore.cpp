// End-to-end exploration: stock workloads come out clean, every seeded
// mutant is caught, and the minimizer produces a small, strictly
// replayable, fingerprint-stable witness.
#include "check/explore.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "check/session.hpp"
#include "check/workloads.hpp"

namespace pwf::check {
namespace {

ExploreOptions quick_options(std::size_t schedules = 40) {
  ExploreOptions o;
  o.schedules = schedules;
  o.base_seed = 20140721;
  return o;
}

TEST(Explore, DeriveCheckSeedSpreadsStreams) {
  const auto a = derive_check_seed(1, 0);
  const auto b = derive_check_seed(1, 1);
  const auto c = derive_check_seed(2, 0);
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a, derive_check_seed(1, 0));  // pure
}

TEST(Explore, StockStructuresAreLinearizable) {
  for (const char* name : {"sim-stack", "sim-queue", "sim-rcu", "fai-counter"}) {
    const ExploreResult r = explore(find_workload(name), quick_options());
    EXPECT_EQ(r.violations, 0u) << name;
    EXPECT_EQ(r.unknowns, 0u) << name;
    EXPECT_FALSE(r.witness.has_value()) << name;
    EXPECT_TRUE(r.as_expected(true)) << name;
  }
}

class MutantCatch : public ::testing::TestWithParam<const char*> {};

TEST_P(MutantCatch, CaughtWithReplayStableMinimizedWitness) {
  const Workload& w = find_workload(GetParam());
  ASSERT_FALSE(w.expect_linearizable);
  const ExploreResult r = explore(w, quick_options());
  ASSERT_GT(r.violations, 0u) << GetParam();
  ASSERT_TRUE(r.witness.has_value());
  const Witness& witness = *r.witness;
  // Acceptance criterion: minimized witness within the 20-event budget.
  EXPECT_LE(witness.history_events, 20u);
  // The witness trace must replay strictly, still fail, and reproduce the
  // history bit-for-bit, twice.
  for (int i = 0; i < 2; ++i) {
    const RunOutcome replay = replay_trace(w, witness.trace, /*strict=*/true,
                                           quick_options().check);
    EXPECT_EQ(replay.lin.verdict, LinVerdict::kNotLinearizable);
    EXPECT_EQ(replay.history.fingerprint(), witness.history_fingerprint);
    EXPECT_EQ(replay.trace.fingerprint(), witness.trace_fingerprint);
  }
}

INSTANTIATE_TEST_SUITE_P(AllMutants, MutantCatch,
                         ::testing::Values("mut-racy-counter", "mut-aba-stack",
                                           "mut-nohelp-queue", "mut-torn-rcu"));

TEST(Explore, ExplorationIsDeterministicInBaseSeed) {
  const Workload& w = find_workload("mut-racy-counter");
  const ExploreResult a = explore(w, quick_options(20));
  const ExploreResult b = explore(w, quick_options(20));
  EXPECT_EQ(a.violations, b.violations);
  ASSERT_TRUE(a.witness && b.witness);
  EXPECT_EQ(a.witness->trace_fingerprint, b.witness->trace_fingerprint);
  EXPECT_EQ(a.witness->history_fingerprint, b.witness->history_fingerprint);
}

TEST(Explore, StopAtFirstShortCircuits) {
  ExploreOptions o = quick_options();
  o.stop_at_first = true;
  const ExploreResult r = explore(find_workload("mut-racy-counter"), o);
  EXPECT_EQ(r.violations, 1u);
  EXPECT_LT(r.schedules_run, o.schedules);
}

TEST(Minimize, RefusesAPassingTrace) {
  const Workload& w = find_workload("sim-queue");
  const auto good = record_run(w, 3, 5, 80, 0, {}, CheckOptions{});
  ASSERT_EQ(good.lin.verdict, LinVerdict::kLinearizable);
  EXPECT_THROW(minimize_trace(w, good.trace, CheckOptions{}),
               std::invalid_argument);
}

TEST(Minimize, ShrinksAFailingTrace) {
  // Find a failing schedule by hand, then check the minimizer contract:
  // the result fails strictly and is no longer than the input.
  const Workload& w = find_workload("mut-racy-counter");
  ExploreOptions o = quick_options();
  o.minimize = false;
  o.stop_at_first = true;
  const ExploreResult r = explore(w, o);
  ASSERT_TRUE(r.witness.has_value());  // unminimized failing trace
  const ScheduleTrace& failing = r.witness->trace;

  const ScheduleTrace small = minimize_trace(w, failing, CheckOptions{});
  EXPECT_LE(small.steps.size(), failing.steps.size());
  const RunOutcome replay = replay_trace(w, small, /*strict=*/true, {});
  EXPECT_EQ(replay.lin.verdict, LinVerdict::kNotLinearizable);
  // The canonical racy-counter witness is two overlapping increments:
  // 4 events, a handful of steps.
  EXPECT_LE(replay.history.num_events(), 20u);
}

TEST(Minimize, OperationDropPrePassKeepsTheContract) {
  // Same contract as plain ddmin — strictly replayable, still failing,
  // no larger — with the operation-drop pre-pass switched on. The
  // pre-pass shrinks the *history* (whole completed operations go), so
  // the witness must stay within the plain minimizer's event bound.
  const Workload& w = find_workload("mut-racy-counter");
  ExploreOptions o = quick_options();
  o.minimize = false;
  o.stop_at_first = true;
  const ExploreResult r = explore(w, o);
  ASSERT_TRUE(r.witness.has_value());  // unminimized failing trace
  const ScheduleTrace& failing = r.witness->trace;

  const Session session(w, CheckOptions{});
  MinimizeOptions with_drop;
  with_drop.drop_operations = true;
  const ScheduleTrace small = session.minimize(failing, with_drop);
  EXPECT_LE(small.steps.size(), failing.steps.size());
  const RunOutcome replay = session.replay(small, /*strict=*/true);
  EXPECT_EQ(replay.lin.verdict, LinVerdict::kNotLinearizable);
  EXPECT_LE(replay.history.num_events(), 20u);

  // Default options leave the pre-pass off: the published witnesses of
  // existing callers are unchanged.
  const ScheduleTrace plain = session.minimize(failing);
  const ScheduleTrace plain_default = session.minimize(failing, {});
  EXPECT_EQ(plain.fingerprint(), plain_default.fingerprint());
}

TEST(Explore, RunOutcomeCarriesCompletionFlags) {
  const Workload& w = find_workload("sim-queue");
  const auto run = record_run(w, 3, 5, 80, 0, {}, CheckOptions{});
  ASSERT_EQ(run.step_completed.size(), run.trace.steps.size());
  // Every completed operation ends at exactly one completion-flagged
  // step, so the flags must count the completed operations.
  std::size_t completions = 0;
  for (const char flag : run.step_completed) completions += flag ? 1 : 0;
  EXPECT_EQ(completions, run.history.num_completed());
}

TEST(Workloads, RegistryIsWellFormed) {
  const auto& all = workloads();
  ASSERT_GE(all.size(), 8u);
  for (const auto& w : all) {
    EXPECT_FALSE(w.name.empty());
    EXPECT_GE(w.default_n, 2u) << w.name;
    EXPECT_GT(w.default_steps, 0u) << w.name;
    EXPECT_NO_THROW((void)w.make_spec()) << w.name;
  }
  EXPECT_THROW(find_workload("no-such-workload"), std::invalid_argument);
}

}  // namespace
}  // namespace pwf::check
