// Tests for the discrete-time simulation engine: accounting invariants,
// determinism, crash handling, and fairness under the uniform scheduler.
#include "core/simulation.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/algorithms.hpp"

namespace pwf::core {
namespace {

Simulation make_parallel_sim(std::size_t n, std::size_t q,
                             std::uint64_t seed = 1) {
  Simulation::Options opts;
  opts.num_registers = ParallelCode::registers_required();
  opts.seed = seed;
  return Simulation(n, ParallelCode::factory(q),
                    std::make_unique<UniformScheduler>(), opts);
}

Simulation make_scan_validate_sim(std::size_t n, std::uint64_t seed = 1) {
  Simulation::Options opts;
  opts.num_registers = ScuAlgorithm::registers_required(n, 1);
  opts.seed = seed;
  return Simulation(n, scan_validate_factory(),
                    std::make_unique<UniformScheduler>(), opts);
}

TEST(Simulation, RejectsBadConstruction) {
  Simulation::Options opts;
  EXPECT_THROW(Simulation(0, ParallelCode::factory(1),
                          std::make_unique<UniformScheduler>(), opts),
               std::invalid_argument);
  EXPECT_THROW(Simulation(2, ParallelCode::factory(1), nullptr, opts),
               std::invalid_argument);
}

TEST(Simulation, StepAccountingAddsUp) {
  auto sim = make_parallel_sim(4, 3);
  sim.run(10'000);
  const LatencyReport& rep = sim.report();
  EXPECT_EQ(rep.steps, 10'000u);
  EXPECT_EQ(sim.now(), 10'000u);
  std::uint64_t per_process = 0;
  for (std::uint64_t s : rep.steps_per_process) per_process += s;
  EXPECT_EQ(per_process, rep.steps);
  std::uint64_t completions = 0;
  for (std::uint64_t c : rep.completions_per_process) completions += c;
  EXPECT_EQ(completions, rep.completions);
  EXPECT_EQ(sim.memory().ops(), 10'000u);
}

TEST(Simulation, ParallelCodeCompletionCountIsExact) {
  // Every process completes exactly floor(own_steps / q) operations.
  auto sim = make_parallel_sim(3, 5);
  sim.run(50'000);
  const LatencyReport& rep = sim.report();
  for (std::size_t p = 0; p < 3; ++p) {
    EXPECT_EQ(rep.completions_per_process[p], rep.steps_per_process[p] / 5);
  }
}

TEST(Simulation, DeterministicForFixedSeed) {
  auto a = make_scan_validate_sim(5, 1234);
  auto b = make_scan_validate_sim(5, 1234);
  a.run(20'000);
  b.run(20'000);
  EXPECT_EQ(a.report().completions, b.report().completions);
  for (std::size_t p = 0; p < 5; ++p) {
    EXPECT_EQ(a.report().steps_per_process[p], b.report().steps_per_process[p]);
  }
  EXPECT_EQ(a.memory().peek(0), b.memory().peek(0));
}

TEST(Simulation, DifferentSeedsDiverge) {
  auto a = make_scan_validate_sim(5, 1);
  auto b = make_scan_validate_sim(5, 2);
  a.run(20'000);
  b.run(20'000);
  bool any_diff = a.report().completions != b.report().completions;
  for (std::size_t p = 0; p < 5 && !any_diff; ++p) {
    any_diff =
        a.report().steps_per_process[p] != b.report().steps_per_process[p];
  }
  EXPECT_TRUE(any_diff);
}

TEST(Simulation, UniformSchedulerIsFairOverLongRuns) {
  auto sim = make_scan_validate_sim(8, 7);
  sim.run(400'000);
  const LatencyReport& rep = sim.report();
  const double expect = 400'000.0 / 8.0;
  for (std::uint64_t s : rep.steps_per_process) {
    EXPECT_NEAR(static_cast<double>(s), expect, 0.03 * expect);
  }
}

TEST(Simulation, ResetStatsClearsWindowButKeepsState) {
  auto sim = make_parallel_sim(2, 2);
  sim.run(1000);
  EXPECT_GT(sim.report().completions, 0u);
  sim.reset_stats();
  EXPECT_EQ(sim.report().steps, 0u);
  EXPECT_EQ(sim.report().completions, 0u);
  EXPECT_EQ(sim.now(), 1000u);  // time marches on
  sim.run(1000);
  EXPECT_EQ(sim.report().steps, 1000u);
  EXPECT_GT(sim.report().completions, 0u);
}

TEST(Simulation, CrashRemovesProcessFromSchedule) {
  auto sim = make_parallel_sim(4, 1, 77);
  sim.schedule_crash(1000, 2);
  sim.run(1000);
  const std::uint64_t steps_before = sim.report().steps_per_process[2];
  EXPECT_GT(steps_before, 0u);
  sim.run(10'000);
  EXPECT_EQ(sim.report().steps_per_process[2], steps_before);
  EXPECT_EQ(sim.active().size(), 3u);
}

TEST(Simulation, CrashContainmentActiveSetOnlyShrinks) {
  auto sim = make_parallel_sim(5, 1);
  sim.schedule_crash(100, 0);
  sim.schedule_crash(200, 3);
  sim.run(50);
  EXPECT_EQ(sim.active().size(), 5u);
  sim.run(100);
  EXPECT_EQ(sim.active().size(), 4u);
  sim.run(100);
  EXPECT_EQ(sim.active().size(), 3u);
  // Crashed processes never return.
  sim.run(1000);
  EXPECT_EQ(sim.active().size(), 3u);
}

TEST(Simulation, RefusesToCrashLastProcess) {
  auto sim = make_parallel_sim(2, 1);
  sim.schedule_crash(10, 0);
  sim.schedule_crash(20, 1);
  EXPECT_THROW(sim.run(100), std::logic_error);
}

TEST(Simulation, CrashValidation) {
  auto sim = make_parallel_sim(2, 1);
  EXPECT_THROW(sim.schedule_crash(0, 5), std::out_of_range);
  sim.run(100);
  EXPECT_THROW(sim.schedule_crash(50, 0), std::invalid_argument);
}

TEST(Simulation, DuplicateCrashIsIgnored) {
  auto sim = make_parallel_sim(3, 1);
  sim.schedule_crash(10, 1);
  sim.schedule_crash(20, 1);
  sim.run(100);
  EXPECT_EQ(sim.active().size(), 2u);
}

class CountingObserver final : public SimObserver {
 public:
  void on_step(std::uint64_t tau, std::size_t process, bool completed) override {
    ++steps;
    last_tau = tau;
    last_process = process;
    if (completed) ++completions;
  }
  std::uint64_t steps = 0;
  std::uint64_t completions = 0;
  std::uint64_t last_tau = 0;
  std::size_t last_process = 0;
};

TEST(Simulation, ObserverSeesEveryStep) {
  auto sim = make_parallel_sim(2, 3);
  CountingObserver obs;
  sim.set_observer(&obs);
  sim.run(5000);
  EXPECT_EQ(obs.steps, 5000u);
  EXPECT_EQ(obs.completions, sim.report().completions);
  EXPECT_EQ(obs.last_tau, 5000u);
}

TEST(Simulation, OpenGapTracksTimeSinceCompletion) {
  auto sim = make_parallel_sim(1, 4);
  sim.run(4);  // exactly one completion at tau = 4
  EXPECT_EQ(sim.open_gap(0), 0u);
  sim.run(2);
  EXPECT_EQ(sim.open_gap(0), 2u);
}

TEST(Simulation, SystemLatencyOfSoloParallelCodeIsQ) {
  auto sim = make_parallel_sim(1, 6);
  sim.run(6000);
  EXPECT_DOUBLE_EQ(sim.report().system_latency(), 6.0);
  EXPECT_DOUBLE_EQ(sim.report().completion_rate(), 1.0 / 6.0);
}

TEST(LatencyReport, MinCompletions) {
  auto sim = make_parallel_sim(3, 2, 5);
  sim.run(30'000);
  EXPECT_GT(sim.report().min_completions(), 0u);
}

// Regression: a process that crashed mid-operation must not be counted
// as pending forever — min_completions (the fairness floor) ranges over
// live processes only, so one early casualty cannot pin it to zero.
TEST(LatencyReport, CrashedProcessDoesNotDragMinCompletions) {
  auto sim = make_parallel_sim(3, 50, 5);
  sim.schedule_crash(10, 2);  // dies long before its first completion
  sim.run(60'000);
  ASSERT_EQ(sim.report().completions_per_process[2], 0u);
  EXPECT_GT(sim.report().min_completions(), 0u);
}

TEST(LatencyReport, ResetStatsKeepsCrashedProcessesRetired) {
  auto sim = make_parallel_sim(3, 2, 5);
  sim.schedule_crash(100, 1);
  sim.run(10'000);
  sim.reset_stats();
  // The fresh window starts with the casualty already retired: its zero
  // completions must not drag the floor down.
  sim.run(10'000);
  EXPECT_EQ(sim.report().completions_per_process[1], 0u);
  EXPECT_GT(sim.report().min_completions(), 0u);
}

TEST(LatencyReport, AllRetiredMinCompletionsIsZero) {
  LatencyReport r{};
  r.completions_per_process = {5, 7};
  r.retired.assign(2, 0);
  EXPECT_EQ(r.min_completions(), 5u);
  r.mark_retired(0);
  EXPECT_EQ(r.min_completions(), 7u);
  r.mark_retired(1);
  // Everyone retired: like the empty report, the floor is 0, not the
  // empty-fold identity UINT64_MAX.
  EXPECT_EQ(r.min_completions(), 0u);
}

// ---------------------------------------------------------------------------
// Segmented vs legacy loop: the restructured hot path must be a pure
// performance change — bit-identical trajectories, observer sequences,
// and reports for every scheduler and crash plan.

class LoggingObserver final : public SimObserver {
 public:
  struct Event {
    std::uint64_t tau;
    std::size_t process;
    bool completed;
    bool operator==(const Event&) const = default;
  };
  void on_step(std::uint64_t tau, std::size_t process,
               bool completed) override {
    events.push_back({tau, process, completed});
  }
  std::vector<Event> events;
};

Simulation make_mode_sim(LoopMode mode, std::unique_ptr<Scheduler> sched,
                         std::uint64_t seed) {
  constexpr std::size_t kN = 6;
  Simulation::Options opts;
  opts.num_registers = ScuAlgorithm::registers_required(kN, 1);
  opts.seed = seed;
  opts.loop_mode = mode;
  return Simulation(kN, scan_validate_factory(), std::move(sched), opts);
}

void expect_reports_identical(const Simulation& a, const Simulation& b) {
  EXPECT_EQ(a.report().steps, b.report().steps);
  EXPECT_EQ(a.report().completions, b.report().completions);
  EXPECT_EQ(a.report().completions_per_process,
            b.report().completions_per_process);
  EXPECT_EQ(a.report().steps_per_process, b.report().steps_per_process);
  EXPECT_EQ(a.report().system_gaps.count(), b.report().system_gaps.count());
  EXPECT_DOUBLE_EQ(a.report().system_latency(), b.report().system_latency());
  EXPECT_EQ(a.now(), b.now());
  EXPECT_EQ(a.memory().peek(0), b.memory().peek(0));
}

TEST(Simulation, SegmentedLoopIsBitIdenticalToLegacy) {
  const auto make_scheds = [] {
    std::vector<std::pair<std::unique_ptr<Scheduler>,
                          std::unique_ptr<Scheduler>>> out;
    out.emplace_back(std::make_unique<UniformScheduler>(),
                     std::make_unique<UniformScheduler>());
    out.emplace_back(std::make_unique<StickyScheduler>(0.85),
                     std::make_unique<StickyScheduler>(0.85));
    out.emplace_back(
        std::make_unique<WeightedScheduler>(make_zipf_scheduler(6, 1.0)),
        std::make_unique<WeightedScheduler>(make_zipf_scheduler(6, 1.0)));
    return out;
  };
  for (auto& [sched_a, sched_b] : make_scheds()) {
    const std::string label = sched_a->name();
    Simulation seg = make_mode_sim(LoopMode::segmented, std::move(sched_a),
                                   321);
    Simulation leg = make_mode_sim(LoopMode::legacy, std::move(sched_b), 321);
    LoggingObserver obs_seg, obs_leg;
    seg.set_observer(&obs_seg);
    leg.set_observer(&obs_leg);
    // A crash plan straddling the run so segments end mid-run, plus a
    // duplicate crash and one registered mid-run.
    for (Simulation* sim : {&seg, &leg}) {
      sim->schedule_crash(40'000, 5);
      sim->schedule_crash(10'000, 4);
      sim->schedule_crash(42'000, 4);  // duplicate: must be a no-op
      sim->run(30'000);
      sim->schedule_crash(55'000, 3);
      sim->run(70'000);
    }
    SCOPED_TRACE(label);
    ASSERT_EQ(obs_seg.events.size(), obs_leg.events.size());
    EXPECT_TRUE(obs_seg.events == obs_leg.events);
    expect_reports_identical(seg, leg);
    EXPECT_EQ(seg.active().size(), 3u);
  }
}

TEST(Simulation, SegmentedLoopWithoutObserverMatchesLegacyWithOne) {
  // The WithObserver=false instantiation must drive the very same
  // trajectory as the observed legacy run — the observer hoist cannot
  // leak into scheduling or stats.
  Simulation seg = make_mode_sim(LoopMode::segmented,
                                 std::make_unique<UniformScheduler>(), 77);
  Simulation leg = make_mode_sim(LoopMode::legacy,
                                 std::make_unique<UniformScheduler>(), 77);
  LoggingObserver obs;
  leg.set_observer(&obs);
  seg.schedule_crash(5'000, 2);
  leg.schedule_crash(5'000, 2);
  seg.run(20'000);
  leg.run(20'000);
  EXPECT_EQ(obs.events.size(), 20'000u);
  expect_reports_identical(seg, leg);
}

TEST(Simulation, ChunkedSegmentedRunsMatchOneShot) {
  // run(k) many times must equal one run(sum): segment boundaries are an
  // implementation detail, not a semantic one.
  Simulation chunked = make_mode_sim(LoopMode::segmented,
                                     std::make_unique<StickyScheduler>(0.9),
                                     13);
  Simulation oneshot = make_mode_sim(LoopMode::segmented,
                                     std::make_unique<StickyScheduler>(0.9),
                                     13);
  chunked.schedule_crash(2'500, 1);
  oneshot.schedule_crash(2'500, 1);
  for (int i = 0; i < 100; ++i) chunked.run(100);
  oneshot.run(10'000);
  expect_reports_identical(chunked, oneshot);
}

TEST(Simulation, CrashAtCurrentTimeAppliesBeforeNextStep) {
  // schedule_crash(now, p) is legal and must remove p before the next
  // scheduled step in both loop modes.
  for (const LoopMode mode : {LoopMode::segmented, LoopMode::legacy}) {
    Simulation sim = make_mode_sim(mode, std::make_unique<UniformScheduler>(),
                                   3);
    sim.run(1'000);
    sim.schedule_crash(sim.now(), 0);
    const std::uint64_t steps_before = sim.report().steps_per_process[0];
    sim.run(5'000);
    EXPECT_EQ(sim.report().steps_per_process[0], steps_before);
    EXPECT_EQ(sim.active().size(), 5u);
  }
}

}  // namespace
}  // namespace pwf::core
