// Tests for total variation, distance to stationarity, mixing times, and
// trajectory sampling — including the check that the warmup windows used
// by the simulation tests/benches really do reach stationarity.
#include "markov/mixing.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "markov/builders.hpp"

namespace pwf::markov {
namespace {

MarkovChain lazy_two_state() {
  MarkovChain chain(2);
  chain.add_transition(0, 0, 0.5);
  chain.add_transition(0, 1, 0.5);
  chain.add_transition(1, 0, 0.5);
  chain.add_transition(1, 1, 0.5);
  return chain;
}

TEST(TotalVariation, BasicProperties) {
  const std::vector<double> p{1.0, 0.0};
  const std::vector<double> q{0.0, 1.0};
  const std::vector<double> r{0.5, 0.5};
  EXPECT_DOUBLE_EQ(total_variation(p, q), 1.0);
  EXPECT_DOUBLE_EQ(total_variation(p, r), 0.5);
  EXPECT_DOUBLE_EQ(total_variation(p, p), 0.0);
  EXPECT_THROW(total_variation(p, std::vector<double>{1.0}),
               std::invalid_argument);
}

TEST(DistanceToStationarity, LazyCoinMixesGeometrically) {
  // The lazy 2-state chain reaches uniform in exactly one step.
  const MarkovChain chain = lazy_two_state();
  const auto dist = distance_to_stationarity(chain, 0, 4);
  EXPECT_DOUBLE_EQ(dist[0], 0.5);
  EXPECT_NEAR(dist[1], 0.0, 1e-12);
}

TEST(DistanceToStationarity, PeriodicChainStaysBoundedAway) {
  // Reproduction finding: the scan-validate chains have period 2 (Lemma 3
  // claims ergodicity; only irreducibility actually holds, which is all
  // the latency analysis needs). A point start therefore never converges
  // in TV on the raw chain...
  const BuiltChain sv = build_scan_validate_individual_chain(3);
  const auto raw = distance_to_stationarity(sv.chain, sv.initial_state, 200);
  EXPECT_GT(raw.back(), 0.2);
  // ...but the lazy chain (same stationary distribution) mixes fine.
  const auto lazy =
      distance_to_stationarity(sv.chain, sv.initial_state, 200, /*lazy=*/true);
  for (std::size_t t = 1; t < lazy.size(); ++t) {
    EXPECT_LE(lazy[t], lazy[t - 1] + 1e-12) << "t = " << t;
  }
  EXPECT_LT(lazy.back(), 1e-6);
}

TEST(MixingTime, LazyCoinIsOne) {
  EXPECT_EQ(mixing_time(lazy_two_state(), 1e-9, 10), 1u);
}

TEST(MixingTime, ReturnsSentinelWhenNotMixed) {
  // Period-2 cycle never mixes from a point start.
  MarkovChain cycle(2);
  cycle.add_transition(0, 1, 1.0);
  cycle.add_transition(1, 0, 1.0);
  EXPECT_EQ(mixing_time(cycle, 0.01, 50), 51u);
}

TEST(MixingTime, ScanValidateMixesWellWithinWarmup) {
  // The simulation tests discard >= 50k steps of warmup; the (lazy) chain
  // mixes in a few hundred steps for the n they use, so the warmup is
  // ample for the time-averaged statistics being measured.
  for (std::size_t n : {2, 4, 6}) {
    const BuiltChain sys = build_scan_validate_system_chain(n);
    const std::size_t t_mix =
        mixing_time(sys.chain, 1e-3, 2'000, {}, /*lazy=*/true);
    EXPECT_LT(t_mix, 500u) << "n = " << n;
  }
}

TEST(MixingTime, FaiGlobalChainMixesFast) {
  const BuiltChain glob = build_fai_global_chain(32);
  EXPECT_LT(mixing_time(glob.chain, 1e-3, 2'000), 300u);
}

TEST(SampleTrajectory, RespectsTransitionStructure) {
  MarkovChain chain(3);
  chain.add_transition(0, 1, 1.0);
  chain.add_transition(1, 2, 1.0);
  chain.add_transition(2, 0, 1.0);
  Xoshiro256pp rng(5);
  const auto traj = sample_trajectory(chain, 0, 9, rng);
  const std::vector<std::size_t> expected{1, 2, 0, 1, 2, 0, 1, 2, 0};
  EXPECT_EQ(traj, expected);
}

TEST(SampleTrajectory, OccupationMatchesStationary) {
  MarkovChain chain(2);
  chain.add_transition(0, 1, 0.3);
  chain.add_transition(0, 0, 0.7);
  chain.add_transition(1, 0, 0.6);
  chain.add_transition(1, 1, 0.4);
  Xoshiro256pp rng(11);
  const auto traj = sample_trajectory(chain, 0, 200'000, rng);
  double in_one = 0.0;
  for (std::size_t s : traj) in_one += static_cast<double>(s);
  in_one /= static_cast<double>(traj.size());
  const auto pi = chain.stationary();
  EXPECT_NEAR(in_one, pi[1], 0.01);
}

TEST(SampleTrajectory, BadStartThrows) {
  const MarkovChain chain = lazy_two_state();
  Xoshiro256pp rng(1);
  EXPECT_THROW(sample_trajectory(chain, 7, 10, rng), std::out_of_range);
}

}  // namespace
}  // namespace pwf::markov
