// Witness minimization beyond stack/queue: the public minimize_witness
// API must shrink counter, multi-counter, and set violations to small
// checker-verified-failing cores, using the sound drop discipline for
// each spec kind (down-closed return thresholds for counters, whole-key
// groups for compositional objects).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "check/explore.hpp"
#include "check/hw_capture.hpp"
#include "check/session.hpp"
#include "check/spec.hpp"
#include "check/workloads.hpp"

namespace pwf::check {
namespace {

Operation make_op(std::uint32_t thread, core::OpCode code,
                  std::uint64_t invoke, std::uint64_t response, Value ret,
                  bool with_arg = false, Value arg = 0) {
  Operation op;
  op.thread = thread;
  op.op = code;
  op.has_arg = with_arg;
  op.arg = arg;
  op.has_ret = true;
  op.ret = ret;
  op.invoke = invoke;
  op.response = response;
  return op;
}

LinVerdict verdict_of(const History& h, const std::string& kind) {
  Session session(make_spec(kind), CheckOptions{});
  return session.check(h).verdict;
}

TEST(MinimizeWitness, MinimizableSpecCoversAllSupportedKinds) {
  for (const char* kind : {"stack", "queue", "set", "counter",
                           "multi-counter"}) {
    EXPECT_TRUE(minimizable_spec(kind)) << kind;
  }
  EXPECT_FALSE(minimizable_spec("rcu"));
  EXPECT_FALSE(minimizable_spec("no-such-spec"));
}

TEST(MinimizeWitness, UnknownKindReturnsInputUnchanged) {
  const History failing({make_op(0, core::OpCode::kFetchInc, 0, 1, 7)});
  bool minimized = true;
  const History out =
      minimize_witness(failing, "rcu", CheckOptions{}, 64, &minimized);
  EXPECT_FALSE(minimized);
  EXPECT_EQ(out.size(), failing.size());
}

TEST(MinimizeWitness, CounterThresholdDescentDropsTheCleanSuffix) {
  // Returns 0,1,2 are clean, 3 is duplicated (the lost update), 4,5
  // follow. Down-closed descent keeps exactly the ops with ret < 4: the
  // duplicate pair plus the prefix it needs, and nothing after.
  std::vector<Operation> ops;
  ops.push_back(make_op(0, core::OpCode::kFetchInc, 0, 1, 0));
  ops.push_back(make_op(0, core::OpCode::kFetchInc, 2, 3, 1));
  ops.push_back(make_op(0, core::OpCode::kFetchInc, 4, 5, 2));
  ops.push_back(make_op(1, core::OpCode::kFetchInc, 6, 9, 3));
  ops.push_back(make_op(2, core::OpCode::kFetchInc, 7, 8, 3));
  ops.push_back(make_op(0, core::OpCode::kFetchInc, 10, 11, 4));
  ops.push_back(make_op(0, core::OpCode::kFetchInc, 12, 13, 5));
  const History failing(std::move(ops));
  ASSERT_EQ(verdict_of(failing, "counter"), LinVerdict::kNotLinearizable);

  bool minimized = false;
  const History witness =
      minimize_witness(failing, "counter", CheckOptions{}, 64, &minimized);
  EXPECT_TRUE(minimized);
  EXPECT_EQ(witness.size(), 5u);  // rets {0, 1, 2, 3, 3}
  for (const Operation& op : witness.operations()) {
    EXPECT_LT(op.ret, 4u);
  }
  EXPECT_EQ(verdict_of(witness, "counter"), LinVerdict::kNotLinearizable);
}

TEST(MinimizeWitness, CounterKeepsPendingOperations) {
  // A pending increment never drops: it may be the justification for a
  // kept return, and the down-closed rule only ranks completed returns.
  std::vector<Operation> ops;
  ops.push_back(make_op(0, core::OpCode::kFetchInc, 0, 3, 0));
  ops.push_back(make_op(1, core::OpCode::kFetchInc, 1, 2, 0));  // duplicate
  Operation pending = make_op(2, core::OpCode::kFetchInc, 4, 0, 0);
  pending.response = Operation::kPending;
  pending.has_ret = false;
  ops.push_back(pending);
  ops.push_back(make_op(0, core::OpCode::kFetchInc, 5, 6, 2));
  const History failing(std::move(ops));
  ASSERT_EQ(verdict_of(failing, "counter"), LinVerdict::kNotLinearizable);

  bool minimized = false;
  const History witness =
      minimize_witness(failing, "counter", CheckOptions{}, 64, &minimized);
  EXPECT_EQ(verdict_of(witness, "counter"), LinVerdict::kNotLinearizable);
  bool has_pending = false;
  for (const Operation& op : witness.operations()) {
    has_pending |= !op.completed();
  }
  EXPECT_TRUE(has_pending);
}

TEST(MinimizeWitness, SetShrinksToTheOffendingKeyGroup) {
  // Keys 10 and 20 behave; key 7 reports contains -> found with no
  // insert anywhere. Whole-key-group ddmin must isolate key 7.
  std::vector<Operation> ops;
  ops.push_back(make_op(0, core::OpCode::kInsert, 0, 1, 1, true, 10));
  ops.push_back(make_op(1, core::OpCode::kContains, 2, 3, 1, true, 10));
  ops.push_back(make_op(0, core::OpCode::kInsert, 4, 5, 1, true, 20));
  ops.push_back(make_op(1, core::OpCode::kErase, 6, 7, 1, true, 20));
  ops.push_back(make_op(2, core::OpCode::kContains, 8, 9, 1, true, 7));
  ops.push_back(make_op(0, core::OpCode::kContains, 10, 11, 0, true, 20));
  const History failing(std::move(ops));
  ASSERT_EQ(verdict_of(failing, "set"), LinVerdict::kNotLinearizable);

  bool minimized = false;
  const History witness =
      minimize_witness(failing, "set", CheckOptions{}, 64, &minimized);
  EXPECT_TRUE(minimized);
  EXPECT_EQ(witness.size(), 1u);  // the phantom contains(7) alone
  EXPECT_EQ(witness.operations()[0].arg, 7u);
  EXPECT_EQ(verdict_of(witness, "set"), LinVerdict::kNotLinearizable);
}

TEST(MinimizeWitness, MultiCounterDropsCleanObjectsThenCleanSuffixes) {
  // Object 1 is clean; object 2 duplicates return 0 and then counts on.
  // Group ddmin drops object 1 entirely, the per-object suffix descent
  // then strips object 2's clean tail.
  std::vector<Operation> ops;
  ops.push_back(make_op(0, core::OpCode::kFetchInc, 0, 1, 0, true, 1));
  ops.push_back(make_op(0, core::OpCode::kFetchInc, 2, 3, 1, true, 1));
  ops.push_back(make_op(1, core::OpCode::kFetchInc, 4, 7, 0, true, 2));
  ops.push_back(make_op(2, core::OpCode::kFetchInc, 5, 6, 0, true, 2));
  ops.push_back(make_op(1, core::OpCode::kFetchInc, 8, 9, 1, true, 2));
  ops.push_back(make_op(1, core::OpCode::kFetchInc, 10, 11, 2, true, 2));
  const History failing(std::move(ops));
  ASSERT_EQ(verdict_of(failing, "multi-counter"),
            LinVerdict::kNotLinearizable);

  bool minimized = false;
  const History witness = minimize_witness(failing, "multi-counter",
                                           CheckOptions{}, 64, &minimized);
  EXPECT_TRUE(minimized);
  EXPECT_EQ(witness.size(), 2u);  // the duplicate pair on object 2
  for (const Operation& op : witness.operations()) {
    EXPECT_EQ(op.arg, 2u);
    EXPECT_EQ(op.ret, 0u);
  }
  EXPECT_EQ(verdict_of(witness, "multi-counter"),
            LinVerdict::kNotLinearizable);
}

TEST(MinimizeWitness, RacyCounterMutantWitnessShrinksEndToEnd) {
  // Drive the real mutant: explore finds an unminimized failing trace,
  // replay yields the history, and the counter minimizer produces a
  // checker-verified-failing witness no larger than the capture.
  const Workload& w = find_workload("mut-racy-counter");
  ASSERT_EQ(w.spec_kind, "counter");
  ExploreOptions o;
  o.schedules = 40;
  o.base_seed = 20140721;
  o.minimize = false;
  o.stop_at_first = true;
  const ExploreResult r = explore(w, o);
  ASSERT_TRUE(r.witness.has_value());
  const RunOutcome replay =
      replay_trace(w, r.witness->trace, /*strict=*/true, o.check);
  ASSERT_EQ(replay.lin.verdict, LinVerdict::kNotLinearizable);

  bool minimized = false;
  const History witness = minimize_witness(replay.history, "counter",
                                           CheckOptions{}, 64, &minimized);
  EXPECT_LE(witness.size(), replay.history.size());
  EXPECT_EQ(verdict_of(witness, "counter"), LinVerdict::kNotLinearizable);
  // The duplicate return bounds every kept completed op from above: the
  // clean suffix beyond the collision is gone.
  Value max_ret = 0;
  for (const Operation& op : witness.operations()) {
    if (op.completed() && op.has_ret) max_ret = std::max(max_ret, op.ret);
  }
  std::size_t at_max = 0;
  for (const Operation& op : witness.operations()) {
    if (op.completed() && op.has_ret && op.ret == max_ret) ++at_max;
  }
  EXPECT_GE(at_max, 2u) << "witness should end at the duplicated return";
}

TEST(MinimizeWitness, StackPairUnitsStillShrink) {
  // Regression for the pre-existing discipline: an out-of-thin-air pop
  // among innocent push/pop pairs shrinks to the phantom pop alone.
  std::vector<Operation> ops;
  ops.push_back(make_op(0, core::OpCode::kPush, 0, 1, 0, true, 11));
  ops.push_back(make_op(0, core::OpCode::kPop, 2, 3, 11));
  ops.push_back(make_op(1, core::OpCode::kPush, 4, 5, 0, true, 22));
  ops.push_back(make_op(1, core::OpCode::kPop, 6, 7, 22));
  ops.push_back(make_op(2, core::OpCode::kPop, 8, 9, 99));  // phantom
  const History failing(std::move(ops));
  ASSERT_EQ(verdict_of(failing, "stack"), LinVerdict::kNotLinearizable);

  bool minimized = false;
  const History witness =
      minimize_witness(failing, "stack", CheckOptions{}, 64, &minimized);
  EXPECT_TRUE(minimized);
  EXPECT_LT(witness.size(), failing.size());
  EXPECT_EQ(verdict_of(witness, "stack"), LinVerdict::kNotLinearizable);
}

}  // namespace
}  // namespace pwf::check
