// Tests for SCC decomposition, periodicity and the ergodicity report.
#include "markov/graph.hpp"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

namespace pwf::markov {
namespace {

TEST(Scc, SingleStateSelfLoop) {
  MarkovChain chain(1);
  chain.add_transition(0, 0, 1.0);
  std::size_t count = 0;
  const auto ids = strongly_connected_components(chain, &count);
  EXPECT_EQ(count, 1u);
  EXPECT_EQ(ids[0], 0u);
}

TEST(Scc, TwoIsolatedComponents) {
  MarkovChain chain(4);
  chain.add_transition(0, 1, 1.0);
  chain.add_transition(1, 0, 1.0);
  chain.add_transition(2, 3, 1.0);
  chain.add_transition(3, 2, 1.0);
  std::size_t count = 0;
  const auto ids = strongly_connected_components(chain, &count);
  EXPECT_EQ(count, 2u);
  EXPECT_EQ(ids[0], ids[1]);
  EXPECT_EQ(ids[2], ids[3]);
  EXPECT_NE(ids[0], ids[2]);
}

TEST(Scc, ChainOfSingletons) {
  // 0 -> 1 -> 2 (with 2 absorbing): three SCCs.
  MarkovChain chain(3);
  chain.add_transition(0, 1, 1.0);
  chain.add_transition(1, 2, 1.0);
  chain.add_transition(2, 2, 1.0);
  std::size_t count = 0;
  const auto ids = strongly_connected_components(chain, &count);
  EXPECT_EQ(count, 3u);
  const std::set<std::size_t> unique(ids.begin(), ids.end());
  EXPECT_EQ(unique.size(), 3u);
}

TEST(Scc, CycleWithTailIsTwoComponents) {
  // 0 -> 1 <-> 2: singleton {0} plus component {1, 2}.
  MarkovChain chain(3);
  chain.add_transition(0, 1, 1.0);
  chain.add_transition(1, 2, 1.0);
  chain.add_transition(2, 1, 1.0);
  std::size_t count = 0;
  const auto ids = strongly_connected_components(chain, &count);
  EXPECT_EQ(count, 2u);
  EXPECT_EQ(ids[1], ids[2]);
  EXPECT_NE(ids[0], ids[1]);
}

TEST(Period, PureCycleHasPeriodN) {
  for (std::size_t n : {2, 3, 5, 8}) {
    MarkovChain chain(n);
    for (std::size_t s = 0; s < n; ++s) {
      chain.add_transition(s, (s + 1) % n, 1.0);
    }
    EXPECT_EQ(chain_period(chain), n) << "cycle length " << n;
  }
}

TEST(Period, SelfLoopMakesAperiodic) {
  MarkovChain chain(3);
  chain.add_transition(0, 1, 1.0);
  chain.add_transition(1, 2, 1.0);
  chain.add_transition(2, 0, 0.5);
  chain.add_transition(2, 2, 0.5);
  EXPECT_EQ(chain_period(chain), 1u);
}

TEST(Period, TwoAndThreeCyclesGivePeriodOne) {
  // Cycles of length 2 and 3 through state 0: gcd(2, 3) = 1.
  MarkovChain chain(4);
  chain.add_transition(0, 1, 0.5);  // 0-1-0: length 2
  chain.add_transition(1, 0, 1.0);
  chain.add_transition(0, 2, 0.5);  // 0-2-3-0: length 3
  chain.add_transition(2, 3, 1.0);
  chain.add_transition(3, 0, 1.0);
  EXPECT_EQ(chain_period(chain), 1u);
}

TEST(Period, EvenCyclesGivePeriodTwo) {
  // Cycles of length 2 and 4 through state 0: gcd = 2.
  MarkovChain chain(4);
  chain.add_transition(0, 1, 0.5);
  chain.add_transition(1, 0, 1.0);
  chain.add_transition(0, 2, 0.5);
  chain.add_transition(2, 3, 1.0);
  chain.add_transition(3, 1, 1.0);  // 0-2-3-1-0: length 4
  EXPECT_EQ(chain_period(chain), 2u);
}

TEST(Period, ThrowsOnReducibleChain) {
  MarkovChain chain(2);
  chain.add_transition(0, 0, 1.0);
  chain.add_transition(1, 0, 1.0);
  EXPECT_THROW(chain_period(chain), std::logic_error);
}

TEST(Ergodicity, FullReport) {
  MarkovChain good(2);
  good.add_transition(0, 1, 0.5);
  good.add_transition(0, 0, 0.5);
  good.add_transition(1, 0, 1.0);
  const auto report = analyze_ergodicity(good);
  EXPECT_TRUE(report.irreducible);
  EXPECT_EQ(report.period, 1u);
  EXPECT_TRUE(report.aperiodic);
  EXPECT_TRUE(report.ergodic);
}

TEST(Ergodicity, PeriodicIsNotErgodic) {
  MarkovChain cycle(2);
  cycle.add_transition(0, 1, 1.0);
  cycle.add_transition(1, 0, 1.0);
  const auto report = analyze_ergodicity(cycle);
  EXPECT_TRUE(report.irreducible);
  EXPECT_EQ(report.period, 2u);
  EXPECT_FALSE(report.ergodic);
}

TEST(Ergodicity, ReducibleIsNotErgodic) {
  MarkovChain chain(2);
  chain.add_transition(0, 1, 1.0);
  chain.add_transition(1, 1, 1.0);
  const auto report = analyze_ergodicity(chain);
  EXPECT_FALSE(report.irreducible);
  EXPECT_EQ(report.num_sccs, 2u);
  EXPECT_FALSE(report.ergodic);
}

}  // namespace
}  // namespace pwf::markov
