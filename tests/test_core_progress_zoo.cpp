// Tests for the Section 2.2 progress-property zoo: the blocking spinlock
// counter (deadlock-free, not non-blocking) and the obstruction-free
// claim-pair (maximal progress only in isolation; livelocks under
// lock-step interference; practically wait-free under the stochastic
// scheduler by Theorem 3's clash-free case).
#include "core/progress_zoo.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "core/algorithms.hpp"
#include "core/progress.hpp"
#include "core/simulation.hpp"

namespace pwf::core {
namespace {

// ---- spinlock counter -------------------------------------------------------

TEST(SpinlockCounter, SoloCompletesEveryFourSteps) {
  SharedMemory mem(SpinlockCounter::registers_required());
  SpinlockCounter alg(0);
  for (int op = 0; op < 5; ++op) {
    EXPECT_FALSE(alg.step(mem));  // acquire
    EXPECT_FALSE(alg.step(mem));  // read
    EXPECT_FALSE(alg.step(mem));  // write
    EXPECT_TRUE(alg.step(mem));   // release
  }
  EXPECT_EQ(mem.peek(1), 5u);
  EXPECT_EQ(mem.peek(0), 0u);  // lock free at quiescence
}

TEST(SpinlockCounter, CounterIsExactUnderUniformScheduler) {
  constexpr std::size_t kN = 6;
  Simulation::Options opts;
  opts.num_registers = SpinlockCounter::registers_required();
  opts.seed = 3;
  Simulation sim(kN, SpinlockCounter::factory(),
                 std::make_unique<UniformScheduler>(), opts);
  sim.run(300'000);
  // The counter leads completions by one when the run ends with a process
  // inside the critical section after its write but before its release.
  const Value counter = sim.memory().peek(1);
  const auto completions = static_cast<Value>(sim.report().completions);
  EXPECT_GE(counter, completions);
  EXPECT_LE(counter, completions + 1);
  // Deadlock-free in practice becomes starvation-free: everyone completes.
  EXPECT_GT(sim.report().min_completions(), 1'000u);
}

TEST(SpinlockCounter, CrashedLockHolderBlocksEveryoneForever) {
  // The blocking/non-blocking dichotomy of Section 2.2: crash the lock
  // holder and the whole system halts.
  constexpr std::size_t kN = 4;
  std::vector<const SpinlockCounter*> machines;
  Simulation::Options opts;
  opts.num_registers = SpinlockCounter::registers_required();
  opts.seed = 5;
  auto factory = [&machines](std::size_t pid, std::size_t /*n*/) {
    auto m = std::make_unique<SpinlockCounter>(pid);
    machines.push_back(m.get());
    return m;
  };
  Simulation sim(kN, factory, std::make_unique<UniformScheduler>(), opts);
  // Step until someone holds the lock, then crash exactly that process.
  std::size_t holder = kN;
  while (holder == kN) {
    sim.run(1);
    for (std::size_t p = 0; p < kN; ++p) {
      if (machines[p]->holds_lock()) holder = p;
    }
  }
  sim.schedule_crash(sim.now(), holder);
  const std::uint64_t completions_before = sim.report().completions;
  sim.run(200'000);
  EXPECT_EQ(sim.report().completions, completions_before)
      << "a blocking algorithm must make no progress after the holder dies";
}

TEST(SpinlockCounter, LockFreeControlSurvivesTheSameCrash) {
  // Control: scan-validate shrugs off any crash (non-blocking).
  constexpr std::size_t kN = 4;
  Simulation::Options opts;
  opts.num_registers = ScuAlgorithm::registers_required(kN, 1);
  opts.seed = 5;
  Simulation sim(kN, scan_validate_factory(),
                 std::make_unique<UniformScheduler>(), opts);
  sim.run(50);
  sim.schedule_crash(sim.now(), 0);
  const std::uint64_t before = sim.report().completions;
  sim.run(200'000);
  EXPECT_GT(sim.report().completions, before + 10'000);
}

// ---- obstruction-free claim pair --------------------------------------------

TEST(ObstructionPair, SoloCompletesEveryFourSteps) {
  SharedMemory mem(ObstructionPair::registers_required());
  ObstructionPair alg(0, 1);
  for (int op = 0; op < 5; ++op) {
    EXPECT_FALSE(alg.step(mem));
    EXPECT_FALSE(alg.step(mem));
    EXPECT_FALSE(alg.step(mem));
    EXPECT_TRUE(alg.step(mem));
  }
}

TEST(ObstructionPair, LockStepInterferenceLivelocks) {
  // Under strict round-robin with two processes, at most one early
  // operation completes before the writes settle into the mutual-
  // invalidation cycle: minimal progress fails, so the algorithm is NOT
  // lock-free (it is obstruction-free only).
  Simulation::Options opts;
  opts.num_registers = ObstructionPair::registers_required();
  Simulation sim(2, ObstructionPair::factory(),
                 std::make_unique<RoundRobinScheduler>(), opts);
  sim.run(100'000);
  EXPECT_LE(sim.report().completions, 2u);
}

TEST(ObstructionPair, CraftedAdversaryYieldsZeroCompletions) {
  // The 6-step mutual-overwrite cycle, entered from the very first steps:
  // p0 takes two steps, then strict alternation starting with p1.
  Simulation::Options opts;
  opts.num_registers = ObstructionPair::registers_required();
  Simulation sim(2, ObstructionPair::factory(),
                 std::make_unique<AdversarialScheduler>(
                     [](std::uint64_t tau, std::span<const std::size_t> a) {
                       if (tau < 2) return a.front();
                       return tau % 2 == 0 ? a.back() : a.front();
                     }),
                 opts);
  sim.run(120'000);
  EXPECT_EQ(sim.report().completions, 0u)
      << "the crafted schedule must livelock the claim pair completely";
}

TEST(ObstructionPair, ScanValidateSurvivesTheSameAdversary) {
  // Control: the lock-free algorithm guarantees minimal progress under
  // EVERY schedule, including the one that livelocks the OF pair.
  constexpr std::size_t kN = 2;
  Simulation::Options opts;
  opts.num_registers = ScuAlgorithm::registers_required(kN, 1);
  Simulation sim(kN, scan_validate_factory(),
                 std::make_unique<AdversarialScheduler>(
                     [](std::uint64_t tau, std::span<const std::size_t> a) {
                       if (tau < 2) return a.front();
                       return tau % 2 == 0 ? a.back() : a.front();
                     }),
                 opts);
  sim.run(120'000);
  EXPECT_GT(sim.report().completions, 10'000u);
}

TEST(ObstructionPair, StochasticSchedulerRestoresMaximalProgress) {
  // Theorem 3 covers bounded clash-freedom: under the uniform scheduler
  // every process keeps completing despite the livelock potential.
  constexpr std::size_t kN = 6;
  Simulation::Options opts;
  opts.num_registers = ObstructionPair::registers_required();
  opts.seed = 9;
  Simulation sim(kN, ObstructionPair::factory(),
                 std::make_unique<UniformScheduler>(), opts);
  ProgressTracker tracker(kN);
  sim.set_observer(&tracker);
  sim.run(1'000'000);
  EXPECT_TRUE(tracker.every_process_completed());
  for (std::size_t p = 0; p < kN; ++p) {
    EXPECT_GT(tracker.completions(p), 500u) << "process " << p;
  }
}

TEST(ObstructionPair, LatencyIsWorseThanLockFreeUnderUniform) {
  // The price of the weaker guarantee: restarts cost the OF pair more
  // than scan-validate's CAS failures at the same n.
  constexpr std::size_t kN = 8;
  Simulation::Options opts;
  opts.num_registers = ObstructionPair::registers_required();
  opts.seed = 10;
  Simulation of_sim(kN, ObstructionPair::factory(),
                    std::make_unique<UniformScheduler>(), opts);
  of_sim.run(100'000);
  of_sim.reset_stats();
  of_sim.run(800'000);

  Simulation::Options lf_opts;
  lf_opts.num_registers = ScuAlgorithm::registers_required(kN, 1);
  lf_opts.seed = 10;
  Simulation lf_sim(kN, scan_validate_factory(),
                    std::make_unique<UniformScheduler>(), lf_opts);
  lf_sim.run(100'000);
  lf_sim.reset_stats();
  lf_sim.run(800'000);

  EXPECT_GT(of_sim.report().system_latency(),
            lf_sim.report().system_latency());
}

}  // namespace
}  // namespace pwf::core
