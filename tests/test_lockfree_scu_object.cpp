// Tests for the universal SCU-pattern object: sequential semantics, exact
// concurrent updates, snapshot reads, and attempt accounting.
#include "lockfree/scu_object.hpp"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <thread>
#include <vector>

namespace pwf::lockfree {
namespace {

TEST(ScuObject, AppliesUpdatesSequentially) {
  EbrDomain domain;
  EbrThreadHandle handle(domain);
  ScuObject<int> object(domain, 10);
  const auto [result, attempts] =
      object.apply(handle, [](int& state) { return state += 5; });
  EXPECT_EQ(result, 15);
  EXPECT_EQ(attempts, 1u);
  EXPECT_EQ(object.read(handle, [](const int& s) { return s; }), 15);
}

TEST(ScuObject, UpdateReturnValuePropagates) {
  EbrDomain domain;
  EbrThreadHandle handle(domain);
  ScuObject<std::string> object(domain, "a");
  const auto [old_size, attempts] = object.apply(handle, [](std::string& s) {
    const auto before = s.size();
    s += "bc";
    return before;
  });
  EXPECT_EQ(old_size, 1u);
  EXPECT_EQ(object.read(handle, [](const std::string& s) { return s; }), "abc");
}

TEST(ScuObject, WorksWithCompositeState) {
  // The universal construction wraps any copyable sequential object; use a
  // map as a stand-in for "any object".
  EbrDomain domain;
  EbrThreadHandle handle(domain);
  ScuObject<std::map<std::string, int>> object(domain);
  object.apply(handle, [](auto& m) { return m["x"] = 1; });
  object.apply(handle, [](auto& m) { return m["y"] = 2; });
  object.apply(handle, [](auto& m) { return ++m["x"]; });
  EXPECT_EQ(object.read(handle, [](const auto& m) { return m.at("x"); }), 2);
  EXPECT_EQ(object.read(handle, [](const auto& m) { return m.at("y"); }), 2);
}

TEST(ScuObject, ConcurrentIncrementsAreExact) {
  EbrDomain domain;
  ScuObject<std::uint64_t> object(domain, 0);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10'000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      EbrThreadHandle handle(domain);
      for (int i = 0; i < kPerThread; ++i) {
        object.apply(handle, [](std::uint64_t& v) { return ++v; });
      }
    });
  }
  for (auto& w : workers) w.join();
  EbrThreadHandle handle(domain);
  EXPECT_EQ(object.read(handle, [](const std::uint64_t& v) { return v; }),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(ScuObject, ConcurrentResultsAreUniqueTickets) {
  // Each apply returns the post-increment value; under linearizability
  // these must form a permutation of 1..total.
  EbrDomain domain;
  ScuObject<std::uint64_t> object(domain, 0);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5'000;
  std::vector<std::vector<std::uint64_t>> results(kThreads);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      EbrThreadHandle handle(domain);
      for (int i = 0; i < kPerThread; ++i) {
        results[t].push_back(
            object.apply(handle, [](std::uint64_t& v) { return ++v; }).first);
      }
    });
  }
  for (auto& w : workers) w.join();
  std::vector<bool> seen(kThreads * kPerThread + 1, false);
  for (const auto& batch : results) {
    for (std::uint64_t ticket : batch) {
      ASSERT_GE(ticket, 1u);
      ASSERT_LE(ticket, static_cast<std::uint64_t>(kThreads) * kPerThread);
      ASSERT_FALSE(seen[ticket]) << "duplicate ticket " << ticket;
      seen[ticket] = true;
    }
  }
}

TEST(ScuObject, OldStatesAreReclaimed) {
  EbrDomain domain;
  {
    EbrThreadHandle handle(domain);
    ScuObject<int> object(domain, 0);
    for (int i = 0; i < 10'000; ++i) {
      object.apply(handle, [](int& v) { return ++v; });
    }
    // The handle's automatic collection keeps retirement bounded.
    EXPECT_LT(domain.retired_count(), 500u);
    EXPECT_GT(domain.freed_count(), 9'000u);
  }
}

}  // namespace
}  // namespace pwf::lockfree
