// Tests for the ASCII table renderer used by the bench harness.
#include "util/table.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace pwf {
namespace {

TEST(Table, RejectsEmptyHeader) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, RejectsRowWidthMismatch) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(t.add_row({"1", "2", "3"}), std::invalid_argument);
}

TEST(Table, RendersAlignedColumns) {
  Table t({"n", "value"});
  t.add_row({"1", "10.5"});
  t.add_row({"100", "2"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("|   n | value |"), std::string::npos);
  EXPECT_NE(out.find("|   1 |  10.5 |"), std::string::npos);
  EXPECT_NE(out.find("| 100 |     2 |"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, EmptyBodyStillRendersHeader) {
  Table t({"x"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("| x |"), std::string::npos);
}

TEST(Fmt, Doubles) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(2.0, 0), "2");
  EXPECT_EQ(fmt(-1.5, 1), "-1.5");
}

TEST(Fmt, Integers) {
  EXPECT_EQ(fmt(std::uint64_t{18446744073709551615ULL}),
            "18446744073709551615");
  EXPECT_EQ(fmt(std::int64_t{-42}), "-42");
  EXPECT_EQ(fmt(7), "7");
  EXPECT_EQ(fmt(7u), "7");
}

}  // namespace
}  // namespace pwf
