// Tests for Markov-chain lifting verification and collapse (paper,
// Section 3: Definition 2 and Lemma 1).
#include "markov/lifting.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace pwf::markov {
namespace {

// A 4-state chain symmetric under swapping {0,1} and {2,3}; collapsing the
// pairs yields an exact 2-state lifting base.
MarkovChain symmetric_four_state() {
  MarkovChain chain(4);
  // States 0,1 form cluster A; 2,3 form cluster B.
  // From any A state: stay in A (split over both A states) w.p. 0.6,
  // move to B (split) w.p. 0.4, and symmetrically from B with 0.3/0.7.
  for (std::size_t s : {0, 1}) {
    chain.add_transition(s, 0, 0.3);
    chain.add_transition(s, 1, 0.3);
    chain.add_transition(s, 2, 0.2);
    chain.add_transition(s, 3, 0.2);
  }
  for (std::size_t s : {2, 3}) {
    chain.add_transition(s, 0, 0.35);
    chain.add_transition(s, 1, 0.35);
    chain.add_transition(s, 2, 0.15);
    chain.add_transition(s, 3, 0.15);
  }
  return chain;
}

MarkovChain collapsed_two_state() {
  MarkovChain base(2);
  base.add_transition(0, 0, 0.6);
  base.add_transition(0, 1, 0.4);
  base.add_transition(1, 0, 0.7);
  base.add_transition(1, 1, 0.3);
  return base;
}

TEST(Lifting, VerifiesTrueLifting) {
  const MarkovChain lifted = symmetric_four_state();
  const MarkovChain base = collapsed_two_state();
  const std::vector<std::size_t> f{0, 0, 1, 1};
  const auto check = verify_lifting(lifted, base, f);
  EXPECT_TRUE(check.is_lifting);
  EXPECT_LT(check.max_flow_error, 1e-10);
  EXPECT_LT(check.max_stationary_error, 1e-10);
}

TEST(Lifting, RejectsWrongBaseChain) {
  const MarkovChain lifted = symmetric_four_state();
  MarkovChain wrong(2);
  wrong.add_transition(0, 0, 0.5);
  wrong.add_transition(0, 1, 0.5);
  wrong.add_transition(1, 0, 0.5);
  wrong.add_transition(1, 1, 0.5);
  const std::vector<std::size_t> f{0, 0, 1, 1};
  const auto check = verify_lifting(lifted, wrong, f);
  EXPECT_FALSE(check.is_lifting);
  EXPECT_GT(check.max_flow_error, 1e-3);
}

TEST(Lifting, RejectsWrongMapping) {
  const MarkovChain lifted = symmetric_four_state();
  const MarkovChain base = collapsed_two_state();
  // Mixing the clusters breaks the flow homomorphism.
  const std::vector<std::size_t> f{0, 1, 0, 1};
  const auto check = verify_lifting(lifted, base, f);
  EXPECT_FALSE(check.is_lifting);
}

TEST(Lifting, SizeMismatchThrows) {
  const MarkovChain lifted = symmetric_four_state();
  const MarkovChain base = collapsed_two_state();
  EXPECT_THROW(
      verify_lifting(lifted, base, std::vector<std::size_t>{0, 0, 1}),
      std::invalid_argument);
  EXPECT_THROW(
      verify_lifting(lifted, base, std::vector<std::size_t>{0, 0, 1, 5}),
      std::invalid_argument);
}

TEST(Lifting, IdentityMapIsAlwaysALifting) {
  const MarkovChain chain = collapsed_two_state();
  const std::vector<std::size_t> id{0, 1};
  const auto check = verify_lifting(chain, chain, id);
  EXPECT_TRUE(check.is_lifting);
}

TEST(Collapse, RecoversBaseChain) {
  const MarkovChain lifted = symmetric_four_state();
  const std::vector<std::size_t> f{0, 0, 1, 1};
  const MarkovChain collapsed = collapse(lifted, f, 2);
  collapsed.validate(1e-9);
  EXPECT_NEAR(collapsed.transition_prob(0, 0), 0.6, 1e-10);
  EXPECT_NEAR(collapsed.transition_prob(0, 1), 0.4, 1e-10);
  EXPECT_NEAR(collapsed.transition_prob(1, 0), 0.7, 1e-10);
  EXPECT_NEAR(collapsed.transition_prob(1, 1), 0.3, 1e-10);
}

TEST(Collapse, CollapsedChainVerifiesAsLifting) {
  const MarkovChain lifted = symmetric_four_state();
  const std::vector<std::size_t> f{0, 0, 1, 1};
  const MarkovChain base = collapse(lifted, f, 2);
  const auto check = verify_lifting(lifted, base, f);
  EXPECT_TRUE(check.is_lifting);
}

TEST(Collapse, MappingOutOfRangeThrows) {
  const MarkovChain lifted = symmetric_four_state();
  EXPECT_THROW(collapse(lifted, std::vector<std::size_t>{0, 0, 1, 7}, 2),
               std::invalid_argument);
}

}  // namespace
}  // namespace pwf::markov
