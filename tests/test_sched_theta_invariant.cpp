// Empirical Definition-1 check for every stochastic scheduler in the
// repo: over a long run, each active process must be scheduled with
// frequency at least theta(n) — the weak-fairness threshold the paper's
// Theorem 3 hypotheses rest on. (Adversarial/round-robin schedulers
// declare theta = 0 and are exempt by definition.)
#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <span>
#include <string>
#include <vector>

#include "core/scheduler.hpp"

namespace pwf::core {
namespace {

constexpr std::size_t kN = 6;
constexpr int kDraws = 1'000'000;

struct Candidate {
  std::string label;
  std::unique_ptr<Scheduler> scheduler;
};

std::vector<Candidate> stochastic_schedulers() {
  std::vector<Candidate> out;
  out.push_back({"uniform", std::make_unique<UniformScheduler>()});
  out.push_back({"weighted 1..n",
                 std::make_unique<WeightedScheduler>(
                     std::vector<double>{1, 2, 3, 4, 5, 6})});
  out.push_back({"zipf 1.0", std::make_unique<WeightedScheduler>(
                                 make_zipf_scheduler(kN, 1.0))});
  out.push_back({"lottery", std::make_unique<WeightedScheduler>(
                                make_lottery_scheduler(
                                    {1, 1, 2, 3, 5, 8}))});
  out.push_back({"sticky 0.8", std::make_unique<StickyScheduler>(0.8)});
  out.push_back(
      {"theta-mix 0.05 over adversary",
       std::make_unique<ThetaMixScheduler>(
           0.05, std::make_unique<AdversarialScheduler>(
                     [](std::uint64_t, std::span<const std::size_t> active) {
                       return active.back();
                     }))});
  return out;
}

TEST(ThetaInvariant, EveryProcessScheduledAtLeastThetaOfTheTime) {
  for (Candidate& c : stochastic_schedulers()) {
    std::vector<std::size_t> active(kN);
    std::iota(active.begin(), active.end(), std::size_t{0});
    const double theta = c.scheduler->theta(kN);
    ASSERT_GT(theta, 0.0) << c.label;
    ASSERT_LE(theta, 1.0 / static_cast<double>(kN)) << c.label;

    Xoshiro256pp rng(20140701);
    std::vector<std::uint64_t> count(kN, 0);
    for (int i = 0; i < kDraws; ++i) {
      ++count.at(c.scheduler->next(static_cast<std::uint64_t>(i), active,
                                   rng));
    }
    for (std::size_t p = 0; p < kN; ++p) {
      const double freq =
          static_cast<double>(count[p]) / static_cast<double>(kDraws);
      // 5% slack absorbs sampling noise at 1e6 draws; a scheduler whose
      // true frequency dips below theta fails by far more than that.
      EXPECT_GE(freq, 0.95 * theta) << c.label << " process " << p;
    }
  }
}

TEST(ThetaInvariant, HoldsAfterCrashesShrinkTheActiveSet) {
  for (Candidate& c : stochastic_schedulers()) {
    // Crash processes kN-1 and kN-2; notify and re-measure on survivors.
    std::vector<std::size_t> active(kN - 2);
    std::iota(active.begin(), active.end(), std::size_t{0});
    c.scheduler->on_crash(kN - 1);
    c.scheduler->on_crash(kN - 2);
    const double theta = c.scheduler->theta(active.size());
    ASSERT_GT(theta, 0.0) << c.label;

    Xoshiro256pp rng(20140702);
    std::vector<std::uint64_t> count(kN, 0);
    for (int i = 0; i < kDraws; ++i) {
      ++count.at(c.scheduler->next(static_cast<std::uint64_t>(i), active,
                                   rng));
    }
    EXPECT_EQ(count[kN - 1], 0u) << c.label;
    EXPECT_EQ(count[kN - 2], 0u) << c.label;
    for (std::size_t p = 0; p + 2 < kN; ++p) {
      const double freq =
          static_cast<double>(count[p]) / static_cast<double>(kDraws);
      EXPECT_GE(freq, 0.95 * theta) << c.label << " process " << p;
    }
  }
}

}  // namespace
}  // namespace pwf::core
