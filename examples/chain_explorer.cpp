// chain_explorer — interactive window into the analysis layer: build any
// of the paper's Markov chains from the command line and print its
// structure, ergodicity report, stationary distribution, latencies, and
// (for individual chains) the exact per-operation latency quantiles.
//
// Usage:
//   ./examples/chain_explorer scan-validate <n>
//   ./examples/chain_explorer scu <n> <s>
//   ./examples/chain_explorer parallel <n> <q>
//   ./examples/chain_explorer fai <n>
//   ./examples/chain_explorer system scan-validate <n>   (collapsed chain)
//   ./examples/chain_explorer system fai <n>
#include <cstdlib>
#include <iostream>
#include <string>

#include "markov/builders.hpp"
#include "markov/graph.hpp"
#include "markov/mixing.hpp"
#include "markov/op_latency.hpp"
#include "util/table.hpp"

namespace {

using namespace pwf;
using namespace pwf::markov;

void usage() {
  std::cerr << "usage: chain_explorer scan-validate <n> | scu <n> <s> | "
               "parallel <n> <q> | fai <n> | system {scan-validate|fai} <n>\n";
}

void describe(const BuiltChain& built, bool individual) {
  const auto report = analyze_ergodicity(built.chain);
  std::cout << "states:      " << built.chain.num_states() << '\n'
            << "irreducible: " << (report.irreducible ? "yes" : "NO") << '\n'
            << "period:      " << report.period
            << (report.aperiodic ? " (aperiodic)" : "") << '\n';
  const std::size_t mix =
      mixing_time(built.chain, 1e-3, 5'000,
                  std::vector<std::size_t>{built.initial_state},
                  /*lazy=*/true);
  std::cout << "lazy 1e-3 mixing time from the initial state: " << mix
            << " steps\n\n";

  const double w = system_latency(built);
  std::cout << "system latency W:       " << fmt(w, 4) << " steps/op\n";
  if (individual) {
    const double wi = individual_latency_p0(built);
    std::cout << "individual latency W_0: " << fmt(wi, 4) << "  (= "
              << fmt(wi / w, 3) << " x W; Lemma 7 predicts n x W)\n";
    const auto law = op_latency_distribution(
        built, static_cast<std::size_t>(100.0 * wi) + 64);
    std::cout << "\nexact per-operation latency law (process 0):\n";
    Table q({"quantile", "steps"});
    double cum = 0.0;
    std::size_t next = 0;
    const double targets[] = {0.5, 0.9, 0.99, 0.999};
    for (std::size_t t = 0; t < law.pmf.size() && next < 4; ++t) {
      cum += law.pmf[t];
      while (next < 4 && cum >= targets[next]) {
        q.add_row({fmt(100.0 * targets[next], 1) + "%", fmt(t)});
        ++next;
      }
    }
    q.print(std::cout);
  }

  if (built.chain.num_states() <= 40) {
    std::cout << "\nstationary distribution:\n";
    const auto pi = built.chain.stationary();
    Table t({"state", "pi", "P[success]"});
    for (std::size_t s = 0; s < pi.size(); ++s) {
      t.add_row({built.state_names[s], fmt(pi[s], 5),
                 fmt(built.success_prob[s], 3)});
    }
    t.print(std::cout);
  } else {
    std::cout << "\n(" << built.chain.num_states()
              << " states: stationary table suppressed; top-level stats "
                 "above)\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    usage();
    return 2;
  }
  const std::string kind = argv[1];
  try {
    if (kind == "scan-validate") {
      describe(build_scan_validate_individual_chain(
                   std::strtoul(argv[2], nullptr, 10)),
               true);
    } else if (kind == "scu" && argc >= 4) {
      describe(build_scu_scan_individual_chain(
                   std::strtoul(argv[2], nullptr, 10),
                   std::strtoul(argv[3], nullptr, 10)),
               true);
    } else if (kind == "parallel" && argc >= 4) {
      describe(build_parallel_individual_chain(
                   std::strtoul(argv[2], nullptr, 10),
                   std::strtoul(argv[3], nullptr, 10)),
               true);
    } else if (kind == "fai") {
      describe(build_fai_individual_chain(std::strtoul(argv[2], nullptr, 10)),
               true);
    } else if (kind == "system" && argc >= 4) {
      const std::string which = argv[2];
      const std::size_t n = std::strtoul(argv[3], nullptr, 10);
      if (which == "scan-validate") {
        describe(build_scan_validate_system_chain(n), false);
      } else if (which == "fai") {
        describe(build_fai_global_chain(n), false);
      } else {
        usage();
        return 2;
      }
    } else {
      usage();
      return 2;
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
