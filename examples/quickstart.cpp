// Quickstart — the library in one file.
//
// Question the library answers: "my lock-free algorithm has no worst-case
// per-operation bound; what will its latency actually look like?"
//
// 1. Express the algorithm as a step machine (here: the paper's
//    scan-validate pattern, the core of most CAS-based structures).
// 2. Pick a scheduler model (uniform stochastic = what hardware looks like
//    over long runs, per the paper's Appendix A).
// 3. Simulate and read off system/individual latencies.
// 4. Cross-check against the exact Markov-chain analysis and the paper's
//    O(q + s sqrt n) prediction.
//
// Build and run:  ./examples/quickstart [n]
#include <cstdlib>
#include <iostream>
#include <memory>

#include "core/algorithms.hpp"
#include "core/simulation.hpp"
#include "core/theory.hpp"
#include "markov/builders.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace pwf;
  using namespace pwf::core;

  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 8;
  std::cout << "Simulating the scan-validate pattern (SCU(0,1)) with n = "
            << n << " processes under the uniform stochastic scheduler.\n\n";

  // 1-2. Algorithm + scheduler + simulated shared memory.
  Simulation::Options options;
  options.num_registers = ScuAlgorithm::registers_required(n, 1);
  options.seed = 1;  // all runs are reproducible from this seed
  Simulation sim(n, scan_validate_factory(),
                 std::make_unique<UniformScheduler>(), options);

  // 3. Warm up into the stationary regime, then measure.
  sim.run(100'000);
  sim.reset_stats();
  sim.run(1'000'000);
  const LatencyReport& report = sim.report();

  std::cout << "simulated over " << report.steps << " system steps, "
            << report.completions << " completed operations\n\n";

  Table table({"metric", "simulated", "exact chain / theory"});
  const double w_exact =
      (n <= 64) ? markov::system_latency(
                      markov::build_scan_validate_system_chain(n))
                : theory::scu_system_latency(0, 1, n, 1.9);
  table.add_row({"system latency W (steps/op)",
                 fmt(report.system_latency(), 3), fmt(w_exact, 3)});
  table.add_row({"individual latency W_i (worst)",
                 fmt(report.max_individual_latency(), 1),
                 fmt(static_cast<double>(n) * w_exact, 1) + "  (= n*W)"});
  table.add_row({"completion rate (ops/step)",
                 fmt(report.completion_rate(), 4), fmt(1.0 / w_exact, 4)});
  table.print(std::cout);

  std::cout
      << "\nTakeaway (the paper's thesis): the algorithm is only lock-free"
      << "\n-- no worst-case bound exists for any single process -- yet under"
      << "\nthe stochastic scheduler every process completes every "
      << fmt(static_cast<double>(n) * w_exact, 0)
      << " steps on average: wait-free for all practical purposes.\n";
  return 0;
}
