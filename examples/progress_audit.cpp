// progress_audit — use the framework the way a concurrency-library author
// would: audit whether an algorithm's progress guarantee is *practically*
// wait-free before shipping it, across scheduler assumptions.
//
// The audit runs a candidate algorithm under a battery of schedulers
// (uniform, Zipf-skewed, bursty/sticky, theta-mixed adversary, pure
// adversary, plus crash injection) and reports, for each: whether every
// process kept completing, the worst per-process latency, and the
// completion spread. The paper's message shows up directly: bounded
// lock-free algorithms pass every stochastic row and fail only under the
// probability-0 pure adversary; the unbounded Algorithm 1 fails even the
// uniform row.
//
// Usage: ./examples/progress_audit [unbounded|scan-validate|fai]
#include <algorithm>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/algorithms.hpp"
#include "core/progress.hpp"
#include "core/simulation.hpp"
#include "util/table.hpp"

namespace {

using namespace pwf;
using namespace pwf::core;

struct Candidate {
  std::string name;
  StepMachineFactory factory;
  std::size_t registers;
};

Candidate pick_candidate(const std::string& which, std::size_t n) {
  if (which == "unbounded") {
    return {"Algorithm 1 (unbounded lock-free)", UnboundedLockFree::factory(),
            UnboundedLockFree::registers_required()};
  }
  if (which == "fai") {
    return {"fetch-and-increment (augmented CAS)",
            FetchAndIncrement::factory(),
            FetchAndIncrement::registers_required()};
  }
  return {"scan-validate (bounded lock-free)", scan_validate_factory(),
          ScuAlgorithm::registers_required(n, 1)};
}

std::unique_ptr<Scheduler> make_adversary() {
  return std::make_unique<AdversarialScheduler>(
      [](std::uint64_t, std::span<const std::size_t> active) {
        return active.back();
      },
      "starve-all-but-last");
}

}  // namespace

int main(int argc, char** argv) {
  constexpr std::size_t kN = 8;
  constexpr std::uint64_t kSteps = 2'000'000;
  const Candidate candidate =
      pick_candidate(argc > 1 ? argv[1] : "scan-validate", kN);

  std::cout << "Progress audit: " << candidate.name << ", n = " << kN
            << ", horizon = " << kSteps << " steps\n\n";

  struct SchedulerCase {
    std::string label;
    std::unique_ptr<Scheduler> scheduler;
    std::size_t crashes = 0;
  };
  std::vector<SchedulerCase> cases;
  cases.push_back({"uniform", std::make_unique<UniformScheduler>()});
  cases.push_back(
      {"zipf(1.0) skewed", std::make_unique<WeightedScheduler>(
                               make_zipf_scheduler(kN, 1.0))});
  cases.push_back({"sticky rho=0.9", std::make_unique<StickyScheduler>(0.9)});
  cases.push_back({"theta-mix(0.02) over adversary",
                   std::make_unique<ThetaMixScheduler>(0.02, make_adversary())});
  cases.push_back({"pure adversary (theta=0)", make_adversary()});
  cases.push_back({"uniform + 4 crashes",
                   std::make_unique<UniformScheduler>(), 4});

  Table table({"scheduler", "all progressed?", "min/max completions",
               "worst W_i", "verdict"});
  for (auto& c : cases) {
    Simulation::Options opts;
    opts.num_registers = candidate.registers;
    opts.seed = 7;
    Simulation sim(kN, candidate.factory, std::move(c.scheduler), opts);
    for (std::size_t k = 0; k < c.crashes; ++k) {
      sim.schedule_crash(50'000 * (k + 1), kN - 1 - k);
    }
    ProgressTracker tracker(kN);
    sim.set_observer(&tracker);
    sim.run(kSteps);

    std::uint64_t lo = ~0ULL, hi = 0;
    const std::size_t survivors = kN - c.crashes;
    for (std::size_t p = 0; p < survivors; ++p) {
      lo = std::min(lo, tracker.completions(p));
      hi = std::max(hi, tracker.completions(p));
    }
    double worst = 0.0;
    for (std::size_t p = 0; p < survivors; ++p) {
      if (sim.report().completions_per_process[p] > 0) {
        worst = std::max(worst, sim.report().individual_latency(p));
      }
    }
    const bool all = lo > 0;
    table.add_row({c.label, all ? "yes" : "NO",
                   fmt(lo) + " / " + fmt(hi),
                   lo ? fmt(worst, 0) : "unbounded",
                   all ? "practically wait-free" : "starvation"});
  }
  table.print(std::cout);

  std::cout << "\nReading: a *bounded* lock-free algorithm passes every\n"
               "stochastic row (theta > 0) -- Theorem 3; only the measure-"
               "zero\npure adversary starves it. Run with argument "
               "'unbounded' to watch\nAlgorithm 1 fail even under the "
               "uniform scheduler (Lemma 2).\n";
  return 0;
}
