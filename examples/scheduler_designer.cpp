// scheduler_designer — the paper's Section 8 question, explored: "could
// the choice of wait-free versus lock-free be based simply on what
// assumption a programmer is willing to make about the underlying
// scheduler?"
//
// This example treats the scheduler as the design variable. For a fixed
// bounded lock-free algorithm (scan-validate), it sweeps the scheduler's
// weak-fairness threshold theta from adversarial (0) to uniform (1/n) and
// plots how the worst individual latency responds, then probes two
// non-uniform stochastic models (Zipf skew, stickiness) to show how robust
// the uniform-model predictions are.
//
// Usage: ./examples/scheduler_designer
#include <iostream>
#include <memory>
#include <vector>

#include "core/algorithms.hpp"
#include "core/simulation.hpp"
#include "core/theory.hpp"
#include "markov/builders.hpp"
#include "util/table.hpp"

namespace {

using namespace pwf;
using namespace pwf::core;

struct Measured {
  bool all_completed = true;
  double w = 0.0;
  double worst_wi = 0.0;
};

Measured run(std::size_t n, std::unique_ptr<Scheduler> scheduler,
             std::uint64_t steps) {
  Simulation::Options opts;
  opts.num_registers = ScuAlgorithm::registers_required(n, 1);
  opts.seed = 99;
  Simulation sim(n, scan_validate_factory(), std::move(scheduler), opts);
  sim.run(steps / 10);
  sim.reset_stats();
  sim.run(steps);
  Measured m;
  m.w = sim.report().system_latency();
  for (std::size_t p = 0; p < n; ++p) {
    if (sim.report().completions_per_process[p] == 0) {
      m.all_completed = false;
    } else {
      m.worst_wi =
          std::max(m.worst_wi, sim.report().individual_latency(p));
    }
  }
  return m;
}

std::unique_ptr<Scheduler> adversary() {
  return std::make_unique<AdversarialScheduler>(
      [](std::uint64_t, std::span<const std::size_t> active) {
        return active.back();
      });
}

}  // namespace

int main() {
  constexpr std::size_t kN = 8;
  constexpr std::uint64_t kSteps = 4'000'000;
  const double uniform_theta = 1.0 / static_cast<double>(kN);

  std::cout << "Design question: how much scheduler fairness (theta) does a\n"
               "bounded lock-free algorithm need before helping mechanisms\n"
               "(wait-freedom) stop paying for themselves?  n = " << kN
            << "\n\n";

  std::cout << "1. Sweep theta from adversarial to uniform "
               "(theta-mix over a starving adversary):\n";
  Table sweep({"theta", "all completed?", "system W", "worst W_i",
               "(1/theta)^2 scaling"});
  {
    const Measured pure = run(kN, adversary(), kSteps);
    sweep.add_row({"0.000 (pure adversary)", pure.all_completed ? "yes" : "NO",
                   fmt(pure.w, 2), "unbounded", "n/a"});
  }
  for (double theta : {0.005, 0.01, 0.02, 0.05, 0.10, 0.125}) {
    std::unique_ptr<Scheduler> sched;
    if (theta >= uniform_theta) {
      sched = std::make_unique<UniformScheduler>();
    } else {
      sched = std::make_unique<ThetaMixScheduler>(theta, adversary());
    }
    const Measured m = run(kN, std::move(sched), kSteps);
    sweep.add_row({fmt(theta, 3) + (theta >= uniform_theta ? " (uniform)" : ""),
                   m.all_completed ? "yes" : "NO", fmt(m.w, 2),
                   fmt(m.worst_wi, 0),
                   fmt(theory::theorem3_expected_bound(theta, 2), 0)});
  }
  sweep.print(std::cout);

  std::cout << "\n2. Non-uniform stochastic schedulers (Section 8's open "
               "direction):\n";
  const double w_uniform =
      markov::system_latency(markov::build_scan_validate_system_chain(kN));
  Table robust({"scheduler", "system W", "worst W_i", "W vs uniform-model"});
  struct Case {
    std::string label;
    std::unique_ptr<Scheduler> sched;
  };
  std::vector<Case> cases;
  cases.push_back({"uniform", std::make_unique<UniformScheduler>()});
  cases.push_back({"zipf s=0.5", std::make_unique<WeightedScheduler>(
                                     make_zipf_scheduler(kN, 0.5))});
  cases.push_back({"zipf s=1.0", std::make_unique<WeightedScheduler>(
                                     make_zipf_scheduler(kN, 1.0))});
  cases.push_back({"sticky rho=0.5", std::make_unique<StickyScheduler>(0.5)});
  cases.push_back({"sticky rho=0.9", std::make_unique<StickyScheduler>(0.9)});
  for (auto& c : cases) {
    const Measured m = run(kN, std::move(c.sched), kSteps);
    robust.add_row({c.label, fmt(m.w, 2), fmt(m.worst_wi, 0),
                    fmt(m.w / w_uniform, 2) + "x"});
  }
  robust.print(std::cout);

  std::cout
      << "\nReading: every stochastic scheduler keeps all processes "
         "completing\n(Theorem 3), and even strongly skewed or bursty "
         "schedulers keep the\nsystem latency within a small factor of the "
         "uniform-model value --\nthe paper's uniform approximation is a "
         "robust design assumption.\n";
  return 0;
}
