// concurrent_histogram — a realistic application of the native lock-free
// substrate: multiple threads ingest samples into a shared histogram built
// from the library's SCU-pattern universal object, with a Treiber stack as
// a free-list and a CAS counter handing out batch ids.
//
// This is the workload shape the paper's introduction motivates: ordinary
// application code built on lock-free primitives, whose authors implicitly
// assume every thread keeps making progress. The example measures exactly
// the quantity the paper predicts: CAS attempts per operation under
// contention (the contention factor behind the sqrt(n) law).
//
// Usage: ./examples/concurrent_histogram [threads] [samples-per-thread]
#include <algorithm>
#include <array>
#include <cstdlib>
#include <iostream>
#include <thread>
#include <vector>

#include "lockfree/counter.hpp"
#include "lockfree/ebr.hpp"
#include "lockfree/scu_object.hpp"
#include "lockfree/treiber_stack.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

// The shared sequential state wrapped by the universal object: a fixed
// histogram plus summary stats. Copyable, as the SCU pattern requires.
struct HistogramState {
  static constexpr std::size_t kBuckets = 16;
  std::array<std::uint64_t, kBuckets> counts{};
  std::uint64_t total = 0;
  double sum = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace pwf;
  using namespace pwf::lockfree;

  const std::size_t threads =
      argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 4;
  const std::uint64_t per_thread =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 50'000;

  EbrDomain domain;
  ScuObject<HistogramState> histogram(domain);
  CasCounter batch_ids;
  TreiberStack<std::vector<double>> buffer_pool(domain);

  // Pre-populate the buffer free-list.
  {
    EbrThreadHandle handle(domain);
    for (std::size_t i = 0; i < 2 * threads; ++i) {
      buffer_pool.push(handle, std::vector<double>());
    }
  }

  std::vector<std::uint64_t> cas_attempts(threads, 0);
  std::vector<std::uint64_t> ops(threads, 0);
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      EbrThreadHandle handle(domain);
      Xoshiro256pp rng(1000 + t);
      constexpr std::uint64_t kBatch = 64;
      for (std::uint64_t produced = 0; produced < per_thread;) {
        // Grab a buffer from the lock-free pool (or make one).
        auto buffer = buffer_pool.pop(handle).value_or(std::vector<double>());
        buffer.clear();
        const std::uint64_t batch = batch_ids.fetch_inc().value;
        (void)batch;
        for (std::uint64_t i = 0; i < kBatch && produced < per_thread;
             ++i, ++produced) {
          buffer.push_back(rng.uniform_double() * 16.0);
        }
        // Merge the batch into the shared histogram: one scan-copy-CAS
        // operation of the SCU pattern.
        const auto [_, attempts] =
            histogram.apply(handle, [&buffer](HistogramState& state) {
              for (double x : buffer) {
                const auto bucket = std::min<std::size_t>(
                    HistogramState::kBuckets - 1, static_cast<std::size_t>(x));
                ++state.counts[bucket];
                ++state.total;
                state.sum += x;
              }
              return state.total;
            });
        cas_attempts[t] += attempts;
        ++ops[t];
        buffer_pool.push(handle, std::move(buffer));
      }
    });
  }
  for (auto& w : workers) w.join();

  EbrThreadHandle handle(domain);
  const HistogramState final_state =
      histogram.read(handle, [](const HistogramState& s) { return s; });

  std::cout << "ingested " << final_state.total << " samples on " << threads
            << " threads (expected " << threads * per_thread << ")\n"
            << "mean sample value: "
            << fmt(final_state.sum / static_cast<double>(final_state.total), 4)
            << " (uniform[0,16) => 8.0 expected)\n\n";

  Table table({"thread", "merge ops", "CAS attempts", "attempts/op"});
  std::uint64_t total_ops = 0, total_attempts = 0;
  for (std::size_t t = 0; t < threads; ++t) {
    total_ops += ops[t];
    total_attempts += cas_attempts[t];
    table.add_row({fmt(t), fmt(ops[t]), fmt(cas_attempts[t]),
                   fmt(static_cast<double>(cas_attempts[t]) /
                           static_cast<double>(ops[t]),
                       3)});
  }
  table.print(std::cout);
  std::cout << "overall contention factor (CAS attempts per merge): "
            << fmt(static_cast<double>(total_attempts) /
                       static_cast<double>(total_ops),
                   3)
            << "\n";

  const bool exact = final_state.total == threads * per_thread;
  std::cout << (exact ? "\nno sample lost or duplicated: the lock-free "
                        "pipeline is linearizable.\n"
                      : "\nERROR: sample count mismatch!\n");
  return exact ? 0 : 1;
}
