// latency_planner — a downstream-user tool built on the analysis layer:
// "my service runs a lock-free SCU-style operation on n threads; what
// per-operation latency (mean, p99, p99.9) should I budget, and at what
// thread count does my latency SLO break?"
//
// For small n the answer is exact (the phase-type law from the individual
// chain); for large n the theory layer's scaling laws extrapolate. No
// simulation is run — this is the payoff of having the chain analysis as
// a library.
//
// Usage: ./examples/latency_planner [slo_in_steps] [max_n]
#include <cmath>
#include <cstdlib>
#include <iostream>

#include "core/theory.hpp"
#include "markov/builders.hpp"
#include "markov/op_latency.hpp"
#include "util/table.hpp"

namespace {

using namespace pwf;

/// Smallest t with P[latency > t] <= 1 - q.
std::size_t quantile_of_law(const markov::OpLatencyLaw& law, double q) {
  double cum = 0.0;
  for (std::size_t t = 0; t < law.pmf.size(); ++t) {
    cum += law.pmf[t];
    if (cum >= q) return t;
  }
  return law.pmf.size();
}

}  // namespace

int main(int argc, char** argv) {
  const double slo = argc > 1 ? std::atof(argv[1]) : 200.0;
  const std::size_t max_exact_n = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 7;

  std::cout << "Latency planning for a lock-free scan-validate operation "
               "under the\nuniform stochastic scheduler (all numbers in "
               "system steps).\nSLO: p99 <= " << fmt(slo, 0) << " steps\n\n";

  std::cout << "Exact phase-type law (from the individual Markov chain):\n";
  Table exact({"n", "mean (= n*W)", "p50", "p90", "p99", "p99.9",
               "meets SLO?"});
  std::size_t last_ok = 0;
  for (std::size_t n = 1; n <= max_exact_n; ++n) {
    const auto ind = markov::build_scan_validate_individual_chain(n);
    const double wi = markov::individual_latency_p0(ind);
    const auto law = markov::op_latency_distribution(
        ind, static_cast<std::size_t>(80.0 * wi) + 64);
    const std::size_t p99 = quantile_of_law(law, 0.99);
    if (static_cast<double>(p99) <= slo) last_ok = n;
    exact.add_row({fmt(n), fmt(law.mean, 2), fmt(quantile_of_law(law, 0.50)),
                   fmt(quantile_of_law(law, 0.90)), fmt(p99),
                   fmt(quantile_of_law(law, 0.999)),
                   static_cast<double>(p99) <= slo ? "yes" : "NO"});
  }
  exact.print(std::cout);

  std::cout << "\nAsymptotic extrapolation (mean = n * alpha * sqrt(n); the "
               "exact laws above\nshow p99 ~= 4.8x mean for this workload):\n";
  const double alpha = markov::system_latency(
                           markov::build_scan_validate_system_chain(64)) /
                       std::sqrt(64.0);
  Table extrap({"n", "mean (extrapolated)", "p99 (~4.8x mean)",
                "meets SLO?"});
  for (std::size_t n : {8, 16, 32, 64, 128, 256}) {
    const double mean = core::theory::scu_individual_latency(0, 1, n, alpha);
    const double p99 = 4.8 * mean;
    extrap.add_row({fmt(n), fmt(mean, 0), fmt(p99, 0),
                    p99 <= slo ? "yes" : "NO"});
  }
  extrap.print(std::cout);

  if (last_ok > 0) {
    std::cout << "\nWithin the exactly-solved range, the SLO holds up to n = "
              << last_ok << ".\n";
  } else {
    std::cout << "\nThe SLO fails even at n = 1 — raise the budget.\n";
  }
  std::cout << "Note: these are *model* steps; convert with your measured "
               "per-step cost\n(see bench/gbm_lockfree for hardware "
               "step timings).\n";
  return 0;
}
