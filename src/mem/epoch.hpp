// mem::Epoch — the epoch-based point of the reclamation spectrum.
//
// A zero-overhead policy wrapper around the existing EBR implementation
// (lockfree/ebr.hpp): Domain/ThreadHandle/Guard ARE the EBR types, so a
// structure instantiated with the default policy has exactly the old
// `EbrDomain&` / `EbrThreadHandle&` signatures — that is the deprecated
// shim that keeps every pre-pwf::mem call site compiling unchanged.
//
// Behaviour is identical to the hard-wired code this replaces: heap
// new/delete, three-epoch grace periods, and the known pathology the
// reclaim_tail experiment measures — one thread stalled inside a guard
// pins the global epoch and retired memory grows without bound.
#pragma once

#include <atomic>
#include <utility>

#include "lockfree/ebr.hpp"
#include "mem/reclaimer.hpp"

namespace pwf::mem {

struct Epoch {
  using Domain = lockfree::EbrDomain;
  using ThreadHandle = lockfree::EbrThreadHandle;
  using Guard = lockfree::EbrGuard;

  static constexpr const char* kName = "epoch";
  static constexpr ReclaimPolicy kPolicy = ReclaimPolicy::kEpoch;

  template <typename T, typename... A>
  static T* create(ThreadHandle&, A&&... args) {
    return new T(std::forward<A>(args)...);
  }

  template <typename T, typename... A>
  static T* create(Domain&, A&&... args) {
    return new T(std::forward<A>(args)...);
  }

  template <typename T>
  static void destroy(ThreadHandle&, T* p) noexcept {
    delete p;
  }

  template <typename T>
  static void dealloc(Domain&, T* p) noexcept {
    delete p;
  }

  template <typename T>
  static void retire(ThreadHandle& handle, T* p) {
    handle.retire(p);
  }

  /// Under EBR the pin already protects every reachable node, so the
  /// protected load is a plain load — identical codegen to the
  /// pre-policy structures.
  template <typename P>
  static P load(ThreadHandle&, const std::atomic<P>& src) noexcept {
    return src.load(std::memory_order_acquire);
  }
};

static_assert(Reclaimer<Epoch>);

}  // namespace pwf::mem
