// Shared era machinery for the robust reclaimers (mem::HazardEra and
// mem::WaitFreePool).
//
// A global *era* clock advances on an allocation cadence — crucially,
// without needing any consensus from pinned readers, which is what EBR
// requires and what a stalled thread denies it forever. Every block is
// stamped with its allocation era and, on retirement, its retirement
// era, so its lifetime is the closed interval [alloc_era, retire_era].
//
// Readers publish *reservations*: pinning stores [lo, upper] = [era,
// era]; every protected load (EraSlotRef::protect) refreshes upper to
// the current era before the returned pointer may be dereferenced. A
// retired block is reclaimable iff no active reservation intersects its
// lifetime interval.
//
// Safety sketch (the interval argument; DESIGN.md §7 has the long
// form): any node a guard can reach was linked at some instant after
// the pin — the structures' unlink disciplines (Treiber pop, MS-queue
// head swing, Harris mark-before-unlink) guarantee a node's frozen
// successor pointers only ever lead to nodes that outlived it — so its
// retire_era >= lo; and the protect loop re-reads the source until the
// published upper covers the era of the load, so its alloc_era <=
// upper. Two intervals with retire >= lo and alloc <= upper always
// intersect, hence the block stays blocked while the guard lives.
//
// Robustness: a stalled guard freezes its [lo, upper]; it blocks only
// blocks whose lifetime intersects that frozen window. Everything
// allocated after the era moves past the stall's upper reclaims
// normally, so garbage is bounded by the blocks live around the stall
// plus one scan threshold — independent of how many operations execute.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>
#include <stdexcept>
#include <string>
#include <vector>

namespace pwf::mem::detail {

/// Header prefixed to every era-managed block (heap allocations for
/// HazardEra, arena blocks for WaitFreePool). The payload follows at
/// kHeaderBytes, max_align_t-aligned.
struct EraBlockHeader {
  std::uint64_t alloc_era = 0;
  std::uint64_t retire_era = 0;
  void (*deleter)(void*) = nullptr;  ///< payload destructor (runs at reclaim)
  std::size_t bytes = 0;             ///< payload bytes, for telemetry
  EraBlockHeader* next_free = nullptr;  ///< pool free-list link
};

inline constexpr std::size_t kHeaderBytes =
    (sizeof(EraBlockHeader) + alignof(std::max_align_t) - 1) /
    alignof(std::max_align_t) * alignof(std::max_align_t);

inline void* payload_of(EraBlockHeader* header) noexcept {
  return reinterpret_cast<char*>(header) + kHeaderBytes;
}

inline EraBlockHeader* header_of(void* payload) noexcept {
  return reinterpret_cast<EraBlockHeader*>(static_cast<char*>(payload) -
                                           kHeaderBytes);
}

/// The era clock plus the reservation slot table. One per domain.
/// All accesses are seq_cst, mirroring the EBR implementation: these
/// paths are amortized by the scan threshold, and the interval-safety
/// argument leans on the single total order.
class EraCore {
 public:
  static constexpr std::uint64_t kIdle = ~std::uint64_t{0};

  explicit EraCore(std::size_t max_threads, const char* who)
      : who_(who), slots_(max_threads) {
    if (max_threads == 0) {
      throw std::invalid_argument(std::string(who) +
                                  ": max_threads must be >= 1");
    }
  }

  EraCore(const EraCore&) = delete;
  EraCore& operator=(const EraCore&) = delete;

  std::uint64_t current() const noexcept {
    return era_.load(std::memory_order_seq_cst);
  }

  void advance() noexcept { era_.fetch_add(1, std::memory_order_seq_cst); }

  std::size_t capacity() const noexcept { return slots_.size(); }

  /// Claims a reservation slot; throws when every slot is taken (the
  /// same explicit failure mode as EbrThreadHandle).
  std::size_t claim_slot() {
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      bool expected = false;
      if (slots_[i].in_use.compare_exchange_strong(
              expected, true, std::memory_order_seq_cst)) {
        return i;
      }
    }
    throw std::runtime_error(
        std::string(who_) + ": no free reservation slots (capacity " +
        std::to_string(slots_.size()) + "; raise max_threads)");
  }

  void release_slot(std::size_t slot) noexcept {
    slots_[slot].lo.store(kIdle, std::memory_order_seq_cst);
    slots_[slot].upper.store(kIdle, std::memory_order_seq_cst);
    slots_[slot].in_use.store(false, std::memory_order_seq_cst);
  }

  /// Publishes the reservation [era, era] for `slot`.
  void pin(std::size_t slot) noexcept {
    const std::uint64_t e = current();
    slots_[slot].lo.store(e, std::memory_order_seq_cst);
    slots_[slot].upper.store(e, std::memory_order_seq_cst);
  }

  void unpin(std::size_t slot) noexcept {
    slots_[slot].lo.store(kIdle, std::memory_order_seq_cst);
    slots_[slot].upper.store(kIdle, std::memory_order_seq_cst);
  }

  /// Extends `slot`'s reservation upper bound to at least `era` (no-op
  /// when idle — an unguarded allocation needs no protection).
  void cover(std::size_t slot, std::uint64_t era) noexcept {
    if (slots_[slot].lo.load(std::memory_order_seq_cst) == kIdle) return;
    if (slots_[slot].upper.load(std::memory_order_seq_cst) < era) {
      slots_[slot].upper.store(era, std::memory_order_seq_cst);
    }
  }

  /// The protected load: re-reads `src` until the published reservation
  /// upper bound covers the era at which the returned value was read.
  /// Only then may the caller dereference it (alloc_era <= upper holds).
  template <typename P>
  P protect(std::size_t slot, const std::atomic<P>& src) noexcept {
    P p = src.load(std::memory_order_seq_cst);
    std::uint64_t e = era_.load(std::memory_order_seq_cst);
    while (slots_[slot].upper.load(std::memory_order_seq_cst) != e) {
      slots_[slot].upper.store(e, std::memory_order_seq_cst);
      p = src.load(std::memory_order_seq_cst);
      e = era_.load(std::memory_order_seq_cst);
    }
    return p;
  }

  /// Snapshot of the active reservations, for one collect pass (scan
  /// the table once, then test every retired block against it).
  void snapshot(std::vector<std::pair<std::uint64_t, std::uint64_t>>& out)
      const {
    out.clear();
    for (const Slot& slot : slots_) {
      if (!slot.in_use.load(std::memory_order_seq_cst)) continue;
      const std::uint64_t lo = slot.lo.load(std::memory_order_seq_cst);
      if (lo == kIdle) continue;
      const std::uint64_t upper = slot.upper.load(std::memory_order_seq_cst);
      out.emplace_back(lo, upper == kIdle ? lo : upper);
    }
  }

  /// True iff some snapshotted reservation intersects [alloc, retire].
  static bool blocked(
      std::uint64_t alloc_era, std::uint64_t retire_era,
      const std::vector<std::pair<std::uint64_t, std::uint64_t>>& snap)
      noexcept {
    for (const auto& [lo, upper] : snap) {
      if (alloc_era <= upper && retire_era >= lo) return true;
    }
    return false;
  }

 private:
  struct Slot {
    std::atomic<bool> in_use{false};
    std::atomic<std::uint64_t> lo{kIdle};
    std::atomic<std::uint64_t> upper{kIdle};
  };

  const char* who_;
  std::atomic<std::uint64_t> era_{1};
  std::vector<Slot> slots_;
};

}  // namespace pwf::mem::detail
