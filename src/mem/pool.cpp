#include "mem/pool.hpp"

#include <cassert>
#include <stdexcept>

namespace pwf::mem {

WaitFreePoolDomain::WaitFreePoolDomain(std::size_t block_bytes,
                                       std::size_t capacity_blocks,
                                       std::size_t max_threads)
    : core_(max_threads, "WaitFreePoolDomain"),
      block_bytes_(block_bytes),
      stride_(detail::kHeaderBytes +
              (block_bytes + alignof(std::max_align_t) - 1) /
                  alignof(std::max_align_t) * alignof(std::max_align_t)),
      capacity_(capacity_blocks) {
  if (block_bytes == 0 || capacity_blocks == 0) {
    throw std::invalid_argument(
        "WaitFreePoolDomain: block_bytes and capacity_blocks must be >= 1");
  }
  // ::operator new returns max_align_t-aligned storage and every stride
  // is a multiple of that alignment, so each block header and payload
  // is suitably aligned.
  arena_ = static_cast<unsigned char*>(::operator new(stride_ * capacity_));
}

WaitFreePoolDomain::~WaitFreePoolDomain() {
  // Final flush: all handles are gone; run the deleters they handed
  // over (the blocks themselves live in the arena, freed wholesale).
  {
    std::lock_guard<std::mutex> lock(orphan_mu_);
    for (detail::EraBlockHeader* hdr : orphan_retired_) {
      if (hdr->deleter) hdr->deleter(detail::payload_of(hdr));
      live_blocks_.fetch_sub(1, std::memory_order_relaxed);
      note_freed(hdr->bytes);
    }
    orphan_retired_.clear();
    orphan_free_.clear();
  }
  assert(retired_count() == 0 &&
         "WaitFreePoolDomain destroyed with blocks still retired");
  ::operator delete(arena_);
}

void WaitFreePoolDomain::note_retired(std::size_t bytes) noexcept {
  retired_total_.fetch_add(1, std::memory_order_relaxed);
  const std::size_t now =
      retired_bytes_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  std::size_t peak = peak_retired_bytes_.load(std::memory_order_relaxed);
  while (now > peak && !peak_retired_bytes_.compare_exchange_weak(
                           peak, now, std::memory_order_relaxed)) {
  }
}

void WaitFreePoolDomain::note_freed(std::size_t bytes) noexcept {
  retired_total_.fetch_sub(1, std::memory_order_relaxed);
  freed_total_.fetch_add(1, std::memory_order_relaxed);
  retired_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
}

WaitFreePoolThreadHandle::~WaitFreePoolThreadHandle() {
  collect();
  if (!retired_.empty() || free_head_ != nullptr) {
    std::lock_guard<std::mutex> lock(domain_.orphan_mu_);
    domain_.orphan_retired_.insert(domain_.orphan_retired_.end(),
                                   retired_.begin(), retired_.end());
    retired_.clear();
    while (detail::EraBlockHeader* hdr = pop_free()) {
      domain_.orphan_free_.push_back(hdr);
    }
  }
  domain_.core_.release_slot(slot_);
}

detail::EraBlockHeader* WaitFreePoolThreadHandle::allocate_block(
    std::size_t bytes, std::size_t align) {
  assert(align <= alignof(std::max_align_t));
  (void)align;
  if (bytes > domain_.block_bytes_) {
    throw std::invalid_argument(
        "WaitFreePool: payload of " + std::to_string(bytes) +
        " bytes exceeds the domain block size of " +
        std::to_string(domain_.block_bytes_) +
        " (size the domain against the structure's kNodeBytes)");
  }
  if (++alloc_count_ % kAllocsPerEra == 0) domain_.core_.advance();

  detail::EraBlockHeader* hdr = pop_free();
  if (hdr == nullptr) {
    // Fresh block: one fetch_add, wait-free.
    const std::size_t index =
        domain_.bump_.fetch_add(1, std::memory_order_seq_cst);
    if (index < domain_.capacity_) {
      hdr = new (domain_.block_at(index)) detail::EraBlockHeader;
    }
  }
  if (hdr == nullptr) {
    // Arena spent: reclaim our own retired blocks, then (cold path)
    // steal what departed handles left behind.
    collect();
    hdr = pop_free();
  }
  if (hdr == nullptr) {
    {
      std::lock_guard<std::mutex> lock(domain_.orphan_mu_);
      for (detail::EraBlockHeader* orphan : domain_.orphan_free_) {
        free_block(orphan);
      }
      domain_.orphan_free_.clear();
      retired_.insert(retired_.end(), domain_.orphan_retired_.begin(),
                      domain_.orphan_retired_.end());
      domain_.orphan_retired_.clear();
    }
    collect();
    hdr = pop_free();
  }
  if (hdr == nullptr) {
    throw PoolExhausted(
        "WaitFreePool: arena exhausted (" +
        std::to_string(domain_.capacity_) + " blocks of " +
        std::to_string(domain_.block_bytes_) +
        " bytes, all live or blocked by active reservations)");
  }
  hdr->deleter = nullptr;
  hdr->bytes = bytes;
  hdr->alloc_era = domain_.core_.current();
  domain_.core_.cover(slot_, hdr->alloc_era);
  domain_.live_blocks_.fetch_add(1, std::memory_order_relaxed);
  return hdr;
}

void WaitFreePoolThreadHandle::retire_block(detail::EraBlockHeader* hdr) {
  hdr->retire_era = domain_.core_.current();
  retired_.push_back(hdr);
  domain_.note_retired(hdr->bytes);
  if (retired_.size() >= kScanThreshold) collect();
}

void WaitFreePoolThreadHandle::collect() noexcept {
  domain_.core_.advance();
  domain_.core_.snapshot(snapshot_);
  std::size_t kept = 0;
  for (detail::EraBlockHeader* hdr : retired_) {
    if (detail::EraCore::blocked(hdr->alloc_era, hdr->retire_era,
                                 snapshot_)) {
      retired_[kept++] = hdr;
      continue;
    }
    if (hdr->deleter) hdr->deleter(detail::payload_of(hdr));
    domain_.live_blocks_.fetch_sub(1, std::memory_order_relaxed);
    domain_.note_freed(hdr->bytes);
    free_block(hdr);
  }
  retired_.resize(kept);
}

namespace detail {

void pool_dealloc_block(WaitFreePoolDomain& domain,
                        EraBlockHeader* hdr) noexcept {
  domain.live_blocks_.fetch_sub(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(domain.orphan_mu_);
  domain.orphan_free_.push_back(hdr);
}

}  // namespace detail

}  // namespace pwf::mem
