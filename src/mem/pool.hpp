// mem::WaitFreePool — the wait-free end of the reclamation spectrum
// (Blelloch–Wei, "Concurrent Fixed-Size Allocation and Free in Constant
// Time"; PAPERS.md).
//
// A preallocated arena of uniform blocks sized for one structure's node
// type (the per-structure fixed-size pool of the pwf::mem contract).
// Allocation is constant time on the hot path: pop the thread's local
// free list, else claim a fresh block with one fetch_add on the bump
// cursor. Frees are era-interval-safe exactly like mem::HazardEra
// (mem/era.hpp), but reclaimed blocks return to the allocating thread's
// free list instead of the heap, so the total footprint is the arena —
// fixed at construction — and unreclaimed memory stays bounded even
// under stalled threads: a stalled reservation blocks only the blocks
// live around its frozen interval, never the arena's future.
//
// Exhaustion is an explicit failure mode: when the arena is spent and
// nothing is reclaimable, allocation throws PoolExhausted (a
// std::bad_alloc) rather than degrading silently.
//
// Honest deviation from the paper: Blelloch–Wei deamortize the
// reclamation scan to worst-case O(1) per call with helper queues; this
// implementation amortizes the scan over kScanThreshold retirements
// (the same discipline as the repo's EBR), which keeps allocate/free
// constant-time in the amortized sense the reclaim_tail experiment
// measures. The bounded-garbage robustness bound is the paper's.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <new>
#include <string>
#include <utility>
#include <vector>

#include "mem/era.hpp"
#include "mem/reclaimer.hpp"

namespace pwf::mem {

class WaitFreePoolDomain;
class WaitFreePoolThreadHandle;

namespace detail {
/// Out-of-line piece of WaitFreePool::dealloc (needs the domain's
/// private orphan list).
void pool_dealloc_block(WaitFreePoolDomain& domain,
                        EraBlockHeader* hdr) noexcept;
}  // namespace detail

/// Thrown when the arena is exhausted and no retired block is
/// reclaimable — the pool's explicit failure mode.
class PoolExhausted : public std::bad_alloc {
 public:
  explicit PoolExhausted(std::string what) : what_(std::move(what)) {}
  const char* what() const noexcept override { return what_.c_str(); }

 private:
  std::string what_;
};

/// Fixed-size block pool domain: `block_bytes` is the payload capacity
/// of one block (size the structure's node type against its
/// kNodeBytes), `capacity_blocks` the arena size, `max_threads` the
/// reservation-slot count (throws on exhaustion, like EbrDomain).
class WaitFreePoolDomain {
 public:
  WaitFreePoolDomain(std::size_t block_bytes, std::size_t capacity_blocks,
                     std::size_t max_threads = 64);
  ~WaitFreePoolDomain();

  WaitFreePoolDomain(const WaitFreePoolDomain&) = delete;
  WaitFreePoolDomain& operator=(const WaitFreePoolDomain&) = delete;

  std::size_t block_bytes() const noexcept { return block_bytes_; }
  std::size_t capacity_blocks() const noexcept { return capacity_; }
  std::size_t max_threads() const noexcept { return core_.capacity(); }
  std::uint64_t era() const noexcept { return core_.current(); }

  /// Blocks holding live (constructed, not yet destroyed) payloads.
  std::size_t live_blocks() const noexcept {
    return live_blocks_.load(std::memory_order_relaxed);
  }
  /// Blocks retired and not yet recycled, across all handles.
  std::size_t retired_count() const noexcept {
    return retired_total_.load(std::memory_order_relaxed);
  }
  /// Blocks recycled (destructor run, returned to a free list) so far.
  std::size_t freed_count() const noexcept {
    return freed_total_.load(std::memory_order_relaxed);
  }
  std::size_t retired_bytes() const noexcept {
    return retired_bytes_.load(std::memory_order_relaxed);
  }
  /// High-water mark of retired-but-unreclaimed payload bytes: the
  /// bounded-memory invariant reclaim_tail certifies is on this.
  std::size_t peak_retired_bytes() const noexcept {
    return peak_retired_bytes_.load(std::memory_order_relaxed);
  }

 private:
  friend class WaitFreePoolThreadHandle;
  friend void detail::pool_dealloc_block(WaitFreePoolDomain& domain,
                                         detail::EraBlockHeader* hdr) noexcept;

  detail::EraBlockHeader* block_at(std::size_t index) noexcept {
    return reinterpret_cast<detail::EraBlockHeader*>(arena_ +
                                                     index * stride_);
  }

  void note_retired(std::size_t bytes) noexcept;
  void note_freed(std::size_t bytes) noexcept;

  detail::EraCore core_;
  std::size_t block_bytes_;
  std::size_t stride_;
  std::size_t capacity_;
  unsigned char* arena_;
  std::atomic<std::size_t> bump_{0};

  std::atomic<std::size_t> live_blocks_{0};
  std::atomic<std::size_t> retired_total_{0};
  std::atomic<std::size_t> freed_total_{0};
  std::atomic<std::size_t> retired_bytes_{0};
  std::atomic<std::size_t> peak_retired_bytes_{0};

  // Blocks handed over by destroyed handles (cold paths only).
  std::mutex orphan_mu_;
  std::vector<detail::EraBlockHeader*> orphan_retired_;
  std::vector<detail::EraBlockHeader*> orphan_free_;
};

/// RAII reservation over the pool's era clock (same contract as
/// HazardEraGuard: guards do not nest).
class WaitFreePoolGuard {
 public:
  explicit WaitFreePoolGuard(WaitFreePoolThreadHandle& handle) noexcept;
  ~WaitFreePoolGuard();

  WaitFreePoolGuard(const WaitFreePoolGuard&) = delete;
  WaitFreePoolGuard& operator=(const WaitFreePoolGuard&) = delete;

 private:
  WaitFreePoolThreadHandle& handle_;
};

/// Per-thread pool participant: owns a private free list of recycled
/// blocks (no synchronization on the alloc hot path) and a retired
/// list scanned against the reservation table.
class WaitFreePoolThreadHandle {
 public:
  explicit WaitFreePoolThreadHandle(WaitFreePoolDomain& domain)
      : domain_(domain), slot_(domain.core_.claim_slot()) {}

  ~WaitFreePoolThreadHandle();

  WaitFreePoolThreadHandle(const WaitFreePoolThreadHandle&) = delete;
  WaitFreePoolThreadHandle& operator=(const WaitFreePoolThreadHandle&) =
      delete;

  WaitFreePoolDomain& domain() noexcept { return domain_; }

  WaitFreePoolGuard pin() noexcept { return WaitFreePoolGuard(*this); }

  /// Constant-time block allocation (local free list, else one
  /// fetch_add on the bump cursor); throws PoolExhausted when the arena
  /// is spent and nothing is reclaimable.
  template <typename T, typename... A>
  T* create(A&&... args) {
    detail::EraBlockHeader* hdr = allocate_block(sizeof(T), alignof(T));
    try {
      return new (detail::payload_of(hdr)) T(std::forward<A>(args)...);
    } catch (...) {
      domain_.live_blocks_.fetch_sub(1, std::memory_order_relaxed);
      free_block(hdr);
      throw;
    }
  }

  /// Immediate recycle of a never-published block.
  template <typename T>
  void destroy(T* p) noexcept {
    p->~T();
    domain_.live_blocks_.fetch_sub(1, std::memory_order_relaxed);
    free_block(detail::header_of(p));
  }

  /// Defers the recycle until no reservation can still reach `p`.
  template <typename T>
  void retire(T* p) {
    detail::EraBlockHeader* hdr = detail::header_of(p);
    hdr->deleter = [](void* q) { static_cast<T*>(q)->~T(); };
    retire_block(hdr);
  }

  /// Protected load (see EraCore::protect).
  template <typename P>
  P protect(const std::atomic<P>& src) noexcept {
    return domain_.core_.protect(slot_, src);
  }

  /// Recycles every retired block no active reservation intersects;
  /// called automatically every kScanThreshold retirements and from
  /// the allocation slow path.
  void collect() noexcept;

  std::size_t pending() const noexcept { return retired_.size(); }
  std::size_t free_list_length() const noexcept { return free_len_; }

 private:
  friend class WaitFreePoolGuard;

  static constexpr std::size_t kScanThreshold = 64;
  static constexpr std::size_t kAllocsPerEra = 64;

  void enter() noexcept { domain_.core_.pin(slot_); }
  void exit() noexcept { domain_.core_.unpin(slot_); }

  detail::EraBlockHeader* allocate_block(std::size_t bytes,
                                         std::size_t align);
  void retire_block(detail::EraBlockHeader* hdr);

  void free_block(detail::EraBlockHeader* hdr) noexcept {
    hdr->next_free = free_head_;
    free_head_ = hdr;
    ++free_len_;
  }

  detail::EraBlockHeader* pop_free() noexcept {
    detail::EraBlockHeader* hdr = free_head_;
    if (hdr) {
      free_head_ = hdr->next_free;
      --free_len_;
    }
    return hdr;
  }

  WaitFreePoolDomain& domain_;
  std::size_t slot_;
  std::uint64_t alloc_count_ = 0;
  detail::EraBlockHeader* free_head_ = nullptr;
  std::size_t free_len_ = 0;
  std::vector<detail::EraBlockHeader*> retired_;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> snapshot_;
};

inline WaitFreePoolGuard::WaitFreePoolGuard(
    WaitFreePoolThreadHandle& handle) noexcept
    : handle_(handle) {
  handle_.enter();
}

inline WaitFreePoolGuard::~WaitFreePoolGuard() { handle_.exit(); }

/// The wait-free pool reclamation policy (see mem/reclaimer.hpp for the
/// interface contract).
struct WaitFreePool {
  using Domain = WaitFreePoolDomain;
  using ThreadHandle = WaitFreePoolThreadHandle;
  using Guard = WaitFreePoolGuard;

  static constexpr const char* kName = "pool";
  static constexpr ReclaimPolicy kPolicy = ReclaimPolicy::kPool;

  template <typename T, typename... A>
  static T* create(ThreadHandle& handle, A&&... args) {
    return handle.create<T>(std::forward<A>(args)...);
  }

  /// Cold-path allocation for structure constructors (runs before any
  /// concurrency; claims and releases a temporary slot).
  template <typename T, typename... A>
  static T* create(Domain& domain, A&&... args) {
    ThreadHandle handle(domain);
    return handle.create<T>(std::forward<A>(args)...);
  }

  template <typename T>
  static void destroy(ThreadHandle& handle, T* p) noexcept {
    handle.destroy(p);
  }

  /// Quiescent teardown free: the block returns to the domain's orphan
  /// free list for the next handle to steal.
  template <typename T>
  static void dealloc(Domain& domain, T* p) noexcept;

  template <typename T>
  static void retire(ThreadHandle& handle, T* p) {
    handle.retire(p);
  }

  template <typename P>
  static P load(ThreadHandle& handle, const std::atomic<P>& src) noexcept {
    return handle.protect(src);
  }
};

template <typename T>
void WaitFreePool::dealloc(Domain& domain, T* p) noexcept {
  p->~T();
  detail::pool_dealloc_block(domain, detail::header_of(p));
}

static_assert(Reclaimer<WaitFreePool>);

}  // namespace pwf::mem
