// mem::HazardEra — the intermediate point of the reclamation spectrum
// (Ramalhete & Correia's hazard eras / interval-based reclamation, the
// direction Ben-David–Blelloch et al.'s safe-memory-reclamation work
// motivates).
//
// Heap-backed allocation with era-interval safety (mem/era.hpp): every
// block records [alloc_era, retire_era]; readers hold [lo, upper]
// reservations refreshed by each protected load; a retired block frees
// once no reservation intersects its lifetime. Unlike EBR, the era
// clock advances on the allocation cadence with no consensus from
// pinned readers, so a stalled thread blocks only the blocks live
// around its frozen reservation — garbage stays bounded while the rest
// of the system keeps reclaiming.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <new>
#include <utility>
#include <vector>

#include "mem/era.hpp"
#include "mem/reclaimer.hpp"

namespace pwf::mem {

class HazardEraThreadHandle;

/// Reclamation domain for hazard-era managed structures. `max_threads`
/// bounds concurrent thread handles (reservation slots), with the same
/// throw-on-exhaustion failure mode as EbrDomain.
class HazardEraDomain {
 public:
  explicit HazardEraDomain(std::size_t max_threads = 64);
  ~HazardEraDomain();

  HazardEraDomain(const HazardEraDomain&) = delete;
  HazardEraDomain& operator=(const HazardEraDomain&) = delete;

  std::uint64_t era() const noexcept { return core_.current(); }
  std::size_t max_threads() const noexcept { return core_.capacity(); }

  /// Blocks retired and not yet freed, across all handles.
  std::size_t retired_count() const noexcept {
    return retired_total_.load(std::memory_order_relaxed);
  }
  /// Blocks freed so far.
  std::size_t freed_count() const noexcept {
    return freed_total_.load(std::memory_order_relaxed);
  }
  /// Payload bytes retired and not yet freed / the high-water mark —
  /// the reclaim_tail experiment's robustness metric.
  std::size_t retired_bytes() const noexcept {
    return retired_bytes_.load(std::memory_order_relaxed);
  }
  std::size_t peak_retired_bytes() const noexcept {
    return peak_retired_bytes_.load(std::memory_order_relaxed);
  }

 private:
  friend class HazardEraThreadHandle;

  void note_retired(std::size_t bytes) noexcept;
  void note_freed(std::size_t bytes) noexcept;

  detail::EraCore core_;
  std::atomic<std::size_t> retired_total_{0};
  std::atomic<std::size_t> freed_total_{0};
  std::atomic<std::size_t> retired_bytes_{0};
  std::atomic<std::size_t> peak_retired_bytes_{0};

  // Retired blocks handed over by destroyed handles; freed in the
  // domain destructor (coarse locking — handle teardown is cold).
  std::mutex orphan_mu_;
  std::vector<detail::EraBlockHeader*> orphans_;
};

/// RAII reservation: while alive, no block whose lifetime the published
/// [lo, upper] interval intersects can be freed. Guards do not nest
/// (same contract as EbrGuard).
class HazardEraGuard {
 public:
  explicit HazardEraGuard(HazardEraThreadHandle& handle) noexcept;
  ~HazardEraGuard();

  HazardEraGuard(const HazardEraGuard&) = delete;
  HazardEraGuard& operator=(const HazardEraGuard&) = delete;

 private:
  HazardEraThreadHandle& handle_;
};

/// Per-thread participation handle (one per thread, explicit — mirrors
/// EbrThreadHandle).
class HazardEraThreadHandle {
 public:
  explicit HazardEraThreadHandle(HazardEraDomain& domain)
      : domain_(domain), slot_(domain.core_.claim_slot()) {}

  ~HazardEraThreadHandle();

  HazardEraThreadHandle(const HazardEraThreadHandle&) = delete;
  HazardEraThreadHandle& operator=(const HazardEraThreadHandle&) = delete;

  HazardEraDomain& domain() noexcept { return domain_; }

  HazardEraGuard pin() noexcept { return HazardEraGuard(*this); }

  /// Era-stamped heap allocation. The caller's reservation is extended
  /// over the allocation era, so a node published and then immediately
  /// retired by a competitor stays dereferenceable by its creator.
  template <typename T, typename... A>
  T* create(A&&... args) {
    detail::EraBlockHeader* hdr = allocate_block(sizeof(T), alignof(T));
    try {
      return new (detail::payload_of(hdr)) T(std::forward<A>(args)...);
    } catch (...) {
      ::operator delete(hdr);
      throw;
    }
  }

  /// Immediate free of a never-published block.
  template <typename T>
  void destroy(T* p) noexcept {
    p->~T();
    ::operator delete(detail::header_of(p));
  }

  /// Defers the free until no reservation can still reach `p`.
  template <typename T>
  void retire(T* p) {
    detail::EraBlockHeader* hdr = detail::header_of(p);
    hdr->deleter = [](void* q) { static_cast<T*>(q)->~T(); };
    retire_block(hdr);
  }

  /// Protected load (see EraCore::protect).
  template <typename P>
  P protect(const std::atomic<P>& src) noexcept {
    return domain_.core_.protect(slot_, src);
  }

  /// Frees every retired block no active reservation intersects;
  /// called automatically every kScanThreshold retirements.
  void collect() noexcept;

  std::size_t pending() const noexcept { return retired_.size(); }

 private:
  friend class HazardEraGuard;

  static constexpr std::size_t kScanThreshold = 64;
  static constexpr std::size_t kAllocsPerEra = 64;

  void enter() noexcept { domain_.core_.pin(slot_); }
  void exit() noexcept { domain_.core_.unpin(slot_); }

  detail::EraBlockHeader* allocate_block(std::size_t bytes,
                                         std::size_t align);
  void retire_block(detail::EraBlockHeader* hdr);

  HazardEraDomain& domain_;
  std::size_t slot_;
  std::uint64_t alloc_count_ = 0;
  std::vector<detail::EraBlockHeader*> retired_;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> snapshot_;
};

inline HazardEraGuard::HazardEraGuard(HazardEraThreadHandle& handle) noexcept
    : handle_(handle) {
  handle_.enter();
}

inline HazardEraGuard::~HazardEraGuard() { handle_.exit(); }

/// The hazard-era reclamation policy (see mem/reclaimer.hpp for the
/// interface contract).
struct HazardEra {
  using Domain = HazardEraDomain;
  using ThreadHandle = HazardEraThreadHandle;
  using Guard = HazardEraGuard;

  static constexpr const char* kName = "hazard";
  static constexpr ReclaimPolicy kPolicy = ReclaimPolicy::kHazardEra;

  template <typename T, typename... A>
  static T* create(ThreadHandle& handle, A&&... args) {
    return handle.create<T>(std::forward<A>(args)...);
  }

  /// Cold-path allocation for structure constructors: a temporary
  /// handle stamps the era (constructors run before any concurrency).
  template <typename T, typename... A>
  static T* create(Domain& domain, A&&... args) {
    ThreadHandle handle(domain);
    return handle.create<T>(std::forward<A>(args)...);
  }

  template <typename T>
  static void destroy(ThreadHandle& handle, T* p) noexcept {
    handle.destroy(p);
  }

  template <typename T>
  static void dealloc(Domain&, T* p) noexcept {
    p->~T();
    ::operator delete(detail::header_of(p));
  }

  template <typename T>
  static void retire(ThreadHandle& handle, T* p) {
    handle.retire(p);
  }

  template <typename P>
  static P load(ThreadHandle& handle, const std::atomic<P>& src) noexcept {
    return handle.protect(src);
  }
};

static_assert(Reclaimer<HazardEra>);

}  // namespace pwf::mem
