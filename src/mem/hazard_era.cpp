#include "mem/hazard_era.hpp"

#include <cassert>

namespace pwf::mem {

HazardEraDomain::HazardEraDomain(std::size_t max_threads)
    : core_(max_threads, "HazardEraDomain") {}

HazardEraDomain::~HazardEraDomain() {
  // Final flush: all handles are gone; free whatever they handed over.
  {
    std::lock_guard<std::mutex> lock(orphan_mu_);
    for (detail::EraBlockHeader* hdr : orphans_) {
      if (hdr->deleter) hdr->deleter(detail::payload_of(hdr));
      note_freed(hdr->bytes);
      ::operator delete(hdr);
    }
    orphans_.clear();
  }
  // Leak-accounting invariant: every retirement has been freed. Firing
  // means a thread handle outlived its domain (undefined behaviour the
  // assert turns into a loud teardown failure).
  assert(retired_count() == 0 &&
         "HazardEraDomain destroyed with blocks still retired");
}

void HazardEraDomain::note_retired(std::size_t bytes) noexcept {
  retired_total_.fetch_add(1, std::memory_order_relaxed);
  const std::size_t now =
      retired_bytes_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  std::size_t peak = peak_retired_bytes_.load(std::memory_order_relaxed);
  while (now > peak && !peak_retired_bytes_.compare_exchange_weak(
                           peak, now, std::memory_order_relaxed)) {
  }
}

void HazardEraDomain::note_freed(std::size_t bytes) noexcept {
  retired_total_.fetch_sub(1, std::memory_order_relaxed);
  freed_total_.fetch_add(1, std::memory_order_relaxed);
  retired_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
}

HazardEraThreadHandle::~HazardEraThreadHandle() {
  collect();
  if (!retired_.empty()) {
    std::lock_guard<std::mutex> lock(domain_.orphan_mu_);
    domain_.orphans_.insert(domain_.orphans_.end(), retired_.begin(),
                            retired_.end());
    retired_.clear();
  }
  domain_.core_.release_slot(slot_);
}

detail::EraBlockHeader* HazardEraThreadHandle::allocate_block(
    std::size_t bytes, std::size_t align) {
  // The header pad aligns payloads to max_align_t; stricter types would
  // need an aligned-new path nothing in the zoo requires.
  assert(align <= alignof(std::max_align_t));
  (void)align;
  if (++alloc_count_ % kAllocsPerEra == 0) domain_.core_.advance();
  void* raw = ::operator new(detail::kHeaderBytes + bytes);
  auto* hdr = new (raw) detail::EraBlockHeader;
  hdr->bytes = bytes;
  hdr->alloc_era = domain_.core_.current();
  // Cover our own allocation: once published, a competitor can retire
  // it while we still dereference it (e.g. reading the result out of a
  // node we just installed).
  domain_.core_.cover(slot_, hdr->alloc_era);
  return hdr;
}

void HazardEraThreadHandle::retire_block(detail::EraBlockHeader* hdr) {
  hdr->retire_era = domain_.core_.current();
  retired_.push_back(hdr);
  domain_.note_retired(hdr->bytes);
  if (retired_.size() >= kScanThreshold) collect();
}

void HazardEraThreadHandle::collect() noexcept {
  domain_.core_.advance();
  domain_.core_.snapshot(snapshot_);
  std::size_t kept = 0;
  for (detail::EraBlockHeader* hdr : retired_) {
    if (detail::EraCore::blocked(hdr->alloc_era, hdr->retire_era,
                                 snapshot_)) {
      retired_[kept++] = hdr;
      continue;
    }
    if (hdr->deleter) hdr->deleter(detail::payload_of(hdr));
    domain_.note_freed(hdr->bytes);
    ::operator delete(hdr);
  }
  retired_.resize(kept);
}

}  // namespace pwf::mem
