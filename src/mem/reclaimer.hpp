// pwf::mem — the pluggable reclamation API for the native lock-free zoo.
//
// Every structure in src/lockfree (and waitfree::WaitFreeObject) is
// templated on a *reclamation policy* `Mem` that bundles allocation,
// protection, and deferred reclamation behind one static interface:
//
//   struct Policy {
//     using Domain;        // shared reclamation state, one per structure set
//     using ThreadHandle;  // per-thread participant (explicit, no TLS)
//     using Guard;         // RAII protection scope: handle.pin()
//     static constexpr const char* kName;
//
//     // Hot-path allocation through the calling thread's handle. The
//     // WaitFreePool backs this with a per-structure fixed-size block
//     // pool; the others heap-allocate.
//     template <typename T, typename... A>
//     static T* create(ThreadHandle&, A&&...);
//
//     // Cold-path allocation for constructors (no handle exists yet).
//     template <typename T, typename... A>
//     static T* create(Domain&, A&&...);
//
//     // Immediate deallocation of a node that was never published (a
//     // failed-CAS candidate): nobody else can hold it, so it skips the
//     // grace-period machinery entirely.
//     template <typename T>
//     static void destroy(ThreadHandle&, T*) noexcept;
//
//     // Quiescent deallocation for destructors (single-threaded
//     // teardown, no handle).
//     template <typename T>
//     static void dealloc(Domain&, T*) noexcept;
//
//     // Deferred reclamation of an unlinked node: freed once no
//     // protection scope can still reach it.
//     template <typename T>
//     static void retire(ThreadHandle&, T*);
//
//     // Protected load: the ONLY way a structure may read a shared word
//     // it will later dereference. For Epoch this is a plain acquire
//     // load (the pin already protects everything); for the era-based
//     // policies it publishes the reader's reservation upper bound
//     // before returning, which is what makes their garbage bounds
//     // robust to stalled threads.
//     template <typename P>
//     static P load(ThreadHandle&, const std::atomic<P>&) noexcept;
//   };
//
// The three implementations span the robustness spectrum the paper's
// scheduler model motivates (see DESIGN.md):
//
//   mem::Epoch        — wraps the existing EbrDomain/EbrThreadHandle.
//                       Behaviour-identical to the pre-policy code (and
//                       the default, so every old EbrDomain-based
//                       signature still compiles unchanged). One stalled
//                       pinned thread blocks ALL reclamation forever.
//   mem::HazardEra    — heap-backed interval (era) reclamation: a global
//                       era clock advances regardless of pinned threads;
//                       a stalled reader blocks only nodes whose
//                       [alloc_era, retire_era] lifetime intersects its
//                       frozen reservation, so garbage is bounded by the
//                       nodes live around the stall, not by ops executed.
//   mem::WaitFreePool — the same era safety over a Blelloch–Wei-style
//                       fixed-size block pool: constant-time allocate
//                       and free from a preallocated arena, bounded
//                       unreclaimed memory under stalls, and an explicit
//                       failure mode (PoolExhausted) instead of silent
//                       unbounded growth.
#pragma once

#include <atomic>
#include <optional>
#include <string>

namespace pwf::mem {

/// Runtime policy selector for CLIs (`--reclaim epoch|hazard|pool`) and
/// capture dispatch; the template policies above are its compile-time
/// counterparts.
enum class ReclaimPolicy {
  kEpoch,
  kHazardEra,
  kPool,
};

/// Canonical spelling: "epoch", "hazard", "pool".
const char* reclaim_policy_name(ReclaimPolicy policy);

/// Accepts the canonical spellings plus common aliases ("ebr",
/// "hazard-era", "hazard_era", "he", "waitfree-pool", "wf-pool").
std::optional<ReclaimPolicy> parse_reclaim_policy(const std::string& name);

/// All three policies, in registry order (epoch, hazard, pool).
inline constexpr ReclaimPolicy kAllReclaimPolicies[] = {
    ReclaimPolicy::kEpoch, ReclaimPolicy::kHazardEra, ReclaimPolicy::kPool};

/// Compile-time shape check for a reclamation policy (the allocation
/// templates are checked where they are instantiated).
template <typename M>
concept Reclaimer = requires(typename M::ThreadHandle& handle) {
  typename M::Domain;
  typename M::ThreadHandle;
  typename M::Guard;
  { M::kName } -> std::convertible_to<const char*>;
  handle.pin();
};

}  // namespace pwf::mem
