#include "mem/reclaimer.hpp"

namespace pwf::mem {

const char* reclaim_policy_name(ReclaimPolicy policy) {
  switch (policy) {
    case ReclaimPolicy::kEpoch:
      return "epoch";
    case ReclaimPolicy::kHazardEra:
      return "hazard";
    case ReclaimPolicy::kPool:
      return "pool";
  }
  return "?";
}

std::optional<ReclaimPolicy> parse_reclaim_policy(const std::string& name) {
  if (name == "epoch" || name == "ebr") return ReclaimPolicy::kEpoch;
  if (name == "hazard" || name == "hazard-era" || name == "hazard_era" ||
      name == "he") {
    return ReclaimPolicy::kHazardEra;
  }
  if (name == "pool" || name == "waitfree-pool" || name == "wf-pool") {
    return ReclaimPolicy::kPool;
  }
  return std::nullopt;
}

}  // namespace pwf::mem
