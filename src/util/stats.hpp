// Streaming and batch statistics used by the simulation engine, tests and
// the benchmark harness: Welford accumulators, histograms, percentiles,
// confidence intervals, and (log-log) least-squares fits for scaling laws.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace pwf {

/// Single-pass mean/variance accumulator (Welford's algorithm).
///
/// Numerically stable for long streams; O(1) memory.
class StreamingStats {
 public:
  void add(double x) noexcept;
  void merge(const StreamingStats& other) noexcept;

  std::uint64_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Unbiased sample variance; 0 when fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  /// Standard error of the mean; 0 when fewer than two samples.
  double stderr_mean() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }

  /// Half-width of an asymptotic normal confidence interval around the mean
  /// (default 95%, z = 1.96).
  double ci_halfwidth(double z = 1.96) const noexcept;

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-width histogram over [lo, hi); values outside are clamped into the
/// first/last bucket and counted in underflow()/overflow().
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x) noexcept;

  std::size_t buckets() const noexcept { return counts_.size(); }
  std::uint64_t bucket_count(std::size_t i) const { return counts_.at(i); }
  double bucket_lo(std::size_t i) const noexcept;
  double bucket_hi(std::size_t i) const noexcept;
  std::uint64_t total() const noexcept { return total_; }
  std::uint64_t underflow() const noexcept { return underflow_; }
  std::uint64_t overflow() const noexcept { return overflow_; }

  /// Approximate quantile via linear interpolation inside the bucket.
  /// Precondition: total() > 0 and 0 <= q <= 1.
  double quantile(double q) const;

 private:
  double lo_, hi_, width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
};

/// Exact percentile of a sample (sorts a copy; nearest-rank with linear
/// interpolation). Precondition: !xs.empty(), 0 <= q <= 1.
double percentile(std::span<const double> xs, double q);

/// Result of an ordinary least-squares fit y = slope*x + intercept.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;
};

/// OLS fit. Precondition: xs.size() == ys.size() >= 2.
LinearFit fit_linear(std::span<const double> xs, std::span<const double> ys);

/// Fits y = C * x^p by OLS on (log x, log y); returns slope = p,
/// intercept = log C. Preconditions: all xs, ys strictly positive.
LinearFit fit_power_law(std::span<const double> xs,
                        std::span<const double> ys);

/// L1 (total-variation x2) distance between two discrete distributions of
/// equal support size. Precondition: p.size() == q.size().
double l1_distance(std::span<const double> p, std::span<const double> q);

/// Maximum absolute elementwise difference.
double linf_distance(std::span<const double> p, std::span<const double> q);

}  // namespace pwf
