// Invariant-TSC timestamping for contention-free hardware capture.
//
// The hardware capture layer (check/hw_capture) originally ordered events
// with one process-global atomic ticket: every stamp was a fetch_add on
// the same cache line, so the capture serialized the very contention it
// was built to observe. This module provides the replacement clock: a
// per-thread hardware counter read (`rdtsc` on x86-64, `cntvct_el0` on
// aarch64, `steady_clock` elsewhere) that performs *zero shared writes*,
// plus the calibration machinery that makes raw per-thread readings
// comparable across threads:
//
//  - tsc_now()        raw counter read from the active source;
//  - tsc_monotonic()  per-thread monotonic repair over tsc_now(): a read
//    that lands at or below the thread's previous stamp (cross-CPU
//    migration onto a core whose counter is slightly behind) is lifted
//    to previous+1, so per-thread stamp order always matches program
//    order and the displacement is bounded by the cross-CPU skew;
//  - calibrate_tsc()  ping-pong offset measurement between the calling
//    thread and N probe threads, producing a measured skew bound ε
//    (TscCalibration::epsilon): any two threads' raw stamps order events
//    correctly once intervals are widened by ε on each side.
//
// Soundness contract (DESIGN.md §6a): a stamp taken by thread T at true
// global time t satisfies |stamp - clock_master(t)| <= ε/2 per probe
// bound, so for any two threads the relative error is at most ε. The
// capture layer widens every recovered interval by ε before checking;
// the widened interval provably still contains the linearization point,
// and widening only ever adds legal linearization orders (same argument
// as call-boundary over-approximation).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

namespace pwf::util {

/// One cache line, for padding shared-memory layouts (capture buffers,
/// latches) so independent per-thread state never false-shares.
inline constexpr std::size_t kCacheLineBytes = 64;

/// Where tsc_now() readings come from.
enum class TscSource {
  kRdtsc,        ///< x86-64 rdtsc (requires invariant TSC to be trusted)
  kCntvct,       ///< aarch64 generic timer (architecturally invariant)
  kSteadyClock,  ///< std::chrono::steady_clock fallback (ns)
};

const char* tsc_source_name(TscSource source);

/// The source in effect: the testing override if set, else the best
/// hardware counter this build/host supports, else steady_clock.
TscSource tsc_source() noexcept;

/// True when the active source is an invariant hardware counter
/// (constant rate, never stops in deep sleep) — the precondition for
/// trusting raw cross-time comparisons. The steady_clock fallback
/// reports false here while still being globally monotonic.
bool invariant_tsc() noexcept;

/// Raw counter read from the active source. Not serializing: the read
/// may retire slightly out of program order, which the capture layer's
/// ε-widening absorbs.
std::uint64_t tsc_now() noexcept;

/// tsc_now() with per-thread monotonic repair: strictly increasing on
/// every thread, so per-thread stamp order always matches program order.
/// A repaired (lifted) stamp is displaced by at most the backwards step
/// it papered over, which calibration bounds by ε.
std::uint64_t tsc_monotonic() noexcept;

/// Testing hook: force a source (nullopt restores auto-detection). Not
/// thread-safe against concurrent stampers; tests set it up front.
void set_tsc_source_for_testing(std::optional<TscSource> source) noexcept;

/// CPUs the current thread may run on (affinity-aware on Linux, else
/// std::thread::hardware_concurrency), never 0. On a 1-CPU host every
/// thread reads the same physical counter, so cross-thread skew is
/// structurally zero regardless of what ping-pong latency suggests.
std::size_t available_cpus() noexcept;

/// Pins the calling thread to the index-th allowed CPU (modulo the
/// affinity set). Returns false when pinning is unsupported or fails;
/// capture proceeds unpinned in that case.
bool pin_this_thread(std::size_t index) noexcept;

/// Result of one cross-thread calibration run.
struct TscCalibration {
  TscSource source = TscSource::kSteadyClock;
  bool fallback = false;     ///< no invariant hardware counter; steady_clock
  bool serial_host = false;  ///< 1 available CPU: skew structurally zero
  bool drift = false;        ///< a probe's offset intervals were inconsistent
  std::size_t threads = 0;   ///< probe threads measured
  std::size_t rounds = 0;    ///< ping-pong rounds per probe
  double ticks_per_us = 0.0; ///< measured counter rate (steady_clock ref)
  /// Smallest nonzero delta between back-to-back reads: the clock's
  /// effective granularity, a floor under any skew bound.
  std::uint64_t read_granularity = 0;
  /// Tightest observed ping-pong round trip (ticks): the measurement's
  /// own resolution — offsets cannot be localized better than this.
  std::uint64_t min_round_trip = 0;
  /// max over probes of max(|offset_lo|, |offset_hi|): the largest
  /// per-probe bound on |probe clock - master clock|.
  std::uint64_t max_abs_offset = 0;
  /// The skew bound ε used to widen capture intervals: on a serial host
  /// just the read granularity; otherwise 2 * max_abs_offset (any two
  /// threads, through the master frame) + granularity. Always >= 1.
  std::uint64_t epsilon = 0;
  /// Per-probe offset bound intervals (probe clock minus master clock):
  /// after intersecting all rounds, the true offset lies in
  /// [offset_lo[i], offset_hi[i]].
  std::vector<std::int64_t> offset_lo;
  std::vector<std::int64_t> offset_hi;
};

/// Measures cross-thread offsets with `threads` probe threads and
/// `rounds` ping-pong rounds each, and derives the skew bound ε. When
/// `pin` is set, probe i is pinned to allowed CPU (i + 1) mod #cpus so
/// the probes sample distinct counter domains (the capture layer pins
/// its threads the same way). Cheap enough to run once per capture
/// session (~ms).
TscCalibration calibrate_tsc(std::size_t threads, std::size_t rounds = 32,
                             bool pin = false);

}  // namespace pwf::util
