// Deterministic, seedable random number generation for simulations.
//
// All randomness in the simulation framework flows through Xoshiro256pp so
// that every experiment is exactly reproducible from a printed 64-bit seed.
// SplitMix64 is used to expand a single seed into a full 256-bit state (the
// construction recommended by the xoshiro authors) and to derive independent
// child streams.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace pwf {

/// SplitMix64: a tiny, statistically solid 64-bit PRNG used for seeding.
///
/// Satisfies std::uniform_random_bit_generator.
class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256++: fast general-purpose PRNG (Blackman & Vigna).
///
/// Satisfies std::uniform_random_bit_generator, so it can be used with the
/// standard <random> distributions as well as with the helpers below.
class Xoshiro256pp {
 public:
  using result_type = std::uint64_t;

  /// Seeds the 256-bit state from a single 64-bit seed via SplitMix64.
  explicit Xoshiro256pp(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept;

  /// Uniform integer in [0, bound). Uses Lemire's unbiased multiply-shift
  /// rejection method. Precondition: bound > 0.
  std::uint64_t uniform(std::uint64_t bound) noexcept;

  /// State equality: two generators compare equal iff they will produce
  /// identical streams. Lets tests count the raw draws a component
  /// consumes by advancing a shadow copy until the states re-align.
  bool operator==(const Xoshiro256pp&) const noexcept = default;

  /// Uniform double in [0, 1) with 53 bits of precision.
  double uniform_double() noexcept;

  /// True with probability p (p clamped to [0, 1]).
  bool bernoulli(double p) noexcept;

  /// Derives an independent child generator. The parent advances by one
  /// draw; the child is seeded from that draw, so distinct calls yield
  /// streams that do not overlap in practice.
  Xoshiro256pp split() noexcept;

  /// Advances the state by 2^128 draws; useful for carving one seed into
  /// provably non-overlapping parallel streams.
  void jump() noexcept;

 private:
  std::array<std::uint64_t, 4> s_{};
};

/// Lemire's *nearly-divisionless* bounded draw with the bound fixed up
/// front: the rejection threshold 2^64 mod bound is computed once at
/// construction, so the per-draw cost is one multiply-shift with no
/// division on any path (Lemire, "Fast Random Integer Generation in an
/// Interval", ACM TOMACS 2019). Produces *exactly* the same value and
/// raw-draw sequence as Xoshiro256pp::uniform(bound) — hot loops that
/// draw repeatedly with a fixed bound (schedulers over a fixed active
/// set) can hoist the threshold without perturbing trajectories.
class BoundedDraw {
 public:
  /// A default-constructed instance has bound() == 0 and must be
  /// reassigned before use; it exists so callers can cache "no bound yet".
  constexpr BoundedDraw() noexcept = default;

  explicit constexpr BoundedDraw(std::uint64_t bound) noexcept
      : bound_(bound), threshold_(bound ? (0 - bound) % bound : 0) {}

  constexpr std::uint64_t bound() const noexcept { return bound_; }

  /// Uniform integer in [0, bound()). Precondition: bound() > 0.
  std::uint64_t operator()(Xoshiro256pp& rng) const noexcept {
    using u128 = unsigned __int128;
    u128 m = static_cast<u128>(rng()) * static_cast<u128>(bound_);
    // threshold_ < bound_, so rejecting iff low < threshold_ accepts the
    // same draws as the lazy-threshold form in Xoshiro256pp::uniform.
    while (static_cast<std::uint64_t>(m) < threshold_) {
      m = static_cast<u128>(rng()) * static_cast<u128>(bound_);
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

 private:
  std::uint64_t bound_ = 0;
  std::uint64_t threshold_ = 0;
};

}  // namespace pwf
