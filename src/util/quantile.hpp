// Log-linear quantile sketch for latency streams (HdrHistogram-style).
//
// The open-system engine records one latency sample per completed
// operation; at n = 10^6 live processes a run produces far too many
// samples to keep exactly, and the tail (p99, p999) is exactly what the
// "practically wait-free" question is about. The sketch buckets each
// sample by its binary magnitude plus `sub_bits` linear sub-buckets per
// octave, so the relative error of any reported quantile is bounded by
// 2^-sub_bits (3.125% at the default 5 bits) with O(64 * 2^sub_bits)
// memory, O(1) insertion, and a deterministic, order-independent merge —
// the property that lets replica sketches from the exp pool be folded in
// replica order with a thread-count-invariant result.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pwf {

class QuantileSketch {
 public:
  /// `sub_bits` linear sub-buckets per power of two; relative quantile
  /// error is bounded by 2^-sub_bits. Precondition: 1 <= sub_bits <= 8.
  explicit QuantileSketch(unsigned sub_bits = 5);

  void add(std::uint64_t x) noexcept;
  /// Adds every bucket of `other` (which must use the same sub_bits).
  void merge(const QuantileSketch& other);

  std::uint64_t count() const noexcept { return total_; }
  std::uint64_t min() const noexcept { return total_ ? min_ : 0; }
  std::uint64_t max() const noexcept { return max_; }

  /// Value at quantile q in [0, 1] (0 when empty): the representative
  /// (upper edge) of the bucket containing the q-th sample, clamped to
  /// the observed max so p100 is exact.
  std::uint64_t quantile(double q) const noexcept;

  /// FNV-1a over (sub_bits, every non-empty bucket): bit-identical
  /// sketches (and only those) agree. Used by determinism tests.
  std::uint64_t fingerprint() const noexcept;

 private:
  std::size_t bucket_of(std::uint64_t x) const noexcept;
  std::uint64_t bucket_hi(std::size_t b) const noexcept;

  unsigned sub_bits_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  std::uint64_t min_ = ~std::uint64_t{0};
  std::uint64_t max_ = 0;
};

}  // namespace pwf
