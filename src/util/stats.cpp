#include "util/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace pwf {

void StreamingStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void StreamingStats::merge(const StreamingStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(n_);
  const auto n2 = static_cast<double>(other.n_);
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double StreamingStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double StreamingStats::stddev() const noexcept { return std::sqrt(variance()); }

double StreamingStats::stderr_mean() const noexcept {
  return n_ > 1 ? stddev() / std::sqrt(static_cast<double>(n_)) : 0.0;
}

double StreamingStats::ci_halfwidth(double z) const noexcept {
  return z * stderr_mean();
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0) {
  if (!(hi > lo) || buckets == 0) {
    throw std::invalid_argument("Histogram: need hi > lo and buckets > 0");
  }
}

void Histogram::add(double x) noexcept {
  ++total_;
  std::size_t idx;
  if (x < lo_) {
    ++underflow_;
    idx = 0;
  } else if (x >= hi_) {
    ++overflow_;
    idx = counts_.size() - 1;
  } else {
    idx = static_cast<std::size_t>((x - lo_) / width_);
    idx = std::min(idx, counts_.size() - 1);
  }
  ++counts_[idx];
}

double Histogram::bucket_lo(std::size_t i) const noexcept {
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::bucket_hi(std::size_t i) const noexcept {
  return lo_ + width_ * static_cast<double>(i + 1);
}

double Histogram::quantile(double q) const {
  if (total_ == 0) throw std::logic_error("Histogram::quantile: empty");
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total_);
  double cum = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cum + static_cast<double>(counts_[i]);
    if (next >= target) {
      const double inside =
          counts_[i] ? (target - cum) / static_cast<double>(counts_[i]) : 0.0;
      return bucket_lo(i) + inside * width_;
    }
    cum = next;
  }
  return hi_;
}

double percentile(std::span<const double> xs, double q) {
  if (xs.empty()) throw std::invalid_argument("percentile: empty sample");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

LinearFit fit_linear(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size() || xs.size() < 2) {
    throw std::invalid_argument("fit_linear: need matching sizes >= 2");
  }
  const auto n = static_cast<double>(xs.size());
  double sx = 0, sy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
  }
  const double mx = sx / n, my = sy / n;
  double sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx, dy = ys[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  LinearFit fit;
  fit.slope = sxx > 0 ? sxy / sxx : 0.0;
  fit.intercept = my - fit.slope * mx;
  fit.r_squared = (sxx > 0 && syy > 0) ? (sxy * sxy) / (sxx * syy) : 1.0;
  return fit;
}

LinearFit fit_power_law(std::span<const double> xs,
                        std::span<const double> ys) {
  std::vector<double> lx(xs.size()), ly(ys.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (xs[i] <= 0 || ys[i] <= 0) {
      throw std::invalid_argument("fit_power_law: values must be positive");
    }
    lx[i] = std::log(xs[i]);
    ly[i] = std::log(ys[i]);
  }
  return fit_linear(lx, ly);
}

double l1_distance(std::span<const double> p, std::span<const double> q) {
  assert(p.size() == q.size());
  double d = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) d += std::abs(p[i] - q[i]);
  return d;
}

double linf_distance(std::span<const double> p, std::span<const double> q) {
  assert(p.size() == q.size());
  double d = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    d = std::max(d, std::abs(p[i] - q[i]));
  }
  return d;
}

}  // namespace pwf
