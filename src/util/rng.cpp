#include "util/rng.hpp"

namespace pwf {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Xoshiro256pp::Xoshiro256pp(std::uint64_t seed) noexcept {
  SplitMix64 sm(seed);
  for (auto& word : s_) word = sm();
}

Xoshiro256pp::result_type Xoshiro256pp::operator()() noexcept {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Xoshiro256pp::uniform(std::uint64_t bound) noexcept {
  // Lemire's method: multiply-shift with rejection of the biased low range.
  using u128 = unsigned __int128;
  std::uint64_t x = (*this)();
  u128 m = static_cast<u128>(x) * static_cast<u128>(bound);
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = (*this)();
      m = static_cast<u128>(x) * static_cast<u128>(bound);
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Xoshiro256pp::uniform_double() noexcept {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

bool Xoshiro256pp::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform_double() < p;
}

Xoshiro256pp Xoshiro256pp::split() noexcept { return Xoshiro256pp((*this)()); }

void Xoshiro256pp::jump() noexcept {
  static constexpr std::uint64_t kJump[] = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
      0x39abdc4529b1661cULL};
  std::array<std::uint64_t, 4> acc{};
  for (std::uint64_t word : kJump) {
    for (int bit = 0; bit < 64; ++bit) {
      if (word & (std::uint64_t{1} << bit)) {
        for (std::size_t i = 0; i < 4; ++i) acc[i] ^= s_[i];
      }
      (*this)();
    }
  }
  s_ = acc;
}

}  // namespace pwf
