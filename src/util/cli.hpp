// Declarative flag parsing shared by the drivers (pwf_bench, pwf_check).
//
// Each binary registers its flags once — switches, valued options, and
// aliases — and gets identical parsing behaviour, error messages, and
// aligned usage text. The drivers advertise the same spellings for the
// same concepts (--out, --seed, --threads, --filter, --trials), so the
// table is also what keeps their CLIs from drifting apart again.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

namespace pwf::util {

class CliParser {
 public:
  explicit CliParser(std::string program) : program_(std::move(program)) {}

  /// A boolean switch: `--name` sets *target to true.
  CliParser& flag(const std::string& name, const std::string& help,
                  bool* target);

  /// A valued option: `--name VALUE` calls apply(VALUE). apply may throw
  /// (std::invalid_argument / std::out_of_range from the sto* family);
  /// parse() turns that into a "bad value" error.
  CliParser& option(const std::string& name, const std::string& value_name,
                    const std::string& help,
                    std::function<void(const std::string&)> apply);

  /// Typed conveniences over option().
  CliParser& option_u64(const std::string& name, const std::string& help,
                        std::uint64_t* target);
  CliParser& option_size(const std::string& name, const std::string& help,
                         std::size_t* target);
  CliParser& option_string(const std::string& name, const std::string& help,
                           std::string* target);

  /// `from` parses exactly like the already-registered `to` (shown in the
  /// usage text as "alias for to").
  CliParser& alias(const std::string& from, const std::string& to);

  /// Parses argv. On failure returns false with a one-line `error`
  /// (unknown option, missing value, bad value).
  bool parse(int argc, char** argv, std::string& error) const;

  /// "usage: <program> [options]" plus one aligned line per flag; help
  /// strings may contain '\n' for continuation lines.
  void print_usage(std::ostream& os) const;

 private:
  struct Entry {
    std::string name;
    std::string value_name;  ///< empty for switches
    std::string help;
    bool* toggle = nullptr;
    std::function<void(const std::string&)> apply;
  };

  const Entry* find(const std::string& name) const;

  std::string program_;
  std::vector<Entry> entries_;
  std::vector<std::pair<std::string, std::string>> aliases_;  // from -> to
};

/// The drivers' shared selection predicate: true iff `filter` is empty or
/// `name` contains any of its comma-separated substrings.
bool matches_filter(const std::string& name, const std::string& filter);

}  // namespace pwf::util
