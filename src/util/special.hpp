// Special functions used by the paper's analysis (Sections 6-7):
//   - the Ramanujan Q-function, whose value Q(n) = Z(n-1) is the expected
//     return time of the fetch-and-increment global chain (paper, Lemma 12
//     and the remark after it),
//   - the Z(i) = i*Z(i-1)/n + 1 hitting-time recurrence itself,
//   - birthday-paradox expectations used by the balls-into-bins bounds.
#pragma once

#include <cstdint>

namespace pwf {

/// Exact evaluation of the paper's hitting-time recurrence for the
/// fetch-and-increment global chain (proof of Lemma 12):
///   Z(0) = 1,  Z(i) = i*Z(i-1)/n + 1.
/// Returns Z(i). Preconditions: n >= 1, 0 <= i <= n-1.
double fai_hitting_time(std::uint64_t i, std::uint64_t n);

/// Ramanujan Q-function: Q(n) = sum_{k=1}^{n} n! / ((n-k)! * n^k).
/// Z(n-1) = Q(n) exactly; asymptotically Q(n) ~ sqrt(pi*n/2) - 1/3 + ...
/// Evaluated by the numerically stable product form.
double ramanujan_q(std::uint64_t n);

/// Leading-order asymptotic sqrt(pi*n/2) that the paper quotes for Z(n-1).
double ramanujan_q_asymptotic(std::uint64_t n);

/// Expected number of uniform throws into `bins` bins until some bin first
/// holds two balls (the classic birthday expectation, = Q(bins) + 1 throws).
double birthday_expected_throws(std::uint64_t bins);

/// ln(n!) via lgamma.
double log_factorial(std::uint64_t n);

/// ln C(n, k). Preconditions: k <= n.
double log_binomial(std::uint64_t n, std::uint64_t k);

}  // namespace pwf
