#include "util/tsc.hpp"

#include <atomic>
#include <chrono>
#include <thread>

#if defined(__x86_64__) || defined(_M_X64)
#include <cpuid.h>
#define PWF_TSC_X86 1
#endif

#if defined(__linux__)
#include <sched.h>
#endif

namespace pwf::util {

namespace {

using SteadyClock = std::chrono::steady_clock;

std::uint64_t steady_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          SteadyClock::now().time_since_epoch())
          .count());
}

#ifdef PWF_TSC_X86
bool detect_invariant_rdtsc() noexcept {
  // CPUID.80000007H:EDX[8] — invariant TSC (constant rate, survives
  // P/C-state transitions). Without it raw rdtsc deltas are meaningless
  // and the steady_clock fallback engages.
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid(0x80000007u, &eax, &ebx, &ecx, &edx) == 0) return false;
  return (edx & (1u << 8)) != 0;
}
#endif

TscSource detect_source() noexcept {
#ifdef PWF_TSC_X86
  if (detect_invariant_rdtsc()) return TscSource::kRdtsc;
#elif defined(__aarch64__)
  // The generic timer is architecturally invariant and synchronized
  // across cores.
  return TscSource::kCntvct;
#endif
  return TscSource::kSteadyClock;
}

// The override is read on every stamp; relaxed is fine — tests install
// it before spawning stampers.
std::atomic<int> g_override{-1};  // -1 = auto, else static_cast<TscSource>

std::uint64_t read_source(TscSource source) noexcept {
  switch (source) {
    case TscSource::kRdtsc:
#ifdef PWF_TSC_X86
      return __builtin_ia32_rdtsc();
#else
      return steady_ns();
#endif
    case TscSource::kCntvct: {
#if defined(__aarch64__)
      std::uint64_t value;
      asm volatile("mrs %0, cntvct_el0" : "=r"(value));
      return value;
#else
      return steady_ns();
#endif
    }
    case TscSource::kSteadyClock:
      return steady_ns();
  }
  return steady_ns();
}

/// Spin that stays live on oversubscribed hosts: a bounded busy wait,
/// then yield. On a multi-core host the condition is usually observed
/// within the busy phase; on a serial host the yield is what lets the
/// partner run at all.
template <typename Cond>
void spin_until(const Cond& cond) noexcept {
  for (;;) {
    for (int i = 0; i < 4096; ++i) {
      if (cond()) return;
    }
    std::this_thread::yield();
  }
}

struct alignas(kCacheLineBytes) PingPongChannel {
  std::atomic<std::uint64_t> request{0};
  alignas(kCacheLineBytes) std::atomic<std::uint64_t> response{0};
  alignas(kCacheLineBytes) std::atomic<std::uint64_t> probe_stamp{0};
};

std::uint64_t measure_granularity() noexcept {
  std::uint64_t best = 0;
  std::uint64_t prev = tsc_now();
  for (int i = 0; i < 4096; ++i) {
    const std::uint64_t cur = tsc_now();
    if (cur > prev && (best == 0 || cur - prev < best)) best = cur - prev;
    prev = cur;
  }
  return best == 0 ? 1 : best;
}

double measure_ticks_per_us() noexcept {
  // Rate against steady_clock over a ~2 ms busy window; only run inside
  // calibrate_tsc, never on a capture path.
  const auto s0 = SteadyClock::now();
  const std::uint64_t t0 = tsc_now();
  for (;;) {
    const auto elapsed = SteadyClock::now() - s0;
    if (elapsed >= std::chrono::milliseconds(2)) {
      const std::uint64_t t1 = tsc_now();
      const double us =
          std::chrono::duration<double, std::micro>(elapsed).count();
      return us > 0.0 ? static_cast<double>(t1 - t0) / us : 0.0;
    }
  }
}

}  // namespace

const char* tsc_source_name(TscSource source) {
  switch (source) {
    case TscSource::kRdtsc:
      return "rdtsc";
    case TscSource::kCntvct:
      return "cntvct";
    case TscSource::kSteadyClock:
      return "steady-clock";
  }
  return "?";
}

TscSource tsc_source() noexcept {
  const int forced = g_override.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<TscSource>(forced);
  static const TscSource kDetected = detect_source();
  return kDetected;
}

bool invariant_tsc() noexcept {
  return tsc_source() != TscSource::kSteadyClock;
}

std::uint64_t tsc_now() noexcept { return read_source(tsc_source()); }

std::uint64_t tsc_monotonic() noexcept {
  thread_local std::uint64_t last = 0;
  std::uint64_t stamp = tsc_now();
  if (stamp <= last) stamp = last + 1;
  last = stamp;
  return stamp;
}

void set_tsc_source_for_testing(std::optional<TscSource> source) noexcept {
  g_override.store(source ? static_cast<int>(*source) : -1,
                   std::memory_order_relaxed);
}

std::size_t available_cpus() noexcept {
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  if (sched_getaffinity(0, sizeof(set), &set) == 0) {
    const int count = CPU_COUNT(&set);
    if (count > 0) return static_cast<std::size_t>(count);
  }
#endif
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

bool pin_this_thread(std::size_t index) noexcept {
#if defined(__linux__)
  cpu_set_t allowed;
  CPU_ZERO(&allowed);
  if (sched_getaffinity(0, sizeof(allowed), &allowed) != 0) return false;
  const int count = CPU_COUNT(&allowed);
  if (count <= 0) return false;
  // The index-th set bit of the affinity mask, modulo its population.
  int target = static_cast<int>(index % static_cast<std::size_t>(count));
  for (int cpu = 0; cpu < CPU_SETSIZE; ++cpu) {
    if (!CPU_ISSET(cpu, &allowed)) continue;
    if (target-- == 0) {
      cpu_set_t one;
      CPU_ZERO(&one);
      CPU_SET(cpu, &one);
      return sched_setaffinity(0, sizeof(one), &one) == 0;
    }
  }
  return false;
#else
  (void)index;
  return false;
#endif
}

TscCalibration calibrate_tsc(std::size_t threads, std::size_t rounds,
                             bool pin) {
  TscCalibration cal;
  cal.source = tsc_source();
  cal.fallback = !invariant_tsc();
  cal.serial_host = available_cpus() <= 1;
  cal.threads = threads == 0 ? 1 : threads;
  cal.rounds = rounds == 0 ? 1 : rounds;
  cal.read_granularity = measure_granularity();
  cal.ticks_per_us = measure_ticks_per_us();
  cal.min_round_trip = 0;
  cal.offset_lo.reserve(cal.threads);
  cal.offset_hi.reserve(cal.threads);

  for (std::size_t p = 0; p < cal.threads; ++p) {
    PingPongChannel channel;
    std::atomic<bool> done{false};
    std::thread probe([&, p] {
      if (pin) pin_this_thread(p + 1);
      for (std::uint64_t r = 1; r <= cal.rounds; ++r) {
        spin_until([&] {
          return channel.request.load(std::memory_order_acquire) >= r;
        });
        channel.probe_stamp.store(tsc_now(), std::memory_order_relaxed);
        channel.response.store(r, std::memory_order_release);
      }
      done.store(true, std::memory_order_release);
    });

    std::int64_t lo = INT64_MIN, hi = INT64_MAX;       // intersection
    std::int64_t env_lo = INT64_MAX, env_hi = INT64_MIN;  // envelope
    for (std::uint64_t r = 1; r <= cal.rounds; ++r) {
      const std::uint64_t t0 = tsc_now();
      channel.request.store(r, std::memory_order_release);
      spin_until([&] {
        return channel.response.load(std::memory_order_acquire) >= r;
      });
      const std::uint64_t t2 = tsc_now();
      const std::uint64_t w =
          channel.probe_stamp.load(std::memory_order_relaxed);
      // The probe's read happened at master-time m in [t0, t2], so its
      // offset w - m lies in [w - t2, w - t0].
      const std::int64_t round_lo =
          static_cast<std::int64_t>(w) - static_cast<std::int64_t>(t2);
      const std::int64_t round_hi =
          static_cast<std::int64_t>(w) - static_cast<std::int64_t>(t0);
      lo = lo > round_lo ? lo : round_lo;
      hi = hi < round_hi ? hi : round_hi;
      env_lo = env_lo < round_lo ? env_lo : round_lo;
      env_hi = env_hi > round_hi ? env_hi : round_hi;
      const std::uint64_t rtt = t2 >= t0 ? t2 - t0 : 0;
      if (cal.min_round_trip == 0 || rtt < cal.min_round_trip) {
        cal.min_round_trip = rtt;
      }
    }
    spin_until([&] { return done.load(std::memory_order_acquire); });
    probe.join();

    if (lo > hi) {
      // Inconsistent rounds: the counters drifted during calibration.
      // Fall back to the envelope, which every round is consistent with.
      cal.drift = true;
      lo = env_lo;
      hi = env_hi;
    }
    cal.offset_lo.push_back(lo);
    cal.offset_hi.push_back(hi);
    const std::uint64_t bound = static_cast<std::uint64_t>(
        std::max(lo < 0 ? -lo : lo, hi < 0 ? -hi : hi));
    if (bound > cal.max_abs_offset) cal.max_abs_offset = bound;
  }

  // The skew bound (header comment): serial hosts read one physical
  // counter, so only read granularity matters; otherwise any two probes
  // differ by at most their two master-frame bounds combined.
  const std::uint64_t floor = cal.read_granularity > 0
                                  ? cal.read_granularity
                                  : static_cast<std::uint64_t>(1);
  cal.epsilon =
      cal.serial_host ? floor : 2 * cal.max_abs_offset + floor;
  if (cal.epsilon == 0) cal.epsilon = 1;
  return cal;
}

}  // namespace pwf::util
