// Minimal ASCII table renderer for the benchmark harness. Every bench binary
// prints paper-style series as aligned tables through this class so output
// is uniform and diffable.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace pwf {

/// Column-aligned ASCII table.
///
/// Usage:
///   Table t({"n", "measured", "predicted"});
///   t.add_row({"8", "12.3", "11.9"});
///   t.print(std::cout);
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Adds a row; must have exactly as many cells as the header.
  void add_row(std::vector<std::string> cells);

  std::size_t rows() const noexcept { return rows_.size(); }

  void print(std::ostream& os) const;
  std::string to_string() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with the given precision (fixed notation).
std::string fmt(double value, int precision = 3);

/// Formats an integer count.
std::string fmt(std::uint64_t value);
std::string fmt(std::int64_t value);
std::string fmt(int value);
std::string fmt(unsigned value);

}  // namespace pwf
