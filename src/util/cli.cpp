#include "util/cli.hpp"

#include <ostream>
#include <sstream>
#include <stdexcept>

namespace pwf::util {

CliParser& CliParser::flag(const std::string& name, const std::string& help,
                           bool* target) {
  entries_.push_back({name, "", help, target, nullptr});
  return *this;
}

CliParser& CliParser::option(const std::string& name,
                             const std::string& value_name,
                             const std::string& help,
                             std::function<void(const std::string&)> apply) {
  entries_.push_back({name, value_name, help, nullptr, std::move(apply)});
  return *this;
}

CliParser& CliParser::option_u64(const std::string& name,
                                 const std::string& help,
                                 std::uint64_t* target) {
  return option(name, "N", help,
                [target](const std::string& v) { *target = std::stoull(v); });
}

CliParser& CliParser::option_size(const std::string& name,
                                  const std::string& help,
                                  std::size_t* target) {
  return option(name, "N", help, [target](const std::string& v) {
    *target = static_cast<std::size_t>(std::stoull(v));
  });
}

CliParser& CliParser::option_string(const std::string& name,
                                    const std::string& help,
                                    std::string* target) {
  return option(name, "PATH", help,
                [target](const std::string& v) { *target = v; });
}

CliParser& CliParser::alias(const std::string& from, const std::string& to) {
  aliases_.emplace_back(from, to);
  return *this;
}

const CliParser::Entry* CliParser::find(const std::string& name) const {
  std::string resolved = name;
  for (const auto& [from, to] : aliases_) {
    if (from == resolved) {
      resolved = to;
      break;
    }
  }
  for (const Entry& e : entries_) {
    if (e.name == resolved) return &e;
  }
  return nullptr;
}

bool CliParser::parse(int argc, char** argv, std::string& error) const {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const Entry* entry = find(arg);
    if (!entry) {
      error = "unknown option: " + arg;
      return false;
    }
    if (entry->toggle) {
      *entry->toggle = true;
      continue;
    }
    if (i + 1 >= argc) {
      error = arg + " requires a value";
      return false;
    }
    try {
      entry->apply(argv[++i]);
    } catch (const std::exception&) {
      error = "bad value for " + arg;
      return false;
    }
  }
  return true;
}

void CliParser::print_usage(std::ostream& os) const {
  constexpr std::size_t kHelpColumn = 20;
  os << "usage: " << program_ << " [options]\n";
  auto print_entry = [&](const std::string& name,
                         const std::string& value_name,
                         const std::string& help) {
    std::string head = "  " + name;
    if (!value_name.empty()) head += " " + value_name;
    os << head;
    std::size_t column = head.size();
    std::istringstream lines(help);
    std::string line;
    bool first = true;
    while (std::getline(lines, line)) {
      if (!first) {
        os << "\n";
        column = 0;
      }
      for (; column < kHelpColumn; ++column) os << ' ';
      os << line;
      first = false;
    }
    os << "\n";
  };
  for (const Entry& e : entries_) {
    print_entry(e.name, e.value_name, e.help);
    for (const auto& [from, to] : aliases_) {
      if (to == e.name) {
        print_entry(from, e.value_name, "alias for " + to);
      }
    }
  }
}

bool matches_filter(const std::string& name, const std::string& filter) {
  if (filter.empty()) return true;
  std::stringstream ss(filter);
  std::string token;
  while (std::getline(ss, token, ',')) {
    if (!token.empty() && name.find(token) != std::string::npos) return true;
  }
  return false;
}

}  // namespace pwf::util
