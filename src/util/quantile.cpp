#include "util/quantile.hpp"

#include <bit>
#include <stdexcept>

namespace pwf {

QuantileSketch::QuantileSketch(unsigned sub_bits) : sub_bits_(sub_bits) {
  if (sub_bits < 1 || sub_bits > 8) {
    throw std::invalid_argument("QuantileSketch: need 1 <= sub_bits <= 8");
  }
  // Values below 2^sub_bits are stored exactly (one bucket per value);
  // every further octave contributes 2^sub_bits sub-buckets. 64 octaves
  // cover the full uint64 range.
  counts_.assign((64 - sub_bits_ + 1) << sub_bits_, 0);
}

std::size_t QuantileSketch::bucket_of(std::uint64_t x) const noexcept {
  if (x < (std::uint64_t{1} << sub_bits_)) return static_cast<std::size_t>(x);
  const unsigned msb = 63 - static_cast<unsigned>(std::countl_zero(x));
  const unsigned shift = msb - sub_bits_;
  const std::uint64_t sub = (x >> shift) & ((std::uint64_t{1} << sub_bits_) - 1);
  // Octave `msb` starts at index (msb - sub_bits + 1) << sub_bits: octave
  // sub_bits is the first non-exact one and begins right after the exact
  // range [0, 2^sub_bits).
  return static_cast<std::size_t>(
      ((std::uint64_t{msb - sub_bits_ + 1} << sub_bits_)) + sub);
}

std::uint64_t QuantileSketch::bucket_hi(std::size_t b) const noexcept {
  const std::uint64_t exact = std::uint64_t{1} << sub_bits_;
  if (b < exact) return static_cast<std::uint64_t>(b);
  const std::uint64_t octave = (b >> sub_bits_) - 1 + sub_bits_;
  const std::uint64_t sub = b & (exact - 1);
  const unsigned shift = static_cast<unsigned>(octave) - sub_bits_;
  // Upper edge of the sub-bucket: the largest value mapping into it.
  const std::uint64_t lo =
      (std::uint64_t{1} << octave) + (sub << shift);
  return lo + ((std::uint64_t{1} << shift) - 1);
}

void QuantileSketch::add(std::uint64_t x) noexcept {
  ++counts_[bucket_of(x)];
  ++total_;
  if (x < min_) min_ = x;
  if (x > max_) max_ = x;
}

void QuantileSketch::merge(const QuantileSketch& other) {
  if (other.sub_bits_ != sub_bits_) {
    throw std::invalid_argument("QuantileSketch::merge: sub_bits mismatch");
  }
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    counts_[b] += other.counts_[b];
  }
  total_ += other.total_;
  if (other.total_) {
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }
}

std::uint64_t QuantileSketch::quantile(double q) const noexcept {
  if (total_ == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the target sample (1-based, nearest-rank definition).
  std::uint64_t rank = static_cast<std::uint64_t>(q * static_cast<double>(total_));
  if (rank < 1) rank = 1;
  if (rank > total_) rank = total_;
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    seen += counts_[b];
    if (seen >= rank) {
      const std::uint64_t hi = bucket_hi(b);
      return hi > max_ ? max_ : (hi < min_ ? min_ : hi);
    }
  }
  return max_;
}

std::uint64_t QuantileSketch::fingerprint() const noexcept {
  std::uint64_t h = 1469598103934665603ULL;  // FNV offset basis
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= 1099511628211ULL;
    }
  };
  mix(sub_bits_);
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    if (counts_[b]) {
      mix(b);
      mix(counts_[b]);
    }
  }
  return h;
}

}  // namespace pwf
