#include "util/special.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace pwf {

double fai_hitting_time(std::uint64_t i, std::uint64_t n) {
  if (n == 0) throw std::invalid_argument("fai_hitting_time: n must be >= 1");
  if (i >= n) throw std::invalid_argument("fai_hitting_time: need i <= n-1");
  double z = 1.0;  // Z(0)
  for (std::uint64_t k = 1; k <= i; ++k) {
    z = static_cast<double>(k) * z / static_cast<double>(n) + 1.0;
  }
  return z;
}

double ramanujan_q(std::uint64_t n) {
  if (n == 0) throw std::invalid_argument("ramanujan_q: n must be >= 1");
  // Q(n) = sum_{k=1}^{n} prod_{j=0}^{k-1} (n-j)/n, evaluated by running
  // product; terms decay geometrically past k ~ sqrt(n).
  double term = 1.0;
  double sum = 0.0;
  for (std::uint64_t k = 1; k <= n; ++k) {
    term *= static_cast<double>(n - (k - 1)) / static_cast<double>(n);
    sum += term;
    if (term < 1e-18 * sum) break;
  }
  return sum;
}

double ramanujan_q_asymptotic(std::uint64_t n) {
  return std::sqrt(std::numbers::pi * static_cast<double>(n) / 2.0);
}

double birthday_expected_throws(std::uint64_t bins) {
  // With b bins, the expected number of throws until the first collision is
  // sum_{k>=0} P[no collision after k throws] = 1 + Q(b) + ... exactly
  // 2 + Q(b) - 1 = Q(b) + 1 throws counting the colliding throw itself.
  return ramanujan_q(bins) + 1.0;
}

double log_factorial(std::uint64_t n) {
  return std::lgamma(static_cast<double>(n) + 1.0);
}

double log_binomial(std::uint64_t n, std::uint64_t k) {
  if (k > n) throw std::invalid_argument("log_binomial: k > n");
  return log_factorial(n) - log_factorial(k) - log_factorial(n - k);
}

}  // namespace pwf
