#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace pwf {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("Table: empty header");
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size()) {
    throw std::invalid_argument("Table: row width mismatch");
  }
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " ") << std::setw(static_cast<int>(widths[c]))
         << row[c] << " |";
    }
    os << '\n';
  };
  auto print_rule = [&] {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      os << (c == 0 ? "|" : "") << std::string(widths[c] + 2, '-') << "|";
    }
    os << '\n';
  };
  print_rule();
  print_row(header_);
  print_rule();
  for (const auto& row : rows_) print_row(row);
  print_rule();
}

std::string Table::to_string() const {
  std::ostringstream oss;
  print(oss);
  return oss.str();
}

std::string fmt(double value, int precision) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << value;
  return oss.str();
}

std::string fmt(std::uint64_t value) { return std::to_string(value); }
std::string fmt(std::int64_t value) { return std::to_string(value); }
std::string fmt(int value) { return std::to_string(value); }
std::string fmt(unsigned value) { return std::to_string(value); }

}  // namespace pwf
