// Padded start latch for simultaneous burst release.
//
// The capture layer previously released its worker threads with a bare
// `ready.fetch_add(acq_rel)` + spin on the same counter: every arrival
// invalidated the line all waiters were spinning on, so start cost grew
// with thread count and the final arrivals started measurably late.
// StartLatch splits arrival and release onto separate cache lines —
// arrival is one RMW on a line nobody spins on, and waiters spin on a
// write-once flag — so burst start cost is uniform across thread counts.
//
// Like the barrier it replaces, the latch never blocks in the kernel:
// a stalled peer cannot silently serialize the measured region, only
// delay its start (the no-silent-serialization guarantee).
#pragma once

#include <atomic>
#include <cstddef>
#include <thread>

#include "util/tsc.hpp"

namespace pwf::util {

class StartLatch {
 public:
  explicit StartLatch(std::size_t expected) noexcept
      : expected_(expected == 0 ? 1 : expected) {}

  StartLatch(const StartLatch&) = delete;
  StartLatch& operator=(const StartLatch&) = delete;

  /// Arrive; the last arrival opens the gate for everyone (itself
  /// included). seq_cst on both sides so the open is a single global
  /// event every thread agrees on.
  void arrive_and_wait() noexcept {
    if (arrived_.fetch_add(1, std::memory_order_seq_cst) + 1 == expected_) {
      go_.store(true, std::memory_order_seq_cst);
      return;
    }
    for (;;) {
      for (int i = 0; i < 4096; ++i) {
        if (go_.load(std::memory_order_acquire)) return;
      }
      std::this_thread::yield();  // keeps serial hosts live
    }
  }

  bool open() const noexcept { return go_.load(std::memory_order_acquire); }

 private:
  std::size_t expected_;
  alignas(kCacheLineBytes) std::atomic<std::size_t> arrived_{0};
  alignas(kCacheLineBytes) std::atomic<bool> go_{false};
};

}  // namespace pwf::util
