// The wait-free universal construction as a step machine on simulated
// shared memory — the twin of waitfree/object.hpp that the stochastic
// and adversarial schedulers (src/core, src/sched) can drive at scale,
// one shared-memory operation per scheduled step.
//
// Same algorithm as the native object: a fast path (copy the current
// block, apply the op, CAS the object register), and after
// `max_failures` CAS losses a slow path that prepares a descriptor in
// the announcement array; every attempt finishes the descriptor carried
// by the current block before installing anything (finish-before-install),
// and every `help_delay` operations a process probes one announcement
// slot round-robin and drives the lowest... the found prepared foreign
// descriptor to completion. `helping = false` is the nohelp mutant.
//
// Register layout (simulated words are 64-bit Values):
//   [0]                 OBJ: seq<<33 | block_ref<<1 | has_desc. The
//                       monotone seq makes block reuse ABA-safe; the
//                       has_desc bit lets fast-path attempts skip the
//                       finish probe when the current block carries no
//                       descriptor.
//   [1 .. n]            announce[pid]: descriptor base register, 0 = none
//   desc arena          kDescRegs = 5 per descriptor:
//                       [state|committer<<8, op, arg, phase, result].
//                       Descriptors are never recycled within a run
//                       (slow-path entries are rare by thesis; the arena
//                       bound is a config knob and exhaustion throws).
//   block arena         2 + payload_len per block: [desc_ref, result,
//                       payload...]. Blocks recycle through per-process
//                       free lists once provably superseded (their
//                       install seq < the current seq); readers that
//                       catch a block mid-rewrite are protected by the
//                       snapshot-revalidate step and the final seq CAS.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/memory.hpp"
#include "core/step_machine.hpp"
#include "waitfree/help_stats.hpp"

namespace pwf::waitfree {

/// Which wrapped structure the machine runs.
enum class SimWfKind { kCounter, kStack };

struct SimWfConfig {
  SimWfKind kind = SimWfKind::kCounter;
  std::uint32_t max_failures = 16;  ///< fast-path CAS losses before announcing
  std::uint32_t help_delay = 4;     ///< ops between announcement probes
  bool helping = true;              ///< false = the nohelp mutant
  std::size_t max_descs_per_process = 256;  ///< slow-path arena bound
  std::size_t max_blocks_per_process = 8;   ///< recycled; >= 4 suffices
  std::size_t stack_capacity = 32;          ///< kStack payload bound
};

/// One process of the wait-free universal construction workload
/// (counter: every op fetch-inc; stack: alternating push/pop).
class WaitFreeSim final : public core::StepMachine {
 public:
  WaitFreeSim(std::size_t pid, std::size_t n, SimWfConfig config);

  bool step(core::SharedMemory& mem) override;
  std::string name() const override;
  void set_trace(core::OpTraceSink* sink) override { trace_ = sink; }

  static std::size_t registers_required(std::size_t n,
                                        const SimWfConfig& config);
  static core::StepMachineFactory factory(SimWfConfig config);
  /// Pre-execution pokes establishing the initial block (OBJ register).
  static std::vector<std::pair<std::size_t, core::Value>> initial_values(
      std::size_t n, const SimWfConfig& config);

  const HelpStats& stats() const noexcept { return stats_; }
  /// Own shared-memory steps spent on the most expensive *completed*
  /// operation — the observable the wait-free step bound is stated over.
  std::uint64_t max_own_steps() const noexcept { return max_own_steps_; }
  /// Own steps sunk into the current in-flight operation; unbounded
  /// growth here is how the nohelp mutant's starvation shows up.
  std::uint64_t steps_in_flight() const noexcept { return steps_this_op_; }
  /// Stage of this process's announced descriptor (kFree when the
  /// process has never announced / is past cleanup). Peeks, no step.
  DescStage own_desc_stage(const core::SharedMemory& mem) const;
  /// True while the in-flight operation is on the slow path.
  bool in_slow_path() const noexcept { return own_desc_ref_ != 0; }

  std::uint64_t pushes() const noexcept { return pushes_; }
  std::uint64_t pops() const noexcept { return pops_; }
  std::uint64_t empty_pops() const noexcept { return empty_pops_; }
  const std::vector<core::Value>& popped_values() const noexcept {
    return popped_;
  }

 private:
  enum class Phase {
    kScanRead,           // read announce[cursor]
    kScanDescState,      // read found descriptor's stage word
    kReadObj,            // read OBJ -> (seq, ref, flag) snapshot
    kReadBlockDesc,      // flag set: read current block's desc_ref
    kReadBlockResult,    // read current block's result
    kRevalidateObj,      // re-read OBJ; unchanged => commit is safe
    kCommitWriteResult,  // write desc.result (idempotent)
    kCommitCasState,     // CAS desc.state prepared -> committed|me
    kCheckTarget,        // read driven descriptor's stage word
    kReadTargetOp,       // read foreign target's op (cached after)
    kReadTargetArg,      // read foreign target's arg
    kReadPayload,        // read current block payload (cursor)
    kWriteCand,          // write candidate block (cursor over plan)
    kCasObj,             // CAS OBJ -> install candidate
    kPostInstallWriteResult,  // after installing a descriptor: finish it
    kPostInstallCasState,
    kPrepWriteOp,        // slow path: fill own descriptor...
    kPrepWriteArg,
    kPrepWritePhase,
    kPrepWriteState,     // ...mark prepared...
    kPrepAnnounce,       // ...and publish it
    kOwnerReadState,     // own desc committed by a helper: learn committer
    kOwnerReadResult,    // read own desc result
    kCleanupAnnounce,    // withdraw announcement
    kCleanupState,       // mark cleaned; operation completes
  };

  // Ops stored in descriptor registers.
  static constexpr core::Value kOpFetchInc = 1;
  static constexpr core::Value kOpPush = 2;
  static constexpr core::Value kOpPop = 3;

  static constexpr std::size_t kObjReg = 0;
  static constexpr std::size_t kDescRegs = 5;
  static constexpr std::size_t kDescState = 0;
  static constexpr std::size_t kDescOp = 1;
  static constexpr std::size_t kDescArg = 2;
  static constexpr std::size_t kDescPhase = 3;
  static constexpr std::size_t kDescResult = 4;

  static constexpr core::Value pack(core::Value seq, core::Value ref,
                                    core::Value flag) {
    return (seq << 33) | (ref << 1) | flag;
  }
  static constexpr core::Value seq_of(core::Value v) { return v >> 33; }
  static constexpr core::Value ref_of(core::Value v) {
    return (v >> 1) & 0xffffffffULL;
  }
  static constexpr core::Value flag_of(core::Value v) { return v & 1; }

  std::size_t announce_reg(std::size_t pid) const { return 1 + pid; }
  std::size_t desc_arena_base() const { return 1 + n_; }
  std::size_t block_regs() const { return 2 + payload_len_; }
  std::size_t block_arena_base() const {
    return desc_arena_base() + n_ * config_.max_descs_per_process * kDescRegs;
  }
  std::size_t payload_reg(std::size_t block, std::size_t i) const {
    return block + 2 + i;
  }
  /// pid owning a descriptor register (layout inverse).
  std::size_t desc_owner(std::size_t dref) const {
    return (dref - desc_arena_base()) /
           (config_.max_descs_per_process * kDescRegs);
  }

  void begin_op();
  bool complete_op(core::Value result);
  void emit_invoke();
  void enter_payload_read();
  void build_candidate();
  void enter_attempt();  // kReadObj follow-up dispatch after a snapshot
  void reclaim_superseded();
  std::size_t alloc_desc();
  std::size_t take_free_block();

  std::size_t pid_;
  std::size_t n_;
  SimWfConfig config_;
  std::size_t payload_len_;
  core::OpTraceSink* trace_ = nullptr;

  Phase phase_ = Phase::kReadObj;
  bool invoked_ = false;

  // Current operation.
  core::Value pending_op_ = kOpFetchInc;
  core::Value pending_arg_ = 0;
  std::uint64_t op_counter_ = 0;
  std::uint32_t failures_ = 0;

  // Helping state.
  std::size_t scan_cursor_ = 0;
  std::size_t scan_slot_pid_ = 0;
  std::size_t scan_dref_ = 0;
  std::uint32_t ops_since_scan_ = 0;
  std::size_t target_ref_ = 0;  ///< descriptor being driven (own or foreign)
  bool target_is_own_ = false;
  std::size_t cached_target_ = 0;  ///< target whose op/arg are cached
  core::Value target_op_ = 0;
  core::Value target_arg_ = 0;

  // Snapshot of OBJ for the current attempt.
  core::Value obj_seq_ = 0;
  core::Value obj_ref_ = 0;
  core::Value obj_flag_ = 0;

  // Finish (commit) scratch.
  std::size_t fdref_ = 0;
  core::Value fresult_ = 0;

  // Candidate build scratch.
  std::size_t read_cursor_ = 0;
  core::Value counter_value_ = 0;
  core::Value stack_size_ = 0;
  std::vector<core::Value> stack_vals_;
  std::size_t install_desc_ = 0;  ///< desc the candidate applies (0 = fast)
  std::size_t candidate_ref_ = 0;
  core::Value cand_result_ = 0;
  std::vector<std::pair<std::size_t, core::Value>> write_plan_;
  std::size_t write_cursor_ = 0;

  // Slow-path / ownership state.
  std::size_t own_desc_ref_ = 0;
  std::size_t next_desc_ = 0;
  core::Value own_result_ = 0;
  std::size_t own_committer_ = 0;

  // Block bookkeeping.
  struct Installed {
    core::Value seq;
    std::size_t ref;
  };
  std::vector<std::size_t> free_blocks_;
  std::vector<Installed> installed_;  ///< FIFO by seq

  // Telemetry.
  HelpStats stats_;
  std::uint64_t steps_this_op_ = 0;
  std::uint64_t max_own_steps_ = 0;
  std::uint64_t pushes_ = 0;
  std::uint64_t pops_ = 0;
  std::uint64_t empty_pops_ = 0;
  std::vector<core::Value> popped_;
};

}  // namespace pwf::waitfree
