// Shared telemetry and descriptor vocabulary for the wait-free universal
// construction (DESIGN.md §"Wait-free universal construction").
//
// Both worlds — the native WaitFreeObject on real atomics and the
// WaitFreeSim step machine on simulated registers — use the same
// descriptor state machine (prepare → commit → cleanup) and export the
// same per-thread HelpStats counters, so the waitfree_overhead
// experiment reports one telemetry shape for both.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>

namespace pwf::waitfree {

/// Lifecycle of an operation descriptor.
///
///   kFree     — arena slot never announced (sim) / not yet published
///   kPrepared — owner filled (op, arg, phase) and published the
///               descriptor in the announcement array; any thread may
///               now apply it
///   kCommitted— the operation took effect exactly once; the stage word
///               also names the committer (owner or helper)
///   kCleaned  — the owner consumed the result and withdrew the
///               announcement; terminal
enum class DescStage : std::uint8_t {
  kFree = 0,
  kPrepared = 1,
  kCommitted = 2,
  kCleaned = 3,
};

/// Descriptor stage word: low 8 bits the DescStage code, upper bits the
/// committer's thread id + 1 (0 = no committer recorded). Packing the
/// committer into the same word as the stage lets one CAS both commit
/// the descriptor and attribute the commit, so exactly one committer is
/// ever recorded.
inline constexpr std::uint64_t stage_word(DescStage stage,
                                          std::uint64_t committer_plus_1 = 0) {
  return (committer_plus_1 << 8) | static_cast<std::uint64_t>(stage);
}

inline constexpr DescStage stage_of(std::uint64_t word) {
  return static_cast<DescStage>(word & 0xff);
}

/// Committer thread id + 1; 0 when the descriptor has no committer yet.
inline constexpr std::uint64_t committer_plus_1_of(std::uint64_t word) {
  return word >> 8;
}

/// Per-thread helping telemetry. One instance per thread/process; merge
/// across threads for a structure-wide view. The counters are the shape
/// `waitfree_overhead` exports through the bench JSON schema.
struct HelpStats {
  std::uint64_t ops = 0;           ///< completed operations
  std::uint64_t fast_ops = 0;      ///< completed on the fast path
  std::uint64_t fast_retries = 0;  ///< fast-path CAS losses (retried)
  std::uint64_t slow_entries = 0;  ///< ops that fell through to the slow path
  std::uint64_t helped_by_other = 0;  ///< own slow ops committed by a helper
  std::uint64_t helps_given = 0;   ///< foreign descriptors this thread committed
  std::uint64_t help_scans = 0;    ///< announcement-array scan probes

  HelpStats& operator+=(const HelpStats& o) noexcept {
    ops += o.ops;
    fast_ops += o.fast_ops;
    fast_retries += o.fast_retries;
    slow_entries += o.slow_entries;
    helped_by_other += o.helped_by_other;
    helps_given += o.helps_given;
    help_scans += o.help_scans;
    return *this;
  }

  /// Slow-path entries per million completed operations — the
  /// experiment's headline helping-rate metric.
  double slow_per_mop() const noexcept {
    return ops == 0 ? 0.0 : 1e6 * static_cast<double>(slow_entries) /
                                static_cast<double>(ops);
  }

  /// Flat metric map matching the bench JSON schema: one
  /// `<prefix>_<counter>` entry per field plus the derived rate.
  std::map<std::string, double> metrics(const std::string& prefix) const {
    return {
        {prefix + "_ops", static_cast<double>(ops)},
        {prefix + "_fast_ops", static_cast<double>(fast_ops)},
        {prefix + "_fast_retries", static_cast<double>(fast_retries)},
        {prefix + "_slow_entries", static_cast<double>(slow_entries)},
        {prefix + "_helped_by_other", static_cast<double>(helped_by_other)},
        {prefix + "_helps_given", static_cast<double>(helps_given)},
        {prefix + "_help_scans", static_cast<double>(help_scans)},
        {prefix + "_slow_per_mop", slow_per_mop()},
    };
  }
};

}  // namespace pwf::waitfree
