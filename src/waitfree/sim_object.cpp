#include "waitfree/sim_object.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "core/op_trace.hpp"
#include "waitfree/object.hpp"  // kEmptyResult

namespace pwf::waitfree {

using core::OpCode;
using core::SharedMemory;
using core::Value;

WaitFreeSim::WaitFreeSim(std::size_t pid, std::size_t n, SimWfConfig config)
    : pid_(pid),
      n_(n),
      config_(config),
      payload_len_(config.kind == SimWfKind::kCounter
                       ? 1
                       : 1 + config.stack_capacity) {
  if (config_.max_failures == 0) {
    throw std::invalid_argument("WaitFreeSim: max_failures must be >= 1");
  }
  if (config_.max_blocks_per_process < 4) {
    throw std::invalid_argument(
        "WaitFreeSim: max_blocks_per_process must be >= 4 (candidate + "
        "current + lazily-reclaimed installs)");
  }
  stack_vals_.resize(config_.stack_capacity, 0);
  free_blocks_.reserve(config_.max_blocks_per_process);
  for (std::size_t j = 0; j < config_.max_blocks_per_process; ++j) {
    free_blocks_.push_back(block_arena_base() +
                           block_regs() *
                               (1 + pid_ * config_.max_blocks_per_process + j));
  }
  // op_counter_ is bumped by begin_op(); start so the first stack op is a
  // push (matching SimStack's alternation).
  begin_op();
}

std::size_t WaitFreeSim::registers_required(std::size_t n,
                                            const SimWfConfig& config) {
  const std::size_t payload_len =
      config.kind == SimWfKind::kCounter ? 1 : 1 + config.stack_capacity;
  const std::size_t block_regs = 2 + payload_len;
  const std::size_t desc_regs = n * config.max_descs_per_process * kDescRegs;
  const std::size_t blocks = 1 + n * config.max_blocks_per_process;
  return 1 + n + desc_regs + block_regs * blocks;
}

std::vector<std::pair<std::size_t, Value>> WaitFreeSim::initial_values(
    std::size_t n, const SimWfConfig& config) {
  const std::size_t payload_len =
      config.kind == SimWfKind::kCounter ? 1 : 1 + config.stack_capacity;
  const std::size_t desc_arena = 1 + n;
  const std::size_t block0 =
      desc_arena + n * config.max_descs_per_process * kDescRegs;
  (void)payload_len;
  // The initial block's registers are all zero (counter value 0 / empty
  // stack), so only OBJ needs a poke: seq 0, block0, no descriptor.
  return {{kObjReg, pack(0, block0, 0)}};
}

core::StepMachineFactory WaitFreeSim::factory(SimWfConfig config) {
  return [config](std::size_t pid, std::size_t n) {
    return std::make_unique<WaitFreeSim>(pid, n, config);
  };
}

std::string WaitFreeSim::name() const {
  std::string base =
      config_.kind == SimWfKind::kCounter ? "wf-counter" : "wf-stack";
  if (!config_.helping) base += "-nohelp";
  return base;
}

DescStage WaitFreeSim::own_desc_stage(const SharedMemory& mem) const {
  if (own_desc_ref_ == 0) return DescStage::kFree;
  return stage_of(mem.peek(own_desc_ref_ + kDescState));
}

void WaitFreeSim::begin_op() {
  ++op_counter_;
  if (config_.kind == SimWfKind::kCounter) {
    pending_op_ = kOpFetchInc;
    pending_arg_ = 0;
  } else if (op_counter_ % 2 == 1) {
    pending_op_ = kOpPush;
    pending_arg_ = (static_cast<Value>(pid_ + 1) << 32) | op_counter_;
  } else {
    pending_op_ = kOpPop;
    pending_arg_ = 0;
  }
  failures_ = 0;
  target_ref_ = 0;
  target_is_own_ = false;
  own_desc_ref_ = 0;
  install_desc_ = 0;
  invoked_ = false;
  steps_this_op_ = 0;
  if (config_.helping && ++ops_since_scan_ >= config_.help_delay) {
    ops_since_scan_ = 0;
    phase_ = Phase::kScanRead;
  } else {
    phase_ = Phase::kReadObj;
  }
}

void WaitFreeSim::emit_invoke() {
  if (invoked_) return;
  invoked_ = true;
  if (!trace_) return;
  switch (pending_op_) {
    case kOpFetchInc:
      trace_->on_invoke(pid_, OpCode::kFetchInc, false, 0);
      break;
    case kOpPush:
      trace_->on_invoke(pid_, OpCode::kPush, true, pending_arg_);
      break;
    default:
      trace_->on_invoke(pid_, OpCode::kPop, false, 0);
      break;
  }
}

bool WaitFreeSim::complete_op(Value result) {
  ++stats_.ops;
  max_own_steps_ = std::max(max_own_steps_, steps_this_op_);
  if (trace_) {
    switch (pending_op_) {
      case kOpFetchInc:
        trace_->on_response(pid_, OpCode::kFetchInc, true, result);
        break;
      case kOpPush:
        trace_->on_response(pid_, OpCode::kPush, false, 0);
        break;
      default:
        trace_->on_response(pid_, OpCode::kPop, result != kEmptyResult,
                            result != kEmptyResult ? result : 0);
        break;
    }
  }
  if (config_.kind == SimWfKind::kStack) {
    if (pending_op_ == kOpPush) {
      ++pushes_;
    } else {
      ++pops_;
      if (result == kEmptyResult) {
        ++empty_pops_;
      } else {
        popped_.push_back(result);
      }
    }
  }
  begin_op();
  return true;
}

void WaitFreeSim::enter_payload_read() {
  read_cursor_ = 0;
  phase_ = Phase::kReadPayload;
}

void WaitFreeSim::enter_attempt() {
  if (obj_flag_ != 0) {
    phase_ = Phase::kReadBlockDesc;
  } else if (target_ref_ != 0) {
    phase_ = Phase::kCheckTarget;
  } else {
    enter_payload_read();
  }
}

void WaitFreeSim::reclaim_superseded() {
  std::size_t i = 0;
  while (i < installed_.size() && installed_[i].seq < obj_seq_) {
    free_blocks_.push_back(installed_[i].ref);
    ++i;
  }
  if (i != 0) {
    installed_.erase(installed_.begin(),
                     installed_.begin() + static_cast<std::ptrdiff_t>(i));
  }
}

std::size_t WaitFreeSim::alloc_desc() {
  if (next_desc_ >= config_.max_descs_per_process) {
    throw std::runtime_error(
        "WaitFreeSim: descriptor arena exhausted; raise "
        "SimWfConfig::max_descs_per_process");
  }
  const std::size_t base =
      desc_arena_base() +
      (pid_ * config_.max_descs_per_process + next_desc_) * kDescRegs;
  ++next_desc_;
  return base;
}

std::size_t WaitFreeSim::take_free_block() {
  if (free_blocks_.empty()) {
    throw std::runtime_error(
        "WaitFreeSim: block arena exhausted; raise "
        "SimWfConfig::max_blocks_per_process");
  }
  const std::size_t ref = free_blocks_.back();
  free_blocks_.pop_back();
  return ref;
}

void WaitFreeSim::build_candidate() {
  install_desc_ = target_ref_;  // 0 = fast-path own operation
  const Value op = install_desc_ != 0
                       ? (target_is_own_ ? pending_op_ : target_op_)
                       : pending_op_;
  const Value arg = install_desc_ != 0
                        ? (target_is_own_ ? pending_arg_ : target_arg_)
                        : pending_arg_;
  candidate_ref_ = take_free_block();
  write_plan_.clear();
  if (install_desc_ != 0) {
    write_plan_.emplace_back(candidate_ref_ + 0,
                             static_cast<Value>(install_desc_));
  }
  if (config_.kind == SimWfKind::kCounter) {
    cand_result_ = counter_value_;
    if (install_desc_ != 0) {
      write_plan_.emplace_back(candidate_ref_ + 1, cand_result_);
    }
    write_plan_.emplace_back(payload_reg(candidate_ref_, 0),
                             counter_value_ + 1);
  } else {
    Value new_size = 0;
    if (op == kOpPush) {
      if (stack_size_ >= config_.stack_capacity) {
        throw std::runtime_error(
            "WaitFreeSim: stack capacity exceeded; raise "
            "SimWfConfig::stack_capacity");
      }
      cand_result_ = 0;
      new_size = stack_size_ + 1;
    } else if (stack_size_ == 0) {
      cand_result_ = kEmptyResult;
      new_size = 0;
    } else {
      cand_result_ = stack_vals_[stack_size_ - 1];
      new_size = stack_size_ - 1;
    }
    if (install_desc_ != 0) {
      write_plan_.emplace_back(candidate_ref_ + 1, cand_result_);
    }
    write_plan_.emplace_back(payload_reg(candidate_ref_, 0), new_size);
    const Value keep = std::min<Value>(new_size, stack_size_);
    for (Value i = 0; i < keep; ++i) {
      write_plan_.emplace_back(
          payload_reg(candidate_ref_, 1 + static_cast<std::size_t>(i)),
          stack_vals_[static_cast<std::size_t>(i)]);
    }
    if (op == kOpPush) {
      write_plan_.emplace_back(
          payload_reg(candidate_ref_, static_cast<std::size_t>(new_size)),
          arg);
    }
  }
  write_cursor_ = 0;
  phase_ = Phase::kWriteCand;
}

bool WaitFreeSim::step(SharedMemory& mem) {
  emit_invoke();
  ++steps_this_op_;
  switch (phase_) {
    case Phase::kScanRead: {
      ++stats_.help_scans;
      scan_slot_pid_ = scan_cursor_;
      const Value dref = mem.read(announce_reg(scan_cursor_));
      scan_cursor_ = (scan_cursor_ + 1) % n_;
      if (dref != 0 && scan_slot_pid_ != pid_) {
        scan_dref_ = static_cast<std::size_t>(dref);
        phase_ = Phase::kScanDescState;
      } else {
        phase_ = Phase::kReadObj;
      }
      return false;
    }
    case Phase::kScanDescState: {
      const Value sw = mem.read(scan_dref_ + kDescState);
      if (stage_of(sw) == DescStage::kPrepared) {
        target_ref_ = scan_dref_;
        target_is_own_ = false;
      }
      phase_ = Phase::kReadObj;
      return false;
    }
    case Phase::kReadObj:
    case Phase::kRevalidateObj: {
      const Value v = mem.read(kObjReg);
      if (phase_ == Phase::kRevalidateObj &&
          v == pack(obj_seq_, obj_ref_, obj_flag_)) {
        // Snapshot still current: the (desc_ref, result) pair read from
        // the current block is stable, so committing through it is safe.
        phase_ = Phase::kCommitWriteResult;
        return false;
      }
      obj_seq_ = seq_of(v);
      obj_ref_ = ref_of(v);
      obj_flag_ = flag_of(v);
      reclaim_superseded();
      enter_attempt();
      return false;
    }
    case Phase::kReadBlockDesc: {
      fdref_ = static_cast<std::size_t>(
          mem.read(static_cast<std::size_t>(obj_ref_) + 0));
      phase_ = Phase::kReadBlockResult;
      return false;
    }
    case Phase::kReadBlockResult: {
      fresult_ = mem.read(static_cast<std::size_t>(obj_ref_) + 1);
      phase_ = Phase::kRevalidateObj;
      return false;
    }
    case Phase::kCommitWriteResult:
    case Phase::kPostInstallWriteResult: {
      mem.write(fdref_ + kDescResult, fresult_);
      phase_ = phase_ == Phase::kCommitWriteResult
                   ? Phase::kCommitCasState
                   : Phase::kPostInstallCasState;
      return false;
    }
    case Phase::kCommitCasState:
    case Phase::kPostInstallCasState: {
      const bool post_install = phase_ == Phase::kPostInstallCasState;
      const bool ok =
          mem.cas(fdref_ + kDescState, stage_word(DescStage::kPrepared),
                  stage_word(DescStage::kCommitted, pid_ + 1));
      if (ok && desc_owner(fdref_) != pid_) ++stats_.helps_given;
      if (own_desc_ref_ != 0 && fdref_ == own_desc_ref_) {
        // My own announced operation just committed (by me or earlier by
        // a helper): collect and clean up.
        target_ref_ = 0;
        target_is_own_ = false;
        if (ok) {
          own_result_ = fresult_;
          own_committer_ = pid_;
          phase_ = Phase::kCleanupAnnounce;
        } else {
          phase_ = Phase::kOwnerReadState;
        }
        return false;
      }
      if (target_ref_ != 0 && fdref_ == target_ref_) {
        // The helped descriptor is resolved (committed by someone).
        target_ref_ = 0;
        target_is_own_ = false;
      }
      if (post_install) {
        phase_ = Phase::kReadObj;  // begin own operation's attempts afresh
      } else if (target_ref_ != 0) {
        phase_ = Phase::kCheckTarget;
      } else {
        enter_payload_read();
      }
      return false;
    }
    case Phase::kCheckTarget: {
      const Value sw = mem.read(target_ref_ + kDescState);
      if (stage_of(sw) != DescStage::kPrepared) {
        if (target_is_own_) {
          own_committer_ =
              static_cast<std::size_t>(committer_plus_1_of(sw)) - 1;
          target_ref_ = 0;
          target_is_own_ = false;
          phase_ = Phase::kOwnerReadResult;
        } else {
          target_ref_ = 0;
          phase_ = Phase::kReadObj;
        }
        return false;
      }
      if (target_is_own_ || cached_target_ == target_ref_) {
        enter_payload_read();
      } else {
        phase_ = Phase::kReadTargetOp;
      }
      return false;
    }
    case Phase::kReadTargetOp: {
      target_op_ = mem.read(target_ref_ + kDescOp);
      phase_ = Phase::kReadTargetArg;
      return false;
    }
    case Phase::kReadTargetArg: {
      target_arg_ = mem.read(target_ref_ + kDescArg);
      cached_target_ = target_ref_;
      enter_payload_read();
      return false;
    }
    case Phase::kReadPayload: {
      const Value v = mem.read(
          payload_reg(static_cast<std::size_t>(obj_ref_), read_cursor_));
      if (config_.kind == SimWfKind::kCounter) {
        counter_value_ = v;
        build_candidate();
        return false;
      }
      if (read_cursor_ == 0) {
        // Clamp: a reader racing a block rewrite may see garbage; the
        // bound keeps register indices legal and the install CAS (seq
        // compare) rejects anything built from a torn snapshot.
        stack_size_ = std::min<Value>(v, config_.stack_capacity);
      } else {
        stack_vals_[read_cursor_ - 1] = v;
      }
      ++read_cursor_;
      if (read_cursor_ > stack_size_) build_candidate();
      return false;
    }
    case Phase::kWriteCand: {
      const auto& [reg, val] = write_plan_[write_cursor_];
      mem.write(reg, val);
      ++write_cursor_;
      if (write_cursor_ == write_plan_.size()) phase_ = Phase::kCasObj;
      return false;
    }
    case Phase::kCasObj: {
      const Value oldv = pack(obj_seq_, obj_ref_, obj_flag_);
      const Value newv = pack(obj_seq_ + 1, candidate_ref_,
                              install_desc_ != 0 ? 1 : 0);
      if (mem.cas(kObjReg, oldv, newv)) {
        installed_.push_back({obj_seq_ + 1, candidate_ref_});
        if (install_desc_ != 0) {
          // Finish the descriptor we just installed so its owner (or the
          // next attempt) observes the commit promptly.
          fdref_ = install_desc_;
          fresult_ = cand_result_;
          phase_ = Phase::kPostInstallWriteResult;
          return false;
        }
        ++stats_.fast_ops;
        return complete_op(cand_result_);
      }
      free_blocks_.push_back(candidate_ref_);
      if (install_desc_ == 0) {
        ++failures_;
        ++stats_.fast_retries;
        if (failures_ >= config_.max_failures && own_desc_ref_ == 0) {
          own_desc_ref_ = alloc_desc();
          phase_ = Phase::kPrepWriteOp;
          return false;
        }
      }
      phase_ = Phase::kReadObj;
      return false;
    }
    case Phase::kPrepWriteOp: {
      mem.write(own_desc_ref_ + kDescOp, pending_op_);
      phase_ = Phase::kPrepWriteArg;
      return false;
    }
    case Phase::kPrepWriteArg: {
      mem.write(own_desc_ref_ + kDescArg, pending_arg_);
      phase_ = Phase::kPrepWritePhase;
      return false;
    }
    case Phase::kPrepWritePhase: {
      mem.write(own_desc_ref_ + kDescPhase, obj_seq_);
      phase_ = Phase::kPrepWriteState;
      return false;
    }
    case Phase::kPrepWriteState: {
      mem.write(own_desc_ref_ + kDescState, stage_word(DescStage::kPrepared));
      phase_ = Phase::kPrepAnnounce;
      return false;
    }
    case Phase::kPrepAnnounce: {
      mem.write(announce_reg(pid_), static_cast<Value>(own_desc_ref_));
      ++stats_.slow_entries;
      target_ref_ = own_desc_ref_;
      target_is_own_ = true;
      phase_ = Phase::kReadObj;
      return false;
    }
    case Phase::kOwnerReadState: {
      const Value sw = mem.read(own_desc_ref_ + kDescState);
      own_committer_ = static_cast<std::size_t>(committer_plus_1_of(sw)) - 1;
      phase_ = Phase::kOwnerReadResult;
      return false;
    }
    case Phase::kOwnerReadResult: {
      own_result_ = mem.read(own_desc_ref_ + kDescResult);
      phase_ = Phase::kCleanupAnnounce;
      return false;
    }
    case Phase::kCleanupAnnounce: {
      mem.write(announce_reg(pid_), 0);
      phase_ = Phase::kCleanupState;
      return false;
    }
    case Phase::kCleanupState: {
      mem.write(own_desc_ref_ + kDescState,
                stage_word(DescStage::kCleaned,
                           static_cast<Value>(own_committer_) + 1));
      if (own_committer_ != pid_) ++stats_.helped_by_other;
      return complete_op(own_result_);
    }
  }
  return false;  // unreachable
}

}  // namespace pwf::waitfree
