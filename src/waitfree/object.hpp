// Wait-free universal construction on native atomics: the fast-path /
// slow-path helping transformation (Kogan–Petrank style) over a
// Herlihy-style universal object.
//
// The wrapped object is a `State` value behind one atomic pointer. The
// fast path is exactly the lock-free universal construction the repo's
// ScuObject uses: copy the current state, apply the operation, CAS the
// pointer, retire the old node through the pwf::mem policy given as
// `Mem` (epoch, hazard-era, or wait-free pool). Lock-free, not wait-free —
// a thread can lose the CAS forever.
//
// The slow path makes it wait-free. After `max_failures` fast-path CAS
// losses the thread *announces* an operation descriptor (prepare), and
// from then on every thread that touches the object may complete it on
// the loser's behalf: each attempt — fast or slow — first *finishes*
// the descriptor carried by the current node (storing its result and
// CAS-ing its stage word to committed) before installing anything new.
// That finish-before-install invariant is the heart of the
// construction:
//
//   * exactly-once: a descriptor is installed by at most one successful
//     pointer CAS (any later attempt re-reads the pointer, sees the
//     stage word != prepared, and never rebuilds it — see the ordering
//     argument in DESIGN.md), and its effect is the single installed
//     node;
//   * bounded completion: once announced, the descriptor is visible to
//     the periodic announcement-array scan every thread runs every
//     `help_delay` operations, so the owner completes in a bounded
//     number of its own steps provided other threads keep taking steps
//     — and if they don't, the owner's own install succeeds.
//
// Descriptor lifecycle (prepare → commit → cleanup, help_stats.hpp):
// the stage word packs the committer's id next to the stage code so one
// CAS both commits and attributes; helped-by-other completions are the
// `HelpStats::helped_by_other` telemetry the waitfree_overhead
// experiment reports.
//
// Reclamation: a descriptor is reachable through two edges — the
// installed node's desc pointer and the owner's announcement slot. Each
// edge is severed exactly once (the node edge by the finisher that wins
// the desc-clearing CAS, the announcement edge by the owner at
// cleanup); whoever severs the *second* edge retires the descriptor
// through its own reclamation handle, so no helper can dereference a
// freed descriptor (the guard taken at operation entry spans every
// dereference; under the era policies every descriptor pointer is
// additionally read through a protected load).
//
// `Stamp` (lockfree/lin_stamp.hpp) brackets the linearizing pointer-CAS
// of the *calling* thread's own operations only: fast-path installs and
// own-descriptor installs. An operation completed by a helper linearizes
// on the helper's CAS, which the owner cannot bracket — its stamp record
// stays incomplete and the capture layer soundly falls back to the call
// boundary for that operation.
//
// `Helping = false` compiles the "nohelp" mutant: identical except the
// announcement array is never scanned, so an announced descriptor whose
// owner stalls is completed by nobody — the wait-free bound the tests
// and the PWF_HW_MUTANTS job catch it violating.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <utility>

#include "lockfree/backoff.hpp"
#include "lockfree/lin_stamp.hpp"
#include "mem/epoch.hpp"
#include "waitfree/help_stats.hpp"

namespace pwf::waitfree {

/// Sentinel return for operations with nothing to report (e.g. pop on an
/// empty stack). Chosen so no payload value can collide with it.
inline constexpr std::uint64_t kEmptyResult = ~std::uint64_t{0};

/// Tuning knobs for the fast-path/slow-path transformation.
struct WfConfig {
  /// Fast-path CAS losses before the operation is announced. The paper's
  /// thesis predicts long loss streaks are exponentially rare under
  /// stochastic scheduling, so a small threshold keeps the slow path off
  /// the common path while still bounding the worst case.
  std::uint32_t max_failures = 16;
  /// Operations between announcement-array scans; smaller helps sooner
  /// at more overhead per op.
  std::uint32_t help_delay = 4;
  /// Cap for the fast path's exponential backoff (lockfree/backoff.hpp).
  std::uint32_t backoff_max_spins = lockfree::Backoff::kDefaultMaxSpins;
};

/// `Mem` is the reclamation policy (mem/reclaimer.hpp); the default
/// mem::Epoch preserves the historical EbrDomain-based signatures. Nodes
/// and descriptors share one domain, so a WaitFreePool domain must be
/// sized for kNodeBytes (the larger of the two block types).
template <typename State, typename Stamp = lockfree::NoStamp,
          bool Helping = true, typename Mem = mem::Epoch>
class WaitFreeObject {
 public:
  static_assert(mem::Reclaimer<Mem>);

  /// A sequential operation on the state: mutates in place, returns the
  /// operation's response value.
  using OpFn = std::uint64_t (*)(State&, std::uint64_t arg);

  static constexpr std::size_t kMaxThreads = 64;

  struct OpDesc {
    OpFn fn = nullptr;
    std::uint64_t arg = 0;
    std::uint32_t owner = 0;
    std::uint64_t phase = 0;  ///< announcement order, for help priority
    std::atomic<std::uint64_t> result{0};
    std::atomic<std::uint64_t> stage{stage_word(DescStage::kPrepared)};
    std::atomic<std::uint32_t> unlinked{0};  ///< severed-edge bits
  };

  /// Per-thread participation handle (mirrors the reclamation thread
  /// handles: explicit, one per thread, no hidden thread_local state).
  class Thread {
   public:
    Thread(WaitFreeObject& obj, typename Mem::ThreadHandle& mem)
        : obj_(obj), mem_(mem), tid_(obj.register_thread()) {}

    Thread(const Thread&) = delete;
    Thread& operator=(const Thread&) = delete;

    std::uint32_t tid() const noexcept { return tid_; }
    const HelpStats& stats() const noexcept { return stats_; }

   private:
    friend class WaitFreeObject;
    WaitFreeObject& obj_;
    typename Mem::ThreadHandle& mem_;
    std::uint32_t tid_;
    HelpStats stats_;
    std::uint32_t ops_since_scan_ = 0;
  };

  WaitFreeObject(typename Mem::Domain& domain, State initial,
                 WfConfig config = {})
      : config_(config), domain_(&domain) {
    if (config_.max_failures == 0) {
      throw std::invalid_argument("WaitFreeObject: max_failures must be >= 1");
    }
    state_.store(Mem::template create<Node>(domain, std::move(initial)),
                 std::memory_order_release);
  }

  ~WaitFreeObject() {
    Mem::dealloc(*domain_, state_.load(std::memory_order_relaxed));
  }

  WaitFreeObject(const WaitFreeObject&) = delete;
  WaitFreeObject& operator=(const WaitFreeObject&) = delete;

  /// Applies `fn` exactly once and returns its response. Wait-free when
  /// Helping is on: completes in a bounded number of the caller's own
  /// steps regardless of scheduling.
  std::uint64_t apply(Thread& t, OpFn fn, std::uint64_t arg) {
    const auto guard = t.mem_.pin();
    if constexpr (Helping) {
      if (++t.ops_since_scan_ >= config_.help_delay) {
        t.ops_since_scan_ = 0;
        scan_and_help(t);
      }
    }
    lockfree::Backoff backoff(config_.backoff_max_spins);
    for (std::uint32_t failures = 0; failures < config_.max_failures;) {
      // Protected load: cur is dereferenced (value copy, finish). The
      // returned cand->result read after a winning CAS is safe under the
      // era policies because create() covers the allocation era — a
      // competitor retiring cand cannot get it reclaimed while our
      // reservation is alive.
      Node* cur = Mem::load(t.mem_, state_);
      finish(cur, t);
      Node* cand = Mem::template create<Node>(t.mem_, cur->value);
      cand->result = fn(cand->value, arg);
      Stamp::pre();
      if (state_.compare_exchange_strong(cur, cand, std::memory_order_acq_rel,
                                         std::memory_order_acquire)) {
        Stamp::commit();  // this CAS linearized the operation
        Mem::retire(t.mem_, cur);
        ++t.stats_.ops;
        ++t.stats_.fast_ops;
        return cand->result;
      }
      Mem::destroy(t.mem_, cand);  // never published
      ++failures;
      ++t.stats_.fast_retries;
      backoff.pause();
    }
    const std::uint64_t result = apply_slow(t, fn, arg);
    ++t.stats_.ops;
    return result;
  }

  /// Reads the current state under the caller's pin. `fn` must not
  /// mutate observable behaviour; linearizes at the pointer load.
  template <typename Fn>
  auto read(Thread& t, Fn&& fn) const {
    const auto guard = t.mem_.pin();
    Stamp::pre();
    Node* cur = Mem::load(t.mem_, state_);
    Stamp::commit();
    return fn(static_cast<const State&>(cur->value));
  }

  // -- stall injection (tests and the waitfree_overhead experiment) ---------

  /// Publishes a descriptor as if the owner stalled right after
  /// announcing: prepared, visible to helpers, driven by nobody. The
  /// caller must later call finish_announced (same thread) to collect
  /// the result and release the announcement — at most one outstanding
  /// announced descriptor per thread.
  OpDesc* announce_only(Thread& t, OpFn fn, std::uint64_t arg) {
    OpDesc* d = make_desc(t, fn, arg);
    announce_[t.tid_].store(d, std::memory_order_release);
    return d;
  }

  /// Stage of a descriptor returned by announce_only (valid until
  /// finish_announced returns).
  DescStage announced_stage(const OpDesc* d) const noexcept {
    return stage_of(d->stage.load(std::memory_order_acquire));
  }

  /// Resumes the stalled owner: drives the descriptor to completion (a
  /// no-op when a helper already committed it), cleans up, returns the
  /// operation's response.
  std::uint64_t finish_announced(Thread& t, OpDesc* d) {
    const auto guard = t.mem_.pin();
    return complete_own(t, d);
  }

  std::size_t num_threads() const noexcept {
    return num_threads_.load(std::memory_order_acquire);
  }
  const WfConfig& config() const noexcept { return config_; }

 private:
  struct Node {
    State value;
    std::atomic<OpDesc*> desc{nullptr};  ///< pending descriptor, else null
    std::uint64_t result = 0;  ///< response of the op that built this node
  };

 public:
  /// Block footprint for pool sizing: nodes and descriptors are
  /// allocated from the same domain, so a mem::WaitFreePoolDomain must
  /// use blocks that fit the larger of the two.
  static constexpr std::size_t kNodeBytes =
      sizeof(Node) > sizeof(OpDesc) ? sizeof(Node) : sizeof(OpDesc);

 private:
  static constexpr std::uint32_t kNodeEdge = 1;
  static constexpr std::uint32_t kAnnounceEdge = 2;

  std::uint32_t register_thread() {
    const std::size_t tid =
        num_threads_.fetch_add(1, std::memory_order_acq_rel);
    if (tid >= kMaxThreads) {
      throw std::length_error("WaitFreeObject: too many threads");
    }
    return static_cast<std::uint32_t>(tid);
  }

  OpDesc* make_desc(Thread& t, OpFn fn, std::uint64_t arg) {
    OpDesc* d = Mem::template create<OpDesc>(t.mem_);
    d->fn = fn;
    d->arg = arg;
    d->owner = t.tid_;
    d->phase = phase_.fetch_add(1, std::memory_order_acq_rel);
    return d;
  }

  std::uint64_t apply_slow(Thread& t, OpFn fn, std::uint64_t arg) {
    ++t.stats_.slow_entries;
    OpDesc* d = make_desc(t, fn, arg);
    announce_[t.tid_].store(d, std::memory_order_release);
    return complete_own(t, d);
  }

  /// Drives the caller's own announced descriptor to completion, then
  /// performs cleanup: withdraw the announcement, mark the stage
  /// cleaned, sever the announcement edge. Returns the response.
  std::uint64_t complete_own(Thread& t, OpDesc* d) {
    while (stage_of(d->stage.load(std::memory_order_acquire)) ==
           DescStage::kPrepared) {
      help_apply(d, t);
    }
    const std::uint64_t sw = d->stage.load(std::memory_order_acquire);
    const std::uint64_t result = d->result.load(std::memory_order_relaxed);
    if (committer_plus_1_of(sw) != t.tid_ + 1) ++t.stats_.helped_by_other;
    announce_[t.tid_].store(nullptr, std::memory_order_release);
    d->stage.store(stage_word(DescStage::kCleaned, committer_plus_1_of(sw)),
                   std::memory_order_release);
    release_edge(d, t, kAnnounceEdge);
    return result;
  }

  /// One attempt to apply descriptor `d`: finish whatever the current
  /// node carries, re-check `d`, then try to install a node carrying
  /// `d`. Caller must hold an EBR pin.
  void help_apply(OpDesc* d, Thread& t) {
    Node* cur = Mem::load(t.mem_, state_);
    finish(cur, t);
    // After finish(cur): if d was ever installed, it is committed by now
    // (either it rides `cur`, which finish just committed, or it rode an
    // earlier node and the finish-before-install invariant committed it
    // before `cur` existed), so this check makes re-installation
    // impossible.
    if (stage_of(d->stage.load(std::memory_order_acquire)) !=
        DescStage::kPrepared) {
      return;
    }
    Node* cand = Mem::template create<Node>(t.mem_, cur->value);
    cand->result = d->fn(cand->value, d->arg);
    cand->desc.store(d, std::memory_order_relaxed);
    const bool own = d->owner == t.tid_;
    if (own) Stamp::pre();
    Node* expected = cur;
    if (state_.compare_exchange_strong(expected, cand,
                                       std::memory_order_acq_rel,
                                       std::memory_order_acquire)) {
      if (own) Stamp::commit();  // installing own descriptor linearizes it
      finish(cand, t);           // commit the descriptor we just installed
      Mem::retire(t.mem_, cur);
    } else {
      Mem::destroy(t.mem_, cand);  // never published
    }
  }

  /// Finishes the descriptor carried by `n`, if any: publish the result,
  /// commit the stage word (one CAS, attributing the committer), then
  /// sever the node edge. Idempotent; called by every attempt before it
  /// installs anything (the finish-before-install invariant).
  void finish(Node* n, Thread& t) {
    // Protected load: while n->desc still holds d, the node edge is
    // unsevered, so d is not yet retired — the era interval argument
    // then keeps d reclaim-blocked for the rest of our guard.
    OpDesc* d = Mem::load(t.mem_, n->desc);
    if (d == nullptr) return;
    // The result is determined by the uniquely-installed node, so
    // concurrent finishers store the same value.
    d->result.store(n->result, std::memory_order_relaxed);
    std::uint64_t expected = stage_word(DescStage::kPrepared);
    if (d->stage.compare_exchange_strong(
            expected, stage_word(DescStage::kCommitted, t.tid_ + 1),
            std::memory_order_acq_rel, std::memory_order_acquire)) {
      if (d->owner != t.tid_) ++t.stats_.helps_given;
    }
    OpDesc* expected_d = d;
    if (n->desc.compare_exchange_strong(expected_d, nullptr,
                                        std::memory_order_acq_rel,
                                        std::memory_order_acquire)) {
      release_edge(d, t, kNodeEdge);
    }
  }

  /// Scans the announcement array and drives the lowest-phase foreign
  /// prepared descriptor to completion. Caller must hold an EBR pin.
  void scan_and_help(Thread& t) {
    const std::size_t nt = num_threads_.load(std::memory_order_acquire);
    OpDesc* best = nullptr;
    for (std::size_t i = 0; i < nt && i < kMaxThreads; ++i) {
      ++t.stats_.help_scans;
      // Protected load: while announce_[i] still holds d, the
      // announcement edge is unsevered, so d is not yet retired.
      OpDesc* d = Mem::load(t.mem_, announce_[i]);
      if (d == nullptr || d->owner == t.tid_) continue;
      if (stage_of(d->stage.load(std::memory_order_acquire)) !=
          DescStage::kPrepared) {
        continue;
      }
      if (best == nullptr || d->phase < best->phase) best = d;
    }
    if (best == nullptr) return;
    while (stage_of(best->stage.load(std::memory_order_acquire)) ==
           DescStage::kPrepared) {
      help_apply(best, t);
    }
  }

  /// Severs one of the descriptor's two reachability edges; whoever
  /// severs the second retires the descriptor.
  void release_edge(OpDesc* d, Thread& t, std::uint32_t bit) {
    const std::uint32_t prev =
        d->unlinked.fetch_or(bit, std::memory_order_acq_rel);
    const std::uint32_t both = kNodeEdge | kAnnounceEdge;
    if (prev != both && (prev | bit) == both) Mem::retire(t.mem_, d);
  }

  WfConfig config_;
  typename Mem::Domain* domain_;
  std::atomic<Node*> state_{nullptr};
  std::atomic<std::uint64_t> phase_{0};
  std::atomic<std::size_t> num_threads_{0};
  std::atomic<OpDesc*> announce_[kMaxThreads] = {};
};

// -- ready-made wrapped structures for captures and benches -----------------

/// Wrapped counter state and its fetch-inc operation (pre-increment
/// return, matching OpCode::kFetchInc).
struct CounterState {
  std::uint64_t value = 0;
};

inline std::uint64_t counter_fetch_inc(CounterState& s, std::uint64_t) {
  return s.value++;
}

/// Wrapped bounded-stack state: push returns 0, pop returns the popped
/// value or kEmptyResult.
struct StackState {
  static constexpr std::size_t kCapacity = 128;
  std::size_t size = 0;
  std::uint64_t items[kCapacity] = {};
};

inline std::uint64_t stack_push(StackState& s, std::uint64_t v) {
  if (s.size < StackState::kCapacity) s.items[s.size++] = v;
  return 0;
}

inline std::uint64_t stack_pop(StackState& s, std::uint64_t) {
  if (s.size == 0) return kEmptyResult;
  return s.items[--s.size];
}

}  // namespace pwf::waitfree
