// Exact constructions of every Markov chain the paper analyzes, obtained by
// breadth-first enumeration of the reachable state space from the paper's
// initial state:
//
//  * scan-validate SCU(0,1) (Section 6.1): the *individual chain* over
//    extended local states {Read, CCAS, OldCAS}^n (3^n - 1 reachable
//    states) and the *system chain* over (a, b) = (#Read, #OldCAS);
//  * parallel code SCU(q,0) (Section 6.2): the individual chain over
//    counter vectors {0..q-1}^n and the system chain over occupancy
//    vectors (v_0..v_{q-1});
//  * fetch-and-increment with augmented CAS (Section 7): the individual
//    chain over non-empty subsets of processes holding the current value
//    (2^n - 1 states) and the global chain v_1..v_n.
//
// Each builder annotates states with the probability that the next system
// step completes an operation (for the system latency W) and with the
// probability that it completes an operation *of process 0* (for the
// individual latency W_0; by symmetry W_i = W_0 for all i, Lemma 6).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "markov/chain.hpp"

namespace pwf::markov {

/// A chain built from one of the paper's algorithms, with the success
/// structure needed to read off latencies from the stationary distribution.
struct BuiltChain {
  MarkovChain chain;
  /// Canonical key of each state (encoding is chain-specific; used to
  /// construct lifting maps between the individual and system versions).
  std::vector<std::uint64_t> state_keys;
  /// Human-readable names (used by the Figure 1 bench).
  std::vector<std::string> state_names;
  /// P[the next system step completes some operation | state].
  std::vector<double> success_prob;
  /// P[the next system step completes an operation of process 0 | state].
  std::vector<double> success_prob_p0;
  /// State reached when process 0 completes from this state (kNoTarget
  /// where success_prob_p0 == 0, and on system chains, whose successes are
  /// anonymous). Used by op_latency_distribution().
  std::vector<std::size_t> success_p0_target;
  std::size_t initial_state = 0;

  static constexpr std::size_t kNoTarget = static_cast<std::size_t>(-1);

  /// Index of the state with canonical key `key`; throws if absent.
  std::size_t index_of_key(std::uint64_t key) const;
};

// -- Scan-validate SCU(0,1), Section 6.1 ------------------------------------

/// Individual chain: one extended local state per process, Read/CCAS/OldCAS,
/// uniform scheduler. Reachable state count is 3^n - 1. Requires 1 <= n <= 13.
BuiltChain build_scan_validate_individual_chain(std::size_t n);

/// System chain over (a, b) = (#Read, #OldCAS). Requires 1 <= n.
BuiltChain build_scan_validate_system_chain(std::size_t n);

/// Lifting map f: individual state -> system state (Definition 2).
std::vector<std::size_t> scan_validate_lifting_map(const BuiltChain& individual,
                                                   const BuiltChain& system,
                                                   std::size_t n);

/// Generalized scan-validate individual chain for SCU(0, s) with s scan
/// steps (Corollary 1): each process's extended state is its position
/// k in {0..s} within the current attempt (k = 0: about to read R;
/// k = s: about to CAS) plus, for k >= 1, whether its view of R is still
/// valid. Any process's successful CAS invalidates every other in-flight
/// view. For s = 1 this is exactly the Read/CCAS/OldCAS chain.
/// State count is (2s+1)^n; keep n * log2(2s+1) small (n <= 5 for s <= 3).
BuiltChain build_scu_scan_individual_chain(std::size_t n, std::size_t s);

// -- Parallel code SCU(q,0), Section 6.2 ------------------------------------

/// Individual chain over counter vectors (C_1..C_n), C_i in {0..q-1}.
/// Requires q >= 1 and q^n to fit comfortably (n*log2(q) <= 24).
BuiltChain build_parallel_individual_chain(std::size_t n, std::size_t q);

/// System chain over occupancy vectors (v_0..v_{q-1}), sum v_j = n.
BuiltChain build_parallel_system_chain(std::size_t n, std::size_t q);

/// Lifting map f: counter vector -> occupancy vector (Lemma 10).
std::vector<std::size_t> parallel_lifting_map(const BuiltChain& individual,
                                              const BuiltChain& system,
                                              std::size_t n, std::size_t q);

// -- Fetch-and-increment with augmented CAS, Section 7 ----------------------

/// Individual chain over non-empty subsets S of processes holding the
/// current value (2^n - 1 states). Requires 1 <= n <= 20.
BuiltChain build_fai_individual_chain(std::size_t n);

/// Global chain v_1..v_n (v_i: i processes hold the current value).
BuiltChain build_fai_global_chain(std::size_t n);

/// Lifting map f: subset S -> v_{|S|} (Lemma 13).
std::vector<std::size_t> fai_lifting_map(const BuiltChain& individual,
                                         const BuiltChain& global);

// -- Latency extraction ------------------------------------------------------

/// W: expected system steps between two completions in the stationary
/// distribution (= 1 / sum_s pi_s * success_prob[s]).
double system_latency(const BuiltChain& built);

/// W_0: expected system steps between two completions by process 0
/// (= 1 / sum_s pi_s * success_prob_p0[s]). By Lemma 7, W_0 = n * W.
double individual_latency_p0(const BuiltChain& built);

}  // namespace pwf::markov
