#include "markov/mixing.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace pwf::markov {

double total_variation(std::span<const double> p, std::span<const double> q) {
  if (p.size() != q.size()) {
    throw std::invalid_argument("total_variation: size mismatch");
  }
  double sum = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) sum += std::abs(p[i] - q[i]);
  return 0.5 * sum;
}

std::vector<double> distance_to_stationarity(const MarkovChain& chain,
                                             std::size_t from,
                                             std::size_t max_t, bool lazy) {
  if (from >= chain.num_states()) {
    throw std::out_of_range("distance_to_stationarity: bad start state");
  }
  const std::vector<double> pi = chain.stationary();
  std::vector<double> cur(chain.num_states(), 0.0);
  std::vector<double> next(chain.num_states(), 0.0);
  cur[from] = 1.0;
  std::vector<double> out;
  out.reserve(max_t + 1);
  out.push_back(total_variation(cur, pi));
  for (std::size_t t = 1; t <= max_t; ++t) {
    chain.step_distribution(cur, next);
    if (lazy) {
      for (std::size_t s = 0; s < cur.size(); ++s) {
        next[s] = 0.5 * next[s] + 0.5 * cur[s];
      }
    }
    cur.swap(next);
    out.push_back(total_variation(cur, pi));
  }
  return out;
}

std::size_t mixing_time(const MarkovChain& chain, double epsilon,
                        std::size_t max_t,
                        std::span<const std::size_t> starts, bool lazy) {
  std::vector<std::size_t> all;
  if (starts.empty()) {
    all.resize(chain.num_states());
    std::iota(all.begin(), all.end(), std::size_t{0});
    starts = all;
  }
  std::size_t worst = 0;
  for (std::size_t from : starts) {
    const auto dist = distance_to_stationarity(chain, from, max_t, lazy);
    const auto it = std::find_if(dist.begin(), dist.end(),
                                 [epsilon](double d) { return d <= epsilon; });
    if (it == dist.end()) return max_t + 1;
    worst = std::max(worst, static_cast<std::size_t>(it - dist.begin()));
  }
  return worst;
}

std::vector<std::size_t> sample_trajectory(const MarkovChain& chain,
                                           std::size_t from,
                                           std::size_t steps,
                                           Xoshiro256pp& rng) {
  if (from >= chain.num_states()) {
    throw std::out_of_range("sample_trajectory: bad start state");
  }
  std::vector<std::size_t> out;
  out.reserve(steps);
  std::size_t state = from;
  for (std::size_t t = 0; t < steps; ++t) {
    const double x = rng.uniform_double();
    double acc = 0.0;
    std::size_t chosen = state;
    for (const auto& tr : chain.transitions_from(state)) {
      acc += tr.prob;
      if (x < acc) {
        chosen = tr.to;
        break;
      }
    }
    state = chosen;
    out.push_back(state);
  }
  return out;
}

}  // namespace pwf::markov
