#include "markov/graph.hpp"

#include <algorithm>
#include <deque>
#include <numeric>
#include <stdexcept>

namespace pwf::markov {

std::vector<std::size_t> strongly_connected_components(
    const MarkovChain& chain, std::size_t* num_sccs) {
  const std::size_t n = chain.num_states();
  constexpr std::size_t kUnvisited = static_cast<std::size_t>(-1);

  std::vector<std::size_t> index(n, kUnvisited);
  std::vector<std::size_t> lowlink(n, 0);
  std::vector<char> on_stack(n, 0);
  std::vector<std::size_t> scc_id(n, kUnvisited);
  std::vector<std::size_t> stack;
  std::size_t next_index = 0;
  std::size_t next_scc = 0;

  // Iterative Tarjan: each frame remembers the state and the next edge to
  // explore in its adjacency list.
  struct Frame {
    std::size_t state;
    std::size_t edge;
  };
  std::vector<Frame> call_stack;

  for (std::size_t root = 0; root < n; ++root) {
    if (index[root] != kUnvisited) continue;
    call_stack.push_back({root, 0});
    while (!call_stack.empty()) {
      Frame& frame = call_stack.back();
      const std::size_t v = frame.state;
      if (frame.edge == 0) {
        index[v] = lowlink[v] = next_index++;
        stack.push_back(v);
        on_stack[v] = 1;
      }
      const auto edges = chain.transitions_from(v);
      bool descended = false;
      while (frame.edge < edges.size()) {
        const std::size_t w = edges[frame.edge].to;
        ++frame.edge;
        if (index[w] == kUnvisited) {
          call_stack.push_back({w, 0});
          descended = true;
          break;
        }
        if (on_stack[w]) lowlink[v] = std::min(lowlink[v], index[w]);
      }
      if (descended) continue;
      // All edges explored: close the frame.
      if (lowlink[v] == index[v]) {
        while (true) {
          const std::size_t w = stack.back();
          stack.pop_back();
          on_stack[w] = 0;
          scc_id[w] = next_scc;
          if (w == v) break;
        }
        ++next_scc;
      }
      call_stack.pop_back();
      if (!call_stack.empty()) {
        const std::size_t parent = call_stack.back().state;
        lowlink[parent] = std::min(lowlink[parent], lowlink[v]);
      }
    }
  }
  if (num_sccs) *num_sccs = next_scc;
  return scc_id;
}

std::size_t chain_period(const MarkovChain& chain) {
  const std::size_t n = chain.num_states();
  constexpr std::size_t kUnset = static_cast<std::size_t>(-1);
  std::vector<std::size_t> dist(n, kUnset);
  std::deque<std::size_t> queue;
  dist[0] = 0;
  queue.push_back(0);
  std::size_t g = 0;
  while (!queue.empty()) {
    const std::size_t v = queue.front();
    queue.pop_front();
    for (const auto& t : chain.transitions_from(v)) {
      if (dist[t.to] == kUnset) {
        dist[t.to] = dist[v] + 1;
        queue.push_back(t.to);
      } else {
        // Every edge closes a (not necessarily simple) cycle of length
        // dist(v) + 1 - dist(to) modulo the period.
        const auto diff =
            static_cast<long long>(dist[v]) + 1 - static_cast<long long>(dist[t.to]);
        g = std::gcd(g, static_cast<std::size_t>(diff < 0 ? -diff : diff));
      }
    }
  }
  for (std::size_t s = 0; s < n; ++s) {
    if (dist[s] == kUnset) {
      throw std::logic_error("chain_period: chain is not irreducible");
    }
  }
  return g;
}

ErgodicityReport analyze_ergodicity(const MarkovChain& chain) {
  ErgodicityReport report;
  strongly_connected_components(chain, &report.num_sccs);
  report.irreducible = report.num_sccs == 1;
  if (report.irreducible) {
    report.period = chain_period(chain);
    report.aperiodic = report.period == 1;
  }
  report.ergodic = report.irreducible && report.aperiodic;
  return report;
}

}  // namespace pwf::markov
