// Mixing-time machinery. The paper's latency results are stationary
// statements ("the behavior of the algorithm at infinity", Section 6.3);
// every simulation in this repository therefore discards a warmup window.
// These utilities make that rigorous: they compute the total-variation
// distance to stationarity after t steps and the epsilon-mixing time of a
// chain, so tests can assert that the warmup used actually suffices.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "markov/chain.hpp"
#include "util/rng.hpp"

namespace pwf::markov {

/// Total-variation distance between two distributions on the same state
/// space: 0.5 * sum_i |p_i - q_i|. Precondition: equal sizes.
double total_variation(std::span<const double> p, std::span<const double> q);

/// Distance to stationarity d(t) = TV(delta_from * P^t, pi), for
/// t = 0..max_t. Monotone non-increasing, and convergent to 0 only for
/// *aperiodic* chains. Several of the paper's chains are periodic (the
/// scan-validate chains have period 2, the parallel-code chains period q
/// — a small correction to Lemma 3's "ergodic"; see DESIGN.md), so pass
/// lazy = true to analyze the lazy chain (P + I)/2 instead: it has the
/// same stationary distribution, is aperiodic, and its mixing profile
/// governs the time-averaged statistics the paper's results are about.
std::vector<double> distance_to_stationarity(const MarkovChain& chain,
                                             std::size_t from,
                                             std::size_t max_t,
                                             bool lazy = false);

/// The epsilon-mixing time from a worst-case point start:
/// min { t : max_from TV(delta_from * P^t, pi) <= epsilon }.
/// `starts` restricts the maximization (empty = all states, which can be
/// expensive for big chains). Returns max_t + 1 if not mixed by max_t.
std::size_t mixing_time(const MarkovChain& chain, double epsilon,
                        std::size_t max_t,
                        std::span<const std::size_t> starts = {},
                        bool lazy = false);

/// Samples a trajectory of the chain: returns the state visited at each of
/// `steps` steps, starting from `from`. Used by tests to cross-check the
/// stationary distribution against empirical occupation frequencies.
std::vector<std::size_t> sample_trajectory(const MarkovChain& chain,
                                           std::size_t from,
                                           std::size_t steps,
                                           Xoshiro256pp& rng);

}  // namespace pwf::markov
