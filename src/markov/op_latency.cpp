#include "markov/op_latency.hpp"

#include <stdexcept>

namespace pwf::markov {

double OpLatencyLaw::tail(std::size_t t) const {
  double sum = truncated;
  for (std::size_t i = t + 1; i < pmf.size(); ++i) sum += pmf[i];
  return sum;
}

OpLatencyLaw op_latency_distribution(const BuiltChain& built,
                                     std::size_t max_t) {
  const MarkovChain& chain = built.chain;
  const std::size_t n_states = chain.num_states();
  const std::vector<double> pi = chain.stationary();

  // Start distribution: where the chain lands immediately after a
  // p0-success, weighted by the stationary flow through each success edge.
  std::vector<double> cur(n_states, 0.0);
  double flow = 0.0;
  for (std::size_t s = 0; s < n_states; ++s) {
    const double f = pi[s] * built.success_prob_p0[s];
    if (f <= 0.0) continue;
    if (built.success_p0_target[s] == BuiltChain::kNoTarget) {
      throw std::invalid_argument(
          "op_latency_distribution: chain lacks success targets (use an "
          "individual chain, not a system chain)");
    }
    cur[built.success_p0_target[s]] += f;
    flow += f;
  }
  if (flow <= 0.0) {
    throw std::invalid_argument(
        "op_latency_distribution: process 0 never completes");
  }
  for (double& mass : cur) mass /= flow;

  OpLatencyLaw law;
  law.pmf.assign(max_t + 1, 0.0);
  std::vector<double> next(n_states, 0.0);
  for (std::size_t t = 1; t <= max_t; ++t) {
    // One step: move all mass, diverting what crosses a p0-success edge
    // into pmf[t].
    std::fill(next.begin(), next.end(), 0.0);
    double absorbed = 0.0;
    for (std::size_t s = 0; s < n_states; ++s) {
      const double mass = cur[s];
      if (mass == 0.0) continue;
      for (const auto& tr : chain.transitions_from(s)) {
        next[tr.to] += mass * tr.prob;
      }
      const double sp = built.success_prob_p0[s];
      if (sp > 0.0) {
        next[built.success_p0_target[s]] -= mass * sp;
        absorbed += mass * sp;
      }
    }
    law.pmf[t] = absorbed;
    law.mean += absorbed * static_cast<double>(t);
    cur.swap(next);
    double remaining = 0.0;
    for (double m : cur) remaining += m;
    if (remaining < 1e-15) break;
  }
  for (double m : cur) law.truncated += m;
  // Lower-bound contribution of the truncated tail to the mean.
  law.mean += law.truncated * static_cast<double>(max_t);
  return law;
}

}  // namespace pwf::markov
