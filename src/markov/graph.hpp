// Graph-theoretic structure of a Markov chain: strongly connected
// components (irreducibility), periodicity, and the combined ergodicity
// check the paper relies on (Lemma 3, Lemma 13: "the individual chain and
// the system chain are ergodic").
#pragma once

#include <cstddef>
#include <vector>

#include "markov/chain.hpp"

namespace pwf::markov {

/// Result of analyze_ergodicity().
struct ErgodicityReport {
  std::size_t num_sccs = 0;
  bool irreducible = false;
  /// gcd of all directed cycle lengths (only meaningful when irreducible;
  /// 0 if the chain has no cycle, which cannot happen for a valid chain).
  std::size_t period = 0;
  bool aperiodic = false;
  bool ergodic = false;  ///< irreducible && aperiodic
};

/// Tarjan-style SCC decomposition (iterative, no recursion). Returns the
/// component id of every state; ids are dense in [0, num_sccs).
std::vector<std::size_t> strongly_connected_components(
    const MarkovChain& chain, std::size_t* num_sccs = nullptr);

/// Period of an irreducible chain: gcd over all edges (u, v) of
/// dist(u) + 1 - dist(v), where dist is BFS distance from any root.
/// Precondition: the chain is irreducible.
std::size_t chain_period(const MarkovChain& chain);

/// Full report: SCC count, irreducibility, period, aperiodicity, ergodicity.
ErgodicityReport analyze_ergodicity(const MarkovChain& chain);

}  // namespace pwf::markov
