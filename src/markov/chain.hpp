// Discrete-time, time-invariant, finite Markov chains (paper, Section 3).
//
// The representation is sparse (adjacency lists of (state, probability)),
// because every chain in the paper has out-degree at most n while the state
// counts grow like 3^n or 2^n. Provides exactly the machinery the paper's
// analysis uses: stationary distributions, hitting/return times, ergodic
// flow, and (in lifting.hpp) Markov-chain lifting.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace pwf::markov {

/// One outgoing edge of a chain: move to `to` with probability `prob`.
struct Transition {
  std::size_t to;
  double prob;
};

/// A finite time-invariant Markov chain with sparse transition structure.
///
/// Rows must sum to 1 (checked by validate()); duplicate (from, to) entries
/// added via add_transition accumulate into a single edge.
class MarkovChain {
 public:
  explicit MarkovChain(std::size_t num_states);

  /// Accumulates probability mass on edge from -> to. prob must be > 0.
  void add_transition(std::size_t from, std::size_t to, double prob);

  std::size_t num_states() const noexcept { return rows_.size(); }

  std::span<const Transition> transitions_from(std::size_t state) const;

  /// Probability of the edge from -> to (0 if absent).
  double transition_prob(std::size_t from, std::size_t to) const;

  /// Throws std::logic_error if any row's probabilities do not sum to 1
  /// within `tol`, or if any probability is outside [0, 1].
  void validate(double tol = 1e-9) const;

  /// Stationary distribution pi with pi = pi * P, computed by power
  /// iteration on the lazy chain (P + I)/2 — the lazy chain has the same
  /// stationary distribution and is aperiodic, so the iteration converges
  /// even for periodic chains. Requires irreducibility for uniqueness.
  std::vector<double> stationary(double tol = 1e-13,
                                 std::size_t max_iters = 2'000'000) const;

  /// Stationary distribution by direct Gaussian elimination on
  /// (P^T - I) pi = 0 with the normalization constraint — O(n^3) time and
  /// O(n^2) memory, so only for small chains (n <= ~2000). Used to
  /// cross-validate the iterative solver.
  std::vector<double> stationary_exact() const;

  /// Expected hitting times h[i] = E[steps to first reach `target` from i],
  /// with h[target] = 0, solved by Gauss-Seidel on the linear system
  /// h = 1 + P_{-target} h. States that cannot reach `target` are reported
  /// as +infinity.
  std::vector<double> hitting_times(std::size_t target, double tol = 1e-12,
                                    std::size_t max_iters = 1'000'000) const;

  /// Expected return time to `state`: 1 + sum_j p(state, j) * h_j(state).
  /// For an ergodic chain this equals 1 / pi[state] (paper, Theorem 1).
  double return_time(std::size_t state) const;

  /// Ergodic flow Q_ij = pi_i * p_ij for a given stationary vector.
  double ergodic_flow(std::size_t from, std::size_t to,
                      std::span<const double> pi) const;

  /// Distribution after one step: out = in * P.
  void step_distribution(std::span<const double> in,
                         std::span<double> out) const;

 private:
  std::vector<std::vector<Transition>> rows_;
};

}  // namespace pwf::markov
