#include "markov/builders.hpp"

#include <bit>
#include <cmath>
#include <deque>
#include <map>
#include <sstream>
#include <stdexcept>

namespace pwf::markov {
namespace {

/// Outcome of one scheduled step while enumerating a chain.
struct Outcome {
  std::uint64_t next_key;
  double prob;
  bool success_any;
  bool success_p0;
};

/// Generic reachable-state enumerator: expand(key) lists the outcomes of one
/// step from the state with canonical key `key`. States are indexed in BFS
/// discovery order starting from `initial_key`.
template <typename ExpandFn, typename NameFn>
BuiltChain enumerate_chain(std::uint64_t initial_key, ExpandFn&& expand,
                           NameFn&& name) {
  std::map<std::uint64_t, std::size_t> index;
  std::vector<std::uint64_t> keys;
  std::deque<std::uint64_t> frontier;
  index.emplace(initial_key, 0);
  keys.push_back(initial_key);
  frontier.push_back(initial_key);

  std::vector<std::vector<Outcome>> rows;
  while (!frontier.empty()) {
    const std::uint64_t key = frontier.front();
    frontier.pop_front();
    auto outs = expand(key);
    for (const Outcome& out : outs) {
      if (!index.contains(out.next_key)) {
        index.emplace(out.next_key, keys.size());
        keys.push_back(out.next_key);
        frontier.push_back(out.next_key);
      }
    }
    rows.push_back(std::move(outs));
  }

  const std::size_t n_states = keys.size();
  BuiltChain built{MarkovChain(n_states), {}, {}, {}, {}, {}, 0};
  built.state_keys = keys;
  built.success_prob.assign(n_states, 0.0);
  built.success_prob_p0.assign(n_states, 0.0);
  built.success_p0_target.assign(n_states, BuiltChain::kNoTarget);
  built.state_names.reserve(n_states);
  for (std::uint64_t key : keys) built.state_names.push_back(name(key));
  for (std::size_t s = 0; s < n_states; ++s) {
    for (const Outcome& out : rows[s]) {
      built.chain.add_transition(s, index.at(out.next_key), out.prob);
      if (out.success_any) built.success_prob[s] += out.prob;
      if (out.success_p0) {
        built.success_prob_p0[s] += out.prob;
        built.success_p0_target[s] = index.at(out.next_key);
      }
    }
  }
  return built;
}

// --- scan-validate encodings -------------------------------------------------

enum ExtState : std::uint64_t { kRead = 0, kCCAS = 1, kOldCAS = 2 };

std::uint64_t sv_get(std::uint64_t key, std::size_t i) {
  std::uint64_t k = key;
  for (std::size_t j = 0; j < i; ++j) k /= 3;
  return k % 3;
}

std::uint64_t sv_set(std::uint64_t key, std::size_t i, std::uint64_t value) {
  std::uint64_t pow = 1;
  for (std::size_t j = 0; j < i; ++j) pow *= 3;
  const std::uint64_t old = (key / pow) % 3;
  return key + (value - old) * pow;
}

std::string sv_name(std::uint64_t key, std::size_t n) {
  static constexpr const char* kNames[] = {"R", "C", "O"};
  std::ostringstream oss;
  for (std::size_t i = 0; i < n; ++i) {
    if (i) oss << ',';
    oss << 'p' << i + 1 << '=' << kNames[sv_get(key, i)];
  }
  return oss.str();
}

std::uint64_t sv_system_key(std::uint64_t ind_key, std::size_t n) {
  std::size_t a = 0, b = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const auto st = sv_get(ind_key, i);
    if (st == kRead) ++a;
    if (st == kOldCAS) ++b;
  }
  return static_cast<std::uint64_t>(a) * (n + 1) + b;
}

// --- parallel-code encodings -------------------------------------------------

std::uint64_t par_get(std::uint64_t key, std::size_t i, std::size_t q) {
  std::uint64_t k = key;
  for (std::size_t j = 0; j < i; ++j) k /= q;
  return k % q;
}

std::uint64_t par_set(std::uint64_t key, std::size_t i, std::uint64_t value,
                      std::size_t q) {
  std::uint64_t pow = 1;
  for (std::size_t j = 0; j < i; ++j) pow *= q;
  const std::uint64_t old = (key / pow) % q;
  return key + (value - old) * pow;
}

std::uint64_t par_system_key(std::uint64_t ind_key, std::size_t n,
                             std::size_t q) {
  // Occupancy vector encoded base (n+1).
  std::uint64_t sys = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t c = par_get(ind_key, i, q);
    std::uint64_t pow = 1;
    for (std::size_t j = 0; j < c; ++j) pow *= (n + 1);
    sys += pow;
  }
  return sys;
}

std::uint64_t par_occupancy(std::uint64_t sys_key, std::size_t j,
                            std::size_t n) {
  std::uint64_t k = sys_key;
  for (std::size_t i = 0; i < j; ++i) k /= (n + 1);
  return k % (n + 1);
}

}  // namespace

std::size_t BuiltChain::index_of_key(std::uint64_t key) const {
  for (std::size_t s = 0; s < state_keys.size(); ++s) {
    if (state_keys[s] == key) return s;
  }
  throw std::out_of_range("BuiltChain::index_of_key: key not present");
}

// --- scan-validate -----------------------------------------------------------

BuiltChain build_scan_validate_individual_chain(std::size_t n) {
  if (n < 1 || n > 13) {
    throw std::invalid_argument("scan_validate_individual: need 1 <= n <= 13");
  }
  const double p = 1.0 / static_cast<double>(n);
  auto expand = [n, p](std::uint64_t key) {
    std::vector<Outcome> outs;
    outs.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      const auto st = sv_get(key, i);
      std::uint64_t next = key;
      bool success = false;
      switch (st) {
        case kRead:
          next = sv_set(key, i, kCCAS);
          break;
        case kOldCAS:
          // CAS with a stale value fails; the process restarts its loop.
          next = sv_set(key, i, kRead);
          break;
        case kCCAS:
          // CAS succeeds: p_i completes and returns to Read; every other
          // process holding the (now old) value moves to OldCAS.
          success = true;
          next = sv_set(key, i, kRead);
          for (std::size_t j = 0; j < n; ++j) {
            if (j != i && sv_get(next, j) == kCCAS) {
              next = sv_set(next, j, kOldCAS);
            }
          }
          break;
      }
      outs.push_back({next, p, success, success && i == 0});
    }
    return outs;
  };
  auto name = [n](std::uint64_t key) { return sv_name(key, n); };
  return enumerate_chain(/*initial: all Read*/ 0, expand, name);
}

BuiltChain build_scan_validate_system_chain(std::size_t n) {
  if (n < 1) throw std::invalid_argument("scan_validate_system: need n >= 1");
  const double inv_n = 1.0 / static_cast<double>(n);
  auto expand = [n, inv_n](std::uint64_t key) {
    const std::size_t a = key / (n + 1);
    const std::size_t b = key % (n + 1);
    const std::size_t c = n - a - b;
    std::vector<Outcome> outs;
    if (b > 0) {
      // A process CAS-ing with an old value steps and fails: (a+1, b-1).
      outs.push_back({static_cast<std::uint64_t>(a + 1) * (n + 1) + (b - 1),
                      static_cast<double>(b) * inv_n, false, false});
    }
    if (a > 0) {
      // A reader steps: (a-1, b).
      outs.push_back({static_cast<std::uint64_t>(a - 1) * (n + 1) + b,
                      static_cast<double>(a) * inv_n, false, false});
    }
    if (c > 0) {
      // A process CAS-ing with the current value steps and succeeds: it
      // returns to Read and the other c-1 current CAS-ers become stale:
      // (a+1, b + c - 1) = (a+1, n - a - 1).
      outs.push_back({static_cast<std::uint64_t>(a + 1) * (n + 1) + (n - a - 1),
                      static_cast<double>(c) * inv_n, true, false});
    }
    return outs;
  };
  auto name = [n](std::uint64_t key) {
    std::ostringstream oss;
    oss << "(a=" << key / (n + 1) << ",b=" << key % (n + 1) << ")";
    return oss.str();
  };
  BuiltChain built =
      enumerate_chain(static_cast<std::uint64_t>(n) * (n + 1), expand, name);
  // System-chain success is anonymous; attribute 1/n of it to process 0 by
  // symmetry so individual_latency_p0 is also defined on the system chain.
  for (std::size_t s = 0; s < built.success_prob.size(); ++s) {
    built.success_prob_p0[s] = built.success_prob[s] * inv_n;
  }
  return built;
}

std::vector<std::size_t> scan_validate_lifting_map(const BuiltChain& individual,
                                                   const BuiltChain& system,
                                                   std::size_t n) {
  std::map<std::uint64_t, std::size_t> sys_index;
  for (std::size_t s = 0; s < system.state_keys.size(); ++s) {
    sys_index.emplace(system.state_keys[s], s);
  }
  std::vector<std::size_t> f(individual.state_keys.size());
  for (std::size_t x = 0; x < individual.state_keys.size(); ++x) {
    f[x] = sys_index.at(sv_system_key(individual.state_keys[x], n));
  }
  return f;
}

// --- generalized scan-validate SCU(0, s) --------------------------------------

namespace {

// Per-process codes, base (2s+1): 0 = about to read R (k = 0);
// 1 + 2*(k-1) + 0 = at position k with a valid view;
// 1 + 2*(k-1) + 1 = at position k with an invalidated view.
std::uint64_t scu_get(std::uint64_t key, std::size_t i, std::uint64_t base) {
  for (std::size_t j = 0; j < i; ++j) key /= base;
  return key % base;
}

std::uint64_t scu_set(std::uint64_t key, std::size_t i, std::uint64_t value,
                      std::uint64_t base) {
  std::uint64_t pow = 1;
  for (std::size_t j = 0; j < i; ++j) pow *= base;
  const std::uint64_t old = (key / pow) % base;
  return key + (value - old) * pow;
}

}  // namespace

BuiltChain build_scu_scan_individual_chain(std::size_t n, std::size_t s) {
  if (n < 1 || s < 1) {
    throw std::invalid_argument("scu_scan_individual: need n, s >= 1");
  }
  const std::uint64_t base = 2 * s + 1;
  double states = 1.0;
  for (std::size_t i = 0; i < n; ++i) states *= static_cast<double>(base);
  if (states > 2e5) {
    throw std::invalid_argument("scu_scan_individual: state space too large");
  }
  const double p = 1.0 / static_cast<double>(n);
  auto code_of = [](std::size_t k, bool valid) -> std::uint64_t {
    return k == 0 ? 0 : 1 + 2 * (k - 1) + (valid ? 0 : 1);
  };
  auto expand = [n, s, p, base, code_of](std::uint64_t key) {
    std::vector<Outcome> outs;
    outs.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t code = scu_get(key, i, base);
      const std::size_t k = code == 0 ? 0 : 1 + (code - 1) / 2;
      const bool valid = code == 0 || ((code - 1) % 2 == 0);
      std::uint64_t next = key;
      bool success = false;
      if (k < s) {
        // Scan step; the step at k = 0 (re-)reads R, making the view valid.
        next = scu_set(key, i, code_of(k + 1, k == 0 ? true : valid), base);
      } else if (!valid) {
        // CAS with a stale view fails: restart the attempt.
        next = scu_set(key, i, 0, base);
      } else {
        // CAS succeeds: we restart and every other in-flight view dies.
        success = true;
        next = scu_set(key, i, 0, base);
        for (std::size_t j = 0; j < n; ++j) {
          if (j == i) continue;
          const std::uint64_t cj = scu_get(next, j, base);
          if (cj != 0 && (cj - 1) % 2 == 0) {
            next = scu_set(next, j, cj + 1, base);  // valid -> invalid
          }
        }
      }
      outs.push_back({next, p, success, success && i == 0});
    }
    return outs;
  };
  auto name = [n, s, base](std::uint64_t key) {
    std::ostringstream oss;
    for (std::size_t i = 0; i < n; ++i) {
      if (i) oss << ',';
      const std::uint64_t code = scu_get(key, i, base);
      if (code == 0) {
        oss << "k0";
      } else {
        oss << 'k' << 1 + (code - 1) / 2 << ((code - 1) % 2 ? "!" : "");
      }
    }
    (void)s;
    return oss.str();
  };
  return enumerate_chain(/*initial: everyone at k = 0*/ 0, expand, name);
}

// --- parallel code -----------------------------------------------------------

BuiltChain build_parallel_individual_chain(std::size_t n, std::size_t q) {
  if (n < 1 || q < 1) {
    throw std::invalid_argument("parallel_individual: need n, q >= 1");
  }
  if (n * static_cast<std::size_t>(std::ceil(std::log2(double(q) + 1))) > 24) {
    throw std::invalid_argument("parallel_individual: state space too large");
  }
  const double p = 1.0 / static_cast<double>(n);
  auto expand = [n, q, p](std::uint64_t key) {
    std::vector<Outcome> outs;
    outs.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t c = par_get(key, i, q);
      const bool success = c == q - 1;  // counter wraps to 0: op completes
      const std::uint64_t next = par_set(key, i, (c + 1) % q, q);
      outs.push_back({next, p, success, success && i == 0});
    }
    return outs;
  };
  auto name = [n, q](std::uint64_t key) {
    std::ostringstream oss;
    oss << '(';
    for (std::size_t i = 0; i < n; ++i) {
      if (i) oss << ',';
      oss << par_get(key, i, q);
    }
    oss << ')';
    return oss.str();
  };
  return enumerate_chain(/*initial: all counters 0*/ 0, expand, name);
}

BuiltChain build_parallel_system_chain(std::size_t n, std::size_t q) {
  if (n < 1 || q < 1) {
    throw std::invalid_argument("parallel_system: need n, q >= 1");
  }
  const double inv_n = 1.0 / static_cast<double>(n);
  auto expand = [n, q, inv_n](std::uint64_t key) {
    std::vector<Outcome> outs;
    for (std::size_t j = 0; j < q; ++j) {
      const std::uint64_t vj = par_occupancy(key, j, n);
      if (vj == 0) continue;
      // Move one process from counter class j to class (j+1) mod q.
      std::uint64_t pow_j = 1;
      for (std::size_t t = 0; t < j; ++t) pow_j *= (n + 1);
      std::uint64_t pow_next = 1;
      for (std::size_t t = 0; t < (j + 1) % q; ++t) pow_next *= (n + 1);
      std::uint64_t next = key - pow_j;
      if (q > 1) next += pow_next;
      else next += pow_j;  // q == 1: the class is its own successor
      const bool success = j == q - 1;
      outs.push_back(
          {next, static_cast<double>(vj) * inv_n, success, false});
    }
    return outs;
  };
  auto name = [n, q](std::uint64_t key) {
    std::ostringstream oss;
    oss << '[';
    for (std::size_t j = 0; j < q; ++j) {
      if (j) oss << ',';
      oss << par_occupancy(key, j, n);
    }
    oss << ']';
    return oss.str();
  };
  // Initial state: all n processes in class 0.
  BuiltChain built = enumerate_chain(static_cast<std::uint64_t>(n), expand, name);
  for (std::size_t s = 0; s < built.success_prob.size(); ++s) {
    built.success_prob_p0[s] = built.success_prob[s] * inv_n;
  }
  return built;
}

std::vector<std::size_t> parallel_lifting_map(const BuiltChain& individual,
                                              const BuiltChain& system,
                                              std::size_t n, std::size_t q) {
  std::map<std::uint64_t, std::size_t> sys_index;
  for (std::size_t s = 0; s < system.state_keys.size(); ++s) {
    sys_index.emplace(system.state_keys[s], s);
  }
  std::vector<std::size_t> f(individual.state_keys.size());
  for (std::size_t x = 0; x < individual.state_keys.size(); ++x) {
    f[x] = sys_index.at(par_system_key(individual.state_keys[x], n, q));
  }
  return f;
}

// --- fetch-and-increment -----------------------------------------------------

BuiltChain build_fai_individual_chain(std::size_t n) {
  if (n < 1 || n > 20) {
    throw std::invalid_argument("fai_individual: need 1 <= n <= 20");
  }
  const double p = 1.0 / static_cast<double>(n);
  auto expand = [n, p](std::uint64_t key) {
    std::vector<Outcome> outs;
    outs.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t bit = std::uint64_t{1} << i;
      if (key & bit) {
        // p_i holds the current value: its CAS succeeds and everyone else's
        // value becomes stale. New state {p_i}.
        outs.push_back({bit, p, true, i == 0});
      } else {
        // p_i CAS-es with a stale value: it fails, but the augmented CAS
        // returns the current value, so p_i joins the current set.
        outs.push_back({key | bit, p, false, false});
      }
    }
    return outs;
  };
  auto name = [n](std::uint64_t key) {
    std::ostringstream oss;
    oss << '{';
    bool first = true;
    for (std::size_t i = 0; i < n; ++i) {
      if (key & (std::uint64_t{1} << i)) {
        if (!first) oss << ',';
        oss << 'p' << i + 1;
        first = false;
      }
    }
    oss << '}';
    return oss.str();
  };
  // Initial state s_Pi: every process holds the current value.
  const std::uint64_t all = n == 64 ? ~std::uint64_t{0}
                                    : (std::uint64_t{1} << n) - 1;
  return enumerate_chain(all, expand, name);
}

BuiltChain build_fai_global_chain(std::size_t n) {
  if (n < 1) throw std::invalid_argument("fai_global: need n >= 1");
  const double inv_n = 1.0 / static_cast<double>(n);
  auto expand = [n, inv_n](std::uint64_t key) {
    // key = i, the number of processes holding the current value (1..n).
    const auto i = static_cast<std::size_t>(key);
    std::vector<Outcome> outs;
    outs.push_back({1, static_cast<double>(i) * inv_n, true, false});
    if (i < n) {
      outs.push_back({key + 1, static_cast<double>(n - i) * inv_n, false,
                      false});
    }
    return outs;
  };
  auto name = [](std::uint64_t key) {
    return "v" + std::to_string(key);
  };
  BuiltChain built = enumerate_chain(static_cast<std::uint64_t>(n), expand, name);
  for (std::size_t s = 0; s < built.success_prob.size(); ++s) {
    built.success_prob_p0[s] = built.success_prob[s] * inv_n;
  }
  return built;
}

std::vector<std::size_t> fai_lifting_map(const BuiltChain& individual,
                                         const BuiltChain& global) {
  std::map<std::uint64_t, std::size_t> glob_index;
  for (std::size_t s = 0; s < global.state_keys.size(); ++s) {
    glob_index.emplace(global.state_keys[s], s);
  }
  std::vector<std::size_t> f(individual.state_keys.size());
  for (std::size_t x = 0; x < individual.state_keys.size(); ++x) {
    f[x] = glob_index.at(std::popcount(individual.state_keys[x]));
  }
  return f;
}

// --- latency extraction ------------------------------------------------------

double system_latency(const BuiltChain& built) {
  const auto pi = built.chain.stationary();
  double mu = 0.0;
  for (std::size_t s = 0; s < pi.size(); ++s) {
    mu += pi[s] * built.success_prob[s];
  }
  if (mu <= 0.0) {
    throw std::logic_error("system_latency: no successes in stationarity");
  }
  return 1.0 / mu;
}

double individual_latency_p0(const BuiltChain& built) {
  const auto pi = built.chain.stationary();
  double mu = 0.0;
  for (std::size_t s = 0; s < pi.size(); ++s) {
    mu += pi[s] * built.success_prob_p0[s];
  }
  if (mu <= 0.0) {
    throw std::logic_error(
        "individual_latency_p0: no successes in stationarity");
  }
  return 1.0 / mu;
}

}  // namespace pwf::markov
