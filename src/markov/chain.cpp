#include "markov/chain.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

namespace pwf::markov {

MarkovChain::MarkovChain(std::size_t num_states) : rows_(num_states) {
  if (num_states == 0) {
    throw std::invalid_argument("MarkovChain: need at least one state");
  }
}

void MarkovChain::add_transition(std::size_t from, std::size_t to,
                                 double prob) {
  if (from >= rows_.size() || to >= rows_.size()) {
    throw std::out_of_range("MarkovChain::add_transition: state out of range");
  }
  if (!(prob > 0.0)) {
    throw std::invalid_argument(
        "MarkovChain::add_transition: probability must be > 0");
  }
  auto& row = rows_[from];
  auto it = std::find_if(row.begin(), row.end(),
                         [to](const Transition& t) { return t.to == to; });
  if (it != row.end()) {
    it->prob += prob;
  } else {
    row.push_back({to, prob});
  }
}

std::span<const Transition> MarkovChain::transitions_from(
    std::size_t state) const {
  return rows_.at(state);
}

double MarkovChain::transition_prob(std::size_t from, std::size_t to) const {
  for (const auto& t : rows_.at(from)) {
    if (t.to == to) return t.prob;
  }
  return 0.0;
}

void MarkovChain::validate(double tol) const {
  for (std::size_t s = 0; s < rows_.size(); ++s) {
    double sum = 0.0;
    for (const auto& t : rows_[s]) {
      if (t.prob < 0.0 || t.prob > 1.0 + tol) {
        throw std::logic_error("MarkovChain: probability outside [0,1] at " +
                               std::to_string(s));
      }
      sum += t.prob;
    }
    if (std::abs(sum - 1.0) > tol) {
      throw std::logic_error("MarkovChain: row " + std::to_string(s) +
                             " sums to " + std::to_string(sum));
    }
  }
}

std::vector<double> MarkovChain::stationary(double tol,
                                            std::size_t max_iters) const {
  const std::size_t n = rows_.size();
  std::vector<double> cur(n, 1.0 / static_cast<double>(n));
  std::vector<double> next(n, 0.0);
  for (std::size_t iter = 0; iter < max_iters; ++iter) {
    std::fill(next.begin(), next.end(), 0.0);
    for (std::size_t s = 0; s < n; ++s) {
      const double mass = cur[s];
      if (mass == 0.0) continue;
      // Lazy chain: stay put with probability 1/2, move with probability 1/2.
      next[s] += 0.5 * mass;
      for (const auto& t : rows_[s]) next[t.to] += 0.5 * mass * t.prob;
    }
    double diff = 0.0;
    for (std::size_t s = 0; s < n; ++s) diff += std::abs(next[s] - cur[s]);
    cur.swap(next);
    if (diff < tol) return cur;
  }
  return cur;  // best effort after max_iters
}

std::vector<double> MarkovChain::stationary_exact() const {
  const std::size_t n = rows_.size();
  if (n > 2048) {
    throw std::invalid_argument(
        "stationary_exact: chain too large for the dense solver");
  }
  // Build A = P^T - I, then replace the last equation with sum(pi) = 1.
  std::vector<std::vector<double>> a(n, std::vector<double>(n + 1, 0.0));
  for (std::size_t s = 0; s < n; ++s) {
    for (const auto& t : rows_[s]) a[t.to][s] += t.prob;
    a[s][s] -= 1.0;
  }
  for (std::size_t c = 0; c < n; ++c) a[n - 1][c] = 1.0;
  a[n - 1][n] = 1.0;

  // Gaussian elimination with partial pivoting.
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::abs(a[r][col]) > std::abs(a[pivot][col])) pivot = r;
    }
    if (std::abs(a[pivot][col]) < 1e-14) {
      throw std::logic_error(
          "stationary_exact: singular system (chain not irreducible?)");
    }
    std::swap(a[col], a[pivot]);
    for (std::size_t r = 0; r < n; ++r) {
      if (r == col || a[r][col] == 0.0) continue;
      const double factor = a[r][col] / a[col][col];
      for (std::size_t c = col; c <= n; ++c) a[r][c] -= factor * a[col][c];
    }
  }
  std::vector<double> pi(n);
  for (std::size_t s = 0; s < n; ++s) pi[s] = a[s][n] / a[s][s];
  return pi;
}

std::vector<double> MarkovChain::hitting_times(std::size_t target, double tol,
                                               std::size_t max_iters) const {
  const std::size_t n = rows_.size();
  if (target >= n) {
    throw std::out_of_range("MarkovChain::hitting_times: target out of range");
  }
  // Restrict to states that can reach `target` (reverse BFS); others get inf.
  std::vector<std::vector<std::size_t>> reverse(n);
  for (std::size_t s = 0; s < n; ++s) {
    for (const auto& t : rows_[s]) reverse[t.to].push_back(s);
  }
  std::vector<char> reaches(n, 0);
  std::vector<std::size_t> stack{target};
  reaches[target] = 1;
  while (!stack.empty()) {
    const std::size_t s = stack.back();
    stack.pop_back();
    for (std::size_t prev : reverse[s]) {
      if (!reaches[prev]) {
        reaches[prev] = 1;
        stack.push_back(prev);
      }
    }
  }

  std::vector<double> h(n, 0.0);
  // Gauss-Seidel sweeps on h(i) = 1 + sum_{j != target} p_ij h(j).
  for (std::size_t iter = 0; iter < max_iters; ++iter) {
    double diff = 0.0;
    for (std::size_t s = 0; s < n; ++s) {
      if (s == target || !reaches[s]) continue;
      double acc = 1.0;
      double self = 0.0;
      for (const auto& t : rows_[s]) {
        if (t.to == target) continue;
        if (t.to == s) {
          self = t.prob;
        } else {
          acc += t.prob * h[t.to];
        }
      }
      // Solve the diagonal self-loop exactly: h = acc + self*h.
      const double updated = self < 1.0
                                 ? acc / (1.0 - self)
                                 : std::numeric_limits<double>::infinity();
      diff = std::max(diff, std::abs(updated - h[s]));
      h[s] = updated;
    }
    if (diff < tol) break;
  }
  for (std::size_t s = 0; s < n; ++s) {
    if (!reaches[s] && s != target) {
      h[s] = std::numeric_limits<double>::infinity();
    }
  }
  return h;
}

double MarkovChain::return_time(std::size_t state) const {
  const auto h = hitting_times(state);
  double total = 1.0;
  for (const auto& t : rows_.at(state)) {
    if (t.to == state) continue;  // immediate return contributes 0 extra
    if (std::isinf(h[t.to])) return std::numeric_limits<double>::infinity();
    total += t.prob * h[t.to];
  }
  return total;
}

double MarkovChain::ergodic_flow(std::size_t from, std::size_t to,
                                 std::span<const double> pi) const {
  return pi[from] * transition_prob(from, to);
}

void MarkovChain::step_distribution(std::span<const double> in,
                                    std::span<double> out) const {
  if (in.size() != rows_.size() || out.size() != rows_.size()) {
    throw std::invalid_argument("step_distribution: size mismatch");
  }
  std::fill(out.begin(), out.end(), 0.0);
  for (std::size_t s = 0; s < rows_.size(); ++s) {
    if (in[s] == 0.0) continue;
    for (const auto& t : rows_[s]) out[t.to] += in[s] * t.prob;
  }
}

}  // namespace pwf::markov
