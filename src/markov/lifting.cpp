#include "markov/lifting.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>
#include <utility>

namespace pwf::markov {

LiftingCheck verify_lifting(const MarkovChain& lifted, const MarkovChain& base,
                            std::span<const std::size_t> f, double tol) {
  if (f.size() != lifted.num_states()) {
    throw std::invalid_argument("verify_lifting: |f| != |lifted states|");
  }
  for (std::size_t x = 0; x < f.size(); ++x) {
    if (f[x] >= base.num_states()) {
      throw std::invalid_argument("verify_lifting: f maps outside base chain");
    }
  }

  const std::vector<double> pi_lifted = lifted.stationary();
  const std::vector<double> pi_base = base.stationary();

  // Aggregate lifted flows by (f(x), f(y)).
  std::map<std::pair<std::size_t, std::size_t>, double> lifted_flow;
  for (std::size_t x = 0; x < lifted.num_states(); ++x) {
    for (const auto& t : lifted.transitions_from(x)) {
      lifted_flow[{f[x], f[t.to]}] += pi_lifted[x] * t.prob;
    }
  }

  LiftingCheck check;
  // Compare against base flows on the union of edge sets.
  std::map<std::pair<std::size_t, std::size_t>, double> base_flow;
  for (std::size_t i = 0; i < base.num_states(); ++i) {
    for (const auto& t : base.transitions_from(i)) {
      base_flow[{i, t.to}] = pi_base[i] * t.prob;
    }
  }
  for (const auto& [edge, q] : lifted_flow) {
    const auto it = base_flow.find(edge);
    const double base_q = it == base_flow.end() ? 0.0 : it->second;
    check.max_flow_error = std::max(check.max_flow_error, std::abs(q - base_q));
  }
  for (const auto& [edge, q] : base_flow) {
    if (!lifted_flow.contains(edge)) {
      check.max_flow_error = std::max(check.max_flow_error, q);
    }
  }

  // Lemma 1: stationary mass of a base state equals the mass of its preimage.
  std::vector<double> collapsed(base.num_states(), 0.0);
  for (std::size_t x = 0; x < f.size(); ++x) collapsed[f[x]] += pi_lifted[x];
  for (std::size_t v = 0; v < base.num_states(); ++v) {
    check.max_stationary_error =
        std::max(check.max_stationary_error, std::abs(collapsed[v] - pi_base[v]));
  }

  check.is_lifting =
      check.max_flow_error <= tol && check.max_stationary_error <= tol;
  return check;
}

MarkovChain collapse(const MarkovChain& lifted,
                     std::span<const std::size_t> f,
                     std::size_t num_base_states) {
  if (f.size() != lifted.num_states()) {
    throw std::invalid_argument("collapse: |f| != |lifted states|");
  }
  const std::vector<double> pi = lifted.stationary();

  std::vector<double> mass(num_base_states, 0.0);
  for (std::size_t x = 0; x < f.size(); ++x) {
    if (f[x] >= num_base_states) {
      throw std::invalid_argument("collapse: f maps outside base range");
    }
    mass[f[x]] += pi[x];
  }

  std::map<std::pair<std::size_t, std::size_t>, double> flow;
  for (std::size_t x = 0; x < lifted.num_states(); ++x) {
    for (const auto& t : lifted.transitions_from(x)) {
      flow[{f[x], f[t.to]}] += pi[x] * t.prob;
    }
  }

  MarkovChain base(num_base_states);
  for (const auto& [edge, q] : flow) {
    const auto [from, to] = edge;
    if (mass[from] <= 0.0) continue;  // unreachable cluster: no outgoing law
    base.add_transition(from, to, q / mass[from]);
  }
  return base;
}

}  // namespace pwf::markov
