// Markov chain lifting (paper, Section 3 and Definition 2).
//
// A chain M' on states S' is a *lifting* of a chain M on states S when a
// surjection f : S' -> S preserves ergodic flows:
//     Q_ij = sum_{x in f^-1(i), y in f^-1(j)} Q'_xy         for all i, j,
// where Q_ij = pi_i p_ij and Q'_xy = pi'_x p'_xy. Lemma 1 then gives
//     pi(v) = sum_{x in f^-1(v)} pi'(x).
//
// verify_lifting() checks the flow homomorphism numerically; collapse()
// constructs the unique base chain induced by a mapping (the chain whose
// transition probabilities are the pi'-weighted averages over preimages),
// which is how the paper derives the system chain from the individual chain.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "markov/chain.hpp"

namespace pwf::markov {

/// Result of verify_lifting().
struct LiftingCheck {
  bool is_lifting = false;
  /// max_{i,j} | Q_ij - sum over preimage flows |
  double max_flow_error = 0.0;
  /// max_v | pi(v) - sum_{x in f^-1(v)} pi'(x) |   (Lemma 1)
  double max_stationary_error = 0.0;
};

/// Checks that `base` is obtained from `lifted` by the mapping `f`
/// (f[x] = base state of lifted state x). Both chains must be ergodic so
/// their stationary distributions are unique. `tol` bounds the allowed
/// numerical error in the flow homomorphism.
LiftingCheck verify_lifting(const MarkovChain& lifted, const MarkovChain& base,
                            std::span<const std::size_t> f,
                            double tol = 1e-9);

/// Collapses `lifted` through `f` onto `num_base_states` states:
///   p_hat(k, j) = sum_{x in f^-1(k)} pi'_x sum_{y in f^-1(j)} p'_xy / pi_k.
/// This is the transition law of the image process when the lifted chain is
/// stationary; if f is a true lifting, the image process is Markov and this
/// is the base chain.
MarkovChain collapse(const MarkovChain& lifted,
                     std::span<const std::size_t> f,
                     std::size_t num_base_states);

}  // namespace pwf::markov
