// Exact per-operation latency law from the chain analysis.
//
// The paper bounds *expected* latencies; the chain actually determines the
// entire distribution. In the stationary regime, the latency of one
// operation of process 0 is the phase-type random variable "system steps
// between two traversals of a p0-success edge". This module computes its
// distribution exactly: starting from the stationary post-completion
// distribution (the normalized image of the p0-success flow), it iterates
// the transition law, absorbing mass each time it crosses a p0-success
// edge. Tests pin its mean to Lemma 7's n*W; the appx_latency_distribution
// bench overlays it on the simulated histogram.
#pragma once

#include <cstddef>
#include <vector>

#include "markov/builders.hpp"

namespace pwf::markov {

/// Exact stationary distribution of one operation's latency for process 0.
struct OpLatencyLaw {
  /// pmf[t] = P[latency == t], t = 0..max_t (pmf[0] is always 0).
  std::vector<double> pmf;
  /// Probability mass beyond max_t (not included in pmf).
  double truncated = 0.0;
  double mean = 0.0;  ///< mean of the truncated law + tail lower bound

  /// P[latency > t] within the computed horizon.
  double tail(std::size_t t) const;
};

/// Computes the latency law of process 0's operations on an *individual*
/// chain (one whose success_p0_target fields are populated), truncated at
/// max_t steps. Requires sum of stationary p0-success flow > 0.
OpLatencyLaw op_latency_distribution(const BuiltChain& built,
                                     std::size_t max_t);

}  // namespace pwf::markov
