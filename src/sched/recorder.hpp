// Schedule recording and statistics (paper, Appendix A).
//
// The paper justifies the uniform stochastic scheduler empirically by
// recording hardware schedules in two ways and summarizing them as
//   Figure 3: the long-run share of steps taken by each thread, and
//   Figure 4: the distribution of which thread steps next, conditioned on
//             a step by a fixed thread.
// Both recorders are reproduced here:
//   * the ticket method — every thread hammers an atomic
//     fetch-and-increment and keeps the tickets it received; the ticket
//     value is the global step index, so sorting recovers the total order;
//   * the timestamp method — every thread logs a timestamp per step and
//     the merged sort order approximates the schedule (the paper notes the
//     timer call perturbs the schedule; ours does too).
// The same statistics can be computed over *simulated* schedules through
// SimScheduleRecorder, closing the loop between model and measurement.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "core/simulation.hpp"

namespace pwf::sched {

/// Per-thread step-share and conditional next-step statistics over one or
/// more recorded schedules (a schedule is a sequence of thread ids).
class ScheduleStats {
 public:
  explicit ScheduleStats(std::size_t num_threads);

  /// Accumulates a recorded schedule (thread ids, in execution order).
  void add_schedule(std::span<const std::uint32_t> order);

  std::size_t num_threads() const noexcept { return counts_.size(); }
  std::uint64_t total_steps() const noexcept { return total_; }

  /// Figure 3: fraction of all steps taken by each thread.
  std::vector<double> shares() const;

  /// Figure 4: P[next step is by u | current step is by t], for all u.
  std::vector<double> next_distribution(std::size_t t) const;

  /// Largest |share - 1/n| over threads: long-run fairness deviation.
  double max_share_deviation() const;

  /// Largest |P[u | t] - 1/n| over all (t, u): local-uniformity deviation.
  double max_conditional_deviation() const;

  /// Pearson chi-square statistic of the per-thread step counts against
  /// the uniform expectation total/n. Under a uniform random schedule it
  /// is approximately chi^2 with n-1 degrees of freedom, so values far
  /// above n flag a non-uniform scheduler quantitatively.
  double chi_square_uniform() const;

 private:
  std::vector<std::uint64_t> counts_;
  std::vector<std::vector<std::uint64_t>> next_counts_;
  std::uint64_t total_ = 0;
};

/// Records a hardware schedule with the atomic-ticket method: `threads`
/// threads repeatedly fetch-and-increment a shared counter until
/// `total_steps` tickets are drawn; slot i of the result is the thread
/// that drew ticket i.
std::vector<std::uint32_t> record_schedule_tickets(std::size_t threads,
                                                   std::uint64_t total_steps);

/// Records a hardware schedule with the timestamp method: each thread logs
/// `steps_per_thread` monotonic timestamps; the merged order approximates
/// the schedule.
std::vector<std::uint32_t> record_schedule_timestamps(
    std::size_t threads, std::uint64_t steps_per_thread);

/// Observer that records a simulated schedule (bounded by `max_steps`).
class SimScheduleRecorder final : public core::SimObserver {
 public:
  explicit SimScheduleRecorder(std::size_t max_steps);

  void on_step(std::uint64_t tau, std::size_t process, bool completed) override;

  std::span<const std::uint32_t> order() const noexcept { return order_; }

 private:
  std::vector<std::uint32_t> order_;
  std::size_t max_steps_;
};

}  // namespace pwf::sched
