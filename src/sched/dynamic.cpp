#include "sched/dynamic.hpp"

#include <algorithm>
#include <stdexcept>

namespace pwf::sched {

using core::MembershipEvent;

DynamicWeightedScheduler::DynamicWeightedScheduler(double default_weight)
    : default_weight_(default_weight) {
  if (!(default_weight > 0.0)) {
    throw std::invalid_argument(
        "DynamicWeightedScheduler: default_weight must be > 0");
  }
}

void DynamicWeightedScheduler::on_membership_change(MembershipEvent event,
                                                    std::size_t process,
                                                    double weight) {
  switch (event) {
    case MembershipEvent::kArrive:
    case MembershipEvent::kRestart: {
      const bool weight_changed =
          process < weights_.size() && weights_[process] != weight;
      if (process >= weights_.size()) {
        weights_.resize(process + 1, default_weight_);
      }
      weights_[process] = weight;
      if (stale_) return;
      if (weight_changed) {
        // A reused slot with a different weight: AliasTable's O(1)
        // revive restores the *old* weight, so fall back to a full
        // rebuild at the next draw. Never fires with uniform weights.
        stale_ = true;
        return;
      }
      table_.add(process, weight);
      return;
    }
    case MembershipEvent::kDepart:
    case MembershipEvent::kCrash: {
      if (stale_) return;
      table_.remove(process);
      return;
    }
  }
}

void DynamicWeightedScheduler::on_crash(std::size_t process) {
  on_membership_change(MembershipEvent::kCrash, process, weight_of(process));
}

void DynamicWeightedScheduler::ensure_table(
    std::span<const std::size_t> active) {
  // Safety net for use without membership events (or a missed one): the
  // live count must track the engine's active set exactly.
  if (!stale_ && table_.live_count() != active.size()) stale_ = true;
  if (stale_) {
    std::vector<double> w(active.size());
    for (std::size_t i = 0; i < active.size(); ++i) {
      w[i] = weight_of(active[i]);
    }
    table_.build(active, w);
    stale_ = false;
    return;
  }
  if (table_.needs_rebuild()) table_.rebuild();
}

std::size_t DynamicWeightedScheduler::next(std::uint64_t /*tau*/,
                                           std::span<const std::size_t> active,
                                           Xoshiro256pp& rng) {
  ensure_table(active);
  return table_.draw(rng);
}

void DynamicWeightedScheduler::next_batch(std::uint64_t /*tau*/,
                                          std::span<const std::size_t> active,
                                          Xoshiro256pp& rng,
                                          std::span<std::size_t> out) {
  ensure_table(active);
  const core::AliasTable& table = table_;  // hoist: no per-draw dispatch
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = table.draw(rng);
}

double DynamicWeightedScheduler::theta(std::size_t num_active) const {
  if (num_active == 0) return 0.0;
  if (stale_) {
    // Distribution not materialized yet; the bound for equal weights.
    return 1.0 / static_cast<double>(num_active);
  }
  double min_w = 0.0;
  double mass = 0.0;
  for (std::size_t id : table_.live_ids()) {
    const double w = weight_of(id);
    mass += w;
    if (min_w == 0.0 || w < min_w) min_w = w;
  }
  return mass > 0.0 ? min_w / mass : 0.0;
}

void DynamicWeightedScheduler::compact() {
  if (!stale_) table_.rebuild();
}

}  // namespace pwf::sched
