#include "sched/recorder.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <thread>

namespace pwf::sched {

ScheduleStats::ScheduleStats(std::size_t num_threads)
    : counts_(num_threads, 0),
      next_counts_(num_threads, std::vector<std::uint64_t>(num_threads, 0)) {
  if (num_threads == 0) {
    throw std::invalid_argument("ScheduleStats: need num_threads >= 1");
  }
}

void ScheduleStats::add_schedule(std::span<const std::uint32_t> order) {
  for (std::size_t i = 0; i < order.size(); ++i) {
    const std::uint32_t t = order[i];
    ++counts_.at(t);
    ++total_;
    if (i + 1 < order.size()) {
      ++next_counts_.at(t).at(order[i + 1]);
    }
  }
}

std::vector<double> ScheduleStats::shares() const {
  std::vector<double> out(counts_.size(), 0.0);
  if (total_ == 0) return out;
  for (std::size_t t = 0; t < counts_.size(); ++t) {
    out[t] = static_cast<double>(counts_[t]) / static_cast<double>(total_);
  }
  return out;
}

std::vector<double> ScheduleStats::next_distribution(std::size_t t) const {
  const auto& row = next_counts_.at(t);
  std::uint64_t row_total = 0;
  for (std::uint64_t c : row) row_total += c;
  std::vector<double> out(row.size(), 0.0);
  if (row_total == 0) return out;
  for (std::size_t u = 0; u < row.size(); ++u) {
    out[u] = static_cast<double>(row[u]) / static_cast<double>(row_total);
  }
  return out;
}

double ScheduleStats::max_share_deviation() const {
  // With no recorded steps there is no empirical distribution to deviate
  // from uniform; comparing the all-zero shares() against 1/n would report
  // a spurious 1/n here.
  if (total_ == 0) return 0.0;
  const double uniform = 1.0 / static_cast<double>(counts_.size());
  double worst = 0.0;
  for (double share : shares()) {
    worst = std::max(worst, std::abs(share - uniform));
  }
  return worst;
}

double ScheduleStats::max_conditional_deviation() const {
  const double uniform = 1.0 / static_cast<double>(counts_.size());
  double worst = 0.0;
  for (std::size_t t = 0; t < counts_.size(); ++t) {
    // Unobserved conditioning threads contribute no evidence; their
    // all-zero next_distribution() must not register as a 1/n deviation.
    std::uint64_t row_total = 0;
    for (std::uint64_t c : next_counts_[t]) row_total += c;
    if (row_total == 0) continue;
    for (double p : next_distribution(t)) {
      worst = std::max(worst, std::abs(p - uniform));
    }
  }
  return worst;
}

double ScheduleStats::chi_square_uniform() const {
  if (total_ == 0) return 0.0;
  const double expected =
      static_cast<double>(total_) / static_cast<double>(counts_.size());
  double stat = 0.0;
  for (std::uint64_t c : counts_) {
    const double diff = static_cast<double>(c) - expected;
    stat += diff * diff / expected;
  }
  return stat;
}

std::vector<std::uint32_t> record_schedule_tickets(std::size_t threads,
                                                   std::uint64_t total_steps) {
  if (threads == 0) throw std::invalid_argument("tickets: threads >= 1");
  std::vector<std::uint32_t> owner(total_steps, 0);
  std::atomic<std::uint64_t> tickets{0};
  std::atomic<bool> start{false};
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (std::size_t tid = 0; tid < threads; ++tid) {
    workers.emplace_back([&, tid] {
      while (!start.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      while (true) {
        const std::uint64_t ticket =
            tickets.fetch_add(1, std::memory_order_acq_rel);
        if (ticket >= total_steps) break;
        // Each slot is written exactly once, by the ticket's owner.
        owner[ticket] = static_cast<std::uint32_t>(tid);
      }
    });
  }
  start.store(true, std::memory_order_release);
  for (auto& w : workers) w.join();
  return owner;
}

std::vector<std::uint32_t> record_schedule_timestamps(
    std::size_t threads, std::uint64_t steps_per_thread) {
  if (threads == 0) throw std::invalid_argument("timestamps: threads >= 1");
  using Stamp = std::pair<std::chrono::steady_clock::time_point, std::uint32_t>;
  std::vector<std::vector<Stamp>> logs(threads);
  std::atomic<bool> start{false};
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (std::size_t tid = 0; tid < threads; ++tid) {
    workers.emplace_back([&, tid] {
      auto& log = logs[tid];
      log.reserve(steps_per_thread);
      while (!start.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      for (std::uint64_t i = 0; i < steps_per_thread; ++i) {
        log.emplace_back(std::chrono::steady_clock::now(),
                         static_cast<std::uint32_t>(tid));
      }
    });
  }
  start.store(true, std::memory_order_release);
  for (auto& w : workers) w.join();

  std::vector<Stamp> merged;
  merged.reserve(threads * steps_per_thread);
  for (const auto& log : logs) {
    merged.insert(merged.end(), log.begin(), log.end());
  }
  std::sort(merged.begin(), merged.end());
  std::vector<std::uint32_t> order;
  order.reserve(merged.size());
  for (const auto& [when, tid] : merged) order.push_back(tid);
  return order;
}

SimScheduleRecorder::SimScheduleRecorder(std::size_t max_steps)
    : max_steps_(max_steps) {
  order_.reserve(max_steps);
}

void SimScheduleRecorder::on_step(std::uint64_t /*tau*/, std::size_t process,
                                  bool /*completed*/) {
  if (order_.size() < max_steps_) {
    order_.push_back(static_cast<std::uint32_t>(process));
  }
}

}  // namespace pwf::sched
