// A weighted stochastic scheduler for open systems: membership deltas
// (arrive / depart / crash / restart) are applied to an incremental
// alias table in O(1) instead of triggering an O(n) rebuild per event.
//
// The closed-system WeightedScheduler rebuilds its alias table whenever
// the active set changes — fine when crashes are rare and final, fatal
// when a million-process open system churns every few hundred steps.
// DynamicWeightedScheduler listens to on_membership_change and applies
// AliasTable's dead-mark / fresh-list / revive deltas; the table decides
// for itself when enough churn has accumulated to amortize a rebuild
// (see alias.hpp for the exactness proof and the RNG-draw budget).
//
// RNG budget per draw: exactly 2 uniform draws while the table is
// compact (no dead marks, no fresh entries); +1 arm pre-draw while a
// fresh list exists; a geometric number of redraws while dead marks
// exist. compact() restores the exact 2-draw budget — the rng-budget
// tests pin all three regimes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/alias.hpp"
#include "core/scheduler.hpp"
#include "util/rng.hpp"

namespace pwf::sched {

class DynamicWeightedScheduler final : public core::Scheduler {
 public:
  /// `default_weight` is assumed for processes the scheduler has never
  /// been told about (bootstrap from an active span with no events).
  explicit DynamicWeightedScheduler(double default_weight = 1.0);

  std::size_t next(std::uint64_t tau, std::span<const std::size_t> active,
                   Xoshiro256pp& rng) override;
  void next_batch(std::uint64_t tau, std::span<const std::size_t> active,
                  Xoshiro256pp& rng, std::span<std::size_t> out) override;

  /// theta = min live weight / total live mass (weak fairness bound).
  double theta(std::size_t num_active) const override;

  void on_crash(std::size_t process) override;
  void on_membership_change(core::MembershipEvent event, std::size_t process,
                            double weight) override;

  std::string name() const override { return "dynamic-weighted"; }

  /// Forces a full table rebuild, restoring the exact two-draw RNG
  /// budget (no dead marks, no fresh list). O(live count).
  void compact();

  /// The scheduler's current sampling distribution over `query`
  /// (diagnostics and statistical-equivalence tests).
  std::vector<double> sampling_probabilities(
      std::span<const std::size_t> query) const {
    return table_.probabilities(query);
  }

 private:
  /// Rebuilds from `active` when the incremental state cannot be
  /// trusted (bootstrap, weight change on slot reuse), else folds
  /// accumulated churn when the table asks for it.
  void ensure_table(std::span<const std::size_t> active);
  double weight_of(std::size_t process) const {
    return process < weights_.size() ? weights_[process] : default_weight_;
  }

  core::AliasTable table_;
  std::vector<double> weights_;  ///< last announced weight per slot
  double default_weight_;
  bool stale_ = true;  ///< rebuild from the active span at the next draw
};

}  // namespace pwf::sched
