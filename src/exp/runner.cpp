#include "exp/runner.hpp"

#include <chrono>
#include <exception>
#include <sstream>
#include <stdexcept>

#include "exp/pool.hpp"

namespace pwf::exp {
namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// One (grid point, repetition) unit of work.
struct Job {
  std::size_t grid_index = 0;
  Trial trial;  // seed already replaced with the repetition seed
  Metrics metrics;
  double wall_ms = 0.0;
  std::exception_ptr error;
};

void run_job(const Experiment& experiment, const RunOptions& options,
             Job& job) {
  const auto start = Clock::now();
  try {
    job.metrics = experiment.run_trial(job.trial, options);
  } catch (...) {
    job.error = std::current_exception();
  }
  job.wall_ms = ms_since(start);
}

}  // namespace

TrialRunner::TrialRunner(RunOptions options) : options_(options) {
  options_.threads = resolve_threads(options_.threads);
  if (options_.trials == 0) options_.trials = 1;
}

ExperimentRun TrialRunner::run(const Experiment& experiment) const {
  const auto start = Clock::now();
  ExperimentRun out;
  out.experiment = &experiment;
  out.base_seed = options_.base_seed(experiment.default_seed());

  const std::vector<Trial> grid = experiment.trials(options_);
  const std::size_t reps = options_.trials;

  std::vector<Job> jobs;
  jobs.reserve(grid.size() * reps);
  for (std::size_t g = 0; g < grid.size(); ++g) {
    for (std::size_t r = 0; r < reps; ++r) {
      Job job;
      job.grid_index = g;
      job.trial = grid[g];
      if (r > 0) job.trial.seed = derive_seed(grid[g].seed, r);
      jobs.push_back(std::move(job));
    }
  }

  const std::size_t pool_size = experiment.exclusive() ? 1 : options_.threads;
  parallel_for(jobs.size(), pool_size,
               [&](std::size_t i) { run_job(experiment, options_, jobs[i]); });

  for (const Job& job : jobs) {
    if (job.error) std::rethrow_exception(job.error);
  }

  // Fold repetitions into grid-order results (key-wise mean). A metric
  // key must appear in every repetition of its grid point.
  out.results.resize(grid.size());
  for (std::size_t g = 0; g < grid.size(); ++g) {
    out.results[g].trial = grid[g];
    out.results[g].reps = reps;
  }
  for (const Job& job : jobs) {
    TrialResult& result = out.results[job.grid_index];
    result.wall_ms += job.wall_ms;
    for (const auto& [key, value] : job.metrics) {
      result.metrics[key] += value / static_cast<double>(reps);
    }
  }
  std::ostringstream body;
  out.verdict = experiment.analyze(out.results, options_, body);
  out.text = body.str();
  out.wall_ms = ms_since(start);
  return out;
}

}  // namespace pwf::exp
