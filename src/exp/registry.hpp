// Static experiment registry. Each experiment translation unit registers
// itself at static-initialization time via RegisterExperiment; the driver
// (and tests) enumerate by name. Registration order across translation
// units is unspecified, so every accessor returns name-sorted views.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "exp/experiment.hpp"

namespace pwf::exp {

class Registry {
 public:
  /// The process-wide registry (function-local static: safe during the
  /// static initialization of the registration objects).
  static Registry& instance();

  /// Takes ownership. Throws std::invalid_argument on duplicate names.
  void add(std::unique_ptr<Experiment> experiment);

  /// All experiments, sorted by name.
  std::vector<const Experiment*> all() const;

  /// Experiments whose name contains any of the comma-separated
  /// substrings in `filter` (empty filter = all), sorted by name.
  std::vector<const Experiment*> match(const std::string& filter) const;

  /// Exact-name lookup; nullptr if absent.
  const Experiment* find(const std::string& name) const;

  std::size_t size() const noexcept { return experiments_.size(); }

 private:
  std::vector<std::unique_ptr<Experiment>> experiments_;
};

/// File-scope helper: `static RegisterExperiment reg(make_thm4());`
struct RegisterExperiment {
  explicit RegisterExperiment(std::unique_ptr<Experiment> experiment);
};

}  // namespace pwf::exp
