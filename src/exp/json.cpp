#include "exp/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace pwf::exp {

std::string json_escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size() + 2);
  out.push_back('"');
  for (char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

std::string json_number(double value) {
  if (!std::isfinite(value)) return "null";
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, value);
  if (ec != std::errc{}) return "null";
  return std::string(buf, ptr);
}

JsonWriter& JsonWriter::begin_object() {
  separate();
  os_ << '{';
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  needs_comma_.pop_back();
  os_ << '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  separate();
  os_ << '[';
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  needs_comma_.pop_back();
  os_ << ']';
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& k) {
  separate();
  os_ << json_escape(k) << ':';
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  separate();
  os_ << json_escape(v);
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  separate();
  os_ << json_number(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  separate();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  separate();
  os_ << (v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::value(const Metrics& metrics) {
  begin_object();
  for (const auto& [k, v] : metrics) {
    key(k).value(v);
  }
  return end_object();
}

void JsonWriter::separate() {
  if (after_key_) {
    after_key_ = false;  // value directly follows its key, no comma
    return;
  }
  if (!needs_comma_.empty()) {
    if (needs_comma_.back()) os_ << ',';
    needs_comma_.back() = true;
  }
}

}  // namespace pwf::exp
