// The parallel trial runner. Fans an experiment's (config, seed) trials
// across a std::thread worker pool; because every trial owns its own
// Simulation/RNG and results are stored by grid index, the metric output
// is bit-identical for any pool size (only wall time changes).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "exp/experiment.hpp"

namespace pwf::exp {

/// One completed experiment: everything the sinks need.
struct ExperimentRun {
  const Experiment* experiment = nullptr;
  std::uint64_t base_seed = 0;   ///< effective (after --seed)
  std::vector<TrialResult> results;  ///< grid order
  Verdict verdict;
  std::string text;    ///< analyze()'s rendered body (tables, prose)
  double wall_ms = 0.0;
};

class TrialRunner {
 public:
  explicit TrialRunner(RunOptions options);

  /// Runs the full grid (options.trials repetitions per point) and then
  /// analyze(). Exclusive experiments run their trials sequentially on
  /// the calling thread. Trial exceptions propagate to the caller after
  /// the pool drains.
  ExperimentRun run(const Experiment& experiment) const;

  const RunOptions& options() const noexcept { return options_; }

 private:
  RunOptions options_;
};

}  // namespace pwf::exp
