#include "exp/registry.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/rng.hpp"

namespace pwf::exp {

std::uint64_t derive_seed(std::uint64_t base, std::uint64_t index) noexcept {
  // Decorrelate (base, index) pairs before the SplitMix64 output stage so
  // that nearby bases with nearby indices cannot collide.
  SplitMix64 sm(base ^ (0x9e3779b97f4a7c15ULL * (index + 1)));
  return sm();
}

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

void Registry::add(std::unique_ptr<Experiment> experiment) {
  if (!experiment) {
    throw std::invalid_argument("Registry: null experiment");
  }
  if (find(experiment->name()) != nullptr) {
    throw std::invalid_argument("Registry: duplicate experiment name '" +
                                experiment->name() + "'");
  }
  experiments_.push_back(std::move(experiment));
}

std::vector<const Experiment*> Registry::all() const {
  std::vector<const Experiment*> out;
  out.reserve(experiments_.size());
  for (const auto& e : experiments_) out.push_back(e.get());
  std::sort(out.begin(), out.end(),
            [](const Experiment* a, const Experiment* b) {
              return a->name() < b->name();
            });
  return out;
}

std::vector<const Experiment*> Registry::match(
    const std::string& filter) const {
  if (filter.empty()) return all();
  std::vector<std::string> needles;
  std::size_t pos = 0;
  while (pos <= filter.size()) {
    const std::size_t comma = filter.find(',', pos);
    const std::size_t end = comma == std::string::npos ? filter.size() : comma;
    if (end > pos) needles.push_back(filter.substr(pos, end - pos));
    pos = end + 1;
  }
  std::vector<const Experiment*> out;
  for (const Experiment* e : all()) {
    for (const std::string& needle : needles) {
      if (e->name().find(needle) != std::string::npos) {
        out.push_back(e);
        break;
      }
    }
  }
  return out;
}

const Experiment* Registry::find(const std::string& name) const {
  for (const auto& e : experiments_) {
    if (e->name() == name) return e.get();
  }
  return nullptr;
}

RegisterExperiment::RegisterExperiment(
    std::unique_ptr<Experiment> experiment) {
  Registry::instance().add(std::move(experiment));
}

}  // namespace pwf::exp
