// The experiment layer: every paper artifact (figure, theorem, lemma,
// ablation) is an Experiment — a named parameter grid plus a pure trial
// function returning a metric map — instead of a hand-rolled main().
//
// Contract:
//   * trials()   — expands the parameter grid (honouring quick mode) and
//     assigns every trial its deterministic seed;
//   * run_trial() — a *pure* function of (trial, options): it owns all of
//     its state (typically one Simulation), never touches globals or
//     cout, and is therefore safe to run from any thread. All randomness
//     must flow from trial.seed;
//   * analyze()  — sequential; receives the trial results in grid order
//     (independent of execution order), renders the paper-vs-measured
//     tables to the stream, and returns the SHAPE verdict.
//
// Experiments whose trials measure the host itself (hardware schedule
// recordings, wall-clock throughput) declare exclusive() and are run
// one trial at a time with the worker pool idle.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace pwf::exp {

/// Ordered, deterministic metric map. Values must be finite; every key's
/// value ends up verbatim in BENCH_results.json.
using Metrics = std::map<std::string, double>;

/// One point of an experiment's parameter grid.
struct Trial {
  std::string id;     ///< human-readable, e.g. "q=4 s=1 n=32"
  Metrics params;     ///< the numeric parameters behind `id`
  std::uint64_t seed = 0;  ///< deterministic per-trial seed
};

/// Options shared by every experiment in a pwf_bench run.
struct RunOptions {
  std::uint64_t seed_override = 0;  ///< 0 = use each experiment's default
  bool quick = false;               ///< CI-sized grids / horizons
  std::size_t threads = 1;          ///< worker pool size
  std::size_t trials = 1;           ///< repetitions per grid point
  /// Reclamation policy filter for experiments that sweep pwf::mem
  /// policies (--reclaim): "epoch", "hazard", "pool", or empty = sweep
  /// all three. Experiments without a reclamation axis ignore it.
  std::string reclaim;
  /// Synchronization-strategy filter for experiments that sweep the
  /// skip-list strategy matrix (--strategy): "coarse", "optimistic",
  /// "lockfree", or empty = sweep all three. Experiments without a
  /// strategy axis ignore it.
  std::string strategy;
  /// Capture-clock filter for experiments that sweep the hardware
  /// capture clock (--clock): "ticket", "tsc", or empty = sweep both.
  /// Experiments without a clock axis ignore it.
  std::string clock;

  /// The effective base seed for an experiment with the given default.
  std::uint64_t base_seed(std::uint64_t experiment_default) const noexcept {
    return seed_override ? seed_override : experiment_default;
  }

  /// Scales a simulation horizon for quick mode. `full` is the
  /// publication-quality step count; quick mode divides by 10 but never
  /// goes below `floor` (verdict thresholds need a minimum of statistics).
  std::uint64_t horizon(std::uint64_t full,
                        std::uint64_t floor = 50'000) const noexcept {
    if (!quick) return full;
    const std::uint64_t scaled = full / 10;
    return scaled < floor ? (full < floor ? full : floor) : scaled;
  }
};

/// Result of one grid point: metrics averaged over the run's repetitions
/// (rep r uses seed derive_seed(trial.seed, r); rep 0 uses trial.seed).
struct TrialResult {
  Trial trial;
  Metrics metrics;      ///< mean over repetitions, key-wise
  std::size_t reps = 1;
  double wall_ms = 0.0;  ///< host-dependent; excluded from determinism
};

/// The SHAPE verdict plus headline numbers for the JSON record.
struct Verdict {
  bool reproduced = false;
  std::string detail;   ///< one line, printed after "SHAPE ..."
  Metrics summary;      ///< experiment-level derived metrics (fits, ratios)
};

/// A registered paper experiment. Implementations are stateless: all
/// mutable state lives inside run_trial's frame.
class Experiment {
 public:
  virtual ~Experiment() = default;

  /// Stable identifier; `pwf_bench --filter` matches substrings of this.
  virtual std::string name() const = 0;
  /// The paper artifact regenerated, e.g. "Theorem 4: ...".
  virtual std::string artifact() const = 0;
  /// The qualitative claim being checked.
  virtual std::string claim() const = 0;
  /// Default base seed (printed; overridden by --seed).
  virtual std::uint64_t default_seed() const = 0;
  /// True if trials measure the host (hardware threads, wall clock) and
  /// must run alone; such experiments are also host-dependent, i.e. not
  /// covered by the bit-identical determinism guarantee.
  virtual bool exclusive() const { return false; }

  virtual std::vector<Trial> trials(const RunOptions& options) const = 0;
  virtual Metrics run_trial(const Trial& trial,
                            const RunOptions& options) const = 0;
  virtual Verdict analyze(const std::vector<TrialResult>& results,
                          const RunOptions& options, std::ostream& os) const = 0;
};

/// SplitMix64-derived child seed: used for repetition seeds and anywhere
/// an experiment needs several independent streams from one base seed.
std::uint64_t derive_seed(std::uint64_t base, std::uint64_t index) noexcept;

/// Convenience for analyze() code reading 0/1 flags that become
/// fractions when averaged over repetitions.
inline bool flag(double mean_of_indicator) noexcept {
  return mean_of_indicator > 0.5;
}

}  // namespace pwf::exp
