// Minimal JSON emitter for BENCH_results.json. No external dependency;
// numbers are serialized with std::to_chars (shortest round-trip form),
// so a given metric value always produces the same bytes — the property
// the cross-thread-count determinism test diffs on.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "exp/experiment.hpp"

namespace pwf::exp {

/// JSON string literal (quotes + escapes control characters, '"', '\\').
std::string json_escape(const std::string& raw);

/// Shortest round-trip decimal form of a double. Non-finite values map to
/// null (metrics are required to be finite; this is belt-and-braces for
/// hand-written summaries).
std::string json_number(double value);

/// Streaming writer with just enough structure for the results file:
/// explicit begin/end for objects and arrays, automatic commas.
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Starts a "key": inside an object; follow with a value or container.
  JsonWriter& key(const std::string& k);

  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v) { return value(std::string(v)); }
  JsonWriter& value(double v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(bool v);

  /// Whole metric map as an object value.
  JsonWriter& value(const Metrics& metrics);

 private:
  void separate();  ///< emits ',' between siblings, tracks nesting

  std::ostream& os_;
  // Per-depth "has the current container already emitted a child?".
  std::vector<bool> needs_comma_{false};
  bool after_key_ = false;
};

}  // namespace pwf::exp
