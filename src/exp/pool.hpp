// The shared worker pool primitive behind every fan-out in the repo: the
// TrialRunner's (config, seed) grid and the linearizability checker's
// partition shards both go through parallel_for, so there is exactly one
// place that owns thread creation, work distribution, and exception
// propagation.
//
// Determinism contract: parallel_for only changes *when* fn(i) runs,
// never what it computes — callers index results by i, so output is
// bit-identical for any thread count. Exceptions are captured per index
// and the lowest-index one is rethrown after the pool drains (matching
// the sequential execution a caller would otherwise have written).
#pragma once

#include <cstddef>
#include <functional>

namespace pwf::exp {

/// Runs fn(0) .. fn(jobs - 1), fanned over up to `threads` workers
/// (threads <= 1 runs inline on the calling thread; 0 means "use the
/// hardware concurrency"). Blocks until every job finished. If any jobs
/// threw, the lowest-index exception is rethrown after the drain.
void parallel_for(std::size_t jobs, std::size_t threads,
                  const std::function<void(std::size_t)>& fn);

/// The pool width "0 = hardware" convention, resolved: returns
/// `requested` unless it is 0, then std::thread::hardware_concurrency()
/// (minimum 1).
std::size_t resolve_threads(std::size_t requested) noexcept;

}  // namespace pwf::exp
