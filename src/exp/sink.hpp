// Result sinks: the uniform text rendering every experiment shares
// (header / seed / SHAPE verdict — formerly bench/bench_common.hpp) and
// the structured JSON writer behind `pwf_bench --json`.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "exp/runner.hpp"

namespace pwf::exp {

/// Renders one completed experiment in the classic bench format:
/// banner, artifact, claim, seed, analyze() body, SHAPE verdict.
void write_text(std::ostream& os, const ExperimentRun& run);

/// Collects completed experiments and serializes BENCH_results.json.
class ResultSink {
 public:
  void add(ExperimentRun run);

  const std::vector<ExperimentRun>& runs() const noexcept { return runs_; }
  bool all_reproduced() const noexcept;
  std::size_t num_reproduced() const noexcept;

  /// Schema (pwf-bench-results/1):
  /// {
  ///   "schema": "pwf-bench-results/1",
  ///   "options": {"seed_override", "quick", "threads", "trials"},
  ///   "all_reproduced": bool,
  ///   "experiments": [{
  ///     "name", "artifact", "claim", "seed", "exclusive",
  ///     "reproduced", "verdict", "summary": {metric: value},
  ///     "wall_ms",
  ///     "trials": [{"id", "params": {...}, "seed", "reps",
  ///                 "metrics": {...}, "wall_ms"}]
  ///   }]
  /// }
  /// Metric maps are deterministic for a fixed seed regardless of
  /// --threads; "wall_ms" fields and exclusive (hardware) experiments'
  /// metrics are host-dependent.
  void write_json(std::ostream& os, const RunOptions& options) const;

  /// The metric-bearing fragment only (trial metrics + summaries), used
  /// by the determinism tests to diff runs across thread counts.
  std::string metrics_fingerprint() const;

 private:
  std::vector<ExperimentRun> runs_;
};

}  // namespace pwf::exp
