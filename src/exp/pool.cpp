#include "exp/pool.hpp"

#include <atomic>
#include <exception>
#include <thread>
#include <vector>

namespace pwf::exp {

std::size_t resolve_threads(std::size_t requested) noexcept {
  if (requested) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw ? hw : 1;
}

void parallel_for(std::size_t jobs, std::size_t threads,
                  const std::function<void(std::size_t)>& fn) {
  if (jobs == 0) return;
  const std::size_t pool_size =
      std::min(resolve_threads(threads), jobs);

  if (pool_size <= 1) {
    for (std::size_t i = 0; i < jobs; ++i) fn(i);
    return;
  }

  std::vector<std::exception_ptr> errors(jobs);
  std::atomic<std::size_t> next{0};
  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= jobs) return;
      try {
        fn(i);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(pool_size);
  for (std::size_t t = 0; t < pool_size; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();

  for (const std::exception_ptr& error : errors) {
    if (error) std::rethrow_exception(error);
  }
}

}  // namespace pwf::exp
