#include "exp/sink.hpp"

#include <ostream>
#include <sstream>

#include "exp/json.hpp"

namespace pwf::exp {

void write_text(std::ostream& os, const ExperimentRun& run) {
  const Experiment& e = *run.experiment;
  os << "================================================================\n"
     << e.artifact() << '\n'
     << e.claim() << '\n'
     << "================================================================\n"
     << "(experiment = " << e.name() << ", seed = " << run.base_seed << ")\n";
  os << run.text;
  os << "\nSHAPE " << (run.verdict.reproduced ? "REPRODUCED" : "NOT REPRODUCED")
     << ": " << run.verdict.detail << "\n\n";
}

void ResultSink::add(ExperimentRun run) { runs_.push_back(std::move(run)); }

bool ResultSink::all_reproduced() const noexcept {
  for (const ExperimentRun& run : runs_) {
    if (!run.verdict.reproduced) return false;
  }
  return true;
}

std::size_t ResultSink::num_reproduced() const noexcept {
  std::size_t count = 0;
  for (const ExperimentRun& run : runs_) {
    if (run.verdict.reproduced) ++count;
  }
  return count;
}

void ResultSink::write_json(std::ostream& os,
                            const RunOptions& options) const {
  JsonWriter w(os);
  w.begin_object();
  w.key("schema").value("pwf-bench-results/1");
  w.key("options").begin_object();
  w.key("seed_override").value(options.seed_override);
  w.key("quick").value(options.quick);
  w.key("threads").value(static_cast<std::uint64_t>(options.threads));
  w.key("trials").value(static_cast<std::uint64_t>(options.trials));
  w.end_object();
  w.key("all_reproduced").value(all_reproduced());
  w.key("experiments").begin_array();
  for (const ExperimentRun& run : runs_) {
    const Experiment& e = *run.experiment;
    w.begin_object();
    w.key("name").value(e.name());
    w.key("artifact").value(e.artifact());
    w.key("claim").value(e.claim());
    w.key("seed").value(run.base_seed);
    w.key("exclusive").value(e.exclusive());
    w.key("reproduced").value(run.verdict.reproduced);
    w.key("verdict").value(run.verdict.detail);
    w.key("summary").value(run.verdict.summary);
    w.key("wall_ms").value(run.wall_ms);
    w.key("trials").begin_array();
    for (const TrialResult& result : run.results) {
      w.begin_object();
      w.key("id").value(result.trial.id);
      w.key("params").value(result.trial.params);
      w.key("seed").value(result.trial.seed);
      w.key("reps").value(static_cast<std::uint64_t>(result.reps));
      w.key("metrics").value(result.metrics);
      w.key("wall_ms").value(result.wall_ms);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << '\n';
}

std::string ResultSink::metrics_fingerprint() const {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  for (const ExperimentRun& run : runs_) {
    w.key(run.experiment->name()).begin_object();
    w.key("seed").value(run.base_seed);
    w.key("reproduced").value(run.verdict.reproduced);
    w.key("summary").value(run.verdict.summary);
    w.key("trials").begin_array();
    for (const TrialResult& result : run.results) {
      w.begin_object();
      w.key("id").value(result.trial.id);
      w.key("seed").value(result.trial.seed);
      w.key("metrics").value(result.metrics);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();
  return os.str();
}

}  // namespace pwf::exp
