// Simulated shared memory (paper, Section 2.1): a fixed array of registers
// supporting atomic read, write, compare-and-swap, and the "augmented" CAS
// of Section 7 that returns the current value of the register. Every call
// counts as exactly one shared-memory step, the paper's unit of cost.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pwf::core {

using Value = std::uint64_t;

/// The register array a simulation's step machines operate on. Not
/// thread-safe: the simulation is a sequential discrete-event model in
/// which one process steps per time unit, which is exactly the paper's
/// atomicity assumption.
class SharedMemory {
 public:
  explicit SharedMemory(std::size_t num_registers, Value initial = 0);

  std::size_t num_registers() const noexcept { return regs_.size(); }

  Value read(std::size_t r);
  void write(std::size_t r, Value v);

  /// Classic CAS: if regs[r] == expected, set it to desired and return
  /// true; otherwise return false.
  bool cas(std::size_t r, Value expected, Value desired);

  /// Augmented CAS (paper, Section 7): performs the same update but returns
  /// the value the register held *before* the operation, so a failed caller
  /// learns the current value. (On success the returned value equals
  /// `expected`.)
  Value cas_fetch(std::size_t r, Value expected, Value desired);

  /// Total shared-memory operations performed ("system steps").
  std::uint64_t ops() const noexcept { return ops_; }

  /// Peek without counting a step (for assertions and metrics only).
  Value peek(std::size_t r) const { return regs_.at(r); }

  /// Set a register without counting a step (for pre-execution
  /// initialization of data-structure invariants, e.g. a queue's dummy
  /// node; never call mid-simulation).
  void poke(std::size_t r, Value v) { regs_.at(r) = v; }

 private:
  std::vector<Value> regs_;
  std::uint64_t ops_ = 0;
};

}  // namespace pwf::core
