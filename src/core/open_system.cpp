#include "core/open_system.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace pwf::core {

double OpenLatencyReport::completion_rate() const {
  return steps ? static_cast<double>(completions) / static_cast<double>(steps)
               : 0.0;
}

double OpenLatencyReport::mean_op_latency() const {
  return completions ? static_cast<double>(op_latency_sum) /
                           static_cast<double>(completions)
                     : 0.0;
}

double OpenLatencyReport::mean_queue_length() const {
  return queue_time ? static_cast<double>(queue_integral) /
                          static_cast<double>(queue_time)
                    : 0.0;
}

void OpenLatencyReport::merge(const OpenLatencyReport& other) {
  steps += other.steps;
  completions += other.completions;
  system_gaps.merge(other.system_gaps);
  op_latency.merge(other.op_latency);
  op_latency_sum += other.op_latency_sum;
  queue_time += other.queue_time;
  queue_integral += other.queue_integral;
  queue_peak = std::max(queue_peak, other.queue_peak);
  queue_curve.insert(queue_curve.end(), other.queue_curve.begin(),
                     other.queue_curve.end());
  arrivals += other.arrivals;
  departures += other.departures;
  crashes += other.crashes;
  restarts += other.restarts;
  shed += other.shed;
  abandoned += other.abandoned;
}

std::uint64_t OpenLatencyReport::fingerprint() const noexcept {
  std::uint64_t h = 1469598103934665603ULL;  // FNV offset basis
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= 1099511628211ULL;
    }
  };
  mix(steps);
  mix(completions);
  mix(system_gaps.count());
  mix(std::bit_cast<std::uint64_t>(system_gaps.mean()));
  mix(op_latency.fingerprint());
  mix(op_latency_sum);
  mix(queue_time);
  mix(queue_integral);
  mix(queue_peak);
  mix(arrivals);
  mix(departures);
  mix(crashes);
  mix(restarts);
  mix(shed);
  mix(abandoned);
  for (const auto& [tau, live] : queue_curve) {
    mix(tau);
    mix(live);
  }
  return h;
}

std::size_t OpenSimulation::registers_required(CompactKind kind, std::size_t s,
                                               std::size_t capacity) {
  switch (kind) {
    case CompactKind::kScu:
      return s + capacity;  // scan registers + per-slot scratch
    case CompactKind::kParallel:
    case CompactKind::kFetchInc:
      return 1;
  }
  return 1;
}

OpenSimulation::OpenSimulation(std::unique_ptr<Scheduler> scheduler,
                               Options options)
    : memory_(registers_required(options.kind, options.s, options.capacity),
              0),
      table_(options.capacity, options.order),
      scheduler_(std::move(scheduler)),
      arrivals_(std::move(options.arrivals)),
      rng_(options.seed),
      kind_(options.kind),
      q_(options.q),
      s_(options.s),
      weight_(options.process_weight),
      depart_rate_(options.depart_rate),
      crash_rate_(options.crash_rate),
      restart_prob_(options.restart_prob),
      restart_delay_rate_(options.restart_delay_rate),
      queue_sample_every_(options.queue_sample_every) {
  if (!scheduler_) throw std::invalid_argument("OpenSimulation: null scheduler");
  if (kind_ == CompactKind::kScu && s_ < 1) {
    throw std::invalid_argument("OpenSimulation: SCU needs s >= 1");
  }
  if (kind_ == CompactKind::kParallel && q_ < 1) {
    throw std::invalid_argument("OpenSimulation: parallel code needs q >= 1");
  }
  if (options.initial_n > options.capacity) {
    throw std::invalid_argument("OpenSimulation: initial_n > capacity");
  }
  if (!(weight_ > 0.0)) {
    throw std::invalid_argument("OpenSimulation: process_weight must be > 0");
  }
  {
    ScuState st;
    scu_reset(st, q_);
    initial_phase_ = st.phase;  // kScan when q == 0, kPreamble otherwise
  }
  for (std::size_t i = 0; i < options.initial_n; ++i) {
    admit_one(/*from_arrival_stream=*/false);
  }
  if (arrivals_) {
    const std::uint64_t gap = arrivals_->next_interarrival(0, rng_);
    if (gap != kNeverStep) {
      push_event(gap, Event::kArrivalEv, ProcessTable::kNone, 0);
    }
  }
}

void OpenSimulation::push_event(std::uint64_t time, Event::Kind kind,
                                std::size_t slot, std::uint32_t gen) {
  events_.push(Event{time, seq_++, kind, slot, gen});
}

void OpenSimulation::schedule_crash(std::uint64_t tau, std::size_t slot) {
  if (slot >= table_.capacity()) {
    throw std::out_of_range("schedule_crash: slot out of range");
  }
  if (tau < now_) {
    throw std::invalid_argument("schedule_crash: time already passed");
  }
  push_event(tau, Event::kCrashEv, slot, table_.generation[slot]);
}

void OpenSimulation::admit_one(bool from_arrival_stream) {
  const std::size_t slot = table_.admit(weight_, now_);
  if (slot == ProcessTable::kNone) {
    ++report_.shed;  // load shedding: the table is full
    return;
  }
  table_.phase[slot] = initial_phase_;
  if (from_arrival_stream) ++report_.arrivals;
  report_.queue_peak = std::max<std::uint64_t>(report_.queue_peak,
                                               table_.live_count());
  scheduler_->on_membership_change(MembershipEvent::kArrive, slot, weight_);
  schedule_leave(slot);
}

void OpenSimulation::schedule_leave(std::size_t slot) {
  // Draw both leave clocks (departure first — fixed order pins the RNG
  // stream) and schedule only the earlier: exactly one pending leave
  // event per tenant, so no stale-event guards are needed in the heap.
  const std::uint64_t depart = geometric_steps(depart_rate_, rng_);
  const std::uint64_t crash = geometric_steps(crash_rate_, rng_);
  const std::uint64_t soonest = std::min(depart, crash);
  if (soonest == kNeverStep || kNeverStep - now_ <= soonest) return;
  push_event(now_ + soonest,
             crash <= depart ? Event::kCrashEv : Event::kDepartEv, slot,
             table_.generation[slot]);
}

void OpenSimulation::leave_accounting(std::size_t slot) {
  // An operation in flight when its process leaves is abandoned — it
  // must not linger as pending forever in any fairness accounting.
  if (table_.op_steps[slot] > 0) ++report_.abandoned;
}

void OpenSimulation::process_due_events() {
  while (!events_.empty() && events_.top().time <= now_) {
    const Event ev = events_.top();
    events_.pop();
    switch (ev.kind) {
      case Event::kArrivalEv: {
        admit_one(/*from_arrival_stream=*/true);
        const std::uint64_t gap = arrivals_->next_interarrival(now_, rng_);
        if (gap != kNeverStep && kNeverStep - now_ > gap) {
          push_event(now_ + gap, Event::kArrivalEv, ProcessTable::kNone, 0);
        }
        break;
      }
      case Event::kDepartEv: {
        // A planned crash (schedule_crash) may have removed this tenant
        // while its organic leave event was still pending.
        if (!table_.alive(ev.slot) ||
            table_.generation[ev.slot] != ev.generation) {
          break;
        }
        leave_accounting(ev.slot);
        ++report_.departures;
        table_.retire(ev.slot);
        scheduler_->on_membership_change(MembershipEvent::kDepart, ev.slot,
                                         table_.weight[ev.slot]);
        break;
      }
      case Event::kCrashEv: {
        // Planned crashes (schedule_crash) can race the tenant's own
        // leave event; skip if that tenant is already gone.
        if (!table_.alive(ev.slot) ||
            table_.generation[ev.slot] != ev.generation) {
          break;
        }
        leave_accounting(ev.slot);
        ++report_.crashes;
        const bool restart =
            restart_prob_ > 0.0 && rng_.bernoulli(restart_prob_);
        if (restart) {
          table_.suspend(ev.slot);  // slot reserved for the revive
          const std::uint64_t delay =
              restart_delay_rate_ > 0.0
                  ? geometric_steps(restart_delay_rate_, rng_)
                  : 1;
          if (delay != kNeverStep && kNeverStep - now_ > delay) {
            push_event(now_ + delay, Event::kRestartEv, ev.slot,
                       table_.generation[ev.slot]);
          } else {
            table_.retire(ev.slot);  // delay overflowed: never restarts
          }
        } else {
          table_.retire(ev.slot);
        }
        scheduler_->on_membership_change(MembershipEvent::kCrash, ev.slot,
                                         table_.weight[ev.slot]);
        break;
      }
      case Event::kRestartEv: {
        table_.revive(ev.slot, now_);
        table_.phase[ev.slot] = initial_phase_;
        ++report_.restarts;
        report_.queue_peak = std::max<std::uint64_t>(report_.queue_peak,
                                                     table_.live_count());
        scheduler_->on_membership_change(MembershipEvent::kRestart, ev.slot,
                                         table_.weight[ev.slot]);
        schedule_leave(ev.slot);
        break;
      }
    }
  }
}

bool OpenSimulation::step_slot(std::size_t slot) {
  switch (kind_) {
    case CompactKind::kParallel: {
      ParallelState st{table_.pstep[slot]};
      const bool done = parallel_step(st, q_, memory_);
      table_.pstep[slot] = st.counter;
      return done;
    }
    case CompactKind::kScu: {
      ScuState st{table_.phase[slot], table_.pstep[slot], table_.view[slot],
                  table_.attempts[slot]};
      const bool done =
          scu_step(st, slot, table_.capacity(), q_, s_, memory_);
      table_.phase[slot] = st.phase;
      table_.pstep[slot] = st.phase_step;
      table_.view[slot] = st.view;
      table_.attempts[slot] = st.attempts;
      return done;
    }
    case CompactKind::kFetchInc: {
      FetchIncState st{table_.view[slot]};
      Value before = 0;
      const bool done = fetch_inc_step(st, memory_, before);
      table_.view[slot] = st.v;
      return done;
    }
  }
  return false;  // unreachable
}

void OpenSimulation::account_time(std::uint64_t dt) {
  const std::uint64_t live = table_.live_count();
  report_.queue_time += dt;
  report_.queue_integral += live * dt;
  if (queue_sample_every_ != 0) {
    while (next_queue_sample_ < now_ + dt) {
      report_.queue_curve.emplace_back(next_queue_sample_, live);
      next_queue_sample_ += queue_sample_every_;
    }
  }
}

template <bool WithObserver>
void OpenSimulation::run_segment(std::uint64_t count) {
  Scheduler& sched = *scheduler_;
  const std::span<const std::size_t> live = table_.live();
  if (!sched.batch_safe()) {
    for (std::uint64_t i = 0; i < count; ++i) {
      const std::size_t p = sched.next(now_, live, rng_);
      ++now_;
      const bool completed = step_slot(p);
      ++table_.steps[p];
      ++table_.op_steps[p];
      if (completed) {
        ++report_.completions;
        ++table_.completions[p];
        report_.system_gaps.add(static_cast<double>(now_ - last_completion_));
        last_completion_ = now_;
        const std::uint64_t lat = now_ - table_.op_start[p];
        report_.op_latency.add(lat);
        report_.op_latency_sum += lat;
        table_.op_start[p] = now_;
        table_.op_steps[p] = 0;
      }
      if constexpr (WithObserver) observer_->on_step(now_, p, completed);
    }
    report_.steps += count;
    return;
  }
  if (draw_buf_.size() < kDrawBatch) {
    draw_buf_.resize(std::min<std::uint64_t>(count, kDrawBatch));
  }
  std::uint64_t done = 0;
  while (done < count) {
    const std::size_t chunk = static_cast<std::size_t>(
        std::min<std::uint64_t>(count - done, kDrawBatch));
    const std::span<std::size_t> draws(draw_buf_.data(), chunk);
    sched.next_batch(now_, live, rng_, draws);
    for (std::size_t i = 0; i < chunk; ++i) {
      const std::size_t p = draws[i];
      ++now_;
      const bool completed = step_slot(p);
      ++table_.steps[p];
      ++table_.op_steps[p];
      if (completed) {
        ++report_.completions;
        ++table_.completions[p];
        report_.system_gaps.add(static_cast<double>(now_ - last_completion_));
        last_completion_ = now_;
        const std::uint64_t lat = now_ - table_.op_start[p];
        report_.op_latency.add(lat);
        report_.op_latency_sum += lat;
        table_.op_start[p] = now_;
        table_.op_steps[p] = 0;
      }
      if constexpr (WithObserver) observer_->on_step(now_, p, completed);
    }
    done += chunk;
  }
  report_.steps += count;
}

void OpenSimulation::run(std::uint64_t steps) {
  const std::uint64_t end = now_ + steps;
  while (now_ < end) {
    process_due_events();
    std::uint64_t segment = end - now_;
    if (!events_.empty()) {
      // All due events are processed, so the top is strictly future.
      segment = std::min(segment, events_.top().time - now_);
    }
    account_time(segment);
    if (table_.live_count() == 0) {
      // Idle: time passes (queue curve records zero) with no steps.
      now_ += segment;
      continue;
    }
    if (observer_ != nullptr) {
      run_segment<true>(segment);
    } else {
      run_segment<false>(segment);
    }
  }
}

}  // namespace pwf::core
