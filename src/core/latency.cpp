#include "core/latency.hpp"

#include <algorithm>

namespace pwf::core {

LatencyDistributionObserver::LatencyDistributionObserver(std::size_t n,
                                                         double hist_hi,
                                                         std::size_t buckets)
    : last_completion_(n, 0), histogram_(0.0, hist_hi, buckets) {}

void LatencyDistributionObserver::on_step(std::uint64_t tau,
                                          std::size_t process,
                                          bool completed) {
  if (!completed) return;
  const std::uint64_t latency = tau - last_completion_.at(process);
  last_completion_[process] = tau;
  const auto as_double = static_cast<double>(latency);
  histogram_.add(as_double);
  stats_.add(as_double);
  raw_.push_back(as_double);
  max_latency_ = std::max(max_latency_, latency);
}

double LatencyDistributionObserver::tail_fraction(double threshold) const {
  if (raw_.empty()) return 0.0;
  const auto over = static_cast<double>(
      std::count_if(raw_.begin(), raw_.end(),
                    [threshold](double x) { return x > threshold; }));
  return over / static_cast<double>(raw_.size());
}

}  // namespace pwf::core
