#include "core/sim_queue.hpp"

#include <memory>
#include <stdexcept>

namespace pwf::core {

SimQueue::SimQueue(std::size_t pid, std::size_t n,
                   std::size_t slots_per_process)
    : pid_(pid), n_(n), phase_(Phase::kEnqWriteValue) {
  if (pid >= n) throw std::invalid_argument("SimQueue: pid >= n");
  if (slots_per_process == 0) {
    throw std::invalid_argument("SimQueue: need at least one slot");
  }
  pool_.reserve(slots_per_process);
  // Slot 1 is the shared initial dummy; private slots start at 2.
  for (std::size_t s = 0; s < slots_per_process; ++s) {
    pool_.push_back({2 + pid * slots_per_process + s, /*gen=*/0});
  }
  begin_op();
}

std::size_t SimQueue::registers_required(std::size_t n,
                                         std::size_t slots_per_process) {
  const std::size_t slots = 1 + n * slots_per_process;
  return 2 * (slots + 1);
}

std::vector<std::pair<std::size_t, Value>> SimQueue::initial_values() {
  // head = tail = (tag 0, dummy slot 1).
  return {{0, pack(0, 1)}, {1, pack(0, 1)}};
}

StepMachineFactory SimQueue::factory(std::size_t slots_per_process) {
  return [slots_per_process](std::size_t pid, std::size_t n) {
    return std::make_unique<SimQueue>(pid, n, slots_per_process);
  };
}

void SimQueue::begin_op() {
  const bool enqueue_turn = op_counter_ % 2 == 0;
  if (enqueue_turn && !pool_.empty()) {
    my_slot_ = pool_.back().first;
    my_gen_ = pool_.back().second + 1;  // new usage epoch for this slot
    phase_ = Phase::kEnqWriteValue;
  } else {
    phase_ = Phase::kDeqReadHead;
  }
}

bool SimQueue::step(SharedMemory& mem) {
  if (trace_ && !invoked_) {
    // First shared-memory step of the in-flight op: log the invoke.
    if (phase_ == Phase::kEnqWriteValue) {
      const Value value =
          (static_cast<Value>(pid_ + 1) << 32) | static_cast<Value>(enqueues_);
      trace_->on_invoke(pid_, OpCode::kEnqueue, true, value);
    } else {
      trace_->on_invoke(pid_, OpCode::kDequeue, false, 0);
    }
    invoked_ = true;
  }
  switch (phase_) {
    // ---- enqueue --------------------------------------------------------
    case Phase::kEnqWriteValue: {
      const Value value =
          (static_cast<Value>(pid_ + 1) << 32) | static_cast<Value>(enqueues_);
      mem.write(value_reg(my_slot_), value);
      phase_ = Phase::kEnqResetNext;
      return false;
    }
    case Phase::kEnqResetNext: {
      // Bump the generation: any stale CAS against the old epoch fails.
      mem.write(next_reg(my_slot_), pack(my_gen_, 0));
      phase_ = Phase::kEnqReadTail;
      return false;
    }
    case Phase::kEnqReadTail: {
      tail_snapshot_ = mem.read(1);
      phase_ = Phase::kEnqReadNext;
      return false;
    }
    case Phase::kEnqReadNext: {
      next_snapshot_ = mem.read(next_reg(lo_of(tail_snapshot_)));
      phase_ = Phase::kEnqRecheckTail;
      return false;
    }
    case Phase::kEnqRecheckTail: {
      // The Michael-Scott consistency check: the next field we just read
      // is only meaningful if the tail register has not moved in between.
      // Together with the generation stamp on next this makes slot reuse
      // safe: a slot recycled *before* the next-read moves the (tagged)
      // tail and fails this check; one recycled *after* bumps the
      // generation and fails the kEnqCasNext below.
      const Value tail_now = mem.read(1);
      if (tail_now != tail_snapshot_) {
        tail_snapshot_ = tail_now;
        phase_ = Phase::kEnqReadNext;
        return false;
      }
      phase_ = lo_of(next_snapshot_) != 0 ? Phase::kEnqHelpTail
                                          : Phase::kEnqCasNext;
      return false;
    }
    case Phase::kEnqHelpTail: {
      // Tail is lagging: help swing it to its successor, then retry.
      mem.cas(1, tail_snapshot_,
              pack(hi_of(tail_snapshot_) + 1, lo_of(next_snapshot_)));
      phase_ = Phase::kEnqReadTail;
      return false;
    }
    case Phase::kEnqCasNext: {
      // Link my node after the observed tail. Expected value carries the
      // generation we read, so reused slots cannot be confused.
      if (mem.cas(next_reg(lo_of(tail_snapshot_)), next_snapshot_,
                  pack(hi_of(next_snapshot_), my_slot_))) {
        phase_ = Phase::kEnqSwingTail;
      } else {
        phase_ = Phase::kEnqReadTail;
      }
      return false;
    }
    case Phase::kEnqSwingTail: {
      mem.cas(1, tail_snapshot_, pack(hi_of(tail_snapshot_) + 1, my_slot_));
      pool_.pop_back();  // the slot now belongs to the queue
      ++enqueues_;
      ++op_counter_;
      if (trace_) trace_->on_response(pid_, OpCode::kEnqueue, false, 0);
      invoked_ = false;
      begin_op();
      return true;  // linearized at the successful kEnqCasNext
    }
    // ---- dequeue --------------------------------------------------------
    case Phase::kDeqReadHead: {
      head_snapshot_ = mem.read(0);
      phase_ = Phase::kDeqReadTail;
      return false;
    }
    case Phase::kDeqReadTail: {
      tail_snapshot_ = mem.read(1);
      phase_ = Phase::kDeqReadNext;
      return false;
    }
    case Phase::kDeqReadNext: {
      next_snapshot_ = mem.read(next_reg(lo_of(head_snapshot_)));
      if (lo_of(next_snapshot_) == 0) {
        phase_ = Phase::kDeqCheckEmpty;
      } else if (lo_of(head_snapshot_) == lo_of(tail_snapshot_)) {
        phase_ = Phase::kDeqHelpTail;
      } else {
        phase_ = Phase::kDeqReadValue;
      }
      return false;
    }
    case Phase::kDeqCheckEmpty: {
      // next was null: if head is unchanged, the queue was empty when we
      // read next (nothing was dequeued in between), so the operation
      // linearizes there as an empty dequeue.
      const Value head_now = mem.read(0);
      if (head_now == head_snapshot_) {
        ++empty_dequeues_;
        ++op_counter_;
        if (trace_) trace_->on_response(pid_, OpCode::kDequeue, false, 0);
        invoked_ = false;
        begin_op();
        return true;
      }
      head_snapshot_ = head_now;
      phase_ = Phase::kDeqReadTail;
      return false;
    }
    case Phase::kDeqHelpTail: {
      mem.cas(1, tail_snapshot_,
              pack(hi_of(tail_snapshot_) + 1, lo_of(next_snapshot_)));
      phase_ = Phase::kDeqReadHead;
      return false;
    }
    case Phase::kDeqReadValue: {
      deq_value_ = mem.read(value_reg(lo_of(next_snapshot_)));
      phase_ = Phase::kDeqCasHead;
      return false;
    }
    case Phase::kDeqCasHead: {
      if (mem.cas(0, head_snapshot_,
                  pack(hi_of(head_snapshot_) + 1, lo_of(next_snapshot_)))) {
        // The old dummy (previous head slot) is ours now; remember the
        // generation its next field currently carries so our reuse bumps it.
        pool_.push_back({lo_of(head_snapshot_), hi_of(next_snapshot_)});
        dequeued_.push_back(deq_value_);
        ++dequeues_;
        ++op_counter_;
        if (trace_) trace_->on_response(pid_, OpCode::kDequeue, true, deq_value_);
        invoked_ = false;
        begin_op();
        return true;
      }
      phase_ = Phase::kDeqReadHead;
      return false;
    }
  }
  return false;  // unreachable
}

}  // namespace pwf::core
