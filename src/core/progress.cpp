#include "core/progress.hpp"

#include <algorithm>

namespace pwf::core {

ProgressTracker::ProgressTracker(std::size_t n)
    : last_completion_by_(n, 0), max_gap_by_(n, 0), completions_by_(n, 0) {}

void ProgressTracker::on_step(std::uint64_t tau, std::size_t process,
                              bool completed) {
  now_ = tau;
  if (!completed) return;
  max_system_gap_ = std::max(max_system_gap_, tau - last_completion_);
  last_completion_ = tau;
  max_gap_by_[process] =
      std::max(max_gap_by_[process], tau - last_completion_by_[process]);
  last_completion_by_[process] = tau;
  ++completions_by_[process];
}

std::uint64_t ProgressTracker::max_individual_gap(std::size_t p) const {
  // Include the still-open gap so a starving process is visible.
  return std::max(max_gap_by_.at(p), now_ - last_completion_by_.at(p));
}

std::uint64_t ProgressTracker::max_individual_gap() const {
  std::uint64_t worst = 0;
  for (std::size_t p = 0; p < max_gap_by_.size(); ++p) {
    worst = std::max(worst, max_individual_gap(p));
  }
  return worst;
}

std::uint64_t ProgressTracker::completions(std::size_t p) const {
  return completions_by_.at(p);
}

bool ProgressTracker::every_process_completed() const {
  return std::all_of(completions_by_.begin(), completions_by_.end(),
                     [](std::uint64_t c) { return c > 0; });
}

std::vector<std::size_t> ProgressTracker::starving(
    std::uint64_t threshold) const {
  std::vector<std::size_t> out;
  for (std::size_t p = 0; p < last_completion_by_.size(); ++p) {
    if (now_ - last_completion_by_[p] > threshold) out.push_back(p);
  }
  return out;
}

}  // namespace pwf::core
