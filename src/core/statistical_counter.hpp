// The statistical counter of Dice, Lev and Moir (the paper's reference
// [4]) as a step machine — an answer to the question Section 8 leaves
// open: "whether there exist concurrent algorithms which avoid the
// Theta(sqrt n) contention factor in the latency".
//
// Increments are wait-free and contention-free: each process adds to its
// own dedicated register (one shared-memory step, no CAS). Reads must sum
// all n per-process registers (n steps) and are only statistically
// consistent — the trade the paper's reference [4] makes for scalability.
//
// The workload mixes increments and reads with a configurable read
// fraction, so the crossover against the CAS counter (whose every
// operation costs Theta(sqrt n) in system latency) can be mapped.
//
// Registers: [i] = process i's subcounter.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "core/memory.hpp"
#include "core/step_machine.hpp"
#include "util/rng.hpp"

namespace pwf::core {

/// Mixed increment/read workload on a distributed statistical counter.
class StatisticalCounter final : public StepMachine {
 public:
  /// `read_fraction` in [0, 1]: probability that an operation is a read
  /// (sums all subcounters) instead of an increment. Draws come from a
  /// private deterministic stream seeded by (seed, pid).
  StatisticalCounter(std::size_t pid, std::size_t n, double read_fraction,
                     std::uint64_t seed);

  bool step(SharedMemory& mem) override;
  std::string name() const override { return "statistical-counter"; }

  std::uint64_t increments() const noexcept { return increments_; }
  std::uint64_t reads() const noexcept { return reads_; }
  /// The value observed by this process's last completed read.
  Value last_read_value() const noexcept { return last_read_; }

  static std::size_t registers_required(std::size_t n) { return n; }
  static StepMachineFactory factory(double read_fraction,
                                    std::uint64_t seed);

 private:
  void begin_op();

  std::size_t pid_;
  std::size_t n_;
  double read_fraction_;
  Xoshiro256pp rng_;
  bool reading_ = false;
  std::size_t scan_index_ = 0;  // next subcounter a read will visit
  Value accum_ = 0;
  Value local_count_ = 0;  // mirror of our subcounter (we are sole writer)
  Value last_read_ = 0;
  std::uint64_t increments_ = 0;
  std::uint64_t reads_ = 0;
};

}  // namespace pwf::core
