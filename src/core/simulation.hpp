// The discrete-time execution engine (paper, Section 2).
//
// At every time step tau the engine asks the scheduler to pick one process
// from the active set A_tau, lets that process's step machine perform
// exactly one shared-memory operation, and records completions. Crashes
// (processes leaving A_tau, never to return — crash containment) are
// injected from a pre-registered crash plan.
//
// Latency bookkeeping follows the paper's Section 2.4 definitions:
//   * system latency  = expected system steps between two consecutive
//     completions by anyone;
//   * individual latency of p = expected system steps between two
//     consecutive completions by p.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "core/memory.hpp"
#include "core/scheduler.hpp"
#include "core/step_machine.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace pwf::core {

/// Observer hook invoked after every simulated step. Used by the schedule
/// recorder, progress trackers, and tests.
class SimObserver {
 public:
  virtual ~SimObserver() = default;
  /// `tau` is the 1-based global step count; `completed` reports whether
  /// this step finished a method invocation of `process`.
  virtual void on_step(std::uint64_t tau, std::size_t process,
                       bool completed) = 0;
};

/// Aggregated latency statistics for a measurement window.
struct LatencyReport {
  std::uint64_t steps = 0;        ///< system steps in the window
  std::uint64_t completions = 0;  ///< completed invocations in the window
  StreamingStats system_gaps;     ///< steps between consecutive completions
  std::vector<StreamingStats> individual_gaps;  ///< per-process, system steps
  std::vector<std::uint64_t> completions_per_process;
  std::vector<std::uint64_t> steps_per_process;
  /// 1 = the process left the system (crash or departure) and can never
  /// complete again; fairness floors skip it instead of treating its
  /// forever-pending operation as starvation.
  std::vector<std::uint8_t> retired;

  /// Marks `p` retired. The engine calls this when a process crashes or
  /// departs; its historical gaps and counts stay in the report.
  void mark_retired(std::size_t p);

  /// completions / steps; the paper's "completion rate" (Appendix B),
  /// approximately 1 / system latency.
  double completion_rate() const;
  /// Mean observed system latency W.
  double system_latency() const;
  /// Mean observed individual latency W_i.
  double individual_latency(std::size_t p) const;
  /// max_i W_i — the worst process, for fairness checks.
  double max_individual_latency() const;
  /// min completions over *non-retired* processes; > 0 means every
  /// process still in the system progressed. A process that crashed or
  /// departed mid-operation is not counted as pending forever. Returns 0
  /// when no processes are tracked or all are retired (the PR 2
  /// empty-window hardening).
  std::uint64_t min_completions() const;
};

/// How Simulation::run drives the per-step loop.
enum class LoopMode {
  /// Crash-free segments: the step count to the next crash event is
  /// computed once per segment, then a tight inner loop runs with no
  /// per-step crash probe and the observer branch hoisted into a
  /// separate template instantiation. The default.
  segmented,
  /// The original loop probing the crash plan and the observer pointer
  /// on every step. Kept as the golden reference: both modes produce
  /// bit-identical trajectories, which the engine tests assert.
  legacy,
};

/// The simulation engine.
class Simulation {
 public:
  struct Options {
    std::size_t num_registers = 1;
    Value initial_value = 0;
    std::uint64_t seed = 1;
    /// Per-register overrides applied once before execution (step-free);
    /// used to establish data-structure invariants such as a queue's
    /// initial dummy node.
    std::vector<std::pair<std::size_t, Value>> initial_values;
    LoopMode loop_mode = LoopMode::segmented;
  };

  Simulation(std::size_t n, const StepMachineFactory& factory,
             std::unique_ptr<Scheduler> scheduler, Options options);

  /// Registers a crash: process leaves the active set at time `tau`
  /// (before the step at tau is scheduled). At most n-1 processes may
  /// crash (the engine refuses to crash the last active process).
  void schedule_crash(std::uint64_t tau, std::size_t process);

  /// Runs `steps` more time units.
  void run(std::uint64_t steps);

  /// Discards statistics gathered so far (keeps algorithm/memory state).
  /// Call after a warmup run to measure the stationary regime only.
  void reset_stats();

  void set_observer(SimObserver* observer) { observer_ = observer; }

  const LatencyReport& report() const noexcept { return report_; }
  std::uint64_t now() const noexcept { return now_; }
  std::span<const std::size_t> active() const noexcept { return active_; }
  std::size_t num_processes() const noexcept { return machines_.size(); }
  SharedMemory& memory() noexcept { return memory_; }
  const SharedMemory& memory() const noexcept { return memory_; }
  const Scheduler& scheduler() const noexcept { return *scheduler_; }

  /// System steps since process p last completed (censored open gap);
  /// used by starvation detectors.
  std::uint64_t open_gap(std::size_t p) const;

 private:
  struct Crash {
    std::uint64_t tau;
    std::size_t process;
  };

  void apply_crashes();
  void run_legacy(std::uint64_t steps);
  /// The crash-free inner loop: runs `count` steps with no crash probe.
  /// Scheduler draws are batched through Scheduler::next_batch in chunks
  /// of kDrawBatch (stream-identical to per-step draws by contract)
  /// unless the scheduler reports !batch_safe().
  template <bool WithObserver>
  void run_segment(std::uint64_t count);

  static constexpr std::size_t kDrawBatch = 1024;

  SharedMemory memory_;
  std::vector<std::unique_ptr<StepMachine>> machines_;
  std::unique_ptr<Scheduler> scheduler_;
  Xoshiro256pp rng_;
  LoopMode loop_mode_;
  std::vector<std::size_t> active_;
  std::vector<std::size_t> draw_buf_;  // scratch for batched scheduler draws
  std::vector<Crash> crash_plan_;  // sorted by tau
  std::size_t next_crash_ = 0;
  std::uint64_t now_ = 0;

  LatencyReport report_;
  std::uint64_t last_completion_ = 0;  // time of last completion (any)
  std::vector<std::uint64_t> last_completion_by_;
  SimObserver* observer_ = nullptr;
};

}  // namespace pwf::core
