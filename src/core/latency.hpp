// Per-operation latency distributions. The paper cites the empirical
// latency distribution of individual lock-free operations ([1, Figure 6])
// as the known evidence that lock-free algorithms behave wait-free in
// practice; this observer reproduces that measurement inside the model:
// it records, for every completed operation, the number of system steps
// since the completing process's previous completion.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/simulation.hpp"
#include "util/stats.hpp"

namespace pwf::core {

/// Records every individual-operation latency into a histogram.
class LatencyDistributionObserver final : public SimObserver {
 public:
  /// Latencies land in a histogram over [0, hist_hi) with `buckets`
  /// buckets (values above hist_hi clamp into the last bucket and are
  /// counted as overflow).
  LatencyDistributionObserver(std::size_t n, double hist_hi,
                              std::size_t buckets);

  void on_step(std::uint64_t tau, std::size_t process, bool completed) override;

  const Histogram& histogram() const noexcept { return histogram_; }
  const StreamingStats& stats() const noexcept { return stats_; }
  std::uint64_t max_latency() const noexcept { return max_latency_; }

  /// Fraction of operations with latency > `threshold`.
  double tail_fraction(double threshold) const;

 private:
  std::vector<std::uint64_t> last_completion_;
  Histogram histogram_;
  StreamingStats stats_;
  std::uint64_t max_latency_ = 0;
  std::vector<double> raw_;  // exact latencies, for precise tail queries
};

}  // namespace pwf::core
