// Operation-trace hooks: the minimal interface src/check needs to turn a
// run of step machines into a linearizability *history* — a sequence of
// invoke/response events, each carrying the thread, the abstract
// operation, and its argument or return value.
//
// The hook lives in core (next to StepMachine) so the simulated
// structures can emit events without depending on the checker; the
// checker-side recorder implements OpTraceSink. Tracing is opt-in: a
// machine without a sink attached behaves exactly as before, and the
// hooks never perform shared-memory steps, so tracing does not perturb
// the schedule or the latency accounting.
#pragma once

#include <cstddef>
#include <cstdint>

#include "core/memory.hpp"

namespace pwf::core {

/// The abstract operations the repo's checkable structures perform.
/// Return-value conventions (what on_response carries):
///   * kPush/kEnqueue/kInsertOk...  push(v)/enqueue(v) return nothing;
///   * kPop/kDequeue return the removed value, or "empty" (has_value
///     false);
///   * kInsert/kErase/kContains return 0/1 (absent/present semantics);
///   * kFetchInc returns the pre-increment value;
///   * kRcuUpdate returns the version it published, kRcuRead the version
///     it observed (kTornRead sentinel when the snapshot was torn).
enum class OpCode : std::uint8_t {
  kPush,
  kPop,
  kEnqueue,
  kDequeue,
  kInsert,
  kErase,
  kContains,
  kFetchInc,
  kRcuUpdate,
  kRcuRead,
};

/// Returned by a reader whose payload scan observed a recycled block — the
/// simulation analogue of a use-after-free under missing grace periods.
/// No version number can ever equal it (versions fit in 32 bits).
inline constexpr Value kTornRead = ~static_cast<Value>(0);

/// Receives one machine-operation event stream. Implementations must not
/// touch SharedMemory (events are free, steps are not). The invoke for an
/// operation is emitted at the operation's *first* shared-memory step and
/// the response at its completing step, so the [invoke, response] interval
/// is exactly the span the operation was in flight.
class OpTraceSink {
 public:
  virtual ~OpTraceSink() = default;

  virtual void on_invoke(std::size_t thread, OpCode op, bool has_arg,
                         Value arg) = 0;
  virtual void on_response(std::size_t thread, OpCode op, bool has_value,
                           Value value) = 0;
};

}  // namespace pwf::core
