// Progress-condition checkers (paper, Section 2.2 and Section 4).
//
// Minimal progress: in every suffix, some pending invocation completes.
// Maximal progress: in every suffix, every pending invocation completes.
// Bounded minimal progress with bound B: from any step with a pending
// active invocation, some invocation returns within the next B system
// steps. Theorem 3 says a stochastic scheduler turns bounded minimal
// progress into maximal progress with probability 1, with expected
// per-operation bound (1/theta)^T.
//
// These trackers observe a Simulation and report the empirical analogues:
// the largest observed system gap between completions (minimal progress
// bound), per-process gaps (maximal progress), and starvation flags.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/simulation.hpp"

namespace pwf::core {

/// Observes completions and tracks the empirical progress bounds.
class ProgressTracker final : public SimObserver {
 public:
  explicit ProgressTracker(std::size_t n);

  void on_step(std::uint64_t tau, std::size_t process, bool completed) override;

  /// Largest observed gap (in system steps) between consecutive
  /// completions by anyone — the empirical minimal-progress bound.
  std::uint64_t max_system_gap() const noexcept { return max_system_gap_; }

  /// Largest observed gap between consecutive completions of process p —
  /// the empirical maximal-progress bound for p. Gaps still open at the end
  /// of the run are included (censored from below).
  std::uint64_t max_individual_gap(std::size_t p) const;

  /// Largest individual gap over all processes.
  std::uint64_t max_individual_gap() const;

  std::uint64_t completions(std::size_t p) const;

  /// True iff every process has completed at least one invocation — the
  /// observable part of maximal progress.
  bool every_process_completed() const;

  /// Processes whose open gap at the end of observation exceeds
  /// `threshold` system steps (starvation suspects for Lemma 2's
  /// unbounded algorithm).
  std::vector<std::size_t> starving(std::uint64_t threshold) const;

 private:
  std::uint64_t now_ = 0;
  std::uint64_t last_completion_ = 0;
  std::uint64_t max_system_gap_ = 0;
  std::vector<std::uint64_t> last_completion_by_;
  std::vector<std::uint64_t> max_gap_by_;
  std::vector<std::uint64_t> completions_by_;
};

}  // namespace pwf::core
