#include "core/sim_rcu.hpp"

#include <memory>
#include <stdexcept>

namespace pwf::core {

SimRcu::SimRcu(std::size_t pid, std::size_t n, const RcuConfig& config)
    : config_(config), pid_(pid), is_writer_(pid < config.writers) {
  if (pid >= n) throw std::invalid_argument("SimRcu: pid >= n");
  if (config.writers == 0 || config.writers > n) {
    throw std::invalid_argument("SimRcu: need 1 <= writers <= n");
  }
  if (config.payload_len == 0 || config.slots_per_writer == 0) {
    throw std::invalid_argument("SimRcu: payload_len, slots_per_writer >= 1");
  }
}

std::size_t SimRcu::registers_required(const RcuConfig& config) {
  return 1 + config.writers * config.slots_per_writer * config.payload_len;
}

StepMachineFactory SimRcu::factory(const RcuConfig& config) {
  return [config](std::size_t pid, std::size_t n) {
    return std::make_unique<SimRcu>(pid, n, config);
  };
}

std::size_t SimRcu::block_base(std::size_t slot) const {
  return 1 + (pid_ * config_.slots_per_writer + slot) * config_.payload_len;
}

bool SimRcu::step(SharedMemory& mem) {
  const std::size_t L = config_.payload_len;
  if (trace_ && !invoked_) {
    trace_->on_invoke(pid_, is_writer_ ? OpCode::kRcuUpdate : OpCode::kRcuRead,
                      false, 0);
    invoked_ = true;
  }
  if (is_writer_) {
    switch (wphase_) {
      case WPhase::kReadP: {
        p_snapshot_ = mem.read(0);
        copy_index_ = 0;
        wphase_ = WPhase::kCopy;
        return false;
      }
      case WPhase::kCopy: {
        // Build the new version in our private slot: every payload
        // register carries the version number it will be published as.
        const std::uint64_t next_version = version_of(p_snapshot_) + 1;
        mem.write(block_base(slot_cursor_) + copy_index_, next_version);
        if (++copy_index_ == L) wphase_ = WPhase::kCas;
        return false;
      }
      case WPhase::kCas: {
        const std::uint64_t next_version = version_of(p_snapshot_) + 1;
        const Value proposed =
            pack(next_version, block_base(slot_cursor_));
        if (mem.cas(0, p_snapshot_, proposed)) {
          slot_cursor_ = (slot_cursor_ + 1) % config_.slots_per_writer;
          ++updates_;
          wphase_ = WPhase::kReadP;
          if (trace_) {
            trace_->on_response(pid_, OpCode::kRcuUpdate, true, next_version);
          }
          invoked_ = false;
          return true;
        }
        wphase_ = WPhase::kReadP;  // rescan and rebuild against the new P
        return false;
      }
    }
    return false;  // unreachable
  }

  // Reader: P read, then L payload reads; wait-free, no retries.
  if (read_index_ == 0) {
    p_snapshot_ = mem.read(0);
    torn_ = false;
    if (base_of(p_snapshot_) == 0) {
      // No version published yet: the read completes trivially.
      ++reads_;
      if (trace_) trace_->on_response(pid_, OpCode::kRcuRead, true, 0);
      invoked_ = false;
      return true;
    }
    read_index_ = 1;
    return false;
  }
  const Value payload = mem.read(base_of(p_snapshot_) + read_index_ - 1);
  if (payload != version_of(p_snapshot_)) torn_ = true;
  if (read_index_++ == L) {
    ++reads_;
    if (torn_) ++torn_reads_;
    read_index_ = 0;
    if (trace_) {
      // A torn snapshot has no consistent version: report the sentinel so
      // a checker can flag the read as returning an impossible state.
      trace_->on_response(pid_, OpCode::kRcuRead, true,
                          torn_ ? kTornRead : version_of(p_snapshot_));
    }
    invoked_ = false;
    return true;
  }
  return false;
}

}  // namespace pwf::core
