#include "core/progress_zoo.hpp"

#include <memory>
#include <stdexcept>

namespace pwf::core {

SpinlockCounter::SpinlockCounter(std::size_t pid) : pid_(pid) { (void)pid_; }

StepMachineFactory SpinlockCounter::factory() {
  return [](std::size_t pid, std::size_t /*n*/) {
    return std::make_unique<SpinlockCounter>(pid);
  };
}

bool SpinlockCounter::step(SharedMemory& mem) {
  switch (phase_) {
    case Phase::kAcquire:
      if (mem.cas(0, 0, 1)) phase_ = Phase::kReadCounter;
      return false;  // spinning costs a step either way
    case Phase::kReadCounter:
      counter_snapshot_ = mem.read(1);
      phase_ = Phase::kWriteCounter;
      return false;
    case Phase::kWriteCounter:
      mem.write(1, counter_snapshot_ + 1);
      phase_ = Phase::kRelease;
      return false;
    case Phase::kRelease:
      mem.write(0, 0);
      phase_ = Phase::kAcquire;
      return true;
  }
  return false;  // unreachable
}

ObstructionPair::ObstructionPair(std::size_t pid, std::size_t n)
    : pid_(pid), tag_(static_cast<Value>(pid) + 1) {
  if (pid >= n) throw std::invalid_argument("ObstructionPair: pid >= n");
}

StepMachineFactory ObstructionPair::factory() {
  return [](std::size_t pid, std::size_t n) {
    return std::make_unique<ObstructionPair>(pid, n);
  };
}

bool ObstructionPair::step(SharedMemory& mem) {
  switch (phase_) {
    case Phase::kWriteA:
      mem.write(0, tag_);
      phase_ = Phase::kWriteB;
      return false;
    case Phase::kWriteB:
      mem.write(1, tag_);
      phase_ = Phase::kCheckA;
      return false;
    case Phase::kCheckA:
      phase_ = mem.read(0) == tag_ ? Phase::kCheckB : Phase::kWriteA;
      return false;
    case Phase::kCheckB:
      if (mem.read(1) == tag_) {
        phase_ = Phase::kWriteA;
        return true;  // both claims validated: the operation commits
      }
      phase_ = Phase::kWriteA;
      return false;
  }
  return false;  // unreachable
}

}  // namespace pwf::core
