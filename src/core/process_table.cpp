#include "core/process_table.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace pwf::core {

ProcessTable::ProcessTable(std::size_t capacity, LiveOrder order)
    : order_(order) {
  if (capacity == 0) {
    throw std::invalid_argument("ProcessTable: need capacity >= 1");
  }
  weight.assign(capacity, 0.0);
  alive_flag.assign(capacity, 0);
  generation.assign(capacity, 0);
  op_start.assign(capacity, 0);
  op_steps.assign(capacity, 0);
  steps.assign(capacity, 0);
  completions.assign(capacity, 0);
  phase.assign(capacity, 0);
  pstep.assign(capacity, 0);
  view.assign(capacity, 0);
  attempts.assign(capacity, 0);
  live_.reserve(capacity);
  live_pos_.assign(capacity, 0);
  free_.resize(capacity);
  // Descending so pop_back hands out slot 0, 1, 2, ... on a fresh table.
  for (std::size_t i = 0; i < capacity; ++i) free_[i] = capacity - 1 - i;
}

void ProcessTable::reset_op_state(std::size_t slot, std::uint64_t now) {
  op_start[slot] = now;
  op_steps[slot] = 0;
  phase[slot] = 0;
  pstep[slot] = 0;
  view[slot] = 0;
  // attempts[slot] deliberately survives: SCU proposal uniqueness is
  // per-slot across generations (a reused slot must never re-propose).
}

void ProcessTable::insert_live(std::size_t slot) {
  if (order_ == LiveOrder::sorted) {
    live_.insert(std::upper_bound(live_.begin(), live_.end(), slot), slot);
  } else {
    live_pos_[slot] = live_.size();
    live_.push_back(slot);
  }
}

void ProcessTable::erase_live(std::size_t slot) {
  if (order_ == LiveOrder::sorted) {
    const auto it = std::lower_bound(live_.begin(), live_.end(), slot);
    live_.erase(it);
  } else {
    // O(1) swap-remove via the inverse index — a scan here would make
    // every retire O(live) and sink million-process churn.
    const std::size_t pos = live_pos_[slot];
    const std::size_t moved = live_.back();
    live_[pos] = moved;
    live_pos_[moved] = pos;
    live_.pop_back();
  }
}

std::size_t ProcessTable::admit(double w, std::uint64_t now) {
  if (free_.empty()) return kNone;
  const std::size_t slot = free_.back();
  free_.pop_back();
  weight[slot] = w;
  alive_flag[slot] = 1;
  ++generation[slot];
  steps[slot] = 0;
  completions[slot] = 0;
  reset_op_state(slot, now);
  insert_live(slot);
  return slot;
}

void ProcessTable::retire(std::size_t slot) {
  if (!alive(slot)) throw std::logic_error("ProcessTable::retire: not alive");
  alive_flag[slot] = 0;
  erase_live(slot);
  free_.push_back(slot);
}

void ProcessTable::suspend(std::size_t slot) {
  if (!alive(slot)) throw std::logic_error("ProcessTable::suspend: not alive");
  alive_flag[slot] = 0;
  erase_live(slot);
  // Deliberately not pushed to free_: reserved for revive().
}

void ProcessTable::revive(std::size_t slot, std::uint64_t now) {
  if (alive(slot)) throw std::logic_error("ProcessTable::revive: still alive");
  alive_flag[slot] = 1;
  ++generation[slot];
  reset_op_state(slot, now);
  insert_live(slot);
}

std::uint64_t ProcessTable::digest() const noexcept {
  std::uint64_t h = 1469598103934665603ULL;  // FNV offset basis
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= 1099511628211ULL;
    }
  };
  mix(capacity());
  mix(static_cast<std::uint64_t>(order_));
  for (std::size_t s = 0; s < capacity(); ++s) {
    mix(std::bit_cast<std::uint64_t>(weight[s]));
    mix(alive_flag[s]);
    mix(generation[s]);
    mix(op_start[s]);
    mix(op_steps[s]);
    mix(steps[s]);
    mix(completions[s]);
    mix(phase[s]);
    mix(pstep[s]);
    mix(view[s]);
    mix(attempts[s]);
  }
  for (std::size_t s : live_) mix(s);
  for (std::size_t s : free_) mix(s);
  return h;
}

}  // namespace pwf::core
