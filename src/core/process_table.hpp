// Struct-of-arrays per-process state for the open-system engine.
//
// The closed-system Simulation stores each process as a heap-allocated
// StepMachine — one virtual dispatch and one dependent pointer load per
// step. At n = 10^6 live processes that layout thrashes: a million
// scattered 64-byte boxes, touched in scheduler order (i.e. randomly).
// ProcessTable flips the layout to columnar arrays indexed by *slot*, so
// the hot loop touches four or five flat arrays, and admission/retirement
// are O(1) free-list operations instead of allocations.
//
// Slot lifecycle:
//
//   free --admit--> live --retire--> free
//                     \--suspend--> suspended --revive--> live
//
// `suspend` models a crash with a pending restart: the slot is withheld
// from the free list so the same identity (and its monotone `attempts`
// counter — SCU proposal uniqueness) returns on revive. `generation`
// counts admissions of a slot; membership events carry it so a stale
// event for a previous tenant of the slot can be recognized.
//
// Live-list order policy: LiveOrder::sorted keeps live() ascending
// (erase via lower_bound, matching the closed Simulation's active_ so
// the golden bit-identity tests can compare engines); LiveOrder::dense
// swap-removes in O(1) and is the open-system default — schedulers used
// in open mode must treat the active span as an unordered set.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "core/memory.hpp"

namespace pwf::core {

enum class LiveOrder {
  sorted,  ///< live() ascending; O(log n + move) retire. Golden-compat.
  dense,   ///< O(1) swap-remove retire; live() order is arbitrary.
};

class ProcessTable {
 public:
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  ProcessTable(std::size_t capacity, LiveOrder order);

  std::size_t capacity() const noexcept { return weight.size(); }
  LiveOrder order() const noexcept { return order_; }
  std::size_t live_count() const noexcept { return live_.size(); }
  bool full() const noexcept { return free_.empty(); }
  std::span<const std::size_t> live() const noexcept { return live_; }
  bool alive(std::size_t slot) const { return alive_flag.at(slot) != 0; }

  /// Admits a process with scheduling weight `w`, starting its first
  /// operation at time `now`. Returns the slot, or kNone when the table
  /// is full (the caller sheds the arrival). Fresh tables hand out slots
  /// in ascending order; retired slots are reused LIFO.
  std::size_t admit(double w, std::uint64_t now);

  /// Removes `slot` from the live set and returns it to the free list
  /// (departure, or crash with no restart). O(1) dense, O(n) sorted.
  void retire(std::size_t slot);

  /// Removes `slot` from the live set but withholds it from the free
  /// list: a crash with a restart pending. The slot's identity — and its
  /// monotone `attempts` counter — is reserved for the revive.
  void suspend(std::size_t slot);

  /// Returns a suspended slot to the live set with a fresh generation
  /// and a fresh operation starting at `now`. Kernel state is reset
  /// except `attempts` (proposal uniqueness is per-slot, forever).
  void revive(std::size_t slot, std::uint64_t now);

  /// FNV-1a over every column of every slot plus the live/free lists:
  /// bit-identical tables (and only those) agree. The open-system
  /// determinism tests compare digests across thread counts.
  std::uint64_t digest() const noexcept;

  // SoA columns, indexed by slot. Public by design: the engine's hot
  // loop reads and writes them directly.
  std::vector<double> weight;
  std::vector<std::uint8_t> alive_flag;
  std::vector<std::uint32_t> generation;    ///< admissions of this slot
  std::vector<std::uint64_t> op_start;      ///< tau the current op began
  std::vector<std::uint64_t> op_steps;      ///< steps taken in current op
  std::vector<std::uint64_t> steps;         ///< lifetime steps of this slot
  std::vector<std::uint64_t> completions;   ///< lifetime completions
  // Kernel state (step_kernels.hpp), one column per field; which columns
  // a kind uses: kParallel -> pstep; kScu -> phase/pstep/view/attempts;
  // kFetchInc -> view.
  std::vector<std::uint8_t> phase;
  std::vector<std::uint64_t> pstep;
  std::vector<Value> view;
  std::vector<std::uint64_t> attempts;  ///< never reset: SCU uniqueness

 private:
  void reset_op_state(std::size_t slot, std::uint64_t now);
  void insert_live(std::size_t slot);
  void erase_live(std::size_t slot);

  LiveOrder order_;
  std::vector<std::size_t> live_;
  std::vector<std::size_t> live_pos_;  ///< slot -> index in live_ (dense only)
  std::vector<std::size_t> free_;  ///< stack; initialized descending
};

}  // namespace pwf::core
