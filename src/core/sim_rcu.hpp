// Read-copy-update as a step machine — the paper's last named SCU
// instance: "The read-copy-update (RCU) synchronization mechanism
// employed by the Linux kernel is also an instance of this pattern"
// (Section 1).
//
// A version pointer P (register 0, tagged with the version number)
// publishes a block of L payload registers. Writers run the SCU pattern:
// scan P, copy out a fresh block (the preamble work), and validate with a
// CAS on P. Readers are wait-free: one P read plus L payload reads, never
// retried.
//
// Block slots are recycled round-robin from a per-writer pool of K slots.
// Real RCU defers reuse past a *grace period*; with finite K a reader
// that holds a pointer long enough can observe a recycled block. The
// machine detects this (every payload register of version v holds v, so
// any mismatch flags a torn read), which lets experiments measure the
// torn-read rate as a function of K — the simulation analogue of why
// grace periods exist.
//
// Registers: [0] P = (version << 32) | block_base;
//   writer w's slot t occupies registers
//   [1 + (w*K + t)*L .. 1 + (w*K + t)*L + L - 1].
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "core/memory.hpp"
#include "core/step_machine.hpp"

namespace pwf::core {

/// Configuration shared by all RCU processes in a simulation.
struct RcuConfig {
  std::size_t writers = 1;          ///< processes 0..writers-1 write
  std::size_t payload_len = 3;      ///< L: registers per version block
  std::size_t slots_per_writer = 4; ///< K: recycling pool depth
};

/// One RCU process: writer (pid < writers) or reader (pid >= writers).
class SimRcu final : public StepMachine {
 public:
  SimRcu(std::size_t pid, std::size_t n, const RcuConfig& config);

  bool step(SharedMemory& mem) override;
  std::string name() const override {
    return is_writer_ ? "rcu-writer" : "rcu-reader";
  }
  void set_trace(OpTraceSink* sink) override { trace_ = sink; }

  bool is_writer() const noexcept { return is_writer_; }
  std::uint64_t updates() const noexcept { return updates_; }
  std::uint64_t reads() const noexcept { return reads_; }
  /// Reads that observed a recycled/torn block (payload != version tag).
  std::uint64_t torn_reads() const noexcept { return torn_reads_; }

  static std::size_t registers_required(const RcuConfig& config);
  static StepMachineFactory factory(const RcuConfig& config);

 private:
  static constexpr Value pack(std::uint64_t version, std::uint64_t base) {
    return (version << 32) | base;
  }
  static std::uint64_t version_of(Value v) { return v >> 32; }
  static std::uint64_t base_of(Value v) { return v & 0xffffffffULL; }

  std::size_t block_base(std::size_t slot) const;

  RcuConfig config_;
  std::size_t pid_;
  bool is_writer_;
  OpTraceSink* trace_ = nullptr;
  bool invoked_ = false;  // has the in-flight op logged its invoke yet?

  // Writer state.
  enum class WPhase { kReadP, kCopy, kCas };
  WPhase wphase_ = WPhase::kReadP;
  std::size_t slot_cursor_ = 0;
  std::size_t copy_index_ = 0;
  Value p_snapshot_ = 0;

  // Reader state.
  std::size_t read_index_ = 0;  // 0 = about to read P; 1..L payload reads
  bool torn_ = false;

  std::uint64_t updates_ = 0;
  std::uint64_t reads_ = 0;
  std::uint64_t torn_reads_ = 0;
};

}  // namespace pwf::core
