#include "core/scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace pwf::core {

std::size_t UniformScheduler::next(std::uint64_t /*tau*/,
                                   std::span<const std::size_t> active,
                                   Xoshiro256pp& rng) {
  if (draw_.bound() != active.size()) draw_ = BoundedDraw(active.size());
  return active[draw_(rng)];
}

void UniformScheduler::next_batch(std::uint64_t /*tau*/,
                                  std::span<const std::size_t> active,
                                  Xoshiro256pp& rng,
                                  std::span<std::size_t> out) {
  if (draw_.bound() != active.size()) draw_ = BoundedDraw(active.size());
  for (std::size_t& o : out) o = active[draw_(rng)];
}

double UniformScheduler::theta(std::size_t num_active) const {
  return num_active ? 1.0 / static_cast<double>(num_active) : 0.0;
}

WeightedScheduler::WeightedScheduler(std::vector<double> weights,
                                     SamplingMode mode)
    : weights_(std::move(weights)), mode_(mode) {
  if (weights_.empty()) {
    throw std::invalid_argument("WeightedScheduler: empty weights");
  }
  min_weight_ = weights_[0];
  total_weight_ = 0.0;
  for (double w : weights_) {
    if (!(w > 0.0)) {
      throw std::invalid_argument("WeightedScheduler: weights must be > 0");
    }
    min_weight_ = std::min(min_weight_, w);
    total_weight_ += w;
  }
}

bool WeightedScheduler::table_matches(
    std::span<const std::size_t> active) const noexcept {
  // Under crash containment the active set only ever shrinks, so a table
  // built for a different active set differs in size — or, for callers
  // that swap same-sized sets without on_crash, in an endpoint.
  const auto ids = table_.ids();
  return !rebuild_ && active.size() == ids.size() &&
         active.front() == ids.front() && active.back() == ids.back();
}

void WeightedScheduler::build_alias(std::span<const std::size_t> active) {
  std::vector<double> w;
  w.reserve(active.size());
  for (std::size_t p : active) w.push_back(weights_.at(p));
  table_.build(active, w);
  rebuild_ = false;
}

std::size_t WeightedScheduler::next(std::uint64_t /*tau*/,
                                    std::span<const std::size_t> active,
                                    Xoshiro256pp& rng) {
  if (mode_ == SamplingMode::alias) {
    if (!table_matches(active)) build_alias(active);
    return table_.draw(rng);
  }
  double total = 0.0;
  for (std::size_t p : active) total += weights_.at(p);
  double x = rng.uniform_double() * total;
  for (std::size_t p : active) {
    x -= weights_.at(p);
    if (x < 0.0) return p;
  }
  return active.back();  // numerical fallthrough
}

void WeightedScheduler::next_batch(std::uint64_t tau,
                                   std::span<const std::size_t> active,
                                   Xoshiro256pp& rng,
                                   std::span<std::size_t> out) {
  if (mode_ != SamplingMode::alias) {
    Scheduler::next_batch(tau, active, rng, out);
    return;
  }
  if (!table_matches(active)) build_alias(active);
  for (std::size_t& o : out) o = table_.draw(rng);
}

void WeightedScheduler::on_crash(std::size_t /*process*/) { rebuild_ = true; }

std::vector<double> WeightedScheduler::sampling_probabilities(
    std::span<const std::size_t> active) {
  std::vector<double> probs(active.size(), 0.0);
  if (mode_ == SamplingMode::alias) {
    if (!table_matches(active)) build_alias(active);
    return table_.probabilities(active);
  }
  double total = 0.0;
  for (std::size_t p : active) total += weights_.at(p);
  for (std::size_t i = 0; i < active.size(); ++i) {
    probs[i] = weights_.at(active[i]) / total;
  }
  return probs;
}

double WeightedScheduler::theta(std::size_t num_active) const {
  // Lower bound over all active sets of the given size: the minimum weight
  // against the full total (removing crashed processes only increases each
  // remaining probability).
  (void)num_active;
  return min_weight_ / total_weight_;
}

WeightedScheduler make_zipf_scheduler(std::size_t n, double exponent) {
  std::vector<double> weights(n);
  for (std::size_t i = 0; i < n; ++i) {
    weights[i] = 1.0 / std::pow(static_cast<double>(i + 1), exponent);
  }
  return WeightedScheduler(std::move(weights));
}

WeightedScheduler make_lottery_scheduler(std::vector<unsigned> tickets) {
  std::vector<double> weights;
  weights.reserve(tickets.size());
  for (unsigned t : tickets) weights.push_back(static_cast<double>(t));
  return WeightedScheduler(std::move(weights));
}

StickyScheduler::StickyScheduler(double rho) : rho_(rho) {
  if (!(rho >= 0.0 && rho < 1.0)) {
    throw std::invalid_argument("StickyScheduler: need 0 <= rho < 1");
  }
}

std::size_t StickyScheduler::next(std::uint64_t /*tau*/,
                                  std::span<const std::size_t> active,
                                  Xoshiro256pp& rng) {
  // Membership is checked before any randomness is consumed: a stale
  // prev_ (possible only when the caller never reports crashes via
  // on_crash) behaves exactly like "no previous process" instead of
  // skewing the draw sequence.
  if (prev_ != kNone && std::binary_search(active.begin(), active.end(),
                                           prev_)) {
    if (rng.bernoulli(rho_)) return prev_;
  }
  if (draw_.bound() != active.size()) draw_ = BoundedDraw(active.size());
  prev_ = active[draw_(rng)];
  return prev_;
}

void StickyScheduler::on_crash(std::size_t process) {
  if (prev_ == process) prev_ = kNone;
}

double StickyScheduler::theta(std::size_t num_active) const {
  return num_active ? (1.0 - rho_) / static_cast<double>(num_active) : 0.0;
}

std::size_t RoundRobinScheduler::next(std::uint64_t /*tau*/,
                                      std::span<const std::size_t> active,
                                      Xoshiro256pp& /*rng*/) {
  const std::size_t chosen = active[cursor_ % active.size()];
  ++cursor_;
  return chosen;
}

AdversarialScheduler::AdversarialScheduler(Strategy strategy, std::string label)
    : strategy_(std::move(strategy)), label_(std::move(label)) {
  if (!strategy_) {
    throw std::invalid_argument("AdversarialScheduler: null strategy");
  }
}

std::size_t AdversarialScheduler::next(std::uint64_t tau,
                                       std::span<const std::size_t> active,
                                       Xoshiro256pp& /*rng*/) {
  const std::size_t chosen = strategy_(tau, active);
  if (!std::binary_search(active.begin(), active.end(), chosen)) {
    throw std::logic_error(
        "AdversarialScheduler: strategy chose an inactive process");
  }
  return chosen;
}

ThetaMixScheduler::ThetaMixScheduler(double theta,
                                     std::unique_ptr<Scheduler> inner)
    : theta_(theta), inner_(std::move(inner)) {
  if (!(theta > 0.0)) {
    throw std::invalid_argument("ThetaMixScheduler: need theta > 0");
  }
  if (!inner_) {
    throw std::invalid_argument("ThetaMixScheduler: null inner scheduler");
  }
}

std::size_t ThetaMixScheduler::next(std::uint64_t tau,
                                    std::span<const std::size_t> active,
                                    Xoshiro256pp& rng) {
  const double uniform_mass = theta_ * static_cast<double>(active.size());
  if (uniform_mass > 1.0) {
    throw std::logic_error("ThetaMixScheduler: n * theta > 1");
  }
  if (rng.bernoulli(uniform_mass)) {
    return active[rng.uniform(active.size())];
  }
  return inner_->next(tau, active, rng);
}

double ThetaMixScheduler::theta(std::size_t /*num_active*/) const {
  return theta_;
}

std::string ThetaMixScheduler::name() const {
  return "theta-mix(" + inner_->name() + ")";
}

}  // namespace pwf::core
