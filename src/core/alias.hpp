// Walker/Vose alias table with incremental membership maintenance.
//
// The closed-system WeightedScheduler rebuilds its alias table from
// scratch on every membership change — O(k) per crash, fine when crashes
// are rare and the set only shrinks. An open system churns: arrivals,
// departures, crashes, and restarts hit every few thousand steps at
// n = 10^6, and a full rebuild per event would turn the O(1) sampler
// back into an O(k) one. This class keeps the exact Vose construction
// (byte-for-byte the order the closed scheduler used, so seeded draw
// streams are preserved when no churn is pending) and layers two O(1)
// membership deltas on top:
//
//   * remove(id): mark the table position dead. Draws reject dead hits
//     and redraw — conditioning the table distribution on the live set,
//     which is exactly the renormalized distribution. Expected redraw
//     cost stays bounded because the table is compacted once dead mass
//     passes a quarter of the buckets.
//   * add(id, w): either *revives* a dead position (same id returning —
//     the restart path — at exact original weight, O(1) and exact), or
//     appends to a small fresh list sampled by a pre-draw proportional
//     to its mass. The fresh list is folded into the table once it
//     passes a quarter of the table size.
//
// Distribution exactness: with pending deltas a draw picks the fresh arm
// with probability fresh_mass / (live_table_mass + fresh_mass), else
// draws table positions until a live one. P(fresh i) = w_i / grand and
// P(live j) = (live_table_mass / grand) * (w_j / live_table_mass)
// = w_j / grand — the renormalized weights, exactly, for every churn
// state. The statistical-equivalence tests pin this against the linear
// reference.
//
// RNG budget: 2 draws per sample when no deltas are pending (identical
// to the closed-system table, pinned in test_rng_budget); +1 pre-draw
// while a fresh list exists; a geometric number of redraws (expected
// < 4/3 rounds) while dead marks exist.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "util/rng.hpp"

namespace pwf::core {

class AliasTable {
 public:
  AliasTable() = default;

  /// Builds the table over `ids` with parallel `weights` (> 0 each).
  /// O(k); clears any pending deltas. The construction order is the
  /// Vose small/large pairing the closed-system scheduler has always
  /// used, so cut/alias contents — and therefore seeded draw streams —
  /// are bit-identical to the pre-refactor code.
  void build(std::span<const std::size_t> ids,
             std::span<const double> weights);

  /// Samples one live id. Precondition: live_count() > 0.
  std::size_t draw(Xoshiro256pp& rng) const;

  /// Marks `id` dead (or drops it from the fresh list). O(1) amortized.
  /// Precondition: contains(id).
  void remove(std::size_t id);

  /// Admits `id` with weight `w` > 0: revives a dead table position when
  /// `id` previously left (the restart path — exact, O(1)), otherwise
  /// appends to the fresh list. Precondition: !contains(id). A revived
  /// id keeps its original weight; `w` must match it.
  void add(std::size_t id, double w);

  /// True iff `id` is currently a live member (table or fresh).
  bool contains(std::size_t id) const noexcept;

  /// True once pending deltas pass the compaction thresholds (dead or
  /// fresh count beyond a quarter of the table). Draws stay exact either
  /// way; rebuilding just restores the flat 2-draw budget.
  bool needs_rebuild() const noexcept;

  /// Compacts: rebuilds over live table ids (in table order) followed by
  /// fresh ids (in admission order), clearing all deltas. Deterministic:
  /// the rebuilt order is a pure function of the operation sequence.
  void rebuild();

  std::size_t live_count() const noexcept {
    return ids_.size() - dead_count_ + fresh_ids_.size();
  }
  std::size_t table_size() const noexcept { return ids_.size(); }
  std::size_t dead_count() const noexcept { return dead_count_; }
  std::size_t fresh_count() const noexcept { return fresh_ids_.size(); }
  double live_mass() const noexcept {
    return table_total_ - dead_mass_ + fresh_total_;
  }
  /// Table ids in build order (dead positions included).
  std::span<const std::size_t> ids() const noexcept { return ids_; }

  /// Live ids, table order then fresh order; for tests and compaction.
  std::vector<std::size_t> live_ids() const;

  /// Exact realized probability of each id in `query` (0 for non-members),
  /// reconstructed from bucket masses — the analytical check used by the
  /// statistical-equivalence tests.
  std::vector<double> probabilities(
      std::span<const std::size_t> query) const;

 private:
  static constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

  void build_from(std::vector<std::size_t> ids, std::vector<double> weights);

  // Vose table: bucket b yields ids_[b] with probability cut_[b], else
  // ids_[alias_[b]]; every bucket carries total mass 1/k.
  std::vector<std::size_t> ids_;
  std::vector<double> w_;           ///< weight of ids_[b] at build time
  std::vector<std::size_t> alias_;
  std::vector<double> cut_;
  std::vector<std::uint8_t> dead_;  ///< per-position dead mark
  BoundedDraw bucket_;
  double table_total_ = 0.0;

  std::vector<std::size_t> pos_;    ///< id -> table position (or kNpos)

  std::size_t dead_count_ = 0;
  double dead_mass_ = 0.0;

  std::vector<std::size_t> fresh_ids_;
  std::vector<double> fresh_w_;
  double fresh_total_ = 0.0;
};

}  // namespace pwf::core
