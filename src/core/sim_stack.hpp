// A Treiber stack expressed as a step machine on simulated shared memory —
// the paper's flagship example of an SCU-class structure (reference [21]):
// push is SCU(1, 1) (one preamble write to link the node, one head read,
// one CAS) and pop is SCU(0, 2) (head read, next read, CAS).
//
// Each process runs an alternating push/pop workload. The head register is
// tag-stamped (upper 32 bits increment on every successful CAS) so node
// reuse is ABA-safe, exactly like a tagged-pointer implementation on
// hardware. Node slots migrate between processes: a popper takes ownership
// of the popped node's slot for its own later pushes.
//
// Register layout:
//   [0]            head: (tag << 32) | slot_ref; ref 0 = empty stack.
//   [1 + 2*(s-1)]  slot s >= 1: next (slot_ref of the node below, 0 = none)
//   [2 + 2*(s-1)]  slot s >= 1: value (set by push; checked by tests)
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/memory.hpp"
#include "core/step_machine.hpp"

namespace pwf::core {

/// Alternating push/pop Treiber-stack workload for one process.
class SimStack final : public StepMachine {
 public:
  /// `slots_per_process`: initial private free slots of each process; the
  /// global arena holds n * slots_per_process nodes.
  SimStack(std::size_t pid, std::size_t n, std::size_t slots_per_process);

  bool step(SharedMemory& mem) override;
  std::string name() const override { return "sim-treiber-stack"; }
  void set_trace(OpTraceSink* sink) override { trace_ = sink; }

  static std::size_t registers_required(std::size_t n,
                                        std::size_t slots_per_process);
  static StepMachineFactory factory(std::size_t slots_per_process);

  std::uint64_t pushes() const noexcept { return pushes_; }
  std::uint64_t pops() const noexcept { return pops_; }
  std::uint64_t empty_pops() const noexcept { return empty_pops_; }
  /// Values popped by this process, in pop order (for conservation tests).
  const std::vector<Value>& popped_values() const noexcept { return popped_; }

 private:
  enum class Phase {
    kPushWriteValue,  // preamble: write my node's value register
    kPushReadHead,    // read head -> (tag, top)
    kPushLinkNode,    // write my node's next = top
    kPushCas,         // CAS(head, (tag, top), (tag+1, my node))
    kPopReadHead,     // read head; empty => op completes as empty-pop
    kPopReadNext,     // read top node's next
    kPopReadValue,    // read top node's value (the scan's second register)
    kPopCas,          // CAS(head, (tag, top), (tag+1, next))
  };

  static constexpr Value pack(std::uint64_t tag, std::uint64_t ref) {
    return (tag << 32) | ref;
  }
  static std::uint64_t tag_of(Value v) { return v >> 32; }
  static std::uint64_t ref_of(Value v) { return v & 0xffffffffULL; }
  static std::size_t next_reg(std::uint64_t slot) { return 1 + 2 * (slot - 1); }
  static std::size_t value_reg(std::uint64_t slot) { return 2 + 2 * (slot - 1); }

  /// Chooses the next operation (alternating, adapted to slot supply) and
  /// sets the entry phase.
  void begin_op();

  std::size_t pid_;
  std::size_t n_;
  Phase phase_;
  OpTraceSink* trace_ = nullptr;
  bool invoked_ = false;  // has the in-flight op logged its invoke yet?
  std::vector<std::uint64_t> free_slots_;  // private slot pool
  Value head_snapshot_ = 0;                // last head read
  std::uint64_t pending_slot_ = 0;         // slot being pushed
  Value pop_next_ = 0;                     // next-ref read during pop
  Value pop_value_ = 0;                    // value read during pop
  std::uint64_t pushes_ = 0;
  std::uint64_t pops_ = 0;
  std::uint64_t empty_pops_ = 0;
  std::uint64_t op_counter_ = 0;  // alternation + unique push values
  std::vector<Value> popped_;
};

}  // namespace pwf::core
