#include "core/helping.hpp"

#include <memory>
#include <stdexcept>

namespace pwf::core {

HelpedUniversal::HelpedUniversal(std::size_t pid, std::size_t n,
                                 std::size_t max_cells_per_process)
    : pid_(pid), n_(n), max_cells_(max_cells_per_process) {
  if (pid >= n) throw std::invalid_argument("HelpedUniversal: pid >= n");
  if (max_cells_per_process == 0) {
    throw std::invalid_argument("HelpedUniversal: need a cell budget");
  }
}

std::size_t HelpedUniversal::registers_required(
    std::size_t n, std::size_t max_cells_per_process) {
  return 3 + n + 2 * n * max_cells_per_process;
}

StepMachineFactory HelpedUniversal::factory(
    std::size_t max_cells_per_process) {
  return [max_cells_per_process](std::size_t pid, std::size_t n) {
    return std::make_unique<HelpedUniversal>(pid, n, max_cells_per_process);
  };
}

bool HelpedUniversal::step(SharedMemory& mem) {
  switch (phase_) {
    case Phase::kAnnounce: {
      if (cells_used_ == max_cells_) {
        throw std::runtime_error("HelpedUniversal: cell arena exhausted");
      }
      // Fresh cell: registers are zero-initialized and never reused, so
      // next == 0 and seq == 0 hold without extra writes.
      const std::uint64_t cell_index = pid_ + cells_used_ * n_;
      ++cells_used_;
      my_cell_ = arena_base() + 2 * cell_index;
      mem.write(1 + pid_, my_cell_);
      phase_ = Phase::kCheckDone;
      return false;
    }
    case Phase::kCheckDone: {
      const Value seq = mem.read(my_cell_ + 1);
      if (seq != 0) {
        last_ticket_ = seq;
        phase_ = Phase::kAnnounce;
        return true;  // someone (maybe us) threaded our cell: op complete
      }
      phase_ = Phase::kReadHead;
      return false;
    }
    case Phase::kReadHead: {
      const Value raw = mem.read(0);
      if (raw == 0) {
        head_pos_ = 0;
        head_ref_ = sentinel_ref();
      } else {
        head_pos_ = raw >> 32;
        head_ref_ = raw & 0xffffffffULL;
      }
      phase_ = Phase::kReadTurn;
      return false;
    }
    case Phase::kReadTurn: {
      turn_cell_ = mem.read(1 + (head_pos_ % n_));
      if (turn_cell_ == 0) {
        // Turn process has never announced: fall back to our own cell,
        // after re-checking we are still pending.
        phase_ = Phase::kRecheckOwn;
      } else {
        phase_ = Phase::kReadTurnSeq;
      }
      return false;
    }
    case Phase::kReadTurnSeq: {
      const Value seq = mem.read(turn_cell_ + 1);
      if (seq == 0) {
        // The turn process has a pending cell: help it first.
        candidate_ = turn_cell_;
        phase_ = Phase::kCasNext;
      } else {
        phase_ = Phase::kRecheckOwn;
      }
      return false;
    }
    case Phase::kRecheckOwn: {
      // We are about to propose our own cell; if it was threaded since the
      // round began (possibly making it the head cell itself), proposing
      // it would create a cycle — and we are in fact done.
      const Value seq = mem.read(my_cell_ + 1);
      if (seq != 0) {
        last_ticket_ = seq;
        phase_ = Phase::kAnnounce;
        return true;
      }
      candidate_ = my_cell_;
      phase_ = Phase::kCasNext;
      return false;
    }
    case Phase::kCasNext: {
      // Thread the candidate after the head cell. next == 0 exactly until
      // the unique successor is installed; cells are never reused, so the
      // CAS is ABA-free.
      mem.cas(head_ref_, 0, candidate_);
      phase_ = Phase::kReadNext;
      return false;
    }
    case Phase::kReadNext: {
      const Value successor = mem.read(head_ref_);
      if (successor == 0) {
        // Impossible: our own kCasNext either installed a successor or
        // failed because one was already installed, and next pointers are
        // write-once (cells are never reused).
        throw std::logic_error("HelpedUniversal: head cell lost its successor");
      }
      candidate_ = successor;  // reuse as "s" for the finish-up steps
      phase_ = Phase::kWriteSeq;
      return false;
    }
    case Phase::kWriteSeq: {
      // Idempotent: every helper that saw HEAD = (k, h) computes the same
      // position k+1 for h's unique successor.
      mem.write(candidate_ + 1, head_pos_ + 1);
      phase_ = Phase::kCasHead;
      return false;
    }
    case Phase::kCasHead: {
      const Value expected =
          head_pos_ == 0 && head_ref_ == sentinel_ref()
              ? 0
              : pack(head_pos_, head_ref_);
      mem.cas(0, expected, pack(head_pos_ + 1, candidate_));
      phase_ = Phase::kCheckDone;
      return false;
    }
  }
  return false;  // unreachable
}

}  // namespace pwf::core
