// The Michael-Scott queue (paper reference [17]) as a step machine on
// simulated shared memory — the second concrete SCU-class structure the
// paper names. Enqueue scans the tail and its next pointer and validates
// with a CAS on next (helping a lagging tail forward); dequeue scans head,
// tail and head->next and validates with a CAS on head.
//
// Both the head/tail registers and every node's next register are
// generation-stamped in their upper 32 bits, so slot reuse is ABA-safe: a
// slot's generation increments each time its new owner re-initializes it,
// and stale CASes (whose expected value carries the old generation) fail.
//
// Register layout:
//   [0]  head: (tag << 32) | slot_ref
//   [1]  tail: (tag << 32) | slot_ref
//   slot s >= 1: next at [2*s], value at [2*s + 1];
//   next holds (gen << 32) | successor_ref (successor_ref 0 = none).
// Slot 1 is the initial dummy node; the engine must poke
// head = tail = pack(0, 1) before running (see initial_values()).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/memory.hpp"
#include "core/step_machine.hpp"

namespace pwf::core {

/// Alternating enqueue/dequeue Michael-Scott queue workload for one
/// process.
class SimQueue final : public StepMachine {
 public:
  SimQueue(std::size_t pid, std::size_t n, std::size_t slots_per_process);

  bool step(SharedMemory& mem) override;
  std::string name() const override { return "sim-ms-queue"; }
  void set_trace(OpTraceSink* sink) override { trace_ = sink; }

  static std::size_t registers_required(std::size_t n,
                                        std::size_t slots_per_process);
  /// The initial register overrides every SimQueue simulation needs.
  static std::vector<std::pair<std::size_t, Value>> initial_values();
  static StepMachineFactory factory(std::size_t slots_per_process);

  std::uint64_t enqueues() const noexcept { return enqueues_; }
  std::uint64_t dequeues() const noexcept { return dequeues_; }
  std::uint64_t empty_dequeues() const noexcept { return empty_dequeues_; }
  const std::vector<Value>& dequeued_values() const noexcept {
    return dequeued_;
  }

 private:
  enum class Phase {
    kEnqWriteValue,   // write my slot's value register
    kEnqResetNext,    // write my slot's next = (gen+1, 0)
    kEnqReadTail,     // read tail -> (ttag, tref)
    kEnqReadNext,     // read tref's next
    kEnqRecheckTail,  // re-read tail: unchanged? (guards slot reuse)
    kEnqHelpTail,     // CAS(tail, (ttag,tref), (ttag+1, next))
    kEnqCasNext,      // CAS(tref.next, (gen,0), (gen,my slot))
    kEnqSwingTail,    // CAS(tail, (ttag,tref), (ttag+1,my)); completes op
    kDeqReadHead,    // read head -> (htag, href)
    kDeqReadTail,    // read tail -> (ttag, tref)
    kDeqReadNext,    // read href's next
    kDeqCheckEmpty,  // re-read head; unchanged + next null => empty-pop
    kDeqHelpTail,    // CAS(tail, (ttag,tref), (ttag+1,next))
    kDeqReadValue,   // read next's value register
    kDeqCasHead,     // CAS(head, (htag,href), (htag+1,next)); completes op
  };

  static constexpr Value pack(std::uint64_t hi, std::uint64_t lo) {
    return (hi << 32) | lo;
  }
  static std::uint64_t hi_of(Value v) { return v >> 32; }
  static std::uint64_t lo_of(Value v) { return v & 0xffffffffULL; }
  static std::size_t next_reg(std::uint64_t slot) {
    return static_cast<std::size_t>(2 * slot);
  }
  static std::size_t value_reg(std::uint64_t slot) {
    return static_cast<std::size_t>(2 * slot + 1);
  }

  void begin_op();

  std::size_t pid_;
  std::size_t n_;
  Phase phase_;
  OpTraceSink* trace_ = nullptr;
  bool invoked_ = false;  // has the in-flight op logged its invoke yet?
  /// Private pool of (slot, generation-of-its-next-field) pairs.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> pool_;
  std::uint64_t my_slot_ = 0;
  std::uint64_t my_gen_ = 0;      // generation written into my slot's next
  Value head_snapshot_ = 0;
  Value tail_snapshot_ = 0;
  Value next_snapshot_ = 0;       // (gen, ref) of the relevant next field
  Value deq_value_ = 0;
  std::uint64_t enqueues_ = 0;
  std::uint64_t dequeues_ = 0;
  std::uint64_t empty_dequeues_ = 0;
  std::uint64_t op_counter_ = 0;
  std::vector<Value> dequeued_;
};

}  // namespace pwf::core
