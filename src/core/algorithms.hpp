// The paper's algorithms (Algorithms 1-5), expressed as step machines.
//
// Register layout conventions are per-algorithm and documented on each
// class; factories and register counts are provided so a Simulation can be
// assembled in one line.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/memory.hpp"
#include "core/step_kernels.hpp"
#include "core/step_machine.hpp"

namespace pwf::core {

/// Algorithm 2 — the class SCU(q, s): a preamble of q shared-memory steps
/// followed by a scan-and-validate loop that reads s registers (the
/// decision register R plus s-1 auxiliary registers) and then CAS-es R.
///
/// Registers: [0] = R (decision register), [1 .. s-1] = R_1..R_{s-1}
/// (auxiliary scan registers), [s + pid] = per-process scratch register
/// written by the preamble (preamble steps may update memory but never R).
///
/// Proposed values are globally unique (attempt counter * n + pid + 1), the
/// paper's "two processes never propose the same value for R" assumption,
/// so the simulated CAS is ABA-free exactly as the analysis requires.
///
/// SCU(0, 1) with q = 0, s = 1 is Algorithm 3 (the scan-validate pattern).
class ScuAlgorithm final : public StepMachine {
 public:
  /// Preconditions: s >= 1, pid < n.
  ScuAlgorithm(std::size_t pid, std::size_t n, std::size_t q, std::size_t s);

  bool step(SharedMemory& mem) override;
  std::string name() const override;

  /// Registers a Simulation must allocate for this configuration.
  static std::size_t registers_required(std::size_t n, std::size_t s);

  static StepMachineFactory factory(std::size_t q, std::size_t s);

 private:
  std::size_t pid_;
  std::size_t n_;
  std::size_t q_;
  std::size_t s_;
  ScuState state_;  // shared kernel state (step_kernels.hpp)
};

/// Algorithm 3 — the scan-validate pattern == SCU(0, 1).
StepMachineFactory scan_validate_factory();

/// Algorithm 4 — parallel code: a method call completes after the process
/// executes q shared-memory steps, regardless of other processes. Each step
/// reads register [0].
class ParallelCode final : public StepMachine {
 public:
  /// Precondition: q >= 1.
  ParallelCode(std::size_t pid, std::size_t q);

  bool step(SharedMemory& mem) override;
  std::string name() const override;

  static constexpr std::size_t registers_required() { return 1; }
  static StepMachineFactory factory(std::size_t q);

 private:
  std::size_t pid_;
  std::size_t q_;
  ParallelState state_;  // shared kernel state (step_kernels.hpp)
};

/// Algorithm 5 — lock-free fetch-and-increment on an augmented CAS
/// (Section 7). Register [0] = R, initially 0; every process starts with
/// local value v = 0, so initially all processes hold the current value
/// (the chain's initial state s_Pi).
///
/// Semantics follow the paper's Markov-chain description: a successful
/// CAS(R, v, v+1) leaves the caller holding the current value (its local v
/// becomes v+1); a failed augmented CAS returns the current value, which
/// the caller adopts. (The pseudocode in the paper keeps v = old after a
/// success, which would contradict its own chain in Section 7.1; we follow
/// the chain. See DESIGN.md.)
class FetchAndIncrement final : public StepMachine {
 public:
  explicit FetchAndIncrement(std::size_t pid);

  bool step(SharedMemory& mem) override;
  std::string name() const override { return "fetch-and-increment"; }
  void set_trace(OpTraceSink* sink) override { trace_ = sink; }

  /// The value this process last observed/wrote; for tests.
  Value local_value() const noexcept { return state_.v; }

  static constexpr std::size_t registers_required() { return 1; }
  static StepMachineFactory factory();

 private:
  std::size_t pid_;
  FetchIncState state_;  // shared kernel state (step_kernels.hpp)
  OpTraceSink* trace_ = nullptr;
  bool invoked_ = false;
};

/// A register file of `num_counters` independent Algorithm 5 counters:
/// fetch_inc(k) on register [k], each via the augmented CAS. The counter
/// an operation targets is drawn deterministically from (pid, operation
/// index), so the same seed and schedule always produce the same key
/// sequence. Operations on different counters commute, which makes this
/// the multi-object workload for partitioned linearizability checking —
/// its histories split per counter (Herlihy & Wing compositionality) and
/// each part's search sees only that counter's concurrency.
class ShardedCounter final : public StepMachine {
 public:
  ShardedCounter(std::size_t pid, std::size_t num_counters);

  bool step(SharedMemory& mem) override;
  std::string name() const override { return "sharded-counter"; }
  void set_trace(OpTraceSink* sink) override { trace_ = sink; }

  static constexpr std::size_t registers_required(std::size_t num_counters) {
    return num_counters;
  }
  static StepMachineFactory factory(std::size_t num_counters);

 private:
  std::size_t pid_;
  std::size_t num_counters_;
  std::uint64_t op_index_ = 0;  ///< completed ops; keys the next counter pick
  std::size_t key_ = 0;         ///< counter the in-flight op targets
  std::vector<Value> local_;    ///< last observed value per counter
  OpTraceSink* trace_ = nullptr;
  bool invoked_ = false;
};

/// Algorithm 1 — the *unbounded* lock-free algorithm used by Lemma 2 to
/// show that without a finite minimal-progress bound, stochastic schedulers
/// do not grant wait-freedom: a process that loses the CAS on C must read
/// register R n^2 * v times (v = the value it observed) before retrying, so
/// losers fall ever further behind while one winner monopolizes progress.
///
/// `penalty_cap` is the constructive remedy: capping the backoff at any
/// finite bound restores bounded minimal progress, so Theorem 3 applies
/// again and the algorithm becomes practically wait-free. The default cap
/// of 0 means "uncapped" — the paper's Algorithm 1 verbatim.
///
/// Registers: [0] = C (the CAS object, initially 0), [1] = R.
class UnboundedLockFree final : public StepMachine {
 public:
  UnboundedLockFree(std::size_t pid, std::size_t n,
                    std::uint64_t penalty_cap = 0);

  bool step(SharedMemory& mem) override;
  std::string name() const override {
    return penalty_cap_ ? "capped-backoff-lock-free" : "unbounded-lock-free";
  }

  std::uint64_t pending_penalty_reads() const noexcept { return penalty_; }

  static constexpr std::size_t registers_required() { return 2; }
  static StepMachineFactory factory();
  /// The bounded variant: penalties truncate at `penalty_cap` reads.
  static StepMachineFactory capped_factory(std::uint64_t penalty_cap);

 private:
  std::size_t pid_;
  std::size_t n_;
  std::uint64_t penalty_cap_;
  Value v_ = 0;
  std::uint64_t penalty_ = 0;
};

}  // namespace pwf::core
