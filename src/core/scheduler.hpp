// Stochastic schedulers (paper, Definition 1).
//
// A scheduler for n processes is a triple (Pi_tau, A_tau, theta): at every
// discrete time step tau it draws the process to schedule from a
// distribution Pi_tau supported on the possibly-active set A_tau, and it is
// *stochastic* when every active process has probability >= theta > 0
// (weak fairness). The simulation engine owns A_tau (crashes only shrink
// it — crash containment); a Scheduler implements Pi_tau.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/alias.hpp"
#include "util/rng.hpp"

namespace pwf::core {

/// How a process's membership in the active set changed. The closed
/// system knows only kCrash (processes leave for good — crash
/// containment); the open system adds arrivals, voluntary departures,
/// and crash-with-restart.
enum class MembershipEvent {
  kArrive,   ///< a new process joined the active set
  kDepart,   ///< a process left voluntarily (completed its session)
  kCrash,    ///< a process crashed (may restart later)
  kRestart,  ///< a previously crashed process rejoined
};

/// Chooses which process takes the next step. Implementations may be
/// randomized (stochastic schedulers) or deterministic (adversaries).
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Returns the process to schedule at time `tau`. `active` is A_tau, the
  /// non-crashed processes, sorted ascending and never empty. `rng` is the
  /// simulation's random stream.
  virtual std::size_t next(std::uint64_t tau,
                           std::span<const std::size_t> active,
                           Xoshiro256pp& rng) = 0;

  /// Fills `out` with the processes for steps tau, tau+1, ...,
  /// tau+out.size()-1 under a membership-stable active set. The engine
  /// batches its per-step draws through this in the hot loop; the
  /// contract is that the draws — and the raw RNG stream consumed — are
  /// *identical* to calling next() once per step, so batched and
  /// unbatched runs produce bit-identical trajectories. The default does
  /// exactly that; stateless samplers override it to hoist the virtual
  /// dispatch and table lookups out of the loop.
  virtual void next_batch(std::uint64_t tau,
                          std::span<const std::size_t> active,
                          Xoshiro256pp& rng, std::span<std::size_t> out) {
    for (std::size_t i = 0; i < out.size(); ++i) {
      out[i] = next(tau + i, active, rng);
    }
  }

  /// True when next_batch may be used: the engine pre-draws a whole
  /// chunk of processes before stepping any machine, which is only
  /// transparent if draws depend on nothing but (tau, active, rng,
  /// scheduler state). AdversarialScheduler returns false — its strategy
  /// is an arbitrary callback that may read simulation state between
  /// steps — and the engine falls back to per-step draws.
  virtual bool batch_safe() const { return true; }

  /// The weak-fairness threshold theta given the current number of active
  /// processes: every active process is scheduled with probability at least
  /// theta at every step. Returns 0 for non-stochastic (adversarial)
  /// schedulers.
  virtual double theta(std::size_t num_active) const = 0;

  /// Crash notification: `process` has left the active set for good
  /// (crash containment). The engine calls this before the next next();
  /// stateful schedulers drop any reference to the crashed process here.
  virtual void on_crash(std::size_t process) { (void)process; }

  /// Open-system membership notification, called before the next draw.
  /// `weight` is the process's scheduling weight (1.0 for uniform
  /// members). The default preserves the closed-system behaviour: leave
  /// events (kDepart, kCrash) forward to on_crash, join events are
  /// no-ops — correct for every scheduler that re-reads the active span
  /// on each draw. Schedulers with per-process state (the incremental
  /// alias table) override this to apply O(1) deltas instead.
  virtual void on_membership_change(MembershipEvent event, std::size_t process,
                                    double weight) {
    (void)weight;
    if (event == MembershipEvent::kDepart ||
        event == MembershipEvent::kCrash) {
      on_crash(process);
    }
  }

  virtual std::string name() const = 0;
};

/// The uniform stochastic scheduler (paper, Section 2.3): every active
/// process is scheduled with probability exactly 1/|A_tau|. theta = 1/n.
class UniformScheduler final : public Scheduler {
 public:
  std::size_t next(std::uint64_t tau, std::span<const std::size_t> active,
                   Xoshiro256pp& rng) override;
  /// Devirtualized hot loop over the cached bounded draw; stream- and
  /// value-identical to per-step next().
  void next_batch(std::uint64_t tau, std::span<const std::size_t> active,
                  Xoshiro256pp& rng, std::span<std::size_t> out) override;
  double theta(std::size_t num_active) const override;
  std::string name() const override { return "uniform"; }

 private:
  // Cached nearly-divisionless draw over |A_tau|; re-keyed when the
  // active set shrinks. Stream-identical to rng.uniform(active.size()).
  BoundedDraw draw_;
};

/// How a WeightedScheduler turns its weights into draws.
enum class SamplingMode {
  /// Walker/Vose alias table over the active set: O(1) per draw with a
  /// fixed two-draw RNG budget (one bounded bucket draw + one uniform
  /// double), rebuilt in O(|A_tau|) only when the active set changes
  /// (on_crash). The default.
  alias,
  /// The original O(|A_tau|) prefix-sum scan consuming one uniform
  /// double per draw. Kept as the golden reference for the alias
  /// sampler's statistical-equivalence tests (mirroring the
  /// CheckOptions::pruning=false precedent).
  linear,
};

/// A fixed-weight stochastic scheduler: process i is chosen with probability
/// proportional to weights[i] among the active set. Models lottery
/// scheduling (Petrou et al., reference [19] in the paper) and any other
/// non-uniform Pi with a positive threshold.
///
/// Both sampling modes realize *exactly* the same distribution
/// (weights renormalized over the active set); they differ only in
/// per-draw cost and RNG-draw budget, so trajectories — not verdicts —
/// differ between them.
class WeightedScheduler final : public Scheduler {
 public:
  /// All weights must be > 0 (otherwise theta would be 0 and the scheduler
  /// would not be stochastic; use an adversary for that).
  explicit WeightedScheduler(std::vector<double> weights,
                             SamplingMode mode = SamplingMode::alias);

  std::size_t next(std::uint64_t tau, std::span<const std::size_t> active,
                   Xoshiro256pp& rng) override;
  /// Alias mode: builds the table once, then loops the two-draw sampler
  /// with no per-step table checks. Linear mode falls back to the
  /// per-step default. Stream-identical to per-step next() either way.
  void next_batch(std::uint64_t tau, std::span<const std::size_t> active,
                  Xoshiro256pp& rng, std::span<std::size_t> out) override;
  double theta(std::size_t num_active) const override;
  /// Invalidates the alias table; it is rebuilt from the next next()'s
  /// active span. (next() additionally guards on the span's size and
  /// endpoints, so even a caller that never reports crashes cannot draw
  /// from a table built for a differently-sized active set.)
  void on_crash(std::size_t process) override;
  std::string name() const override { return "weighted"; }

  SamplingMode mode() const noexcept { return mode_; }

  /// The exact per-process probabilities the sampler realizes for this
  /// active set, indexed by position in `active`. In alias mode they are
  /// reconstructed from the built table (bucket masses summed per
  /// process) so the statistical-equivalence test can verify the table
  /// against weights[p] / sum of active weights analytically.
  std::vector<double> sampling_probabilities(
      std::span<const std::size_t> active);

 private:
  bool table_matches(std::span<const std::size_t> active) const noexcept;
  void build_alias(std::span<const std::size_t> active);

  std::vector<double> weights_;
  double min_weight_;
  double total_weight_;
  SamplingMode mode_;

  // Vose alias table over the active set at build time; rebuilt eagerly
  // and in full on every membership change (the closed-system policy —
  // crashes are rare, so O(|A_tau|) per crash amortizes to nothing; the
  // open-system DynamicWeightedScheduler uses the same AliasTable with
  // its incremental deltas instead).
  AliasTable table_;
  bool rebuild_ = true;
};

/// Zipf-weighted scheduler: weight of process i is 1/(i+1)^exponent.
/// An extension probe for the paper's Section 8 question about non-uniform
/// stochastic schedulers.
WeightedScheduler make_zipf_scheduler(std::size_t n, double exponent);

/// Lottery scheduling (Petrou, Milford & Gibson — the paper's reference
/// [19]): each process holds an integer number of tickets and is scheduled
/// with probability proportional to its holding. theta = min tickets /
/// total tickets > 0, so every lottery scheduler is stochastic.
WeightedScheduler make_lottery_scheduler(std::vector<unsigned> tickets);

/// A sticky (bursty) stochastic scheduler: with probability rho it
/// reschedules the previously scheduled process (if still active),
/// otherwise it picks uniformly. theta = (1 - rho)/n > 0, so Theorem 3
/// still applies; used to probe robustness of the uniform-model
/// predictions against schedule burstiness.
class StickyScheduler final : public Scheduler {
 public:
  /// Precondition: 0 <= rho < 1.
  explicit StickyScheduler(double rho);

  std::size_t next(std::uint64_t tau, std::span<const std::size_t> active,
                   Xoshiro256pp& rng) override;
  double theta(std::size_t num_active) const override;
  /// Forgets prev_ if it crashed; without this the scheduler would carry
  /// a stale favourite across Simulation crash events (next() also
  /// guards by membership, so a stale prev_ degrades to uniform rather
  /// than scheduling a dead process).
  void on_crash(std::size_t process) override;
  std::string name() const override { return "sticky"; }

 private:
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  double rho_;
  std::size_t prev_ = kNone;
  BoundedDraw draw_;  ///< cached bounded draw for the uniform fallback
};

/// Deterministic round-robin over the active set. Not stochastic
/// (theta = 0 under Definition 1, since the choice is a point mass), but
/// uniformly fair; useful as a baseline.
class RoundRobinScheduler final : public Scheduler {
 public:
  std::size_t next(std::uint64_t tau, std::span<const std::size_t> active,
                   Xoshiro256pp& rng) override;
  double theta(std::size_t num_active) const override { (void)num_active; return 0.0; }
  std::string name() const override { return "round-robin"; }

 private:
  std::size_t cursor_ = 0;
};

/// A fully adversarial scheduler driven by a callback: models the classic
/// worst-case adversary by putting probability 1 on its chosen process
/// (paper, "An Adversarial Scheduler"). theta = 0.
class AdversarialScheduler final : public Scheduler {
 public:
  using Strategy = std::function<std::size_t(
      std::uint64_t tau, std::span<const std::size_t> active)>;

  explicit AdversarialScheduler(Strategy strategy, std::string label = "adversarial");

  std::size_t next(std::uint64_t tau, std::span<const std::size_t> active,
                   Xoshiro256pp& rng) override;
  /// Strategies are arbitrary callbacks; they may capture and read
  /// simulation state between steps, so pre-drawing is not transparent.
  bool batch_safe() const override { return false; }
  double theta(std::size_t num_active) const override { (void)num_active; return 0.0; }
  std::string name() const override { return label_; }

 private:
  Strategy strategy_;
  std::string label_;
};

/// Theta-mixed scheduler: with probability n*theta it schedules uniformly,
/// otherwise it defers to an inner (possibly adversarial) scheduler. This
/// realizes an *arbitrary* stochastic scheduler with threshold exactly
/// theta, the minimal assumption of Theorem 3.
class ThetaMixScheduler final : public Scheduler {
 public:
  /// Precondition: 0 < theta and n_max * theta <= 1 for every active-set
  /// size used (checked at next()).
  ThetaMixScheduler(double theta, std::unique_ptr<Scheduler> inner);

  std::size_t next(std::uint64_t tau, std::span<const std::size_t> active,
                   Xoshiro256pp& rng) override;
  bool batch_safe() const override { return inner_->batch_safe(); }
  double theta(std::size_t num_active) const override;
  void on_crash(std::size_t process) override { inner_->on_crash(process); }
  std::string name() const override;

 private:
  double theta_;
  std::unique_ptr<Scheduler> inner_;
};

}  // namespace pwf::core
