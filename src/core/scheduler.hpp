// Stochastic schedulers (paper, Definition 1).
//
// A scheduler for n processes is a triple (Pi_tau, A_tau, theta): at every
// discrete time step tau it draws the process to schedule from a
// distribution Pi_tau supported on the possibly-active set A_tau, and it is
// *stochastic* when every active process has probability >= theta > 0
// (weak fairness). The simulation engine owns A_tau (crashes only shrink
// it — crash containment); a Scheduler implements Pi_tau.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace pwf::core {

/// Chooses which process takes the next step. Implementations may be
/// randomized (stochastic schedulers) or deterministic (adversaries).
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Returns the process to schedule at time `tau`. `active` is A_tau, the
  /// non-crashed processes, sorted ascending and never empty. `rng` is the
  /// simulation's random stream.
  virtual std::size_t next(std::uint64_t tau,
                           std::span<const std::size_t> active,
                           Xoshiro256pp& rng) = 0;

  /// The weak-fairness threshold theta given the current number of active
  /// processes: every active process is scheduled with probability at least
  /// theta at every step. Returns 0 for non-stochastic (adversarial)
  /// schedulers.
  virtual double theta(std::size_t num_active) const = 0;

  /// Crash notification: `process` has left the active set for good
  /// (crash containment). The engine calls this before the next next();
  /// stateful schedulers drop any reference to the crashed process here.
  virtual void on_crash(std::size_t process) { (void)process; }

  virtual std::string name() const = 0;
};

/// The uniform stochastic scheduler (paper, Section 2.3): every active
/// process is scheduled with probability exactly 1/|A_tau|. theta = 1/n.
class UniformScheduler final : public Scheduler {
 public:
  std::size_t next(std::uint64_t tau, std::span<const std::size_t> active,
                   Xoshiro256pp& rng) override;
  double theta(std::size_t num_active) const override;
  std::string name() const override { return "uniform"; }

 private:
  // Cached nearly-divisionless draw over |A_tau|; re-keyed when the
  // active set shrinks. Stream-identical to rng.uniform(active.size()).
  BoundedDraw draw_;
};

/// How a WeightedScheduler turns its weights into draws.
enum class SamplingMode {
  /// Walker/Vose alias table over the active set: O(1) per draw with a
  /// fixed two-draw RNG budget (one bounded bucket draw + one uniform
  /// double), rebuilt in O(|A_tau|) only when the active set changes
  /// (on_crash). The default.
  alias,
  /// The original O(|A_tau|) prefix-sum scan consuming one uniform
  /// double per draw. Kept as the golden reference for the alias
  /// sampler's statistical-equivalence tests (mirroring the
  /// CheckOptions::pruning=false precedent).
  linear,
};

/// A fixed-weight stochastic scheduler: process i is chosen with probability
/// proportional to weights[i] among the active set. Models lottery
/// scheduling (Petrou et al., reference [19] in the paper) and any other
/// non-uniform Pi with a positive threshold.
///
/// Both sampling modes realize *exactly* the same distribution
/// (weights renormalized over the active set); they differ only in
/// per-draw cost and RNG-draw budget, so trajectories — not verdicts —
/// differ between them.
class WeightedScheduler final : public Scheduler {
 public:
  /// All weights must be > 0 (otherwise theta would be 0 and the scheduler
  /// would not be stochastic; use an adversary for that).
  explicit WeightedScheduler(std::vector<double> weights,
                             SamplingMode mode = SamplingMode::alias);

  std::size_t next(std::uint64_t tau, std::span<const std::size_t> active,
                   Xoshiro256pp& rng) override;
  double theta(std::size_t num_active) const override;
  /// Invalidates the alias table; it is rebuilt from the next next()'s
  /// active span. (next() additionally guards on the span's size and
  /// endpoints, so even a caller that never reports crashes cannot draw
  /// from a table built for a differently-sized active set.)
  void on_crash(std::size_t process) override;
  std::string name() const override { return "weighted"; }

  SamplingMode mode() const noexcept { return mode_; }

  /// The exact per-process probabilities the sampler realizes for this
  /// active set, indexed by position in `active`. In alias mode they are
  /// reconstructed from the built table (bucket masses summed per
  /// process) so the statistical-equivalence test can verify the table
  /// against weights[p] / sum of active weights analytically.
  std::vector<double> sampling_probabilities(
      std::span<const std::size_t> active);

 private:
  bool table_matches(std::span<const std::size_t> active) const noexcept;
  void build_alias(std::span<const std::size_t> active);

  std::vector<double> weights_;
  double min_weight_;
  double total_weight_;
  SamplingMode mode_;

  // Alias table over the active set used to build it (Vose 1991):
  // bucket b holds ids_[b] with probability cut_[b] and ids_[alias_[b]]
  // with the rest; each bucket carries total mass 1/k.
  std::vector<std::size_t> ids_;    ///< active ids at build time
  std::vector<std::size_t> alias_;  ///< alias bucket -> position in ids_
  std::vector<double> cut_;         ///< P(keep bucket's own id)
  BoundedDraw bucket_;              ///< cached bounded draw over ids_.size()
  bool rebuild_ = true;
};

/// Zipf-weighted scheduler: weight of process i is 1/(i+1)^exponent.
/// An extension probe for the paper's Section 8 question about non-uniform
/// stochastic schedulers.
WeightedScheduler make_zipf_scheduler(std::size_t n, double exponent);

/// Lottery scheduling (Petrou, Milford & Gibson — the paper's reference
/// [19]): each process holds an integer number of tickets and is scheduled
/// with probability proportional to its holding. theta = min tickets /
/// total tickets > 0, so every lottery scheduler is stochastic.
WeightedScheduler make_lottery_scheduler(std::vector<unsigned> tickets);

/// A sticky (bursty) stochastic scheduler: with probability rho it
/// reschedules the previously scheduled process (if still active),
/// otherwise it picks uniformly. theta = (1 - rho)/n > 0, so Theorem 3
/// still applies; used to probe robustness of the uniform-model
/// predictions against schedule burstiness.
class StickyScheduler final : public Scheduler {
 public:
  /// Precondition: 0 <= rho < 1.
  explicit StickyScheduler(double rho);

  std::size_t next(std::uint64_t tau, std::span<const std::size_t> active,
                   Xoshiro256pp& rng) override;
  double theta(std::size_t num_active) const override;
  /// Forgets prev_ if it crashed; without this the scheduler would carry
  /// a stale favourite across Simulation crash events (next() also
  /// guards by membership, so a stale prev_ degrades to uniform rather
  /// than scheduling a dead process).
  void on_crash(std::size_t process) override;
  std::string name() const override { return "sticky"; }

 private:
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  double rho_;
  std::size_t prev_ = kNone;
  BoundedDraw draw_;  ///< cached bounded draw for the uniform fallback
};

/// Deterministic round-robin over the active set. Not stochastic
/// (theta = 0 under Definition 1, since the choice is a point mass), but
/// uniformly fair; useful as a baseline.
class RoundRobinScheduler final : public Scheduler {
 public:
  std::size_t next(std::uint64_t tau, std::span<const std::size_t> active,
                   Xoshiro256pp& rng) override;
  double theta(std::size_t num_active) const override { (void)num_active; return 0.0; }
  std::string name() const override { return "round-robin"; }

 private:
  std::size_t cursor_ = 0;
};

/// A fully adversarial scheduler driven by a callback: models the classic
/// worst-case adversary by putting probability 1 on its chosen process
/// (paper, "An Adversarial Scheduler"). theta = 0.
class AdversarialScheduler final : public Scheduler {
 public:
  using Strategy = std::function<std::size_t(
      std::uint64_t tau, std::span<const std::size_t> active)>;

  explicit AdversarialScheduler(Strategy strategy, std::string label = "adversarial");

  std::size_t next(std::uint64_t tau, std::span<const std::size_t> active,
                   Xoshiro256pp& rng) override;
  double theta(std::size_t num_active) const override { (void)num_active; return 0.0; }
  std::string name() const override { return label_; }

 private:
  Strategy strategy_;
  std::string label_;
};

/// Theta-mixed scheduler: with probability n*theta it schedules uniformly,
/// otherwise it defers to an inner (possibly adversarial) scheduler. This
/// realizes an *arbitrary* stochastic scheduler with threshold exactly
/// theta, the minimal assumption of Theorem 3.
class ThetaMixScheduler final : public Scheduler {
 public:
  /// Precondition: 0 < theta and n_max * theta <= 1 for every active-set
  /// size used (checked at next()).
  ThetaMixScheduler(double theta, std::unique_ptr<Scheduler> inner);

  std::size_t next(std::uint64_t tau, std::span<const std::size_t> active,
                   Xoshiro256pp& rng) override;
  double theta(std::size_t num_active) const override;
  void on_crash(std::size_t process) override { inner_->on_crash(process); }
  std::string name() const override;

 private:
  double theta_;
  std::unique_ptr<Scheduler> inner_;
};

}  // namespace pwf::core
