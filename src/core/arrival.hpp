// Arrival processes for the open-system engine.
//
// An ArrivalProcess generates the stream of client-arrival times. All
// randomness flows through the engine's Xoshiro256pp, so an arrival
// trajectory is a pure function of the seed — the open-system
// determinism tests pin this across thread counts.
//
// Discrete time: an interarrival of k means the next client lands k
// steps after the previous arrival (k >= 1). Poisson arrivals on a
// discrete clock are geometric interarrivals (a Bernoulli(rate) coin
// per step); the bursty/diurnal process modulates the rate with a
// square wave and samples by thinning at the peak rate.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace pwf::core {

/// Geometric(p) on {1, 2, ...}: steps until the first success of a
/// per-step Bernoulli(p). Consumes exactly one uniform draw. Returns
/// kNeverStep for p <= 0; returns 1 for p >= 1.
inline constexpr std::uint64_t kNeverStep = ~std::uint64_t{0};
std::uint64_t geometric_steps(double p, Xoshiro256pp& rng);

/// The stream of client-arrival times.
class ArrivalProcess {
 public:
  virtual ~ArrivalProcess() = default;

  /// Steps after `tau` until the next arrival (>= 1), or kNeverStep when
  /// the stream is exhausted. May consume rng.
  virtual std::uint64_t next_interarrival(std::uint64_t tau,
                                          Xoshiro256pp& rng) = 0;

  virtual std::string name() const = 0;
};

/// Poisson arrivals at `rate` clients per step (0 < rate <= 1):
/// geometric interarrivals, one RNG draw each.
class PoissonArrivals final : public ArrivalProcess {
 public:
  explicit PoissonArrivals(double rate);

  std::uint64_t next_interarrival(std::uint64_t tau,
                                  Xoshiro256pp& rng) override;
  std::string name() const override { return "poisson"; }

  double rate() const noexcept { return rate_; }

 private:
  double rate_;
};

/// Bursty / diurnal arrivals: the rate is a square wave — `burst_rate`
/// during the first `duty` fraction of every `period` steps, `base_rate`
/// otherwise. Sampled by thinning: candidates are drawn at the peak rate
/// and accepted with probability rate(t)/peak, which realizes exactly
/// the modulated process.
class BurstyArrivals final : public ArrivalProcess {
 public:
  /// Preconditions: 0 < base_rate, burst_rate <= 1; period >= 1;
  /// 0 < duty < 1.
  BurstyArrivals(double base_rate, double burst_rate, std::uint64_t period,
                 double duty);

  std::uint64_t next_interarrival(std::uint64_t tau,
                                  Xoshiro256pp& rng) override;
  std::string name() const override { return "bursty"; }

  /// The instantaneous rate at time `tau`; exposed for tests.
  double rate_at(std::uint64_t tau) const noexcept;

 private:
  double base_rate_;
  double burst_rate_;
  std::uint64_t period_;
  double duty_;
};

/// Deterministic replay of a recorded arrival trajectory: consumes no
/// randomness, lands a client at each listed time exactly once. Times
/// must be strictly increasing.
class ReplayArrivals final : public ArrivalProcess {
 public:
  explicit ReplayArrivals(std::vector<std::uint64_t> times);

  std::uint64_t next_interarrival(std::uint64_t tau,
                                  Xoshiro256pp& rng) override;
  std::string name() const override { return "replay"; }

 private:
  std::vector<std::uint64_t> times_;
  std::size_t idx_ = 0;
};

}  // namespace pwf::core
