#include "core/alias.hpp"

#include <algorithm>
#include <stdexcept>

namespace pwf::core {

void AliasTable::build(std::span<const std::size_t> ids,
                       std::span<const double> weights) {
  if (ids.size() != weights.size()) {
    throw std::invalid_argument("AliasTable::build: ids/weights size mismatch");
  }
  build_from(std::vector<std::size_t>(ids.begin(), ids.end()),
             std::vector<double>(weights.begin(), weights.end()));
}

void AliasTable::build_from(std::vector<std::size_t> ids,
                            std::vector<double> weights) {
  // Vose's O(k) alias-table construction: scale each probability by k,
  // then pair every under-full bucket with an over-full donor so each
  // bucket carries total mass exactly 1/k. The small/large stack order
  // is load-bearing: it fixes cut_/alias_ contents and therefore every
  // seeded draw stream downstream.
  const std::size_t k = ids.size();
  ids_ = std::move(ids);
  w_ = std::move(weights);
  alias_.assign(k, 0);
  cut_.assign(k, 1.0);
  dead_.assign(k, 0);
  bucket_ = BoundedDraw(k);

  table_total_ = 0.0;
  std::size_t max_id = 0;
  for (std::size_t b = 0; b < k; ++b) {
    if (!(w_[b] > 0.0)) {
      throw std::invalid_argument("AliasTable: weights must be > 0");
    }
    table_total_ += w_[b];
    max_id = std::max(max_id, ids_[b]);
  }
  std::vector<double> scaled(k);
  for (std::size_t b = 0; b < k; ++b) {
    scaled[b] = w_[b] * static_cast<double>(k) / table_total_;
  }

  std::vector<std::size_t> small, large;
  small.reserve(k);
  large.reserve(k);
  for (std::size_t b = 0; b < k; ++b) {
    (scaled[b] < 1.0 ? small : large).push_back(b);
  }
  while (!small.empty() && !large.empty()) {
    const std::size_t s = small.back();
    const std::size_t l = large.back();
    small.pop_back();
    cut_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] -= 1.0 - scaled[s];
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  // Leftovers (either list) have mass 1 up to rounding: keep own id.
  for (std::size_t b : small) cut_[b] = 1.0;
  for (std::size_t b : large) cut_[b] = 1.0;

  if (pos_.size() <= max_id) pos_.resize(max_id + 1, kNpos);
  std::fill(pos_.begin(), pos_.end(), kNpos);
  for (std::size_t b = 0; b < k; ++b) pos_[ids_[b]] = b;

  dead_count_ = 0;
  dead_mass_ = 0.0;
  fresh_ids_.clear();
  fresh_w_.clear();
  fresh_total_ = 0.0;
}

std::size_t AliasTable::draw(Xoshiro256pp& rng) const {
  if (fresh_total_ > 0.0) {
    // Arm pre-draw: fresh with probability fresh_mass / grand, table
    // otherwise. The table arm's conditional redraw below keeps the
    // overall ratios exact (see header).
    const double grand = table_total_ - dead_mass_ + fresh_total_;
    double u = rng.uniform_double() * grand;
    if (u < fresh_total_) {
      for (std::size_t i = 0; i + 1 < fresh_ids_.size(); ++i) {
        u -= fresh_w_[i];
        if (u < 0.0) return fresh_ids_[i];
      }
      return fresh_ids_.back();
    }
  }
  for (;;) {
    const std::size_t b = bucket_(rng);
    const std::size_t p =
        rng.uniform_double() < cut_[b] ? b : alias_[b];
    if (dead_count_ == 0 || !dead_[p]) return ids_[p];
  }
}

bool AliasTable::contains(std::size_t id) const noexcept {
  if (id < pos_.size() && pos_[id] != kNpos && !dead_[pos_[id]]) return true;
  return std::find(fresh_ids_.begin(), fresh_ids_.end(), id) !=
         fresh_ids_.end();
}

void AliasTable::remove(std::size_t id) {
  if (id < pos_.size() && pos_[id] != kNpos) {
    const std::size_t p = pos_[id];
    if (dead_[p]) throw std::logic_error("AliasTable::remove: already dead");
    dead_[p] = 1;
    ++dead_count_;
    dead_mass_ += w_[p];
    return;
  }
  const auto it = std::find(fresh_ids_.begin(), fresh_ids_.end(), id);
  if (it == fresh_ids_.end()) {
    throw std::logic_error("AliasTable::remove: id is not a member");
  }
  // Swap-remove: fresh order changes deterministically with the op
  // sequence, and the fresh distribution is order-independent.
  const std::size_t i = static_cast<std::size_t>(it - fresh_ids_.begin());
  fresh_total_ -= fresh_w_[i];
  fresh_ids_[i] = fresh_ids_.back();
  fresh_w_[i] = fresh_w_.back();
  fresh_ids_.pop_back();
  fresh_w_.pop_back();
  if (fresh_ids_.empty()) fresh_total_ = 0.0;  // clear rounding residue
}

void AliasTable::add(std::size_t id, double w) {
  if (!(w > 0.0)) {
    throw std::invalid_argument("AliasTable::add: weight must be > 0");
  }
  if (id < pos_.size() && pos_[id] != kNpos) {
    const std::size_t p = pos_[id];
    if (!dead_[p]) throw std::logic_error("AliasTable::add: already a member");
    // Revive: the restart path. The bucket masses for this position are
    // still exact for its original weight, so un-marking restores the
    // pre-departure distribution with no rebuild.
    dead_[p] = 0;
    --dead_count_;
    dead_mass_ -= w_[p];
    if (dead_count_ == 0) dead_mass_ = 0.0;  // clear rounding residue
    return;
  }
  fresh_ids_.push_back(id);
  fresh_w_.push_back(w);
  fresh_total_ += w;
}

bool AliasTable::needs_rebuild() const noexcept {
  if (ids_.empty()) return !fresh_ids_.empty();
  return dead_count_ * 4 > ids_.size() || fresh_ids_.size() * 4 > ids_.size();
}

std::vector<std::size_t> AliasTable::live_ids() const {
  std::vector<std::size_t> out;
  out.reserve(live_count());
  for (std::size_t b = 0; b < ids_.size(); ++b) {
    if (!dead_[b]) out.push_back(ids_[b]);
  }
  out.insert(out.end(), fresh_ids_.begin(), fresh_ids_.end());
  return out;
}

void AliasTable::rebuild() {
  std::vector<std::size_t> ids;
  std::vector<double> weights;
  ids.reserve(live_count());
  weights.reserve(live_count());
  for (std::size_t b = 0; b < ids_.size(); ++b) {
    if (!dead_[b]) {
      ids.push_back(ids_[b]);
      weights.push_back(w_[b]);
    }
  }
  ids.insert(ids.end(), fresh_ids_.begin(), fresh_ids_.end());
  weights.insert(weights.end(), fresh_w_.begin(), fresh_w_.end());
  build_from(std::move(ids), std::move(weights));
}

std::vector<double> AliasTable::probabilities(
    std::span<const std::size_t> query) const {
  // Per-position table mass reconstructed from the buckets: position p
  // receives cut_[p]/k from its own bucket plus (1-cut_[b])/k from every
  // bucket aliasing to it.
  const std::size_t k = ids_.size();
  std::vector<double> mass(k, 0.0);
  if (k > 0) {
    const double bucket_mass = 1.0 / static_cast<double>(k);
    for (std::size_t b = 0; b < k; ++b) {
      mass[b] += bucket_mass * cut_[b];
      mass[alias_[b]] += bucket_mass * (1.0 - cut_[b]);
    }
  }
  double live_table_mass = 0.0;
  for (std::size_t b = 0; b < k; ++b) {
    if (!dead_[b]) live_table_mass += mass[b];
  }
  const double table_arm =
      fresh_total_ > 0.0
          ? (table_total_ - dead_mass_) /
                (table_total_ - dead_mass_ + fresh_total_)
          : 1.0;
  const double grand = table_total_ - dead_mass_ + fresh_total_;

  std::vector<double> out(query.size(), 0.0);
  for (std::size_t i = 0; i < query.size(); ++i) {
    const std::size_t id = query[i];
    if (id < pos_.size() && pos_[id] != kNpos && !dead_[pos_[id]]) {
      const std::size_t p = pos_[id];
      out[i] = live_table_mass > 0.0
                   ? table_arm * mass[p] / live_table_mass
                   : 0.0;
      continue;
    }
    for (std::size_t f = 0; f < fresh_ids_.size(); ++f) {
      if (fresh_ids_[f] == id) {
        out[i] = fresh_w_[f] / grand;
        break;
      }
    }
  }
  return out;
}

}  // namespace pwf::core
