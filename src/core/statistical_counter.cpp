#include "core/statistical_counter.hpp"

#include <memory>
#include <stdexcept>

namespace pwf::core {

StatisticalCounter::StatisticalCounter(std::size_t pid, std::size_t n,
                                       double read_fraction,
                                       std::uint64_t seed)
    : pid_(pid), n_(n), read_fraction_(read_fraction),
      rng_(seed ^ (0x9e3779b97f4a7c15ULL * (pid + 1))) {
  if (pid >= n) throw std::invalid_argument("StatisticalCounter: pid >= n");
  if (!(read_fraction >= 0.0 && read_fraction <= 1.0)) {
    throw std::invalid_argument(
        "StatisticalCounter: read_fraction in [0, 1]");
  }
  begin_op();
}

StepMachineFactory StatisticalCounter::factory(double read_fraction,
                                               std::uint64_t seed) {
  return [read_fraction, seed](std::size_t pid, std::size_t n) {
    return std::make_unique<StatisticalCounter>(pid, n, read_fraction, seed);
  };
}

void StatisticalCounter::begin_op() {
  reading_ = rng_.bernoulli(read_fraction_);
  scan_index_ = 0;
  accum_ = 0;
}

bool StatisticalCounter::step(SharedMemory& mem) {
  if (!reading_) {
    // Increment: one uncontended write to our own subcounter. Wait-free
    // with a hard bound of 1 — no sqrt(n) factor anywhere.
    ++local_count_;
    mem.write(pid_, local_count_);
    ++increments_;
    begin_op();
    return true;
  }
  // Read: sum the n subcounters, one register per step.
  accum_ += mem.read(scan_index_);
  if (++scan_index_ == n_) {
    last_read_ = accum_;
    ++reads_;
    begin_op();
    return true;
  }
  return false;
}

}  // namespace pwf::core
