// The step-machine abstraction: an algorithm, expressed so that each
// scheduled time unit performs exactly one shared-memory operation
// (paper, Section 2.1: "a process can perform any number of local
// computations ... after which it issues a step, which consists of a
// single shared memory operation").
//
// A step machine runs an infinite sequence of method invocations; step()
// reports when the current invocation completes so the engine can record
// latencies.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <string>

#include "core/memory.hpp"
#include "core/op_trace.hpp"

namespace pwf::core {

/// One process's algorithm as an explicit state machine.
class StepMachine {
 public:
  virtual ~StepMachine() = default;

  /// Performs exactly one shared-memory operation (plus any amount of local
  /// computation). Returns true iff this step completed the process's
  /// current method invocation; the next step then begins a new invocation.
  virtual bool step(SharedMemory& mem) = 0;

  virtual std::string name() const = 0;

  /// Attaches an operation-trace sink (nullptr detaches). Machines that
  /// model checkable abstract objects emit invoke/response events to it;
  /// the default is a no-op so purely synthetic workloads need not care.
  virtual void set_trace(OpTraceSink* sink) { (void)sink; }
};

/// Creates the step machine for process `process_id` out of `n` processes.
using StepMachineFactory =
    std::function<std::unique_ptr<StepMachine>(std::size_t process_id,
                                               std::size_t n)>;

}  // namespace pwf::core
