#include "core/simulation.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace pwf::core {

double LatencyReport::completion_rate() const {
  return steps ? static_cast<double>(completions) / static_cast<double>(steps)
               : 0.0;
}

double LatencyReport::system_latency() const { return system_gaps.mean(); }

double LatencyReport::individual_latency(std::size_t p) const {
  return individual_gaps.at(p).mean();
}

double LatencyReport::max_individual_latency() const {
  double worst = 0.0;
  for (const auto& gaps : individual_gaps) {
    worst = std::max(worst, gaps.mean());
  }
  return worst;
}

void LatencyReport::mark_retired(std::size_t p) {
  if (retired.size() < completions_per_process.size()) {
    retired.resize(completions_per_process.size(), 0);
  }
  retired.at(p) = 1;
}

std::uint64_t LatencyReport::min_completions() const {
  // A default-constructed report tracks no processes; "every process
  // progressed" is vacuous, but returning the UINT64_MAX fold identity
  // would make an empty window look infinitely productive. The same
  // guard covers the all-retired window: no live process means no
  // fairness claim, not an infinitely productive one.
  std::uint64_t lo = std::numeric_limits<std::uint64_t>::max();
  bool any_live = false;
  for (std::size_t p = 0; p < completions_per_process.size(); ++p) {
    if (p < retired.size() && retired[p]) continue;
    any_live = true;
    lo = std::min(lo, completions_per_process[p]);
  }
  return any_live ? lo : 0;
}

Simulation::Simulation(std::size_t n, const StepMachineFactory& factory,
                       std::unique_ptr<Scheduler> scheduler, Options options)
    : memory_(options.num_registers, options.initial_value),
      scheduler_(std::move(scheduler)),
      rng_(options.seed),
      loop_mode_(options.loop_mode) {
  if (n == 0) throw std::invalid_argument("Simulation: need n >= 1");
  if (!scheduler_) throw std::invalid_argument("Simulation: null scheduler");
  for (const auto& [reg, value] : options.initial_values) {
    memory_.poke(reg, value);
  }
  machines_.reserve(n);
  for (std::size_t p = 0; p < n; ++p) machines_.push_back(factory(p, n));
  active_.resize(n);
  for (std::size_t p = 0; p < n; ++p) active_[p] = p;
  report_.individual_gaps.resize(n);
  report_.completions_per_process.assign(n, 0);
  report_.steps_per_process.assign(n, 0);
  report_.retired.assign(n, 0);
  last_completion_by_.assign(n, 0);
}

void Simulation::schedule_crash(std::uint64_t tau, std::size_t process) {
  if (process >= machines_.size()) {
    throw std::out_of_range("schedule_crash: process out of range");
  }
  if (tau < now_) {
    throw std::invalid_argument("schedule_crash: time already passed");
  }
  // Insert at the binary-searched position (after equal taus, matching
  // the old stable_sort's insertion-order tie-break). Already-applied
  // entries (before next_crash_) all have tau <= now_ <= the new tau, so
  // the insertion point is at or beyond the cursor and it needs no
  // rescan — registering k crashes is O(k log k + k) moves, not O(k^2).
  const auto pos = std::upper_bound(
      crash_plan_.begin(), crash_plan_.end(), tau,
      [](std::uint64_t t, const Crash& c) { return t < c.tau; });
  crash_plan_.insert(pos, {tau, process});
}

void Simulation::apply_crashes() {
  while (next_crash_ < crash_plan_.size() &&
         crash_plan_[next_crash_].tau <= now_) {
    const std::size_t victim = crash_plan_[next_crash_].process;
    ++next_crash_;
    // active_ is sorted ascending (crashes only erase, never reorder).
    auto it = std::lower_bound(active_.begin(), active_.end(), victim);
    if (it == active_.end() || *it != victim) continue;  // already crashed
    if (active_.size() == 1) {
      throw std::logic_error(
          "Simulation: cannot crash the last active process (at most n-1 "
          "crashes allowed)");
    }
    active_.erase(it);  // keeps the vector sorted
    scheduler_->on_crash(victim);
    report_.mark_retired(victim);
  }
}

void Simulation::run(std::uint64_t steps) {
  if (loop_mode_ == LoopMode::legacy) {
    run_legacy(steps);
    return;
  }
  // Segmented hot loop: after apply_crashes() every pending crash has
  // tau > now_, so the steps up to the next crash event are crash-free
  // and run without a per-step plan probe. The observer branch is
  // resolved once per segment, not once per step.
  std::uint64_t remaining = steps;
  while (remaining > 0) {
    apply_crashes();
    std::uint64_t segment = remaining;
    if (next_crash_ < crash_plan_.size()) {
      const std::uint64_t gap = crash_plan_[next_crash_].tau - now_;
      if (gap < segment) segment = gap;
    }
    if (observer_ != nullptr) {
      run_segment<true>(segment);
    } else {
      run_segment<false>(segment);
    }
    remaining -= segment;
  }
}

template <bool WithObserver>
void Simulation::run_segment(std::uint64_t count) {
  Scheduler& sched = *scheduler_;
  const std::span<const std::size_t> active(active_);
  if (!sched.batch_safe()) {
    // Adversarial strategies may read simulation state between steps;
    // draw one process at a time so each draw sees the current state.
    for (std::uint64_t i = 0; i < count; ++i) {
      const std::size_t p = sched.next(now_, active, rng_);
      ++now_;
      const bool completed = machines_[p]->step(memory_);

      ++report_.steps_per_process[p];
      if (completed) {
        ++report_.completions;
        ++report_.completions_per_process[p];
        report_.system_gaps.add(
            static_cast<double>(now_ - last_completion_));
        last_completion_ = now_;
        report_.individual_gaps[p].add(
            static_cast<double>(now_ - last_completion_by_[p]));
        last_completion_by_[p] = now_;
      }
      if constexpr (WithObserver) observer_->on_step(now_, p, completed);
    }
    report_.steps += count;
    return;
  }
  // Batched path: the whole segment is membership-stable, so chunks of
  // draws are hoisted out of the step loop through next_batch (stream-
  // and value-identical to per-step next() by the scheduler contract).
  if (draw_buf_.size() < kDrawBatch) {
    draw_buf_.resize(std::min<std::uint64_t>(count, kDrawBatch));
  }
  std::uint64_t done = 0;
  while (done < count) {
    const std::size_t chunk = static_cast<std::size_t>(
        std::min<std::uint64_t>(count - done, kDrawBatch));
    const std::span<std::size_t> draws(draw_buf_.data(), chunk);
    sched.next_batch(now_, active, rng_, draws);
    for (std::size_t i = 0; i < chunk; ++i) {
      const std::size_t p = draws[i];
      ++now_;
      const bool completed = machines_[p]->step(memory_);

      ++report_.steps_per_process[p];
      if (completed) {
        ++report_.completions;
        ++report_.completions_per_process[p];
        report_.system_gaps.add(
            static_cast<double>(now_ - last_completion_));
        last_completion_ = now_;
        report_.individual_gaps[p].add(
            static_cast<double>(now_ - last_completion_by_[p]));
        last_completion_by_[p] = now_;
      }
      if constexpr (WithObserver) observer_->on_step(now_, p, completed);
    }
    done += chunk;
  }
  report_.steps += count;  // hoisted: one add per segment, not per step
}

void Simulation::run_legacy(std::uint64_t steps) {
  for (std::uint64_t i = 0; i < steps; ++i) {
    apply_crashes();
    const std::size_t p = scheduler_->next(now_, active_, rng_);
    ++now_;
    const bool completed = machines_[p]->step(memory_);

    ++report_.steps;
    ++report_.steps_per_process[p];
    if (completed) {
      ++report_.completions;
      ++report_.completions_per_process[p];
      report_.system_gaps.add(
          static_cast<double>(now_ - last_completion_));
      last_completion_ = now_;
      report_.individual_gaps[p].add(
          static_cast<double>(now_ - last_completion_by_[p]));
      last_completion_by_[p] = now_;
    }
    if (observer_) observer_->on_step(now_, p, completed);
  }
}

void Simulation::reset_stats() {
  const std::size_t n = machines_.size();
  report_ = LatencyReport{};
  report_.individual_gaps.resize(n);
  report_.completions_per_process.assign(n, 0);
  report_.steps_per_process.assign(n, 0);
  // Processes already out of the active set stay retired in the fresh
  // window: they can never complete again, so counting their zero
  // completions would report permanent starvation for a process that is
  // simply gone.
  report_.retired.assign(n, 1);
  for (std::size_t p : active_) report_.retired[p] = 0;
  last_completion_ = now_;
  last_completion_by_.assign(n, now_);
}

std::uint64_t Simulation::open_gap(std::size_t p) const {
  return now_ - last_completion_by_.at(p);
}

}  // namespace pwf::core
