#include "core/algorithms.hpp"

#include <memory>
#include <stdexcept>

namespace pwf::core {

// --- ScuAlgorithm ------------------------------------------------------------

ScuAlgorithm::ScuAlgorithm(std::size_t pid, std::size_t n, std::size_t q,
                           std::size_t s)
    : pid_(pid), n_(n), q_(q), s_(s) {
  if (s < 1) throw std::invalid_argument("ScuAlgorithm: need s >= 1");
  if (pid >= n) throw std::invalid_argument("ScuAlgorithm: pid >= n");
  scu_reset(state_, q_);
}

std::size_t ScuAlgorithm::registers_required(std::size_t n, std::size_t s) {
  return s + n;
}

bool ScuAlgorithm::step(SharedMemory& mem) {
  return scu_step(state_, pid_, n_, q_, s_, mem);
}

std::string ScuAlgorithm::name() const {
  return "SCU(" + std::to_string(q_) + "," + std::to_string(s_) + ")";
}

StepMachineFactory ScuAlgorithm::factory(std::size_t q, std::size_t s) {
  return [q, s](std::size_t pid, std::size_t n) {
    return std::make_unique<ScuAlgorithm>(pid, n, q, s);
  };
}

StepMachineFactory scan_validate_factory() {
  return ScuAlgorithm::factory(/*q=*/0, /*s=*/1);
}

// --- ParallelCode ------------------------------------------------------------

ParallelCode::ParallelCode(std::size_t pid, std::size_t q)
    : pid_(pid), q_(q) {
  if (q < 1) throw std::invalid_argument("ParallelCode: need q >= 1");
}

bool ParallelCode::step(SharedMemory& mem) {
  return parallel_step(state_, q_, mem);
}

std::string ParallelCode::name() const {
  return "parallel-code(q=" + std::to_string(q_) + ")";
}

StepMachineFactory ParallelCode::factory(std::size_t q) {
  return [q](std::size_t pid, std::size_t /*n*/) {
    return std::make_unique<ParallelCode>(pid, q);
  };
}

// --- FetchAndIncrement -------------------------------------------------------

FetchAndIncrement::FetchAndIncrement(std::size_t pid) : pid_(pid) { (void)pid_; }

bool FetchAndIncrement::step(SharedMemory& mem) {
  if (trace_ && !invoked_) {
    trace_->on_invoke(pid_, OpCode::kFetchInc, false, 0);
    invoked_ = true;
  }
  Value before = 0;
  if (fetch_inc_step(state_, mem, before)) {
    if (trace_) trace_->on_response(pid_, OpCode::kFetchInc, true, before);
    invoked_ = false;
    return true;
  }
  return false;
}

StepMachineFactory FetchAndIncrement::factory() {
  return [](std::size_t pid, std::size_t /*n*/) {
    return std::make_unique<FetchAndIncrement>(pid);
  };
}

// --- ShardedCounter ----------------------------------------------------------

ShardedCounter::ShardedCounter(std::size_t pid, std::size_t num_counters)
    : pid_(pid), num_counters_(num_counters), local_(num_counters, 0) {
  if (num_counters == 0) {
    throw std::invalid_argument("ShardedCounter: need num_counters >= 1");
  }
}

bool ShardedCounter::step(SharedMemory& mem) {
  if (!invoked_) {
    // Splitmix-style key pick: deterministic in (pid, op index), spread
    // across the counters so per-counter concurrency stays non-trivial.
    std::uint64_t z =
        (static_cast<std::uint64_t>(pid_) << 32) + op_index_ +
        0x9E3779B97F4A7C15ULL;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    key_ = static_cast<std::size_t>((z ^ (z >> 31)) % num_counters_);
    if (trace_) {
      trace_->on_invoke(pid_, OpCode::kFetchInc, true,
                        static_cast<Value>(key_));
    }
    invoked_ = true;
  }
  Value& local = local_[key_];
  const Value before = mem.cas_fetch(key_, local, local + 1);
  if (before == local) {
    local = local + 1;  // as in FetchAndIncrement: the winner stays current
    if (trace_) trace_->on_response(pid_, OpCode::kFetchInc, true, before);
    invoked_ = false;
    ++op_index_;
    return true;
  }
  local = before;
  return false;
}

StepMachineFactory ShardedCounter::factory(std::size_t num_counters) {
  return [num_counters](std::size_t pid, std::size_t /*n*/) {
    return std::make_unique<ShardedCounter>(pid, num_counters);
  };
}

// --- UnboundedLockFree -------------------------------------------------------

UnboundedLockFree::UnboundedLockFree(std::size_t pid, std::size_t n,
                                     std::uint64_t penalty_cap)
    : pid_(pid), n_(n), penalty_cap_(penalty_cap) {
  (void)pid_;
}

bool UnboundedLockFree::step(SharedMemory& mem) {
  if (penalty_ > 0) {
    mem.read(1);  // for j = 1 .. n^2 * v do read(R)
    --penalty_;
    return false;
  }
  const Value before = mem.cas_fetch(0, v_, v_ + 1);
  if (before == v_) {
    v_ = v_ + 1;  // winner keeps the current value (Lemma 2's analysis)
    return true;
  }
  v_ = before;
  penalty_ = static_cast<std::uint64_t>(n_) * n_ * v_;
  if (penalty_cap_ != 0 && penalty_ > penalty_cap_) penalty_ = penalty_cap_;
  return false;
}

StepMachineFactory UnboundedLockFree::factory() {
  return [](std::size_t pid, std::size_t n) {
    return std::make_unique<UnboundedLockFree>(pid, n);
  };
}

StepMachineFactory UnboundedLockFree::capped_factory(
    std::uint64_t penalty_cap) {
  return [penalty_cap](std::size_t pid, std::size_t n) {
    return std::make_unique<UnboundedLockFree>(pid, n, penalty_cap);
  };
}

}  // namespace pwf::core
