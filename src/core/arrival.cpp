#include "core/arrival.hpp"

#include <cmath>
#include <stdexcept>

namespace pwf::core {

std::uint64_t geometric_steps(double p, Xoshiro256pp& rng) {
  if (!(p > 0.0)) return kNeverStep;
  if (p >= 1.0) {
    (void)rng.uniform_double();  // fixed one-draw budget across p
    return 1;
  }
  // Inverse-CDF: k = 1 + floor(log(1-u) / log(1-p)), u ~ U[0,1).
  const double u = rng.uniform_double();
  const double k = std::floor(std::log1p(-u) / std::log1p(-p));
  if (!(k < 9.0e18)) return kNeverStep;  // overflow guard (tiny p, u near 1)
  return 1 + static_cast<std::uint64_t>(k);
}

PoissonArrivals::PoissonArrivals(double rate) : rate_(rate) {
  if (!(rate > 0.0 && rate <= 1.0)) {
    throw std::invalid_argument("PoissonArrivals: need 0 < rate <= 1");
  }
}

std::uint64_t PoissonArrivals::next_interarrival(std::uint64_t /*tau*/,
                                                 Xoshiro256pp& rng) {
  return geometric_steps(rate_, rng);
}

BurstyArrivals::BurstyArrivals(double base_rate, double burst_rate,
                               std::uint64_t period, double duty)
    : base_rate_(base_rate),
      burst_rate_(burst_rate),
      period_(period),
      duty_(duty) {
  if (!(base_rate > 0.0 && base_rate <= 1.0) ||
      !(burst_rate > 0.0 && burst_rate <= 1.0)) {
    throw std::invalid_argument("BurstyArrivals: rates must be in (0, 1]");
  }
  if (period < 1) throw std::invalid_argument("BurstyArrivals: period >= 1");
  if (!(duty > 0.0 && duty < 1.0)) {
    throw std::invalid_argument("BurstyArrivals: need 0 < duty < 1");
  }
}

double BurstyArrivals::rate_at(std::uint64_t tau) const noexcept {
  const double phase = static_cast<double>(tau % period_) /
                       static_cast<double>(period_);
  return phase < duty_ ? burst_rate_ : base_rate_;
}

std::uint64_t BurstyArrivals::next_interarrival(std::uint64_t tau,
                                                Xoshiro256pp& rng) {
  // Thinning (Lewis & Shedler): draw candidates at the peak rate and
  // accept with probability rate(candidate)/peak. Exact for any
  // piecewise rate bounded by the peak, and every draw is a pure
  // function of the rng stream — deterministic replay holds.
  const double peak =
      base_rate_ > burst_rate_ ? base_rate_ : burst_rate_;
  std::uint64_t t = tau;
  for (;;) {
    const std::uint64_t gap = geometric_steps(peak, rng);
    if (gap == kNeverStep || kNeverStep - t <= gap) return kNeverStep;
    t += gap;
    if (rng.uniform_double() * peak < rate_at(t)) return t - tau;
  }
}

ReplayArrivals::ReplayArrivals(std::vector<std::uint64_t> times)
    : times_(std::move(times)) {
  for (std::size_t i = 1; i < times_.size(); ++i) {
    if (times_[i] <= times_[i - 1]) {
      throw std::invalid_argument(
          "ReplayArrivals: times must be strictly increasing");
    }
  }
}

std::uint64_t ReplayArrivals::next_interarrival(std::uint64_t tau,
                                                Xoshiro256pp& /*rng*/) {
  while (idx_ < times_.size() && times_[idx_] <= tau) ++idx_;
  if (idx_ == times_.size()) return kNeverStep;
  return times_[idx_++] - tau;
}

}  // namespace pwf::core
