#include "core/sim_skiplist.hpp"

#include <memory>
#include <stdexcept>

namespace pwf::core {

namespace {

// splitmix64 finalizer — op selection must be a pure function of
// (pid, op index) so record/replay and forced schedules are stable.
std::uint64_t mix(std::uint64_t z) {
  z += 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

SimSkipList::SimSkipList(std::size_t pid, std::size_t n,
                         SimSkipListConfig config)
    : config_(config), pid_(pid), n_(n), phase_(Phase::kSearchReadPredNext) {
  if (pid >= n) throw std::invalid_argument("SimSkipList: pid >= n");
  if (config_.key_space < 2 || config_.key_space > kRefMask) {
    throw std::invalid_argument("SimSkipList: key_space out of range");
  }
  if (config_.novalidate &&
      config_.strategy != lockfree::SyncStrategy::kOptimistic) {
    throw std::invalid_argument(
        "SimSkipList: novalidate only applies to the optimistic strategy");
  }
  if (config_.contains_pct + config_.insert_pct > 100) {
    throw std::invalid_argument("SimSkipList: op mix exceeds 100%");
  }
  begin_op();
}

std::size_t SimSkipList::registers_required(std::size_t /*n*/,
                                            const SimSkipListConfig& config) {
  return 4 + 3 * config.key_space;
}

StepMachineFactory SimSkipList::factory(SimSkipListConfig config) {
  return [config](std::size_t pid, std::size_t n) {
    return std::make_unique<SimSkipList>(pid, n, config);
  };
}

std::string SimSkipList::name() const {
  // Local switch instead of lockfree::sync_strategy_name(): core must not
  // link against pwf_lockfree (the strategy header is include-only).
  const char* tag = "lockfree";
  switch (config_.strategy) {
    case lockfree::SyncStrategy::kCoarse: tag = "coarse"; break;
    case lockfree::SyncStrategy::kOptimistic: tag = "optimistic"; break;
    case lockfree::SyncStrategy::kLockFree: tag = "lockfree"; break;
  }
  std::string s = "sim-skiplist-";
  s += tag;
  if (config_.novalidate) s += "-novalidate";
  return s;
}

void SimSkipList::begin_op() {
  const std::uint64_t h = mix(mix(pid_ + 1) ^ op_counter_);
  key_ = 1 + h % config_.key_space;
  if (config_.contains_pct == 0 && config_.insert_pct == 0) {
    // Legacy uniform mix: checker workloads pin this op sequence.
    switch ((h >> 33) % 3) {
      case 0: kind_ = OpKind::kInsert; break;
      case 1: kind_ = OpKind::kErase; break;
      default: kind_ = OpKind::kContains; break;
    }
  } else {
    const std::uint64_t roll = (h >> 33) % 100;
    if (roll < config_.contains_pct) {
      kind_ = OpKind::kContains;
    } else if (roll < config_.contains_pct + config_.insert_pct) {
      kind_ = OpKind::kInsert;
    } else {
      kind_ = OpKind::kErase;
    }
  }
  // Reset all per-op scratch.
  found_ = false;
  claimed_ = false;
  marked_by_us_ = false;
  relinking_ = false;
  lock_count_ = 0;
  lock_idx_ = 0;
  validate_level_ = 0;
  result_ = 0;
  unlock_outcome_ = -1;
  if (config_.strategy == lockfree::SyncStrategy::kCoarse) {
    phase_ = Phase::kCoarseAcquire;
  } else {
    restart_search();
  }
}

void SimSkipList::complete(Value ret) {
  ++ops_completed_;
  switch (kind_) {
    case OpKind::kInsert: inserts_ok_ += ret; break;
    case OpKind::kErase: erases_ok_ += ret; break;
    case OpKind::kContains: contains_hits_ += ret; break;
  }
  if (trace_) {
    OpCode code = OpCode::kContains;
    if (kind_ == OpKind::kInsert) code = OpCode::kInsert;
    if (kind_ == OpKind::kErase) code = OpCode::kErase;
    trace_->on_response(pid_, code, true, ret);
  }
  invoked_ = false;
  ++op_counter_;
  begin_op();
}

void SimSkipList::restart_search() {
  level_ = 1;
  walk_pred_ = 0;
  walk_pred_snap_ = 0;
  phase_ = Phase::kSearchReadPredNext;
}

bool SimSkipList::step(SharedMemory& mem) {
  if (trace_ && !invoked_) {
    OpCode code = OpCode::kContains;
    if (kind_ == OpKind::kInsert) code = OpCode::kInsert;
    if (kind_ == OpKind::kErase) code = OpCode::kErase;
    trace_->on_invoke(pid_, code, true, key_);
    invoked_ = true;
  }
  switch (phase_) {
    case Phase::kSearchReadPredNext:
    case Phase::kSearchReadCurrNext:
    case Phase::kSearchSnipCas:
      return step_search(mem);
    default:
      break;
  }
  switch (config_.strategy) {
    case lockfree::SyncStrategy::kCoarse: return step_coarse(mem);
    case lockfree::SyncStrategy::kOptimistic: return step_optimistic(mem);
    case lockfree::SyncStrategy::kLockFree: return step_lockfree(mem);
  }
  return false;  // unreachable
}

// --- shared search walker --------------------------------------------------

bool SimSkipList::step_search(SharedMemory& mem) {
  const bool snip = config_.strategy == lockfree::SyncStrategy::kLockFree;
  switch (phase_) {
    case Phase::kSearchReadPredNext: {
      walk_pred_snap_ = mem.read(next_reg(walk_pred_, level_));
      if (snip && walk_pred_ != 0 && next_mark(walk_pred_snap_)) {
        // The pred we resumed from (the level-1 pred, re-read here at
        // level 0) was erased in between: the mark lives on its own next
        // register. Linking under it would CAS against the marked snap
        // and clear the tombstone — resurrecting a deleted node. Rescan
        // from the head, whose next is never marked.
        restart_search();
        return false;
      }
      walk_curr_ = next_ref(walk_pred_snap_);
      if (walk_curr_ == 0) return finish_level(/*curr_snap_valid=*/false);
      phase_ = Phase::kSearchReadCurrNext;
      return false;
    }
    case Phase::kSearchReadCurrNext: {
      walk_curr_snap_ = mem.read(next_reg(walk_curr_, level_));
      if (snip && next_mark(walk_curr_snap_)) {
        phase_ = Phase::kSearchSnipCas;
        return false;
      }
      if (walk_curr_ < key_) {
        // Advance: curr becomes pred; its next (just read) names the new
        // curr, so no extra read is needed before examining it.
        walk_pred_ = walk_curr_;
        walk_pred_snap_ = walk_curr_snap_;
        walk_curr_ = next_ref(walk_curr_snap_);
        if (walk_curr_ == 0) return finish_level(false);
        return false;  // stay in kSearchReadCurrNext for the new curr
      }
      return finish_level(true);
    }
    case Phase::kSearchSnipCas: {
      // Helping: unlink the marked curr from pred at this level. curr's
      // next registers are frozen while it is marked and linked (writers
      // need the slot claim, which needs curr unlinked), so the successor
      // we splice in is current.
      const Value desired =
          bump_next(walk_pred_snap_, next_ref(walk_curr_snap_), false);
      if (mem.cas(next_reg(walk_pred_, level_), walk_pred_snap_, desired)) {
        walk_pred_snap_ = desired;
        walk_curr_ = next_ref(walk_curr_snap_);
        if (walk_curr_ == 0) return finish_level(false);
        phase_ = Phase::kSearchReadCurrNext;
      } else {
        restart_search();  // pred moved under us; rescan from the top
      }
      return false;
    }
    default:
      break;
  }
  return false;  // unreachable
}

bool SimSkipList::finish_level(bool curr_snap_valid) {
  preds_[level_] = walk_pred_;
  preds_snap_[level_] = walk_pred_snap_;
  succs_[level_] = walk_curr_;
  succs_snap_[level_] = curr_snap_valid ? walk_curr_snap_ : 0;
  if (level_ == 1) {
    level_ = 0;
    // Keys are slot refs, so continuing from the level-1 pred is sound:
    // its key is < ours whenever it is a real node.
    walk_curr_ = 0;
    phase_ = Phase::kSearchReadPredNext;
    return false;
  }
  found_ = succs_[0] == key_;
  return after_search();
}

bool SimSkipList::after_search() {
  switch (config_.strategy) {
    case lockfree::SyncStrategy::kCoarse: {
      // Lock already held; the walk and the writes below are one critical
      // section.
      switch (kind_) {
        case OpKind::kInsert:
          if (found_) {
            result_ = 0;
            phase_ = Phase::kCoarseRelease;
          } else {
            result_ = 1;
            phase_ = tall(key_) ? Phase::kCoarseWriteSlotNext1
                                : Phase::kCoarseWriteSlotNext0;
          }
          return false;
        case OpKind::kErase:
          if (!found_) {
            result_ = 0;
            phase_ = Phase::kCoarseRelease;
          } else {
            result_ = 1;
            phase_ = tall(key_) ? Phase::kCoarseUnlink1 : Phase::kCoarseUnlink0;
          }
          return false;
        case OpKind::kContains:
          result_ = found_ ? 1 : 0;
          phase_ = Phase::kCoarseRelease;
          return false;
      }
      return false;
    }
    case lockfree::SyncStrategy::kOptimistic: {
      switch (kind_) {
        case OpKind::kInsert:
          if (found_) {
            // With the claim held, "found" is impossible (only the claim
            // holder links this key); defensively release and rescan.
            phase_ = claimed_ ? Phase::kOptReleaseClaimDup
                              : Phase::kOptReadFoundState;
          } else if (!claimed_) {
            phase_ = Phase::kOptClaimRead;
          } else {
            setup_pred_locks(height());
            phase_ = Phase::kOptLockRead;
          }
          return false;
        case OpKind::kErase:
          if (marked_by_us_) {
            // Victim is locked + marked by us; this rescan only refreshes
            // the predecessors for the unlink window.
            setup_pred_locks(height());
            phase_ = Phase::kOptLockRead;
            return false;
          }
          if (!found_) {
            complete(0);
            return true;
          }
          phase_ = Phase::kOptEraseReadVictimState;
          return false;
        case OpKind::kContains:
          if (!found_) {
            complete(0);
            return true;
          }
          phase_ = Phase::kOptReadFoundState;
          return false;
      }
      return false;
    }
    case lockfree::SyncStrategy::kLockFree: {
      switch (kind_) {
        case OpKind::kInsert:
          if (relinking_) {
            // Already linearized (level-0 link succeeded); we only came
            // back to finish or abandon the level-1 index link.
            if (succs_[0] != key_ || succs_[1] == key_) {
              phase_ = Phase::kLfReleaseClaim;  // erased, or already linked
            } else {
              phase_ = Phase::kLfCheckSlotNext1;
            }
            return false;
          }
          if (found_) {
            if (claimed_) {
              // Normal duplicate path under claim: the claim CAS only
              // checks the lock bit, so a *live* key's slot is claimable
              // (its previous claimant released after linking). The
              // post-claim search finding it is the duplicate verdict.
              result_ = 0;
              phase_ = Phase::kLfReleaseClaim;
              return false;
            }
            complete(0);
            return true;
          }
          if (!claimed_) {
            phase_ = Phase::kLfClaimRead;
            return false;
          }
          if (succs_[1] == key_) {
            // Slot aliasing: the level-1 pass saw this key's previous
            // (live, claim-free) incarnation, and a concurrent erase
            // removed it from level 0 before our level-0 pass. Using that
            // succ would write a self-loop. By now the erase has marked
            // the old next1 (tall erases mark top-down), so one fresh
            // search snips the stale index link and converges.
            restart_search();
            return false;
          }
          phase_ = Phase::kLfReadSlotNext0;  // (re)build the slot and link
          return false;
        case OpKind::kErase:
          if (!found_) {
            complete(0);
            return true;
          }
          // succs_snap_[0] is the victim's next0, read while the victim was
          // linked and unmarked — a sound CAS expectation for the mark (any
          // intervening erase or reuse bumps the tag and fails it).
          reg_snap_ = succs_snap_[0];
          phase_ = tall(key_) ? Phase::kLfEraseReadNext1
                              : Phase::kLfEraseMark0Cas;
          return false;
        case OpKind::kContains:
          complete(found_ ? 1 : 0);
          return true;
      }
      return false;
    }
  }
  return false;  // unreachable
}

// --- coarse ----------------------------------------------------------------

bool SimSkipList::step_coarse(SharedMemory& mem) {
  switch (phase_) {
    case Phase::kCoarseAcquire:
      if (mem.cas(0, 0, static_cast<Value>(pid_ + 1))) restart_search();
      return false;  // on failure: spin (stay in kCoarseAcquire)
    case Phase::kCoarseWriteSlotNext1:
      mem.write(next_reg(key_, 1), pack_next(0, succs_[1], false));
      phase_ = Phase::kCoarseWriteSlotNext0;
      return false;
    case Phase::kCoarseWriteSlotNext0:
      mem.write(next_reg(key_, 0), pack_next(0, succs_[0], false));
      phase_ = Phase::kCoarseLink0;
      return false;
    case Phase::kCoarseLink0:
      mem.write(next_reg(preds_[0], 0), pack_next(0, key_, false));
      phase_ = tall(key_) ? Phase::kCoarseLink1 : Phase::kCoarseRelease;
      return false;
    case Phase::kCoarseLink1:
      mem.write(next_reg(preds_[1], 1), pack_next(0, key_, false));
      phase_ = Phase::kCoarseRelease;
      return false;
    case Phase::kCoarseUnlink1:
      mem.write(next_reg(preds_[1], 1),
                pack_next(0, next_ref(succs_snap_[1]), false));
      phase_ = Phase::kCoarseUnlink0;
      return false;
    case Phase::kCoarseUnlink0:
      mem.write(next_reg(preds_[0], 0),
                pack_next(0, next_ref(succs_snap_[0]), false));
      phase_ = Phase::kCoarseRelease;
      return false;
    case Phase::kCoarseRelease: {
      mem.write(0, 0);
      const Value ret = result_;
      complete(ret);
      return true;
    }
    default:
      break;
  }
  return false;  // unreachable
}

// --- optimistic ------------------------------------------------------------

void SimSkipList::setup_pred_locks(int levels) {
  // Lock distinct predecessors in ascending level order. Level-0 preds
  // have keys >= level-1 preds, so lock order is by non-increasing key —
  // the same deadlock-freedom argument as the native lazy list (an erase's
  // victim, locked before this window, has the largest key of all).
  lock_targets_[0] = preds_[0];
  lock_count_ = 1;
  if (levels == 2 && preds_[1] != preds_[0]) {
    lock_targets_[1] = preds_[1];
    lock_count_ = 2;
  }
  lock_idx_ = 0;
}

bool SimSkipList::step_optimistic(SharedMemory& mem) {
  switch (phase_) {
    case Phase::kOptReadFoundState: {
      const Value raw = mem.read(state_reg(key_));
      const Value flags = state_flags(raw);
      if (kind_ == OpKind::kContains) {
        const bool live =
            (flags & kLinkedBit) != 0 && (flags & kMarkedBit) == 0;
        complete(live ? 1 : 0);
        return true;
      }
      // Insert duplicate probe: decide off the state of the found node.
      if ((flags & kMarkedBit) != 0) {
        restart_search();  // being removed; retry and likely claim the slot
        return false;
      }
      if ((flags & kLinkedBit) == 0) return false;  // linking in progress: spin
      complete(0);  // fully linked duplicate
      return true;
    }
    case Phase::kOptClaimRead: {
      const Value raw = mem.read(state_reg(key_));
      const Value flags = state_flags(raw);
      if ((flags & kLinkedBit) != 0) {
        restart_search();  // someone linked our key; take the dup path
        return false;
      }
      if ((flags & kLockBit) != 0) return false;  // rival claim: spin
      reg_snap_ = raw;
      phase_ = Phase::kOptClaimCas;
      return false;
    }
    case Phase::kOptClaimCas: {
      const Value desired = bump_state(reg_snap_, kLockBit);
      if (mem.cas(state_reg(key_), reg_snap_, desired)) {
        claimed_ = true;
        slot_state_snap_ = desired;
        setup_pred_locks(height());
        phase_ = Phase::kOptLockRead;
      } else {
        phase_ = Phase::kOptClaimRead;
      }
      return false;
    }
    case Phase::kOptLockRead: {
      const std::uint64_t target = lock_targets_[lock_idx_];
      const Value raw = mem.read(state_reg(target));
      const Value flags = state_flags(raw);
      // Pre-lock staleness check (head, ref 0, is always valid): a marked
      // or not-fully-linked pred is a stale incarnation — in particular,
      // its lock bit may be another inserter's slot *claim*, and spinning
      // on that can deadlock against the claimant's own validation
      // (it waits for our marked victim to unlink, we wait for its claim).
      // Re-search instead; the fresh walk yields a live pred.
      if (target != 0 &&
          ((flags & kLinkedBit) == 0 || (flags & kMarkedBit) != 0)) {
        if (lock_idx_ == 0) {
          restart_search();
        } else {
          lock_count_ = lock_idx_;  // unlock only what we hold
          unlock_outcome_ = -1;
          lock_idx_ = 0;
          phase_ = Phase::kOptUnlockPreds;
        }
        return false;
      }
      if ((flags & kLockBit) != 0) return false;  // spin
      reg_snap_ = raw;
      phase_ = Phase::kOptLockCas;
      return false;
    }
    case Phase::kOptLockCas: {
      const Value desired =
          bump_state(reg_snap_, state_flags(reg_snap_) | kLockBit);
      if (!mem.cas(state_reg(lock_targets_[lock_idx_]), reg_snap_, desired)) {
        phase_ = Phase::kOptLockRead;
        return false;
      }
      lock_state_snap_[lock_idx_] = desired;
      ++lock_idx_;
      if (lock_idx_ < lock_count_) {
        phase_ = Phase::kOptLockRead;
        return false;
      }
      // All preds locked (live and unmarked — the pre-lock check filtered
      // stale ones, and a locked node cannot become marked: marking
      // requires its lock).
      if (optimistic_validate()) {
        validate_level_ = 0;
        phase_ = Phase::kOptValidateReadPredNext;
      } else {
        enter_write_window();
      }
      return false;
    }
    case Phase::kOptValidateReadPredNext: {
      const int lvl = validate_level_;
      const Value raw = mem.read(next_reg(preds_[lvl], lvl));
      const std::uint64_t expected =
          kind_ == OpKind::kInsert ? succs_[lvl] : key_;
      if (next_ref(raw) != expected) {
        unlock_outcome_ = -1;  // list moved: unlock, rescan, retry
        lock_idx_ = 0;
        phase_ = Phase::kOptUnlockPreds;
        return false;
      }
      if (kind_ == OpKind::kInsert && succs_[lvl] != 0) {
        phase_ = Phase::kOptValidateReadSuccState;
      } else {
        advance_validate();
      }
      return false;
    }
    case Phase::kOptValidateReadSuccState: {
      const Value raw = mem.read(state_reg(succs_[validate_level_]));
      if ((state_flags(raw) & kMarkedBit) != 0) {
        unlock_outcome_ = -1;
        lock_idx_ = 0;
        phase_ = Phase::kOptUnlockPreds;
        return false;
      }
      advance_validate();
      return false;
    }
    case Phase::kOptWriteSlotNext0:
      mem.write(next_reg(key_, 0), pack_next(0, succs_[0], false));
      phase_ = tall(key_) ? Phase::kOptWriteSlotNext1 : Phase::kOptLink0;
      return false;
    case Phase::kOptWriteSlotNext1:
      mem.write(next_reg(key_, 1), pack_next(0, succs_[1], false));
      phase_ = Phase::kOptLink0;
      return false;
    case Phase::kOptLink0:
      mem.write(next_reg(preds_[0], 0), pack_next(0, key_, false));
      phase_ = tall(key_) ? Phase::kOptLink1 : Phase::kOptSetLinked;
      return false;
    case Phase::kOptLink1:
      mem.write(next_reg(preds_[1], 1), pack_next(0, key_, false));
      phase_ = Phase::kOptSetLinked;
      return false;
    case Phase::kOptSetLinked:
      // Linearization point of a successful insert: fully-linked becomes
      // visible and the claim (lock bit) is released in the same write.
      mem.write(state_reg(key_), bump_state(slot_state_snap_, kLinkedBit));
      claimed_ = false;
      unlock_outcome_ = 1;
      lock_idx_ = 0;
      phase_ = Phase::kOptUnlockPreds;
      return false;
    case Phase::kOptUnlockPreds: {
      const std::uint64_t target = lock_targets_[lock_idx_];
      const Value snap = lock_state_snap_[lock_idx_];
      mem.write(state_reg(target),
                bump_state(snap, state_flags(snap) & ~kLockBit));
      ++lock_idx_;
      if (lock_idx_ < lock_count_) return false;
      if (unlock_outcome_ < 0) {
        restart_search();
        return false;
      }
      complete(static_cast<Value>(unlock_outcome_));
      return true;
    }
    case Phase::kOptEraseReadVictimState: {
      const Value raw = mem.read(state_reg(key_));
      const Value flags = state_flags(raw);
      if ((flags & kLinkedBit) == 0 || (flags & kMarkedBit) != 0) {
        complete(0);  // not (or no longer) a live node
        return true;
      }
      if ((flags & kLockBit) != 0) return false;  // spin
      reg_snap_ = raw;
      phase_ = Phase::kOptEraseLockVictimCas;
      return false;
    }
    case Phase::kOptEraseLockVictimCas: {
      const Value desired =
          bump_state(reg_snap_, state_flags(reg_snap_) | kLockBit);
      if (mem.cas(state_reg(key_), reg_snap_, desired)) {
        victim_state_snap_ = desired;
        phase_ = Phase::kOptEraseMark;
      } else {
        phase_ = Phase::kOptEraseReadVictimState;
      }
      return false;
    }
    case Phase::kOptEraseMark: {
      // Linearization point of a successful erase: logically deleted. The
      // victim stays locked across any validation retries.
      const Value desired =
          bump_state(victim_state_snap_, kLockBit | kMarkedBit | kLinkedBit);
      mem.write(state_reg(key_), desired);
      victim_state_snap_ = desired;
      marked_by_us_ = true;
      setup_pred_locks(height());
      phase_ = Phase::kOptLockRead;
      return false;
    }
    case Phase::kOptEraseReadVictimNext1:
      victim_next_[1] = next_ref(mem.read(next_reg(key_, 1)));
      phase_ = Phase::kOptEraseReadVictimNext0;
      return false;
    case Phase::kOptEraseReadVictimNext0:
      victim_next_[0] = next_ref(mem.read(next_reg(key_, 0)));
      phase_ = tall(key_) ? Phase::kOptEraseUnlink1 : Phase::kOptEraseUnlink0;
      return false;
    case Phase::kOptEraseUnlink1:
      mem.write(next_reg(preds_[1], 1), pack_next(0, victim_next_[1], false));
      phase_ = Phase::kOptEraseUnlink0;
      return false;
    case Phase::kOptEraseUnlink0:
      mem.write(next_reg(preds_[0], 0), pack_next(0, victim_next_[0], false));
      phase_ = Phase::kOptEraseRetire;
      return false;
    case Phase::kOptEraseRetire:
      // Unlock the victim and drop linked: the slot is reclaimable (a
      // later inserter of this key claims it afresh). Unlike the native
      // map, the sim retires even under novalidate — simulated memory has
      // no use-after-free hazard, the mutant's bug stays purely logical.
      mem.write(state_reg(key_), bump_state(victim_state_snap_, kMarkedBit));
      unlock_outcome_ = 1;
      lock_idx_ = 0;
      phase_ = Phase::kOptUnlockPreds;
      return false;
    case Phase::kOptReleaseClaimDup:
      mem.write(state_reg(key_), bump_state(slot_state_snap_, 0));
      claimed_ = false;
      restart_search();
      return false;
    default:
      break;
  }
  return false;  // unreachable
}

void SimSkipList::advance_validate() {
  ++validate_level_;
  if (validate_level_ < height()) {
    phase_ = Phase::kOptValidateReadPredNext;
  } else {
    enter_write_window();
  }
}

void SimSkipList::enter_write_window() {
  if (kind_ == OpKind::kInsert) {
    phase_ = Phase::kOptWriteSlotNext0;
  } else {
    phase_ = tall(key_) ? Phase::kOptEraseReadVictimNext1
                        : Phase::kOptEraseReadVictimNext0;
  }
}

// --- lockfree --------------------------------------------------------------

bool SimSkipList::step_lockfree(SharedMemory& mem) {
  switch (phase_) {
    case Phase::kLfClaimRead: {
      const Value raw = mem.read(state_reg(key_));
      if ((state_flags(raw) & kLockBit) != 0) return false;  // rival: spin
      reg_snap_ = raw;
      phase_ = Phase::kLfClaimCas;
      return false;
    }
    case Phase::kLfClaimCas:
      if (mem.cas(state_reg(key_), reg_snap_, bump_state(reg_snap_, kLockBit))) {
        claimed_ = true;
        slot_state_snap_ = bump_state(reg_snap_, kLockBit);
        // Certify pass: the pre-claim search may predate an erase of this
        // key's previous incarnation, leaving it linked at level 1 (the
        // walker's level-1 pass ran before the mark landed). Re-searching
        // *after* the claim snips any such stale link — and once we hold
        // the claim no new erase of this slot can begin, so the fresh
        // preds/succs are safe to link against. Without this, the stale
        // level-1 view can alias our own slot into succs_[1] (self-loop).
        restart_search();
      } else {
        phase_ = Phase::kLfClaimRead;
      }
      return false;
    case Phase::kLfReadSlotNext0:
      // The slot was not traversed (it is unlinked), so its next registers
      // must be read before being re-tagged.
      reg_snap_ = mem.read(next_reg(key_, 0));
      phase_ = Phase::kLfWriteSlotNext0;
      return false;
    case Phase::kLfWriteSlotNext0:
      mem.write(next_reg(key_, 0), bump_next(reg_snap_, succs_[0], false));
      phase_ = tall(key_) ? Phase::kLfReadSlotNext1 : Phase::kLfLink0Cas;
      return false;
    case Phase::kLfReadSlotNext1:
      slot_next1_snap_ = mem.read(next_reg(key_, 1));
      phase_ = Phase::kLfWriteSlotNext1;
      return false;
    case Phase::kLfWriteSlotNext1: {
      const Value desired = bump_next(slot_next1_snap_, succs_[1], false);
      mem.write(next_reg(key_, 1), desired);
      slot_next1_snap_ = desired;
      phase_ = Phase::kLfLink0Cas;
      return false;
    }
    case Phase::kLfLink0Cas:
      // Linearization point of a successful insert: the bottom-level link.
      if (mem.cas(next_reg(preds_[0], 0), preds_snap_[0],
                  bump_next(preds_snap_[0], key_, false))) {
        result_ = 1;
        phase_ = tall(key_) ? Phase::kLfLink1Cas : Phase::kLfReleaseClaim;
      } else {
        restart_search();  // pred changed; re-find (claim kept)
      }
      return false;
    case Phase::kLfLink1Cas:
      if (mem.cas(next_reg(preds_[1], 1), preds_snap_[1],
                  bump_next(preds_snap_[1], key_, false))) {
        phase_ = Phase::kLfReleaseClaim;
      } else {
        relinking_ = true;  // index pred moved; re-find and retarget next1
        restart_search();
      }
      return false;
    case Phase::kLfCheckSlotNext1: {
      const Value raw = mem.read(next_reg(key_, 1));
      if (next_mark(raw)) {
        // A concurrent erase marked us: abandon the index link (the node
        // lives on at level 0 until the eraser's traversals snip it).
        phase_ = Phase::kLfReleaseClaim;
      } else if (next_ref(raw) == succs_[1]) {
        phase_ = Phase::kLfLink1Cas;  // preds_snap_[1] fresh from re-search
      } else {
        reg_snap_ = raw;
        phase_ = Phase::kLfRelinkNext1Cas;
      }
      return false;
    }
    case Phase::kLfRelinkNext1Cas:
      if (mem.cas(next_reg(key_, 1), reg_snap_,
                  bump_next(reg_snap_, succs_[1], false))) {
        phase_ = Phase::kLfLink1Cas;
      } else {
        phase_ = Phase::kLfCheckSlotNext1;  // probably marked meanwhile
      }
      return false;
    case Phase::kLfReleaseClaim: {
      mem.write(state_reg(key_), bump_state(slot_state_snap_, 0));
      claimed_ = false;
      relinking_ = false;
      const Value ret = result_;
      complete(ret);
      return true;
    }
    case Phase::kLfEraseReadNext1:
      slot_next1_snap_ = mem.read(next_reg(key_, 1));
      phase_ = next_mark(slot_next1_snap_) ? Phase::kLfEraseMark0Cas
                                           : Phase::kLfEraseMark1Cas;
      return false;
    case Phase::kLfEraseMark1Cas:
      // Index-level mark first (top-down, like the native map). Failure
      // means the register moved (snip, or the slot got reused); re-read.
      if (mem.cas(next_reg(key_, 1), slot_next1_snap_,
                  bump_next(slot_next1_snap_, next_ref(slot_next1_snap_),
                            true))) {
        phase_ = Phase::kLfEraseMark0Cas;
      } else {
        phase_ = Phase::kLfEraseReadNext1;
      }
      return false;
    case Phase::kLfEraseMark0Cas:
      // Linearization point of a successful erase. The expectation came
      // from a search that saw the victim linked and unmarked; a success
      // therefore proves no erase or reuse intervened. On failure, restart
      // the whole op from the search — re-reading here could capture an
      // unlinked (reused) incarnation and mark a node before it is linked.
      if (mem.cas(next_reg(key_, 0), reg_snap_,
                  bump_next(reg_snap_, next_ref(reg_snap_), true))) {
        complete(1);
        return true;
      }
      restart_search();
      return false;
    default:
      break;
  }
  return false;  // unreachable
}

}  // namespace pwf::core
