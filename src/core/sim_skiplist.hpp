// The skip-list strategy matrix expressed as a step machine on simulated
// shared memory — the Session-checkable twin of the native three-variant
// family in lockfree/skiplist.hpp. One machine class covers all three
// synchronization strategies (selected per instance), so forced
// interleavings and record/replay runs compare strategies on an
// identical register-level footing:
//
//   coarse      — CAS-acquired global lock register, sequential two-level
//                 walk + writes inside the critical section.
//   optimistic  — lock-free search; per-node lock/marked/linked flags in
//                 a state register; lock-validate-link/unlink with lazy
//                 logical deletion (Herlihy–Shavit LazySkipList shape).
//   lockfree    — mark bit packed into the next registers, snip-on-
//                 traverse helping, bottom-level CAS linearization
//                 (Fraser / Herlihy–Shavit shape).
//
// The simulated list has exactly two levels: level 0 is the full sorted
// list, level 1 indexes the "tall" keys (the even ones — heights are
// key-determined so every schedule is reproducible). Keys live in
// 1..key_space and key k is permanently assigned node slot k; every next
// register carries a generation tag (upper 32 bits) so slot reuse cannot
// ABA a stale CAS.
//
// Register layout (all initially zero = empty list):
//   [0]              coarse global lock (0 free, pid+1 held)
//   [1], [2]         head next at level 0 / level 1
//   [3]              head state (lockable as a predecessor)
//   [4 + 3(k-1) + l] slot k in 1..key_space: next at level l
//   [4 + 3(k-1) + 2] slot k: state = tag<<32 | linked<<2 | marked<<1 | lock
//
// next register encoding: tag<<32 | mark<<16 | successor ref (0 = null).
// The `lock` state bit doubles as the slot *claim* for inserters (the
// simulation analogue of allocating a fresh node).
//
// `novalidate` (optimistic only) skips the post-lock revalidation reads —
// the classic lost-update bug the catalog registers as the
// skiplist-novalidate mutant, caught NOT-LINEARIZABLE by Session.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "core/memory.hpp"
#include "core/step_machine.hpp"
#include "lockfree/strategy.hpp"

namespace pwf::core {

struct SimSkipListConfig {
  lockfree::SyncStrategy strategy = lockfree::SyncStrategy::kLockFree;
  /// Keys are drawn from 1..key_space (small = high collision pressure).
  std::size_t key_space = 4;
  /// Optimistic only: skip post-lock validation (the mutant).
  bool novalidate = false;
  /// Op-mix percentages. Both zero (the default) selects the legacy
  /// uniform third-each mix — checker workloads depend on that op
  /// sequence bit-for-bit. Non-zero values switch to percent thresholds
  /// (contains, then insert, remainder erase), e.g. 90/9 is the
  /// struct_matrix read-heavy column.
  std::uint64_t contains_pct = 0;
  std::uint64_t insert_pct = 0;
};

/// Mixed insert/erase/contains skip-list workload for one process; the
/// op sequence is a deterministic hash of (pid, op index).
class SimSkipList final : public StepMachine {
 public:
  SimSkipList(std::size_t pid, std::size_t n, SimSkipListConfig config);

  bool step(SharedMemory& mem) override;
  std::string name() const override;
  void set_trace(OpTraceSink* sink) override { trace_ = sink; }

  static std::size_t registers_required(std::size_t n,
                                        const SimSkipListConfig& config);
  static StepMachineFactory factory(SimSkipListConfig config);

  std::uint64_t ops_completed() const noexcept { return ops_completed_; }
  std::uint64_t inserts_ok() const noexcept { return inserts_ok_; }
  std::uint64_t erases_ok() const noexcept { return erases_ok_; }
  std::uint64_t contains_hits() const noexcept { return contains_hits_; }

 private:
  enum class Phase : std::uint8_t {
    // Shared two-level search walker (one read or snip CAS per step).
    kSearchReadPredNext,
    kSearchReadCurrNext,
    kSearchSnipCas,  // lockfree helping: unlink a marked node, then cross
    // Coarse.
    kCoarseAcquire,
    kCoarseWriteSlotNext1,
    kCoarseWriteSlotNext0,
    kCoarseLink0,
    kCoarseLink1,
    kCoarseUnlink1,
    kCoarseUnlink0,
    kCoarseRelease,
    // Optimistic.
    kOptReadFoundState,
    kOptClaimRead,
    kOptClaimCas,
    kOptLockRead,
    kOptLockCas,
    kOptValidateReadPredNext,
    kOptValidateReadSuccState,
    kOptWriteSlotNext0,
    kOptWriteSlotNext1,
    kOptLink0,
    kOptLink1,
    kOptSetLinked,
    kOptUnlockPreds,
    kOptEraseReadVictimState,
    kOptEraseLockVictimCas,
    kOptEraseMark,
    kOptEraseReadVictimNext1,
    kOptEraseReadVictimNext0,
    kOptEraseUnlink1,
    kOptEraseUnlink0,
    kOptEraseRetire,
    kOptReleaseClaimDup,
    // Lockfree.
    kLfClaimRead,
    kLfClaimCas,
    kLfReadSlotNext0,
    kLfWriteSlotNext0,
    kLfReadSlotNext1,
    kLfWriteSlotNext1,
    kLfLink0Cas,
    kLfLink1Cas,
    kLfCheckSlotNext1,
    kLfRelinkNext1Cas,
    kLfReleaseClaim,
    kLfEraseReadNext1,
    kLfEraseMark1Cas,
    kLfEraseMark0Cas,
  };

  enum class OpKind : std::uint8_t { kInsert, kErase, kContains };

  // --- packing helpers -----------------------------------------------------
  static constexpr Value kRefMask = 0xffffULL;
  static constexpr Value kMarkBit = 1ULL << 16;
  static constexpr Value pack_next(std::uint64_t tag, std::uint64_t ref,
                                   bool mark) {
    return (tag << 32) | (mark ? kMarkBit : 0) | ref;
  }
  static constexpr std::uint64_t next_tag(Value v) { return v >> 32; }
  static constexpr std::uint64_t next_ref(Value v) { return v & kRefMask; }
  static constexpr bool next_mark(Value v) { return (v & kMarkBit) != 0; }
  /// Same successor ref, tag bumped, mark as given — the canonical way
  /// every writer derives a next value from the one it read.
  static constexpr Value bump_next(Value old, std::uint64_t ref, bool mark) {
    return pack_next(next_tag(old) + 1, ref, mark);
  }

  static constexpr Value kLockBit = 1;    // doubles as the insert claim
  static constexpr Value kMarkedBit = 2;  // logically deleted
  static constexpr Value kLinkedBit = 4;  // fully linked (optimistic)
  static constexpr Value pack_state(std::uint64_t tag, Value flags) {
    return (tag << 32) | flags;
  }
  static constexpr Value state_flags(Value v) { return v & 0xffffffffULL; }
  static constexpr Value bump_state(Value old, Value flags) {
    return pack_state((old >> 32) + 1, flags);
  }

  // --- register map --------------------------------------------------------
  std::size_t next_reg(std::uint64_t ref, int level) const {
    return ref == 0 ? 1 + static_cast<std::size_t>(level)
                    : 4 + 3 * (ref - 1) + static_cast<std::size_t>(level);
  }
  std::size_t state_reg(std::uint64_t ref) const {
    return ref == 0 ? 3 : 4 + 3 * (ref - 1) + 2;
  }

  /// Tall keys (even) reach level 1; short ones live only at level 0.
  static bool tall(std::uint64_t key) { return key % 2 == 0; }
  int height() const { return tall(key_) ? 2 : 1; }

  // --- op lifecycle --------------------------------------------------------
  void begin_op();
  /// Emits the response and resets for the next op; the caller's current
  /// step is the completing step (it returns true).
  void complete(Value ret);
  void restart_search();
  /// Records preds/succs for the walker's current level and either drops
  /// a level or hands off to after_search(); local only (no memory step
  /// beyond the caller's). `curr_snap_valid` is false when the level ended
  /// at null (walk_curr_snap_ is stale then).
  bool finish_level(bool curr_snap_valid);
  /// Local decision at the end of a search; may complete the op (then
  /// returns true and the current step is the completing step).
  bool after_search();

  bool step_search(SharedMemory& mem);
  bool step_coarse(SharedMemory& mem);
  bool step_optimistic(SharedMemory& mem);
  bool step_lockfree(SharedMemory& mem);

  // Optimistic lock-window helpers.
  void setup_pred_locks(int levels);
  void advance_validate();
  void enter_write_window();
  bool optimistic_validate() const { return !config_.novalidate; }

  SimSkipListConfig config_;
  std::size_t pid_;
  std::size_t n_;
  Phase phase_;
  OpTraceSink* trace_ = nullptr;
  bool invoked_ = false;

  // Current op.
  OpKind kind_ = OpKind::kInsert;
  std::uint64_t key_ = 1;
  std::uint64_t op_counter_ = 0;

  // Search walker state.
  int level_ = 1;
  std::uint64_t walk_pred_ = 0;
  Value walk_pred_snap_ = 0;   // raw next(walk_pred_, level_) that gave curr
  std::uint64_t walk_curr_ = 0;
  Value walk_curr_snap_ = 0;   // raw next(walk_curr_, level_)
  std::uint64_t preds_[2] = {0, 0};
  Value preds_snap_[2] = {0, 0};
  std::uint64_t succs_[2] = {0, 0};
  Value succs_snap_[2] = {0, 0};
  bool found_ = false;

  // Strategy scratch.
  Value reg_snap_ = 0;           // last read of the register being CASed
  bool claimed_ = false;         // inserter holds the slot claim
  Value slot_state_snap_ = 0;    // our slot's state as last written/read
  bool marked_by_us_ = false;    // optimistic erase: victim marked, relock
  Value victim_state_snap_ = 0;  // optimistic: victim state while locked
  std::uint64_t victim_next_[2] = {0, 0};
  // Distinct predecessors to lock, ascending level; parallel flags.
  std::uint64_t lock_targets_[2] = {0, 0};
  Value lock_state_snap_[2] = {0, 0};  // state observed when we locked it
  int lock_count_ = 0;
  int lock_idx_ = 0;       // cursor while acquiring/validating/unlocking
  int validate_level_ = 0;
  Value result_ = 0;        // pending return value for multi-step endings
  int unlock_outcome_ = -1;  // optimistic: -1 retry after unlock, else ret
  bool relinking_ = false;  // lockfree: re-searching to relink level 1
  Value slot_next1_snap_ = 0;

  std::uint64_t ops_completed_ = 0;
  std::uint64_t inserts_ok_ = 0;
  std::uint64_t erases_ok_ = 0;
  std::uint64_t contains_hits_ = 0;
};

}  // namespace pwf::core
