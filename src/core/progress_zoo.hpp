// The rest of the paper's Section 2.2 progress-property zoo, as step
// machines, so the full hierarchy can be exercised side by side:
//
//   blocking deadlock-free   SpinlockCounter   (locks: minimal progress
//                                              only while nobody crashes
//                                              holding the lock)
//   obstruction-free         ObstructionPair   (maximal progress only in
//                                              uniformly isolating
//                                              executions; livelocks under
//                                              lock-step interference)
//   lock-free                ScuAlgorithm      (core/algorithms.hpp)
//   wait-free                HelpedUniversal   (core/helping.hpp)
//
// Theorem 3 applies to any *bounded* minimal/maximal progress condition,
// so under a stochastic scheduler all the non-blocking rungs become
// practically wait-free — at very different latency costs, which the
// progress_hierarchy bench quantifies.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "core/memory.hpp"
#include "core/step_machine.hpp"

namespace pwf::core {

/// A blocking counter: test-and-set spinlock around a read+write critical
/// section. Deadlock-free (crash-free executions always make minimal
/// progress; the uniform scheduler even makes it starvation-free in
/// practice) but *blocking*: a process that crashes while holding the
/// lock halts every other process forever — the dichotomy the paper draws
/// in Section 2.2.
///
/// Registers: [0] = lock (0 free, 1 held), [1] = counter.
class SpinlockCounter final : public StepMachine {
 public:
  explicit SpinlockCounter(std::size_t pid);

  bool step(SharedMemory& mem) override;
  std::string name() const override { return "spinlock-counter"; }

  /// True while this process holds the lock (used by tests to crash the
  /// holder at the worst moment).
  bool holds_lock() const noexcept { return phase_ != Phase::kAcquire; }

  static constexpr std::size_t registers_required() { return 2; }
  static StepMachineFactory factory();

 private:
  enum class Phase { kAcquire, kReadCounter, kWriteCounter, kRelease };

  std::size_t pid_;
  Phase phase_ = Phase::kAcquire;
  Value counter_snapshot_ = 0;
};

/// The canonical obstruction-free pattern: claim two registers with your
/// tag, then validate both still carry it. A process running in isolation
/// finishes in four steps (bounded obstruction-freedom, T = 4), but two
/// processes in lock-step can overwrite each other's claims forever:
/// *no* operation completes — minimal progress fails, so the algorithm is
/// obstruction-free but not lock-free. Under the uniform stochastic
/// scheduler, Theorem 3 (for bounded clash-freedom) still delivers
/// maximal progress with probability 1.
///
/// Registers: [0] = claim A, [1] = claim B.
class ObstructionPair final : public StepMachine {
 public:
  ObstructionPair(std::size_t pid, std::size_t n);

  bool step(SharedMemory& mem) override;
  std::string name() const override { return "obstruction-pair"; }

  static constexpr std::size_t registers_required() { return 2; }
  static StepMachineFactory factory();

 private:
  enum class Phase { kWriteA, kWriteB, kCheckA, kCheckB };

  std::size_t pid_;
  Phase phase_ = Phase::kWriteA;
  Value tag_;
};

}  // namespace pwf::core
