#include "core/memory.hpp"

#include <stdexcept>

namespace pwf::core {

SharedMemory::SharedMemory(std::size_t num_registers, Value initial)
    : regs_(num_registers, initial) {
  if (num_registers == 0) {
    throw std::invalid_argument("SharedMemory: need at least one register");
  }
}

Value SharedMemory::read(std::size_t r) {
  ++ops_;
  return regs_.at(r);
}

void SharedMemory::write(std::size_t r, Value v) {
  ++ops_;
  regs_.at(r) = v;
}

bool SharedMemory::cas(std::size_t r, Value expected, Value desired) {
  ++ops_;
  Value& reg = regs_.at(r);
  if (reg == expected) {
    reg = desired;
    return true;
  }
  return false;
}

Value SharedMemory::cas_fetch(std::size_t r, Value expected, Value desired) {
  ++ops_;
  Value& reg = regs_.at(r);
  const Value before = reg;
  if (before == expected) reg = desired;
  return before;
}

}  // namespace pwf::core
