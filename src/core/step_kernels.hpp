// Shared step kernels: the paper's algorithms as POD state + free
// functions, used by *both* representations of a process —
//
//   * the boxed StepMachine wrappers in algorithms.{hpp,cpp} (one heap
//     allocation per process; supports tracing and the virtual
//     interface), and
//   * the open-system engine's struct-of-arrays ProcessTable, which
//     stores the same fields in columnar arrays and calls the same
//     kernel per step.
//
// Because both paths execute literally this code, the compact engine is
// bit-identical to the boxed one by construction; the engine tests
// assert it anyway (trajectories, memory contents, and reports).
//
// Identity convention: kernels take a `uid` (the process's stable
// identity inside the register file / proposal space) and a `stride`
// (the size of that identity space). The boxed machines pass (pid, n);
// the SoA engine passes (slot, capacity), which keeps SCU proposals
// globally unique even when a retired slot is reused — `attempts` is
// monotone per slot across generations, so proposal = attempts * stride
// + uid + 1 never repeats.
#pragma once

#include <cstddef>
#include <cstdint>

#include "core/memory.hpp"

namespace pwf::core {

// --- Algorithm 4: parallel code ---------------------------------------------

struct ParallelState {
  std::uint64_t counter = 0;  ///< shared-memory steps into the current op
};

/// One step of parallel code with work parameter q: reads register [0];
/// the op completes after q steps. Precondition: q >= 1.
inline bool parallel_step(ParallelState& st, std::size_t q,
                          SharedMemory& mem) {
  mem.read(0);
  if (++st.counter == q) {
    st.counter = 0;
    return true;
  }
  return false;
}

// --- Algorithm 2: SCU(q, s) --------------------------------------------------

struct ScuState {
  enum : std::uint8_t { kPreamble = 0, kScan = 1, kValidate = 2 };

  std::uint8_t phase = kPreamble;
  std::uint64_t phase_step = 0;  ///< preamble step or scan register index
  Value view = 0;                ///< value of R observed by the current scan
  std::uint64_t attempts = 0;    ///< proposal uniqueness counter — never reset
};

/// Puts `st` at the top of a fresh invocation (preamble if q > 0, else
/// scan). Does NOT touch `attempts`: proposal uniqueness must survive
/// resets, including a retired slot being readmitted.
inline void scu_reset(ScuState& st, std::size_t q) {
  st.phase = q > 0 ? ScuState::kPreamble : ScuState::kScan;
  st.phase_step = 0;
}

/// One step of SCU(q, s) for the process with identity `uid` out of
/// `stride`. Registers: [0] = R, [1..s-1] = scan registers,
/// [s + uid] = this process's preamble scratch slot.
inline bool scu_step(ScuState& st, std::size_t uid, std::size_t stride,
                     std::size_t q, std::size_t s, SharedMemory& mem) {
  switch (st.phase) {
    case ScuState::kPreamble: {
      // Preamble steps update memory (never R): write to our scratch slot.
      mem.write(s + uid, static_cast<Value>(st.phase_step));
      if (++st.phase_step == q) {
        st.phase = ScuState::kScan;
        st.phase_step = 0;
      }
      return false;
    }
    case ScuState::kScan: {
      if (st.phase_step == 0) {
        st.view = mem.read(0);  // v <- R.read()
      } else {
        mem.read(st.phase_step);  // v_k <- R_k.read()
      }
      if (++st.phase_step == s) {
        st.phase = ScuState::kValidate;
        st.phase_step = 0;
      }
      return false;
    }
    default: {  // kValidate
      // Propose a globally unique new state for R.
      ++st.attempts;
      const Value proposal =
          static_cast<Value>(st.attempts * stride + uid + 1);
      const bool won = mem.cas(0, st.view, proposal);
      if (won) {
        // Operation complete; the next step begins a fresh invocation.
        scu_reset(st, q);
        return true;
      }
      // Validation failed: restart the scan loop (not the preamble).
      st.phase = ScuState::kScan;
      st.phase_step = 0;
      return false;
    }
  }
}

// --- Algorithm 5: lock-free fetch-and-increment ------------------------------

struct FetchIncState {
  Value v = 0;  ///< the value this process last observed/wrote
};

/// One augmented-CAS attempt on register [0]. `before` receives the
/// pre-CAS value of R (the trace wrappers report it as the op's return).
inline bool fetch_inc_step(FetchIncState& st, SharedMemory& mem,
                           Value& before) {
  before = mem.cas_fetch(0, st.v, st.v + 1);
  if (before == st.v) {
    st.v = st.v + 1;  // we wrote the new current value, so we still hold it
    return true;
  }
  st.v = before;  // adopt the current value the augmented CAS returned
  return false;
}

}  // namespace pwf::core
