// The open-system execution engine: arrivals, departures, crashes, and
// restarts over a struct-of-arrays ProcessTable.
//
// The paper's model (and the closed Simulation) fixes n processes for
// the whole run. Production traffic is an open system: clients arrive
// (Poisson, bursty, or replayed), run operations back to back, and
// leave — voluntarily (departure) or by crashing, possibly restarting
// after a delay. OpenSimulation scales that model to 10^6 live
// processes by:
//
//   * storing all per-process state in a ProcessTable (SoA + free list,
//     O(1) admit/retire) instead of boxed StepMachines;
//   * running the same step kernels (step_kernels.hpp) as the boxed
//     machines, so the compact engine is bit-identical to the closed
//     one in the closed configuration (no arrivals, sorted order,
//     capacity = n) — the golden-reference tests assert this;
//   * driving all membership changes through a time-ordered event heap,
//     so the hot loop runs membership-stable segments with batched
//     scheduler draws (Scheduler::next_batch) and no per-step probes;
//   * notifying the scheduler through on_membership_change, which lets
//     the incremental alias table (DynamicWeightedScheduler) apply O(1)
//     deltas instead of O(n) rebuilds.
//
// Every random choice — scheduler draws, interarrivals, lifetimes,
// crash/restart timing — flows through one seeded Xoshiro256pp in
// deterministic event order, so the whole trajectory (and the final
// ProcessTable digest) is a pure function of the seed.
//
// Latency bookkeeping (paper, Section 2.4, extended to open systems):
// an operation's latency is the system steps between two consecutive
// completions by the same process (the first op starts at admission).
// Operations pending when their process departs or crashes are counted
// as `abandoned`, never as still-running — the fairness fix PR 2
// hardened for the closed report.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <queue>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/arrival.hpp"
#include "core/memory.hpp"
#include "core/process_table.hpp"
#include "core/scheduler.hpp"
#include "core/simulation.hpp"
#include "core/step_kernels.hpp"
#include "util/quantile.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace pwf::core {

/// Which step kernel every process in an open simulation runs.
enum class CompactKind {
  kParallel,  ///< Algorithm 4, work parameter q
  kScu,       ///< Algorithm 2, SCU(q, s)
  kFetchInc,  ///< Algorithm 5, lock-free fetch-and-increment
};

/// Aggregated open-system statistics. merge() is a deterministic fold —
/// replicas farmed across the exp pool are merged in replica order, so
/// the merged report is thread-count invariant.
struct OpenLatencyReport {
  std::uint64_t steps = 0;        ///< scheduled steps (idle time excluded)
  std::uint64_t completions = 0;
  StreamingStats system_gaps;     ///< steps between consecutive completions
  QuantileSketch op_latency;      ///< per-op latency; p50/p99/p999 source
  std::uint64_t op_latency_sum = 0;  ///< exact mean for fairness checks

  // Queue-length curve: live-process count integrated over time.
  std::uint64_t queue_time = 0;      ///< time units observed (idle included)
  std::uint64_t queue_integral = 0;  ///< sum of live-count * dt
  std::uint64_t queue_peak = 0;
  std::vector<std::pair<std::uint64_t, std::uint64_t>>
      queue_curve;  ///< decimated (tau, live) samples

  std::uint64_t arrivals = 0;    ///< arrival-process admissions
  std::uint64_t departures = 0;
  std::uint64_t crashes = 0;
  std::uint64_t restarts = 0;
  std::uint64_t shed = 0;        ///< arrivals dropped: table full
  std::uint64_t abandoned = 0;   ///< ops pending at departure/crash

  double completion_rate() const;
  double system_latency() const { return system_gaps.mean(); }
  double mean_op_latency() const;
  double mean_queue_length() const;

  /// Folds `other` in; associative and deterministic in fold order.
  void merge(const OpenLatencyReport& other);

  /// FNV-1a over every counter and the sketch; bit-identical reports
  /// (and only those) agree. Determinism tests compare fingerprints.
  std::uint64_t fingerprint() const noexcept;
};

/// The open-system engine.
class OpenSimulation {
 public:
  struct Options {
    CompactKind kind = CompactKind::kScu;
    std::size_t q = 0;  ///< parallel work / SCU preamble length
    std::size_t s = 1;  ///< SCU scan width
    std::size_t capacity = 1024;   ///< slots; arrivals beyond this shed
    std::size_t initial_n = 0;     ///< processes admitted at tau = 0
    double process_weight = 1.0;   ///< scheduling weight of every client
    std::uint64_t seed = 1;
    LiveOrder order = LiveOrder::dense;

    /// Arrival stream; null = no arrivals (closed population).
    std::unique_ptr<ArrivalProcess> arrivals;
    // Per-process, per-step leave probabilities (0 disables):
    double depart_rate = 0.0;
    double crash_rate = 0.0;
    double restart_prob = 0.0;        ///< P(a crash is followed by restart)
    double restart_delay_rate = 0.0;  ///< geometric delay; 0 = next step

    /// Emit a queue-curve sample every this many steps (0 = stats only).
    std::uint64_t queue_sample_every = 0;
  };

  OpenSimulation(std::unique_ptr<Scheduler> scheduler, Options options);

  /// Closed-compat crash plan: slot leaves at `tau` (before the step at
  /// tau), subject to the restart model like any other crash.
  void schedule_crash(std::uint64_t tau, std::size_t slot);

  /// Runs `steps` more time units. Time passes (and the queue curve
  /// records zero) even while no process is live.
  void run(std::uint64_t steps);

  void set_observer(SimObserver* observer) { observer_ = observer; }

  const OpenLatencyReport& report() const noexcept { return report_; }
  std::uint64_t now() const noexcept { return now_; }
  const ProcessTable& table() const noexcept { return table_; }
  SharedMemory& memory() noexcept { return memory_; }
  const SharedMemory& memory() const noexcept { return memory_; }
  const Scheduler& scheduler() const noexcept { return *scheduler_; }

  /// Registers the engine allocates for a kind/config; mirrors the boxed
  /// algorithms' registers_required with n = capacity.
  static std::size_t registers_required(CompactKind kind, std::size_t s,
                                        std::size_t capacity);

 private:
  struct Event {
    std::uint64_t time;
    std::uint64_t seq;  ///< schedule order; ties process in this order
    enum Kind : std::uint8_t {
      kArrivalEv,
      kDepartEv,
      kCrashEv,
      kRestartEv
    } kind;
    std::size_t slot;
    std::uint32_t generation;  ///< tenant guard for planned crashes
  };
  struct EventAfter {
    bool operator()(const Event& a, const Event& b) const {
      return a.time != b.time ? a.time > b.time : a.seq > b.seq;
    }
  };

  void push_event(std::uint64_t time, Event::Kind kind, std::size_t slot,
                  std::uint32_t gen);
  void process_due_events();
  void admit_one(bool from_arrival_stream);
  /// Draws this tenant's departure and crash clocks and schedules the
  /// earlier one (exactly one pending leave event per tenant).
  void schedule_leave(std::size_t slot);
  void leave_accounting(std::size_t slot);
  bool step_slot(std::size_t slot);
  void account_time(std::uint64_t dt);
  template <bool WithObserver>
  void run_segment(std::uint64_t count);

  static constexpr std::size_t kDrawBatch = 1024;

  SharedMemory memory_;
  ProcessTable table_;
  std::unique_ptr<Scheduler> scheduler_;
  std::unique_ptr<ArrivalProcess> arrivals_;
  Xoshiro256pp rng_;
  CompactKind kind_;
  std::size_t q_;
  std::size_t s_;
  double weight_;
  double depart_rate_;
  double crash_rate_;
  double restart_prob_;
  double restart_delay_rate_;
  std::uint8_t initial_phase_;  ///< ScuState phase for a fresh invocation

  std::uint64_t now_ = 0;
  std::uint64_t seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventAfter> events_;
  std::vector<std::size_t> draw_buf_;

  OpenLatencyReport report_;
  std::uint64_t last_completion_ = 0;
  std::uint64_t queue_sample_every_;
  std::uint64_t next_queue_sample_ = 0;
  SimObserver* observer_ = nullptr;
};

}  // namespace pwf::core
