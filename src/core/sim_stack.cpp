#include "core/sim_stack.hpp"

#include <memory>
#include <stdexcept>

namespace pwf::core {

SimStack::SimStack(std::size_t pid, std::size_t n,
                   std::size_t slots_per_process)
    : pid_(pid), n_(n), phase_(Phase::kPushWriteValue) {
  if (pid >= n) throw std::invalid_argument("SimStack: pid >= n");
  if (slots_per_process == 0) {
    throw std::invalid_argument("SimStack: need at least one slot");
  }
  free_slots_.reserve(slots_per_process);
  for (std::size_t s = 0; s < slots_per_process; ++s) {
    free_slots_.push_back(pid * slots_per_process + s + 1);  // slots are 1-based
  }
  begin_op();
}

std::size_t SimStack::registers_required(std::size_t n,
                                         std::size_t slots_per_process) {
  return 1 + 2 * n * slots_per_process;
}

StepMachineFactory SimStack::factory(std::size_t slots_per_process) {
  return [slots_per_process](std::size_t pid, std::size_t n) {
    return std::make_unique<SimStack>(pid, n, slots_per_process);
  };
}

void SimStack::begin_op() {
  const bool push_turn = op_counter_ % 2 == 0;
  if (push_turn && !free_slots_.empty()) {
    pending_slot_ = free_slots_.back();  // consumed on successful CAS
    phase_ = Phase::kPushWriteValue;
  } else {
    phase_ = Phase::kPopReadHead;
  }
}

bool SimStack::step(SharedMemory& mem) {
  if (trace_ && !invoked_) {
    // The op's first shared-memory step: log the invoke. Push values are
    // deterministic, so the argument can be computed up front.
    if (phase_ == Phase::kPushWriteValue) {
      const Value value =
          (static_cast<Value>(pid_ + 1) << 32) | static_cast<Value>(pushes_);
      trace_->on_invoke(pid_, OpCode::kPush, true, value);
    } else {
      trace_->on_invoke(pid_, OpCode::kPop, false, 0);
    }
    invoked_ = true;
  }
  switch (phase_) {
    case Phase::kPushWriteValue: {
      const Value value =
          (static_cast<Value>(pid_ + 1) << 32) | static_cast<Value>(pushes_);
      mem.write(value_reg(pending_slot_), value);
      phase_ = Phase::kPushReadHead;
      return false;
    }
    case Phase::kPushReadHead: {
      head_snapshot_ = mem.read(0);
      phase_ = Phase::kPushLinkNode;
      return false;
    }
    case Phase::kPushLinkNode: {
      mem.write(next_reg(pending_slot_), ref_of(head_snapshot_));
      phase_ = Phase::kPushCas;
      return false;
    }
    case Phase::kPushCas: {
      const Value next_head =
          pack(tag_of(head_snapshot_) + 1, pending_slot_);
      if (mem.cas(0, head_snapshot_, next_head)) {
        free_slots_.pop_back();
        ++pushes_;
        ++op_counter_;
        if (trace_) trace_->on_response(pid_, OpCode::kPush, false, 0);
        invoked_ = false;
        begin_op();
        return true;
      }
      phase_ = Phase::kPushReadHead;  // rescan; value already written
      return false;
    }
    case Phase::kPopReadHead: {
      head_snapshot_ = mem.read(0);
      if (ref_of(head_snapshot_) == 0) {
        ++empty_pops_;
        ++op_counter_;
        if (trace_) trace_->on_response(pid_, OpCode::kPop, false, 0);
        invoked_ = false;
        begin_op();
        return true;  // pop on empty completes immediately
      }
      phase_ = Phase::kPopReadNext;
      return false;
    }
    case Phase::kPopReadNext: {
      pop_next_ = mem.read(next_reg(ref_of(head_snapshot_)));
      phase_ = Phase::kPopReadValue;
      return false;
    }
    case Phase::kPopReadValue: {
      pop_value_ = mem.read(value_reg(ref_of(head_snapshot_)));
      phase_ = Phase::kPopCas;
      return false;
    }
    case Phase::kPopCas: {
      const Value next_head = pack(tag_of(head_snapshot_) + 1, pop_next_);
      if (mem.cas(0, head_snapshot_, next_head)) {
        // We own the popped slot now.
        free_slots_.push_back(ref_of(head_snapshot_));
        popped_.push_back(pop_value_);
        ++pops_;
        ++op_counter_;
        if (trace_) trace_->on_response(pid_, OpCode::kPop, true, pop_value_);
        invoked_ = false;
        begin_op();
        return true;
      }
      phase_ = Phase::kPopReadHead;
      return false;
    }
  }
  return false;  // unreachable
}

}  // namespace pwf::core
