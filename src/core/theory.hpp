// Closed-form predictions from the paper's theorems, used by the benchmark
// harness to print paper-vs-measured series.
#pragma once

#include <cstddef>
#include <cstdint>

namespace pwf::core::theory {

/// Theorem 3: under a stochastic scheduler with threshold theta, an
/// algorithm with minimal-progress bound T completes each operation within
/// (1/theta)^T expected steps. (A loose but scheduler-free guarantee.)
double theorem3_expected_bound(double theta, std::uint64_t T);

/// Theorem 4 (upper-bound shape): system latency of SCU(q, s) under the
/// uniform stochastic scheduler is O(q + s * sqrt(n)). `alpha` is the
/// constant in front of the sqrt term (the paper uses alpha >= 4 in the
/// analysis; empirically the constant is near 1 — benches fit it).
double scu_system_latency(std::size_t q, std::size_t s, std::size_t n,
                          double alpha = 1.0);

/// Theorem 4: individual latency = n * system latency (Lemma 7 fairness).
double scu_individual_latency(std::size_t q, std::size_t s, std::size_t n,
                              double alpha = 1.0);

/// Lemma 11: parallel code has system latency exactly q and individual
/// latency exactly n*q.
double parallel_system_latency(std::size_t q);
double parallel_individual_latency(std::size_t n, std::size_t q);

/// Section 7 / Lemma 12: the fetch-and-increment system latency is the
/// expected return time of the win state, W = Z(n-1), computed exactly by
/// the recurrence Z(i) = i*Z(i-1)/n + 1. Equal to the Ramanujan Q-function
/// Q(n), which is sqrt(pi*n/2)(1 + o(1)).
double fai_system_latency_exact(std::size_t n);

/// The asymptotic form sqrt(pi*n/2) the paper quotes for Z(n-1).
double fai_system_latency_asymptotic(std::size_t n);

/// Corollary 3: individual latency of fetch-and-increment is n * W.
double fai_individual_latency_exact(std::size_t n);

/// Appendix B: the predicted completion rate of the CAS counter is
/// Theta(1/sqrt(n)); this returns 1/Z(n-1) (exact under the uniform
/// model). The worst-case rate is 1/n per the adversarial bound.
double fai_completion_rate_predicted(std::size_t n);
double fai_completion_rate_worst_case(std::size_t n);

/// Worst-case (adversarial) system latency of SCU(q, s): Theta(q + s*n)
/// (paper, Section 6 intro).
double scu_worst_case_system_latency(std::size_t q, std::size_t s,
                                     std::size_t n);

/// Lemma 8: expected length of a balls-into-bins phase starting with a bins
/// holding one ball and b empty bins is at most
/// min(2*alpha*n/sqrt(a), 3*alpha*n/b^(1/3)).
double phase_length_bound(std::size_t n, std::size_t a, std::size_t b,
                          double alpha = 4.0);

}  // namespace pwf::core::theory
