#include "core/theory.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/special.hpp"

namespace pwf::core::theory {

double theorem3_expected_bound(double theta, std::uint64_t T) {
  if (!(theta > 0.0 && theta <= 1.0)) {
    throw std::invalid_argument("theorem3_expected_bound: need 0 < theta <= 1");
  }
  return std::pow(1.0 / theta, static_cast<double>(T));
}

double scu_system_latency(std::size_t q, std::size_t s, std::size_t n,
                          double alpha) {
  return static_cast<double>(q) +
         alpha * static_cast<double>(s) * std::sqrt(static_cast<double>(n));
}

double scu_individual_latency(std::size_t q, std::size_t s, std::size_t n,
                              double alpha) {
  return static_cast<double>(n) * scu_system_latency(q, s, n, alpha);
}

double parallel_system_latency(std::size_t q) {
  return static_cast<double>(q);
}

double parallel_individual_latency(std::size_t n, std::size_t q) {
  return static_cast<double>(n) * static_cast<double>(q);
}

double fai_system_latency_exact(std::size_t n) {
  if (n == 0) throw std::invalid_argument("fai_system_latency_exact: n >= 1");
  return fai_hitting_time(n - 1, n);
}

double fai_system_latency_asymptotic(std::size_t n) {
  return ramanujan_q_asymptotic(n);
}

double fai_individual_latency_exact(std::size_t n) {
  return static_cast<double>(n) * fai_system_latency_exact(n);
}

double fai_completion_rate_predicted(std::size_t n) {
  return 1.0 / fai_system_latency_exact(n);
}

double fai_completion_rate_worst_case(std::size_t n) {
  if (n == 0) return 0.0;
  return 1.0 / static_cast<double>(n);
}

double scu_worst_case_system_latency(std::size_t q, std::size_t s,
                                     std::size_t n) {
  return static_cast<double>(q) +
         static_cast<double>(s) * static_cast<double>(n);
}

double phase_length_bound(std::size_t n, std::size_t a, std::size_t b,
                          double alpha) {
  const double nn = static_cast<double>(n);
  double via_a = std::numeric_limits<double>::infinity();
  double via_b = std::numeric_limits<double>::infinity();
  if (a > 0) via_a = 2.0 * alpha * nn / std::sqrt(static_cast<double>(a));
  if (b > 0) via_b = 3.0 * alpha * nn / std::cbrt(static_cast<double>(b));
  return std::min(via_a, via_b);
}

}  // namespace pwf::core::theory
