// A wait-free universal object with announce-and-help, in step-machine
// form — the "specialized helping mechanism" whose cost the paper's
// introduction argues programmers can usually avoid (Section 1: the
// difference between a wait-free and a lock-free algorithm "typically
// involves the introduction of specialized helping mechanisms, which
// significantly increase the complexity ... of the solution").
//
// The construction is Herlihy-style: operations are cells threaded onto a
// global linked history. Every process announces its cell, then repeatedly
// helps thread the announced cell of the process whose turn it is (turn =
// head position mod n), falling back to its own cell. Threading a cell is
// one CAS on the head cell's next pointer; the helper then writes the new
// cell's position and swings the HEAD register. A process is done when its
// cell has been threaded (its seq register becomes non-zero) — no matter
// who threaded it, so every operation completes within O(n) of its own
// steps under ANY schedule: wait-free, with the helping overhead of ~7
// shared-memory steps per help round.
//
// Cells are allocated fresh from a per-process arena region and never
// reused, which makes every CAS ABA-free (mirroring an implementation that
// relies on a reclamation scheme such as the EBR in src/lockfree).
//
// Register layout (see registers_required):
//   [0]                 HEAD: (position << 32) | cell_ref; raw 0 decodes
//                       as (0, sentinel).
//   [1 .. n]            announce[i]: cell_ref of process i's pending cell.
//   [1+n, 2+n]          the sentinel cell (next, seq).
//   [3+n ..]            cell arena; cell c occupies registers
//                       base + 2c (next) and base + 2c + 1 (seq).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "core/memory.hpp"
#include "core/step_machine.hpp"

namespace pwf::core {

/// Wait-free universal object (ticket dispenser flavour: each completed
/// operation owns a unique, dense history position).
class HelpedUniversal final : public StepMachine {
 public:
  /// `max_cells_per_process`: arena budget; one cell per completed or
  /// attempted operation of this process. The simulation throws if a
  /// process exhausts its budget.
  HelpedUniversal(std::size_t pid, std::size_t n,
                  std::size_t max_cells_per_process);

  bool step(SharedMemory& mem) override;
  std::string name() const override { return "helped-universal"; }

  /// History position of the last completed operation (unique across all
  /// completions, dense from 1).
  std::uint64_t last_ticket() const noexcept { return last_ticket_; }

  static std::size_t registers_required(std::size_t n,
                                        std::size_t max_cells_per_process);

  static StepMachineFactory factory(std::size_t max_cells_per_process);

 private:
  enum class Phase {
    kAnnounce,     // write announce[pid] = fresh cell
    kCheckDone,    // read own cell.seq; non-zero => operation complete
    kReadHead,     // read HEAD -> (k, h)
    kReadTurn,     // read announce[k mod n] -> a
    kReadTurnSeq,  // read a.seq: pending? candidate = a : own
    kRecheckOwn,   // before proposing own cell, re-read own seq (done?)
    kCasNext,      // CAS(h.next, 0, candidate)
    kReadNext,     // read h.next -> s (whoever won)
    kWriteSeq,     // write s.seq = k + 1 (idempotent)
    kCasHead,      // CAS(HEAD, (k, h), (k+1, s))
  };

  // HEAD encoding.
  static constexpr Value pack(std::uint64_t position, std::uint64_t ref) {
    return (position << 32) | ref;
  }
  std::uint64_t sentinel_ref() const noexcept { return 1 + n_; }
  std::uint64_t arena_base() const noexcept { return 3 + n_; }

  std::size_t pid_;
  std::size_t n_;
  std::size_t max_cells_;
  std::size_t cells_used_ = 0;

  Phase phase_ = Phase::kAnnounce;
  std::uint64_t my_cell_ = 0;    // register index of my pending cell
  std::uint64_t head_pos_ = 0;   // k from the last HEAD read
  std::uint64_t head_ref_ = 0;   // h from the last HEAD read
  std::uint64_t turn_cell_ = 0;  // announced cell of the turn process
  std::uint64_t candidate_ = 0;  // cell we will try to thread
  std::uint64_t last_ticket_ = 0;
};

}  // namespace pwf::core
