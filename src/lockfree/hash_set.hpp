// A lock-free hash set built from HarrisList buckets — the shape of the
// lock-free hash tables in Fraser's "Practical lock-freedom" [6], one of
// the paper's motivating SCU-class structures. The bucket count is fixed
// at construction (no resizing), which keeps every operation a pure
// scan-validate instance on one bucket list.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <stdexcept>
#include <vector>

#include "lockfree/harris_list.hpp"
#include "lockfree/lin_stamp.hpp"
#include "mem/epoch.hpp"

namespace pwf::lockfree {

/// Lock-free fixed-capacity hash set of Key. The `Stamp`
/// linearization-point policy is forwarded to the bucket lists (an
/// operation linearizes wherever its bucket's HarrisList operation does);
/// the `Mem` reclamation policy likewise — all buckets share the one
/// domain passed at construction.
template <typename Key, typename Hash = std::hash<Key>,
          typename Stamp = NoStamp, typename Mem = mem::Epoch>
class HashSet {
 public:
  using Bucket = HarrisList<Key, Stamp, Mem>;

  /// Node footprint — size mem::WaitFreePoolDomain block_bytes with this.
  static constexpr std::size_t kNodeBytes = Bucket::kNodeBytes;

  /// `buckets` should be ~2x the expected element count for short chains.
  HashSet(typename Mem::Domain& domain, std::size_t buckets)
      : hash_(), buckets_() {
    if (buckets == 0) {
      throw std::invalid_argument("HashSet: need at least one bucket");
    }
    buckets_.reserve(buckets);
    for (std::size_t i = 0; i < buckets; ++i) {
      buckets_.push_back(std::make_unique<Bucket>(domain));
    }
  }

  HashSet(const HashSet&) = delete;
  HashSet& operator=(const HashSet&) = delete;

  /// Inserts `key`; returns false if already present.
  bool insert(typename Mem::ThreadHandle& handle, const Key& key) {
    return bucket(key).insert(handle, key);
  }

  /// Removes `key`; returns false if absent.
  bool erase(typename Mem::ThreadHandle& handle, const Key& key) {
    return bucket(key).erase(handle, key);
  }

  bool contains(typename Mem::ThreadHandle& handle, const Key& key) {
    return bucket(key).contains(handle, key);
  }

  std::size_t bucket_count() const noexcept { return buckets_.size(); }

  /// O(total) element count; for tests (call quiescent).
  std::size_t size_slow(typename Mem::ThreadHandle& handle) {
    std::size_t total = 0;
    for (const auto& b : buckets_) total += b->size_slow(handle);
    return total;
  }

  /// Applies `fn` to every key (unordered across buckets; quiescent only).
  void for_each(typename Mem::ThreadHandle& handle,
                const std::function<void(const Key&)>& fn) {
    for (const auto& b : buckets_) b->for_each(handle, fn);
  }

 private:
  Bucket& bucket(const Key& key) {
    return *buckets_[hash_(key) % buckets_.size()];
  }

  Hash hash_;
  std::vector<std::unique_ptr<Bucket>> buckets_;
};

}  // namespace pwf::lockfree
