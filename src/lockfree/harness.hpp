// A small driver for hardware experiments: runs one operation closure on T
// real threads for a fixed wall-clock duration and aggregates per-thread
// operation and step counts, from which the paper's completion rate
// (operations / shared-memory steps, Appendix B) is computed.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace pwf::lockfree {

/// Per-thread totals from a throughput run.
struct ThreadTotals {
  std::uint64_t ops = 0;
  std::uint64_t steps = 0;
};

/// Aggregated result of run_throughput().
struct HarnessResult {
  std::vector<ThreadTotals> per_thread;
  double seconds = 0.0;

  std::uint64_t total_ops() const noexcept;
  std::uint64_t total_steps() const noexcept;
  /// ops / steps — approximately 1 / system latency (paper, Appendix B).
  double completion_rate() const noexcept;
  double ops_per_second() const noexcept;
};

/// Runs `one_op(thread_id)` in a loop on `threads` threads for `duration`.
/// `one_op` returns the number of shared-memory steps that operation spent
/// (e.g. CAS attempts). Threads start together behind a barrier.
HarnessResult run_throughput(
    std::size_t threads, std::chrono::milliseconds duration,
    const std::function<std::uint64_t(std::size_t)>& one_op);

/// Runs until every thread has performed `ops_per_thread` operations
/// (deterministic totals; used by correctness tests).
HarnessResult run_fixed_ops(
    std::size_t threads, std::uint64_t ops_per_thread,
    const std::function<std::uint64_t(std::size_t)>& one_op);

}  // namespace pwf::lockfree
