// The synchronization-strategy axis of the structure matrix.
//
// The paper's "practically wait-free" claim is about individual operation
// latency under scheduler contention; whether that latency shape is a
// property of lock-freedom specifically — or of any careful concurrent
// design — needs a comparison *across* synchronization strategies on the
// same abstract structure. SyncStrategy names the three points the
// skip-list family implements (DESIGN.md "strategy spectrum"):
//
//   kCoarse      — one mutex around a sequential structure. The golden
//                  reference: trivially correct, fully blocking, every
//                  operation serializes.
//   kOptimistic  — fine-grained lazy locking: traverse without locks,
//                  lock only the nodes an update touches, validate after
//                  locking, mark nodes logically deleted before unlink.
//                  Reads never block; updates block only on conflicts.
//   kLockFree    — marked-pointer CAS splicing (Fraser / Herlihy–Shavit):
//                  no locks anywhere, helping on traversal, per-operation
//                  progress guaranteed for *someone* at every step.
//
// Runtime selection (`--strategy coarse|optimistic|lockfree`) mirrors the
// mem::ReclaimPolicy pattern: the enum is the CLI-facing selector, the
// concrete class templates (skiplist_*.hpp) are its compile-time
// counterparts, and check::StructureCatalog tags entries with it so the
// drivers can filter whole strategy columns.
#pragma once

#include <optional>
#include <string>

namespace pwf::lockfree {

enum class SyncStrategy {
  kCoarse,
  kOptimistic,
  kLockFree,
};

/// Canonical spelling: "coarse", "optimistic", "lockfree".
const char* sync_strategy_name(SyncStrategy strategy);

/// Accepts the canonical spellings plus common aliases ("mutex",
/// "coarse-lock", "lazy", "fine", "fine-grained", "lock-free", "lf").
std::optional<SyncStrategy> parse_sync_strategy(const std::string& name);

/// All three strategies, in spectrum order (coarse, optimistic, lockfree).
inline constexpr SyncStrategy kAllSyncStrategies[] = {
    SyncStrategy::kCoarse, SyncStrategy::kOptimistic, SyncStrategy::kLockFree};

}  // namespace pwf::lockfree
