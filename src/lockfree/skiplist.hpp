// The three-strategy concurrent skip-list map family — one abstract
// structure (sorted map, insert/erase/contains/get) at three points of
// the synchronization spectrum (lockfree/strategy.hpp):
//
//   CoarseSkipListMap      — skiplist_coarse.hpp      (single mutex)
//   OptimisticSkipListMap  — skiplist_optimistic.hpp  (lazy fine-grained)
//   LockFreeSkipListMap    — skiplist_lockfree.hpp    (marked-pointer CAS)
//
// All three share the tower-height distribution (skiplist_height.hpp)
// and the Stamp × Mem policy axes, so struct_matrix cells differ in
// synchronization strategy only. `SkipListMap` is the default export
// (the lock-free variant, matching the rest of the src/lockfree zoo);
// `SkipListMapFor<S, ...>` selects a variant from a runtime-facing
// SyncStrategy tag at compile time.
#pragma once

#include "lockfree/skiplist_coarse.hpp"
#include "lockfree/skiplist_lockfree.hpp"
#include "lockfree/skiplist_optimistic.hpp"
#include "lockfree/strategy.hpp"

namespace pwf::lockfree {

/// The default skip-list map: the lock-free variant.
template <typename Key, typename T, typename Stamp = NoStamp,
          typename Mem = mem::Epoch>
using SkipListMap = LockFreeSkipListMap<Key, T, Stamp, Mem>;

namespace detail {

template <SyncStrategy S, typename Key, typename T, typename Stamp,
          typename Mem>
struct SkipListMapSelector;

template <typename Key, typename T, typename Stamp, typename Mem>
struct SkipListMapSelector<SyncStrategy::kCoarse, Key, T, Stamp, Mem> {
  using type = CoarseSkipListMap<Key, T, Stamp, Mem>;
};

template <typename Key, typename T, typename Stamp, typename Mem>
struct SkipListMapSelector<SyncStrategy::kOptimistic, Key, T, Stamp, Mem> {
  using type = OptimisticSkipListMap<Key, T, Stamp, Mem>;
};

template <typename Key, typename T, typename Stamp, typename Mem>
struct SkipListMapSelector<SyncStrategy::kLockFree, Key, T, Stamp, Mem> {
  using type = LockFreeSkipListMap<Key, T, Stamp, Mem>;
};

}  // namespace detail

/// Compile-time strategy selection: SkipListMapFor<SyncStrategy::kCoarse,
/// Key, T> is CoarseSkipListMap<Key, T>, etc.
template <SyncStrategy S, typename Key, typename T, typename Stamp = NoStamp,
          typename Mem = mem::Epoch>
using SkipListMapFor =
    typename detail::SkipListMapSelector<S, Key, T, Stamp, Mem>::type;

}  // namespace pwf::lockfree
