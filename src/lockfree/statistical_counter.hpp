// Native statistical counter (Dice, Lev, Moir — the paper's reference
// [4]): per-thread cache-line-padded subcounters. Increments are wait-free
// single stores with no cross-thread contention; reads sum all slots and
// are only statistically consistent. The hardware counterpart of
// core/statistical_counter.hpp.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <vector>

namespace pwf::lockfree {

/// Distributed counter with wait-free O(1) increments and O(threads)
/// statistically-consistent reads.
class StatisticalCounter {
 public:
  explicit StatisticalCounter(std::size_t max_threads)
      : slots_(max_threads) {
    if (max_threads == 0) {
      throw std::invalid_argument("StatisticalCounter: need >= 1 slot");
    }
  }

  /// Adds `delta` to thread `tid`'s subcounter. Wait-free, one store.
  /// Precondition: tid < max_threads and each tid has a single owner.
  void add(std::size_t tid, std::uint64_t delta = 1) noexcept {
    Slot& slot = slots_[tid];
    slot.value.store(slot.value.load(std::memory_order_relaxed) + delta,
                     std::memory_order_release);
  }

  /// Sums all subcounters. The result is a valid value the counter passed
  /// through only in quiescence; concurrently it is a statistical snapshot.
  std::uint64_t read() const noexcept {
    std::uint64_t total = 0;
    for (const Slot& slot : slots_) {
      total += slot.value.load(std::memory_order_acquire);
    }
    return total;
  }

  std::size_t max_threads() const noexcept { return slots_.size(); }

 private:
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> value{0};
  };

  std::vector<Slot> slots_;
};

}  // namespace pwf::lockfree
