// Bounded exponential backoff for CAS retry loops on real hardware.
#pragma once

#include <cstdint>
#include <thread>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace pwf::lockfree {

/// Spins with exponentially growing pause counts, falling back to
/// std::this_thread::yield() once the spin budget is large. Reset between
/// operations; escalate after each failed CAS.
class Backoff {
 public:
  void pause() noexcept {
    if (spins_ <= kMaxSpins) {
      for (std::uint32_t i = 0; i < spins_; ++i) cpu_relax();
      spins_ *= 2;
    } else {
      std::this_thread::yield();
    }
  }

  void reset() noexcept { spins_ = 1; }

 private:
  static constexpr std::uint32_t kMaxSpins = 64;

  static void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
    _mm_pause();
#else
    // Portable fallback: a compiler barrier keeps the loop from collapsing.
    asm volatile("" ::: "memory");
#endif
  }

  std::uint32_t spins_ = 1;
};

}  // namespace pwf::lockfree
