// Bounded exponential backoff for CAS retry loops on real hardware.
#pragma once

#include <cstdint>
#include <thread>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace pwf::lockfree {

/// Spins with exponentially growing pause counts up to a configurable
/// cap; once the budget reaches the cap every pause() spins the capped
/// count *and* yields, so a long retry streak keeps paying a bounded,
/// constant cost per attempt instead of growing without bound (which
/// would skew any measurement of how often the retry path is taken).
/// Reset between operations; escalate after each failed CAS.
class Backoff {
 public:
  static constexpr std::uint32_t kDefaultMaxSpins = 64;

  /// `max_spins` caps the per-pause spin count; 0 means "never spin,
  /// always yield" (useful on oversubscribed hosts).
  explicit Backoff(std::uint32_t max_spins = kDefaultMaxSpins) noexcept
      : max_spins_(max_spins), spins_(max_spins == 0 ? 0 : 1) {}

  void pause() noexcept {
    for (std::uint32_t i = 0; i < spins_; ++i) cpu_relax();
    if (spins_ >= max_spins_) {
      // Saturated: hold the spin budget at the cap and yield so a
      // starved competitor gets the core.
      std::this_thread::yield();
    } else {
      spins_ = spins_ * 2 <= max_spins_ ? spins_ * 2 : max_spins_;
    }
  }

  void reset() noexcept { spins_ = max_spins_ == 0 ? 0 : 1; }

  /// The spin count the *next* pause() will use (tests; saturates at
  /// max_spins()).
  std::uint32_t spins() const noexcept { return spins_; }
  std::uint32_t max_spins() const noexcept { return max_spins_; }

 private:
  static void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
    _mm_pause();
#else
    // Portable fallback: a compiler barrier keeps the loop from collapsing.
    asm volatile("" ::: "memory");
#endif
  }

  std::uint32_t max_spins_;
  std::uint32_t spins_;
};

}  // namespace pwf::lockfree
