// A lock-free hash set built from HarrisList buckets — the shape of the
// lock-free hash tables in Fraser's "Practical lock-freedom" [6], one of
// the paper's motivating SCU-class structures. The bucket count is fixed
// at construction (no resizing), which keeps every operation a pure
// scan-validate instance on one bucket list.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <stdexcept>
#include <vector>

#include "lockfree/ebr.hpp"
#include "lockfree/harris_list.hpp"
#include "lockfree/lin_stamp.hpp"

namespace pwf::lockfree {

/// Lock-free fixed-capacity hash set of Key. The `Stamp`
/// linearization-point policy is forwarded to the bucket lists (an
/// operation linearizes wherever its bucket's HarrisList operation does).
template <typename Key, typename Hash = std::hash<Key>, typename Stamp = NoStamp>
class HashSet {
 public:
  /// `buckets` should be ~2x the expected element count for short chains.
  HashSet(EbrDomain& domain, std::size_t buckets)
      : hash_(), buckets_() {
    if (buckets == 0) {
      throw std::invalid_argument("HashSet: need at least one bucket");
    }
    buckets_.reserve(buckets);
    for (std::size_t i = 0; i < buckets; ++i) {
      buckets_.push_back(std::make_unique<HarrisList<Key, Stamp>>(domain));
    }
  }

  HashSet(const HashSet&) = delete;
  HashSet& operator=(const HashSet&) = delete;

  /// Inserts `key`; returns false if already present.
  bool insert(EbrThreadHandle& handle, const Key& key) {
    return bucket(key).insert(handle, key);
  }

  /// Removes `key`; returns false if absent.
  bool erase(EbrThreadHandle& handle, const Key& key) {
    return bucket(key).erase(handle, key);
  }

  bool contains(EbrThreadHandle& handle, const Key& key) {
    return bucket(key).contains(handle, key);
  }

  std::size_t bucket_count() const noexcept { return buckets_.size(); }

  /// O(total) element count; for tests (call quiescent).
  std::size_t size_slow(EbrThreadHandle& handle) {
    std::size_t total = 0;
    for (const auto& b : buckets_) total += b->size_slow(handle);
    return total;
  }

  /// Applies `fn` to every key (unordered across buckets; quiescent only).
  void for_each(EbrThreadHandle& handle,
                const std::function<void(const Key&)>& fn) {
    for (const auto& b : buckets_) b->for_each(handle, fn);
  }

 private:
  HarrisList<Key, Stamp>& bucket(const Key& key) {
    return *buckets_[hash_(key) % buckets_.size()];
  }

  Hash hash_;
  std::vector<std::unique_ptr<HarrisList<Key, Stamp>>> buckets_;
};

}  // namespace pwf::lockfree
