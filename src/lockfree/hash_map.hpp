// DEPRECATED forwarding shim: the structure defined here has always been
// a hash *set* (HashSet over HarrisList buckets), so the header is now
// lockfree/hash_set.hpp. This shim keeps old includes compiling for one
// release; switch to:
//
//   #include "lockfree/hash_set.hpp"
#pragma once

#include "lockfree/hash_set.hpp"
