// Lock-free fetch-and-increment counters on native atomics (the paper's
// Appendix B workload and the Section 7 algorithm).
//
// CasCounter is the paper's Algorithm 5 on hardware: the x86
// compare-exchange instruction *is* the augmented CAS of Section 7 (a
// failed compare_exchange loads the current value into `expected`), so a
// loser immediately holds the current value for its next attempt.
// FetchAddCounter is the wait-free hardware baseline (lock xadd).
#pragma once

#include <atomic>
#include <cstdint>

#include "lockfree/lin_stamp.hpp"

namespace pwf::lockfree {

/// Result of one counter operation, for completion-rate accounting: the
/// paper's completion rate = operations / total CAS steps (Appendix B).
struct OpCost {
  std::uint64_t value = 0;  ///< the value fetched
  std::uint64_t steps = 0;  ///< shared-memory steps (CAS attempts) spent
};

/// Lock-free counter: fetch-and-increment via a CAS loop (Algorithm 5).
///
/// `Stamp` is the linearization-point stamping policy (lin_stamp.hpp):
/// fetch_inc linearizes at its successful compare_exchange. NoStamp
/// compiles the hooks away.
template <typename Stamp = NoStamp>
class BasicCasCounter {
 public:
  explicit BasicCasCounter(std::uint64_t initial = 0) noexcept
      : value_(initial) {}

  /// Increments and returns the pre-increment value plus the number of CAS
  /// attempts it took. Lock-free but not wait-free: an unlucky thread can
  /// retry unboundedly; the paper's point is that in practice it will not.
  OpCost fetch_inc() noexcept {
    std::uint64_t expected = value_.load(std::memory_order_relaxed);
    std::uint64_t steps = 1;  // the initial load counts as a step
    Stamp::pre();
    while (!value_.compare_exchange_weak(expected, expected + 1,
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire)) {
      // compare_exchange reloads `expected`: the augmented-CAS semantics.
      ++steps;
      Stamp::pre();
    }
    Stamp::commit();  // the successful CAS linearizes the increment
    ++steps;  // the successful CAS
    return {expected, steps};
  }

  std::uint64_t load() const noexcept {
    Stamp::pre();
    const std::uint64_t value = value_.load(std::memory_order_acquire);
    Stamp::commit();  // the load is the linearization point
    return value;
  }

 private:
  std::atomic<std::uint64_t> value_;
};

/// Wait-free counter baseline: hardware fetch_add.
template <typename Stamp = NoStamp>
class BasicFetchAddCounter {
 public:
  explicit BasicFetchAddCounter(std::uint64_t initial = 0) noexcept
      : value_(initial) {}

  OpCost fetch_inc() noexcept {
    Stamp::pre();
    const std::uint64_t value = value_.fetch_add(1, std::memory_order_acq_rel);
    Stamp::commit();  // fetch_add is the linearization point
    return {value, 1};
  }

  std::uint64_t load() const noexcept {
    Stamp::pre();
    const std::uint64_t value = value_.load(std::memory_order_acquire);
    Stamp::commit();
    return value;
  }

 private:
  std::atomic<std::uint64_t> value_;
};

/// Unstamped aliases — the names the rest of the repo uses.
using CasCounter = BasicCasCounter<>;
using FetchAddCounter = BasicFetchAddCounter<>;

}  // namespace pwf::lockfree
