// Lock-free fetch-and-increment counters on native atomics (the paper's
// Appendix B workload and the Section 7 algorithm).
//
// CasCounter is the paper's Algorithm 5 on hardware: the x86
// compare-exchange instruction *is* the augmented CAS of Section 7 (a
// failed compare_exchange loads the current value into `expected`), so a
// loser immediately holds the current value for its next attempt.
// FetchAddCounter is the wait-free hardware baseline (lock xadd).
#pragma once

#include <atomic>
#include <cstdint>

namespace pwf::lockfree {

/// Result of one counter operation, for completion-rate accounting: the
/// paper's completion rate = operations / total CAS steps (Appendix B).
struct OpCost {
  std::uint64_t value = 0;  ///< the value fetched
  std::uint64_t steps = 0;  ///< shared-memory steps (CAS attempts) spent
};

/// Lock-free counter: fetch-and-increment via a CAS loop (Algorithm 5).
class CasCounter {
 public:
  explicit CasCounter(std::uint64_t initial = 0) noexcept : value_(initial) {}

  /// Increments and returns the pre-increment value plus the number of CAS
  /// attempts it took. Lock-free but not wait-free: an unlucky thread can
  /// retry unboundedly; the paper's point is that in practice it will not.
  OpCost fetch_inc() noexcept {
    std::uint64_t expected = value_.load(std::memory_order_relaxed);
    std::uint64_t steps = 1;  // the initial load counts as a step
    while (!value_.compare_exchange_weak(expected, expected + 1,
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire)) {
      // compare_exchange reloads `expected`: the augmented-CAS semantics.
      ++steps;
    }
    ++steps;  // the successful CAS
    return {expected, steps};
  }

  std::uint64_t load() const noexcept {
    return value_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<std::uint64_t> value_;
};

/// Wait-free counter baseline: hardware fetch_add.
class FetchAddCounter {
 public:
  explicit FetchAddCounter(std::uint64_t initial = 0) noexcept
      : value_(initial) {}

  OpCost fetch_inc() noexcept {
    return {value_.fetch_add(1, std::memory_order_acq_rel), 1};
  }

  std::uint64_t load() const noexcept {
    return value_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<std::uint64_t> value_;
};

}  // namespace pwf::lockfree
