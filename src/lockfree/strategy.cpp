#include "lockfree/strategy.hpp"

namespace pwf::lockfree {

const char* sync_strategy_name(SyncStrategy strategy) {
  switch (strategy) {
    case SyncStrategy::kCoarse:
      return "coarse";
    case SyncStrategy::kOptimistic:
      return "optimistic";
    case SyncStrategy::kLockFree:
      return "lockfree";
  }
  return "?";
}

std::optional<SyncStrategy> parse_sync_strategy(const std::string& name) {
  if (name == "coarse" || name == "mutex" || name == "coarse-lock" ||
      name == "coarse_lock" || name == "lock") {
    return SyncStrategy::kCoarse;
  }
  if (name == "optimistic" || name == "lazy" || name == "fine" ||
      name == "fine-grained" || name == "fine_grained" || name == "opt") {
    return SyncStrategy::kOptimistic;
  }
  if (name == "lockfree" || name == "lock-free" || name == "lock_free" ||
      name == "lf") {
    return SyncStrategy::kLockFree;
  }
  return std::nullopt;
}

}  // namespace pwf::lockfree
