// Shared skip-list geometry: one tower-height distribution for all three
// synchronization strategies, so strategy comparisons in struct_matrix
// never confound index shape with synchronization cost.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>

namespace pwf::lockfree {

/// Tallest tower any skip-list node can have. Every node embeds a
/// fixed-size next[kSkipListMaxHeight] array so kNodeBytes is a compile
/// time constant (mem::WaitFreePoolDomain sizes its blocks from it).
/// 2^12 = 4096 expected keys per full-height tower — far beyond any
/// workload in this repo.
inline constexpr int kSkipListMaxHeight = 12;

namespace detail {

/// Geometric(1/2) tower heights from a per-structure counter: each draw
/// advances a Weyl sequence and runs it through the splitmix64 finalizer,
/// so heights are reproducible per structure instance (given the same
/// allocation order) without any per-thread RNG plumbing.
class SkipListHeightGen {
 public:
  int next() noexcept {
    std::uint64_t z =
        state_.fetch_add(0x9E3779B97F4A7C15ULL, std::memory_order_relaxed);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    z ^= z >> 31;
    const int height = 1 + std::countr_one(z & ((1ULL << (kSkipListMaxHeight - 1)) - 1));
    return height;
  }

 private:
  std::atomic<std::uint64_t> state_{0x853C49E6748FEA9BULL};
};

}  // namespace detail
}  // namespace pwf::lockfree
