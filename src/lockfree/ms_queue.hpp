// The Michael-Scott lock-free FIFO queue (reference [17] in the paper),
// with epoch-based reclamation. Another canonical SCU-pattern structure:
// enqueue/dequeue scan tail/head and validate with a CAS, helping the tail
// forward when it lags.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <utility>

#include "lockfree/ebr.hpp"
#include "lockfree/lin_stamp.hpp"

namespace pwf::lockfree {

/// Lock-free FIFO queue of T (Michael & Scott, PODC '96).
///
/// `Stamp` is the linearization-point stamping policy (lin_stamp.hpp):
/// enqueue linearizes at its successful next-pointer CAS, dequeue at its
/// successful head CAS (non-empty) or at the next == nullptr read of a
/// consistent head (empty). NoStamp compiles the hooks away.
template <typename T, typename Stamp = NoStamp>
class MsQueue {
 public:
  explicit MsQueue(EbrDomain& domain) : domain_(&domain) {
    auto* dummy = new Node{};
    head_.store(dummy, std::memory_order_relaxed);
    tail_.store(dummy, std::memory_order_relaxed);
  }

  ~MsQueue() {
    // Single-threaded teardown.
    Node* node = head_.load(std::memory_order_relaxed);
    while (node) {
      Node* next = node->next.load(std::memory_order_relaxed);
      delete node;
      node = next;
    }
  }

  MsQueue(const MsQueue&) = delete;
  MsQueue& operator=(const MsQueue&) = delete;

  /// Enqueues `value`; returns the number of tail-CAS attempts (>= 1).
  std::uint64_t enqueue(EbrThreadHandle& handle, T value) {
    auto* node = new Node{std::move(value)};
    const EbrGuard guard = handle.pin();
    std::uint64_t attempts = 0;
    while (true) {
      Node* tail = tail_.load(std::memory_order_acquire);
      Node* next = tail->next.load(std::memory_order_acquire);
      if (tail != tail_.load(std::memory_order_acquire)) continue;
      if (next != nullptr) {
        // Tail is lagging: help swing it forward, then retry.
        tail_.compare_exchange_weak(tail, next, std::memory_order_acq_rel,
                                    std::memory_order_acquire);
        continue;
      }
      ++attempts;
      Node* expected = nullptr;
      Stamp::pre();
      if (tail->next.compare_exchange_weak(expected, node,
                                           std::memory_order_acq_rel,
                                           std::memory_order_acquire)) {
        // Linearization point; swing the tail (may fail if helped).
        Stamp::commit();
        tail_.compare_exchange_weak(tail, node, std::memory_order_acq_rel,
                                    std::memory_order_acquire);
        return attempts;
      }
    }
  }

  /// Dequeues the oldest element, or nullopt when the queue is empty.
  std::optional<T> dequeue(EbrThreadHandle& handle) {
    return dequeue_counted(handle).first;
  }

  std::pair<std::optional<T>, std::uint64_t> dequeue_counted(
      EbrThreadHandle& handle) {
    const EbrGuard guard = handle.pin();
    std::uint64_t attempts = 0;
    while (true) {
      // The pre stamp at the iteration top brackets the empty case: the
      // linearizing next == nullptr read happens inside this iteration.
      Stamp::pre();
      Node* head = head_.load(std::memory_order_acquire);
      Node* tail = tail_.load(std::memory_order_acquire);
      Node* next = head->next.load(std::memory_order_acquire);
      if (head != head_.load(std::memory_order_acquire)) continue;
      if (next == nullptr) {
        Stamp::commit();  // observed empty on a consistent head
        return {std::nullopt, attempts};
      }
      if (head == tail) {
        // Tail lagging behind a non-empty queue: help it forward.
        tail_.compare_exchange_weak(tail, next, std::memory_order_acq_rel,
                                    std::memory_order_acquire);
        continue;
      }
      ++attempts;
      Stamp::pre();
      if (head_.compare_exchange_weak(head, next, std::memory_order_acq_rel,
                                      std::memory_order_acquire)) {
        Stamp::commit();
        T out = std::move(next->value);
        handle.retire(head);
        return {std::move(out), attempts};
      }
    }
  }

  bool empty() const noexcept {
    Node* head = head_.load(std::memory_order_acquire);
    return head->next.load(std::memory_order_acquire) == nullptr;
  }

 private:
  struct Node {
    T value{};
    std::atomic<Node*> next{nullptr};
  };

  EbrDomain* domain_;
  std::atomic<Node*> head_;
  std::atomic<Node*> tail_;
};

}  // namespace pwf::lockfree
