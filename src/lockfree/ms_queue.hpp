// The Michael-Scott lock-free FIFO queue (reference [17] in the paper),
// reclaimed through the pwf::mem policy given as `Mem`. Another canonical
// SCU-pattern structure: enqueue/dequeue scan tail/head and validate with
// a CAS, helping the tail forward when it lags.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <utility>

#include "lockfree/lin_stamp.hpp"
#include "mem/epoch.hpp"

namespace pwf::lockfree {

/// Lock-free FIFO queue of T (Michael & Scott, PODC '96).
///
/// `Stamp` is the linearization-point stamping policy (lin_stamp.hpp):
/// enqueue linearizes at its successful next-pointer CAS, dequeue at its
/// successful head CAS (non-empty) or at the next == nullptr read of a
/// consistent head (empty). NoStamp compiles the hooks away.
///
/// `Mem` is the reclamation policy (mem/reclaimer.hpp); the default
/// mem::Epoch preserves the historical EbrDomain-based signatures.
template <typename T, typename Stamp = NoStamp, typename Mem = mem::Epoch>
class MsQueue {
  struct Node {
    T value{};
    std::atomic<Node*> next{nullptr};
  };

 public:
  static_assert(mem::Reclaimer<Mem>);

  /// Node footprint — size mem::WaitFreePoolDomain block_bytes with this.
  static constexpr std::size_t kNodeBytes = sizeof(Node);

  explicit MsQueue(typename Mem::Domain& domain) : domain_(&domain) {
    Node* dummy = Mem::template create<Node>(domain);
    head_.store(dummy, std::memory_order_relaxed);
    tail_.store(dummy, std::memory_order_relaxed);
  }

  ~MsQueue() {
    // Single-threaded teardown.
    Node* node = head_.load(std::memory_order_relaxed);
    while (node) {
      Node* next = node->next.load(std::memory_order_relaxed);
      Mem::dealloc(*domain_, node);
      node = next;
    }
  }

  MsQueue(const MsQueue&) = delete;
  MsQueue& operator=(const MsQueue&) = delete;

  /// Enqueues `value`; returns the number of tail-CAS attempts (>= 1).
  std::uint64_t enqueue(typename Mem::ThreadHandle& handle, T value) {
    Node* node = Mem::template create<Node>(handle, std::move(value));
    const auto guard = handle.pin();
    std::uint64_t attempts = 0;
    while (true) {
      // tail is dereferenced (tail->next), so it must come from a
      // protected load; next is only compared/CAS-target, never
      // dereferenced, so plain loads suffice for it.
      Node* tail = Mem::load(handle, tail_);
      Node* next = tail->next.load(std::memory_order_acquire);
      if (tail != tail_.load(std::memory_order_acquire)) continue;
      if (next != nullptr) {
        // Tail is lagging: help swing it forward, then retry.
        tail_.compare_exchange_weak(tail, next, std::memory_order_acq_rel,
                                    std::memory_order_acquire);
        continue;
      }
      ++attempts;
      Node* expected = nullptr;
      Stamp::pre();
      if (tail->next.compare_exchange_weak(expected, node,
                                           std::memory_order_acq_rel,
                                           std::memory_order_acquire)) {
        // Linearization point; swing the tail (may fail if helped).
        Stamp::commit();
        tail_.compare_exchange_weak(tail, node, std::memory_order_acq_rel,
                                    std::memory_order_acquire);
        return attempts;
      }
    }
  }

  /// Dequeues the oldest element, or nullopt when the queue is empty.
  std::optional<T> dequeue(typename Mem::ThreadHandle& handle) {
    return dequeue_counted(handle).first;
  }

  std::pair<std::optional<T>, std::uint64_t> dequeue_counted(
      typename Mem::ThreadHandle& handle) {
    const auto guard = handle.pin();
    std::uint64_t attempts = 0;
    while (true) {
      // The pre stamp at the iteration top brackets the empty case: the
      // linearizing next == nullptr read happens inside this iteration.
      Stamp::pre();
      // head and next are both dereferenced, so both loads are
      // protected; the head_ recheck after protecting next certifies
      // next was still linked (hence not yet retired) while our
      // reservation was already published — Michael's hazard-pointer
      // validation order, which the era intervals inherit.
      Node* head = Mem::load(handle, head_);
      Node* tail = tail_.load(std::memory_order_acquire);
      Node* next = Mem::load(handle, head->next);
      if (head != head_.load(std::memory_order_acquire)) continue;
      if (next == nullptr) {
        Stamp::commit();  // observed empty on a consistent head
        return {std::nullopt, attempts};
      }
      if (head == tail) {
        // Tail lagging behind a non-empty queue: help it forward.
        tail_.compare_exchange_weak(tail, next, std::memory_order_acq_rel,
                                    std::memory_order_acquire);
        continue;
      }
      ++attempts;
      Stamp::pre();
      if (head_.compare_exchange_weak(head, next, std::memory_order_acq_rel,
                                      std::memory_order_acquire)) {
        Stamp::commit();
        T out = std::move(next->value);
        Mem::retire(handle, head);
        return {std::move(out), attempts};
      }
    }
  }

  /// Quiescent emptiness check (dereferences the head without a guard;
  /// do not race it against concurrent dequeues under the era policies).
  bool empty() const noexcept {
    Node* head = head_.load(std::memory_order_acquire);
    return head->next.load(std::memory_order_acquire) == nullptr;
  }

 private:
  typename Mem::Domain* domain_;
  std::atomic<Node*> head_;
  std::atomic<Node*> tail_;
};

}  // namespace pwf::lockfree
