// Treiber's lock-free stack (reference [21] in the paper) — a canonical
// member of the class SCU(q, s): push/pop read the head (scan) and CAS it
// (validate). Memory is reclaimed through epoch-based reclamation, which
// also makes the head CAS ABA-safe (a node address cannot be reused while
// any concurrent operation might still compare against it).
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <utility>

#include "lockfree/ebr.hpp"
#include "lockfree/lin_stamp.hpp"

namespace pwf::lockfree {

/// Lock-free LIFO stack of T. All operations require the calling thread's
/// EbrThreadHandle for the domain passed at construction.
///
/// `Stamp` is the linearization-point stamping policy (lin_stamp.hpp):
/// push linearizes at its successful head CAS, pop at its successful head
/// CAS (non-empty) or at the head read / failed CAS that observed null
/// (empty). The default NoStamp compiles the hooks away.
template <typename T, typename Stamp = NoStamp>
class TreiberStack {
 public:
  explicit TreiberStack(EbrDomain& domain) noexcept : domain_(&domain) {}

  ~TreiberStack() {
    // Single-threaded teardown: free remaining nodes directly.
    Node* node = head_.load(std::memory_order_relaxed);
    while (node) {
      Node* next = node->next;
      delete node;
      node = next;
    }
  }

  TreiberStack(const TreiberStack&) = delete;
  TreiberStack& operator=(const TreiberStack&) = delete;

  /// Pushes `value`; returns the number of CAS attempts (>= 1).
  std::uint64_t push(EbrThreadHandle& handle, T value) {
    auto* node = new Node{std::move(value), nullptr};
    const EbrGuard guard = handle.pin();
    std::uint64_t attempts = 0;
    Node* expected = head_.load(std::memory_order_acquire);
    do {
      node->next = expected;
      ++attempts;
      Stamp::pre();
    } while (!head_.compare_exchange_weak(expected, node,
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire));
    Stamp::commit();
    return attempts;
  }

  /// Pops the top element, or nullopt when the stack is empty.
  std::optional<T> pop(EbrThreadHandle& handle) {
    return pop_counted(handle).first;
  }

  /// Pop with CAS-attempt accounting (attempts == 0 means observed empty
  /// on the first read).
  std::pair<std::optional<T>, std::uint64_t> pop_counted(
      EbrThreadHandle& handle) {
    const EbrGuard guard = handle.pin();
    std::uint64_t attempts = 0;
    Stamp::pre();
    Node* node = head_.load(std::memory_order_acquire);
    while (node) {
      ++attempts;
      Stamp::pre();
      if (head_.compare_exchange_weak(node, node->next,
                                      std::memory_order_acq_rel,
                                      std::memory_order_acquire)) {
        Stamp::commit();
        T out = std::move(node->value);
        handle.retire(node);
        return {std::move(out), attempts};
      }
      // compare_exchange reloaded `node` with the current head; if it is
      // now null, that reload was the linearizing (empty) read and the
      // pre stamp above brackets it from below.
    }
    Stamp::commit();  // observed empty
    return {std::nullopt, attempts};
  }

  bool empty() const noexcept {
    return head_.load(std::memory_order_acquire) == nullptr;
  }

 private:
  struct Node {
    T value;
    Node* next;
  };

  EbrDomain* domain_;
  std::atomic<Node*> head_{nullptr};
};

}  // namespace pwf::lockfree
