// Treiber's lock-free stack (reference [21] in the paper) — a canonical
// member of the class SCU(q, s): push/pop read the head (scan) and CAS it
// (validate). Memory is reclaimed through the pwf::mem policy given as
// the `Mem` parameter (mem/reclaimer.hpp); every policy also makes the
// head CAS ABA-safe (a node address cannot be reused while any concurrent
// operation might still compare against it).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <utility>

#include "lockfree/lin_stamp.hpp"
#include "mem/epoch.hpp"

namespace pwf::lockfree {

/// Lock-free LIFO stack of T. All operations require the calling thread's
/// Mem::ThreadHandle for the domain passed at construction.
///
/// `Stamp` is the linearization-point stamping policy (lin_stamp.hpp):
/// push linearizes at its successful head CAS, pop at its successful head
/// CAS (non-empty) or at the head read that observed null (empty). The
/// default NoStamp compiles the hooks away.
///
/// `Mem` is the reclamation policy (mem/reclaimer.hpp). The default
/// mem::Epoch keeps the historical `EbrDomain&` / `EbrThreadHandle&`
/// signatures compiling unchanged.
template <typename T, typename Stamp = NoStamp, typename Mem = mem::Epoch>
class TreiberStack {
  struct Node {
    T value;
    Node* next;
  };

 public:
  static_assert(mem::Reclaimer<Mem>);

  /// Node footprint — size mem::WaitFreePoolDomain block_bytes with this.
  static constexpr std::size_t kNodeBytes = sizeof(Node);

  explicit TreiberStack(typename Mem::Domain& domain) noexcept
      : domain_(&domain) {}

  ~TreiberStack() {
    // Single-threaded teardown: free remaining nodes directly.
    Node* node = head_.load(std::memory_order_relaxed);
    while (node) {
      Node* next = node->next;
      Mem::dealloc(*domain_, node);
      node = next;
    }
  }

  TreiberStack(const TreiberStack&) = delete;
  TreiberStack& operator=(const TreiberStack&) = delete;

  /// Pushes `value`; returns the number of CAS attempts (>= 1).
  std::uint64_t push(typename Mem::ThreadHandle& handle, T value) {
    Node* node = Mem::template create<Node>(handle, std::move(value), nullptr);
    const auto guard = handle.pin();
    std::uint64_t attempts = 0;
    // The CAS only compares `expected`; it is never dereferenced, so a
    // plain load suffices under every reclamation policy.
    Node* expected = head_.load(std::memory_order_acquire);
    do {
      node->next = expected;
      ++attempts;
      Stamp::pre();
    } while (!head_.compare_exchange_weak(expected, node,
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire));
    Stamp::commit();
    return attempts;
  }

  /// Pops the top element, or nullopt when the stack is empty.
  std::optional<T> pop(typename Mem::ThreadHandle& handle) {
    return pop_counted(handle).first;
  }

  /// Pop with CAS-attempt accounting (attempts == 0 means observed empty
  /// on the first read).
  std::pair<std::optional<T>, std::uint64_t> pop_counted(
      typename Mem::ThreadHandle& handle) {
    const auto guard = handle.pin();
    std::uint64_t attempts = 0;
    for (;;) {
      // Every dereferenced head must come from a protected load: under
      // the era policies a pointer reloaded by a failed CAS carries no
      // reservation, so the loop re-issues Mem::load each iteration.
      Stamp::pre();
      Node* node = Mem::load(handle, head_);
      if (node == nullptr) {
        Stamp::commit();  // observed empty
        return {std::nullopt, attempts};
      }
      ++attempts;
      Node* next = node->next;
      Stamp::pre();
      Node* expected = node;
      if (head_.compare_exchange_strong(expected, next,
                                        std::memory_order_acq_rel,
                                        std::memory_order_acquire)) {
        Stamp::commit();
        T out = std::move(node->value);
        Mem::retire(handle, node);
        return {std::move(out), attempts};
      }
    }
  }

  bool empty() const noexcept {
    return head_.load(std::memory_order_acquire) == nullptr;
  }

 private:
  typename Mem::Domain* domain_;
  std::atomic<Node*> head_{nullptr};
};

}  // namespace pwf::lockfree
