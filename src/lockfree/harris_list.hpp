// Harris's lock-free ordered linked-list set (the construction behind the
// lock-free hash tables of Fraser [6], which the paper cites as a main
// consumer of the SCU pattern). Deletion is two-phase: a logical delete
// marks the low bit of the node's next pointer (one CAS), then the node is
// physically unlinked (another CAS) either by the deleter or by any later
// traversal that encounters the mark. Both insert and delete are
// scan-validate instances: traverse (scan), CAS a next pointer (validate).
//
// Memory reclamation is epoch-based: a node is retired only after it has
// been physically unlinked, and EBR guarantees no pinned traversal still
// holds it when it is freed.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <utility>

#include "lockfree/ebr.hpp"
#include "lockfree/lin_stamp.hpp"

namespace pwf::lockfree {

/// Lock-free sorted set of Key (requires operator< and operator==).
///
/// `Stamp` is the linearization-point stamping policy (lin_stamp.hpp).
/// Successful insert linearizes at the link CAS and successful erase at
/// the logical-delete mark CAS, so both get tight [pre, post] brackets.
/// The failing paths (duplicate insert, absent erase) and contains
/// linearize at some read *during* a traversal, which cannot be pinned to
/// one instruction from outside — they stamp a sound wider bracket (the
/// enclosing attempt, or the whole call for contains). NoStamp compiles
/// everything away.
template <typename Key, typename Stamp = NoStamp>
class HarrisList {
 public:
  explicit HarrisList(EbrDomain& domain) : domain_(&domain) {
    head_.store(0, std::memory_order_relaxed);
  }

  ~HarrisList() {
    // Single-threaded teardown.
    Node* node = strip(head_.load(std::memory_order_relaxed));
    while (node) {
      Node* next = strip(node->next.load(std::memory_order_relaxed));
      delete node;
      node = next;
    }
  }

  HarrisList(const HarrisList&) = delete;
  HarrisList& operator=(const HarrisList&) = delete;

  /// Inserts `key`; returns false if already present.
  bool insert(EbrThreadHandle& handle, const Key& key) {
    const EbrGuard guard = handle.pin();
    auto* node = new Node{key, {}};
    while (true) {
      // Brackets the duplicate-found path: its linearizing read is some
      // load inside this attempt's search.
      Stamp::pre();
      auto [prev, curr] = search(handle, key);
      if (curr && curr->key == key) {
        Stamp::commit();  // observed `key` present
        delete node;
        return false;
      }
      node->next.store(pack(curr, false), std::memory_order_relaxed);
      std::uintptr_t expected = pack(curr, false);
      std::atomic<std::uintptr_t>& link = prev ? prev->next : head_raw();
      Stamp::pre();
      if (link.compare_exchange_strong(expected, pack(node, false),
                                       std::memory_order_acq_rel,
                                       std::memory_order_acquire)) {
        Stamp::commit();  // the link CAS linearizes the insert
        return true;
      }
      // Validation failed: rescan.
    }
  }

  /// Removes `key`; returns false if absent.
  bool erase(EbrThreadHandle& handle, const Key& key) {
    const EbrGuard guard = handle.pin();
    while (true) {
      // Brackets the absent path: its linearizing read is inside this
      // attempt's search.
      Stamp::pre();
      auto [prev, curr] = search(handle, key);
      if (!curr || !(curr->key == key)) {
        Stamp::commit();  // observed `key` absent
        return false;
      }
      const std::uintptr_t succ = curr->next.load(std::memory_order_acquire);
      if (marked(succ)) continue;  // someone is deleting it; re-search helps
      // Logical delete: mark curr's next pointer.
      std::uintptr_t expected = succ;
      Stamp::pre();
      if (!curr->next.compare_exchange_strong(expected, mark(succ),
                                              std::memory_order_acq_rel,
                                              std::memory_order_acquire)) {
        continue;
      }
      Stamp::commit();  // the mark CAS linearizes the erase
      // Physical unlink (best effort; search() also unlinks marked nodes).
      std::uintptr_t link_expected = pack(curr, false);
      std::atomic<std::uintptr_t>& link = prev ? prev->next : head_raw();
      if (link.compare_exchange_strong(link_expected, succ,
                                       std::memory_order_acq_rel,
                                       std::memory_order_acquire)) {
        handle.retire(curr);
      }
      return true;
    }
  }

  /// Membership test. Wait-free except for helping unlink of marked nodes.
  bool contains(EbrThreadHandle& handle, const Key& key) {
    const EbrGuard guard = handle.pin();
    // The linearizing read is somewhere in the traversal; bracket the
    // whole traversal (still excludes the pin/call overhead).
    Stamp::pre();
    Node* curr = strip(head_.load(std::memory_order_acquire));
    while (curr && curr->key < key) {
      curr = strip(curr->next.load(std::memory_order_acquire));
    }
    if (!curr || !(curr->key == key)) {
      Stamp::commit();
      return false;
    }
    // Present unless logically deleted.
    const bool present = !marked(curr->next.load(std::memory_order_acquire));
    Stamp::commit();
    return present;
  }

  /// Number of unmarked nodes; O(n), for tests (call quiescent).
  std::size_t size_slow(EbrThreadHandle& handle) {
    const EbrGuard guard = handle.pin();
    std::size_t count = 0;
    Node* curr = strip(head_.load(std::memory_order_acquire));
    while (curr) {
      if (!marked(curr->next.load(std::memory_order_acquire))) ++count;
      curr = strip(curr->next.load(std::memory_order_acquire));
    }
    return count;
  }

  /// Applies `fn` to every unmarked key in order (quiescent use only).
  void for_each(EbrThreadHandle& handle,
                const std::function<void(const Key&)>& fn) {
    const EbrGuard guard = handle.pin();
    Node* curr = strip(head_.load(std::memory_order_acquire));
    while (curr) {
      const std::uintptr_t next = curr->next.load(std::memory_order_acquire);
      if (!marked(next)) fn(curr->key);
      curr = strip(next);
    }
  }

 private:
  struct Node {
    Key key;
    std::atomic<std::uintptr_t> next{0};
  };

  static constexpr std::uintptr_t kMark = 1;

  static bool marked(std::uintptr_t p) noexcept { return p & kMark; }
  static std::uintptr_t mark(std::uintptr_t p) noexcept { return p | kMark; }
  static Node* strip(std::uintptr_t p) noexcept {
    return reinterpret_cast<Node*>(p & ~kMark);
  }
  static std::uintptr_t pack(Node* p, bool is_marked) noexcept {
    return reinterpret_cast<std::uintptr_t>(p) | (is_marked ? kMark : 0);
  }

  std::atomic<std::uintptr_t>& head_raw() noexcept { return head_; }

  /// Finds the first unmarked node with key >= `key`, unlinking marked
  /// nodes on the way (Harris's helping). Returns (predecessor, node);
  /// predecessor is nullptr when node is the head.
  std::pair<Node*, Node*> search(EbrThreadHandle& handle, const Key& key) {
  restart:
    Node* prev = nullptr;
    std::uintptr_t curr_raw = head_raw().load(std::memory_order_acquire);
    Node* curr = strip(curr_raw);
    while (curr) {
      const std::uintptr_t next_raw =
          curr->next.load(std::memory_order_acquire);
      if (marked(next_raw)) {
        // curr is logically deleted: unlink it before moving on.
        std::uintptr_t expected = pack(curr, false);
        std::atomic<std::uintptr_t>& link = prev ? prev->next : head_raw();
        if (!link.compare_exchange_strong(
                expected, reinterpret_cast<std::uintptr_t>(strip(next_raw)),
                std::memory_order_acq_rel, std::memory_order_acquire)) {
          goto restart;  // the predecessor changed under us
        }
        handle.retire(curr);
        curr = strip(next_raw);
        continue;
      }
      if (!(curr->key < key)) break;
      prev = curr;
      curr = strip(next_raw);
    }
    return {prev, curr};
  }

  EbrDomain* domain_;
  std::atomic<std::uintptr_t> head_;  // pack()-encoded, never marked
};

}  // namespace pwf::lockfree
