// Harris's lock-free ordered linked-list set (the construction behind the
// lock-free hash tables of Fraser [6], which the paper cites as a main
// consumer of the SCU pattern). Deletion is two-phase: a logical delete
// marks the low bit of the node's next pointer (one CAS), then the node is
// physically unlinked (another CAS) either by the deleter or by any later
// traversal that encounters the mark. Both insert and delete are
// scan-validate instances: traverse (scan), CAS a next pointer (validate).
//
// Memory reclamation goes through the pwf::mem policy given as `Mem`: a
// node is retired only after it has been physically unlinked. Every link
// read on a traversal is a protected load (Mem::load), which under the
// era policies certifies alloc_era <= upper for the node reached; and no
// concurrent traversal ever crosses an unlinked node's frozen successor
// pointer (search() unlinks marked nodes itself before moving past them,
// restarting if the unlink CAS fails), which certifies retire_era >= lo.
// Together the two keep every reachable node blocked from reclamation.
// Only the quiescent helpers (size_slow, for_each) walk marked chains.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>

#include "lockfree/lin_stamp.hpp"
#include "mem/epoch.hpp"

namespace pwf::lockfree {

/// Lock-free sorted set of Key (requires operator< and operator==).
///
/// `Stamp` is the linearization-point stamping policy (lin_stamp.hpp).
/// Successful insert linearizes at the link CAS and successful erase at
/// the logical-delete mark CAS, so both get tight [pre, post] brackets.
/// The failing paths (duplicate insert, absent erase) and contains
/// linearize at some read *during* a traversal, which cannot be pinned to
/// one instruction from outside — they stamp a sound wider bracket (the
/// enclosing attempt, or the whole call for contains). NoStamp compiles
/// everything away.
///
/// `Mem` is the reclamation policy (mem/reclaimer.hpp); the default
/// mem::Epoch preserves the historical EbrDomain-based signatures.
template <typename Key, typename Stamp = NoStamp, typename Mem = mem::Epoch>
class HarrisList {
  struct Node {
    Key key;
    std::atomic<std::uintptr_t> next{0};
  };

 public:
  static_assert(mem::Reclaimer<Mem>);

  /// Node footprint — size mem::WaitFreePoolDomain block_bytes with this.
  static constexpr std::size_t kNodeBytes = sizeof(Node);

  explicit HarrisList(typename Mem::Domain& domain) : domain_(&domain) {
    head_.store(0, std::memory_order_relaxed);
  }

  ~HarrisList() {
    // Single-threaded teardown.
    Node* node = strip(head_.load(std::memory_order_relaxed));
    while (node) {
      Node* next = strip(node->next.load(std::memory_order_relaxed));
      Mem::dealloc(*domain_, node);
      node = next;
    }
  }

  HarrisList(const HarrisList&) = delete;
  HarrisList& operator=(const HarrisList&) = delete;

  /// Inserts `key`; returns false if already present.
  bool insert(typename Mem::ThreadHandle& handle, const Key& key) {
    const auto guard = handle.pin();
    Node* node = Mem::template create<Node>(handle, key);
    while (true) {
      // Brackets the duplicate-found path: its linearizing read is some
      // load inside this attempt's search.
      Stamp::pre();
      auto [prev, curr] = search(handle, key);
      if (curr && curr->key == key) {
        Stamp::commit();  // observed `key` present
        Mem::destroy(handle, node);  // never published
        return false;
      }
      node->next.store(pack(curr, false), std::memory_order_relaxed);
      std::uintptr_t expected = pack(curr, false);
      std::atomic<std::uintptr_t>& link = prev ? prev->next : head_raw();
      Stamp::pre();
      if (link.compare_exchange_strong(expected, pack(node, false),
                                       std::memory_order_acq_rel,
                                       std::memory_order_acquire)) {
        Stamp::commit();  // the link CAS linearizes the insert
        return true;
      }
      // Validation failed: rescan.
    }
  }

  /// Removes `key`; returns false if absent.
  bool erase(typename Mem::ThreadHandle& handle, const Key& key) {
    const auto guard = handle.pin();
    while (true) {
      // Brackets the absent path: its linearizing read is inside this
      // attempt's search.
      Stamp::pre();
      auto [prev, curr] = search(handle, key);
      if (!curr || !(curr->key == key)) {
        Stamp::commit();  // observed `key` absent
        return false;
      }
      const std::uintptr_t succ = curr->next.load(std::memory_order_acquire);
      if (marked(succ)) continue;  // someone is deleting it; re-search helps
      // Logical delete: mark curr's next pointer.
      std::uintptr_t expected = succ;
      Stamp::pre();
      if (!curr->next.compare_exchange_strong(expected, mark(succ),
                                              std::memory_order_acq_rel,
                                              std::memory_order_acquire)) {
        continue;
      }
      Stamp::commit();  // the mark CAS linearizes the erase
      // Physical unlink (best effort; search() also unlinks marked nodes).
      std::uintptr_t link_expected = pack(curr, false);
      std::atomic<std::uintptr_t>& link = prev ? prev->next : head_raw();
      if (link.compare_exchange_strong(link_expected, succ,
                                       std::memory_order_acq_rel,
                                       std::memory_order_acquire)) {
        Mem::retire(handle, curr);
      }
      return true;
    }
  }

  /// Membership test (Harris–Michael style: the traversal unlinks
  /// marked nodes rather than walking their frozen successor pointers).
  /// Walking past a still-linked marked node would be fine, but a
  /// traversal that crosses an *unlinked* node's frozen pointer can
  /// reach memory whose allocation era postdates its published
  /// reservation — under the era policies a concurrent collect may
  /// already have freed it. search() only crosses a frozen pointer
  /// after this thread performed the unlink itself, which forces the
  /// successor's retirement to postdate our reservation.
  bool contains(typename Mem::ThreadHandle& handle, const Key& key) {
    const auto guard = handle.pin();
    // The linearizing read is somewhere in the traversal; bracket the
    // whole traversal (still excludes the pin/call overhead).
    Stamp::pre();
    auto [prev, curr] = search(handle, key);
    (void)prev;
    // search() returns the first node it observed unmarked, so reaching
    // `key` here means it was logically present at that read.
    const bool present = curr && curr->key == key;
    Stamp::commit();
    return present;
  }

  /// Number of unmarked nodes; O(n), for tests (call quiescent).
  std::size_t size_slow(typename Mem::ThreadHandle& handle) {
    const auto guard = handle.pin();
    std::size_t count = 0;
    Node* curr = strip(Mem::load(handle, head_));
    while (curr) {
      const std::uintptr_t next = Mem::load(handle, curr->next);
      if (!marked(next)) ++count;
      curr = strip(next);
    }
    return count;
  }

  /// Applies `fn` to every unmarked key in order (quiescent use only).
  void for_each(typename Mem::ThreadHandle& handle,
                const std::function<void(const Key&)>& fn) {
    const auto guard = handle.pin();
    Node* curr = strip(Mem::load(handle, head_));
    while (curr) {
      const std::uintptr_t next = Mem::load(handle, curr->next);
      if (!marked(next)) fn(curr->key);
      curr = strip(next);
    }
  }

 private:
  static constexpr std::uintptr_t kMark = 1;

  static bool marked(std::uintptr_t p) noexcept { return p & kMark; }
  static std::uintptr_t mark(std::uintptr_t p) noexcept { return p | kMark; }
  static Node* strip(std::uintptr_t p) noexcept {
    return reinterpret_cast<Node*>(p & ~kMark);
  }
  static std::uintptr_t pack(Node* p, bool is_marked) noexcept {
    return reinterpret_cast<std::uintptr_t>(p) | (is_marked ? kMark : 0);
  }

  std::atomic<std::uintptr_t>& head_raw() noexcept { return head_; }

  /// Finds the first unmarked node with key >= `key`, unlinking marked
  /// nodes on the way (Harris's helping). Returns (predecessor, node);
  /// predecessor is nullptr when node is the head. Both returned nodes
  /// were reached through protected loads, so they stay reclaim-blocked
  /// for the remainder of the caller's guard.
  std::pair<Node*, Node*> search(typename Mem::ThreadHandle& handle,
                                 const Key& key) {
  restart:
    Node* prev = nullptr;
    std::uintptr_t curr_raw = Mem::load(handle, head_raw());
    Node* curr = strip(curr_raw);
    while (curr) {
      const std::uintptr_t next_raw = Mem::load(handle, curr->next);
      if (marked(next_raw)) {
        // curr is logically deleted: unlink it before moving on.
        std::uintptr_t expected = pack(curr, false);
        std::atomic<std::uintptr_t>& link = prev ? prev->next : head_raw();
        if (!link.compare_exchange_strong(
                expected, reinterpret_cast<std::uintptr_t>(strip(next_raw)),
                std::memory_order_acq_rel, std::memory_order_acquire)) {
          goto restart;  // the predecessor changed under us
        }
        Mem::retire(handle, curr);
        curr = strip(next_raw);
        continue;
      }
      if (!(curr->key < key)) break;
      prev = curr;
      curr = strip(next_raw);
    }
    return {prev, curr};
  }

  typename Mem::Domain* domain_;
  std::atomic<std::uintptr_t> head_;  // pack()-encoded, never marked
};

}  // namespace pwf::lockfree
