// Epoch-based memory reclamation (EBR) for the lock-free data structures.
//
// The classic three-epoch scheme: readers pin the global epoch for the
// duration of each operation; retired nodes are stamped with the epoch at
// retirement and freed once the global epoch has advanced twice past the
// stamp, which guarantees no pinned reader can still hold a reference.
//
// Threads participate through explicit ThreadHandle objects (one per
// thread, created by the caller), which keeps registration deterministic
// and testable — no hidden thread_local state.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <tuple>
#include <utility>
#include <vector>

namespace pwf::lockfree {

class EbrThreadHandle;

/// A reclamation domain shared by the threads operating on one (or more)
/// data structures. Destroying the domain frees everything still retired;
/// the caller must ensure no thread is pinned at that point.
class EbrDomain {
 public:
  /// Default slot capacity when none is given (the historical fixed cap).
  static constexpr std::size_t kMaxThreads = 256;

  /// `max_threads` bounds the number of concurrently live thread
  /// handles. Creating a handle beyond the capacity throws
  /// std::runtime_error with the capacity in the message — exhaustion is
  /// a loud, diagnosable failure, not silent misbehaviour.
  explicit EbrDomain(std::size_t max_threads = kMaxThreads);
  ~EbrDomain();

  EbrDomain(const EbrDomain&) = delete;
  EbrDomain& operator=(const EbrDomain&) = delete;

  std::uint64_t global_epoch() const noexcept {
    return global_epoch_.load(std::memory_order_acquire);
  }

  /// Slot capacity this domain was constructed with.
  std::size_t max_threads() const noexcept { return slots_.size(); }

  /// Nodes retired and not yet freed, across all handles (approximate;
  /// for tests and leak accounting). Includes nodes handed over by
  /// destroyed handles — they stay "retired" until actually freed.
  std::size_t retired_count() const noexcept {
    return retired_total_.load(std::memory_order_relaxed);
  }

  /// Total nodes freed so far.
  std::size_t freed_count() const noexcept {
    return freed_total_.load(std::memory_order_relaxed);
  }

  /// Payload bytes retired and not yet freed / the high-water mark —
  /// the reclaim_tail experiment's robustness metric.
  std::size_t retired_bytes() const noexcept {
    return retired_bytes_.load(std::memory_order_relaxed);
  }
  std::size_t peak_retired_bytes() const noexcept {
    return peak_retired_bytes_.load(std::memory_order_relaxed);
  }

 private:
  friend class EbrThreadHandle;

  struct Slot {
    std::atomic<bool> in_use{false};
    std::atomic<bool> pinned{false};
    std::atomic<std::uint64_t> local_epoch{0};
  };

  /// Attempts to advance the global epoch: succeeds iff every pinned
  /// thread has observed the current epoch.
  void try_advance() noexcept;

  void note_retired(std::size_t bytes) noexcept;
  void note_freed(std::size_t count, std::size_t bytes) noexcept;

  std::atomic<std::uint64_t> global_epoch_{2};  // start past the free horizon
  std::atomic<std::size_t> retired_total_{0};
  std::atomic<std::size_t> freed_total_{0};
  std::atomic<std::size_t> retired_bytes_{0};
  std::atomic<std::size_t> peak_retired_bytes_{0};
  std::vector<Slot> slots_;

  // Retire lists handed over by destroyed thread handles; freed in the
  // domain destructor (coarse locking — handle teardown is a slow path).
  std::mutex orphan_mu_;
  std::vector<std::tuple<void*, void (*)(void*), std::size_t>> orphans_;
};

/// RAII pin: while alive, no node retired at the pinned epoch or later can
/// be freed out from under this thread.
class EbrGuard {
 public:
  explicit EbrGuard(EbrThreadHandle& handle) noexcept;
  ~EbrGuard();

  EbrGuard(const EbrGuard&) = delete;
  EbrGuard& operator=(const EbrGuard&) = delete;

 private:
  EbrThreadHandle& handle_;
};

/// Per-thread participation handle. Create one per thread; it claims a
/// domain slot on construction and releases it (after flushing its retire
/// list into the domain's quiescent pool... in this implementation, after
/// freeing what is safe and handing the rest to the domain) on destruction.
class EbrThreadHandle {
 public:
  explicit EbrThreadHandle(EbrDomain& domain);
  ~EbrThreadHandle();

  EbrThreadHandle(const EbrThreadHandle&) = delete;
  EbrThreadHandle& operator=(const EbrThreadHandle&) = delete;

  EbrDomain& domain() noexcept { return domain_; }

  /// Pins the current epoch for the scope of the returned guard.
  /// Guards do not nest: hold at most one per handle at a time (the inner
  /// guard's destruction would unpin the outer's epoch).
  EbrGuard pin() noexcept { return EbrGuard(*this); }

  /// Schedules `p` for deletion once no pinned thread can reach it.
  template <typename T>
  void retire(T* p) {
    retire_erased(p, [](void* q) { delete static_cast<T*>(q); }, sizeof(T));
  }

  /// Frees every retired node that is provably unreachable; called
  /// automatically every kScanThreshold retirements.
  void collect() noexcept;

  std::size_t pending() const noexcept { return retired_.size(); }

 private:
  friend class EbrGuard;

  static constexpr std::size_t kScanThreshold = 64;

  struct Retired {
    void* ptr;
    void (*deleter)(void*);
    std::uint64_t epoch;
    std::size_t bytes;
  };

  void retire_erased(void* p, void (*deleter)(void*), std::size_t bytes);
  void enter() noexcept;
  void exit() noexcept;

  EbrDomain& domain_;
  std::size_t slot_index_;
  std::vector<Retired> retired_;
};

}  // namespace pwf::lockfree
