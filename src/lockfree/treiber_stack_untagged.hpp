// Deliberately broken Treiber stack: the head CAS is untagged AND nodes
// are reused eagerly (per-thread free pools, FIFO order), so the classic
// ABA race corrupts it on real hardware. This is the native counterpart of
// the simulator's seeded mutants — it exists to prove that `pwf_check
// --hw` catches a real interleaving bug, not just injected ones.
//
// The race: thread P reads head = A and next = B, then stalls. Thread Q
// pops A and B, recycles A (push of a new value reuses A's node), making
// head = A again with A->next now pointing into Q's free pool. P resumes;
// its CAS succeeds because the head *address* still compares equal, and
// the stack head now points at a free-pool node — subsequent pops return
// values that were never pushed (stale residue), lose pushed values, or
// observe a premature empty. All of these are linearizability violations
// the checker flags against the unique-value workload.
//
// Deliberate design points that keep the breakage a pure linearizability
// bug (no C++ undefined behaviour, so ASan/TSan-clean apart from the
// logical corruption):
//   - Nodes live in a mutex-protected arena (std::deque) and are never
//     returned to the allocator until destruction, so a stale pointer is
//     always dereferenceable.
//   - value and next are std::atomic with relaxed/acquire ordering, so
//     racy reuse is not a data race in the C++ memory-model sense.
//   - Free pools are per-thread FIFO queues: a node popped by thread Q is
//     reused soon (FIFO makes the A-B-A cycle short) but not instantly
//     (instant LIFO reuse tends to reproduce the same value, masking the
//     corruption).
//   - pop() yields between reading head/next and the CAS — the hazard
//     window. On a 1-core host the yield forces a context switch exactly
//     where the ABA swap must happen, so a few thousand ops suffice.
//
// Compiled only under PWF_HW_MUTANTS (CMake option, default OFF): the
// mutant must be impossible to link into a release binary by accident.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "lockfree/lin_stamp.hpp"

namespace pwf::lockfree {

/// ABA-prone LIFO stack of uint64 values. Same call shape as
/// TreiberStack (minus the EBR handle — reclamation is the bug) so the
/// hardware-capture driver can run it through the stack workload.
template <typename Stamp = NoStamp>
class TreiberStackUntagged {
 public:
  TreiberStackUntagged() = default;

  TreiberStackUntagged(const TreiberStackUntagged&) = delete;
  TreiberStackUntagged& operator=(const TreiberStackUntagged&) = delete;

  /// Pushes `value`; returns the number of CAS attempts (>= 1).
  std::uint64_t push(std::uint64_t value) {
    Node* node = acquire_node();
    node->value.store(value, std::memory_order_relaxed);
    std::uint64_t attempts = 0;
    Node* expected = head_.load(std::memory_order_acquire);
    do {
      node->next.store(expected, std::memory_order_relaxed);
      ++attempts;
      Stamp::pre();
    } while (!head_.compare_exchange_weak(expected, node,
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire));
    Stamp::commit();
    return attempts;
  }

  /// Pops the top element, or nullopt when the stack is empty. Freed
  /// nodes go to the calling thread's FIFO pool for eager reuse.
  std::pair<std::optional<std::uint64_t>, std::uint64_t> pop_counted() {
    std::uint64_t attempts = 0;
    Stamp::pre();
    Node* node = head_.load(std::memory_order_acquire);
    while (node) {
      // The bug: `next` may be stale by CAS time if `node` was popped and
      // recycled in between — and the untagged CAS cannot tell.
      Node* next = node->next.load(std::memory_order_acquire);
      std::this_thread::yield();  // hazard window: invite the ABA swap
      ++attempts;
      Stamp::pre();
      if (head_.compare_exchange_weak(node, next, std::memory_order_acq_rel,
                                      std::memory_order_acquire)) {
        Stamp::commit();
        const std::uint64_t out = node->value.load(std::memory_order_relaxed);
        release_node(node);
        return {out, attempts};
      }
    }
    Stamp::commit();  // observed empty
    return {std::nullopt, attempts};
  }

  std::optional<std::uint64_t> pop() { return pop_counted().first; }

  bool empty() const noexcept {
    return head_.load(std::memory_order_acquire) == nullptr;
  }

 private:
  struct Node {
    std::atomic<std::uint64_t> value{0};
    std::atomic<Node*> next{nullptr};
  };

  // Per-thread FIFO free pool. FIFO (not LIFO) so a recycled node comes
  // back with a different value while its address is still "hot" in some
  // stalled thread's CAS expectation.
  struct ThreadCache {
    std::deque<Node*> free;
  };

  Node* acquire_node() {
    ThreadCache& cache = local_cache();
    if (!cache.free.empty()) {
      Node* node = cache.free.front();
      cache.free.pop_front();
      return node;
    }
    const std::lock_guard<std::mutex> lock(arena_mutex_);
    arena_.emplace_back();
    return &arena_.back();
  }

  void release_node(Node* node) { local_cache().free.push_back(node); }

  ThreadCache& local_cache() {
    thread_local std::vector<std::pair<const void*, ThreadCache>> caches;
    for (auto& [owner, cache] : caches) {
      if (owner == this) return cache;
    }
    caches.emplace_back(this, ThreadCache{});
    return caches.back().second;
  }

  std::atomic<Node*> head_{nullptr};
  std::mutex arena_mutex_;
  std::deque<Node> arena_;  // stable addresses; freed only at destruction
};

}  // namespace pwf::lockfree
