// Linearization-point stamping policies for the native lock-free
// structures.
//
// Every structure in src/lockfree takes a `Stamp` policy template
// parameter (default NoStamp). At the instruction that linearizes an
// operation the structure calls
//
//   Stamp::pre();     // immediately BEFORE the linearizing attempt
//   Stamp::commit();  // immediately AFTER it is known to have succeeded
//
// With NoStamp both calls are empty constexpr-inline functions, so the
// default instantiations compile to exactly the uninstrumented code —
// the hooks are zero-cost when off.
//
// With TicketStamp each call draws a ticket from a process-global atomic
// counter (bound by the capture layer, see check/hw_capture), recording a
// [pre, post] bracket in thread-local state. Because `pre` runs before
// the linearizing instruction and `post` after it, the bracket provably
// contains the operation's true linearization point; a retried attempt
// simply overwrites `pre`, so the surviving bracket belongs to the
// attempt that actually linearized. The capture layer reads the bracket
// after the call returns and uses it in place of the call-boundary
// stamps, tightening the history's intervals without losing the point
// that matters.
//
// Soundness contract (see DESIGN.md §6a): a LINEARIZABLE verdict on a
// bracket-stamped history is valid whenever every annotated instruction
// really is the operation's linearization point (the bracket then
// contains the point, so the true linearization order remains among the
// orders the checker may pick). A NOT-LINEARIZABLE verdict means either
// the structure or the annotation is wrong — which is exactly the
// calibration the instrumented mode exists to provide.
#pragma once

#include <atomic>
#include <cstdint>

namespace pwf::lockfree {

/// Disabled policy: hooks vanish at compile time.
struct NoStamp {
  static constexpr bool enabled = false;
  static void pre() noexcept {}
  static void commit() noexcept {}
};

/// One operation's linearization bracket, in capture tickets.
struct LinStampRecord {
  std::uint64_t pre = 0;
  std::uint64_t post = 0;
  bool has_pre = false;
  bool has_post = false;
};

/// Enabled policy: tickets from the bound global counter into
/// thread-local state. Binding is process-global — one instrumented
/// capture at a time (hw captures run structures one at a time, and the
/// capture layer binds before spawning its threads and unbinds after
/// joining them, so the pointer itself is never raced).
struct TicketStamp {
  static constexpr bool enabled = true;

  /// Stamp the bracket's lower bound; called before every linearizing
  /// attempt, so retries overwrite it and the surviving value belongs to
  /// the attempt that succeeded.
  static void pre() noexcept;

  /// Stamp the bracket's upper bound; called once the attempt is known
  /// to have linearized. A commit without a preceding pre (a path whose
  /// linearization point can only be bounded from above, e.g. a
  /// traversal) yields a half-bracket the capture layer completes with
  /// the call-boundary invoke stamp.
  static void commit() noexcept;

  /// Clears the calling thread's record; the capture layer calls this
  /// before each structure call.
  static void reset() noexcept;

  /// The calling thread's current bracket.
  static LinStampRecord record() noexcept;

  /// Binds (or, with nullptr, unbinds) the global ticket counter all
  /// threads stamp from. Must not be called while instrumented threads
  /// are running.
  static void bind(std::atomic<std::uint64_t>* ticket) noexcept;
};

/// Enabled policy with zero shared writes: brackets are raw per-thread
/// TSC readings (util::tsc_monotonic) into thread-local state, so an
/// instrumented operation touches no cache line any other thread writes.
/// Raw stamps from different threads are only comparable after the
/// capture layer widens each bracket by the calibrated skew bound ε
/// (util::calibrate_tsc) — the widened bracket provably still contains
/// the linearization point (DESIGN.md §6a). Needs no bind(): the clock
/// is the hardware's.
struct TscStamp {
  static constexpr bool enabled = true;

  static void pre() noexcept;
  static void commit() noexcept;

  /// Clears the calling thread's record; the capture layer calls this
  /// before each structure call.
  static void reset() noexcept;

  /// The calling thread's current bracket (raw TSC ticks).
  static LinStampRecord record() noexcept;
};

}  // namespace pwf::lockfree
